// Ablation of the PSM model's calibration knobs (DESIGN.md §2):
//  * beacon_miss_probability — drives the extra-cycle tail of PSM waits.
//    The paper's Nexus 4 @ 60 ms / 1 s cell (dn = 130.03 ms) sits between
//    the ideal miss-free model (~112 ms) and heavy clock drift.
//  * PSM tick quantization — the doze entry in [Tip - tick, Tip] is what
//    makes the 30 ms cell only *partially* inflate.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"

using namespace acute;

int main() {
  benchx::heading(
      "Ablation — beacon-miss probability vs Nexus 4 external inflation");
  stats::Table table({"beacon_miss_prob", "dn @60ms/1s (paper: 130.03)",
                      "dn @30ms/1s (paper: 42.58)"});
  for (const double miss : {0.0, 0.07, 0.15, 0.30}) {
    phone::PhoneProfile profile = phone::PhoneProfile::nexus4();
    profile.beacon_miss_probability = miss;

    testbed::Experiment::PingSpec spec60;
    spec60.profile = profile;
    spec60.emulated_rtt = sim::Duration::millis(60);
    spec60.interval = sim::Duration::seconds(1);
    const auto at60 = testbed::Experiment::ping(spec60);

    testbed::Experiment::PingSpec spec30 = spec60;
    spec30.emulated_rtt = sim::Duration::millis(30);
    const auto at30 = testbed::Experiment::ping(spec30);

    table.add_row(
        {stats::Table::cell(miss, 2),
         benchx::mean_ci(at60.values(&core::LayerSample::dn_ms)),
         benchx::mean_ci(at30.values(&core::LayerSample::dn_ms))});
  }
  std::printf("%s", table.to_string().c_str());
  benchx::note(
      "\nThe default 0.15 lands the 60ms cell nearest the paper; the effect"
      "\nis monotone, so the knob is identifiable from the data.");

  benchx::heading(
      "Ablation — PSM tick quantization vs the partially-inflated cell");
  stats::Table tick_table(
      {"psm tick", "P(inflated) @30ms/1s", "dn mean @30ms/1s"});
  for (const int tick_ms : {1, 5, 10, 20}) {
    phone::PhoneProfile profile = phone::PhoneProfile::nexus4();
    // Doze entry quantizes to [Tip - tick, Tip]: a wider tick widens the
    // race window against the ~36 ms response arrival.
    profile.psm_tick = sim::Duration::millis(tick_ms);
    testbed::Experiment::PingSpec spec;
    spec.profile = profile;
    spec.emulated_rtt = sim::Duration::millis(30);
    spec.interval = sim::Duration::seconds(1);
    spec.seed = 42 + tick_ms;
    const auto result = testbed::Experiment::ping(spec);
    const auto dn = result.values(&core::LayerSample::dn_ms);
    int inflated = 0;
    for (const double v : dn) {
      if (v > 45.0) ++inflated;
    }
    tick_table.add_row({std::to_string(tick_ms) + "ms",
                        stats::Table::cell(double(inflated) / dn.size(), 2),
                        benchx::mean_ci(dn)});
  }
  std::printf("%s", tick_table.to_string().c_str());
  benchx::note(
      "\nWith the response arriving ~36ms after the send and the doze entry"
      "\nin [29.5, 39.5]ms, roughly one probe in six races past the doze —"
      "\nreproducing the paper's wide-CI 42.58 +/- 4.28 cell.");
  return 0;
}
