// Figure 7: box plots of AcuteMon's Δd(u-k) and Δd(k-n) on the Nexus 5,
// Samsung Grand and Nexus 4 at emulated RTTs of 20 / 50 / 85 / 135 ms.
//
// Shape claims: Δd(u-k) < 0.5 ms on fast phones, < 1 ms even on the slow
// ones; Δd(k-n) medians < 2 ms with upper whiskers < 3 ms (Qualcomm phones
// as low as ~0.8 ms; the Sony Xperia J may reach 4 ms) — and, crucially,
// the overheads are independent of the emulated RTT.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "stats/boxplot.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"

using namespace acute;

int main() {
  benchx::heading(
      "Figure 7 — AcuteMon overhead box plots (Δd(u-k) and Δd(k-n), ms)");

  const struct {
    const char* name;
  } phones[] = {{"Google Nexus 5"}, {"Samsung Grand"}, {"Google Nexus 4"}};

  stats::Table table({"phone", "emulated", "metric", "median", "q1", "q3",
                      "whisk-lo", "whisk-hi"});
  for (const auto& [name] : phones) {
    const auto profile = phone::PhoneProfile::by_name(name);
    for (const int rtt_ms : {20, 50, 85, 135}) {
      testbed::Experiment::AcuteMonSpec spec;
      spec.profile = profile;
      spec.emulated_rtt = sim::Duration::millis(rtt_ms);
      spec.probes = 100;
      const auto result = testbed::Experiment::acutemon(spec);

      const auto add = [&](const char* metric,
                           const std::vector<double>& values) {
        const auto box = stats::BoxPlot::from_sample(values);
        table.add_row({name, std::to_string(rtt_ms) + "ms(" +
                                 (metric[1] == 'u' ? "u" : "k") + ")",
                       metric, stats::Table::cell(box.median),
                       stats::Table::cell(box.q1),
                       stats::Table::cell(box.q3),
                       stats::Table::cell(box.whisker_low),
                       stats::Table::cell(box.whisker_high)});
      };
      add("du-k", result.values(&core::LayerSample::du_k));
      add("dk-n", result.values(&core::LayerSample::dk_n));
    }
  }
  std::printf("%s", table.to_string().c_str());
  benchx::note(
      "\nShape check: du-k < ~0.5ms (<1ms on slow CPUs); dk-n medians < 2ms"
      "\nand whiskers < ~3-4ms; both independent of the emulated RTT, so a"
      "\nsingle calibration per handset corrects the user-level RTT.");
  return 0;
}
