// Micro-benchmarks (google-benchmark) for the simulation substrate itself:
// event-queue throughput, channel contention, and a full end-to-end probe
// round trip through the testbed. These bound the cost of the reproduction
// experiments (all tables re-run in seconds).
#include <benchmark/benchmark.h>

#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "testbed/experiment.hpp"

using namespace acute;
using sim::Duration;

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue queue;
  sim::Rng rng(1);
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.push(sim::TimePoint::from_nanos(t + rng.uniform_int(0, 1000)),
                 [] {});
      ++t;
    }
    while (!queue.empty()) {
      auto fired = queue.pop();
      benchmark::DoNotOptimize(fired.when);
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_SimulatorTimerChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 1000) sim.schedule_in(Duration::micros(10), tick);
    };
    sim.schedule_in(Duration::micros(10), tick);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorTimerChain);

void BM_RngTruncatedNormal(benchmark::State& state) {
  sim::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.truncated_normal(10.0, 1.0, 8.0, 13.0));
  }
}
BENCHMARK(BM_RngTruncatedNormal);

void BM_StackPipelineTransit(benchmark::State& state) {
  // One packet descending the full five-layer phone stack onto the medium,
  // amortized — the move-based hot path the zero-copy refactor targets.
  testbed::Testbed testbed{testbed::TestbedConfig{}};
  testbed.phone().set_system_traffic_enabled(false);
  testbed.phone().bus().set_sleep_enabled(false);
  testbed.settle(sim::Duration::millis(700));
  auto& sim = testbed.simulator();
  net::Packet::reset_op_counters();
  std::uint64_t sent = 0;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      net::Packet pkt = net::Packet::make(
          net::PacketType::udp_data, net::Protocol::udp, 0,
          testbed::Testbed::kServerId, net::packet_size::udp_small);
      pkt.ttl = 1;  // dies at the AP: isolates the descent
      testbed.phone().send(std::move(pkt), phone::ExecMode::native_c);
      ++sent;
    }
    sim.run_for(sim::Duration::millis(30));
  }
  state.SetItemsProcessed(state.iterations() * 16);
  state.counters["copies_per_pkt"] = benchmark::Counter(
      double(net::Packet::op_counters().copies) / double(sent));
}
BENCHMARK(BM_StackPipelineTransit);

void BM_FullProbeRoundTrip(benchmark::State& state) {
  // One complete AcuteMon probe (SYN/SYN-ACK through phone stack, channel,
  // AP, switch, netem server and back), amortized.
  for (auto _ : state) {
    testbed::Experiment::AcuteMonSpec spec;
    spec.probes = 20;
    spec.emulated_rtt = Duration::millis(10);
    const auto result = testbed::Experiment::acutemon(spec);
    benchmark::DoNotOptimize(result.samples.size());
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_FullProbeRoundTrip);

void BM_CongestedChannelSecond(benchmark::State& state) {
  // One simulated second of a saturated 802.11g channel (10 UDP flows).
  for (auto _ : state) {
    testbed::TestbedConfig config;
    config.congested_phy = true;
    testbed::Testbed testbed(config);
    testbed.settle(Duration::millis(100));
    testbed.start_cross_traffic();
    testbed.settle(Duration::seconds(1));
    benchmark::DoNotOptimize(testbed.cross_traffic_throughput_mbps());
  }
}
BENCHMARK(BM_CongestedChannelSecond);

}  // namespace

BENCHMARK_MAIN();
