// Figure 3: box plots of the kernel-phy overhead Δd(k-n) and the user-kernel
// overhead Δd(u-k) for the Nexus 4 and Nexus 5 at emulated RTTs of 30 ms and
// 60 ms, with 10 ms and 1 s sending intervals.
//
// Shape claims: Δd(k-n) < ~4 ms at the 10 ms interval for both phones; at
// the 1 s interval the Nexus 5's Δd(k-n) median is much larger than the
// Nexus 4's (~18 ms vs ~6 ms at 60 ms emulated; ~12 ms vs ~6 ms at 30 ms);
// Δd(u-k) stays within ±1 ms everywhere (and can go *negative* on the
// Nexus 4 above 100 ms because its ping truncates to whole milliseconds).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "stats/boxplot.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"

using namespace acute;

int main() {
  benchx::heading("Figure 3 — overhead box plots (all values in ms)");

  stats::Table table({"phone", "rtt", "intv", "metric", "median", "q1", "q3",
                      "whisk-lo", "whisk-hi", "outliers"});

  const struct {
    const char* name;
    phone::PhoneProfile profile;
  } phones[] = {{"Nexus 4", phone::PhoneProfile::nexus4()},
                {"Nexus 5", phone::PhoneProfile::nexus5()}};

  for (const int rtt_ms : {30, 60}) {
    for (const auto& [name, profile] : phones) {
      for (const int interval_ms : {10, 1000}) {
        testbed::Experiment::PingSpec spec;
        spec.profile = profile;
        spec.emulated_rtt = sim::Duration::millis(rtt_ms);
        spec.interval = sim::Duration::millis(interval_ms);
        spec.probes = 100;
        const auto result = testbed::Experiment::ping(spec);

        const auto add = [&](const char* metric,
                             const std::vector<double>& values) {
          const auto box = stats::BoxPlot::from_sample(values);
          table.add_row({name, std::to_string(rtt_ms) + "ms",
                         interval_ms == 10 ? "10ms" : "1s", metric,
                         stats::Table::cell(box.median),
                         stats::Table::cell(box.q1),
                         stats::Table::cell(box.q3),
                         stats::Table::cell(box.whisker_low),
                         stats::Table::cell(box.whisker_high),
                         std::to_string(box.outliers.size())});
        };
        add("dk-n", result.values(&core::LayerSample::dk_n));
        add("du-k", result.values(&core::LayerSample::du_k));
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  benchx::note(
      "\nPaper reference points: dk-n medians ~2-4ms at 10ms interval;"
      "\nat 1s: Nexus 5 ~12ms (30ms RTT) and ~18ms (60ms RTT), Nexus 4 ~6ms;"
      "\ndu-k within +/-1ms (negative values possible on Nexus 4 >100ms).");
  return 0;
}
