// Extension (§4.1): AcuteMon's warm-up + keep-alive scheme ported to
// cellular RRC. Naive probing after idle pays the RRC promotion (~2 s on
// 3G, ~260 ms on LTE) plus the FACH latency; the warmed measurement sees
// the stable CELL_DCH RTT.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "cellular/cellular_probe.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

using namespace acute;

namespace {

void run(const char* label, const cellular::RrcConfig& rrc) {
  cellular::CellularProbeSession::Spec naive;
  naive.rrc = rrc;
  naive.probes = 30;
  naive.keep_awake = false;
  // Probes far apart: the radio demotes to IDLE between them.
  naive.probe_interval = rrc.dch_inactivity + rrc.fach_inactivity +
                         sim::Duration::seconds(2);
  const auto naive_rtts = cellular::CellularProbeSession::run(naive);

  cellular::CellularProbeSession::Spec warmed = naive;
  warmed.keep_awake = true;
  warmed.keepalive_interval = rrc.dch_inactivity / 2;
  const auto warmed_rtts = cellular::CellularProbeSession::run(warmed);

  const stats::Summary naive_summary(naive_rtts);
  const stats::Summary warmed_summary(warmed_rtts);
  stats::Table table({"mode", "median RTT", "mean RTT", "max RTT"});
  table.add_row({"naive (idle between probes)",
                 stats::Table::cell(naive_summary.median()) + " ms",
                 naive_summary.mean_ci_string() + " ms",
                 stats::Table::cell(naive_summary.max()) + " ms"});
  table.add_row({"warm-up + keep-alive",
                 stats::Table::cell(warmed_summary.median()) + " ms",
                 warmed_summary.mean_ci_string() + " ms",
                 stats::Table::cell(warmed_summary.max()) + " ms"});
  std::printf("\n%s (core RTT 50 ms)\n%s", label, table.to_string().c_str());
}

}  // namespace

int main() {
  benchx::heading(
      "Extension — RRC state-transition inflation and its mitigation");
  run("3G / UMTS (IDLE->DCH ~2s, FACH latency ~120ms)",
      cellular::RrcConfig::umts_3g());
  run("LTE (IDLE->CONNECTED ~260ms)", cellular::RrcConfig::lte());
  benchx::note(
      "\nShape check: naive cellular RTTs are inflated by the promotion"
      "\ndelay (orders of magnitude on 3G); the warmed measurement reports"
      "\nthe stable CELL_DCH RTT — the same puncture as WiFi, per §4.1.");
  return 0;
}
