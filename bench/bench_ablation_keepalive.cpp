// Ablation: the keep-alive cadence db against min(Tis, Tip).
//
// §4.1 argues db < min(Tis, Tip) prevents every demotion, and picks the
// empirical 20 ms. This bench sweeps db on the Nexus 4 — the handset with
// the tightest budget (Tip ~40 ms) — and on the Nexus 5 (Tis = 50 ms binds)
// to show where the design breaks: as soon as db crosses the binding
// timeout, overhead jumps by an order of magnitude.
//
// It also exercises the AutoTuner (the paper's "training" future work):
// inferred timeouts -> safe (dpre, db), including on a hypothetical
// aggressive firmware where the paper's default of 20 ms would fail.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/auto_tuner.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"
#include "testbed/testbed.hpp"

using namespace acute;

namespace {

struct CadenceResult {
  double internal_overhead_ms;  // median du - dn (SDIO wake shows here)
  double external_inflation_ms;  // median dn - emulated (PSM shows here)
};

CadenceResult measure_cadence(const phone::PhoneProfile& profile, int db_ms,
                              std::uint64_t seed) {
  constexpr double kEmulatedMs = 85.0;
  testbed::TestbedConfig config;
  config.profile = profile;
  config.emulated_rtt = sim::Duration::millis(kEmulatedMs);
  config.seed = seed;
  testbed::Testbed testbed(config);
  testbed.settle(sim::Duration::millis(800));

  tools::MeasurementTool::Config mt;
  mt.probe_count = 60;
  mt.timeout = sim::Duration::seconds(1);
  mt.target = testbed::Testbed::kServerId;
  core::AcuteMon::Options options;
  options.background_interval = sim::Duration::millis(db_ms);
  options.warmup_lead = sim::Duration::millis(std::min(db_ms, 20));
  core::AcuteMon monitor(testbed.phone(), mt, options);
  monitor.start_measurement();
  testbed.run_until_finished(monitor);
  const auto samples = testbed.layer_samples(monitor.result());
  CadenceResult result;
  result.internal_overhead_ms =
      stats::Summary(
          core::extract(samples, &core::LayerSample::total_overhead))
          .median();
  result.external_inflation_ms =
      stats::Summary(core::extract(samples, &core::LayerSample::dn_ms))
          .median() -
      kEmulatedMs - 1.3;  // fabric adds ~1.3 ms
  return result;
}

}  // namespace

int main() {
  benchx::heading(
      "Ablation — keep-alive cadence db vs the binding timeout min(Tis,Tip)");
  benchx::note(
      "85 ms path. internal = median(du - dn): SDIO wake-ups (Tis = 50 ms"
      "\nbinds on the Nexus 5); external = median(dn - emulated): PSM"
      "\nbuffering (Tip ~40 ms binds on the Nexus 4).");

  stats::Table table({"db", "N4 internal", "N4 external (PSM)",
                      "N5 internal (SDIO)", "N5 external"});
  for (const int db_ms : {5, 10, 20, 30, 45, 60, 120}) {
    const auto n4 = measure_cadence(phone::PhoneProfile::nexus4(), db_ms, 7);
    const auto n5 = measure_cadence(phone::PhoneProfile::nexus5(), db_ms, 8);
    table.add_row({std::to_string(db_ms) + "ms",
                   stats::Table::cell(n4.internal_overhead_ms) + " ms",
                   stats::Table::cell(n4.external_inflation_ms) + " ms",
                   stats::Table::cell(n5.internal_overhead_ms) + " ms",
                   stats::Table::cell(n5.external_inflation_ms) + " ms"});
  }
  std::printf("%s", table.to_string().c_str());
  benchx::note(
      "\nExpected: both columns flat and small while db < binding timeout;"
      "\nthe Nexus 4's external column blows up once db > Tip (~40ms) and"
      "\nthe Nexus 5's internal column once db > Tis (50ms). The paper's"
      "\nempirical db = 20ms is safe on every Table 1 handset.");

  benchx::heading("AutoTuner — derived (dpre, db) from inferred timeouts");
  stats::Table tuned_table(
      {"handset", "inferred Tis", "inferred Tip", "dpre", "db", "feasible"});
  for (const auto& profile : phone::PhoneProfile::all()) {
    const auto inference = testbed::Experiment::infer_timeouts(profile);
    const auto tuned = core::AutoTuner::tune(inference.bus_sleep_timeout,
                                             inference.psm_timeout);
    tuned_table.add_row(
        {profile.name,
         stats::Table::cell(inference.bus_sleep_timeout.to_ms(), 0) + "ms",
         stats::Table::cell(inference.psm_timeout.to_ms(), 0) + "ms",
         stats::Table::cell(tuned.warmup_lead.to_ms(), 0) + "ms",
         stats::Table::cell(tuned.background_interval.to_ms(), 0) + "ms",
         tuned.feasible ? "yes" : "no"});
  }
  // A hypothetical firmware more aggressive than anything in Table 1.
  const auto aggressive = core::AutoTuner::tune(sim::Duration::millis(18),
                                                sim::Duration::millis(15));
  tuned_table.add_row({"(hypothetical Tip=15ms)", "18ms", "15ms",
                       stats::Table::cell(aggressive.warmup_lead.to_ms(), 1) +
                           "ms",
                       stats::Table::cell(
                           aggressive.background_interval.to_ms(), 1) + "ms",
                       aggressive.feasible ? "yes" : "no"});
  std::printf("%s", tuned_table.to_string().c_str());
  benchx::note(
      "\nThe tuner keeps the paper's 20ms default wherever it is already"
      "\nsafe and derives a tighter cadence when the timeouts demand it.");
  return 0;
}
