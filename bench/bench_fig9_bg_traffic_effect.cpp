// Figure 9: CDF of AcuteMon RTTs with and without its background traffic,
// in a congested WLAN, with the SDIO bus sleep disabled in the driver (the
// paper's rooted ablation) so that the only possible difference between the
// two runs is the background traffic itself. A third, uncongested run gives
// the reference curve.
//
// Shape claims: the with/without-background CDFs nearly coincide (the
// background load is negligible); both sit right of the uncongested curve
// (the RTT increase comes from the cross traffic, not from AcuteMon).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "stats/cdf.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"

using namespace acute;

int main() {
  benchx::heading("Figure 9 — effect of AcuteMon's background traffic");

  const auto run = [](bool background, bool cross) {
    testbed::Experiment::AcuteMonSpec spec;
    spec.profile = phone::PhoneProfile::nexus5();
    spec.emulated_rtt = sim::Duration::millis(30);
    spec.probes = 100;
    spec.cross_traffic = cross;
    spec.background_enabled = background;
    spec.bus_sleep_enabled = false;  // rooted-driver ablation
    // Nexus 5 Tip ~205ms >> 30ms path: CAM holds without background too.
    return testbed::Experiment::acutemon(spec);
  };

  const auto with_bg = run(true, true);
  const auto without_bg = run(false, true);
  const auto no_cross = run(true, false);

  stats::Table table({"scenario", "p25", "p50", "p75", "p90", "mean"});
  const auto add = [&](const char* name,
                       const testbed::MultiLayerResult& result) {
    const auto rtts = result.run.reported_rtts_ms();
    const stats::Cdf cdf(rtts);
    table.add_row({name, stats::Table::cell(cdf.quantile(0.25)),
                   stats::Table::cell(cdf.quantile(0.50)),
                   stats::Table::cell(cdf.quantile(0.75)),
                   stats::Table::cell(cdf.quantile(0.90)),
                   benchx::mean_ci(rtts)});
  };
  add("with BG traffic (congested)", with_bg);
  add("without BG traffic (congested)", without_bg);
  add("no cross traffic", no_cross);
  std::printf("%s", table.to_string().c_str());

  const stats::Cdf cdf_with(with_bg.run.reported_rtts_ms());
  const stats::Cdf cdf_without(without_bg.run.reported_rtts_ms());
  std::printf("\nKS distance(with BG, without BG) = %.3f  (small => the "
              "background traffic does not perturb the measurement)\n",
              stats::Cdf::ks_distance(cdf_with, cdf_without));
  return 0;
}
