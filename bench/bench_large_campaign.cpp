// Large-campaign smoke: a >= 10^4-shard lazily-iterated campaign driven to
// completion through incremental checkpointed ticks (the kill/resume ops
// pattern), asserting the memory story the million-shard design promises:
//
//   * no O(shards) scenario vector — the grid is iterated via at(i);
//   * the checkpoint compacts on every resume, so the file ends at exactly
//     one line per shard no matter how many ticks ran;
//   * peak RSS stays under a hard bound: the default frontier mode
//     (retain_shards=false) folds each completed shard into the campaign
//     accumulators and frees its digests, so retention is O(workers +
//     reorder window) — independent of shard count. --retain-shards runs
//     the legacy buffered model (O(shards) digest retention, ~20 KB/shard)
//     for comparison; it cannot pass the 10^5-shard tier's bound.
//
// Exits non-zero on any violated bound — wired into CI as the scale gate.
// --alloc-limit N adds a fourth bound: heap allocations per shard across
// the whole ticked sweep (counting global allocator, includes checkpoint
// restores) must stay <= N — the shard-context pool's steady-state
// guarantee, enforced alongside the RSS ceiling.
//
// Usage: bench_large_campaign [--shards N] [--ticks N] [--workers N]
//                             [--rss-limit-mb M] [--alloc-limit N]
//                             [--retain-shards]
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>

#include <sys/resource.h>

#include "report/checkpoint.hpp"
#include "testbed/campaign.hpp"

using namespace acute;
using sim::Duration;

// Counting global allocator (atomic: pool workers allocate concurrently).
// Same idiom as tests/test_sim_alloc.cpp.
namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t al = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + al - 1) / al * al;
  void* p = std::aligned_alloc(al, rounded == 0 ? al : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// Nothrow variants too: libstdc++ internals (stable_sort's temporary
// buffer) allocate with new(nothrow) but free through plain delete — an
// incomplete replacement pairs the runtime's allocator with our free,
// which ASan rejects as an alloc-dealloc mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

std::size_t peak_rss_mb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux.
  return static_cast<std::size_t>(usage.ru_maxrss) / 1024;
}

/// A lazy grid of at least `shards` minimal scenarios (one phone, one
/// probe): rtt x loss x reorder axes sized to cover the request.
testbed::CampaignSpec large_campaign(std::size_t shards,
                                     const std::string& checkpoint,
                                     bool retain_shards) {
  testbed::ScenarioGrid grid;
  grid.emulated_rtts.clear();
  for (int i = 0; i < 50; ++i) {
    grid.emulated_rtts.push_back(Duration::millis(2 + i));
  }
  grid.reorder = {false, true};
  const std::size_t loss_steps = (shards + 99) / 100;  // 50 * 2 per step
  grid.loss_rates.clear();
  for (std::size_t i = 0; i < loss_steps; ++i) {
    grid.loss_rates.push_back(double(i) * (0.3 / double(loss_steps)));
  }
  testbed::CampaignSpec spec;
  spec.seed = 2016;
  spec.grid = grid;
  spec.probes_per_phone = 1;
  spec.probe_interval = Duration::millis(50);
  spec.probe_timeout = Duration::millis(400);
  spec.settle = Duration::millis(50);
  spec.keep_samples = false;
  spec.retain_shards = retain_shards;
  spec.checkpoint_path = checkpoint;
  return spec;
}

std::size_t file_lines(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t shards = 10000;
  std::size_t ticks = 4;
  std::size_t workers = 4;
  std::size_t rss_limit_mb = 512;
  std::size_t alloc_limit = 0;  // allocs/shard budget; 0 disables the gate
  bool retain_shards = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--ticks") == 0 && i + 1 < argc) {
      ticks = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--rss-limit-mb") == 0 && i + 1 < argc) {
      rss_limit_mb = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--alloc-limit") == 0 && i + 1 < argc) {
      alloc_limit = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--retain-shards") == 0) {
      retain_shards = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--shards N] [--ticks N] [--workers N] "
                   "[--rss-limit-mb M] [--alloc-limit N] "
                   "[--retain-shards]\n",
                   argv[0]);
      return 1;
    }
  }
  if (ticks == 0) ticks = 1;

  const std::string checkpoint = "large_campaign.ckpt";
  std::remove(checkpoint.c_str());
  testbed::CampaignSpec spec = large_campaign(shards, checkpoint,
                                              retain_shards);
  const std::size_t total = testbed::Campaign(spec).scenario_count();
  std::printf("large campaign: %zu lazy shards, %zu ticks, %zu workers, "
              "RSS limit %zu MB, %s merge\n",
              total, ticks, workers, rss_limit_mb,
              retain_shards ? "buffered" : "frontier");

  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t allocs_before =
      g_heap_allocations.load(std::memory_order_relaxed);
  std::size_t completed = 0;
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    // Each tick constructs a fresh Campaign and resumes from the
    // checkpoint — in-process kill/resume: nothing but the file carries
    // state across ticks. The last tick runs uncapped to finish the sweep.
    testbed::CampaignSpec tick_spec =
        large_campaign(shards, checkpoint, retain_shards);
    if (tick + 1 < ticks) tick_spec.max_shards = (total + ticks - 1) / ticks;
    const testbed::CampaignReport report =
        testbed::Campaign(tick_spec).run(workers);
    if (report.completed_shards() <= completed && tick + 1 < ticks) {
      std::fprintf(stderr, "FAILED: tick %zu made no progress (%zu shards)\n",
                   tick, report.completed_shards());
      return 1;
    }
    completed = report.completed_shards();
    std::printf(
        "  tick %zu: %zu/%zu shards done, checkpoint %zu lines, "
        "peak RSS %zu MB (restore %.3fs)\n",
        tick, completed, total, file_lines(checkpoint), peak_rss_mb(),
        report.stage.restore);
    if (completed == total) break;
  }
  const std::uint64_t sweep_allocs =
      g_heap_allocations.load(std::memory_order_relaxed) - allocs_before;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  int failures = 0;
  if (completed != total) {
    std::fprintf(stderr, "FAILED: only %zu of %zu shards completed\n",
                 completed, total);
    ++failures;
  }
  // One resume with nothing pending: the load path must compact the file
  // to exactly one line per shard and restore every digest.
  const testbed::CampaignReport final_report =
      testbed::Campaign(large_campaign(shards, checkpoint, retain_shards))
          .run(1);
  if (final_report.completed_shards() != total) {
    std::fprintf(stderr, "FAILED: final resume restored %zu of %zu shards\n",
                 final_report.completed_shards(), total);
    ++failures;
  }
  const std::size_t lines = file_lines(checkpoint);
  if (lines != total) {
    std::fprintf(stderr,
                 "FAILED: compacted checkpoint has %zu lines for %zu "
                 "shards\n",
                 lines, total);
    ++failures;
  }
  if (final_report.workload_digests().empty() ||
      final_report.total_probes() == 0) {
    std::fprintf(stderr, "FAILED: merged report is empty\n");
    ++failures;
  }
  const std::size_t rss = peak_rss_mb();
  if (rss > rss_limit_mb) {
    std::fprintf(stderr, "FAILED: peak RSS %zu MB exceeds limit %zu MB\n",
                 rss, rss_limit_mb);
    ++failures;
  }
  // Allocation budget: the whole ticked sweep — shards, checkpoint writes,
  // per-tick restores — amortized over the shard count. The warm context
  // pool keeps the per-shard contribution near zero; a regression that
  // reintroduces per-shard construction blows straight through any sane
  // budget.
  const double allocs_per_shard =
      total > 0 ? double(sweep_allocs) / double(total) : 0.0;
  if (alloc_limit > 0 && allocs_per_shard > double(alloc_limit)) {
    std::fprintf(stderr,
                 "FAILED: %.1f heap allocations per shard exceeds the "
                 "budget of %zu\n",
                 allocs_per_shard, alloc_limit);
    ++failures;
  }
  std::remove(checkpoint.c_str());
  std::printf(
      "large campaign %s: %zu shards in %.1fs wall, %zu probes "
      "(%zu lost), peak RSS %zu MB (limit %zu), %.1f allocs/shard%s\n",
      failures == 0 ? "OK" : "FAILED", total, wall,
      final_report.total_probes(), final_report.total_lost(), rss,
      rss_limit_mb, allocs_per_shard,
      alloc_limit > 0 ? "" : " (no budget)");
  return failures == 0 ? 0 : 1;
}
