// Table 2: RTTs measured at different layers (mean ± 95% CI, ms) for the
// Google Nexus 4 and Nexus 5, ICMP ping with 10 ms and 1 s sending
// intervals, emulated RTTs of 30 ms and 60 ms.
//
// Shape claims under reproduction:
//  * small interval -> du ≈ dk ≈ dn at every cell;
//  * 1 s interval   -> both phones inflate significantly;
//  * Nexus 5 inflates *inside* the phone (du >> dn, dn ≈ emulated);
//  * Nexus 4 at 60 ms inflates mainly *in the network* (dn >> emulated,
//    PSM buffering at the AP), and partially at 30 ms.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"

using namespace acute;

namespace {

struct PaperRow {
  const char* phone;
  int rtt_ms;
  const char* interval;
  const char* du;
  const char* dk;
  const char* dn;
};

// Table 2 of the paper, verbatim.
constexpr PaperRow kPaper[] = {
    {"Google Nexus 4", 30, "10ms", "33.16 ±0.96", "32.46 ±0.04",
     "31.29 ±0.35"},
    {"Google Nexus 4", 30, "1s", "48.15 ±3.88", "48.10 ±3.88", "42.58 ±4.28"},
    {"Google Nexus 4", 60, "10ms", "63.91 ±0.73", "63.86 ±0.73",
     "62.32 ±0.46"},
    {"Google Nexus 4", 60, "1s", "136.33 ±7.64", "136.66 ±7.66",
     "130.03 ±7.52"},
    {"Google Nexus 5", 30, "10ms", "33.38 ±0.58", "33.27 ±0.59",
     "31.22 ±0.45"},
    {"Google Nexus 5", 30, "1s", "43.21 ±1.29", "43.03 ±1.29", "31.78 ±1.01"},
    {"Google Nexus 5", 60, "10ms", "64.18 ±0.68", "64.08 ±0.67",
     "61.61 ±0.35"},
    {"Google Nexus 5", 60, "1s", "81.98 ±2.04", "81.83 ±2.05", "62.35 ±0.42"},
};

}  // namespace

int main() {
  benchx::heading(
      "Table 2 — RTTs measured at different layers (mean ±95% CI, ms)");
  stats::Table table({"phone", "rtt", "intv", "du paper", "du ours",
                      "dk paper", "dk ours", "dn paper", "dn ours"});

  for (const PaperRow& row : kPaper) {
    testbed::Experiment::PingSpec spec;
    spec.profile = std::string(row.phone) == "Google Nexus 4"
                       ? phone::PhoneProfile::nexus4()
                       : phone::PhoneProfile::nexus5();
    spec.emulated_rtt = sim::Duration::millis(row.rtt_ms);
    spec.interval = std::string(row.interval) == "10ms"
                        ? sim::Duration::millis(10)
                        : sim::Duration::seconds(1);
    spec.probes = 100;
    const auto result = testbed::Experiment::ping(spec);

    table.add_row({row.phone, std::to_string(row.rtt_ms) + "ms", row.interval,
                   row.du, benchx::mean_ci(result.values(
                               &core::LayerSample::du_ms)),
                   row.dk, benchx::mean_ci(result.values(
                               &core::LayerSample::dk_ms)),
                   row.dn, benchx::mean_ci(result.values(
                               &core::LayerSample::dn_ms))});
  }
  std::printf("%s", table.to_string().c_str());
  benchx::note(
      "\nShape checks: 10ms rows ~= emulated RTT everywhere; 1s rows inflate;"
      "\nNexus 5 keeps dn ~= emulated (internal inflation only); Nexus 4 at"
      "\n60ms/1s shows dn >> emulated (PSM buffering at the AP).");
  return 0;
}
