// Table 3: dvsend and dvrecv measured by the (modified) Nexus 5 driver with
// the SDIO bus sleep enabled and disabled, at 10 ms and 1 s sending
// intervals (100 ICMP probes each).
//
// Shape claims: with sleep enabled and a 1 s interval, both dvsend and
// dvrecv jump to ~10-14 ms (the bus wake-up); disabling the sleep pins both
// near their base costs (~0.2-0.8 ms send, ~1.6-2 ms receive) regardless of
// the sending rate.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"

using namespace acute;

namespace {

struct PaperRow {
  const char* type;
  const char* sleep;
  const char* interval;
  double min, mean, max;
};

constexpr PaperRow kPaper[] = {
    {"dvsend", "Enabled", "10ms", 0.096, 0.321, 10.184},
    {"dvsend", "Enabled", "1000ms", 0.139, 10.151, 13.547},
    {"dvsend", "Disabled", "10ms", 0.092, 0.229, 0.836},
    {"dvsend", "Disabled", "1000ms", 0.139, 0.720, 0.858},
    {"dvrecv", "Enabled", "10ms", 0.314, 1.635, 2.827},
    {"dvrecv", "Enabled", "1000ms", 0.368, 12.754, 14.224},
    {"dvrecv", "Disabled", "10ms", 0.311, 1.589, 2.651},
    {"dvrecv", "Disabled", "1000ms", 0.362, 1.756, 2.088},
};

std::string triple(double min, double mean, double max) {
  return stats::Table::cell(min, 3) + " / " + stats::Table::cell(mean, 3) +
         " / " + stats::Table::cell(max, 3);
}

}  // namespace

int main() {
  benchx::heading(
      "Table 3 — Nexus 5 driver delays dvsend/dvrecv (min/mean/max, ms)");

  stats::Table table(
      {"type", "bus sleep", "interval", "paper (min/mean/max)",
       "ours (min/mean/max)"});

  for (const bool enabled : {true, false}) {
    for (const int interval_ms : {10, 1000}) {
      testbed::Experiment::DriverDelaySpec spec;
      spec.profile = phone::PhoneProfile::nexus5();
      spec.interval = sim::Duration::millis(interval_ms);
      spec.bus_sleep_enabled = enabled;
      spec.emulated_rtt = sim::Duration::millis(60);
      spec.probes = 100;
      const auto result = testbed::Experiment::driver_delays(spec);

      const auto emit = [&](const char* type,
                            const std::vector<double>& values) {
        const stats::Summary summary(values);
        for (const PaperRow& row : kPaper) {
          if (std::string(row.type) == type &&
              (std::string(row.sleep) == "Enabled") == enabled &&
              std::string(row.interval) ==
                  (interval_ms == 10 ? "10ms" : "1000ms")) {
            table.add_row({type, enabled ? "Enabled" : "Disabled",
                           interval_ms == 10 ? "10ms" : "1000ms",
                           triple(row.min, row.mean, row.max),
                           triple(summary.min(), summary.mean(),
                                  summary.max())});
          }
        }
      };
      emit("dvsend", result.dvsend_ms);
      emit("dvrecv", result.dvrecv_ms);
    }
  }
  std::printf("%s", table.to_string().c_str());
  benchx::note(
      "\nShape check: enabled/1s means ~10-13ms (wake-up dominates);"
      "\ndisabled rows stay at base cost at every rate.");
  return 0;
}
