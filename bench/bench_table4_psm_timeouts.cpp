// Table 4: PSM timeout values (Tip) and listen intervals of the five
// handsets under test, inferred black-box by the TimeoutProber (the paper
// measured Tip "by carefully sending out packets with increased packet
// sending interval"; we binary-search the path RTT for the PSM-inflation
// onset, and additionally infer the bus-sleep timeout Tis — the paper's
// §4.1 future-work "training" extension).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"

using namespace acute;

namespace {
struct PaperRow {
  const char* phone;
  const char* tip;
  int l_assoc;
  int l_actual;
};
constexpr PaperRow kPaper[] = {
    {"Google Nexus 4", "~40ms", 1, 0},   {"Google Nexus 5", "~205ms", 10, 0},
    {"Samsung Grand", "~45ms", 10, 0},   {"HTC One", "~400ms", 1, 0},
    {"Sony Xperia J", "~210ms", 10, 0},
};
}  // namespace

int main() {
  benchx::heading(
      "Table 4 — PSM timeouts (Tip) and listen intervals; plus inferred "
      "bus-sleep timeout (Tis)");

  stats::Table table({"phone", "Tip paper", "Tip inferred", "Tis inferred",
                      "L assoc (paper/ours)", "L actual (paper/ours)"});

  for (const PaperRow& row : kPaper) {
    const auto profile = phone::PhoneProfile::by_name(row.phone);
    const auto inference = testbed::Experiment::infer_timeouts(profile);
    table.add_row(
        {row.phone, row.tip,
         "~" + stats::Table::cell(inference.psm_timeout.to_ms(), 0) + "ms",
         "~" + stats::Table::cell(inference.bus_sleep_timeout.to_ms(), 0) +
             "ms",
         std::to_string(row.l_assoc) + " / " +
             std::to_string(inference.listen_associated),
         std::to_string(row.l_actual) + " / " +
             std::to_string(inference.listen_actual)});
  }
  std::printf("%s", table.to_string().c_str());
  benchx::note(
      "\nShape check: inferred Tip within ~10ms of the configured value per"
      "\nphone; Tis ~40-50ms everywhere (10ms watchdog x idletime 5); every"
      "\nhandset's actual listen interval is 0 despite announcing 1 or 10.");
  return 0;
}
