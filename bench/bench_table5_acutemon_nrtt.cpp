// Table 5: actual nRTTs (dn) measured by the external sniffers while
// AcuteMon runs with K = 100 TCP probes, for all five handsets at emulated
// RTTs of 20 / 50 / 85 / 135 ms.
//
// Shape claim: dn stays within ~3 ms of the emulated value everywhere — no
// PSM activity is triggered while AcuteMon measures, on any handset.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"

using namespace acute;

namespace {
struct PaperRow {
  const char* phone;
  const char* dn[4];  // at 20 / 50 / 85 / 135 ms
};
constexpr PaperRow kPaper[] = {
    {"Google Nexus 5",
     {"22.461 ±0.545", "51.683 ±0.168", "87.198 ±0.387", "137.090 ±0.320"}},
    {"Sony Xperia J",
     {"21.584 ±0.184", "51.597 ±0.149", "86.868 ±0.275", "136.79 ±0.178"}},
    {"Samsung Grand",
     {"22.020 ±0.382", "52.614 ±0.485", "86.675 ±0.177", "137.0 ±0.217"}},
    {"Google Nexus 4",
     {"21.680 ±0.181", "51.673 ±0.202", "86.888 ±0.358", "137.98 ±1.101"}},
    {"HTC One",
     {"21.874 ±0.200", "51.786 ±0.198", "86.810 ±0.192", "136.850 ±0.154"}},
};
constexpr int kRtts[] = {20, 50, 85, 135};
}  // namespace

int main() {
  benchx::heading(
      "Table 5 — actual nRTT (dn) under AcuteMon (mean ±95% CI, ms)");

  stats::Table table(
      {"phone", "emulated", "dn paper", "dn ours", "probes lost"});
  for (const PaperRow& row : kPaper) {
    const auto profile = phone::PhoneProfile::by_name(row.phone);
    for (int i = 0; i < 4; ++i) {
      testbed::Experiment::AcuteMonSpec spec;
      spec.profile = profile;
      spec.emulated_rtt = sim::Duration::millis(kRtts[i]);
      spec.probes = 100;
      const auto result = testbed::Experiment::acutemon(spec);
      table.add_row({row.phone, std::to_string(kRtts[i]) + "ms", row.dn[i],
                     benchx::mean_ci(result.values(&core::LayerSample::dn_ms),
                                     3),
                     std::to_string(result.run.loss_count())});
    }
  }
  std::printf("%s", table.to_string().c_str());
  benchx::note(
      "\nShape check: every dn within ~3ms of the emulated value — AcuteMon"
      "\nprevents the stations from entering PSM during measurement.");
  return 0;
}
