// Campaign-engine throughput: the worker-scaling ladder on a 10^4-shard
// lazily-iterated grid (with per-stage time breakdown), the serial
// events/sec anchor on the legacy 48-scenario grid, the per-workload tool
// matrix (streaming-digest mode), plus the zero-copy packet-path micro
// numbers — written to BENCH_campaign.json so future PRs can track the
// perf trajectory.
//
// Scaling numbers are only meaningful relative to the cores the process
// can actually use, so the JSON records hardware_concurrency AND the
// effective core count (CPU affinity mask) of the machine that produced
// it: a flat ladder on a 1-core container is physics, not contention.
//
// Usage: bench_campaign_throughput [--smoke] [--workers N] [--json PATH]
//                                  [--scaling-guard]
//   --smoke          8 shards on 2 workers (CI: drives the threaded pool
//                    path, the lossy netem axes AND a non-ping workload on
//                    every push)
//   --workers        top of the scaling ladder (default 16; intermediate
//                    1/2/4/8 rows always run)
//   --json           output path (default: BENCH_campaign.json in the cwd)
//   --scaling-guard  exit non-zero unless 8-worker scenarios/sec exceeds
//                    1.5x the 1-worker row — enforced only when >= 4
//                    effective cores are available (on fewer cores the
//                    guard prints the diagnosis and passes: a worker pool
//                    cannot beat physics)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fabric/coordinator.hpp"
#include "fabric/transport.hpp"
#include "fabric/worker.hpp"
#include "net/packet.hpp"
#include "testbed/campaign.hpp"
#include "testbed/experiment.hpp"
#include "tools/factory.hpp"

using namespace acute;
using sim::Duration;

// Counting global allocator: the shard-context pool's whole point is that a
// warm worker context runs shards without touching the heap, so the ladder
// reports allocs/shard measured for real. Atomic (relaxed): pool workers
// allocate concurrently. Same idiom as tests/test_sim_alloc.cpp.
namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t al = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + al - 1) / al * al;
  void* p = std::aligned_alloc(al, rounded == 0 ? al : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// Nothrow variants too: libstdc++ internals (stable_sort's temporary
// buffer) allocate with new(nothrow) but free through plain delete — an
// incomplete replacement pairs the runtime's allocator with our free,
// which ASan rejects as an alloc-dealloc mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

// Pre-refactor baselines, measured at the commit before the move-based
// packet path landed (same container, Release, g++ 12): the 20-probe Fig. 2
// round trip of bench_micro_simcore and the Packet copies per ping probe.
constexpr double kPreRefactorRoundTripNs = 318776.0;
constexpr double kPreRefactorCopiesPerProbe = 25.1;

// events/s of the committed workers=1 row on the 48-scenario default grid
// before the allocation-free event core (std::function + shared_ptr cancel
// state) — the before/after anchor for the perf trajectory.
constexpr double kPreEventCoreEventsPerSec = 4612723.6;

double wall_seconds_since(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Process-lifetime peak RSS in bytes (ru_maxrss is KB on Linux). The
/// per-rung values are monotone across the ladder — each records the
/// process peak as of that rung's end — so the first rung to hit a plateau
/// is the one that set it.
std::size_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

/// Cores this process may actually run on — the affinity mask, not the
/// machine's nominal core count (containers routinely pin to fewer).
std::size_t effective_cores() {
#ifdef __linux__
  cpu_set_t mask;
  if (sched_getaffinity(0, sizeof mask, &mask) == 0) {
    const int count = CPU_COUNT(&mask);
    if (count > 0) return static_cast<std::size_t>(count);
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

struct PoolRun {
  std::size_t workers = 0;
  double wall_seconds = 0;
  double scenarios_per_sec = 0;
  double probes_per_sec = 0;
  double events_per_sec = 0;
  std::size_t probes = 0;
  std::size_t lost = 0;
  /// Per-shard stage seconds summed across workers (campaign.hpp) plus the
  /// report-side digest merge, timed here. In frontier mode (the ladder)
  /// stage.merge already carries the streaming fold, so merge_seconds =
  /// stage.merge + the (then near-zero) final workload_digests() call; in
  /// retained mode stage.merge is 0 and the accessor does the whole merge.
  testbed::StageSeconds stage;
  double merge_seconds = 0;
  /// Fraction of the summed per-shard stage time spent building shards —
  /// the stage the context pool attacks.
  double build_share = 0;
  /// Heap allocations per shard across the whole run (counting global
  /// allocator). A warm context pool drives the steady-state contribution
  /// toward zero; what remains is amortized warm-up plus report plumbing.
  double allocs_per_shard = 0;
  /// Process peak RSS (bytes) when this rung finished.
  std::size_t peak_rss = 0;
};

PoolRun run_pool(const testbed::CampaignSpec& spec, std::size_t workers) {
  testbed::Campaign campaign(spec);
  const std::uint64_t allocs_before =
      g_heap_allocations.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  const testbed::CampaignReport report = campaign.run(workers);
  PoolRun run;
  run.workers = workers;
  run.wall_seconds = wall_seconds_since(start);
  const std::uint64_t run_allocs =
      g_heap_allocations.load(std::memory_order_relaxed) - allocs_before;
  const auto merge_start = std::chrono::steady_clock::now();
  const auto digests = report.workload_digests();
  run.merge_seconds = report.stage.merge + wall_seconds_since(merge_start);
  if (digests.empty()) std::fprintf(stderr, "warning: empty merge\n");
  // shard_count() is retention-mode agnostic: the frontier ladder leaves
  // report.shards empty.
  run.scenarios_per_sec = double(report.shard_count()) / run.wall_seconds;
  run.probes_per_sec = double(report.total_probes()) / run.wall_seconds;
  run.events_per_sec = double(report.total_events()) / run.wall_seconds;
  run.probes = report.total_probes();
  run.lost = report.total_lost();
  run.stage = report.stage;
  const double stage_total = run.stage.build + run.stage.simulate +
                             run.stage.sink + run.merge_seconds;
  if (stage_total > 0) run.build_share = run.stage.build / stage_total;
  if (report.shard_count() > 0) {
    run.allocs_per_shard = double(run_allocs) / double(report.shard_count());
  }
  run.peak_rss = peak_rss_bytes();
  return run;
}

// Distributed-fabric rung: the same scaling grid served by a coordinator to
// forked worker *processes* over the pipe transport (docs/fabric.md). The
// delta against the in-process ladder row with the same worker count is the
// price of process isolation: wire framing, ckpt2 text round-trips and the
// lease protocol.
struct FabricRun {
  std::size_t workers = 0;
  double wall_seconds = 0;
  double scenarios_per_sec = 0;
  double probes_per_sec = 0;
  std::size_t leases_granted = 0;
  /// lease_request -> lease_grant round-trips per second — the protocol
  /// overhead axis the batch size amortizes.
  double lease_roundtrips_per_sec = 0;
};

FabricRun run_fabric(const testbed::CampaignSpec& spec, std::size_t workers) {
  std::vector<std::unique_ptr<fabric::Transport>> coordinator_ends;
  std::vector<pid_t> children;
  for (std::size_t i = 0; i < workers; ++i) {
    auto ends = fabric::transport_pair();
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: drop every inherited coordinator end (so a sibling's death
      // reaches the coordinator as EOF), serve leases, leave without
      // flushing the parent's stdio buffers twice.
      coordinator_ends.clear();
      ends.first.reset();
      fabric::Worker worker(spec);
      (void)worker.run(*ends.second);
      std::_Exit(0);
    }
    children.push_back(pid);
    coordinator_ends.push_back(std::move(ends.first));
    // ends.second (the parent's copy of the worker end) closes here, so
    // only the child holds it.
  }
  fabric::Coordinator coordinator(spec, {});
  const auto start = std::chrono::steady_clock::now();
  const testbed::CampaignReport report =
      coordinator.run(std::move(coordinator_ends));
  FabricRun run;
  run.workers = workers;
  run.wall_seconds = wall_seconds_since(start);
  for (const pid_t pid : children) ::waitpid(pid, nullptr, 0);
  run.scenarios_per_sec = double(report.shard_count()) / run.wall_seconds;
  run.probes_per_sec = double(report.total_probes()) / run.wall_seconds;
  run.leases_granted = coordinator.stats().leases_granted;
  run.lease_roundtrips_per_sec =
      double(run.leases_granted) / run.wall_seconds;
  return run;
}

struct PacketPath {
  double roundtrip_ns = 0;       // 20-probe Fig. 2 run, amortized
  double copies_per_probe = 0;   // Packet copy constructions per probe
};

PacketPath measure_packet_path() {
  // Mirrors bench_micro_simcore's BM_FullProbeRoundTrip without requiring
  // google-benchmark: repeat 20-probe AcuteMon-style runs and amortize.
  constexpr int kRuns = 40;
  net::Packet::reset_op_counters();
  const auto start = std::chrono::steady_clock::now();
  std::size_t samples = 0;
  for (int i = 0; i < kRuns; ++i) {
    testbed::Experiment::AcuteMonSpec spec;
    spec.probes = 20;
    spec.emulated_rtt = Duration::millis(10);
    samples += testbed::Experiment::acutemon(spec).samples.size();
  }
  PacketPath path;
  path.roundtrip_ns = wall_seconds_since(start) * 1e9 / kRuns;
  path.copies_per_probe =
      double(net::Packet::op_counters().copies) / double(kRuns * 20);
  if (samples == 0) std::fprintf(stderr, "warning: no samples collected\n");
  return path;
}

/// The legacy 48-scenario materialized grid: the serial events/sec anchor
/// row keeps the before/after trajectory against kPreEventCoreEventsPerSec
/// comparable across PRs.
testbed::CampaignSpec anchor_campaign() {
  testbed::ScenarioGrid grid;
  grid.phone_counts = {1, 2, 4};
  grid.profiles = {phone::PhoneProfile::nexus5(),
                   phone::PhoneProfile::nexus4()};
  grid.radios = {phone::RadioKind::wifi, phone::RadioKind::cellular};
  grid.emulated_rtts = {Duration::millis(10), Duration::millis(30)};
  grid.cross_traffic = {false, true};
  testbed::CampaignSpec spec;
  spec.seed = 42;
  spec.scenarios = grid.expand();
  spec.probes_per_phone = 10;
  spec.probe_interval = Duration::millis(200);
  return spec;
}

/// The scaling grid: 10^4 minimal shards (one phone, one probe each),
/// iterated lazily — shards are cheap enough that pool mechanics (claim
/// path, shared-writer contention, per-shard construction) dominate, which
/// is exactly what the ladder must expose.
testbed::CampaignSpec scaling_campaign() {
  testbed::ScenarioGrid grid;
  grid.emulated_rtts.clear();
  for (int i = 0; i < 50; ++i) {
    grid.emulated_rtts.push_back(Duration::millis(2 + i));
  }
  grid.loss_rates.clear();
  for (int i = 0; i < 100; ++i) grid.loss_rates.push_back(i * 0.003);
  grid.reorder = {false, true};
  testbed::CampaignSpec spec;
  spec.seed = 2016;
  spec.grid = grid;
  spec.probes_per_phone = 1;
  spec.probe_interval = Duration::millis(50);
  spec.probe_timeout = Duration::millis(400);
  spec.settle = Duration::millis(50);
  spec.keep_samples = false;
  // The ladder runs the frontier fold (the 10^5–10^6-shard mode the bench
  // is a proxy for): per-shard digests are freed as shards retire.
  spec.retain_shards = false;
  return spec;
}

testbed::CampaignSpec smoke_campaign() {
  // Eight shards (loss x reorder x workload) so the 2-worker smoke run
  // enters the threaded pool AND exercises the lossy/reordering netem axes
  // AND a non-ping workload (httping, through the tool factory + streaming
  // digests) on every CI push.
  testbed::ScenarioGrid grid;
  grid.emulated_rtts = {Duration::millis(10)};
  grid.loss_rates = {0.0, 0.05};
  grid.reorder = {false, true};
  grid.workloads = {testbed::WorkloadSpec{tools::ToolKind::icmp_ping},
                    testbed::WorkloadSpec{tools::ToolKind::httping}};
  testbed::CampaignSpec spec;
  spec.scenarios = grid.expand();
  spec.probes_per_phone = 5;
  spec.probe_interval = Duration::millis(200);
  return spec;
}

// Per-workload throughput matrix: the same small grid once per tool kind,
// in streaming-digest mode (keep_samples=false), so the JSON carries a
// scenarios/s row per workload.
struct WorkloadRow {
  tools::ToolKind kind = tools::ToolKind::icmp_ping;
  double wall_seconds = 0;
  double scenarios_per_sec = 0;
  double probes_per_sec = 0;
  double median_rtt_ms = 0;
  std::size_t probes = 0;
  std::size_t lost = 0;
};

WorkloadRow run_workload(tools::ToolKind kind, std::size_t workers) {
  testbed::ScenarioGrid grid;
  grid.profiles = {phone::PhoneProfile::nexus5(),
                   phone::PhoneProfile::nexus4()};
  grid.emulated_rtts = {Duration::millis(10), Duration::millis(30)};
  grid.cross_traffic = {false, true};
  grid.workloads = {testbed::WorkloadSpec{kind}};
  testbed::CampaignSpec spec;
  spec.seed = 42;
  spec.scenarios = grid.expand();
  spec.probes_per_phone = 10;
  spec.probe_interval = Duration::millis(200);
  spec.keep_samples = false;  // the streaming-merge path under test

  testbed::Campaign campaign(spec);
  const auto start = std::chrono::steady_clock::now();
  const testbed::CampaignReport report = campaign.run(workers);
  WorkloadRow row;
  row.kind = kind;
  row.wall_seconds = wall_seconds_since(start);
  row.scenarios_per_sec = double(report.shard_count()) / row.wall_seconds;
  row.probes_per_sec = double(report.total_probes()) / row.wall_seconds;
  row.probes = report.total_probes();
  row.lost = report.total_lost();
  if (report.total_probes() > report.total_lost()) {
    row.median_rtt_ms = report.rtt_digest().quantile(0.5);
  }
  return row;
}

// Passive-vantage overhead rung: the same TCP-workload grid twice — once
// active-only, once with both passive observers (sniffer pping + per-app
// monitor) attached — best of three each. The observers sit on the capture
// and demux hot paths of every frame, so this is the number that catches a
// regression from "pure observer" to "accidental participant"; the budget
// is <= 5% wall overhead.
struct PassiveOverhead {
  double active_seconds = 0;
  double passive_seconds = 0;
  double overhead = 0;  // passive/active - 1
  std::size_t passive_samples = 0;
};

PassiveOverhead run_passive_overhead(std::size_t workers) {
  const auto build_spec = [](passive::PassiveVantage vantage) {
    testbed::ScenarioGrid grid;
    grid.phone_counts = {1, 2};
    grid.emulated_rtts = {Duration::millis(10), Duration::millis(30)};
    grid.cross_traffic = {false, true};
    testbed::WorkloadSpec workload;
    workload.tool = tools::ToolKind::httping;  // TCP: the sniffer works
    workload.passive = vantage;
    grid.workloads = {workload};
    testbed::CampaignSpec spec;
    spec.seed = 42;
    spec.scenarios = grid.expand();
    // Large enough that each side runs ~0.5 s of wall: at the matrix's
    // ~70 ms scale the rung's run-to-run noise dwarfs a 5% budget.
    spec.probes_per_phone = 200;
    spec.probe_interval = Duration::millis(100);
    spec.keep_samples = false;
    return spec;
  };
  constexpr int kRepetitions = 3;
  PassiveOverhead result;
  double active_best = 0, passive_best = 0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    {
      testbed::Campaign campaign(build_spec(passive::PassiveVantage::none));
      const auto start = std::chrono::steady_clock::now();
      (void)campaign.run(workers);
      const double wall = wall_seconds_since(start);
      if (active_best == 0 || wall < active_best) active_best = wall;
    }
    {
      testbed::Campaign campaign(build_spec(passive::PassiveVantage::both));
      const auto start = std::chrono::steady_clock::now();
      const testbed::CampaignReport report = campaign.run(workers);
      const double wall = wall_seconds_since(start);
      if (passive_best == 0 || wall < passive_best) passive_best = wall;
      if (rep == 0) {
        for (const testbed::WorkloadDigest& digest :
             report.workload_digests()) {
          result.passive_samples +=
              digest.passive_sniffer_samples + digest.passive_app_samples;
        }
      }
    }
  }
  result.active_seconds = active_best;
  result.passive_seconds = passive_best;
  result.overhead = passive_best / active_best - 1.0;
  return result;
}

void print_pool_run(const PoolRun& run) {
  std::printf(
      "  workers=%2zu  wall=%.3fs  scenarios/s=%.1f  probes/s=%.0f  "
      "events/s=%.0f  stages(build/sim/sink/merge)="
      "%.3f/%.3f/%.3f/%.3fs  allocs/shard=%.1f  rss=%.1fMB  "
      "(lost %zu/%zu)\n",
      run.workers, run.wall_seconds, run.scenarios_per_sec,
      run.probes_per_sec, run.events_per_sec, run.stage.build,
      run.stage.simulate, run.stage.sink, run.merge_seconds,
      run.allocs_per_shard, double(run.peak_rss) / (1024.0 * 1024.0),
      run.lost, run.probes);
}

void json_pool_run(std::FILE* json, const PoolRun& run, bool last) {
  std::fprintf(
      json,
      "      {\"workers\": %zu, \"wall_seconds\": %.4f, "
      "\"scenarios_per_sec\": %.2f, \"probes_per_sec\": %.1f, "
      "\"events_per_sec\": %.1f, \"probes\": %zu, \"lost\": %zu, "
      "\"peak_rss_bytes\": %zu, \"allocs_per_shard\": %.1f, "
      "\"build_share\": %.3f, "
      "\"stage_seconds\": {\"build\": %.4f, \"simulate\": %.4f, "
      "\"sink\": %.4f, \"merge\": %.4f}}%s\n",
      run.workers, run.wall_seconds, run.scenarios_per_sec,
      run.probes_per_sec, run.events_per_sec, run.probes, run.lost,
      run.peak_rss, run.allocs_per_shard, run.build_share, run.stage.build,
      run.stage.simulate, run.stage.sink, run.merge_seconds,
      last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool scaling_guard = false;
  std::size_t max_workers = 16;
  std::string json_path = "BENCH_campaign.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--scaling-guard") == 0) {
      scaling_guard = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      max_workers = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--workers N] [--json PATH] "
                   "[--scaling-guard]\n",
                   argv[0]);
      return 1;
    }
  }
  if (max_workers == 0) max_workers = 1;

  const std::size_t hardware = std::thread::hardware_concurrency();
  const std::size_t cores = effective_cores();
  std::printf("host: hardware_concurrency=%zu effective_cores=%zu\n",
              hardware, cores);

  if (smoke) {
    const testbed::CampaignSpec spec = smoke_campaign();
    std::printf("campaign: %zu scenarios, %d probes/phone (smoke)\n",
                spec.scenarios.size(), spec.probes_per_phone);
    const PoolRun run = run_pool(spec, 2);
    print_pool_run(run);
    std::printf("packet path: measuring...\n");
    const PacketPath path = measure_packet_path();
    std::printf("  roundtrip=%.0f ns/20-probe run  copies/probe=%.1f\n",
                path.roundtrip_ns, path.copies_per_probe);
    std::FILE* json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(json,
                 "{\n"
                 "  \"host\": {\"hardware_concurrency\": %zu, "
                 "\"effective_cores\": %zu},\n"
                 "  \"campaign\": {\n"
                 "    \"smoke\": true,\n"
                 "    \"scenarios\": %zu,\n"
                 "    \"pool_runs\": [\n",
                 hardware, cores, spec.scenarios.size());
    json_pool_run(json, run, /*last=*/true);
    std::fprintf(json,
                 "    ]\n"
                 "  },\n"
                 "  \"packet_path\": {\n"
                 "    \"roundtrip_ns_per_20probe_run\": %.1f,\n"
                 "    \"copies_per_probe\": %.2f\n"
                 "  }\n"
                 "}\n",
                 path.roundtrip_ns, path.copies_per_probe);
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
    return 0;
  }

  // Serial anchor: the legacy 48-scenario grid, workers=1, comparable
  // against the committed pre-event-core events/sec. Best of three
  // repetitions: a single ~0.2s run is at the mercy of scheduler noise and
  // cold caches, which previously swung the vs-baseline ratio by almost 2x
  // between otherwise identical commits.
  constexpr int kAnchorRepetitions = 3;
  const testbed::CampaignSpec anchor_spec = anchor_campaign();
  std::printf("anchor: %zu scenarios, %d probes/phone, workers=1, "
              "best of %d\n",
              anchor_spec.scenarios.size(), anchor_spec.probes_per_phone,
              kAnchorRepetitions);
  PoolRun anchor = run_pool(anchor_spec, 1);
  for (int rep = 1; rep < kAnchorRepetitions; ++rep) {
    const PoolRun repeat = run_pool(anchor_spec, 1);
    if (repeat.events_per_sec > anchor.events_per_sec) anchor = repeat;
  }
  print_pool_run(anchor);
  std::printf(
      "  events/s vs pre-event-core baseline (%.0f): %.2fx\n",
      kPreEventCoreEventsPerSec,
      anchor.events_per_sec / kPreEventCoreEventsPerSec);

  // The scaling ladder: 10^4 lazy shards, 1/2/4/8/16 workers.
  const testbed::CampaignSpec scaling_spec = scaling_campaign();
  testbed::Campaign sizing(scaling_spec);
  std::printf("scaling grid: %zu lazy shards, %d probe/phone\n",
              sizing.scenario_count(), scaling_spec.probes_per_phone);
  std::vector<PoolRun> ladder;
  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8},
        std::size_t{16}}) {
    if (workers > max_workers && workers != 1) continue;
    const PoolRun run = run_pool(scaling_spec, workers);
    ladder.push_back(run);
    print_pool_run(run);
  }
  double scaling_efficiency = 0;
  const PoolRun* eight = nullptr;
  for (const PoolRun& run : ladder) {
    if (run.workers == 8) eight = &run;
  }
  if (eight != nullptr && !ladder.empty()) {
    scaling_efficiency = eight->scenarios_per_sec /
                         ladder.front().scenarios_per_sec;
    std::printf("  scaling: 8-worker/1-worker scenarios/s = %.2fx "
                "(%zu effective cores)\n",
                scaling_efficiency, cores);
  }

  // The fabric rung: the same grid served to forked worker processes.
  std::vector<FabricRun> fabric_ladder;
  std::printf("fabric (coordinator + forked worker processes, same grid):\n");
  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    if (workers > max_workers && workers != 1) continue;
    const FabricRun run = run_fabric(scaling_spec, workers);
    fabric_ladder.push_back(run);
    std::printf(
        "  workers=%2zu  wall=%.3fs  scenarios/s=%.1f  probes/s=%.0f  "
        "leases=%zu  lease-roundtrips/s=%.1f\n",
        run.workers, run.wall_seconds, run.scenarios_per_sec,
        run.probes_per_sec, run.leases_granted,
        run.lease_roundtrips_per_sec);
  }

  // Per-workload matrix: one row per tool kind on the same 8-scenario
  // grid, streaming-digest mode.
  std::vector<WorkloadRow> matrix;
  const std::size_t matrix_workers = std::min<std::size_t>(max_workers, 4);
  std::printf("workload matrix (8 scenarios/tool, %zu workers, streaming "
              "merge):\n",
              matrix_workers);
  for (const auto kind :
       {tools::ToolKind::acutemon, tools::ToolKind::icmp_ping,
        tools::ToolKind::httping, tools::ToolKind::java_ping}) {
    const WorkloadRow row = run_workload(kind, matrix_workers);
    matrix.push_back(row);
    std::printf(
        "  %-10s wall=%.3fs  scenarios/s=%.1f  probes/s=%.0f  "
        "median=%.2f ms  (lost %zu/%zu)\n",
        tools::to_string(row.kind), row.wall_seconds, row.scenarios_per_sec,
        row.probes_per_sec, row.median_rtt_ms, row.lost, row.probes);
  }

  // Passive-vantage overhead: the <= 5% budget of the pure-observer rung.
  const PassiveOverhead passive = run_passive_overhead(matrix_workers);
  std::printf(
      "passive overhead (httping grid, both vantages, best of 3):\n"
      "  active=%.3fs  passive=%.3fs  overhead=%.1f%%  "
      "(%zu passive samples; budget <= 5%%)\n",
      passive.active_seconds, passive.passive_seconds,
      passive.overhead * 100.0, passive.passive_samples);

  std::printf("packet path: measuring...\n");
  const PacketPath path = measure_packet_path();
  std::printf(
      "  roundtrip=%.0f ns/20-probe run (pre-refactor %.0f, %.1fx)\n"
      "  copies/probe=%.1f (pre-refactor %.1f)\n",
      path.roundtrip_ns, kPreRefactorRoundTripNs,
      kPreRefactorRoundTripNs / path.roundtrip_ns, path.copies_per_probe,
      kPreRefactorCopiesPerProbe);

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"host\": {\"hardware_concurrency\": %zu, "
               "\"effective_cores\": %zu},\n"
               "  \"campaign\": {\n"
               "    \"smoke\": false,\n"
               "    \"anchor\": {\n"
               "      \"scenarios\": %zu,\n"
               "      \"probes_per_phone\": %d,\n"
               "      \"workers\": 1,\n"
               "      \"repetitions\": %d,\n"
               "      \"events_per_sec\": %.1f,\n"
               "      \"baseline_events_per_sec\": %.1f,\n"
               "      \"events_per_sec_vs_baseline\": %.3f\n"
               "    },\n"
               "    \"scaling\": {\n"
               "      \"scenarios\": %zu,\n"
               "      \"lazy_grid\": true,\n"
               "      \"frontier_merge\": true,\n"
               "      \"probes_per_phone\": %d,\n"
               "      \"ladder\": [\n",
               hardware, cores, anchor_spec.scenarios.size(),
               anchor_spec.probes_per_phone, kAnchorRepetitions,
               anchor.events_per_sec,
               kPreEventCoreEventsPerSec,
               anchor.events_per_sec / kPreEventCoreEventsPerSec,
               sizing.scenario_count(), scaling_spec.probes_per_phone);
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    json_pool_run(json, ladder[i], i + 1 == ladder.size());
  }
  std::fprintf(json,
               "      ],\n"
               "      \"scaling_efficiency_8_workers\": %.3f\n"
               "    },\n"
               "    \"fabric\": {\n"
               "      \"scenarios\": %zu,\n"
               "      \"transport\": \"pipe\",\n"
               "      \"ladder\": [\n",
               scaling_efficiency, sizing.scenario_count());
  for (std::size_t i = 0; i < fabric_ladder.size(); ++i) {
    const FabricRun& run = fabric_ladder[i];
    std::fprintf(json,
                 "      {\"workers\": %zu, \"wall_seconds\": %.4f, "
                 "\"scenarios_per_sec\": %.2f, \"probes_per_sec\": %.1f, "
                 "\"leases_granted\": %zu, "
                 "\"lease_roundtrips_per_sec\": %.2f}%s\n",
                 run.workers, run.wall_seconds, run.scenarios_per_sec,
                 run.probes_per_sec, run.leases_granted,
                 run.lease_roundtrips_per_sec,
                 i + 1 < fabric_ladder.size() ? "," : "");
  }
  std::fprintf(json,
               "      ]\n"
               "    },\n"
               "    \"workload_matrix\": [\n");
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const WorkloadRow& row = matrix[i];
    std::fprintf(json,
                 "      {\"tool\": \"%s\", \"wall_seconds\": %.4f, "
                 "\"scenarios_per_sec\": %.2f, \"probes_per_sec\": %.1f, "
                 "\"median_rtt_ms\": %.2f, \"probes\": %zu, "
                 "\"lost\": %zu}%s\n",
                 tools::to_string(row.kind), row.wall_seconds,
                 row.scenarios_per_sec, row.probes_per_sec,
                 row.median_rtt_ms, row.probes, row.lost,
                 i + 1 < matrix.size() ? "," : "");
  }
  std::fprintf(json,
               "    ],\n"
               "    \"passive_overhead\": {\n"
               "      \"tool\": \"httping\",\n"
               "      \"vantage\": \"both\",\n"
               "      \"workers\": %zu,\n"
               "      \"active_seconds\": %.4f,\n"
               "      \"passive_seconds\": %.4f,\n"
               "      \"overhead\": %.4f,\n"
               "      \"overhead_budget\": 0.05,\n"
               "      \"passive_samples\": %zu\n"
               "    }\n"
               "  },\n"
               "  \"packet_path\": {\n"
               "    \"roundtrip_ns_per_20probe_run\": %.1f,\n"
               "    \"copies_per_probe\": %.2f,\n"
               "    \"pre_refactor_roundtrip_ns\": %.1f,\n"
               "    \"pre_refactor_copies_per_probe\": %.1f\n"
               "  }\n"
               "}\n",
               matrix_workers, passive.active_seconds,
               passive.passive_seconds, passive.overhead,
               passive.passive_samples, path.roundtrip_ns,
               path.copies_per_probe, kPreRefactorRoundTripNs,
               kPreRefactorCopiesPerProbe);
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());

  if (scaling_guard) {
    if (cores < 4) {
      std::printf(
          "scaling guard: SKIPPED — %zu effective core(s); a worker pool "
          "cannot scale without cores to run on\n",
          cores);
      return 0;
    }
    if (eight == nullptr || scaling_efficiency <= 1.5) {
      std::fprintf(stderr,
                   "scaling guard: FAILED — 8-worker scenarios/s is only "
                   "%.2fx the 1-worker row (need > 1.5x on %zu cores)\n",
                   scaling_efficiency, cores);
      return 1;
    }
    std::printf("scaling guard: OK (%.2fx on %zu cores)\n",
                scaling_efficiency, cores);
  }
  return 0;
}
