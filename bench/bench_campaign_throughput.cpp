// Campaign-engine throughput: scenarios/sec and packets/sec through the
// sharded worker pool, the per-workload tool matrix (streaming-digest mode),
// plus the zero-copy packet-path micro numbers, written to
// BENCH_campaign.json so future PRs can track the perf trajectory.
//
// Usage: bench_campaign_throughput [--smoke] [--workers N] [--json PATH]
//   --smoke    8 shards on 2 workers (CI: drives the threaded pool path,
//              the lossy netem axes AND a non-ping workload on every push)
//   --workers  max worker count to scale to (default: hardware concurrency,
//              but at least 8 so the committed JSON always carries the full
//              1/2/4/8 ladder; extra workers just oversubscribe)
//   --json     output path (default: BENCH_campaign.json in the cwd)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/packet.hpp"
#include "testbed/campaign.hpp"
#include "testbed/experiment.hpp"
#include "tools/factory.hpp"

using namespace acute;
using sim::Duration;

namespace {

// Pre-refactor baselines, measured at the commit before the move-based
// packet path landed (same container, Release, g++ 12): the 20-probe Fig. 2
// round trip of bench_micro_simcore and the Packet copies per ping probe.
constexpr double kPreRefactorRoundTripNs = 318776.0;
constexpr double kPreRefactorCopiesPerProbe = 25.1;

// events/s of the committed workers=1 row on the 48-scenario default grid
// before the allocation-free event core (std::function + shared_ptr cancel
// state) — the before/after anchor for this PR's speedup column.
constexpr double kPreEventCoreEventsPerSec = 4612723.6;

double wall_seconds_since(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct PoolRun {
  std::size_t workers = 0;
  double wall_seconds = 0;
  double scenarios_per_sec = 0;
  double probes_per_sec = 0;
  double frames_per_sec = 0;
  double events_per_sec = 0;
  std::size_t probes = 0;
  std::size_t lost = 0;
};

PoolRun run_pool(const testbed::CampaignSpec& spec, std::size_t workers) {
  testbed::Campaign campaign(spec);
  const auto start = std::chrono::steady_clock::now();
  const testbed::CampaignReport report = campaign.run(workers);
  PoolRun run;
  run.workers = workers;
  run.wall_seconds = wall_seconds_since(start);
  run.scenarios_per_sec = double(report.shards.size()) / run.wall_seconds;
  run.probes_per_sec = double(report.total_probes()) / run.wall_seconds;
  run.frames_per_sec = double(report.total_frames()) / run.wall_seconds;
  run.events_per_sec = double(report.total_events()) / run.wall_seconds;
  run.probes = report.total_probes();
  run.lost = report.total_lost();
  return run;
}

struct PacketPath {
  double roundtrip_ns = 0;       // 20-probe Fig. 2 run, amortized
  double copies_per_probe = 0;   // Packet copy constructions per probe
};

PacketPath measure_packet_path() {
  // Mirrors bench_micro_simcore's BM_FullProbeRoundTrip without requiring
  // google-benchmark: repeat 20-probe AcuteMon-style runs and amortize.
  constexpr int kRuns = 40;
  net::Packet::reset_op_counters();
  const auto start = std::chrono::steady_clock::now();
  std::size_t samples = 0;
  for (int i = 0; i < kRuns; ++i) {
    testbed::Experiment::AcuteMonSpec spec;
    spec.probes = 20;
    spec.emulated_rtt = Duration::millis(10);
    samples += testbed::Experiment::acutemon(spec).samples.size();
  }
  PacketPath path;
  path.roundtrip_ns = wall_seconds_since(start) * 1e9 / kRuns;
  path.copies_per_probe =
      double(net::Packet::op_counters().copies) / double(kRuns * 20);
  if (samples == 0) std::fprintf(stderr, "warning: no samples collected\n");
  return path;
}

testbed::CampaignSpec default_campaign() {
  testbed::ScenarioGrid grid;
  grid.phone_counts = {1, 2, 4};
  grid.profiles = {phone::PhoneProfile::nexus5(),
                   phone::PhoneProfile::nexus4()};
  grid.radios = {phone::RadioKind::wifi, phone::RadioKind::cellular};
  grid.emulated_rtts = {Duration::millis(10), Duration::millis(30)};
  grid.cross_traffic = {false, true};
  testbed::CampaignSpec spec;
  spec.seed = 42;
  spec.scenarios = grid.expand();
  spec.probes_per_phone = 10;
  spec.probe_interval = Duration::millis(200);
  return spec;
}

testbed::CampaignSpec smoke_campaign() {
  // Eight shards (loss x reorder x workload) so the 2-worker smoke run
  // enters the threaded pool AND exercises the lossy/reordering netem axes
  // AND a non-ping workload (httping, through the tool factory + streaming
  // digests) on every CI push.
  testbed::ScenarioGrid grid;
  grid.emulated_rtts = {Duration::millis(10)};
  grid.loss_rates = {0.0, 0.05};
  grid.reorder = {false, true};
  grid.workloads = {testbed::WorkloadSpec{tools::ToolKind::icmp_ping},
                    testbed::WorkloadSpec{tools::ToolKind::httping}};
  testbed::CampaignSpec spec;
  spec.scenarios = grid.expand();
  spec.probes_per_phone = 5;
  spec.probe_interval = Duration::millis(200);
  return spec;
}

// Per-workload throughput matrix: the same small grid once per tool kind,
// in streaming-digest mode (keep_samples=false), so the JSON carries a
// scenarios/s row per workload.
struct WorkloadRow {
  tools::ToolKind kind = tools::ToolKind::icmp_ping;
  double wall_seconds = 0;
  double scenarios_per_sec = 0;
  double probes_per_sec = 0;
  double median_rtt_ms = 0;
  std::size_t probes = 0;
  std::size_t lost = 0;
};

WorkloadRow run_workload(tools::ToolKind kind, std::size_t workers) {
  testbed::ScenarioGrid grid;
  grid.profiles = {phone::PhoneProfile::nexus5(),
                   phone::PhoneProfile::nexus4()};
  grid.emulated_rtts = {Duration::millis(10), Duration::millis(30)};
  grid.cross_traffic = {false, true};
  grid.workloads = {testbed::WorkloadSpec{kind}};
  testbed::CampaignSpec spec;
  spec.seed = 42;
  spec.scenarios = grid.expand();
  spec.probes_per_phone = 10;
  spec.probe_interval = Duration::millis(200);
  spec.keep_samples = false;  // the streaming-merge path under test

  testbed::Campaign campaign(spec);
  const auto start = std::chrono::steady_clock::now();
  const testbed::CampaignReport report = campaign.run(workers);
  WorkloadRow row;
  row.kind = kind;
  row.wall_seconds = wall_seconds_since(start);
  row.scenarios_per_sec = double(report.shards.size()) / row.wall_seconds;
  row.probes_per_sec = double(report.total_probes()) / row.wall_seconds;
  row.probes = report.total_probes();
  row.lost = report.total_lost();
  if (report.total_probes() > report.total_lost()) {
    row.median_rtt_ms = report.rtt_digest().quantile(0.5);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  // Default ladder top: at least 8 so the committed JSON always carries the
  // full 1/2/4/8 scaling rows (worker counts beyond the core count just
  // oversubscribe; shard results are seed-deterministic either way).
  std::size_t max_workers =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 8);
  std::string json_path = "BENCH_campaign.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      max_workers = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--workers N] [--json PATH]\n",
                   argv[0]);
      return 1;
    }
  }
  if (max_workers == 0) max_workers = 1;

  const testbed::CampaignSpec spec =
      smoke ? smoke_campaign() : default_campaign();
  std::printf("campaign: %zu scenarios, %d probes/phone%s\n",
              spec.scenarios.size(), spec.probes_per_phone,
              smoke ? " (smoke)" : "");

  std::vector<PoolRun> runs;
  // Smoke mode runs the pool with 2 workers so the threaded claim loop is
  // exercised on every push; full mode records the 1/2/4/8 scaling ladder
  // (workers beyond --workers N are skipped, except the serial anchor row).
  std::vector<std::size_t> worker_counts;
  if (smoke) {
    worker_counts.push_back(2);
  } else {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
      if (workers == 1 || workers <= max_workers) {
        worker_counts.push_back(workers);
      }
    }
  }
  for (const std::size_t workers : worker_counts) {
    const PoolRun run = run_pool(spec, workers);
    runs.push_back(run);
    std::printf(
        "  workers=%zu  wall=%.3fs  scenarios/s=%.1f  probes/s=%.0f  "
        "frames/s=%.0f  events/s=%.0f  (lost %zu/%zu)\n",
        run.workers, run.wall_seconds, run.scenarios_per_sec,
        run.probes_per_sec, run.frames_per_sec, run.events_per_sec, run.lost,
        run.probes);
  }
  if (!smoke && !runs.empty()) {
    std::printf(
        "  events/s vs pre-event-core baseline (%.0f): %.2fx (workers=1)\n",
        kPreEventCoreEventsPerSec,
        runs.front().events_per_sec / kPreEventCoreEventsPerSec);
  }

  // Per-workload matrix (full mode): one row per tool kind on the same
  // 8-scenario grid, streaming-digest mode.
  std::vector<WorkloadRow> matrix;
  if (!smoke) {
    const std::size_t matrix_workers = std::min<std::size_t>(max_workers, 4);
    std::printf("workload matrix (8 scenarios/tool, %zu workers, streaming "
                "merge):\n",
                matrix_workers);
    for (const auto kind :
         {tools::ToolKind::acutemon, tools::ToolKind::icmp_ping,
          tools::ToolKind::httping, tools::ToolKind::java_ping}) {
      const WorkloadRow row = run_workload(kind, matrix_workers);
      matrix.push_back(row);
      std::printf(
          "  %-10s wall=%.3fs  scenarios/s=%.1f  probes/s=%.0f  "
          "median=%.2f ms  (lost %zu/%zu)\n",
          tools::to_string(row.kind), row.wall_seconds,
          row.scenarios_per_sec, row.probes_per_sec, row.median_rtt_ms,
          row.lost, row.probes);
    }
  }

  std::printf("packet path: measuring...\n");
  const PacketPath path = measure_packet_path();
  std::printf(
      "  roundtrip=%.0f ns/20-probe run (pre-refactor %.0f, %.1fx)\n"
      "  copies/probe=%.1f (pre-refactor %.1f)\n",
      path.roundtrip_ns, kPreRefactorRoundTripNs,
      kPreRefactorRoundTripNs / path.roundtrip_ns, path.copies_per_probe,
      kPreRefactorCopiesPerProbe);

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"campaign\": {\n"
               "    \"smoke\": %s,\n"
               "    \"scenarios\": %zu,\n"
               "    \"probes_per_phone\": %d,\n"
               "    \"pool_runs\": [\n",
               smoke ? "true" : "false", spec.scenarios.size(),
               spec.probes_per_phone);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const PoolRun& run = runs[i];
    std::fprintf(json,
                 "      {\"workers\": %zu, \"wall_seconds\": %.4f, "
                 "\"scenarios_per_sec\": %.2f, \"probes_per_sec\": %.1f, "
                 "\"frames_per_sec\": %.1f, \"events_per_sec\": %.1f, "
                 "\"probes\": %zu, \"lost\": %zu}%s\n",
                 run.workers, run.wall_seconds, run.scenarios_per_sec,
                 run.probes_per_sec, run.frames_per_sec, run.events_per_sec,
                 run.probes, run.lost, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json, "    ]");
  if (!smoke && !runs.empty()) {
    // Before/after anchor: the serial (workers=1) row against the committed
    // pre-event-core number, both on the same 48-scenario default grid.
    std::fprintf(json,
                 ",\n"
                 "    \"baseline_events_per_sec\": %.1f,\n"
                 "    \"events_per_sec_vs_baseline\": %.3f",
                 kPreEventCoreEventsPerSec,
                 runs.front().events_per_sec / kPreEventCoreEventsPerSec);
  }
  if (!matrix.empty()) {
    // Per-workload scenarios/s rows (8-scenario grid each, streaming merge).
    std::fprintf(json, ",\n    \"workload_matrix\": [\n");
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      const WorkloadRow& row = matrix[i];
      std::fprintf(json,
                   "      {\"tool\": \"%s\", \"wall_seconds\": %.4f, "
                   "\"scenarios_per_sec\": %.2f, \"probes_per_sec\": %.1f, "
                   "\"median_rtt_ms\": %.2f, \"probes\": %zu, "
                   "\"lost\": %zu}%s\n",
                   tools::to_string(row.kind), row.wall_seconds,
                   row.scenarios_per_sec, row.probes_per_sec,
                   row.median_rtt_ms, row.probes, row.lost,
                   i + 1 < matrix.size() ? "," : "");
    }
    std::fprintf(json, "    ]");
  }
  std::fprintf(json,
               "\n"
               "  },\n"
               "  \"packet_path\": {\n");
  std::fprintf(json,
               "    \"roundtrip_ns_per_20probe_run\": %.1f,\n"
               "    \"copies_per_probe\": %.2f,\n"
               "    \"pre_refactor_roundtrip_ns\": %.1f,\n"
               "    \"pre_refactor_copies_per_probe\": %.1f\n"
               "  }\n"
               "}\n",
               path.roundtrip_ns, path.copies_per_probe,
               kPreRefactorRoundTripNs, kPreRefactorCopiesPerProbe);
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
