// Figure 8: CDFs of the RTT measured by AcuteMon, httping, ping and Java
// ping on the Nexus 5 over a 30 ms emulated path, without (a) and with (b)
// iPerf cross traffic (10 UDP connections x 2.5 Mbit/s — enough to congest
// an 802.11g WLAN; the paper measured only ~10 Mbit/s of goodput).
//
// Shape claims: AcuteMon dominates every other tool in both scenarios
// (~90% of its RTTs < 35 ms without load; the other tools sit >10 ms to the
// right); with cross traffic all curves shift right but the ordering holds.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "stats/cdf.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"

using namespace acute;

namespace {

void run_scenario(bool cross_traffic) {
  benchx::heading(cross_traffic
                      ? "Figure 8(b) — with cross traffic"
                      : "Figure 8(a) — without cross traffic");
  stats::Table table({"tool", "p10", "p25", "p50", "p75", "p90", "max",
                      "P(rtt<35ms)"});
  const testbed::ToolKind kinds[] = {
      testbed::ToolKind::acutemon, testbed::ToolKind::httping,
      testbed::ToolKind::icmp_ping, testbed::ToolKind::java_ping};

  double throughput = 0;
  for (const auto kind : kinds) {
    testbed::Experiment::ToolSpec spec;
    spec.kind = kind;
    spec.profile = phone::PhoneProfile::nexus5();
    spec.emulated_rtt = sim::Duration::millis(30);
    spec.probes = 100;
    spec.cross_traffic = cross_traffic;
    const auto result = testbed::Experiment::tool(spec);
    throughput = std::max(throughput, result.cross_throughput_mbps);

    const auto rtts = result.run.reported_rtts_ms();
    const stats::Cdf cdf(rtts);
    table.add_row({to_string(kind), stats::Table::cell(cdf.quantile(0.10)),
                   stats::Table::cell(cdf.quantile(0.25)),
                   stats::Table::cell(cdf.quantile(0.50)),
                   stats::Table::cell(cdf.quantile(0.75)),
                   stats::Table::cell(cdf.quantile(0.90)),
                   stats::Table::cell(cdf.sorted().back()),
                   stats::Table::cell(cdf.at(35.0), 2)});
  }
  std::printf("%s", table.to_string().c_str());
  if (cross_traffic) {
    std::printf("cross-traffic goodput: %.1f Mbit/s of %.1f offered\n",
                throughput, 25.0);
  }
}

}  // namespace

int main() {
  run_scenario(false);
  run_scenario(true);
  benchx::note(
      "\nShape check: AcuteMon's CDF sits >10ms left of every other tool in"
      "\nboth scenarios; cross traffic shifts all curves right and the WLAN"
      "\nsaturates near ~10 Mbit/s as in §4.3.");
  return 0;
}
