// Shared helpers for the paper-reproduction bench binaries: each bench
// prints the paper's reported numbers next to the values this reproduction
// measures, so the shape claims can be eyeballed (and EXPERIMENTS.md filled).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "stats/summary.hpp"

namespace acute::benchx {

inline void heading(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%s\n", std::string(title.size(), '=').c_str());
}

inline void note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

/// "mean ±ci" with fixed precision.
inline std::string mean_ci(const std::vector<double>& sample,
                           int precision = 2) {
  return stats::Summary(sample).mean_ci_string(precision);
}

}  // namespace acute::benchx
