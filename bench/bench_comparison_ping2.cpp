// Related-work comparison (§1): ping2 [Sui et al., MobiSys'16] vs AcuteMon.
//
// The paper's claim under test: "ping2 can be used only for network paths
// with short nRTT and cannot remove the inflations completely, because,
// when nRTT is long, the device could fall back to the inactive state again
// before it receives the response packet and starts the second ping."
//
// Sweep the emulated RTT and report the median *overhead* (measured minus
// true network RTT) of ping2's second ping vs AcuteMon, on a Broadcom
// handset (Tis = 50 ms binds) and on the Nexus 4 (Tip ~40 ms binds, where
// long paths additionally hit PSM buffering at the AP).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/acutemon.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"
#include "testbed/testbed.hpp"
#include "tools/ping2.hpp"

using namespace acute;

namespace {

double ping2_overhead(const phone::PhoneProfile& profile, int rtt_ms,
                      std::uint64_t seed) {
  testbed::TestbedConfig config;
  config.profile = profile;
  config.emulated_rtt = sim::Duration::millis(rtt_ms);
  config.seed = seed;
  testbed::Testbed testbed(config);
  testbed.settle(sim::Duration::millis(800));

  tools::Ping2Prober::Config p2;
  p2.target = testbed::Testbed::kPhoneId;
  p2.pairs = 60;
  p2.timeout = sim::Duration::seconds(1);
  tools::Ping2Prober prober(testbed.simulator(), testbed.server(), p2);
  prober.start();
  auto& sim = testbed.simulator();
  const auto deadline = sim.now() + sim::Duration::seconds(300);
  while (!prober.finished() && sim.now() < deadline) {
    sim.run_for(sim::Duration::millis(50));
  }
  const double fabric_ms = 1.3;  // wired + air + AP forwarding
  return stats::Summary(prober.result().second_rtts_ms).median() - rtt_ms -
         fabric_ms;
}

double acutemon_overhead(const phone::PhoneProfile& profile, int rtt_ms,
                         std::uint64_t seed) {
  testbed::Experiment::AcuteMonSpec spec;
  spec.profile = profile;
  spec.emulated_rtt = sim::Duration::millis(rtt_ms);
  spec.probes = 60;
  spec.seed = seed;
  const auto result = testbed::Experiment::acutemon(spec);
  return stats::Summary(
             result.values(&core::LayerSample::total_overhead))
      .median();
}

}  // namespace

int main() {
  benchx::heading(
      "Related-work comparison — ping2 [34] vs AcuteMon "
      "(median overhead above the true network RTT, ms)");

  stats::Table table({"emulated RTT", "ping2 N5", "AcuteMon N5", "ping2 N4",
                      "AcuteMon N4"});
  std::uint64_t seed = 70;
  for (const int rtt_ms : {10, 30, 60, 85, 135}) {
    table.add_row(
        {std::to_string(rtt_ms) + "ms",
         stats::Table::cell(
             ping2_overhead(phone::PhoneProfile::nexus5(), rtt_ms, seed++)),
         stats::Table::cell(acutemon_overhead(phone::PhoneProfile::nexus5(),
                                              rtt_ms, seed++)),
         stats::Table::cell(
             ping2_overhead(phone::PhoneProfile::nexus4(), rtt_ms, seed++)),
         stats::Table::cell(acutemon_overhead(phone::PhoneProfile::nexus4(),
                                              rtt_ms, seed++))});
  }
  std::printf("%s", table.to_string().c_str());
  benchx::note(
      "\nExpected, per the paper's critique: ping2 matches AcuteMon on short"
      "\npaths (< Tis), but once the RTT exceeds the bus-sleep timeout the"
      "\nphone re-sleeps between the two pings (~+10ms on Broadcom), and on"
      "\nthe Nexus 4 paths beyond Tip (~40ms) additionally hit PSM buffering"
      "\n(tens of ms). AcuteMon stays < 3ms at every path length.");
  return 0;
}
