// acute_fabric — distributed campaign driver (docs/fabric.md).
//
// Three modes over one shared demo campaign (the scaling sweep: 50 emulated
// RTTs × reorder on/off × an N-scaled loss axis, lazy grid):
//
//   acute_fabric local      [spec flags] --digest-out ref.txt
//     Single-process, single-thread Campaign::run — the bit-identity
//     reference every fabric run must reproduce byte for byte.
//
//   acute_fabric coordinate [spec flags] [--spawn N] [--socket PATH] ...
//     Runs the coordinator. --spawn forks N local worker processes over
//     socketpairs (their pids print as "worker-pid <pid>" so a harness can
//     kill one mid-run); --socket additionally accepts external workers.
//
//   acute_fabric work --socket PATH [spec flags]
//     Runs one worker process against a listening coordinator. The spec
//     flags must match the coordinator's — the handshake rejects a
//     mismatch loudly.
//
// The digest dump (--digest-out) serializes every merged workload digest
// with IEEE-754 bit patterns, so two runs merged identically produce
// byte-identical files — `diff` is the verifier, no tolerance windows.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fabric/coordinator.hpp"
#include "fabric/transport.hpp"
#include "fabric/worker.hpp"
#include "sim/contracts.hpp"
#include "stats/digest_io.hpp"
#include "testbed/campaign.hpp"
#include "tools/factory.hpp"

namespace {

using acute::fabric::Coordinator;
using acute::fabric::CoordinatorConfig;
using acute::fabric::Transport;
using acute::fabric::UnixListener;
using acute::fabric::Worker;
using acute::testbed::Campaign;
using acute::testbed::CampaignReport;
using acute::testbed::CampaignSpec;
using acute::testbed::ScenarioGrid;

struct Options {
  std::string mode;
  std::size_t shards = 1000;
  int probes = 1;
  std::uint64_t seed = 2016;
  std::string socket_path;
  std::string checkpoint;
  std::string digest_out;
  std::size_t spawn = 0;
  std::size_t batch = 16;
  std::uint64_t lease_timeout_ms = 10'000;
  std::size_t max_shards = 0;
  std::size_t workers = 1;  // local-mode thread count
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <local|coordinate|work> [options]\n"
      "  spec (must match across coordinator and workers):\n"
      "    --shards N            demo sweep size, rounded up to 100 "
      "(default 1000)\n"
      "    --probes N            probes per phone (default 1)\n"
      "    --seed S              campaign seed (default 2016)\n"
      "  coordinate:\n"
      "    --spawn N             fork N local worker processes\n"
      "    --socket PATH         also accept workers on a unix socket\n"
      "    --checkpoint PATH     coordinator checkpoint (resume on rerun)\n"
      "    --batch N             scenario indices per lease (default 16)\n"
      "    --lease-timeout-ms N  heartbeat deadline (default 10000)\n"
      "    --max-shards N        cap pending shards this run (default all)\n"
      "  work:\n"
      "    --socket PATH         coordinator socket to join\n"
      "  local:\n"
      "    --workers N           thread count (default 1)\n"
      "    --checkpoint PATH     campaign checkpoint\n"
      "  output:\n"
      "    --digest-out PATH     write the merged-digest dump here\n",
      argv0);
  return 1;
}

/// The shared demo campaign: the frontier scaling sweep, sized by --shards
/// (grid size = 100 × ceil(shards / 100); 50 RTT steps × 2 reorder states
/// × loss steps). Identical flags produce identical specs in every mode —
/// which is exactly what the fabric handshake verifies.
CampaignSpec demo_spec(const Options& options) {
  ScenarioGrid grid;
  grid.emulated_rtts.clear();
  for (int i = 0; i < 50; ++i) {
    grid.emulated_rtts.push_back(acute::sim::Duration::millis(2 + i));
  }
  grid.reorder = {false, true};
  const std::size_t loss_steps = (options.shards + 99) / 100;
  grid.loss_rates.clear();
  for (std::size_t i = 0; i < loss_steps; ++i) {
    grid.loss_rates.push_back(double(i) * (0.3 / double(loss_steps)));
  }
  CampaignSpec spec;
  spec.seed = options.seed;
  spec.grid = grid;
  spec.probes_per_phone = options.probes;
  spec.probe_interval = acute::sim::Duration::millis(50);
  spec.probe_timeout = acute::sim::Duration::millis(400);
  spec.settle = acute::sim::Duration::millis(50);
  spec.keep_samples = false;
  spec.retain_shards = false;
  spec.checkpoint_path = options.checkpoint;
  spec.max_shards = options.max_shards;
  return spec;
}

void write_hex_bits(std::ostream& out, double value) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(
                    acute::stats::double_bits(value)));
  out << hex;
}

/// Canonical merged-result dump: totals + every workload digest with
/// IEEE-754 bit-exact doubles. Byte-identical dumps ⇔ bit-identical merges.
void dump_digests(std::ostream& out, const CampaignReport& report) {
  out << "shards " << report.completed_shards() << ' ' << report.shard_count()
      << '\n';
  out << "totals " << report.total_probes() << ' ' << report.total_lost()
      << ' ' << report.total_frames() << ' ' << report.total_events() << ' ';
  write_hex_bits(out, report.total_sim_seconds());
  out << '\n';
  for (const acute::report::WorkloadDigest& digest :
       report.workload_digests()) {
    out << "workload " << acute::tools::grid_name(digest.tool) << ' '
        << digest.probes << ' ' << digest.lost << ' ';
    acute::stats::write_digest(out, digest.reported_rtt_ms);
    out << ' ';
    acute::stats::write_digest(out, digest.du_ms);
    out << ' ';
    acute::stats::write_digest(out, digest.dk_ms);
    out << ' ';
    acute::stats::write_digest(out, digest.dv_ms);
    out << ' ';
    acute::stats::write_digest(out, digest.dn_ms);
    out << ' ' << digest.passive_sniffer_samples << ' '
        << digest.passive_app_samples << ' ';
    acute::stats::write_digest(out, digest.passive_sniffer_rtt_ms);
    out << ' ';
    acute::stats::write_digest(out, digest.passive_app_rtt_ms);
    out << '\n';
  }
}

void emit_report(const Options& options, const CampaignReport& report) {
  if (!options.digest_out.empty()) {
    std::ofstream out(options.digest_out, std::ios::trunc);
    acute::sim::expects(out.is_open(),
                        "acute_fabric: cannot open --digest-out file");
    dump_digests(out, report);
    out.flush();
    acute::sim::expects(out.good(), "acute_fabric: short digest-out write");
  }
  std::fprintf(stdout, "completed %zu/%zu shards, %zu probes (%zu lost)\n",
               report.completed_shards(), report.shard_count(),
               report.total_probes(), report.total_lost());
}

int run_local(const Options& options) {
  Campaign campaign(demo_spec(options));
  const CampaignReport report = campaign.run(options.workers);
  emit_report(options, report);
  return 0;
}

int run_coordinate(const Options& options) {
  const CampaignSpec spec = demo_spec(options);
  CoordinatorConfig config;
  config.lease.batch = options.batch;
  config.lease.lease_timeout_ms = options.lease_timeout_ms;
  config.log = &std::cerr;

  // Fork the --spawn workers over socketpairs BEFORE any listener/worker
  // I/O: the parent is single-threaded here, so fork() is safe, and each
  // child closes every coordinator-side end it inherited so a killed
  // sibling's EOF reaches the coordinator and nobody else.
  std::vector<std::unique_ptr<Transport>> coordinator_ends;
  std::vector<pid_t> children;
  for (std::size_t i = 0; i < options.spawn; ++i) {
    auto [coord_end, worker_end] = acute::fabric::transport_pair();
    const pid_t pid = ::fork();
    acute::sim::expects(pid >= 0, "acute_fabric: fork failed");
    if (pid == 0) {
      coordinator_ends.clear();  // closes inherited coordinator-side fds
      coord_end.reset();
      int status = 0;
      try {
        Worker worker(demo_spec(options));
        worker.run(*worker_end);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "acute_fabric worker (pid %d): %s\n",
                     static_cast<int>(::getpid()), error.what());
        status = 2;
      }
      worker_end.reset();
      std::_Exit(status);  // no stdio flush: the parent owns those buffers
    }
    worker_end.reset();  // parent: close the child's end
    coordinator_ends.push_back(std::move(coord_end));
    children.push_back(pid);
    // The kill-one-worker smoke harness parses these lines.
    std::fprintf(stdout, "worker-pid %d\n", static_cast<int>(pid));
    std::fflush(stdout);
  }

  std::unique_ptr<UnixListener> listener;
  if (!options.socket_path.empty()) {
    listener = std::make_unique<UnixListener>(options.socket_path);
  }
  acute::sim::expects(
      !coordinator_ends.empty() || listener != nullptr,
      "acute_fabric coordinate: need --spawn and/or --socket workers");

  Coordinator coordinator(spec, config);
  const CampaignReport report =
      coordinator.run(std::move(coordinator_ends), listener.get());

  // Reap the spawned fleet (shutdown frames already sent; a worker the
  // harness killed reaps just the same).
  for (const pid_t pid : children) {
    int status = 0;
    (void)::waitpid(pid, &status, 0);
  }
  const acute::fabric::CoordinatorStats& stats = coordinator.stats();
  std::fprintf(stdout,
               "fabric: %zu workers joined, %zu died, %zu leases, "
               "%zu expired, %zu duplicates\n",
               stats.workers_joined, stats.workers_died, stats.leases_granted,
               stats.leases_expired, stats.duplicate_shards);
  emit_report(options, report);
  return 0;
}

int run_work(const Options& options) {
  acute::sim::expects(!options.socket_path.empty(),
                      "acute_fabric work: --socket is required");
  std::unique_ptr<Transport> transport =
      acute::fabric::unix_connect(options.socket_path);
  Worker worker(demo_spec(options));
  const std::size_t shards = worker.run(*transport);
  std::fprintf(stdout, "worker done: %zu shards\n", shards);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  Options options;
  options.mode = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (flag == "--shards") {
      options.shards = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--probes") {
      options.probes = std::atoi(value());
    } else if (flag == "--seed") {
      options.seed = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--socket") {
      options.socket_path = value();
    } else if (flag == "--checkpoint") {
      options.checkpoint = value();
    } else if (flag == "--digest-out") {
      options.digest_out = value();
    } else if (flag == "--spawn") {
      options.spawn = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--batch") {
      options.batch = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--lease-timeout-ms") {
      options.lease_timeout_ms = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--max-shards") {
      options.max_shards = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--workers") {
      options.workers = std::strtoull(value(), nullptr, 10);
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], flag.c_str());
      return usage(argv[0]);
    }
  }
  try {
    if (options.mode == "local") return run_local(options);
    if (options.mode == "coordinate") return run_coordinate(options);
    if (options.mode == "work") return run_work(options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.what());
    return 2;
  }
  return usage(argv[0]);
}
