// Reproduces: no single figure — this scales the paper's Fig. 1/Table 2
// du/dk/dv/dn methodology to a fleet-sized scenario grid (the §1
// crowdsourcing setting), executed by the Campaign engine.
//
// Fleet campaign walkthrough: sweep a scenario grid across every core.
//
// This is the Campaign-engine counterpart of crowdsourced_campaign: instead
// of hand-rolling one Testbed per condition, describe the sweep as a
// ScenarioGrid (phone count x handset x radio x path RTT x load), hand the
// expanded scenarios to testbed::Campaign, and let the sharded worker pool
// execute them — bit-identically for any worker count.
//
// Usage: ./build/example_fleet_campaign [workers]
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "stats/table.hpp"
#include "testbed/campaign.hpp"

using namespace acute;
using sim::Duration;

int main(int argc, char** argv) {
  std::size_t workers =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10)
               : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;

  // The sweep: every handset profile, WiFi and cellular stacks, two path
  // RTTs, quiet and congested WLAN — 1 and 3 phones contending.
  testbed::ScenarioGrid grid;
  grid.phone_counts = {1, 3};
  grid.profiles = {phone::PhoneProfile::nexus5(), phone::PhoneProfile::nexus4(),
                   phone::PhoneProfile::htc_one()};
  grid.radios = {phone::RadioKind::wifi, phone::RadioKind::cellular};
  grid.emulated_rtts = {Duration::millis(20), Duration::millis(60)};
  grid.cross_traffic = {false, true};

  testbed::CampaignSpec spec;
  spec.seed = 2016;  // the paper's vintage
  spec.scenarios = grid.expand();
  spec.probes_per_phone = 15;
  spec.probe_interval = Duration::millis(250);

  std::printf("fleet campaign: %zu scenarios on %zu workers...\n",
              spec.scenarios.size(), workers);
  testbed::Campaign campaign(spec);
  const testbed::CampaignReport report = campaign.run(workers);

  // Per-shard view: one row per scenario, in deterministic scenario order.
  stats::Table table({"scenario", "phones", "radio", "nRTT", "load",
                      "median du", "median dn", "lost"});
  for (const testbed::ShardResult& shard : report.shards) {
    const testbed::ScenarioSpec& scenario =
        spec.scenarios[shard.scenario_index];
    const bool cellular = scenario.count_radio(phone::RadioKind::cellular) > 0;
    table.add_row(
        {std::to_string(shard.scenario_index) + " " +
             scenario.phones.front().profile.name,
         std::to_string(shard.phone_count), cellular ? "cell" : "wifi",
         stats::Table::cell(scenario.emulated_rtt.to_ms()) + " ms",
         scenario.congested_phy ? "iperf" : "quiet",
         shard.reported_rtt_ms.empty()
             ? std::string("-")
             : stats::Table::cell(
                   stats::Summary(shard.reported_rtt_ms).median()),
         shard.dn_ms.empty()
             ? std::string("-")
             : stats::Table::cell(stats::Summary(shard.dn_ms).median()),
         std::to_string(shard.probes_lost)});
  }
  std::printf("%s", table.to_string().c_str());

  // Fleet-wide merge (what a crowdsourcing backend would aggregate).
  if (report.total_probes() == report.total_lost()) {
    std::printf("\nevery probe was lost; no fleet summary\n");
    return 1;
  }
  const stats::Summary fleet = report.rtt_summary();
  const stats::Cdf cdf = report.rtt_cdf();
  std::printf(
      "\nfleet: %zu probes (%zu lost), user-level RTT median %.2f ms, "
      "p95 %.2f ms\n"
      "work: %llu frames on air, %llu simulator events, %.0f simulated s\n",
      report.total_probes(), report.total_lost(), fleet.median(),
      cdf.quantile(0.95),
      static_cast<unsigned long long>(report.total_frames()),
      static_cast<unsigned long long>(report.total_events()),
      report.total_sim_seconds());
  std::printf(
      "\nThe spread between the wifi rows' du and dn columns is the paper's\n"
      "inflated delay at fleet scale; cellular rows trade PSM/SDIO wake for\n"
      "RRC promotion. Re-run with any worker count: rows are bit-identical.\n");
  return 0;
}
