// Reproduces: Fig. 1's vantage-point decomposition under the §3.1 (stock
// ping, Table 2/Fig. 3 conditions) and §4.2 (AcuteMon, Table 5 conditions)
// experiments — one 30 ms path measured both ways, du/dk/dn printed side by
// side.
//
// Quickstart: measure a 30 ms path from a simulated Nexus 5, first with the
// stock ping (inflated by SDIO bus sleep + PSM) and then with AcuteMon,
// and print the multi-layer decomposition of both.
//
// Build & run:   ./build/example_quickstart
#include <cstdio>

#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"

using namespace acute;

namespace {

void print_result(const char* label,
                  const testbed::MultiLayerResult& result) {
  const stats::Summary du(result.values(&core::LayerSample::du_ms));
  std::printf("%s\n", label);
  std::printf("  probes ok: %zu   lost: %zu\n", result.run.success_count(),
              result.run.loss_count());
  std::printf("  du (user RTT):  mean %s ms, median %.2f ms\n",
              du.mean_ci_string().c_str(), du.median());
  const stats::Summary dk(result.values(&core::LayerSample::dk_ms));
  const stats::Summary dn(result.values(&core::LayerSample::dn_ms));
  std::printf("  dk (kernel):    mean %s ms\n", dk.mean_ci_string().c_str());
  std::printf("  dn (network):   mean %s ms\n", dn.mean_ci_string().c_str());
  const stats::Summary overhead(result.values(&core::LayerSample::dk_n));
  std::printf("  kernel-phy overhead: median %.2f ms\n\n", overhead.median());
}

}  // namespace

int main() {
  constexpr int kProbes = 100;
  const auto rtt = acute::sim::Duration::millis(30);

  std::printf("=== AcuteMon quickstart: Nexus 5, emulated RTT 30 ms ===\n\n");

  // 1) Stock ping at the 1 s default interval: the phone sleeps between
  //    probes and every probe pays the wake-up penalties (§3.1).
  testbed::Experiment::PingSpec ping_spec;
  ping_spec.emulated_rtt = rtt;
  ping_spec.interval = acute::sim::Duration::seconds(1);
  ping_spec.probes = kProbes;
  print_result("ping -i 1 (energy-saving penalties land on every probe):",
               testbed::Experiment::ping(ping_spec));

  // 2) Same path measured by AcuteMon: warm-up + background traffic keep
  //    the phone awake, overhead stays within ~3 ms (§4.2).
  testbed::Experiment::AcuteMonSpec am_spec;
  am_spec.emulated_rtt = rtt;
  am_spec.probes = kProbes;
  print_result("AcuteMon (warm-up + 20 ms background traffic):",
               testbed::Experiment::acutemon(am_spec));

  std::printf("The network-level RTT is ~31 ms in both runs; only AcuteMon's "
              "user-level RTT stays near it.\n");
  return 0;
}
