// Reproduces: the §1 motivating scenario, with Table 5's AcuteMon nRTT
// accuracy and the §4.4 per-handset calibration applied fleet-wide.
//
// Crowdsourced measurement campaign — the paper's motivating scenario (§1):
// a fleet of heterogeneous handsets measures the same set of network paths.
// Naive user-level RTTs disagree across handsets (each inflates differently);
// AcuteMon + per-handset calibration makes the fleet agree on the
// network-level truth.
//
// Usage: ./build/examples/crowdsourced_campaign [probes_per_run]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/calibration.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"
#include "tools/ping.hpp"

using namespace acute;

namespace {

struct FleetEntry {
  std::string phone;
  double naive_median = 0;       // stock ping, 1 s interval
  double acutemon_median = 0;    // AcuteMon user-level
  double calibrated_median = 0;  // AcuteMon + per-handset calibration
};

}  // namespace

int main(int argc, char** argv) {
  const int probes = argc > 1 ? std::atoi(argv[1]) : 60;
  if (probes <= 0) {
    std::fprintf(stderr, "usage: %s [probes>0]\n", argv[0]);
    return 1;
  }
  constexpr int kPathRttMs = 45;  // the path the fleet measures
  constexpr int kCalibrationRttMs = 20;

  std::printf("Crowdsourcing campaign: 5 handsets x one 45 ms path "
              "(%d probes per run)\n\n", probes);

  stats::Table table({"handset", "ping -i 1 (naive)", "AcuteMon",
                      "AcuteMon+calibration", "true dn"});
  std::vector<double> naive, calibrated;
  std::uint64_t seed = 1000;
  for (const auto& profile : phone::PhoneProfile::all()) {
    FleetEntry entry;
    entry.phone = profile.name;

    // Naive crowd app: stock ping at the default 1 s interval.
    testbed::Experiment::PingSpec ping_spec;
    ping_spec.profile = profile;
    ping_spec.emulated_rtt = sim::Duration::millis(kPathRttMs);
    ping_spec.probes = probes;
    ping_spec.seed = seed++;
    const auto ping_run = testbed::Experiment::ping(ping_spec);
    entry.naive_median =
        stats::Summary(ping_run.run.reported_rtts_ms()).median();

    // One-time calibration of this handset on a short reference path.
    testbed::Experiment::AcuteMonSpec cal_spec;
    cal_spec.profile = profile;
    cal_spec.emulated_rtt = sim::Duration::millis(kCalibrationRttMs);
    cal_spec.probes = probes;
    cal_spec.seed = seed++;
    const auto cal_run = testbed::Experiment::acutemon(cal_spec);
    const auto calibration = core::OverheadCalibrator::learn(cal_run.samples);

    // The campaign measurement with AcuteMon.
    testbed::Experiment::AcuteMonSpec am_spec;
    am_spec.profile = profile;
    am_spec.emulated_rtt = sim::Duration::millis(kPathRttMs);
    am_spec.probes = probes;
    am_spec.seed = seed++;
    const auto am_run = testbed::Experiment::acutemon(am_spec);
    entry.acutemon_median =
        stats::Summary(am_run.run.reported_rtts_ms()).median();
    entry.calibrated_median = stats::Summary(core::OverheadCalibrator::correct(
        calibration, am_run.run.reported_rtts_ms())).median();
    const double dn_median =
        stats::Summary(am_run.values(&core::LayerSample::dn_ms)).median();

    naive.push_back(entry.naive_median);
    calibrated.push_back(entry.calibrated_median);
    table.add_row({entry.phone, stats::Table::cell(entry.naive_median),
                   stats::Table::cell(entry.acutemon_median),
                   stats::Table::cell(entry.calibrated_median),
                   stats::Table::cell(dn_median)});
  }
  std::printf("%s", table.to_string().c_str());

  const stats::Summary naive_summary(naive);
  const stats::Summary calibrated_summary(calibrated);
  std::printf(
      "\nFleet disagreement (max - min across handsets):\n"
      "  naive ping:            %.2f ms\n"
      "  AcuteMon + calibration: %.2f ms\n",
      naive_summary.max() - naive_summary.min(),
      calibrated_summary.max() - calibrated_summary.min());
  std::printf(
      "\nThe naive fleet disagrees by tens of ms because each chipset's\n"
      "energy-saving penalties differ (§1: \"two different smartphones may\n"
      "obtain quite different nRTTs for the same network path\");\n"
      "AcuteMon + calibration pins every handset to the network truth.\n");

  // --- The same fleet on ONE channel (a ScenarioSpec with all five
  // handsets contending at a single AP), probing concurrently.
  std::printf("\nContended fleet: all 5 handsets on one channel, "
              "probing concurrently\n\n");
  testbed::ScenarioSpec scenario;
  scenario.phones.clear();
  for (const auto& profile : phone::PhoneProfile::all()) {
    scenario.phones.push_back(testbed::PhoneSpec{profile, ""});
  }
  scenario.seed = seed;
  scenario.emulated_rtt = sim::Duration::millis(kPathRttMs);
  testbed::Testbed fleet(scenario);
  fleet.settle(sim::Duration::millis(800));

  std::vector<std::unique_ptr<tools::IcmpPing>> pings;
  std::vector<tools::MeasurementTool*> running;
  for (std::size_t i = 0; i < fleet.phone_count(); ++i) {
    tools::MeasurementTool::Config config;
    config.probe_count = probes;
    config.interval = sim::Duration::millis(250);
    config.timeout = sim::Duration::seconds(1);
    config.target = testbed::Testbed::kServerId;
    pings.push_back(std::make_unique<tools::IcmpPing>(fleet.phone(i), config));
    pings.back()->start();
    running.push_back(pings.back().get());
  }
  fleet.run_until_all_finished(running);

  stats::Table fleet_table({"handset", "du median", "dn median"});
  for (std::size_t i = 0; i < fleet.phone_count(); ++i) {
    const auto samples = fleet.layer_samples(pings[i]->result());
    fleet_table.add_row(
        {fleet.phone(i).profile().name,
         stats::Table::cell(stats::Summary(
             core::extract(samples, &core::LayerSample::du_ms)).median()),
         stats::Table::cell(stats::Summary(
             core::extract(samples, &core::LayerSample::dn_ms)).median())});
  }
  std::printf("%s", fleet_table.to_string().c_str());
  std::printf(
      "\nEven sharing one medium, the per-handset du spread persists —\n"
      "the inflation is in the phones, not the path.\n");
  return 0;
}
