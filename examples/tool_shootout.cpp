// Tool shoot-out (the Fig. 8 scenario as a library consumer would run it):
// measure one path with all four tools, with and without WLAN congestion,
// and print the CDFs side by side.
//
// Usage: ./build/examples/tool_shootout [emulated_rtt_ms] [probes]
#include <cstdio>
#include <cstdlib>

#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"

using namespace acute;

namespace {

void run_scenario(bool congested, int rtt_ms, int probes) {
  std::printf("\n--- %s (emulated RTT %d ms, %d probes/tool) ---\n",
              congested ? "congested WLAN (10 x 2.5 Mbit/s UDP)"
                        : "idle WLAN",
              rtt_ms, probes);

  stats::Table table(
      {"tool", "median", "p90", "mean", "loss", "median inflation"});
  for (const auto kind :
       {testbed::ToolKind::acutemon, testbed::ToolKind::httping,
        testbed::ToolKind::icmp_ping, testbed::ToolKind::java_ping}) {
    testbed::Experiment::ToolSpec spec;
    spec.kind = kind;
    spec.emulated_rtt = sim::Duration::millis(rtt_ms);
    spec.probes = probes;
    spec.cross_traffic = congested;
    const auto result = testbed::Experiment::tool(spec);

    const auto rtts = result.run.reported_rtts_ms();
    const stats::Cdf cdf(rtts);
    const stats::Summary summary(rtts);
    table.add_row({to_string(kind),
                   stats::Table::cell(cdf.quantile(0.5)),
                   stats::Table::cell(cdf.quantile(0.9)),
                   summary.mean_ci_string(),
                   std::to_string(result.run.loss_count()),
                   stats::Table::cell(cdf.quantile(0.5) - rtt_ms) + " ms"});
  }
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const int rtt_ms = argc > 1 ? std::atoi(argv[1]) : 30;
  const int probes = argc > 2 ? std::atoi(argv[2]) : 100;
  if (rtt_ms <= 0 || probes <= 0) {
    std::fprintf(stderr, "usage: %s [emulated_rtt_ms>0] [probes>0]\n",
                 argv[0]);
    return 1;
  }

  std::printf("Tool shoot-out on a simulated Nexus 5 (Fig. 8 scenario)\n");
  run_scenario(false, rtt_ms, probes);
  run_scenario(true, rtt_ms, probes);
  std::printf(
      "\nReading: AcuteMon's median sits ~10 ms left of every other tool —\n"
      "the others pay the SDIO wake-up (and, on short-Tip handsets, PSM\n"
      "buffering) on every probe.\n");
  return 0;
}
