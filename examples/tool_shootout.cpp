// Reproduces: Fig. 8 (reported-RTT CDFs of the four tools, idle vs
// congested WLAN) — here at campaign scale: the whole tool-comparison
// matrix runs through testbed::Campaign's workload axis instead of four
// hand-rolled testbeds, and every statistic comes from the streaming
// per-shard digests (keep_samples=false), so the same program scales to
// 10^5-scenario sweeps without buffering samples.
//
// Usage: ./build/example_tool_shootout [emulated_rtt_ms] [probes] [workers]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "testbed/campaign.hpp"
#include "tools/factory.hpp"

using namespace acute;
using sim::Duration;

namespace {

// "mean ±ci95" from the digest's exact moments (Summary::mean_ci_string's
// format, recovered without buffering samples).
std::string mean_ci(const stats::MergingDigest& digest) {
  const double ci = digest.count() > 1
                        ? stats::student_t_975(digest.count() - 1) *
                              digest.stddev() /
                              std::sqrt(double(digest.count()))
                        : 0.0;
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.2f ±%.2f", digest.mean(), ci);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const int rtt_ms = argc > 1 ? std::atoi(argv[1]) : 30;
  const int probes = argc > 2 ? std::atoi(argv[2]) : 100;
  std::size_t workers = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                 : std::thread::hardware_concurrency();
  if (rtt_ms <= 0 || probes <= 0) {
    std::fprintf(stderr, "usage: %s [emulated_rtt_ms>0] [probes>0] [workers]\n",
                 argv[0]);
    return 1;
  }
  if (workers == 0) workers = 1;

  // The workload matrix: all four tools x idle/congested WLAN, expanded as
  // one grid (workload is the innermost axis) and executed as one campaign.
  testbed::ScenarioGrid grid;
  grid.emulated_rtts = {Duration::millis(rtt_ms)};
  grid.cross_traffic = {false, true};
  grid.workloads = {testbed::WorkloadSpec{tools::ToolKind::acutemon},
                    testbed::WorkloadSpec{tools::ToolKind::httping},
                    testbed::WorkloadSpec{tools::ToolKind::icmp_ping},
                    testbed::WorkloadSpec{tools::ToolKind::java_ping}};

  testbed::CampaignSpec spec;
  spec.seed = 42;
  spec.scenarios = grid.expand();
  spec.probes_per_phone = probes;
  spec.probe_interval = Duration::seconds(1);
  spec.keep_samples = false;  // streaming digests only: O(shards) memory

  std::printf(
      "Tool shoot-out on a simulated Nexus 5 (Fig. 8 scenario)\n"
      "%zu scenarios (4 tools x idle/congested WLAN) on %zu workers\n",
      spec.scenarios.size(), workers);
  const testbed::CampaignReport report =
      testbed::Campaign(spec).run(workers);

  // One shard per (load, tool) cell; shards are in scenario order with the
  // workload axis innermost, so rows group naturally by load.
  for (const bool congested : {false, true}) {
    std::printf("\n--- %s (emulated RTT %d ms, %d probes/tool) ---\n",
                congested ? "congested WLAN (10 x 2.5 Mbit/s UDP)"
                          : "idle WLAN",
                rtt_ms, probes);
    stats::Table table(
        {"tool", "median", "p90", "mean", "loss", "median inflation"});
    for (const testbed::ShardResult& shard : report.shards) {
      const testbed::ScenarioSpec& scenario =
          spec.scenarios[shard.scenario_index];
      if (scenario.congested_phy != congested) continue;
      for (const testbed::WorkloadDigest& digest : shard.digests) {
        const auto& rtt = digest.reported_rtt_ms;
        table.add_row({tools::to_string(digest.tool),
                       stats::Table::cell(rtt.quantile(0.5)),
                       stats::Table::cell(rtt.quantile(0.9)),
                       mean_ci(rtt),
                       std::to_string(digest.lost),
                       stats::Table::cell(rtt.quantile(0.5) - rtt_ms) +
                           " ms"});
      }
    }
    std::printf("%s", table.to_string().c_str());
  }
  // Heterogeneous per-phone workloads *within one scenario*: four phones on
  // one channel, each running a different tool (ScenarioSpec::
  // assign_workloads round-robins the mix), so the zoo contends against
  // itself instead of being measured in isolation.
  testbed::ScenarioSpec mixed;
  mixed.phones.assign(4, testbed::PhoneSpec{});
  mixed.emulated_rtt = Duration::millis(rtt_ms);
  mixed.assign_workloads({testbed::WorkloadSpec{tools::ToolKind::acutemon},
                          testbed::WorkloadSpec{tools::ToolKind::httping},
                          testbed::WorkloadSpec{tools::ToolKind::icmp_ping},
                          testbed::WorkloadSpec{tools::ToolKind::java_ping}});
  testbed::CampaignSpec mixed_spec;
  mixed_spec.seed = 42;
  mixed_spec.scenarios = {mixed};
  mixed_spec.probes_per_phone = probes;
  mixed_spec.probe_interval = Duration::seconds(1);
  mixed_spec.keep_samples = false;
  const testbed::CampaignReport mixed_report =
      testbed::Campaign(mixed_spec).run(1);

  std::printf("\n--- mixed fleet: 4 phones, 4 tools, ONE channel ---\n");
  stats::Table mixed_table({"tool", "median", "p90", "mean", "loss"});
  for (const testbed::WorkloadDigest& digest :
       mixed_report.workload_digests()) {
    const auto& rtt = digest.reported_rtt_ms;
    mixed_table.add_row({tools::to_string(digest.tool),
                         stats::Table::cell(rtt.quantile(0.5)),
                         stats::Table::cell(rtt.quantile(0.9)), mean_ci(rtt),
                         std::to_string(digest.lost)});
  }
  std::printf("%s", mixed_table.to_string().c_str());

  std::printf(
      "\nReading: AcuteMon's median sits ~10 ms left of every other tool —\n"
      "the others pay the SDIO wake-up (and, on short-Tip handsets, PSM\n"
      "buffering) on every probe. Re-run with any worker count: the rows\n"
      "are bit-identical (per-shard seeds + scenario-order digest merge).\n");
  return 0;
}
