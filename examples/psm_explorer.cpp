// Reproduces: Table 4 (black-box inference of Tip, Tis and the listen
// intervals) plus the Fig. 4/Fig. 5 interval-sweep behavior that motivates
// it.
//
// PSM/SDIO explorer: visualize *why* naive measurements inflate, for any
// handset. Sweeps the probe interval against one path and prints how the
// user-level RTT decomposes per layer, then infers the handset's
// energy-saving timeouts black-box (the paper's Table 4 methodology).
//
// Usage: ./build/examples/psm_explorer ["Phone Name"]
//        (default "Google Nexus 4" — the aggressive-PSM outlier)
#include <cstdio>
#include <string>

#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "testbed/experiment.hpp"

using namespace acute;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "Google Nexus 4";
  phone::PhoneProfile profile;
  try {
    profile = phone::PhoneProfile::by_name(name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\nKnown handsets:\n", e.what());
    for (const auto& p : phone::PhoneProfile::all()) {
      std::fprintf(stderr, "  \"%s\"\n", p.name.c_str());
    }
    return 1;
  }

  std::printf("=== %s (%s, %s driver) ===\n", profile.name.c_str(),
              profile.chipset.c_str(), to_string(profile.vendor));

  // 1) Interval sweep: where do the energy-saving penalties kick in?
  std::printf("\nProbe-interval sweep over a 60 ms path "
              "(100 ICMP probes each):\n");
  stats::Table table({"interval", "du (user)", "dn (network)",
                      "du-dn (internal)", "dn-60 (external/PSM)"});
  for (const int interval_ms : {10, 25, 60, 120, 250, 500, 1000}) {
    testbed::Experiment::PingSpec spec;
    spec.profile = profile;
    spec.emulated_rtt = sim::Duration::millis(60);
    spec.interval = sim::Duration::millis(interval_ms);
    spec.probes = 100;
    const auto result = testbed::Experiment::ping(spec);
    const stats::Summary du(result.values(&core::LayerSample::du_ms));
    const stats::Summary dn(result.values(&core::LayerSample::dn_ms));
    table.add_row({std::to_string(interval_ms) + "ms",
                   stats::Table::cell(du.median()),
                   stats::Table::cell(dn.median()),
                   stats::Table::cell(du.median() - dn.median()),
                   stats::Table::cell(dn.mean() - 60.0)});
  }
  std::printf("%s", table.to_string().c_str());

  // 2) Black-box timeout inference (Table 4 + the paper's future work).
  std::printf("\nInferring energy-saving timeouts (black-box)...\n");
  const auto inference = testbed::Experiment::infer_timeouts(profile);
  std::printf("  PSM timeout Tip:      ~%.0f ms  (profile: %.1f ms)\n",
              inference.psm_timeout.to_ms(), profile.psm_timeout.to_ms());
  std::printf("  Bus-sleep timeout Tis: ~%.0f ms (driver default: %.0f ms)\n",
              inference.bus_sleep_timeout.to_ms(),
              profile.bus_sleep_idle().to_ms());
  std::printf("  Listen interval:      announced %d, actually %d\n",
              inference.listen_associated, inference.listen_actual);
  std::printf(
      "\nAcuteMon needs dpre and db below min(Tis, Tip) = %.0f ms; the\n"
      "paper's empirical 20 ms works for every handset in Table 1.\n",
      std::min(inference.bus_sleep_timeout.to_ms(),
               inference.psm_timeout.to_ms()));
  return 0;
}
