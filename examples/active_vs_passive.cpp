// Reproduces: the paper's active-vs-passive methodology contrast (§1-§2).
// Inflated tool-reported RTTs are the paper's core finding; passive vantage
// points measure the same flows WITHOUT injecting traffic and without the
// phone-side overheads. Two passive observers run here alongside an active
// TCP tool on the Fig. 2 testbed:
//
//   * passive::PpingEstimator on sniffer 0 — the pping/DlyLoc technique:
//     match each outbound TCP TSval with the first inbound TSecr echo. At
//     the capture point this recovers exactly dn, the network-level RTT.
//   * passive::PerAppMonitor on the phone's exec-env flow demux — the
//     MopEye-style on-device vantage: pair each app send with the delivery
//     of its response, recovering t_u^i - t_u^o per app without probes.
//
// The printout contrasts the three distributions: what the tool REPORTS
// (inflated), what the app-boundary pairing sees (runtime overheads
// included, reporting quirks excluded), and what the wire sees (dn).
//
// Usage: ./build/example_active_vs_passive [--probes N] [--tool NAME]
//        [--rtt-ms MS] [--congested]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "passive/per_app.hpp"
#include "passive/pping.hpp"
#include "stats/summary.hpp"
#include "testbed/testbed.hpp"
#include "tools/factory.hpp"

using namespace acute;
using sim::Duration;

namespace {

void print_row(const char* label, const std::vector<double>& samples) {
  if (samples.empty()) {
    std::printf("  %-28s (no samples)\n", label);
    return;
  }
  const stats::Summary s{std::span<const double>(samples)};
  std::printf("  %-28s n=%-4zu median=%7.2f ms  p95=%7.2f ms  min=%7.2f ms\n",
              label, samples.size(), s.median(), s.percentile(95),
              s.min());
}

}  // namespace

int main(int argc, char** argv) {
  int probes = 40;
  std::string tool_name = "httping";
  double rtt_ms = 20;
  bool congested = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--probes") && i + 1 < argc) {
      probes = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--tool") && i + 1 < argc) {
      tool_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--rtt-ms") && i + 1 < argc) {
      rtt_ms = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--congested")) {
      congested = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--probes N] [--tool ping|java-ping|httping|"
                   "acutemon] [--rtt-ms MS] [--congested]\n",
                   argv[0]);
      return 2;
    }
  }
  const auto kind = tools::parse_tool_kind(tool_name);
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown tool '%s'\n", tool_name.c_str());
    return 2;
  }

  // Fig. 2, with noiseless sniffers so the capture-point samples equal the
  // air-stamp dn exactly (pass a noise in the spec to see radiotap jitter).
  testbed::TestbedConfig config;
  config.emulated_rtt = Duration::millis(rtt_ms);
  config.sniffer_noise = Duration{};
  config.congested_phy = congested;
  testbed::Testbed testbed(config);
  testbed.settle(Duration::millis(800));
  if (congested) {
    testbed.start_cross_traffic();
    testbed.settle(Duration::seconds(2));
  }

  // Both passive observers attach BEFORE the tool starts: sequential tools
  // send probe 0 synchronously inside start().
  passive::PpingEstimator pping;
  testbed.sniffer(0).attach_capture_observer(&pping);
  passive::PerAppMonitor per_app;
  testbed.phone().exec_env().attach_flow_tap(&per_app);

  tools::MeasurementTool::Config tool_config;
  tool_config.probe_count = probes;
  tool_config.interval = Duration::millis(100);
  tool_config.timeout = Duration::seconds(4);
  tool_config.target = testbed::Testbed::kServerId;
  auto tool = tools::make_tool(*kind, testbed.phone(), tool_config);
  pping.watch_flow(testbed::Testbed::kPhoneId, tool->flow_id(), 0, *kind);
  per_app.watch_flow(testbed::Testbed::kPhoneId, tool->flow_id(), 0, *kind);
  tool->start();
  testbed.run_until_finished(*tool);

  std::vector<double> active;
  for (const auto& probe : tool->result().probes) {
    if (!probe.timed_out) active.push_back(probe.reported_rtt_ms);
  }
  std::vector<double> sniffer_rtt;
  for (const auto& sample : pping.samples()) sniffer_rtt.push_back(sample.rtt_ms);
  std::vector<double> app_rtt;
  for (const auto& sample : per_app.samples()) app_rtt.push_back(sample.rtt_ms);

  std::printf("%s on Fig. 2 (emulated RTT %.0f ms%s), %d probes\n",
              tools::grid_name(*kind), rtt_ms,
              congested ? ", congested WLAN" : "", probes);
  print_row("active (tool-reported du)", active);
  print_row("passive per-app (t_u pair)", app_rtt);
  print_row("passive sniffer (pping dn)", sniffer_rtt);
  if (!sniffer_rtt.empty()) {
    std::printf("  pping min-RTT tracker: %.3f ms, %zu pending, %zu evicted\n",
                pping.min_rtt_ms(0), pping.outstanding(), pping.evicted());
  }
  const bool tcp = !sniffer_rtt.empty() || *kind != tools::ToolKind::icmp_ping;
  if (!tcp) {
    std::printf("  (icmp_ping carries no TCP timestamps; the sniffer "
                "estimator stays silent — pick a TCP tool)\n");
  }
  return 0;
}
