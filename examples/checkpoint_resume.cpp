// Reproduces: no single figure — this is the operational side of the §1
// crowdsourcing setting: a fleet sweep that survives being killed. The
// campaign streams per-probe records to JSONL (what a MopEye-style backend
// would ingest) and checkpoints every completed shard; rerunning the same
// command resumes from the last completed shard with bit-identical merged
// digests.
//
// Usage: ./build/example_checkpoint_resume --checkpoint PATH
//          [--jsonl PATH] [--kill-after K] [--workers N] [--verify]
//   --kill-after K  execute at most K pending shards, then exit (simulates
//                   a mid-sweep kill; rerun without it to resume)
//   --verify        after the (resumed) run, re-run the whole campaign
//                   uninterrupted in memory and exit non-zero unless the
//                   merged workload digests are bit-identical
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "report/jsonl_sink.hpp"
#include "testbed/campaign.hpp"
#include "tools/factory.hpp"

using namespace acute;
using sim::Duration;

namespace {

/// The demo sweep: 8 shards (2 profiles x 2 loss rates x 2 workloads).
testbed::CampaignSpec demo_campaign() {
  testbed::ScenarioGrid grid;
  grid.profiles = {phone::PhoneProfile::nexus5(),
                   phone::PhoneProfile::nexus4()};
  grid.emulated_rtts = {Duration::millis(15)};
  grid.loss_rates = {0.0, 0.15};
  grid.workloads = {testbed::WorkloadSpec{tools::ToolKind::icmp_ping},
                    testbed::WorkloadSpec{tools::ToolKind::httping}};
  testbed::CampaignSpec spec;
  spec.seed = 2016;
  spec.scenarios = grid.expand();
  spec.probes_per_phone = 8;
  spec.probe_interval = Duration::millis(150);
  spec.keep_samples = false;  // streaming digests only
  return spec;
}

/// Bit-exact comparison of two reports' merged per-workload digests.
bool digests_identical(const testbed::CampaignReport& a,
                       const testbed::CampaignReport& b) {
  const auto da = a.workload_digests();
  const auto db = b.workload_digests();
  if (da.size() != db.size()) return false;
  for (std::size_t i = 0; i < da.size(); ++i) {
    if (da[i].tool != db[i].tool || da[i].probes != db[i].probes ||
        da[i].lost != db[i].lost) {
      return false;
    }
    for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
      if (da[i].reported_rtt_ms.quantile(q) !=
              db[i].reported_rtt_ms.quantile(q) ||
          da[i].du_ms.count() != db[i].du_ms.count()) {
        return false;
      }
    }
    if (da[i].reported_rtt_ms.mean() != db[i].reported_rtt_ms.mean()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string checkpoint_path;
  std::string jsonl_path;
  std::size_t kill_after = 0;
  std::size_t workers = 2;
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc) {
      checkpoint_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jsonl") == 0 && i + 1 < argc) {
      jsonl_path = argv[++i];
    } else if (std::strcmp(argv[i], "--kill-after") == 0 && i + 1 < argc) {
      kill_after = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --checkpoint PATH [--jsonl PATH] "
                   "[--kill-after K] [--workers N] [--verify]\n",
                   argv[0]);
      return 1;
    }
  }
  if (checkpoint_path.empty()) {
    std::fprintf(stderr, "--checkpoint is required\n");
    return 1;
  }
  if (workers == 0) workers = 1;

  testbed::CampaignSpec spec = demo_campaign();
  spec.checkpoint_path = checkpoint_path;
  spec.max_shards = kill_after;
  std::shared_ptr<report::JsonlWriter> jsonl;
  if (!jsonl_path.empty()) {
    // Resuming (the checkpoint already has shards): append, so the killed
    // run's exported records survive and the file ends up covering the
    // whole sweep. A fresh sweep truncates.
    const bool resuming =
        !report::load_checkpoint(checkpoint_path).empty();
    jsonl = std::make_shared<report::JsonlWriter>(jsonl_path, resuming);
    spec.sinks = report::jsonl_sink_factory(jsonl);
  }

  std::printf("campaign: %zu scenarios, checkpoint %s%s\n",
              spec.scenarios.size(), checkpoint_path.c_str(),
              kill_after > 0 ? " (killing mid-sweep)" : "");
  const testbed::CampaignReport report =
      testbed::Campaign(spec).run(workers);
  std::printf("completed %zu/%zu shards (%zu probes, %zu lost)\n",
              report.completed_shards(), report.shards.size(),
              report.total_probes(), report.total_lost());

  if (report.completed_shards() < report.shards.size()) {
    std::printf("sweep interrupted — rerun the same command without "
                "--kill-after to resume from the checkpoint\n");
    return 0;
  }

  for (const testbed::WorkloadDigest& digest : report.workload_digests()) {
    std::printf("  %-10s median %.2f ms  p90 %.2f ms  (%zu probes, %zu "
                "lost)\n",
                tools::grid_name(digest.tool),
                digest.reported_rtt_ms.quantile(0.5),
                digest.reported_rtt_ms.quantile(0.9), digest.probes,
                digest.lost);
  }

  if (verify) {
    std::printf("verify: re-running uninterrupted in memory...\n");
    const testbed::CampaignReport truth =
        testbed::Campaign(demo_campaign()).run(workers);
    if (!digests_identical(report, truth)) {
      std::fprintf(stderr,
                   "FAIL: resumed digests differ from uninterrupted run\n");
      return 1;
    }
    std::printf("verified: resumed merge is bit-identical to an "
                "uninterrupted run\n");
  }
  return 0;
}
