#!/usr/bin/env python3
"""Validate campaign JSONL exports (report::JsonlExportSink output).

Each line must be a self-contained JSON object with the documented schema
(docs/campaigns.md "Results pipeline"): scenario/seed/phone/probe integers,
a known tool id, a known vantage ("active", "passive-sniffer" or
"passive-app"), a boolean timed_out, numeric rtt_ms, and either all four
layer keys or none. Passive records never time out and never carry the
layer decomposition — an unknown vantage or a passive record violating
either rule fails loudly, it is not skipped. With --scenarios N, the union
of scenario indices across every input file must be exactly 0..N-1 — the
check CI runs on the two halves (killed + resumed) of the resume-smoke
sweep.

Usage: check_jsonl_schema.py [--scenarios N] FILE...
"""
import json
import sys

KNOWN_TOOLS = {"acutemon", "icmp-ping", "httping", "java-ping"}
KNOWN_VANTAGES = {"active", "passive-sniffer", "passive-app"}
REQUIRED = {
    "scenario": int,
    "seed": int,
    "phone": int,
    "probe": int,
    "tool": str,
    "vantage": str,
    "timed_out": bool,
    "rtt_ms": (int, float),
}
LAYER_KEYS = ("du_ms", "dk_ms", "dv_ms", "dn_ms")


def fail(path, lineno, message):
    print(f"{path}:{lineno}: {message}", file=sys.stderr)
    return 1


def check_file(path, scenarios_seen):
    errors = 0
    records = 0
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors += fail(path, lineno, f"not valid JSON: {exc}")
                continue
            records += 1
            for key, kind in REQUIRED.items():
                if key not in record:
                    errors += fail(path, lineno, f"missing key {key!r}")
                elif not isinstance(record[key], kind) or (
                    kind is int and isinstance(record[key], bool)
                ):
                    errors += fail(
                        path, lineno, f"key {key!r} has wrong type"
                    )
            if record.get("tool") not in KNOWN_TOOLS:
                errors += fail(
                    path, lineno, f"unknown tool {record.get('tool')!r}"
                )
            vantage = record.get("vantage")
            if vantage not in KNOWN_VANTAGES:
                errors += fail(
                    path, lineno, f"unknown vantage {vantage!r}"
                )
            layers = [key for key in LAYER_KEYS if key in record]
            if layers and len(layers) != len(LAYER_KEYS):
                errors += fail(
                    path, lineno, f"partial layer decomposition: {layers}"
                )
            if record.get("timed_out") is True and layers:
                errors += fail(path, lineno, "timed-out probe carries layers")
            if vantage in KNOWN_VANTAGES and vantage != "active":
                if record.get("timed_out") is True:
                    errors += fail(
                        path, lineno, "passive record marked timed_out"
                    )
                if layers:
                    errors += fail(
                        path, lineno, "passive record carries layers"
                    )
            if isinstance(record.get("scenario"), int):
                scenarios_seen.add(record["scenario"])
    if records == 0:
        errors += fail(path, 0, "no records")
    print(f"{path}: {records} records ok" if errors == 0 else
          f"{path}: {errors} schema errors")
    return errors


def main(argv):
    args = argv[1:]
    expected_scenarios = None
    if args and args[0] == "--scenarios":
        expected_scenarios = int(args[1])
        args = args[2:]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    errors = 0
    scenarios_seen = set()
    for path in args:
        errors += check_file(path, scenarios_seen)
    if expected_scenarios is not None:
        expected = set(range(expected_scenarios))
        if scenarios_seen != expected:
            print(
                "scenario coverage mismatch: "
                f"missing {sorted(expected - scenarios_seen)}, "
                f"unexpected {sorted(scenarios_seen - expected)}",
                file=sys.stderr,
            )
            errors += 1
        else:
            print(f"scenario coverage complete: 0..{expected_scenarios - 1}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
