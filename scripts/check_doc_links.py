#!/usr/bin/env python3
"""Fail on broken relative links in the repo's markdown docs.

Scans README.md and docs/**/*.md for [text](target) links, resolves each
relative target against the containing file, and exits non-zero listing
every target that does not exist. External links (http/https/mailto) are
skipped; fragment-only links (#section) are checked against the headings
of the containing file, and `path#fragment` links against the headings of
the target file.

Usage: python3 scripts/check_doc_links.py  (from anywhere; paths resolve
relative to the repo root, i.e. this script's parent directory).
"""
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def slugify(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces->dashes, drop punctuation."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    return {slugify(h) for h in HEADING.findall(path.read_text())}


def check_file(md: Path) -> list[str]:
    errors = []
    for target in LINK.findall(md.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = md if not path_part else (md.parent / path_part).resolve()
        rel = md.relative_to(REPO)
        if not resolved.exists():
            errors.append(f"{rel}: broken link target '{target}'")
            continue
        if fragment and resolved.suffix == ".md":
            if slugify(fragment) not in anchors_of(resolved):
                errors.append(f"{rel}: missing anchor '#{fragment}' "
                              f"in {path_part or rel.name}")
    return errors


def main() -> int:
    files = [REPO / "README.md"] + sorted((REPO / "docs").glob("**/*.md"))
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"missing doc file: {f.relative_to(REPO)}")
        return 1
    errors = []
    for md in files:
        errors.extend(check_file(md))
    for error in errors:
        print(error)
    checked = ", ".join(str(f.relative_to(REPO)) for f in files)
    if errors:
        print(f"\n{len(errors)} broken link(s) across: {checked}")
        return 1
    print(f"all relative links OK in: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
