#!/usr/bin/env bash
# Fabric fault-tolerance smoke (CI): a coordinator with 4 forked worker
# processes sweeps a 10^3-shard lazy grid while one worker is SIGKILLed
# mid-run. The pin is the tentpole guarantee from docs/fabric.md — the
# merged digest dump must be BYTE-identical to a single-process,
# single-thread reference run, kill or no kill — plus loud evidence in the
# coordinator log that the death was detected and the orphaned range
# re-leased.
#
# Usage: scripts/fabric_smoke.sh [path/to/acute_fabric] [output-dir]
set -euo pipefail

BIN=${1:-build/acute_fabric}
OUT=${2:-build/fabric-smoke}
SHARDS=1000
# Enough simulated probes per shard that the sweep runs long enough for the
# kill below to land while leases are outstanding, even on a fast runner.
PROBES=60

mkdir -p "$OUT"
rm -f "$OUT"/reference.txt "$OUT"/fabric.txt "$OUT"/coordinator.ckpt \
      "$OUT"/coordinator.log "$OUT"/coordinator.stdout

echo "== single-process single-thread reference =="
"$BIN" local --shards $SHARDS --probes $PROBES \
  --digest-out "$OUT/reference.txt"

echo "== coordinator + 4 forked workers =="
"$BIN" coordinate --spawn 4 --shards $SHARDS --probes $PROBES --batch 8 \
  --checkpoint "$OUT/coordinator.ckpt" --digest-out "$OUT/fabric.txt" \
  >"$OUT/coordinator.stdout" 2>"$OUT/coordinator.log" &
COORD=$!

# The coordinator prints one "worker-pid N" line per forked worker before
# serving; the first one is the victim.
VICTIM=
for _ in $(seq 1 500); do
  VICTIM=$(awk '/^worker-pid /{print $2; exit}' "$OUT/coordinator.stdout" \
           2>/dev/null || true)
  [ -n "$VICTIM" ] && break
  sleep 0.01
done
if [ -z "$VICTIM" ]; then
  echo "FAIL: coordinator never reported a worker pid" >&2
  kill "$COORD" 2>/dev/null || true
  exit 1
fi

# Kill once the run is provably in flight — the coordinator checkpoint
# grows by one record per completed shard, so >= 50 lines means we are
# mid-campaign regardless of how fast this runner is.
while kill -0 "$COORD" 2>/dev/null; do
  DONE=$(wc -l <"$OUT/coordinator.ckpt" 2>/dev/null || echo 0)
  [ "$DONE" -ge 50 ] && break
  sleep 0.01
done
if ! kill -9 "$VICTIM" 2>/dev/null; then
  echo "FAIL: worker $VICTIM was already gone before the kill" >&2
  wait "$COORD" || true
  exit 1
fi
echo "killed worker pid $VICTIM mid-run (checkpoint had ${DONE:-?} records)"
wait "$COORD"

echo "== coordinator log =="
cat "$OUT/coordinator.log"
cat "$OUT/coordinator.stdout"

echo "== assertions =="
cmp "$OUT/reference.txt" "$OUT/fabric.txt"
echo "OK: merged digest dump is byte-identical to the reference"

grep -Eq "re-leasing|closed its connection|torn frame" "$OUT/coordinator.log"
echo "OK: coordinator logged the worker death / re-lease"

grep -Eq "fabric: 4 workers joined, [1-9] died" "$OUT/coordinator.stdout"
echo "OK: stats line confirms a worker died mid-run"

# The compacted coordinator checkpoint must hold exactly one record per
# shard — duplicates from the re-lease race collapse under last-wins.
LINES=$(wc -l <"$OUT/coordinator.ckpt")
if [ "$LINES" -ne "$SHARDS" ]; then
  echo "FAIL: compacted checkpoint has $LINES records, want $SHARDS" >&2
  exit 1
fi
echo "OK: compacted checkpoint holds exactly $SHARDS records"

echo "fabric smoke: PASS"
