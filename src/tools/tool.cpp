#include "tools/tool.hpp"

#include <algorithm>
#include <utility>

#include "sim/contracts.hpp"

namespace acute::tools {

using net::Packet;
using sim::Duration;
using sim::expects;
using sim::TimePoint;

std::vector<double> ToolRun::reported_rtts_ms() const {
  std::vector<double> rtts;
  rtts.reserve(probes.size());
  for (const ProbeRecord& record : probes) {
    if (!record.timed_out) rtts.push_back(record.reported_rtt_ms);
  }
  return rtts;
}

std::size_t ToolRun::loss_count() const {
  std::size_t count = 0;
  for (const ProbeRecord& record : probes) {
    if (record.timed_out) ++count;
  }
  return count;
}

std::size_t ToolRun::success_count() const {
  return probes.size() - loss_count();
}

MeasurementTool::MeasurementTool(phone::Smartphone& phone, Config config)
    : phone_(&phone), sim_(&phone.simulator()), config_(config) {
  expects(config.probe_count > 0, "MeasurementTool requires probe_count > 0");
  expects(config.timeout > Duration{},
          "MeasurementTool requires a positive timeout");
  flow_id_ = phone_->allocate_flow_id();
}

MeasurementTool::~MeasurementTool() { phone_->unregister_flow(flow_id_); }

void MeasurementTool::reinitialize(Config config) {
  expects(config.probe_count > 0, "MeasurementTool requires probe_count > 0");
  expects(config.timeout > Duration{},
          "MeasurementTool requires a positive timeout");
  phone_->unregister_flow(flow_id_);  // no-op when the last run finished
  config_ = config;
  flow_id_ = phone_->allocate_flow_id();
  outstanding_.clear();
  probe_of_index_.clear();
  launched_ = 0;
  completed_ = 0;
  started_ = false;
  finished_ = false;
  run_.tool_name.clear();
  run_.probes.clear();
  done_ = nullptr;
  probe_listener_ = nullptr;
}

void MeasurementTool::start(DoneFn done) {
  expects(!started_, "MeasurementTool::start may only be called once");
  started_ = true;
  launch(std::move(done));
}

void MeasurementTool::set_probe_listener(ProbeFn listener) {
  expects(!started_,
          "MeasurementTool::set_probe_listener must precede start()");
  probe_listener_ = std::move(listener);
}

void MeasurementTool::launch(DoneFn done) { begin_probes(std::move(done)); }

void MeasurementTool::begin_probes(DoneFn done) {
  done_ = std::move(done);
  run_.tool_name = name();
  phone_->register_flow(
      flow_id_,
      [this](Packet&& response) { handle_response(std::move(response)); },
      exec_mode());

  if (config_.sequential) {
    launch_probe(0);
  } else {
    // Periodic schedule: probe i leaves at i * interval, come what may.
    for (int i = 0; i < config_.probe_count; ++i) {
      sim_->schedule_in(config_.interval * i, sim::assert_fits_inline(
                                                  [this, i] { launch_probe(i); }));
    }
  }
}

void MeasurementTool::launch_probe(int index) {
  ++launched_;
  send_probe(index);
}

Packet MeasurementTool::new_probe(int index, net::PacketType type,
                                  net::Protocol protocol,
                                  std::uint32_t size_bytes) {
  Packet probe = Packet::make(type, protocol, phone_->id(), config_.target,
                              size_bytes);
  probe.probe_id = Packet::allocate_id();
  probe.flow_id = flow_id_;
  if (protocol == net::Protocol::tcp) {
    // TCP timestamp option (RFC 7323). Microsecond granularity instead of
    // the classic milliseconds so back-to-back probes never share a TSval
    // (value-matching passive estimators would alias them); +1 keeps the
    // "option absent" sentinel 0 out of the value space. Wraps at ~71
    // minutes of sim time, far beyond any probe's lifetime in flight.
    probe.tcp_ts.tsval = static_cast<std::uint32_t>(
        (sim_->now() - TimePoint::epoch()).count_nanos() / 1000 + 1);
  }

  Outstanding entry;
  entry.index = index;
  entry.sent_at = sim_->now();
  const std::uint64_t probe_id = probe.probe_id;
  entry.timeout =
      sim_->schedule_in(config_.timeout, sim::assert_fits_inline([this, probe_id] {
        handle_timeout(probe_id);
      }));
  outstanding_[probe_id] = std::move(entry);
  probe_of_index_[index] = probe_id;
  return probe;
}

void MeasurementTool::send_packet(Packet&& packet) {
  phone_->send(std::move(packet), exec_mode());
}

void MeasurementTool::restamp_probe_clock(int index) {
  const auto id_it = probe_of_index_.find(index);
  if (id_it == probe_of_index_.end()) return;
  const auto it = outstanding_.find(id_it->second);
  if (it != outstanding_.end()) it->second.sent_at = sim_->now();
}

std::optional<double> MeasurementTool::on_probe_response(
    int /*index*/, const Packet& /*response*/, double raw_rtt_ms) {
  return raw_rtt_ms;
}

void MeasurementTool::handle_response(Packet&& response) {
  const auto it = outstanding_.find(response.probe_id);
  if (it == outstanding_.end()) return;  // late (already timed out) or alien
  Outstanding entry = std::move(it->second);
  entry.timeout.cancel();
  outstanding_.erase(it);

  const double raw_rtt_ms = (sim_->now() - entry.sent_at).to_ms();
  const std::optional<double> reported =
      on_probe_response(entry.index, response, raw_rtt_ms);
  if (!reported.has_value()) return;  // multi-packet exchange continues

  ProbeRecord record;
  record.index = entry.index;
  record.reported_rtt_ms = *reported;
  record.response = std::move(response);
  complete_probe(entry.index, std::move(record));
}

void MeasurementTool::handle_timeout(std::uint64_t probe_id) {
  const auto it = outstanding_.find(probe_id);
  if (it == outstanding_.end()) return;
  const int index = it->second.index;
  outstanding_.erase(it);
  ProbeRecord record;
  record.index = index;
  record.timed_out = true;
  complete_probe(index, std::move(record));
}

void MeasurementTool::complete_probe(int index, ProbeRecord record) {
  run_.probes.push_back(std::move(record));
  ++completed_;
  if (probe_listener_) probe_listener_(run_.probes.back());
  if (config_.sequential && launched_ < config_.probe_count) {
    const int next = index + 1;
    if (config_.interval.is_zero()) {
      launch_probe(next);
    } else {
      sim_->schedule_in(config_.interval, sim::assert_fits_inline(
                                              [this, next] { launch_probe(next); }));
    }
  }
  maybe_finish();
}

void MeasurementTool::maybe_finish() {
  if (finished_ || completed_ < config_.probe_count) return;
  finished_ = true;
  phone_->unregister_flow(flow_id_);
  std::sort(run_.probes.begin(), run_.probes.end(),
            [](const ProbeRecord& a, const ProbeRecord& b) {
              return a.index < b.index;
            });
  if (done_) done_(run_);
}

}  // namespace acute::tools
