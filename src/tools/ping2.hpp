// ping2 — Sui et al. [34], the closest prior mitigation the paper compares
// against (§1). It measures from the *server side*: each round sends a
// first ping to wake the phone, and on its reply immediately sends a second
// ping whose RTT is reported.
//
// The paper's critique, which this implementation lets us validate
// (bench_comparison_ping2): "ping2 can be used only for network paths with
// short nRTT and cannot remove the inflations completely, because, when
// nRTT is long, the device could fall back to the inactive state again
// before it receives the response packet and starts the second ping."
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/server.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace acute::tools {

class Ping2Prober {
 public:
  struct Config {
    net::NodeId target = 0;   // the phone
    int pairs = 100;          // probe pairs to send
    sim::Duration pair_interval = sim::Duration::seconds(1);
    sim::Duration timeout = sim::Duration::seconds(1);
  };

  struct Result {
    /// RTTs of the first pings (pay the full wake-up penalty).
    std::vector<double> first_rtts_ms;
    /// RTTs of the second pings (what ping2 reports).
    std::vector<double> second_rtts_ms;
    std::size_t lost_pairs = 0;
  };

  Ping2Prober(sim::Simulator& sim, net::EchoServer& server, Config config);

  Ping2Prober(const Ping2Prober&) = delete;
  Ping2Prober& operator=(const Ping2Prober&) = delete;
  ~Ping2Prober();

  using DoneFn = std::function<void(const Result&)>;
  void start(DoneFn done = nullptr);

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const Result& result() const { return result_; }

 private:
  void launch_pair(int index);
  void send_ping(int index, bool is_second);
  void on_reply(const net::Packet& reply);
  void on_timeout(std::uint64_t probe_id);
  void complete_pair(int index, bool lost);

  sim::Simulator* sim_;
  net::EchoServer* server_;
  Config config_;
  struct Outstanding {
    int index = 0;
    bool is_second = false;
    sim::TimePoint sent_at;
    sim::EventHandle timeout;
  };
  std::unordered_map<std::uint64_t, Outstanding> outstanding_;
  int completed_ = 0;
  bool started_ = false;
  bool finished_ = false;
  Result result_;
  DoneFn done_;
};

}  // namespace acute::tools
