// "Java ping": MobiPerf's second measurement method (§4.3) — a TCP
// connection probe issued from Java (InetAddress-style), re-implemented by
// the paper's authors in their own test app because MobiPerf cannot
// configure the probe count.
//
// Runs inside the Dalvik VM, so it pays the DVM send/receive overheads and
// occasional GC pauses, and reports with System.currentTimeMillis()'s whole-
// millisecond resolution.
#pragma once

#include "tools/tool.hpp"

namespace acute::tools {

class JavaPing : public MeasurementTool {
 public:
  JavaPing(phone::Smartphone& phone, Config config)
      : MeasurementTool(phone, make_sequential(config)) {}

  [[nodiscard]] std::string name() const override { return "Java ping"; }

  void reinitialize(Config config) override {
    MeasurementTool::reinitialize(make_sequential(config));
  }

 protected:
  [[nodiscard]] phone::ExecMode exec_mode() const override {
    return phone::ExecMode::dalvik;
  }
  void send_probe(int index) override;
  std::optional<double> on_probe_response(int index,
                                          const net::Packet& response,
                                          double raw_rtt_ms) override;

 private:
  static Config make_sequential(Config config) {
    config.sequential = true;
    return config;
  }
};

}  // namespace acute::tools
