// Measurement-tool framework.
//
// A tool runs as a simulation process on a Smartphone: it emits probe
// packets toward a target server, matches responses by probe id, applies its
// own reporting quirks (quantization, runtime overheads) and produces a
// ToolRun. Two probe schedules exist in the paper's tool zoo:
//  * periodic  — ping-style: probes leave every `interval` regardless of
//    outstanding responses;
//  * sequential — httping/MobiPerf-style: the next probe waits for the
//    previous response (or its timeout) plus the interval gap.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "phone/smartphone.hpp"
#include "sim/simulator.hpp"

namespace acute::tools {

/// One probe's outcome.
struct ProbeRecord {
  /// 0-based position in the tool's probe schedule.
  int index = 0;
  /// RTT as the tool reports it, in **milliseconds** — after the tool's
  /// output-quantization quirks, so this is what the user reads, not the
  /// raw measurement. 0 when `timed_out`.
  double reported_rtt_ms = 0;
  /// True when no response arrived within the tool's timeout.
  bool timed_out = false;
  /// The response as delivered to the app, with all layer stamps (each
  /// stamp a sim::TimePoint with **microsecond** resolution — the Fig. 1
  /// vantage points are recovered from these, not from reported_rtt_ms).
  /// Empty on timeout.
  std::optional<net::Packet> response;
};

/// A completed tool execution: every probe's record, in schedule order.
struct ToolRun {
  /// The producing tool's display name (MeasurementTool::name()).
  std::string tool_name;
  /// One record per scheduled probe, sorted by ProbeRecord::index.
  std::vector<ProbeRecord> probes;

  /// Reported RTTs (milliseconds) of the successful probes, in probe order.
  [[nodiscard]] std::vector<double> reported_rtts_ms() const;
  /// Number of probes that timed out.
  [[nodiscard]] std::size_t loss_count() const;
  /// Number of probes that completed with a response.
  [[nodiscard]] std::size_t success_count() const;
};

/// Base class of the tool zoo: owns probe matching, timeouts and schedule
/// sequencing; subclasses supply the probe packets and reporting quirks.
class MeasurementTool {
 public:
  /// Probe schedule shared by every tool.
  struct Config {
    /// Total probes to send (must be > 0).
    int probe_count = 100;
    /// Inter-probe interval (periodic) or inter-probe gap (sequential).
    sim::Duration interval = sim::Duration::seconds(1);
    /// Per-probe response deadline (must be positive); a probe with no
    /// response by then is recorded as lost.
    sim::Duration timeout = sim::Duration::seconds(1);
    /// Node id of the measurement server the probes target.
    net::NodeId target = 0;
    /// false = periodic schedule, true = each probe waits for the previous
    /// exchange (sequential tools force this in their constructors).
    bool sequential = false;
  };

  /// Binds the tool to `phone`'s stack; requires probe_count > 0 and a
  /// positive timeout. The tool must not outlive the phone.
  MeasurementTool(phone::Smartphone& phone, Config config);
  virtual ~MeasurementTool();

  MeasurementTool(const MeasurementTool&) = delete;
  MeasurementTool& operator=(const MeasurementTool&) = delete;

  /// Completion callback, invoked once with the finished run.
  using DoneFn = std::function<void(const ToolRun&)>;
  /// Per-probe observer: invoked once per completed probe (response or
  /// timeout) with the finalized record, at completion time — this is how
  /// tool completion feeds the campaign's streaming results pipeline
  /// (report::ResultSink) instead of being scraped from result() post-hoc.
  /// Records arrive in completion order, which can differ from schedule
  /// order (a timeout outlives later responses).
  using ProbeFn = std::function<void(const ProbeRecord&)>;

  /// Returns the tool to the state a fresh construction on the same phone
  /// with `config` would produce: a new flow id is drawn from the phone's
  /// (reset) allocator, all matching and schedule state clears in place
  /// with storage kept warm, and start() may be called again. Overrides
  /// adapt `config` exactly as the corresponding constructor does, then
  /// reset their own state (shard-context reuse contract).
  virtual void reinitialize(Config config);

  /// Launches the probe schedule; calling it a second time is a contract
  /// violation — enforced here, at the single non-virtual entry point, for
  /// every tool in the zoo (NVI: subclasses with a richer launch protocol,
  /// e.g. AcuteMon's warm-up + background thread, override launch()).
  /// `done` (optional) fires on completion.
  void start(DoneFn done = nullptr);

  /// Registers the per-probe observer; must be called before start().
  void set_probe_listener(ProbeFn listener);

  /// True once every scheduled probe has completed or timed out.
  [[nodiscard]] bool finished() const { return finished_; }
  /// The run so far; complete once finished() is true.
  [[nodiscard]] const ToolRun& result() const { return run_; }
  /// Display name ("ping", "httping", ...), also stored in ToolRun.
  [[nodiscard]] virtual std::string name() const = 0;
  /// The schedule the tool was constructed with (after any constructor
  /// adaptation, e.g. sequential tools setting `sequential`).
  [[nodiscard]] const Config& config() const { return config_; }
  /// The flow id this tool's probes travel on (drawn from the phone's
  /// allocator at construction/reinitialize time). Passive observers use it
  /// to attribute the flow's traffic back to the tool (MopEye-style).
  [[nodiscard]] std::uint32_t flow_id() const { return flow_id_; }

 protected:
  /// Launch hook behind start()'s once-only guard. The default arms the
  /// base probe schedule immediately; tools with a lead-in protocol
  /// (AcuteMon) override it and call begin_probes() when the lead elapses.
  virtual void launch(DoneFn done);

  /// Arms the base probe schedule: registers the response flow and starts
  /// the periodic/sequential probe clock. Only reachable from launch()
  /// overrides (the guard in start() has already fired).
  void begin_probes(DoneFn done);

  /// The runtime the tool's process executes in (native C by default).
  [[nodiscard]] virtual phone::ExecMode exec_mode() const {
    return phone::ExecMode::native_c;
  }

  /// Emits the probe exchange for `index`. Implementations build packets via
  /// new_probe() and send them with send_packet(). The base class handles
  /// matching, timeout and scheduling.
  virtual void send_probe(int index) = 0;

  /// Called when a response for `index` arrives; implementations return the
  /// RTT the tool would *report* (quantization quirks applied), given the
  /// raw measured value, or std::nullopt if the exchange continues (e.g.
  /// httping's connect phase). Default: report the raw value.
  virtual std::optional<double> on_probe_response(int index,
                                                  const net::Packet& response,
                                                  double raw_rtt_ms);

  /// Creates a probe packet bound to this tool's flow and `index`.
  [[nodiscard]] net::Packet new_probe(int index, net::PacketType type,
                                      net::Protocol protocol,
                                      std::uint32_t size_bytes);

  /// Sends a packet through the phone in this tool's exec mode.
  void send_packet(net::Packet&& packet);

  /// Restarts probe `index`'s send clock (httping uses this so the reported
  /// RTT covers only the HTTP exchange, not the preceding connect).
  void restamp_probe_clock(int index);

  /// The phone this tool runs on.
  [[nodiscard]] phone::Smartphone& phone() { return *phone_; }
  /// The phone's simulator (every schedule lands here).
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

 private:
  struct Outstanding {
    int index = 0;
    sim::TimePoint sent_at;
    sim::EventHandle timeout;
  };

  void launch_probe(int index);
  void handle_response(net::Packet&& response);
  void handle_timeout(std::uint64_t probe_id);
  void complete_probe(int index, ProbeRecord record);
  void maybe_finish();

  phone::Smartphone* phone_;
  sim::Simulator* sim_;
  Config config_;
  std::uint32_t flow_id_ = 0;
  std::unordered_map<std::uint64_t, Outstanding> outstanding_;  // by probe_id
  std::unordered_map<int, std::uint64_t> probe_of_index_;
  int launched_ = 0;
  int completed_ = 0;
  bool started_ = false;
  bool finished_ = false;
  ToolRun run_;
  DoneFn done_;
  ProbeFn probe_listener_;
};

}  // namespace acute::tools
