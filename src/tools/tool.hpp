// Measurement-tool framework.
//
// A tool runs as a simulation process on a Smartphone: it emits probe
// packets toward a target server, matches responses by probe id, applies its
// own reporting quirks (quantization, runtime overheads) and produces a
// ToolRun. Two probe schedules exist in the paper's tool zoo:
//  * periodic  — ping-style: probes leave every `interval` regardless of
//    outstanding responses;
//  * sequential — httping/MobiPerf-style: the next probe waits for the
//    previous response (or its timeout) plus the interval gap.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "phone/smartphone.hpp"
#include "sim/simulator.hpp"

namespace acute::tools {

/// One probe's outcome.
struct ProbeRecord {
  int index = 0;
  /// RTT as the tool reports it (after quantization quirks), milliseconds.
  double reported_rtt_ms = 0;
  bool timed_out = false;
  /// The response as delivered to the app, with all layer stamps. Empty on
  /// timeout.
  std::optional<net::Packet> response;
};

/// A completed tool execution.
struct ToolRun {
  std::string tool_name;
  std::vector<ProbeRecord> probes;

  /// Reported RTTs of the successful probes.
  [[nodiscard]] std::vector<double> reported_rtts_ms() const;
  [[nodiscard]] std::size_t loss_count() const;
  [[nodiscard]] std::size_t success_count() const;
};

class MeasurementTool {
 public:
  struct Config {
    int probe_count = 100;
    /// Inter-probe interval (periodic) or inter-probe gap (sequential).
    sim::Duration interval = sim::Duration::seconds(1);
    sim::Duration timeout = sim::Duration::seconds(1);
    net::NodeId target = 0;
    bool sequential = false;
  };

  MeasurementTool(phone::Smartphone& phone, Config config);
  virtual ~MeasurementTool();

  MeasurementTool(const MeasurementTool&) = delete;
  MeasurementTool& operator=(const MeasurementTool&) = delete;

  using DoneFn = std::function<void(const ToolRun&)>;

  /// Launches the probe schedule. `done` (optional) fires on completion.
  void start(DoneFn done = nullptr);

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const ToolRun& result() const { return run_; }
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] const Config& config() const { return config_; }

 protected:
  /// The runtime the tool's process executes in (native C by default).
  [[nodiscard]] virtual phone::ExecMode exec_mode() const {
    return phone::ExecMode::native_c;
  }

  /// Emits the probe exchange for `index`. Implementations build packets via
  /// new_probe() and send them with send_packet(). The base class handles
  /// matching, timeout and scheduling.
  virtual void send_probe(int index) = 0;

  /// Called when a response for `index` arrives; implementations return the
  /// RTT the tool would *report* (quantization quirks applied), given the
  /// raw measured value, or std::nullopt if the exchange continues (e.g.
  /// httping's connect phase). Default: report the raw value.
  virtual std::optional<double> on_probe_response(int index,
                                                  const net::Packet& response,
                                                  double raw_rtt_ms);

  /// Creates a probe packet bound to this tool's flow and `index`.
  [[nodiscard]] net::Packet new_probe(int index, net::PacketType type,
                                      net::Protocol protocol,
                                      std::uint32_t size_bytes);

  /// Sends a packet through the phone in this tool's exec mode.
  void send_packet(net::Packet&& packet);

  /// Restarts probe `index`'s send clock (httping uses this so the reported
  /// RTT covers only the HTTP exchange, not the preceding connect).
  void restamp_probe_clock(int index);

  [[nodiscard]] phone::Smartphone& phone() { return *phone_; }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

 private:
  struct Outstanding {
    int index = 0;
    sim::TimePoint sent_at;
    sim::EventHandle timeout;
  };

  void launch_probe(int index);
  void handle_response(net::Packet&& response);
  void handle_timeout(std::uint64_t probe_id);
  void complete_probe(int index, ProbeRecord record);
  void maybe_finish();

  phone::Smartphone* phone_;
  sim::Simulator* sim_;
  Config config_;
  std::uint32_t flow_id_ = 0;
  std::unordered_map<std::uint64_t, Outstanding> outstanding_;  // by probe_id
  std::unordered_map<int, std::uint64_t> probe_of_index_;
  int launched_ = 0;
  int completed_ = 0;
  bool started_ = false;
  bool finished_ = false;
  ToolRun run_;
  DoneFn done_;
};

}  // namespace acute::tools
