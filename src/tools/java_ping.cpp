#include "tools/java_ping.hpp"

#include <cmath>

namespace acute::tools {

void JavaPing::send_probe(int index) {
  net::Packet syn =
      new_probe(index, net::PacketType::tcp_syn, net::Protocol::tcp,
                net::packet_size::tcp_control);
  send_packet(std::move(syn));
}

std::optional<double> JavaPing::on_probe_response(
    int /*index*/, const net::Packet& /*response*/, double raw_rtt_ms) {
  // System.currentTimeMillis() resolution.
  return std::floor(raw_rtt_ms);
}

}  // namespace acute::tools
