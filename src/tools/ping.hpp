// The stock ICMP ping binary, run over adb shell (§3.1).
//
// Periodic schedule (probes leave every `interval` regardless of responses),
// native execution, and the handset's output-quantization quirks: 0.1 ms
// resolution below 100 ms, whole milliseconds above on handsets whose ping
// truncates (the Nexus 4 — the cause of the negative user-kernel overheads
// in Fig. 3).
#pragma once

#include "tools/tool.hpp"

namespace acute::tools {

class IcmpPing : public MeasurementTool {
 public:
  IcmpPing(phone::Smartphone& phone, Config config)
      : MeasurementTool(phone, config) {}

  [[nodiscard]] std::string name() const override { return "ping"; }

 protected:
  void send_probe(int index) override;
  std::optional<double> on_probe_response(int index,
                                          const net::Packet& response,
                                          double raw_rtt_ms) override;
};

/// Quantizes an RTT the way the handset's ping output does.
[[nodiscard]] double quantize_ping_output(double rtt_ms,
                                          double resolution_ms,
                                          bool integer_above_100);

}  // namespace acute::tools
