#include "tools/httping.hpp"

namespace acute::tools {

using net::PacketType;
using net::Protocol;

void HttPing::send_probe(int index) {
  if (!connected_) {
    // TCP handshake first; the HTTP request follows on the SYN-ACK.
    net::Packet syn = new_probe(index, PacketType::tcp_syn, Protocol::tcp,
                                net::packet_size::tcp_control);
    send_packet(std::move(syn));
    return;
  }
  net::Packet request =
      new_probe(index, PacketType::http_request, Protocol::tcp,
                net::packet_size::http_request);
  send_packet(std::move(request));
}

std::optional<double> HttPing::on_probe_response(int index,
                                                 const net::Packet& response,
                                                 double raw_rtt_ms) {
  if (response.type == PacketType::tcp_syn_ack) {
    // Connection established: issue the HTTP request (same probe index,
    // fresh probe clock — httping reports the HTTP exchange time).
    connected_ = true;
    net::Packet request =
        new_probe(index, PacketType::http_request, Protocol::tcp,
                  net::packet_size::http_request);
    send_packet(std::move(request));
    return std::nullopt;
  }
  return raw_rtt_ms;
}

}  // namespace acute::tools
