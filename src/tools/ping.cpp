#include "tools/ping.hpp"

#include <cmath>

namespace acute::tools {

double quantize_ping_output(double rtt_ms, double resolution_ms,
                            bool integer_above_100) {
  if (integer_above_100 && rtt_ms >= 100.0) {
    // The fractional part is truncated, so the reported value can undershoot
    // the kernel-level RTT (paper §3.1).
    return std::floor(rtt_ms);
  }
  if (resolution_ms <= 0) return rtt_ms;
  return std::floor(rtt_ms / resolution_ms) * resolution_ms;
}

void IcmpPing::send_probe(int index) {
  net::Packet probe =
      new_probe(index, net::PacketType::icmp_echo_request,
                net::Protocol::icmp, net::packet_size::icmp_echo);
  send_packet(std::move(probe));
}

std::optional<double> IcmpPing::on_probe_response(
    int /*index*/, const net::Packet& /*response*/, double raw_rtt_ms) {
  const auto& profile = phone().profile();
  return quantize_ping_output(raw_rtt_ms, profile.ping_resolution_ms,
                              profile.ping_integer_ms_above_100);
}

}  // namespace acute::tools
