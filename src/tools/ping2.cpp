#include "tools/ping2.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::tools {

using net::Packet;
using net::PacketType;
using net::Protocol;
using sim::Duration;
using sim::expects;

Ping2Prober::Ping2Prober(sim::Simulator& sim, net::EchoServer& server,
                         Config config)
    : sim_(&sim), server_(&server), config_(config) {
  expects(config.pairs > 0, "Ping2Prober requires pairs > 0");
  expects(config.timeout > Duration{},
          "Ping2Prober requires a positive timeout");
}

Ping2Prober::~Ping2Prober() { server_->set_packet_observer(nullptr); }

void Ping2Prober::start(DoneFn done) {
  expects(!started_, "Ping2Prober::start may only be called once");
  started_ = true;
  done_ = std::move(done);
  server_->set_packet_observer([this](const Packet& pkt) {
    if (pkt.type == PacketType::icmp_echo_reply) on_reply(pkt);
  });
  for (int i = 0; i < config_.pairs; ++i) {
    sim_->schedule_in(config_.pair_interval * i,
                      sim::assert_fits_inline([this, i] { launch_pair(i); }));
  }
}

void Ping2Prober::launch_pair(int index) { send_ping(index, false); }

void Ping2Prober::send_ping(int index, bool is_second) {
  Packet ping = Packet::make(PacketType::icmp_echo_request, Protocol::icmp,
                             server_->id(), config_.target,
                             net::packet_size::icmp_echo);
  ping.probe_id = Packet::allocate_id();

  Outstanding entry;
  entry.index = index;
  entry.is_second = is_second;
  entry.sent_at = sim_->now();
  const std::uint64_t probe_id = ping.probe_id;
  entry.timeout =
      sim_->schedule_in(config_.timeout, sim::assert_fits_inline([this, probe_id] {
        on_timeout(probe_id);
      }));
  outstanding_[probe_id] = std::move(entry);
  server_->originate(std::move(ping));
}

void Ping2Prober::on_reply(const Packet& reply) {
  const auto it = outstanding_.find(reply.probe_id);
  if (it == outstanding_.end()) return;
  Outstanding entry = std::move(it->second);
  entry.timeout.cancel();
  outstanding_.erase(it);

  const double rtt_ms = (sim_->now() - entry.sent_at).to_ms();
  if (entry.is_second) {
    result_.second_rtts_ms.push_back(rtt_ms);
    complete_pair(entry.index, false);
  } else {
    result_.first_rtts_ms.push_back(rtt_ms);
    // The heart of ping2: fire the second ping immediately, hoping the
    // phone is still awake from answering the first.
    send_ping(entry.index, true);
  }
}

void Ping2Prober::on_timeout(std::uint64_t probe_id) {
  const auto it = outstanding_.find(probe_id);
  if (it == outstanding_.end()) return;
  const int index = it->second.index;
  outstanding_.erase(it);
  complete_pair(index, true);
}

void Ping2Prober::complete_pair(int index, bool lost) {
  (void)index;
  if (lost) ++result_.lost_pairs;
  if (++completed_ < config_.pairs) return;
  finished_ = true;
  server_->set_packet_observer(nullptr);
  if (done_) done_(result_);
}

}  // namespace acute::tools
