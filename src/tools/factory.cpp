#include "tools/factory.hpp"

#include <utility>

#include "core/acutemon.hpp"
#include "tools/httping.hpp"
#include "tools/java_ping.hpp"
#include "tools/ping.hpp"

namespace acute::tools {

const char* to_string(ToolKind kind) {
  switch (kind) {
    case ToolKind::acutemon:
      return "AcuteMon";
    case ToolKind::icmp_ping:
      return "ping";
    case ToolKind::httping:
      return "httping";
    case ToolKind::java_ping:
      return "Java ping";
  }
  return "?";
}

const char* grid_name(ToolKind kind) {
  switch (kind) {
    case ToolKind::acutemon:
      return "acutemon";
    case ToolKind::icmp_ping:
      return "icmp-ping";
    case ToolKind::httping:
      return "httping";
    case ToolKind::java_ping:
      return "java-ping";
  }
  return "?";
}

std::optional<ToolKind> parse_tool_kind(std::string_view name) {
  if (name == "AcuteMon" || name == "acutemon") return ToolKind::acutemon;
  if (name == "ping" || name == "icmp-ping") return ToolKind::icmp_ping;
  if (name == "httping") return ToolKind::httping;
  if (name == "Java ping" || name == "java-ping") return ToolKind::java_ping;
  return std::nullopt;
}

std::unique_ptr<MeasurementTool> make_tool(ToolKind kind,
                                           phone::Smartphone& phone,
                                           MeasurementTool::Config config) {
  switch (kind) {
    case ToolKind::acutemon:
      return std::make_unique<core::AcuteMon>(phone, std::move(config));
    case ToolKind::icmp_ping:
      return std::make_unique<IcmpPing>(phone, std::move(config));
    case ToolKind::httping:
      return std::make_unique<HttPing>(phone, std::move(config));
    case ToolKind::java_ping:
      return std::make_unique<JavaPing>(phone, std::move(config));
  }
  return nullptr;
}

}  // namespace acute::tools
