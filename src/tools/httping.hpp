// httping [18], cross-compiled to run natively on the handset (§4.3).
//
// Probe 0 opens a TCP connection (SYN / SYN-ACK) and then issues an HTTP
// request on it; later probes reuse the persistent connection. The reported
// RTT covers the HTTP exchange, which is what httping prints per probe.
#pragma once

#include "tools/tool.hpp"

namespace acute::tools {

class HttPing : public MeasurementTool {
 public:
  HttPing(phone::Smartphone& phone, Config config)
      : MeasurementTool(phone, make_sequential(config)) {}

  [[nodiscard]] std::string name() const override { return "httping"; }

  void reinitialize(Config config) override {
    MeasurementTool::reinitialize(make_sequential(config));
    connected_ = false;
  }

 protected:
  void send_probe(int index) override;
  std::optional<double> on_probe_response(int index,
                                          const net::Packet& response,
                                          double raw_rtt_ms) override;

 private:
  static Config make_sequential(Config config) {
    config.sequential = true;
    return config;
  }
  bool connected_ = false;
};

}  // namespace acute::tools
