// Runtime tool selection — the workload axis of the campaign engine.
//
// The paper's central observation is that delay inflation is *tool
// dependent*: native ping, Java ping, httping and AcuteMon sample the same
// stack from different vantage points (Fig. 8). Anything that sweeps tools
// at runtime — the Experiment front-end, the Campaign workload axis, the
// bench matrix — picks them through this factory instead of naming concrete
// classes.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>

#include "tools/tool.hpp"

namespace acute::tools {

/// The paper's tool zoo (§3.1, §4.3): which measurement tool a workload
/// runs. `acutemon` is the paper's contribution; the other three are the
/// inflated baselines of Fig. 8.
enum class ToolKind { acutemon, icmp_ping, httping, java_ping };

/// Number of ToolKind enumerators (for kind-indexed arrays).
inline constexpr std::size_t kToolKindCount = 4;

/// Dense 0-based index of `kind` (enumerator order), for kind-keyed arrays.
[[nodiscard]] constexpr std::size_t tool_kind_index(ToolKind kind) {
  return static_cast<std::size_t>(kind);
}

/// Display name, matching each tool's MeasurementTool::name().
[[nodiscard]] const char* to_string(ToolKind kind);

/// Machine-stable kebab-case id ("acutemon", "icmp-ping", "httping",
/// "java-ping") — the spelling the streaming-results exports (JSONL records,
/// checkpoint files) write, round-tripped by parse_tool_kind().
[[nodiscard]] const char* grid_name(ToolKind kind);

/// Parses both the display names ("AcuteMon", "ping", ...) and the
/// kebab-case grid spellings ("acutemon", "icmp-ping", "httping",
/// "java-ping"). Returns nullopt for anything else.
[[nodiscard]] std::optional<ToolKind> parse_tool_kind(std::string_view name);

/// Constructs the tool `kind` on `phone`. Sequential-schedule tools
/// (httping, Java ping, AcuteMon) adapt `config` exactly as their public
/// constructors do; AcuteMon runs with the paper-default options
/// (dpre = db = 20 ms, TCP connect probes, background thread on). Start the
/// returned tool with MeasurementTool::start() — the virtual launch() hook
/// behind it runs AcuteMon's full two-thread protocol through the same
/// call, and the once-only guard applies uniformly.
[[nodiscard]] std::unique_ptr<MeasurementTool> make_tool(
    ToolKind kind, phone::Smartphone& phone, MeasurementTool::Config config);

}  // namespace acute::tools
