#include "core/layer_sample.hpp"

namespace acute::core {

std::optional<LayerSample> LayerSample::from_response(
    const net::Packet& response, std::optional<double> reported_du_ms) {
  const net::LayerStamps& rx = response.stamps;
  if (response.request_stamps == nullptr) return std::nullopt;
  const net::LayerStamps& tx = *response.request_stamps;

  if (!tx.app_send || !tx.kernel_send || !tx.driver_xmit_entry ||
      !tx.driver_txpkt || !tx.air || !rx.air || !rx.driver_isr ||
      !rx.driver_rxf_enqueue || !rx.kernel_recv || !rx.app_recv) {
    return std::nullopt;
  }

  LayerSample sample;
  sample.probe_id = response.probe_id;
  sample.du_ms = reported_du_ms.has_value()
                     ? *reported_du_ms
                     : (*rx.app_recv - *tx.app_send).to_ms();
  sample.dk_ms = (*rx.kernel_recv - *tx.kernel_send).to_ms();
  sample.dv_ms = (*rx.driver_rxf_enqueue - *tx.driver_xmit_entry).to_ms();
  sample.dn_ms = (*rx.air - *tx.air).to_ms();
  sample.dvsend_ms = (*tx.driver_txpkt - *tx.driver_xmit_entry).to_ms();
  sample.dvrecv_ms = (*rx.driver_rxf_enqueue - *rx.driver_isr).to_ms();
  return sample;
}

std::vector<double> extract(const std::vector<LayerSample>& samples,
                            double (LayerSample::*field)() const) {
  std::vector<double> values;
  values.reserve(samples.size());
  for (const LayerSample& sample : samples) {
    values.push_back((sample.*field)());
  }
  return values;
}

std::vector<double> extract(const std::vector<LayerSample>& samples,
                            double LayerSample::*field) {
  std::vector<double> values;
  values.reserve(samples.size());
  for (const LayerSample& sample : samples) {
    values.push_back(sample.*field);
  }
  return values;
}

}  // namespace acute::core
