#include "core/calibration.hpp"

#include "sim/contracts.hpp"
#include "stats/summary.hpp"

namespace acute::core {

CalibrationResult OverheadCalibrator::learn(
    const std::vector<LayerSample>& samples) {
  sim::expects(!samples.empty(),
               "OverheadCalibrator::learn requires at least one sample");
  const std::vector<double> overheads =
      extract(samples, &LayerSample::total_overhead);
  const stats::Summary summary(overheads);
  CalibrationResult result;
  result.median_overhead_ms = summary.median();
  result.p25_overhead_ms = summary.percentile(25.0);
  result.p75_overhead_ms = summary.percentile(75.0);
  result.sample_count = samples.size();
  return result;
}

std::vector<double> OverheadCalibrator::correct(
    const CalibrationResult& calibration,
    const std::vector<double>& user_rtts_ms) {
  std::vector<double> corrected;
  corrected.reserve(user_rtts_ms.size());
  for (const double rtt : user_rtts_ms) {
    corrected.push_back(calibration.apply(rtt));
  }
  return corrected;
}

}  // namespace acute::core
