#include "core/acutemon.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::core {

using net::Packet;
using net::PacketType;
using net::Protocol;
using sim::Duration;
using sim::expects;

namespace {
tools::MeasurementTool::Config sequential(tools::MeasurementTool::Config c) {
  // MT sends each probe as soon as the previous exchange completes.
  c.sequential = true;
  c.interval = Duration{};
  return c;
}
}  // namespace

AcuteMon::AcuteMon(phone::Smartphone& phone, Config config)
    : AcuteMon(phone, config, Options{}) {}

AcuteMon::AcuteMon(phone::Smartphone& phone, Config config, Options options)
    : MeasurementTool(phone, sequential(config)),
      options_(options),
      background_timer_(phone.simulator(), options.background_interval,
                        [this](std::uint64_t) { send_background(); }) {
  expects(options.warmup_lead > Duration{},
          "AcuteMon warm-up lead must be positive");
  expects(options.background_interval > Duration{},
          "AcuteMon background interval must be positive");
  background_flow_ = phone.allocate_flow_id();
}

void AcuteMon::reinitialize(Config config) {
  MeasurementTool::reinitialize(sequential(std::move(config)));
  background_timer_.reset(options_.background_interval);
  background_sent_ = 0;
  warmup_sent_ = false;
  background_flow_ = phone().allocate_flow_id();
}

Packet AcuteMon::make_keepalive(PacketType type) const {
  // Warm-up/background packets die at the first-hop router: TTL = 1.
  Packet pkt = Packet::make(type, Protocol::udp,
                            0 /* src set by Smartphone::send */,
                            config().target, net::packet_size::udp_small);
  pkt.ttl = 1;
  pkt.flow_id = background_flow_;
  return pkt;
}

void AcuteMon::send_warmup() {
  warmup_sent_ = true;
  phone().send(make_keepalive(PacketType::udp_warmup),
               phone::ExecMode::native_c);
}

void AcuteMon::send_background() {
  if (finished()) {
    background_timer_.stop();
    return;
  }
  ++background_sent_;
  phone().send(make_keepalive(PacketType::udp_background),
               phone::ExecMode::native_c);
}

void AcuteMon::launch(DoneFn done) {
  // BT: warm-up now; background cadence every db from now on.
  send_warmup();
  if (options_.background_enabled) {
    background_timer_.start(options_.background_interval);
  }
  // MT: first probe after the warm-up lead dpre — begin_probes() arms the
  // base schedule directly (start()'s once-only guard already fired).
  simulator().schedule_in(options_.warmup_lead,
                          [this, done = std::move(done)]() mutable {
                            begin_probes(
                                [this, done = std::move(done)](
                                    const tools::ToolRun& run) {
                                  background_timer_.stop();
                                  if (done) done(run);
                                });
                          });
}

void AcuteMon::send_probe(int index) {
  switch (options_.method) {
    case ProbeMethod::tcp_connect: {
      Packet syn = new_probe(index, PacketType::tcp_syn, Protocol::tcp,
                             net::packet_size::tcp_control);
      send_packet(std::move(syn));
      return;
    }
    case ProbeMethod::http: {
      Packet request = new_probe(index, PacketType::http_request,
                                 Protocol::tcp,
                                 net::packet_size::http_request);
      send_packet(std::move(request));
      return;
    }
  }
}

std::optional<double> AcuteMon::on_probe_response(int /*index*/,
                                                  const Packet& /*response*/,
                                                  double raw_rtt_ms) {
  // Native C measurement process: full-resolution timestamps.
  return raw_rtt_ms;
}

}  // namespace acute::core
