// Black-box inference of a handset's energy-saving timeouts — the paper's
// Table 4 methodology plus the "future work" it sketches in §4.1 ("a simple
// solution is training the program to obtain suitable values").
//
// The prober never touches driver internals; it only issues measurements and
// looks at reported RTTs:
//  * PSM timeout Tip — the station dozes Tip after its last activity, so a
//    probe whose response takes longer than Tip to come back gets buffered
//    at the AP until a beacon (~ +51 ms on average). Binary-search the
//    emulated path RTT for the onset of that inflation.
//  * Bus-sleep timeout Tis — the bus sleeps Tis after the last transfer, so
//    a probe sent after an idle gap > Tis pays the wake-up (promotion) delay
//    in du (but not in dn). Binary-search the idle gap for the onset.
//  * Actual listen interval L — PSM-buffered responses wait at most
//    (L+1) beacon intervals; infer L from the maximum observed PSM delay.
//
// Measurement is injected as callbacks so the prober runs against the
// simulation testbed, a mock, or (in a port) a real deployment.
#pragma once

#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace acute::core {

class TimeoutProber {
 public:
  struct Config {
    sim::Duration min = sim::Duration::millis(10);
    sim::Duration max = sim::Duration::millis(600);
    /// Stop when the bracket is narrower than this.
    sim::Duration resolution = sim::Duration::millis(10);
    int probes_per_point = 15;
    /// Median inflation (ms) above which a point counts as PSM-"inflated".
    /// Must exceed the worst-case *bus-wake* inflation (~25 ms on Broadcom
    /// SDIO handsets) but stay below the PSM beacon wait (~50+ ms median),
    /// so the two mechanisms cannot be confused.
    double psm_inflation_threshold_ms = 35.0;
    double bus_inflation_threshold_ms = 2.5;
  };

  /// Measures user-level RTTs over a path with the given emulated RTT,
  /// spacing probes far apart so the phone idles in between.
  using RttProbeFn = std::function<std::vector<double>(
      sim::Duration emulated_rtt, int probe_count)>;

  /// Sends a warm-up, waits `idle_gap`, sends one probe; repeated
  /// `probe_count` times. Returns user-level RTTs over a short fixed path.
  using GapProbeFn = std::function<std::vector<double>(
      sim::Duration idle_gap, int probe_count)>;

  /// Infers the PSM timeout Tip. Returns the bracket midpoint.
  [[nodiscard]] static sim::Duration infer_psm_timeout(
      const RttProbeFn& measure, const Config& config);

  /// Infers the bus-sleep timeout Tis.
  [[nodiscard]] static sim::Duration infer_bus_sleep_timeout(
      const GapProbeFn& measure, const Config& config);

  /// Infers the actual listen interval from PSM-delay observations
  /// (delays of PSM-buffered responses beyond the base RTT, in ms).
  [[nodiscard]] static int infer_actual_listen_interval(
      const std::vector<double>& psm_delays_ms);
};

}  // namespace acute::core
