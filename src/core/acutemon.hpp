// AcuteMon — the paper's contribution (§4).
//
// Two cooperating processes (Fig. 6):
//  * Background-traffic thread (BT): sends one warm-up packet, waits
//    dpre = 20 ms for the SDIO bus promotion to complete, then emits a tiny
//    background packet every db = 20 ms for the duration of the measurement.
//    With Tprom < dpre < min(Tis, Tip) and db < min(Tis, Tip), neither the
//    bus-sleep nor the PSM demotion timer can ever fire. Warm-up and
//    background packets carry TTL = 1 so the first-hop router absorbs them:
//    no response traffic, no load beyond the gateway.
//  * Measurement thread (MT): a native-C process that sends K probes
//    (TCP SYN / SYN-ACK by default, or an HTTP exchange) back to back, each
//    waiting for the previous response.
#pragma once

#include <cstdint>
#include <utility>

#include "tools/tool.hpp"

namespace acute::core {

class AcuteMon : public tools::MeasurementTool {
 public:
  enum class ProbeMethod { tcp_connect, http };

  struct Options {
    /// Warm-up lead time dpre. Must satisfy Tprom < dpre < min(Tis, Tip);
    /// the paper's empirical value is 20 ms.
    sim::Duration warmup_lead = sim::Duration::millis(20);
    /// Background inter-packet interval db (must be < min(Tis, Tip)).
    sim::Duration background_interval = sim::Duration::millis(20);
    /// Fig. 9 ablation: run without the background thread.
    bool background_enabled = true;
    ProbeMethod method = ProbeMethod::tcp_connect;
  };

  AcuteMon(phone::Smartphone& phone, Config config, Options options);
  /// Paper-default options (dpre = db = 20 ms, TCP connect probes).
  AcuteMon(phone::Smartphone& phone, Config config);

  [[nodiscard]] std::string name() const override { return "AcuteMon"; }

  /// Constructor-equivalent reset with the options kept: re-adapts the
  /// schedule, re-allocates both flow ids in constructor order and clears
  /// the BT state (shard-context reuse contract).
  void reinitialize(Config config) override;
  [[nodiscard]] const Options& options() const { return options_; }

  /// Background packets emitted so far (≈ K * nRTT / db; §4.1's example:
  /// K=5 probes on a 100 ms path cost only ~25 packets to the gateway).
  [[nodiscard]] std::uint64_t background_packets_sent() const {
    return background_sent_;
  }
  [[nodiscard]] bool warmup_sent() const { return warmup_sent_; }

  /// Historical spelling of start(): launches BT (warm-up + background)
  /// and then MT after dpre. Same once-only contract as start() — the guard
  /// sits in the non-virtual base entry, so campaigns that construct tools
  /// through tools::make_tool() launch AcuteMon's full two-thread protocol
  /// (and trip on double launches) with the same call as every other tool.
  void start_measurement(DoneFn done = nullptr) { start(std::move(done)); }

 protected:
  /// The two-thread launch protocol, behind start()'s guard.
  void launch(DoneFn done) override;

  void send_probe(int index) override;
  std::optional<double> on_probe_response(int index,
                                          const net::Packet& response,
                                          double raw_rtt_ms) override;

 private:
  void send_warmup();
  void send_background();
  net::Packet make_keepalive(net::PacketType type) const;

  Options options_;
  std::uint32_t background_flow_ = 0;
  sim::PeriodicTimer background_timer_;
  std::uint64_t background_sent_ = 0;
  bool warmup_sent_ = false;
};

}  // namespace acute::core
