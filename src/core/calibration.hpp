// Overhead calibration (§4.2.2): "the delay overheads for AcuteMon are
// independent of nRTTs, and the values of the overheads are much more
// stable. Therefore, the true value can be obtained by performing
// calibration."
//
// The calibrator learns a phone's residual overhead Δd = du - dn from one
// AcuteMon run with multi-layer instrumentation (testbed) and then corrects
// user-level RTTs measured anywhere. The median is used because it is
// robust to the occasional scheduling outlier.
#pragma once

#include <cstddef>
#include <vector>

#include "core/layer_sample.hpp"

namespace acute::core {

struct CalibrationResult {
  double median_overhead_ms = 0;
  double p25_overhead_ms = 0;
  double p75_overhead_ms = 0;
  std::size_t sample_count = 0;

  /// Corrects a user-level RTT to an estimate of the network-level RTT.
  [[nodiscard]] double apply(double user_rtt_ms) const {
    return user_rtt_ms - median_overhead_ms;
  }
  /// Dispersion of the learned overhead (IQR); small values mean the
  /// correction is trustworthy.
  [[nodiscard]] double iqr_ms() const {
    return p75_overhead_ms - p25_overhead_ms;
  }
};

class OverheadCalibrator {
 public:
  /// Learns the overhead from instrumented samples (du - dn per probe).
  /// Requires at least one sample.
  [[nodiscard]] static CalibrationResult learn(
      const std::vector<LayerSample>& samples);

  /// Applies a calibration to a batch of user-level RTTs.
  [[nodiscard]] static std::vector<double> correct(
      const CalibrationResult& calibration,
      const std::vector<double>& user_rtts_ms);
};

}  // namespace acute::core
