#include "core/auto_tuner.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace acute::core {

using sim::Duration;

TunedParameters AutoTuner::tune(Duration inferred_tis,
                                Duration inferred_tip) {
  return tune(inferred_tis, inferred_tip, Config{});
}

TunedParameters AutoTuner::tune(Duration inferred_tis, Duration inferred_tip,
                                const Config& config) {
  sim::expects(inferred_tis > Duration{} && inferred_tip > Duration{},
               "AutoTuner::tune requires positive timeouts");

  TunedParameters tuned;
  tuned.binding_timeout = std::min(inferred_tis, inferred_tip);

  // Subtract the quantization slack: the device may demote up to one
  // watchdog tick *before* the nominal timeout.
  const Duration budget = tuned.binding_timeout - config.timer_slack;

  if (budget <= config.min_interval) {
    // No cadence can safely hold the device awake (pathological firmware).
    tuned.feasible = false;
    tuned.warmup_lead = config.preferred;
    tuned.background_interval = config.min_interval;
    return tuned;
  }

  // Keep the paper's empirical 20 ms whenever it already fits; otherwise
  // take half the budget (comfortably inside, still sparse).
  const Duration candidate =
      config.preferred < budget ? config.preferred : budget / 2;
  tuned.background_interval = std::max(candidate, config.min_interval);

  // dpre must also exceed the worst-case bus promotion delay.
  tuned.warmup_lead = std::max(tuned.background_interval,
                               config.max_promotion + Duration::millis(2));
  if (tuned.warmup_lead >= budget) {
    // A long promotion against a short timeout: start probing right after
    // the promotion completes — the first keep-alive covers the gap.
    tuned.warmup_lead = std::max(budget - Duration::millis(1),
                                 config.min_interval);
  }
  return tuned;
}

AcuteMon::Options AutoTuner::apply(const TunedParameters& tuned,
                                   AcuteMon::Options options) {
  options.warmup_lead = tuned.warmup_lead;
  options.background_interval = tuned.background_interval;
  return options;
}

}  // namespace acute::core
