#include "core/timeout_prober.hpp"

#include <algorithm>
#include <cmath>

#include "sim/contracts.hpp"
#include "stats/summary.hpp"
#include "wifi/constants.hpp"

namespace acute::core {

using sim::Duration;
using sim::expects;

namespace {

double median_of(const std::vector<double>& values) {
  expects(!values.empty(), "TimeoutProber: probe function returned no data");
  return stats::Summary(values).median();
}

}  // namespace

Duration TimeoutProber::infer_psm_timeout(const RttProbeFn& measure,
                                          const Config& config) {
  expects(static_cast<bool>(measure), "TimeoutProber requires a measure fn");
  expects(config.min < config.max, "TimeoutProber config: min < max");

  // inflated(r): the response of a probe over an r-long path returns after
  // the station dozed, i.e. r > Tip.
  const auto inflated = [&](Duration rtt) {
    const double median = median_of(measure(rtt, config.probes_per_point));
    return median - rtt.to_ms() > config.psm_inflation_threshold_ms;
  };

  Duration lo = config.min;   // assumed not inflated
  Duration hi = config.max;   // assumed inflated
  if (inflated(lo)) return lo;
  if (!inflated(hi)) return hi;
  while (hi - lo > config.resolution) {
    const Duration mid = lo + (hi - lo) / 2;
    if (inflated(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo + (hi - lo) / 2;
}

Duration TimeoutProber::infer_bus_sleep_timeout(const GapProbeFn& measure,
                                                const Config& config) {
  expects(static_cast<bool>(measure), "TimeoutProber requires a measure fn");
  expects(config.min < config.max, "TimeoutProber config: min < max");

  // Baseline: a short gap that cannot let the bus sleep.
  const double baseline =
      median_of(measure(config.min, config.probes_per_point));
  const auto inflated = [&](Duration gap) {
    const double median = median_of(measure(gap, config.probes_per_point));
    return median - baseline > config.bus_inflation_threshold_ms;
  };

  Duration lo = config.min;
  Duration hi = config.max;
  if (!inflated(hi)) return hi;
  while (hi - lo > config.resolution) {
    const Duration mid = lo + (hi - lo) / 2;
    if (inflated(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo + (hi - lo) / 2;
}

int TimeoutProber::infer_actual_listen_interval(
    const std::vector<double>& psm_delays_ms) {
  expects(!psm_delays_ms.empty(),
          "TimeoutProber: listen-interval inference needs observations");
  // A dozing station wakes every (L+1) beacons, so PSM delays fall in
  // (0, (L+1) * beacon_interval]. The 80th percentile is robust to the
  // occasional missed TIM (which waits one extra cycle).
  const double p80 = stats::Summary(psm_delays_ms).percentile(80.0);
  const double beacons = p80 / wifi::beacon_interval().to_ms();
  return std::max(0, static_cast<int>(std::ceil(beacons)) - 1);
}

}  // namespace acute::core
