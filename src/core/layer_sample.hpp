// Multi-layer RTT decomposition (§2.1, Fig. 1).
//
// From a fully-stamped response packet (which carries its request's stamps,
// our stand-in for the paper's modified-driver logs + tcpdump + sniffers),
// derive the RTT at every vantage point and the overhead decomposition:
//
//   du      user-level RTT        t_u^i - t_u^o
//   dk      kernel-level RTT      t_k^i - t_k^o
//   dv      driver-level RTT      t_v^i - t_v^o
//   dn      network-level RTT     t_n^i - t_n^o
//   dvsend  driver send latency   txpkt - start_xmit   (SDIO wake shows here)
//   dvrecv  driver recv latency   rxf_enqueue - isr    (and here)
//
//   Δdu-k = du - dk, Δdk-v = dk - dv, Δdv-n = dv - dn, Δdk-n = dk - dn.
#pragma once

#include <optional>
#include <vector>

#include "net/packet.hpp"

namespace acute::core {

struct LayerSample {
  std::uint64_t probe_id = 0;
  double du_ms = 0;
  double dk_ms = 0;
  double dv_ms = 0;
  double dn_ms = 0;
  double dvsend_ms = 0;
  double dvrecv_ms = 0;

  [[nodiscard]] double du_k() const { return du_ms - dk_ms; }
  [[nodiscard]] double dk_v() const { return dk_ms - dv_ms; }
  [[nodiscard]] double dv_n() const { return dv_ms - dn_ms; }
  [[nodiscard]] double dk_n() const { return dk_ms - dn_ms; }
  /// Total delay overhead Δd = du - dn (Eq. 1).
  [[nodiscard]] double total_overhead() const { return du_ms - dn_ms; }

  /// Builds the decomposition from a response delivered to the app.
  /// Returns nullopt if any stamp is missing (e.g. a synthetic packet).
  /// If `reported_du_ms` is given it overrides the stamp-derived du — the
  /// user-level RTT is whatever the tool *reports* (quantization included).
  [[nodiscard]] static std::optional<LayerSample> from_response(
      const net::Packet& response,
      std::optional<double> reported_du_ms = std::nullopt);
};

/// Extracts a derived quantity across samples (for Summary/BoxPlot/Cdf).
[[nodiscard]] std::vector<double> extract(
    const std::vector<LayerSample>& samples,
    double (LayerSample::*field)() const);

/// Extracts a raw field across samples, e.g. extract(s, &LayerSample::du_ms).
[[nodiscard]] std::vector<double> extract(
    const std::vector<LayerSample>& samples, double LayerSample::*field);

}  // namespace acute::core
