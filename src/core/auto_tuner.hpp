// Automatic parameter tuning — the paper's stated future work (§4.1):
// "dpre and db were assigned with empirical values... they could be
// inappropriate for some smartphone models, because both Tis and Tip are
// tunable. A simple solution is training the program to obtain suitable
// values."
//
// Given the timeouts the TimeoutProber infers, derive AcuteMon parameters
// that provably keep both demotion timers from firing:
//     Tprom < dpre < min(Tis, Tip)   and   db < min(Tis, Tip),
// with a safety margin for timer quantization (one 10 ms watchdog tick).
#pragma once

#include "core/acutemon.hpp"
#include "sim/time.hpp"

namespace acute::core {

struct TunedParameters {
  sim::Duration warmup_lead;         // dpre
  sim::Duration background_interval;  // db
  /// The binding constraint min(Tis, Tip) the tuning worked from.
  sim::Duration binding_timeout;
  /// False when no safe setting exists (min timeout <= promotion delay).
  bool feasible = true;
};

class AutoTuner {
 public:
  struct Config {
    /// Quantization slack subtracted from the inferred timeouts (one
    /// driver-watchdog tick on both machines).
    sim::Duration timer_slack = sim::Duration::millis(10);
    /// Upper bound on the bus promotion delay (Tprom); dpre must exceed it.
    sim::Duration max_promotion = sim::Duration::millis(14);
    /// Never send keep-alives faster than this (battery/airtime guard).
    sim::Duration min_interval = sim::Duration::millis(4);
    /// The paper's empirical default; used whenever it is already safe.
    sim::Duration preferred = sim::Duration::millis(20);
  };

  /// Derives (dpre, db) from inferred timeouts.
  [[nodiscard]] static TunedParameters tune(sim::Duration inferred_tis,
                                            sim::Duration inferred_tip,
                                            const Config& config);
  /// Same, with default Config.
  [[nodiscard]] static TunedParameters tune(sim::Duration inferred_tis,
                                            sim::Duration inferred_tip);

  /// Applies tuned parameters to an AcuteMon options struct.
  [[nodiscard]] static AcuteMon::Options apply(
      const TunedParameters& tuned,
      AcuteMon::Options options = AcuteMon::Options{});
};

}  // namespace acute::core
