// tc-netem work-alike: base delay + jitter applied to an egress path.
//
// The paper emulates nRTTs of 20-135 ms by running `tc ... netem delay Xms`
// on the measurement server's interface, i.e. responses are delayed on the
// server's egress. NetemQdisc reproduces exactly that.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace acute::net {

class NetemQdisc {
 public:
  using ForwardFn = std::function<void(Packet&&)>;

  /// `forward` receives packets after the configured delay.
  NetemQdisc(sim::Simulator& sim, sim::Rng rng, ForwardFn forward);

  NetemQdisc(const NetemQdisc&) = delete;
  NetemQdisc& operator=(const NetemQdisc&) = delete;

  /// Returns the qdisc to the state the constructor would leave it in with
  /// this rng stream; the forward fn is kept (shard-context reuse contract).
  void reset(sim::Rng rng) {
    rng_ = std::move(rng);
    base_ = sim::Duration{};
    jitter_ = sim::Duration{};
    prevent_reorder_ = true;
    loss_ = 0.0;
    last_release_ = sim::TimePoint{};
    dropped_count_ = 0;
  }

  /// Sets the base delay (tc netem "delay <base>").
  void set_delay(sim::Duration base) { base_ = base; }

  /// Sets uniform jitter (tc netem "delay <base> <jitter>"): each packet is
  /// delayed base + U(-jitter, +jitter), floored at zero.
  void set_jitter(sim::Duration jitter) { jitter_ = jitter; }

  /// When true (default, like plain netem with no reorder option), packets
  /// never leave the qdisc out of order even if jitter would reorder them.
  void set_prevent_reorder(bool prevent) { prevent_reorder_ = prevent; }

  /// Independent packet loss probability (tc netem "loss <p>%").
  void set_loss(double probability);

  [[nodiscard]] sim::Duration delay() const { return base_; }
  [[nodiscard]] std::uint64_t dropped_count() const { return dropped_count_; }

  /// Enqueues a packet; it is forwarded after the emulated delay.
  void enqueue(Packet&& packet);

 private:
  sim::Simulator* sim_;
  sim::Rng rng_;
  ForwardFn forward_;
  sim::Duration base_;
  sim::Duration jitter_;
  bool prevent_reorder_ = true;
  double loss_ = 0.0;
  sim::TimePoint last_release_;
  std::uint64_t dropped_count_ = 0;
};

}  // namespace acute::net
