#include "net/link.hpp"

#include <algorithm>
#include <utility>

#include "sim/contracts.hpp"

namespace acute::net {

using sim::Duration;
using sim::expects;
using sim::TimePoint;

Link::Link(sim::Simulator& sim, Node& a, Node& b, Duration propagation,
           double bandwidth_bps)
    : sim_(&sim),
      a_(&a),
      b_(&b),
      propagation_(propagation),
      bandwidth_bps_(bandwidth_bps) {
  expects(!propagation.is_negative(),
          "Link propagation delay must be non-negative");
  expects(bandwidth_bps > 0, "Link bandwidth must be positive");
  expects(a.id() != b.id(), "Link endpoints must differ");
  a_to_b_.to = b_;
  b_to_a_.to = a_;
}

void Link::reset(Node& a, Node& b, Duration propagation,
                 double bandwidth_bps) {
  expects(!propagation.is_negative(),
          "Link propagation delay must be non-negative");
  expects(bandwidth_bps > 0, "Link bandwidth must be positive");
  expects(a.id() != b.id(), "Link endpoints must differ");
  a_ = &a;
  b_ = &b;
  propagation_ = propagation;
  bandwidth_bps_ = bandwidth_bps;
  a_to_b_ = Direction{b_, TimePoint{}};
  b_to_a_ = Direction{a_, TimePoint{}};
  delivered_count_ = 0;
}

Link::Direction& Link::direction_from(NodeId from) {
  expects(from == a_->id() || from == b_->id(),
          "Link::send 'from' must be one of the endpoints");
  return from == a_->id() ? a_to_b_ : b_to_a_;
}

void Link::send(NodeId from, Packet&& packet) {
  Direction& dir = direction_from(from);
  const auto serialization =
      Duration::seconds(double(packet.size_bytes) * 8.0 / bandwidth_bps_);
  const TimePoint start = std::max(sim_->now(), dir.busy_until);
  const TimePoint tx_done = start + serialization;
  dir.busy_until = tx_done;
  const TimePoint arrival = tx_done + propagation_;
  Node* to = dir.to;
  sim_->schedule_at(arrival, sim::assert_fits_inline(
                                 [this, to, pkt = std::move(packet)]() mutable {
                                   ++delivered_count_;
                                   to->receive(std::move(pkt), this);
                                 }));
}

Node& Link::peer_of(NodeId from) const {
  expects(from == a_->id() || from == b_->id(),
          "Link::peer_of requires an endpoint id");
  return from == a_->id() ? *b_ : *a_;
}

}  // namespace acute::net
