// Full-duplex point-to-point wired link with propagation delay and
// store-and-forward serialization at line rate.
#pragma once

#include <cstdint>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace acute::net {

class Link {
 public:
  /// Connects `a` and `b` with the given one-way propagation delay and line
  /// rate in bits per second (e.g. 1e9 for gigabit Ethernet).
  Link(sim::Simulator& sim, Node& a, Node& b, sim::Duration propagation,
       double bandwidth_bps);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Returns the link to the state the constructor would leave it in with
  /// these arguments (shard-context reuse contract; endpoints or parameters
  /// may differ from the original construction).
  void reset(Node& a, Node& b, sim::Duration propagation,
             double bandwidth_bps);

  /// Transmits `packet` from the endpoint whose id is `from`.
  /// The packet is serialized after any in-flight packet in that direction,
  /// then delivered to the opposite endpoint after the propagation delay.
  void send(NodeId from, Packet&& packet);

  /// The endpoint opposite to `from`.
  [[nodiscard]] Node& peer_of(NodeId from) const;

  [[nodiscard]] sim::Duration propagation() const { return propagation_; }
  [[nodiscard]] double bandwidth_bps() const { return bandwidth_bps_; }
  [[nodiscard]] std::uint64_t delivered_count() const {
    return delivered_count_;
  }

 private:
  struct Direction {
    Node* to = nullptr;
    sim::TimePoint busy_until;
  };

  Direction& direction_from(NodeId from);

  sim::Simulator* sim_;
  Node* a_;
  Node* b_;
  sim::Duration propagation_;
  double bandwidth_bps_;
  Direction a_to_b_;
  Direction b_to_a_;
  std::uint64_t delivered_count_ = 0;
};

}  // namespace acute::net
