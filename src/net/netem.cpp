#include "net/netem.hpp"

#include <algorithm>
#include <utility>

#include "sim/contracts.hpp"

namespace acute::net {

using sim::Duration;
using sim::expects;
using sim::TimePoint;

NetemQdisc::NetemQdisc(sim::Simulator& sim, sim::Rng rng, ForwardFn forward)
    : sim_(&sim), rng_(std::move(rng)), forward_(std::move(forward)) {
  expects(static_cast<bool>(forward_), "NetemQdisc requires a forward hook");
}

void NetemQdisc::set_loss(double probability) {
  expects(probability >= 0.0 && probability < 1.0,
          "NetemQdisc loss probability must be in [0, 1)");
  loss_ = probability;
}

void NetemQdisc::enqueue(Packet&& packet) {
  if (loss_ > 0.0 && rng_.bernoulli(loss_)) {
    ++dropped_count_;
    return;
  }
  Duration delay = base_;
  if (!jitter_.is_zero()) {
    delay += rng_.uniform_duration(-jitter_, jitter_);
    if (delay.is_negative()) delay = Duration{};
  }
  TimePoint release = sim_->now() + delay;
  if (prevent_reorder_) {
    release = std::max(release, last_release_);
  }
  last_release_ = release;
  sim_->schedule_at(release, sim::assert_fits_inline(
                                 [this, pkt = std::move(packet)]() mutable {
                                   forward_(std::move(pkt));
                                 }));
}

}  // namespace acute::net
