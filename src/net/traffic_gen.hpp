// iPerf-like constant-bit-rate UDP sources for cross traffic (§4.3: ten
// connections at 2.5 Mbit/s each, enough to congest an 802.11g WLAN).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace acute::net {

/// A single CBR flow. Emits fixed-size UDP datagrams at a constant rate with
/// a small randomized phase so parallel flows do not phase-lock.
class UdpCbrSource {
 public:
  using TransmitFn = std::function<void(Packet&&)>;

  struct Config {
    NodeId src = 0;
    NodeId dst = 0;
    std::uint32_t flow_id = 0;
    double rate_mbps = 2.5;
    std::uint32_t datagram_bytes = packet_size::udp_iperf;
  };

  UdpCbrSource(sim::Simulator& sim, sim::Rng rng, Config config,
               TransmitFn transmit);

  UdpCbrSource(const UdpCbrSource&) = delete;
  UdpCbrSource& operator=(const UdpCbrSource&) = delete;

  /// Returns the source to the state the constructor would leave it in with
  /// these arguments; the transmit fn is kept (shard-context reuse
  /// contract).
  void reset(sim::Rng rng, Config config);

  /// Starts emitting datagrams (first one within one inter-packet period).
  void start();
  void stop();

  [[nodiscard]] bool running() const { return timer_.running(); }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  sim::Rng rng_;
  Config config_;
  TransmitFn transmit_;
  sim::PeriodicTimer timer_;
  std::uint64_t packets_sent_ = 0;
};

/// The iPerf client of §4.3: N parallel CBR flows from one host.
class IperfLoadGenerator {
 public:
  IperfLoadGenerator(sim::Simulator& sim, sim::Rng rng, NodeId src, NodeId dst,
                     std::size_t connections, double per_flow_mbps,
                     UdpCbrSource::TransmitFn transmit);

  /// Reconfigures the generator as the constructor would with these
  /// arguments, reusing existing flow objects where the connection count
  /// allows (shard-context reuse contract).
  void reset(sim::Simulator& sim, sim::Rng rng, NodeId src, NodeId dst,
             std::size_t connections, double per_flow_mbps,
             const UdpCbrSource::TransmitFn& transmit);

  void start();
  void stop();

  [[nodiscard]] std::size_t connection_count() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t packets_sent() const;
  [[nodiscard]] double offered_load_mbps() const;

 private:
  std::vector<std::unique_ptr<UdpCbrSource>> flows_;
};

}  // namespace acute::net
