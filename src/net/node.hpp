// Wired-network node interface.
//
// Wired devices (switch, servers, the AP's Ethernet port) receive packets
// from Links. Wireless delivery happens through wifi::Radio instead, so a
// device that bridges both (the AP) implements Node for its wired side and
// owns a Radio for its wireless side.
#pragma once

#include "net/packet.hpp"

namespace acute::net {

class Link;

class Node {
 public:
  Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  virtual ~Node() = default;

  /// Delivery of `packet` arriving over `ingress` (never null for wired
  /// delivery; implementations may use it to learn topology).
  virtual void receive(Packet&& packet, Link* ingress) = 0;

  /// The node's flat address.
  [[nodiscard]] virtual NodeId id() const = 0;
};

}  // namespace acute::net
