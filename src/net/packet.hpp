// Packet model.
//
// One Packet type flows through every layer of the simulation. It carries the
// per-layer timestamps of the paper's Fig. 1 (t_u, t_k, t_v, t_n on both
// directions), which the testbed later folds into du / dk / dv / dn and the
// overhead decomposition of §2.1.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace acute::net {

/// Flat node address (plays the role of both MAC and IP in the testbed).
using NodeId = std::uint32_t;

/// Application payload bytes, held in a shared immutable buffer so that
/// forwarding, buffering and broadcast fan-out never duplicate the bytes:
/// copying a Packet bumps a refcount, moving it is a pointer swap.
using PayloadBuffer = std::shared_ptr<const std::vector<std::uint8_t>>;

/// Per-thread accounting of Packet copies/moves. The zero-copy packet path
/// is a hard invariant benches and tests assert on, not a hope: every copy
/// construction/assignment of a Packet increments `copies` on the thread
/// that performed it (campaign shards therefore count independently).
struct PacketOpCounters {
  std::uint64_t copies = 0;
};

namespace detail {
/// Empty tag member embedded in Packet: its copy operations increment the
/// thread-local counter while its (defaulted) move operations stay free, so
/// Packet itself keeps all special members defaulted.
struct PacketCopyProbe {
  PacketCopyProbe() = default;
  PacketCopyProbe(const PacketCopyProbe&) noexcept;
  PacketCopyProbe& operator=(const PacketCopyProbe&) noexcept;
  PacketCopyProbe(PacketCopyProbe&&) noexcept = default;
  PacketCopyProbe& operator=(PacketCopyProbe&&) noexcept = default;
};
}  // namespace detail

/// Broadcast address (beacons).
inline constexpr NodeId kBroadcastId = 0xffff'ffff;

enum class Protocol : std::uint8_t { icmp, tcp, udp, wifi_mgmt };

enum class PacketType : std::uint8_t {
  // ICMP
  icmp_echo_request,
  icmp_echo_reply,
  icmp_time_exceeded,
  // TCP control + data
  tcp_syn,
  tcp_syn_ack,
  tcp_rst,
  http_request,
  http_response,
  // UDP
  udp_data,
  udp_warmup,      // AcuteMon warm-up packet (TTL = 1)
  udp_background,  // AcuteMon background packet (TTL = 1)
  // 802.11 management / control
  wifi_beacon,
  wifi_ps_poll,
  wifi_null,  // null data frame carrying the PM bit
};

[[nodiscard]] const char* to_string(PacketType type);
[[nodiscard]] const char* to_string(Protocol protocol);

/// Per-layer timestamps (Fig. 1 of the paper).
///
/// The send-path stamps are written as the packet descends the phone's stack;
/// `air` is written by the wireless channel when the frame hits the medium;
/// the receive-path stamps are written as the response ascends the stack.
struct LayerStamps {
  // Send path (phone egress).
  std::optional<sim::TimePoint> app_send;           // t_u^o
  std::optional<sim::TimePoint> kernel_send;        // t_k^o (bpf/tcpdump tap)
  std::optional<sim::TimePoint> driver_xmit_entry;  // dhd_start_xmit entry
  std::optional<sim::TimePoint> driver_txpkt;       // dhdsdio_txpkt entry
  // Wireless hop (one per direction in the Fig. 2 testbed).
  std::optional<sim::TimePoint> air;  // t_n: frame TX start on the medium
  // Receive path (phone ingress).
  std::optional<sim::TimePoint> driver_isr;          // dhdsdio_isr entry
  std::optional<sim::TimePoint> driver_rxf_enqueue;  // dhd_rxf_enqueue
  std::optional<sim::TimePoint> kernel_recv;         // t_k^i (bpf tap)
  std::optional<sim::TimePoint> app_recv;            // t_u^i
};

/// TCP timestamp option (RFC 7323): senders stamp `tsval` from their own
/// millisecond-class clock; receivers echo the last received value back in
/// `tsecr`. Passive capture-point estimators (passive::PpingEstimator)
/// match tsval -> tsecr pairs to recover RTTs without injecting traffic —
/// the pping/DlyLoc technique. 0 means "option absent" on either field;
/// the simulator's TSval clock (tools::MeasurementTool) never emits 0.
struct TcpTimestamps {
  std::uint32_t tsval = 0;
  std::uint32_t tsecr = 0;
};

/// 802.11-specific header bits used by the AP/STA power-save machinery.
struct WifiHeader {
  /// Power-management bit: true = the sender will doze after this frame.
  bool power_mgmt = false;
  /// More-data bit on AP->STA frames: more buffered frames follow.
  bool more_data = false;
  /// Traffic-indication map carried by beacons: STAs with buffered frames.
  std::vector<NodeId> tim;
  /// Beacons carry their target beacon transmission time (the 802.11
  /// timestamp field); stations use it to synchronize their wake schedule.
  std::optional<sim::TimePoint> tbtt;
};

struct Packet {
  std::uint64_t id = 0;        // unique per packet
  std::uint64_t probe_id = 0;  // correlates a probe with its response; 0=none
  PacketType type = PacketType::udp_data;
  Protocol protocol = Protocol::udp;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t size_bytes = 0;  // on-the-wire size incl. headers
  std::uint8_t ttl = 64;
  std::uint32_t flow_id = 0;  // demultiplexes concurrent apps on one phone

  /// TCP timestamp option; all-zero on non-TCP packets.
  TcpTimestamps tcp_ts;

  WifiHeader wifi;
  LayerStamps stamps;

  /// Application payload (HTTP bodies, iPerf datagram fill). Immutable and
  /// shared: many in-flight packets may reference one buffer. Null for the
  /// (common) headers-only packets; `size_bytes` stays the on-the-wire size
  /// either way.
  PayloadBuffer payload;

  /// Simulation instrumentation: servers echo the request's stamps here so
  /// the testbed can decompose RTTs per layer. This substitutes for the
  /// paper's modified driver + tcpdump logs; measurement tools never read it.
  std::shared_ptr<const LayerStamps> request_stamps;

  [[no_unique_address]] detail::PacketCopyProbe copy_probe;

  /// Number of payload bytes attached (0 when payload is null).
  [[nodiscard]] std::size_t payload_size() const {
    return payload == nullptr ? 0 : payload->size();
  }

  /// Wraps `bytes` into a shared immutable payload buffer.
  [[nodiscard]] static PayloadBuffer make_payload(
      std::vector<std::uint8_t> bytes);

  /// This thread's Packet copy accounting (see PacketOpCounters).
  [[nodiscard]] static const PacketOpCounters& op_counters();
  /// Resets this thread's Packet copy accounting.
  static void reset_op_counters();

  /// Allocates a process-unique packet id.
  [[nodiscard]] static std::uint64_t allocate_id();

  /// Builds a packet with a fresh id.
  [[nodiscard]] static Packet make(PacketType type, Protocol protocol,
                                   NodeId src, NodeId dst,
                                   std::uint32_t size_bytes);

  /// Builds the response to `request`: src/dst swapped, probe_id and flow_id
  /// preserved, the request's TSval echoed as the response's TSecr (TCP
  /// only), request stamps attached for testbed correlation.
  [[nodiscard]] static Packet make_response(const Packet& request,
                                            PacketType type,
                                            std::uint32_t size_bytes);

  [[nodiscard]] bool is_wifi_control() const {
    return protocol == Protocol::wifi_mgmt;
  }
  [[nodiscard]] bool is_broadcast() const { return dst == kBroadcastId; }

  [[nodiscard]] std::string describe() const;
};

/// Canonical on-the-wire sizes used by the tools (bytes, L3 + payload).
namespace packet_size {
inline constexpr std::uint32_t icmp_echo = 84;      // 56B payload + headers
inline constexpr std::uint32_t tcp_control = 60;    // SYN / SYN-ACK / RST
inline constexpr std::uint32_t http_request = 160;  // small GET
inline constexpr std::uint32_t http_response = 240;
inline constexpr std::uint32_t udp_small = 46;  // AcuteMon warm-up/background
inline constexpr std::uint32_t udp_iperf = 1498;  // iPerf default datagram
}  // namespace packet_size

}  // namespace acute::net
