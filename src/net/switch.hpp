// Learning Ethernet switch (the testbed's wired fabric, Fig. 2).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"

namespace acute::net {

class Switch : public Node {
 public:
  explicit Switch(NodeId id) : id_(id) {}

  /// Returns the switch to the state the constructor would leave it in:
  /// no ports, empty learning table. Port and table storage stay warm
  /// (shard-context reuse contract).
  void reset(NodeId id) {
    id_ = id;
    ports_.clear();
    table_.clear();
    forwarded_count_ = 0;
    flooded_count_ = 0;
  }

  /// Registers a link as one of the switch ports. The link must have this
  /// switch as one endpoint.
  void attach_port(Link& link);

  void receive(Packet&& packet, Link* ingress) override;

  [[nodiscard]] NodeId id() const override { return id_; }

  /// Number of (address -> port) entries learned so far.
  [[nodiscard]] std::size_t learned_count() const { return table_.size(); }

  [[nodiscard]] std::uint64_t forwarded_count() const {
    return forwarded_count_;
  }
  [[nodiscard]] std::uint64_t flooded_count() const { return flooded_count_; }

 private:
  NodeId id_;
  std::vector<Link*> ports_;
  // Learned (address -> port) entries. A handful of nodes sit behind this
  // switch, so a flat vector beats a node-based map and re-learning after
  // a reset allocates nothing once the capacity is warm.
  std::vector<std::pair<NodeId, Link*>> table_;
  std::uint64_t forwarded_count_ = 0;
  std::uint64_t flooded_count_ = 0;
};

}  // namespace acute::net
