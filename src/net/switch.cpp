#include "net/switch.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace acute::net {

using sim::expects;

void Switch::attach_port(Link& link) {
  expects(std::find(ports_.begin(), ports_.end(), &link) == ports_.end(),
          "Switch::attach_port: link already attached");
  ports_.push_back(&link);
}

void Switch::receive(Packet&& packet, Link* ingress) {
  expects(ingress != nullptr, "Switch requires wired ingress");
  // Learn the sender's port.
  Link** learned = nullptr;
  Link* dst_port = nullptr;
  for (auto& [addr, port] : table_) {
    if (addr == packet.src) learned = &port;
    if (addr == packet.dst) dst_port = port;
  }
  if (learned != nullptr) {
    *learned = ingress;
  } else {
    table_.emplace_back(packet.src, ingress);
  }

  if (!packet.is_broadcast() && dst_port != nullptr) {
    ++forwarded_count_;
    dst_port->send(id_, std::move(packet));
    return;
  }
  // Unknown destination or broadcast: flood all ports except ingress (each
  // egress owns its copy; payload bytes stay shared).
  ++flooded_count_;
  for (Link* port : ports_) {
    if (port == ingress) continue;
    Packet copy = packet;
    port->send(id_, std::move(copy));
  }
}

}  // namespace acute::net
