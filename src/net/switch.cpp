#include "net/switch.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace acute::net {

using sim::expects;

void Switch::attach_port(Link& link) {
  expects(std::find(ports_.begin(), ports_.end(), &link) == ports_.end(),
          "Switch::attach_port: link already attached");
  ports_.push_back(&link);
}

void Switch::receive(Packet&& packet, Link* ingress) {
  expects(ingress != nullptr, "Switch requires wired ingress");
  // Learn the sender's port.
  table_[packet.src] = ingress;

  if (!packet.is_broadcast()) {
    const auto it = table_.find(packet.dst);
    if (it != table_.end()) {
      ++forwarded_count_;
      it->second->send(id_, std::move(packet));
      return;
    }
  }
  // Unknown destination or broadcast: flood all ports except ingress (each
  // egress owns its copy; payload bytes stay shared).
  ++flooded_count_;
  for (Link* port : ports_) {
    if (port == ingress) continue;
    Packet copy = packet;
    port->send(id_, std::move(copy));
  }
}

}  // namespace acute::net
