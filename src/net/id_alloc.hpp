// Overflow-safe monotonic id allocation.
//
// Packet ids and flow ids use 0 as a sentinel ("no probe", "no app bound"),
// so a naive `next_++` counter would hand out the sentinel — and collide
// with live ids — once it wraps. Fleet-scale scenarios multiply packet
// volume enough that wrap-around is a real (if distant) concern for 32-bit
// counters, so both allocators skip 0 on wrap by construction.
#pragma once

#include <atomic>
#include <limits>
#include <type_traits>

namespace acute::net {

/// Single-threaded wrapping id allocator that never returns 0.
template <typename UInt>
class IdAllocator {
  static_assert(std::is_unsigned_v<UInt>, "IdAllocator requires an unsigned type");

 public:
  constexpr explicit IdAllocator(UInt first = 1) : next_(first ? first : 1) {}

  /// Returns the next id and advances, wrapping max -> 1 (never 0).
  [[nodiscard]] constexpr UInt next() {
    const UInt id = next_;
    next_ = id == std::numeric_limits<UInt>::max() ? UInt{1}
                                                   : static_cast<UInt>(id + 1);
    return id;
  }

  /// The id the next call to next() will return.
  [[nodiscard]] constexpr UInt peek() const { return next_; }

 private:
  UInt next_;
};

/// Thread-safe variant (Packet::allocate_id is documented process-unique and
/// tests may allocate from multiple threads).
template <typename UInt>
class AtomicIdAllocator {
  static_assert(std::is_unsigned_v<UInt>,
                "AtomicIdAllocator requires an unsigned type");

 public:
  constexpr explicit AtomicIdAllocator(UInt first = 1)
      : next_(first ? first : 1) {}

  /// Returns the next id, skipping 0 when the underlying counter wraps.
  [[nodiscard]] UInt next() {
    UInt id = next_.fetch_add(1, std::memory_order_relaxed);
    while (id == 0) {
      id = next_.fetch_add(1, std::memory_order_relaxed);
    }
    return id;
  }

 private:
  std::atomic<UInt> next_;
};

/// Thread-scalable variant: the shared atomic cursor leases *blocks* of
/// consecutive ids, and each thread consumes its leased block through a
/// thread-local Cache — one shared RMW per BlockSize ids instead of one per
/// id. On the campaign hot path (every simulated packet allocates an id)
/// this turns a process-global contention point into per-worker local
/// arithmetic. Ids are process-unique and never 0, but *not* dense across
/// threads: a thread's unused block tail is simply discarded. With uint64
/// ids, leaked tails exhaust the space only after ~2^54 blocks.
template <typename UInt, UInt BlockSize = 1024>
class BlockIdAllocator {
  static_assert(std::is_unsigned_v<UInt>,
                "BlockIdAllocator requires an unsigned type");
  static_assert(BlockSize > 0, "BlockIdAllocator needs a non-empty block");

 public:
  /// One thread's lease: [next, end) with unsigned wrap; next == end means
  /// exhausted. Declare as thread_local at the call site.
  struct Cache {
    UInt next = 0;
    UInt end = 0;
  };

  constexpr explicit BlockIdAllocator(UInt first = 1)
      : cursor_(first ? first : 1) {}

  /// Returns the next id from `cache`, leasing a fresh block when it runs
  /// dry; skips 0 when the id space wraps through it.
  [[nodiscard]] UInt next(Cache& cache) {
    for (;;) {
      if (cache.next == cache.end) {
        const UInt begin =
            cursor_.fetch_add(BlockSize, std::memory_order_relaxed);
        cache.next = begin;
        cache.end = static_cast<UInt>(begin + BlockSize);
      }
      const UInt id = cache.next++;
      if (id != 0) return id;
    }
  }

 private:
  std::atomic<UInt> cursor_;
};

}  // namespace acute::net
