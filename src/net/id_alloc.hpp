// Overflow-safe monotonic id allocation.
//
// Packet ids and flow ids use 0 as a sentinel ("no probe", "no app bound"),
// so a naive `next_++` counter would hand out the sentinel — and collide
// with live ids — once it wraps. Fleet-scale scenarios multiply packet
// volume enough that wrap-around is a real (if distant) concern for 32-bit
// counters, so both allocators skip 0 on wrap by construction.
#pragma once

#include <atomic>
#include <limits>
#include <type_traits>

namespace acute::net {

/// Single-threaded wrapping id allocator that never returns 0.
template <typename UInt>
class IdAllocator {
  static_assert(std::is_unsigned_v<UInt>, "IdAllocator requires an unsigned type");

 public:
  constexpr explicit IdAllocator(UInt first = 1) : next_(first ? first : 1) {}

  /// Returns the next id and advances, wrapping max -> 1 (never 0).
  [[nodiscard]] constexpr UInt next() {
    const UInt id = next_;
    next_ = id == std::numeric_limits<UInt>::max() ? UInt{1}
                                                   : static_cast<UInt>(id + 1);
    return id;
  }

  /// The id the next call to next() will return.
  [[nodiscard]] constexpr UInt peek() const { return next_; }

 private:
  UInt next_;
};

/// Thread-safe variant (Packet::allocate_id is documented process-unique and
/// tests may allocate from multiple threads).
template <typename UInt>
class AtomicIdAllocator {
  static_assert(std::is_unsigned_v<UInt>,
                "AtomicIdAllocator requires an unsigned type");

 public:
  constexpr explicit AtomicIdAllocator(UInt first = 1)
      : next_(first ? first : 1) {}

  /// Returns the next id, skipping 0 when the underlying counter wraps.
  [[nodiscard]] UInt next() {
    UInt id = next_.fetch_add(1, std::memory_order_relaxed);
    while (id == 0) {
      id = next_.fetch_add(1, std::memory_order_relaxed);
    }
    return id;
  }

 private:
  std::atomic<UInt> next_;
};

}  // namespace acute::net
