#include "net/packet.hpp"

#include <sstream>

#include "net/id_alloc.hpp"

namespace acute::net {

const char* to_string(PacketType type) {
  switch (type) {
    case PacketType::icmp_echo_request:
      return "icmp_echo_request";
    case PacketType::icmp_echo_reply:
      return "icmp_echo_reply";
    case PacketType::icmp_time_exceeded:
      return "icmp_time_exceeded";
    case PacketType::tcp_syn:
      return "tcp_syn";
    case PacketType::tcp_syn_ack:
      return "tcp_syn_ack";
    case PacketType::tcp_rst:
      return "tcp_rst";
    case PacketType::http_request:
      return "http_request";
    case PacketType::http_response:
      return "http_response";
    case PacketType::udp_data:
      return "udp_data";
    case PacketType::udp_warmup:
      return "udp_warmup";
    case PacketType::udp_background:
      return "udp_background";
    case PacketType::wifi_beacon:
      return "wifi_beacon";
    case PacketType::wifi_ps_poll:
      return "wifi_ps_poll";
    case PacketType::wifi_null:
      return "wifi_null";
  }
  return "?";
}

const char* to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::icmp:
      return "icmp";
    case Protocol::tcp:
      return "tcp";
    case Protocol::udp:
      return "udp";
    case Protocol::wifi_mgmt:
      return "wifi_mgmt";
  }
  return "?";
}

namespace {
thread_local PacketOpCounters g_packet_ops;
}  // namespace

namespace detail {
PacketCopyProbe::PacketCopyProbe(const PacketCopyProbe&) noexcept {
  ++g_packet_ops.copies;
}
PacketCopyProbe& PacketCopyProbe::operator=(const PacketCopyProbe&) noexcept {
  ++g_packet_ops.copies;
  return *this;
}
}  // namespace detail

PayloadBuffer Packet::make_payload(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

const PacketOpCounters& Packet::op_counters() { return g_packet_ops; }

void Packet::reset_op_counters() { g_packet_ops = PacketOpCounters{}; }

std::uint64_t Packet::allocate_id() {
  // Every simulated packet passes through here, so campaign workers used to
  // serialize on one fetch_add per packet; block leasing makes the shared
  // RMW one-per-1024 ids. Ids stay process-unique (never dense across
  // threads — nothing may depend on packet-id adjacency, and nothing does:
  // multi-worker claim order already interleaved them arbitrarily).
  static BlockIdAllocator<std::uint64_t> allocator{1};
  thread_local BlockIdAllocator<std::uint64_t>::Cache cache;
  return allocator.next(cache);
}

Packet Packet::make(PacketType type, Protocol protocol, NodeId src, NodeId dst,
                    std::uint32_t size_bytes) {
  Packet pkt;
  pkt.id = allocate_id();
  pkt.type = type;
  pkt.protocol = protocol;
  pkt.src = src;
  pkt.dst = dst;
  pkt.size_bytes = size_bytes;
  return pkt;
}

Packet Packet::make_response(const Packet& request, PacketType type,
                             std::uint32_t size_bytes) {
  Packet response = make(type, request.protocol, request.dst, request.src,
                         size_bytes);
  response.probe_id = request.probe_id;
  response.flow_id = request.flow_id;
  // RFC 7323 echo: every responder (SYN-ACK, RST, HTTP response) reflects
  // the request's TSval, which is what capture-point estimators match on.
  response.tcp_ts.tsecr = request.tcp_ts.tsval;
  response.request_stamps =
      std::make_shared<const LayerStamps>(request.stamps);
  return response;
}

std::string Packet::describe() const {
  std::ostringstream os;
  os << to_string(type) << "#" << id << " " << src << "->" << dst << " "
     << size_bytes << "B ttl=" << int(ttl);
  if (probe_id != 0) os << " probe=" << probe_id;
  return os.str();
}

}  // namespace acute::net
