#include "net/server.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::net {

using sim::Duration;
using sim::expects;

EchoServer::EchoServer(sim::Simulator& sim, sim::Rng rng, NodeId id)
    : sim_(&sim),
      rng_(std::move(rng)),
      id_(id),
      netem_(sim, rng_.fork("netem"),
             [this](Packet pkt) {
               expects(link_ != nullptr,
                       "EchoServer link not attached before traffic");
               link_->send(id_, std::move(pkt));
             }),
      http_size_(packet_size::http_response) {}

void EchoServer::reset(sim::Rng rng, NodeId id) {
  rng_ = std::move(rng);
  id_ = id;
  link_ = nullptr;
  netem_.reset(rng_.fork("netem"));
  service_mean_ = Duration::micros(40);
  tcp_port_closed_ = false;
  observer_ = nullptr;
  http_size_ = packet_size::http_response;
  requests_served_ = 0;
}

void EchoServer::attach_link(Link& link) {
  expects(link_ == nullptr, "EchoServer::attach_link called twice");
  link_ = &link;
}

void EchoServer::receive(Packet&& packet, Link* /*ingress*/) {
  if (packet.dst != id_) return;  // not ours (switch flooding)
  if (observer_) observer_(packet);
  respond(packet);
}

void EchoServer::respond(const Packet& request) {
  std::optional<Packet> response;
  switch (request.type) {
    case PacketType::icmp_echo_request:
      response = Packet::make_response(request, PacketType::icmp_echo_reply,
                                       request.size_bytes);
      break;
    case PacketType::tcp_syn:
      response = Packet::make_response(
          request,
          tcp_port_closed_ ? PacketType::tcp_rst : PacketType::tcp_syn_ack,
          packet_size::tcp_control);
      break;
    case PacketType::http_request:
      response = Packet::make_response(request, PacketType::http_response,
                                       http_size_);
      // The body is one immutable buffer shared by every response in
      // flight; rebuilding only happens when the configured size changes.
      if (http_body_ == nullptr || http_body_->size() != http_size_) {
        http_body_ = Packet::make_payload(
            std::vector<std::uint8_t>(http_size_, std::uint8_t{0x42}));
      }
      response->payload = http_body_;
      break;
    default:
      return;  // UDP warm-up/background or unknown: silently absorbed
  }
  ++requests_served_;
  // Kernel service time, then out through the netem-shaped egress.
  const Duration service =
      Duration::seconds(rng_.exponential(service_mean_.to_seconds()));
  sim_->schedule_in(service, sim::assert_fits_inline(
                                 [this, resp = std::move(*response)]() mutable {
                                   netem_.enqueue(std::move(resp));
                                 }));
}

void UdpSink::receive(Packet&& packet, Link* /*ingress*/) {
  if (packet.dst != id_) return;
  if (packet.protocol != Protocol::udp) return;
  ++packets_;
  bytes_ += packet.size_bytes;
}

double UdpSink::throughput_mbps(sim::TimePoint since) const {
  const Duration window = sim_->now() - since;
  if (window <= Duration{}) return 0.0;
  return double(bytes_) * 8.0 / window.to_seconds() / 1e6;
}

void UdpSink::reset_window() {
  packets_ = 0;
  bytes_ = 0;
  window_start_ = sim_->now();
}

}  // namespace acute::net
