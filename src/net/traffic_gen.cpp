#include "net/traffic_gen.hpp"

#include <algorithm>
#include <utility>

#include "sim/contracts.hpp"

namespace acute::net {

using sim::Duration;
using sim::expects;

UdpCbrSource::UdpCbrSource(sim::Simulator& sim, sim::Rng rng, Config config,
                           TransmitFn transmit)
    : rng_(std::move(rng)),
      config_(config),
      transmit_(std::move(transmit)),
      timer_(sim,
             Duration::seconds(double(config.datagram_bytes) * 8.0 /
                                    (config.rate_mbps * 1e6)),
             [this](std::uint64_t) {
               Packet pkt =
                   Packet::make(PacketType::udp_data, Protocol::udp,
                                config_.src, config_.dst,
                                config_.datagram_bytes);
               pkt.flow_id = config_.flow_id;
               ++packets_sent_;
               transmit_(std::move(pkt));
             }) {
  expects(config.rate_mbps > 0, "UdpCbrSource rate must be positive");
  expects(config.datagram_bytes > 0, "UdpCbrSource datagram must be > 0B");
  expects(static_cast<bool>(transmit_), "UdpCbrSource requires a transmit fn");
}

void UdpCbrSource::reset(sim::Rng rng, Config config) {
  expects(config.rate_mbps > 0, "UdpCbrSource rate must be positive");
  expects(config.datagram_bytes > 0, "UdpCbrSource datagram must be > 0B");
  rng_ = std::move(rng);
  config_ = config;
  timer_.reset(Duration::seconds(double(config.datagram_bytes) * 8.0 /
                                 (config.rate_mbps * 1e6)));
  packets_sent_ = 0;
}

void UdpCbrSource::start() {
  // Random phase in the first period avoids lockstep between flows.
  const Duration phase = rng_.uniform_duration(Duration{}, timer_.period());
  timer_.start(phase);
}

void UdpCbrSource::stop() { timer_.stop(); }

IperfLoadGenerator::IperfLoadGenerator(sim::Simulator& sim, sim::Rng rng,
                                       NodeId src, NodeId dst,
                                       std::size_t connections,
                                       double per_flow_mbps,
                                       UdpCbrSource::TransmitFn transmit) {
  expects(connections > 0, "IperfLoadGenerator requires >= 1 connection");
  flows_.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    UdpCbrSource::Config config;
    config.src = src;
    config.dst = dst;
    config.flow_id = 1000 + static_cast<std::uint32_t>(i);
    config.rate_mbps = per_flow_mbps;
    flows_.push_back(std::make_unique<UdpCbrSource>(
        sim, rng.fork(i), config, transmit));
  }
}

void IperfLoadGenerator::reset(sim::Simulator& sim, sim::Rng rng, NodeId src,
                               NodeId dst, std::size_t connections,
                               double per_flow_mbps,
                               const UdpCbrSource::TransmitFn& transmit) {
  expects(connections > 0, "IperfLoadGenerator requires >= 1 connection");
  flows_.resize(std::min(flows_.size(), connections));
  flows_.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    UdpCbrSource::Config config;
    config.src = src;
    config.dst = dst;
    config.flow_id = 1000 + static_cast<std::uint32_t>(i);
    config.rate_mbps = per_flow_mbps;
    if (i < flows_.size()) {
      flows_[i]->reset(rng.fork(i), config);
    } else {
      flows_.push_back(std::make_unique<UdpCbrSource>(
          sim, rng.fork(i), config, transmit));
    }
  }
}

void IperfLoadGenerator::start() {
  for (auto& flow : flows_) flow->start();
}

void IperfLoadGenerator::stop() {
  for (auto& flow : flows_) flow->stop();
}

std::uint64_t IperfLoadGenerator::packets_sent() const {
  std::uint64_t total = 0;
  for (const auto& flow : flows_) total += flow->packets_sent();
  return total;
}

double IperfLoadGenerator::offered_load_mbps() const {
  double total = 0;
  for (const auto& flow : flows_) total += flow->config().rate_mbps;
  return total;
}

}  // namespace acute::net
