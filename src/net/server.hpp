// Wired hosts of the testbed: the measurement server (ICMP / TCP / HTTP
// responder behind a netem qdisc) and the load server's UDP sink.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "net/link.hpp"
#include "net/netem.hpp"
#include "net/node.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace acute::net {

/// The measurement server of Fig. 2.
///
/// Responds to ICMP echo (ping), TCP SYN on an open port (SYN-ACK), TCP SYN
/// on a closed port (RST, for the Java-ping/InetAddress method), and HTTP
/// requests. All responses leave through a NetemQdisc, which emulates the
/// paper's `tc netem delay` on the server interface.
class EchoServer : public Node {
 public:
  EchoServer(sim::Simulator& sim, sim::Rng rng, NodeId id);

  /// Returns the server to the state the constructor would leave it in
  /// with these arguments (same "netem" rng sub-fork). The shared HTTP body
  /// buffer is kept — it is rebuilt lazily only when the configured size
  /// changes, exactly as on the fresh path (shard-context reuse contract).
  void reset(sim::Rng rng, NodeId id);

  /// Connects the server's NIC. Must be called exactly once before traffic.
  void attach_link(Link& link);

  void receive(Packet&& packet, Link* ingress) override;
  [[nodiscard]] NodeId id() const override { return id_; }

  /// The emulated extra delay on the server's egress (tc netem).
  [[nodiscard]] NetemQdisc& netem() { return netem_; }

  /// Mean request service time (defaults to 40 us — the paper cites
  /// microsecond-level server-side processing for TCP probes [24]).
  void set_service_time(sim::Duration mean) { service_mean_ = mean; }

  /// When true, TCP SYNs are answered with RST instead of SYN-ACK
  /// (emulates probing a closed port, as MobiPerf's InetAddress does).
  void set_tcp_port_closed(bool closed) { tcp_port_closed_ = closed; }

  /// Server-side measurement support (ping2 [34] runs *on* the server):
  /// originates a packet through the netem-shaped egress...
  void originate(Packet&& packet) { netem_.enqueue(std::move(packet)); }
  /// ...and observes otherwise-unhandled inbound packets (echo replies).
  using ObserverFn = std::function<void(const Packet&)>;
  void set_packet_observer(ObserverFn observer) {
    observer_ = std::move(observer);
  }

  /// HTTP response body size.
  void set_http_response_size(std::uint32_t bytes) { http_size_ = bytes; }

  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_;
  }

 private:
  void respond(const Packet& request);

  sim::Simulator* sim_;
  sim::Rng rng_;
  NodeId id_;
  Link* link_ = nullptr;
  NetemQdisc netem_;
  sim::Duration service_mean_ = sim::Duration::micros(40);
  bool tcp_port_closed_ = false;
  ObserverFn observer_;
  std::uint32_t http_size_;
  /// Shared immutable HTTP body attached to every http_response.
  PayloadBuffer http_body_;
  std::uint64_t requests_served_ = 0;
};

/// UDP sink that accounts received traffic (the load server of Fig. 2 with
/// an iPerf server on it).
class UdpSink : public Node {
 public:
  UdpSink(sim::Simulator& sim, NodeId id) : sim_(&sim), id_(id) {}

  /// Returns the sink to its freshly-constructed state (shard-context
  /// reuse contract).
  void reset(NodeId id) {
    id_ = id;
    packets_ = 0;
    bytes_ = 0;
    window_start_ = sim::TimePoint{};
  }

  void receive(Packet&& packet, Link* ingress) override;
  [[nodiscard]] NodeId id() const override { return id_; }

  [[nodiscard]] std::uint64_t packets_received() const { return packets_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_; }

  /// Average goodput over the window since `since`, in Mbit/s.
  [[nodiscard]] double throughput_mbps(sim::TimePoint since) const;

  /// Resets counters and marks the start of a measurement window.
  void reset_window();
  [[nodiscard]] sim::TimePoint window_start() const { return window_start_; }

 private:
  sim::Simulator* sim_;
  NodeId id_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  sim::TimePoint window_start_;
};

}  // namespace acute::net
