#include "phone/profile.hpp"

#include <stdexcept>

namespace acute::phone {

using sim::Duration;

const char* to_string(WnicVendor vendor) {
  switch (vendor) {
    case WnicVendor::broadcom_sdio:
      return "Broadcom/SDIO (bcmdhd)";
    case WnicVendor::qualcomm_smd:
      return "Qualcomm/SMD (wcnss)";
  }
  return "?";
}

namespace {

// Shared cost shapes; per-phone profiles scale or override them.

PhoneProfile broadcom_base() {
  PhoneProfile p;
  p.vendor = WnicVendor::broadcom_sdio;
  // Table 3 (Nexus 5): wake-up costs approach ~14 ms, means ~10-13 ms.
  // (The receive wake sits between Table 3's dvrecv mean of 12.75 ms and
  // the ~18 ms kernel-phy median Fig. 3 shows for the same condition.)
  p.bus_wake_tx = {10.2, 1.0, 8.4, 13.4};
  p.bus_wake_rx = {10.3, 0.9, 8.6, 12.6};
  p.bus_clk_request = {0.50, 0.12, 0.20, 0.80};
  // Table 3 disabled/10ms rows: dvsend ~0.23 ms, dvrecv ~1.6 ms.
  p.driver_tx_base = {0.20, 0.10, 0.09, 0.82};
  p.driver_rx_base = {1.55, 0.35, 0.30, 2.60};
  p.driver_netif = {0.10, 0.03, 0.04, 0.20};
  p.kernel_tx = {0.07, 0.02, 0.03, 0.15};
  p.kernel_rx = {0.11, 0.03, 0.05, 0.22};
  p.native_send = {0.05, 0.02, 0.02, 0.12};
  p.native_recv = {0.06, 0.02, 0.02, 0.14};
  p.dvm_send = {0.35, 0.12, 0.15, 0.90};
  p.dvm_recv = {0.40, 0.15, 0.15, 1.10};
  p.dvm_gc_pause = {4.0, 2.0, 1.0, 9.0};
  return p;
}

PhoneProfile qualcomm_base() {
  PhoneProfile p = broadcom_base();
  p.vendor = WnicVendor::qualcomm_smd;
  // Table 2 (Nexus 4): internal inflation ~5-6 ms at 1 s interval, i.e. the
  // SMD wake is far cheaper than SDIO's, and its receive path (shared-memory
  // doorbell) cheaper still.
  p.bus_wake_tx = {4.6, 0.7, 3.2, 6.4};
  p.bus_wake_rx = {1.2, 0.4, 0.5, 2.4};
  p.bus_clk_request = {0.30, 0.10, 0.10, 0.60};
  p.driver_tx_base = {0.18, 0.08, 0.08, 0.60};
  p.driver_rx_base = {0.75, 0.20, 0.30, 1.40};
  p.bus_transfer_mbps = 600.0;  // shared memory, not a serial bus
  return p;
}

}  // namespace

PhoneProfile PhoneProfile::nexus5() {
  PhoneProfile p = broadcom_base();
  p.name = "Google Nexus 5";
  p.chipset = "BCM4339";
  p.android_version = "4.4.2";
  p.cpu_ghz = 2.26;
  p.cpu_cores = 4;
  p.ram_mb = 2048;
  p.cpu_scale = 1.0;
  p.psm_timeout = Duration::millis(205);  // Table 4
  p.associated_listen_interval = 10;      // bcmdhd default
  return p;
}

PhoneProfile PhoneProfile::nexus4() {
  PhoneProfile p = qualcomm_base();
  p.name = "Google Nexus 4";
  p.chipset = "WCN3660";
  p.android_version = "4.4.4";
  p.cpu_ghz = 1.5;
  p.cpu_cores = 4;
  p.ram_mb = 2048;
  p.cpu_scale = 1.3;
  // Table 4 reports "~40 ms". With the 10 ms tick quantization the doze
  // entry lands in [Tip-10, Tip]; 39.5 ms makes a 30 ms path race the doze
  // entry on ~1 probe in 6, reproducing Table 2's partial external
  // inflation (mean +11 ms with a wide CI) at that cell.
  p.psm_timeout = Duration::millis(39.5);
  p.associated_listen_interval = 1;      // wcnss default
  p.ping_integer_ms_above_100 = true;
  // adb-shell ping on this handset shows a slightly larger user-space cost
  // (Table 2: du - dk ~ 0.7 ms at the 10 ms interval).
  p.native_send = {0.10, 0.04, 0.04, 0.25};
  p.native_recv = {0.35, 0.12, 0.10, 0.80};
  return p;
}

PhoneProfile PhoneProfile::htc_one() {
  PhoneProfile p = qualcomm_base();
  p.name = "HTC One";
  p.chipset = "WCN3680";
  p.android_version = "4.2.2";
  p.cpu_ghz = 1.7;
  p.cpu_cores = 4;
  p.ram_mb = 2048;
  p.cpu_scale = 1.2;
  p.psm_timeout = Duration::millis(400);  // Table 4
  p.associated_listen_interval = 1;
  return p;
}

PhoneProfile PhoneProfile::xperia_j() {
  PhoneProfile p = broadcom_base();
  p.name = "Sony Xperia J";
  p.chipset = "BCM4330";
  p.android_version = "4.0.4";
  p.cpu_ghz = 1.0;
  p.cpu_cores = 1;
  p.ram_mb = 512;
  p.cpu_scale = 2.5;
  p.psm_timeout = Duration::millis(210);  // Table 4
  p.associated_listen_interval = 10;
  // Single slow core: the driver receive path is visibly heavier
  // (Fig. 7 shows its kernel-phy whiskers reaching ~4 ms).
  p.bus_wake_tx = {11.0, 1.2, 9.0, 14.0};
  p.driver_rx_base = {2.10, 0.50, 0.70, 3.80};
  p.driver_tx_base = {0.30, 0.14, 0.10, 1.00};
  return p;
}

PhoneProfile PhoneProfile::galaxy_grand() {
  PhoneProfile p = broadcom_base();
  p.name = "Samsung Grand";
  p.chipset = "BCM4329";
  p.android_version = "4.1.2";
  p.cpu_ghz = 1.2;
  p.cpu_cores = 2;
  p.ram_mb = 1024;
  p.cpu_scale = 1.8;
  p.psm_timeout = Duration::millis(45);  // Table 4
  p.associated_listen_interval = 10;
  p.driver_rx_base = {1.80, 0.40, 0.60, 3.20};
  p.driver_tx_base = {0.25, 0.12, 0.10, 0.90};
  return p;
}

std::vector<PhoneProfile> PhoneProfile::all() {
  return {nexus5(), xperia_j(), galaxy_grand(), nexus4(), htc_one()};
}

PhoneProfile PhoneProfile::by_name(const std::string& name) {
  for (PhoneProfile& profile : all()) {
    if (profile.name == name) return profile;
  }
  throw std::invalid_argument("unknown phone profile: " + name);
}

}  // namespace acute::phone
