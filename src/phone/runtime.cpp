#include "phone/runtime.hpp"

#include <utility>

namespace acute::phone {

using sim::Duration;

const char* to_string(ExecMode mode) {
  switch (mode) {
    case ExecMode::native_c:
      return "native C";
    case ExecMode::dalvik:
      return "Dalvik";
  }
  return "?";
}

ExecEnv::ExecEnv(sim::Rng rng, const PhoneProfile& profile)
    : rng_(std::move(rng)), profile_(&profile) {}

Duration ExecEnv::send_overhead(ExecMode mode) {
  const LatencyDist& dist = mode == ExecMode::native_c
                                ? profile_->native_send
                                : profile_->dvm_send;
  return dist.sample_scaled(rng_, profile_->cpu_scale);
}

Duration ExecEnv::recv_overhead(ExecMode mode) {
  const LatencyDist& dist = mode == ExecMode::native_c
                                ? profile_->native_recv
                                : profile_->dvm_recv;
  Duration cost = dist.sample_scaled(rng_, profile_->cpu_scale);
  if (mode == ExecMode::dalvik && rng_.bernoulli(profile_->dvm_gc_prob)) {
    cost += profile_->dvm_gc_pause.sample(rng_);
  }
  return cost;
}

}  // namespace acute::phone
