#include "phone/runtime.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::phone {

using net::Packet;
using sim::Duration;
using sim::expects;
using stack::StampPoint;

const char* to_string(ExecMode mode) {
  switch (mode) {
    case ExecMode::native_c:
      return "native C";
    case ExecMode::dalvik:
      return "Dalvik";
  }
  return "?";
}

ExecEnv::ExecEnv(sim::Rng rng, const PhoneProfile& profile)
    : rng_(std::move(rng)), profile_(&profile) {}

void ExecEnv::reset(sim::Rng rng, const PhoneProfile& profile) {
  rng_ = std::move(rng);
  profile_ = &profile;
}

Duration ExecEnv::send_overhead(ExecMode mode) {
  const LatencyDist& dist = mode == ExecMode::native_c
                                ? profile_->native_send
                                : profile_->dvm_send;
  return dist.sample_scaled(rng_, profile_->cpu_scale);
}

Duration ExecEnv::recv_overhead(ExecMode mode) {
  const LatencyDist& dist = mode == ExecMode::native_c
                                ? profile_->native_recv
                                : profile_->dvm_recv;
  Duration cost = dist.sample_scaled(rng_, profile_->cpu_scale);
  if (mode == ExecMode::dalvik && rng_.bernoulli(profile_->dvm_gc_prob)) {
    cost += profile_->dvm_gc_pause.sample(rng_);
  }
  return cost;
}

ExecEnvLayer::ExecEnvLayer(sim::Simulator& sim, sim::Rng rng,
                           const PhoneProfile& profile)
    : sim_(&sim), env_(std::move(rng), profile) {}

void ExecEnvLayer::reset(sim::Rng rng, const PhoneProfile& profile) {
  env_.reset(std::move(rng), profile);
  flows_.clear();
  flow_ids_ = net::IdAllocator<std::uint32_t>{};
  tap_ = nullptr;
}

void ExecEnvLayer::send(Packet&& packet, ExecMode mode) {
  stamp(packet, StampPoint::app_send, sim_->now());  // t_u^o
  if (tap_ != nullptr) tap_->on_app_send(packet, sim_->now());
  const Duration overhead = env_.send_overhead(mode);
  sim_->schedule_in(overhead, sim::assert_fits_inline(
                                  [this, pkt = std::move(packet)]() mutable {
                                    pass_down(std::move(pkt));
                                  }));
}

void ExecEnvLayer::deliver(Packet&& packet) {
  const FlowEntry* entry = find_flow(packet.flow_id);
  if (entry == nullptr) return;  // no app bound to this flow
  const Duration overhead = env_.recv_overhead(entry->mode);
  const std::uint32_t flow_id = packet.flow_id;
  sim_->schedule_in(overhead, sim::assert_fits_inline([this, flow_id,
                               pkt = std::move(packet)]() mutable {
    stamp(pkt, StampPoint::app_recv, sim_->now());  // t_u^i
    // Re-look-up: the app may have unregistered while the packet climbed.
    FlowEntry* handler_entry = find_flow(flow_id);
    if (handler_entry == nullptr) return;
    if (tap_ != nullptr) tap_->on_app_deliver(pkt, sim_->now());
    handler_entry->handler(std::move(pkt));
  }));
}

void ExecEnvLayer::register_flow(std::uint32_t flow_id, AppRxFn handler,
                                 ExecMode mode) {
  expects(static_cast<bool>(handler),
          "ExecEnvLayer::register_flow requires a handler");
  FlowEntry* entry = find_flow(flow_id);
  if (entry == nullptr) {
    flows_.emplace_back();
    entry = &flows_.back();
    entry->flow_id = flow_id;
  }
  entry->handler = std::move(handler);
  entry->mode = mode;
}

void ExecEnvLayer::unregister_flow(std::uint32_t flow_id) {
  for (auto it = flows_.begin(); it != flows_.end(); ++it) {
    if (it->flow_id == flow_id) {
      flows_.erase(it);
      return;
    }
  }
}

ExecEnvLayer::FlowEntry* ExecEnvLayer::find_flow(std::uint32_t flow_id) {
  for (FlowEntry& entry : flows_) {
    if (entry.flow_id == flow_id) return &entry;
  }
  return nullptr;
}

std::uint32_t ExecEnvLayer::allocate_flow_id() {
  std::uint32_t id = flow_ids_.next();
  while (find_flow(id) != nullptr) id = flow_ids_.next();
  return id;
}

}  // namespace acute::phone
