#include "phone/kernel.hpp"

#include <utility>

namespace acute::phone {

using net::Packet;
using sim::Duration;
using stack::StampPoint;

KernelStack::KernelStack(sim::Simulator& sim, sim::Rng rng,
                         const PhoneProfile& profile)
    : sim_(&sim), rng_(std::move(rng)), profile_(&profile) {}

void KernelStack::transmit(Packet&& packet) {
  // IP/transport processing down to the device queue.
  const Duration cost =
      profile_->kernel_tx.sample_scaled(rng_, profile_->cpu_scale);
  sim_->schedule_in(
      cost, sim::assert_fits_inline([this, pkt = std::move(packet)]() mutable {
        // bpf tap right at dev_queue_xmit: t_k^o.
        stamp(pkt, StampPoint::kernel_send, sim_->now());
        ++tx_packets_;
        pass_down(std::move(pkt));
      }));
}

void KernelStack::deliver(Packet&& packet) {
  // bpf tap at netif_rx: t_k^i.
  stamp(packet, StampPoint::kernel_recv, sim_->now());
  ++rx_packets_;

  // Inbound ICMP echo: the kernel answers it itself (this is what lets a
  // *server-side* prober like ping2 [34] measure toward the phone).
  if (packet.type == net::PacketType::icmp_echo_request) {
    ++icmp_echoes_served_;
    Packet reply = Packet::make_response(
        packet, net::PacketType::icmp_echo_reply, packet.size_bytes);
    const Duration icmp_cost =
        profile_->kernel_rx.sample_scaled(rng_, profile_->cpu_scale);
    sim_->schedule_in(icmp_cost, sim::assert_fits_inline(
                                     [this, rep = std::move(reply)]() mutable {
                                       transmit(std::move(rep));
                                     }));
    return;
  }

  // Protocol processing + socket demultiplexing up to the app.
  const Duration cost =
      profile_->kernel_rx.sample_scaled(rng_, profile_->cpu_scale);
  sim_->schedule_in(cost, sim::assert_fits_inline(
                              [this, pkt = std::move(packet)]() mutable {
                                pass_up(std::move(pkt));
                              }));
}

}  // namespace acute::phone
