#include "phone/kernel.hpp"

#include <utility>

namespace acute::phone {

using net::Packet;
using sim::Duration;

KernelStack::KernelStack(sim::Simulator& sim, sim::Rng rng,
                         const PhoneProfile& profile, WnicDriver& driver)
    : sim_(&sim), rng_(std::move(rng)), profile_(&profile), driver_(&driver) {
  driver_->set_rx_handler(
      [this](Packet pkt) { on_driver_receive(std::move(pkt)); });
}

void KernelStack::transmit(Packet packet) {
  // IP/transport processing down to the device queue.
  const Duration cost =
      profile_->kernel_tx.sample_scaled(rng_, profile_->cpu_scale);
  sim_->schedule_in(cost, [this, pkt = std::move(packet)]() mutable {
    // bpf tap right at dev_queue_xmit: t_k^o.
    pkt.stamps.kernel_send = sim_->now();
    ++tx_packets_;
    driver_->start_xmit(std::move(pkt));
  });
}

void KernelStack::on_driver_receive(Packet packet) {
  // bpf tap at netif_rx: t_k^i.
  packet.stamps.kernel_recv = sim_->now();
  ++rx_packets_;

  // Inbound ICMP echo: the kernel answers it itself (this is what lets a
  // *server-side* prober like ping2 [34] measure toward the phone).
  if (packet.type == net::PacketType::icmp_echo_request) {
    ++icmp_echoes_served_;
    Packet reply = Packet::make_response(
        packet, net::PacketType::icmp_echo_reply, packet.size_bytes);
    const Duration icmp_cost =
        profile_->kernel_rx.sample_scaled(rng_, profile_->cpu_scale);
    sim_->schedule_in(icmp_cost, [this, rep = std::move(reply)]() mutable {
      transmit(std::move(rep));
    });
    return;
  }

  // Protocol processing + socket demultiplexing up to the app.
  const Duration cost =
      profile_->kernel_rx.sample_scaled(rng_, profile_->cpu_scale);
  sim_->schedule_in(cost, [this, pkt = std::move(packet)]() mutable {
    if (on_receive_) on_receive_(std::move(pkt));
  });
}

}  // namespace acute::phone
