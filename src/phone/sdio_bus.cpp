#include "phone/sdio_bus.hpp"

#include <algorithm>
#include <utility>

namespace acute::phone {

using sim::Duration;
using sim::TimePoint;

SdioBus::SdioBus(sim::Simulator& sim, sim::Rng rng,
                 const PhoneProfile& profile)
    : sim_(&sim),
      rng_(std::move(rng)),
      wake_tx_(profile.bus_wake_tx),
      wake_rx_(profile.bus_wake_rx),
      clk_request_(profile.bus_clk_request),
      clk_idle_threshold_(profile.bus_clk_idle_threshold),
      transfer_mbps_(profile.bus_transfer_mbps),
      idletime_ticks_(profile.bus_idletime_ticks),
      watchdog_(sim, profile.bus_watchdog,
                [this](std::uint64_t) { on_watchdog_tick(); }) {
  last_activity_ = sim_->now();
  // Random watchdog phase relative to traffic, as on a real phone.
  watchdog_.start(rng_.uniform_duration(Duration{}, profile.bus_watchdog));
}

void SdioBus::reset(sim::Rng rng, const PhoneProfile& profile) {
  rng_ = std::move(rng);
  wake_tx_ = profile.bus_wake_tx;
  wake_rx_ = profile.bus_wake_rx;
  clk_request_ = profile.bus_clk_request;
  clk_idle_threshold_ = profile.bus_clk_idle_threshold;
  transfer_mbps_ = profile.bus_transfer_mbps;
  idletime_ticks_ = profile.bus_idletime_ticks;
  sleep_enabled_ = true;
  state_ = State::awake;
  idle_ticks_ = 0;
  wake_complete_at_ = TimePoint{};
  watchdog_.reset(profile.bus_watchdog);
  sleep_count_ = 0;
  wake_count_ = 0;
  last_activity_ = sim_->now();
  watchdog_.start(rng_.uniform_duration(Duration{}, profile.bus_watchdog));
}

void SdioBus::on_watchdog_tick() {
  if (!sleep_enabled_ || state_ == State::sleeping) return;
  if (sim_->now() < wake_complete_at_) return;  // still waking up
  if (sim_->now() - last_activity_ < watchdog_.period()) {
    idle_ticks_ = 0;
    return;
  }
  if (++idle_ticks_ >= idletime_ticks_) {
    state_ = State::sleeping;
    idle_ticks_ = 0;
    ++sleep_count_;
  }
}

void SdioBus::transmit(net::Packet&& packet) {
  const Duration transfer = transfer_time(packet.size_bytes);
  sim_->schedule_in(transfer, sim::assert_fits_inline(
                                  [this, pkt = std::move(packet)]() mutable {
                                    activity();
                                    pass_down(std::move(pkt));
                                  }));
}

void SdioBus::deliver(net::Packet&& packet) { pass_up(std::move(packet)); }

Duration SdioBus::acquire(Direction direction) {
  const TimePoint now = sim_->now();
  if (state_ == State::sleeping) {
    const LatencyDist& dist =
        direction == Direction::transmit ? wake_tx_ : wake_rx_;
    const Duration wake = dist.sample(rng_);
    state_ = State::awake;
    ++wake_count_;
    wake_complete_at_ = now + wake;
    last_activity_ = wake_complete_at_;
    return wake;
  }
  if (now < wake_complete_at_) {
    // A concurrent request already started the wake-up; join it.
    return wake_complete_at_ - now;
  }
  if (now - last_activity_ >= clk_idle_threshold_) {
    // Awake but the backplane clock was dropped; request HT clock.
    return clk_request_.sample(rng_);
  }
  return Duration{};
}

void SdioBus::activity() {
  last_activity_ = sim_->now();
  idle_ticks_ = 0;
}

Duration SdioBus::transfer_time(std::uint32_t bytes) const {
  return Duration::micros(double(bytes) * 8.0 / transfer_mbps_);
}

void SdioBus::set_sleep_enabled(bool enabled) {
  sleep_enabled_ = enabled;
  if (!enabled && state_ == State::sleeping) {
    state_ = State::awake;
    idle_ticks_ = 0;
  }
}

}  // namespace acute::phone
