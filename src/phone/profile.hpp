// Per-handset parameter sets (Table 1 of the paper) plus the latency
// distributions that drive every phone-internal delay source. The magnitudes
// are seeded from the paper's measurements: Table 3 for the Broadcom SDIO
// wake costs, Table 2 for the Qualcomm SMD ones, Table 4 for the PSM
// timeouts and listen intervals, and Fig. 7 for the per-CPU driver costs.
#pragma once

#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace acute::phone {

/// A truncated-normal latency distribution, parameterised in milliseconds.
struct LatencyDist {
  double mu_ms = 0;
  double sigma_ms = 0;
  double lo_ms = 0;
  double hi_ms = 0;

  [[nodiscard]] sim::Duration sample(sim::Rng& rng) const {
    return rng.truncated_normal_ms(mu_ms, sigma_ms, lo_ms, hi_ms);
  }
  /// Sample with all parameters multiplied by `scale` (CPU speed factor).
  [[nodiscard]] sim::Duration sample_scaled(sim::Rng& rng,
                                            double scale) const {
    return rng.truncated_normal_ms(mu_ms * scale, sigma_ms * scale,
                                   lo_ms * scale, hi_ms * scale);
  }
  [[nodiscard]] sim::Duration mean() const {
    return sim::Duration::millis(mu_ms);
  }
};

/// WNIC host-interface flavour: Broadcom chipsets hang off the SDIO bus
/// ("bcmdhd" driver); Qualcomm chipsets use the SMD shared-memory interface
/// ("wcnss" driver). The paper shows both run the same idle-count sleep
/// machine, with very different wake costs (§3.2.1).
enum class WnicVendor { broadcom_sdio, qualcomm_smd };

[[nodiscard]] const char* to_string(WnicVendor vendor);

struct PhoneProfile {
  // Identity (Table 1).
  std::string name;
  std::string chipset;
  std::string android_version;
  WnicVendor vendor = WnicVendor::broadcom_sdio;
  double cpu_ghz = 2.26;
  int cpu_cores = 4;
  int ram_mb = 2048;
  /// Multiplier applied to CPU-bound latencies (kernel, runtime, netif),
  /// relative to the Nexus 5.
  double cpu_scale = 1.0;

  // Host-interface (SDIO/SMD) bus sleep machine (§3.2.1).
  sim::Duration bus_watchdog = sim::Duration::millis(10);  // dhd_watchdog_ms
  int bus_idletime_ticks = 5;                              // idletime
  LatencyDist bus_wake_tx;      // promotion delay, send path
  LatencyDist bus_wake_rx;      // wake on receive interrupt
  LatencyDist bus_clk_request;  // backplane clock ramp when awake but idle
  sim::Duration bus_clk_idle_threshold = sim::Duration::millis(50);
  double bus_transfer_mbps = 400.0;

  /// Unrelated system traffic (sync services, keep-alives): Poisson sends
  /// with this mean interval. It occasionally leaves the bus awake when a
  /// probe arrives after a long idle gap — the source of the small minima
  /// in Table 3's "enabled / 1000 ms" rows. Zero disables it.
  sim::Duration system_traffic_mean_interval = sim::Duration::millis(2500);
  std::uint32_t system_traffic_bytes = 120;

  // Driver stage costs (bus awake).
  LatencyDist driver_tx_base;  // dhd_start_xmit -> dhdsdio_txpkt
  LatencyDist driver_rx_base;  // dhdsdio_isr -> dhd_rxf_enqueue
  LatencyDist driver_netif;    // rxf thread -> netif_rx_ni -> bpf tap
  sim::Duration irq_latency = sim::Duration::micros(40);

  // Kernel stack costs.
  LatencyDist kernel_tx;
  LatencyDist kernel_rx;

  // Execution environments (§2.1: native C vs Dalvik).
  LatencyDist native_send;
  LatencyDist native_recv;
  LatencyDist dvm_send;
  LatencyDist dvm_recv;
  double dvm_gc_prob = 0.02;
  LatencyDist dvm_gc_pause;

  // Adaptive PSM (Table 4).
  sim::Duration psm_timeout = sim::Duration::millis(200);  // Tip
  /// Firmware idle-count tick: doze entry quantizes to
  /// [psm_timeout - psm_tick, psm_timeout].
  sim::Duration psm_tick = sim::Duration::millis(10);
  int associated_listen_interval = 10;
  double beacon_miss_probability = 0.15;

  // Tool quirks.
  /// The stock ping binary reports whole milliseconds once the RTT exceeds
  /// 100 ms (observed on the Nexus 4; explains the negative user-kernel
  /// overheads in Fig. 3).
  bool ping_integer_ms_above_100 = false;
  /// ping output resolution below 100 ms.
  double ping_resolution_ms = 0.1;

  // The five handsets of Table 1.
  [[nodiscard]] static PhoneProfile nexus5();
  [[nodiscard]] static PhoneProfile nexus4();
  [[nodiscard]] static PhoneProfile htc_one();
  [[nodiscard]] static PhoneProfile xperia_j();
  [[nodiscard]] static PhoneProfile galaxy_grand();
  [[nodiscard]] static std::vector<PhoneProfile> all();
  [[nodiscard]] static PhoneProfile by_name(const std::string& name);

  /// Idle time after which the bus sleeps: watchdog * idletime (50 ms
  /// by default, confirmed for the Nexus 5 in §3.2.1).
  [[nodiscard]] sim::Duration bus_sleep_idle() const {
    return bus_watchdog * bus_idletime_ticks;
  }
};

}  // namespace acute::phone
