// The SDIO / SMD host-interface bus sleep machine (§3.2.1).
//
// Faithful to the bcmdhd driver's logic: a watchdog fires every
// dhd_watchdog_ms (10 ms); each tick without bus activity increments
// `idlecount`; when it reaches `idletime` (5) the bus is put to sleep, so the
// default idle period is 50 ms. Waking the bus costs up to ~14 ms — the
// paper's headline internal delay-inflation source. Qualcomm's wcnss driver
// runs the same machine over SMD with cheaper wake costs.
//
// set_sleep_enabled(false) reproduces the paper's rooted-phone ablation
// (modified dhdsdio_bussleep), used by Table 3 and Fig. 9.
#pragma once

#include <cstdint>

#include "phone/profile.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "stack/stack_layer.hpp"

namespace acute::phone {

/// As a StackLayer the bus sits between the WNIC driver and the station: the
/// downward path models the frame write over the bus (transfer time, then an
/// activity mark that resets the idle counter). On the upward path the bus is
/// transparent — in bcmdhd the RX bus read happens inside the driver's dpc
/// thread between dhdsdio_isr and dhd_rxf_enqueue, so the driver accounts for
/// it via acquire() + transfer_time() and the ascent passes straight through.
class SdioBus : public stack::StackLayer {
 public:
  enum class State { awake, sleeping };
  enum class Direction { transmit, receive };

  SdioBus(sim::Simulator& sim, sim::Rng rng, const PhoneProfile& profile);

  /// Returns the bus to the state the constructor would leave it in with
  /// these arguments, including the randomized watchdog phase draw and
  /// restart (shard-context reuse contract).
  void reset(sim::Rng rng, const PhoneProfile& profile);

  // StackLayer.
  [[nodiscard]] const char* layer_name() const override { return "sdio-bus"; }
  /// Downward: the driver hands a frame over at dhdsdio_txpkt time; the bus
  /// spends the transfer time, marks activity, and passes to the station.
  void transmit(net::Packet&& packet) override;
  /// Upward: transparent (see class comment).
  void deliver(net::Packet&& packet) override;

  /// Acquires the bus for a transfer. Returns the latency before the bus is
  /// usable: ~0 when awake and recently active, the backplane-clock ramp
  /// when awake but idle, or the full wake-up (promotion) delay when
  /// sleeping. The caller performs its transfer after this delay and then
  /// reports completion via activity().
  [[nodiscard]] sim::Duration acquire(Direction direction);

  /// Marks bus activity now (resets the idle counter).
  void activity();

  /// Bus transfer time for a payload of `bytes`.
  [[nodiscard]] sim::Duration transfer_time(std::uint32_t bytes) const;

  /// The rooted-driver ablation: disables (or re-enables) bus sleep.
  void set_sleep_enabled(bool enabled);
  [[nodiscard]] bool sleep_enabled() const { return sleep_enabled_; }

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] int idle_ticks() const { return idle_ticks_; }
  [[nodiscard]] std::uint64_t sleep_count() const { return sleep_count_; }
  [[nodiscard]] std::uint64_t wake_count() const { return wake_count_; }

 private:
  void on_watchdog_tick();

  sim::Simulator* sim_;
  sim::Rng rng_;
  LatencyDist wake_tx_;
  LatencyDist wake_rx_;
  LatencyDist clk_request_;
  sim::Duration clk_idle_threshold_;
  double transfer_mbps_;
  int idletime_ticks_;
  bool sleep_enabled_ = true;
  State state_ = State::awake;
  int idle_ticks_ = 0;
  sim::TimePoint last_activity_;
  sim::TimePoint wake_complete_at_;
  sim::PeriodicTimer watchdog_;
  std::uint64_t sleep_count_ = 0;
  std::uint64_t wake_count_ = 0;
};

}  // namespace acute::phone
