// The composed handset: a PhoneProfile plus a StackPipeline.
//
// A WiFi phone runs the five stack layers the paper dissects —
//
//   exec-env -> kernel -> driver -> sdio-bus -> station
//
// — while a cellular phone bottoms out in the RRC-gated radio instead
// (§4.1's cellular extension):
//
//   exec-env -> kernel -> rrc-radio
//
// Measurement apps talk to the socket-like flow API either way; everything
// below reproduces the latency structure the paper decomposes into
// du/dk/dv/dn (WiFi) or the RRC promotion/state latencies (cellular).
// The Smartphone itself no longer wires layer-to-layer callbacks: the
// pipeline owns the descent/ascent plumbing, and the phone only contributes
// identity (node id), the background system chatter, and subsystem access
// for ablations.
#pragma once

#include <cstdint>
#include <memory>

#include "cellular/rrc.hpp"
#include "cellular/rrc_radio.hpp"
#include "net/packet.hpp"
#include "phone/driver.hpp"
#include "phone/kernel.hpp"
#include "phone/profile.hpp"
#include "phone/runtime.hpp"
#include "phone/sdio_bus.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stack/stack_pipeline.hpp"
#include "wifi/channel.hpp"
#include "wifi/station.hpp"

namespace acute::phone {

/// Which radio a phone's pipeline bottoms out in.
enum class RadioKind { wifi, cellular };

[[nodiscard]] const char* to_string(RadioKind kind);

class Smartphone {
 public:
  /// Builds a WiFi phone with the given profile, attached to `channel` and
  /// associated with the AP at `ap_id`.
  Smartphone(sim::Simulator& sim, wifi::Channel& channel, sim::Rng rng,
             PhoneProfile profile, net::NodeId id, net::NodeId ap_id);

  /// Builds a cellular phone: exec-env -> kernel -> rrc-radio. The radio's
  /// egress must be wired to the serving gateway (testbed::CellularGateway
  /// does this on attach); `gateway_id` is where system chatter is aimed.
  Smartphone(sim::Simulator& sim, sim::Rng rng, PhoneProfile profile,
             net::NodeId id, net::NodeId gateway_id,
             const cellular::RrcConfig& rrc_config);

  Smartphone(const Smartphone&) = delete;
  Smartphone& operator=(const Smartphone&) = delete;

  /// Returns a WiFi phone to the state the WiFi constructor would leave it
  /// in with these arguments. The phone stays attached to the channel it
  /// was built on; every subsystem resets in construction order so the
  /// event schedule matches a fresh build bit-for-bit (shard-context reuse
  /// contract). Contract violation on a cellular phone.
  void reset(sim::Rng rng, PhoneProfile profile, net::NodeId id,
             net::NodeId ap_id);

  /// Cellular counterpart: returns the phone to the state the cellular
  /// constructor would leave it in. The radio egress is cleared — the
  /// gateway re-wires it on attach. Contract violation on a WiFi phone.
  void reset(sim::Rng rng, PhoneProfile profile, net::NodeId id,
             net::NodeId gateway_id, const cellular::RrcConfig& rrc_config);

  [[nodiscard]] net::NodeId id() const { return id_; }
  [[nodiscard]] const PhoneProfile& profile() const { return profile_; }
  [[nodiscard]] RadioKind radio_kind() const { return radio_kind_; }

  /// App-level receive callback, demultiplexed by the packet's flow id.
  /// `mode` determines the runtime whose receive overhead the app pays.
  using AppRxFn = ExecEnvLayer::AppRxFn;
  void register_flow(std::uint32_t flow_id, AppRxFn handler,
                     ExecMode mode = ExecMode::native_c) {
    exec_.register_flow(flow_id, std::move(handler), mode);
  }
  void unregister_flow(std::uint32_t flow_id) { exec_.unregister_flow(flow_id); }

  /// Allocates a flow id no other app on this phone uses (wrap-safe).
  [[nodiscard]] std::uint32_t allocate_flow_id() {
    return exec_.allocate_flow_id();
  }

  /// Sends a packet from an app. Stamps app_send (t_u^o) now; the packet
  /// then descends the pipeline.
  void send(net::Packet&& packet, ExecMode mode);

  // Subsystem access (ablations, instrumentation, tests).
  [[nodiscard]] stack::StackPipeline& pipeline() { return pipeline_; }
  [[nodiscard]] ExecEnvLayer& exec_env() { return exec_; }
  [[nodiscard]] KernelStack& kernel() { return kernel_; }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  // WiFi-stack subsystems (contract violation on a cellular phone).
  [[nodiscard]] wifi::Station& station();
  [[nodiscard]] SdioBus& bus();
  [[nodiscard]] WnicDriver& driver();
  // Cellular-stack subsystems (contract violation on a WiFi phone).
  [[nodiscard]] cellular::RrcMachine& rrc();
  [[nodiscard]] cellular::RrcRadioLayer& cellular_radio();

  /// Packets emitted by the phone's own system services so far.
  [[nodiscard]] std::uint64_t system_packets_sent() const {
    return system_packets_;
  }
  /// Disables/enables the system background chatter (airplane-lab mode).
  void set_system_traffic_enabled(bool enabled) {
    system_traffic_enabled_ = enabled;
  }

 private:
  void schedule_system_traffic();

  sim::Simulator* sim_;
  PhoneProfile profile_;
  net::NodeId id_;
  RadioKind radio_kind_;
  sim::Rng rng_;
  // WiFi bottom (null on cellular phones).
  std::unique_ptr<wifi::Station> station_;
  std::unique_ptr<SdioBus> bus_;
  std::unique_ptr<WnicDriver> driver_;
  // Cellular bottom (null on WiFi phones).
  std::unique_ptr<cellular::RrcMachine> rrc_;
  std::unique_ptr<cellular::RrcRadioLayer> rrc_radio_;
  KernelStack kernel_;
  ExecEnvLayer exec_;
  stack::StackPipeline pipeline_;
  net::NodeId ap_id_ = 0;
  bool system_traffic_enabled_ = true;
  std::uint64_t system_packets_ = 0;
};

}  // namespace acute::phone
