// The composed handset: execution environment over kernel over WNIC driver
// over SDIO/SMD bus over 802.11 station. Measurement apps talk to the
// socket-like flow API; everything below reproduces the latency structure
// the paper dissects.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/packet.hpp"
#include "phone/driver.hpp"
#include "phone/kernel.hpp"
#include "phone/profile.hpp"
#include "phone/runtime.hpp"
#include "phone/sdio_bus.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "wifi/channel.hpp"
#include "wifi/station.hpp"

namespace acute::phone {

class Smartphone {
 public:
  /// Builds a phone with the given profile, attached to `channel` and
  /// associated with the AP at `ap_id`.
  Smartphone(sim::Simulator& sim, wifi::Channel& channel, sim::Rng rng,
             PhoneProfile profile, net::NodeId id, net::NodeId ap_id);

  Smartphone(const Smartphone&) = delete;
  Smartphone& operator=(const Smartphone&) = delete;

  [[nodiscard]] net::NodeId id() const { return id_; }
  [[nodiscard]] const PhoneProfile& profile() const { return profile_; }

  /// App-level receive callback, demultiplexed by the packet's flow id.
  /// `mode` determines the runtime whose receive overhead the app pays.
  using AppRxFn = std::function<void(const net::Packet&)>;
  void register_flow(std::uint32_t flow_id, AppRxFn handler,
                     ExecMode mode = ExecMode::native_c);
  void unregister_flow(std::uint32_t flow_id);

  /// Allocates a flow id no other app on this phone uses.
  [[nodiscard]] std::uint32_t allocate_flow_id() { return next_flow_id_++; }

  /// Sends a packet from an app. Stamps app_send (t_u^o) now; the packet
  /// then descends runtime -> kernel -> driver -> bus -> station.
  void send(net::Packet packet, ExecMode mode);

  // Subsystem access (ablations, instrumentation, tests).
  [[nodiscard]] wifi::Station& station() { return station_; }
  [[nodiscard]] SdioBus& bus() { return bus_; }
  [[nodiscard]] WnicDriver& driver() { return driver_; }
  [[nodiscard]] KernelStack& kernel() { return kernel_; }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

  /// Packets emitted by the phone's own system services so far.
  [[nodiscard]] std::uint64_t system_packets_sent() const {
    return system_packets_;
  }
  /// Disables/enables the system background chatter (airplane-lab mode).
  void set_system_traffic_enabled(bool enabled) {
    system_traffic_enabled_ = enabled;
  }

 private:
  void on_kernel_receive(net::Packet packet);
  void schedule_system_traffic();

  sim::Simulator* sim_;
  PhoneProfile profile_;
  net::NodeId id_;
  sim::Rng rng_;
  wifi::Station station_;
  SdioBus bus_;
  WnicDriver driver_;
  KernelStack kernel_;
  ExecEnv env_;
  struct FlowEntry {
    AppRxFn handler;
    ExecMode mode = ExecMode::native_c;
  };
  std::unordered_map<std::uint32_t, FlowEntry> flows_;
  std::uint32_t next_flow_id_ = 1;
  net::NodeId ap_id_ = 0;
  bool system_traffic_enabled_ = true;
  std::uint64_t system_packets_ = 0;
};

}  // namespace acute::phone
