// Kernel network stack model: syscall-to-driver on the way down and
// netif_rx-to-socket on the way up, with a bpf/tcpdump tap at the driver
// boundary — the t_k vantage point of Fig. 1 ("the kernel timestamps can be
// recorded with bpf and libpcap").
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "phone/driver.hpp"
#include "phone/profile.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace acute::phone {

class KernelStack {
 public:
  KernelStack(sim::Simulator& sim, sim::Rng rng, const PhoneProfile& profile,
              WnicDriver& driver);

  KernelStack(const KernelStack&) = delete;
  KernelStack& operator=(const KernelStack&) = delete;

  /// Downward: a packet entering the kernel from a socket write. The bpf
  /// tap (kernel_send) is stamped just before the driver hand-off.
  void transmit(net::Packet packet);

  /// Upward delivery to the socket layer.
  using RxFn = std::function<void(net::Packet)>;
  void set_rx_handler(RxFn on_receive) { on_receive_ = std::move(on_receive); }

  [[nodiscard]] std::uint64_t tx_packets() const { return tx_packets_; }
  [[nodiscard]] std::uint64_t rx_packets() const { return rx_packets_; }
  /// ICMP echo requests answered by the kernel (never reach user space).
  [[nodiscard]] std::uint64_t icmp_echoes_served() const {
    return icmp_echoes_served_;
  }

 private:
  void on_driver_receive(net::Packet packet);

  sim::Simulator* sim_;
  sim::Rng rng_;
  const PhoneProfile* profile_;
  WnicDriver* driver_;
  RxFn on_receive_;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t icmp_echoes_served_ = 0;
};

}  // namespace acute::phone
