// Kernel network stack model: syscall-to-driver on the way down and
// netif_rx-to-socket on the way up, with a bpf/tcpdump tap at the driver
// boundary — the t_k vantage point of Fig. 1 ("the kernel timestamps can be
// recorded with bpf and libpcap").
#pragma once

#include <cstdint>
#include <utility>

#include "net/packet.hpp"
#include "phone/profile.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stack/stack_layer.hpp"

namespace acute::phone {

class KernelStack : public stack::StackLayer {
 public:
  KernelStack(sim::Simulator& sim, sim::Rng rng, const PhoneProfile& profile);

  /// Returns the layer to the state the constructor would leave it in with
  /// these arguments (shard-context reuse contract).
  void reset(sim::Rng rng, const PhoneProfile& profile) {
    rng_ = std::move(rng);
    profile_ = &profile;
    tx_packets_ = 0;
    rx_packets_ = 0;
    icmp_echoes_served_ = 0;
  }

  // StackLayer.
  [[nodiscard]] const char* layer_name() const override { return "kernel"; }
  /// Downward: a packet entering the kernel from a socket write. The bpf
  /// tap (kernel_send) is stamped just before the driver hand-off.
  void transmit(net::Packet&& packet) override;
  /// Upward: a packet climbing from the driver (netif_rx). ICMP echo
  /// requests are answered in place; everything else ascends to the socket
  /// layer after protocol processing.
  void deliver(net::Packet&& packet) override;

  [[nodiscard]] std::uint64_t tx_packets() const { return tx_packets_; }
  [[nodiscard]] std::uint64_t rx_packets() const { return rx_packets_; }
  /// ICMP echo requests answered by the kernel (never reach user space).
  [[nodiscard]] std::uint64_t icmp_echoes_served() const {
    return icmp_echoes_served_;
  }

 private:
  sim::Simulator* sim_;
  sim::Rng rng_;
  const PhoneProfile* profile_;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t icmp_echoes_served_ = 0;
};

}  // namespace acute::phone
