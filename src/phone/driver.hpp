// WNIC driver model, mirroring the bcmdhd stages the paper instruments
// (Figures 4 and 5):
//
//   TX: dhd_start_xmit -> dhd_sched_dpc -> [dpc thread] dhdsdio_bussleep /
//       dhdsdio_clkctl -> dhdsdio_txpkt -> bus write -> radio
//   RX: dhdsdio_isr -> [dpc] bussleep/clkctl -> dhdsdio_readframes ->
//       dhd_rxf_enqueue -> [rxf thread] netif_rx_ni -> kernel
//
// dvsend spans start_xmit -> txpkt; dvrecv spans isr -> rxf_enqueue — both
// therefore capture the SDIO wake latency, exactly as the paper's modified
// driver measures them (Table 3). The driver keeps a log of both, playing
// the role of that kernel instrumentation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "phone/profile.hpp"
#include "phone/sdio_bus.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "wifi/station.hpp"

namespace acute::phone {

class WnicDriver {
 public:
  WnicDriver(sim::Simulator& sim, sim::Rng rng, const PhoneProfile& profile,
             SdioBus& bus, wifi::Station& station);

  WnicDriver(const WnicDriver&) = delete;
  WnicDriver& operator=(const WnicDriver&) = delete;

  /// Downward path: the kernel hands a packet to dhd_start_xmit.
  void start_xmit(net::Packet packet);

  /// Upward delivery into the kernel (after netif_rx_ni).
  using RxFn = std::function<void(net::Packet)>;
  void set_rx_handler(RxFn on_receive) { on_receive_ = std::move(on_receive); }

  /// The "modified driver" logs of §3.2.1.
  [[nodiscard]] const std::vector<double>& dvsend_log_ms() const {
    return dvsend_ms_;
  }
  [[nodiscard]] const std::vector<double>& dvrecv_log_ms() const {
    return dvrecv_ms_;
  }
  void clear_logs();

  [[nodiscard]] std::uint64_t tx_packets() const { return tx_packets_; }
  [[nodiscard]] std::uint64_t rx_packets() const { return rx_packets_; }

 private:
  void on_station_receive(net::Packet packet, const wifi::Frame& frame);

  sim::Simulator* sim_;
  sim::Rng rng_;
  const PhoneProfile* profile_;
  SdioBus* bus_;
  wifi::Station* station_;
  RxFn on_receive_;
  std::vector<double> dvsend_ms_;
  std::vector<double> dvrecv_ms_;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
};

}  // namespace acute::phone
