// WNIC driver model, mirroring the bcmdhd stages the paper instruments
// (Figures 4 and 5):
//
//   TX: dhd_start_xmit -> dhd_sched_dpc -> [dpc thread] dhdsdio_bussleep /
//       dhdsdio_clkctl -> dhdsdio_txpkt -> bus write -> radio
//   RX: dhdsdio_isr -> [dpc] bussleep/clkctl -> dhdsdio_readframes ->
//       dhd_rxf_enqueue -> [rxf thread] netif_rx_ni -> kernel
//
// dvsend spans start_xmit -> txpkt; dvrecv spans isr -> rxf_enqueue — both
// therefore capture the SDIO wake latency, exactly as the paper's modified
// driver measures them (Table 3). The driver keeps a log of both, playing
// the role of that kernel instrumentation.
//
// As a StackLayer the driver sits between the kernel and the SDIO/SMD bus.
// It still calls the bus's arbitration services (acquire / transfer_time)
// directly — that is the dhdsdio_bussleep/clkctl reality — while the packet
// itself flows through the pipeline: downward the frame is passed to the bus
// layer at dhdsdio_txpkt time; upward the bus forwards received frames into
// deliver(), which models the isr -> rxf -> netif_rx_ni climb.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "phone/profile.hpp"
#include "phone/sdio_bus.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stack/stack_layer.hpp"

namespace acute::phone {

class WnicDriver : public stack::StackLayer {
 public:
  WnicDriver(sim::Simulator& sim, sim::Rng rng, const PhoneProfile& profile,
             SdioBus& bus);

  /// Returns the driver to the state the constructor would leave it in with
  /// these arguments; log storage stays warm (shard-context reuse contract).
  void reset(sim::Rng rng, const PhoneProfile& profile, SdioBus& bus) {
    rng_ = std::move(rng);
    profile_ = &profile;
    bus_ = &bus;
    dvsend_ms_.clear();
    dvrecv_ms_.clear();
    tx_packets_ = 0;
    rx_packets_ = 0;
  }

  // StackLayer.
  [[nodiscard]] const char* layer_name() const override { return "driver"; }
  /// Downward path: the kernel hands a packet to dhd_start_xmit.
  void transmit(net::Packet&& packet) override;
  /// Upward path: a frame arrives from the bus (chip interrupt).
  void deliver(net::Packet&& packet) override;

  /// The "modified driver" logs of §3.2.1.
  [[nodiscard]] const std::vector<double>& dvsend_log_ms() const {
    return dvsend_ms_;
  }
  [[nodiscard]] const std::vector<double>& dvrecv_log_ms() const {
    return dvrecv_ms_;
  }
  void clear_logs();

  [[nodiscard]] std::uint64_t tx_packets() const { return tx_packets_; }
  [[nodiscard]] std::uint64_t rx_packets() const { return rx_packets_; }
  [[nodiscard]] SdioBus& bus() { return *bus_; }

 private:
  sim::Simulator* sim_;
  sim::Rng rng_;
  const PhoneProfile* profile_;
  SdioBus* bus_;
  std::vector<double> dvsend_ms_;
  std::vector<double> dvrecv_ms_;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
};

}  // namespace acute::phone
