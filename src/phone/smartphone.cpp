#include "phone/smartphone.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::phone {

using net::Packet;
using sim::Duration;
using sim::expects;

namespace {
wifi::Station::Config station_config(const PhoneProfile& profile,
                                     net::NodeId id, net::NodeId ap_id) {
  wifi::Station::Config config;
  config.id = id;
  config.ap = ap_id;
  config.psm_timeout = profile.psm_timeout;
  config.psm_tick = profile.psm_tick;
  config.associated_listen_interval = profile.associated_listen_interval;
  config.actual_listen_interval = 0;  // Table 4: every handset uses 0
  config.beacon_miss_probability = profile.beacon_miss_probability;
  return config;
}
}  // namespace

const char* to_string(RadioKind kind) {
  switch (kind) {
    case RadioKind::wifi:
      return "wifi";
    case RadioKind::cellular:
      return "cellular";
  }
  return "?";
}

Smartphone::Smartphone(sim::Simulator& sim, wifi::Channel& channel,
                       sim::Rng rng, PhoneProfile profile, net::NodeId id,
                       net::NodeId ap_id)
    : sim_(&sim),
      profile_(std::move(profile)),
      id_(id),
      radio_kind_(RadioKind::wifi),
      rng_(rng.fork("smartphone")),
      station_(std::make_unique<wifi::Station>(
          sim, channel, rng.fork("station"),
          station_config(profile_, id, ap_id))),
      bus_(std::make_unique<SdioBus>(sim, rng.fork("bus"), profile_)),
      driver_(std::make_unique<WnicDriver>(sim, rng.fork("driver"), profile_,
                                           *bus_)),
      kernel_(sim, rng.fork("kernel"), profile_),
      exec_(sim, rng.fork("env"), profile_),
      pipeline_(sim),
      ap_id_(ap_id) {
  pipeline_.append(exec_);
  pipeline_.append(kernel_);
  pipeline_.append(*driver_);
  pipeline_.append(*bus_);
  pipeline_.append(*station_);
  if (profile_.system_traffic_mean_interval > Duration{}) {
    schedule_system_traffic();
  }
}

Smartphone::Smartphone(sim::Simulator& sim, sim::Rng rng, PhoneProfile profile,
                       net::NodeId id, net::NodeId gateway_id,
                       const cellular::RrcConfig& rrc_config)
    : sim_(&sim),
      profile_(std::move(profile)),
      id_(id),
      radio_kind_(RadioKind::cellular),
      rng_(rng.fork("smartphone")),
      rrc_(std::make_unique<cellular::RrcMachine>(sim, rng.fork("rrc"),
                                                  rrc_config)),
      rrc_radio_(std::make_unique<cellular::RrcRadioLayer>(sim, *rrc_)),
      kernel_(sim, rng.fork("kernel"), profile_),
      exec_(sim, rng.fork("env"), profile_),
      pipeline_(sim),
      ap_id_(gateway_id) {
  pipeline_.append(exec_);
  pipeline_.append(kernel_);
  pipeline_.append(*rrc_radio_);
  if (profile_.system_traffic_mean_interval > Duration{}) {
    schedule_system_traffic();
  }
}

void Smartphone::reset(sim::Rng rng, PhoneProfile profile, net::NodeId id,
                       net::NodeId ap_id) {
  expects(radio_kind_ == RadioKind::wifi,
          "Smartphone::reset(wifi) on a cellular phone");
  profile_ = std::move(profile);
  id_ = id;
  rng_ = rng.fork("smartphone");
  // Subsystems reset in the constructor's member order so each event the
  // construction schedules (doze timer, bus watchdog, system chatter) lands
  // with the same sequence number as in a fresh build.
  station_->reset(rng.fork("station"), station_config(profile_, id, ap_id));
  bus_->reset(rng.fork("bus"), profile_);
  driver_->reset(rng.fork("driver"), profile_, *bus_);
  kernel_.reset(rng.fork("kernel"), profile_);
  exec_.reset(rng.fork("env"), profile_);
  pipeline_.reset();
  pipeline_.append(exec_);
  pipeline_.append(kernel_);
  pipeline_.append(*driver_);
  pipeline_.append(*bus_);
  pipeline_.append(*station_);
  ap_id_ = ap_id;
  system_traffic_enabled_ = true;
  system_packets_ = 0;
  if (profile_.system_traffic_mean_interval > Duration{}) {
    schedule_system_traffic();
  }
}

void Smartphone::reset(sim::Rng rng, PhoneProfile profile, net::NodeId id,
                       net::NodeId gateway_id,
                       const cellular::RrcConfig& rrc_config) {
  expects(radio_kind_ == RadioKind::cellular,
          "Smartphone::reset(cellular) on a WiFi phone");
  profile_ = std::move(profile);
  id_ = id;
  rng_ = rng.fork("smartphone");
  rrc_->reset(rng.fork("rrc"), rrc_config);
  rrc_radio_->reset(*rrc_);
  kernel_.reset(rng.fork("kernel"), profile_);
  exec_.reset(rng.fork("env"), profile_);
  pipeline_.reset();
  pipeline_.append(exec_);
  pipeline_.append(kernel_);
  pipeline_.append(*rrc_radio_);
  ap_id_ = gateway_id;
  system_traffic_enabled_ = true;
  system_packets_ = 0;
  if (profile_.system_traffic_mean_interval > Duration{}) {
    schedule_system_traffic();
  }
}

wifi::Station& Smartphone::station() {
  expects(station_ != nullptr, "Smartphone::station on a cellular phone");
  return *station_;
}

SdioBus& Smartphone::bus() {
  expects(bus_ != nullptr, "Smartphone::bus on a cellular phone");
  return *bus_;
}

WnicDriver& Smartphone::driver() {
  expects(driver_ != nullptr, "Smartphone::driver on a cellular phone");
  return *driver_;
}

cellular::RrcMachine& Smartphone::rrc() {
  expects(rrc_ != nullptr, "Smartphone::rrc on a WiFi phone");
  return *rrc_;
}

cellular::RrcRadioLayer& Smartphone::cellular_radio() {
  expects(rrc_radio_ != nullptr,
          "Smartphone::cellular_radio on a WiFi phone");
  return *rrc_radio_;
}

void Smartphone::schedule_system_traffic() {
  // Sync services and keep-alives chatter at Poisson intervals. The
  // packets die at the gateway (TTL = 1) but wake the bus and the radio on
  // the way out — the source of Table 3's occasional already-awake probes.
  const Duration next = Duration::seconds(rng_.exponential(
      profile_.system_traffic_mean_interval.to_seconds()));
  sim_->schedule_in(next, sim::assert_fits_inline([this] {
    if (system_traffic_enabled_) {
      Packet chatter =
          Packet::make(net::PacketType::udp_data, net::Protocol::udp, id_,
                       ap_id_, profile_.system_traffic_bytes);
      chatter.ttl = 1;
      chatter.flow_id = 0;  // no app bound; any response is dropped
      ++system_packets_;
      send(std::move(chatter), ExecMode::dalvik);
    }
    schedule_system_traffic();
  }));
}

void Smartphone::send(Packet&& packet, ExecMode mode) {
  packet.src = id_;
  exec_.send(std::move(packet), mode);
}

}  // namespace acute::phone
