#include "phone/smartphone.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::phone {

using net::Packet;
using sim::Duration;
using sim::expects;

namespace {
wifi::Station::Config station_config(const PhoneProfile& profile,
                                     net::NodeId id, net::NodeId ap_id) {
  wifi::Station::Config config;
  config.id = id;
  config.ap = ap_id;
  config.psm_timeout = profile.psm_timeout;
  config.psm_tick = profile.psm_tick;
  config.associated_listen_interval = profile.associated_listen_interval;
  config.actual_listen_interval = 0;  // Table 4: every handset uses 0
  config.beacon_miss_probability = profile.beacon_miss_probability;
  return config;
}
}  // namespace

Smartphone::Smartphone(sim::Simulator& sim, wifi::Channel& channel,
                       sim::Rng rng, PhoneProfile profile, net::NodeId id,
                       net::NodeId ap_id)
    : sim_(&sim),
      profile_(std::move(profile)),
      id_(id),
      rng_(rng.fork("smartphone")),
      station_(sim, channel, rng.fork("station"),
               station_config(profile_, id, ap_id)),
      bus_(sim, rng.fork("bus"), profile_),
      driver_(sim, rng.fork("driver"), profile_, bus_, station_),
      kernel_(sim, rng.fork("kernel"), profile_, driver_),
      env_(rng.fork("env"), profile_),
      ap_id_(ap_id) {
  kernel_.set_rx_handler(
      [this](Packet pkt) { on_kernel_receive(std::move(pkt)); });
  if (profile_.system_traffic_mean_interval > Duration{}) {
    schedule_system_traffic();
  }
}

void Smartphone::schedule_system_traffic() {
  // Sync services and keep-alives chatter at Poisson intervals. The
  // packets die at the gateway (TTL = 1) but wake the bus and the radio on
  // the way out — the source of Table 3's occasional already-awake probes.
  const Duration next = Duration::from_seconds(rng_.exponential(
      profile_.system_traffic_mean_interval.to_seconds()));
  sim_->schedule_in(next, [this] {
    if (system_traffic_enabled_) {
      Packet chatter =
          Packet::make(net::PacketType::udp_data, net::Protocol::udp, id_,
                       ap_id_, profile_.system_traffic_bytes);
      chatter.ttl = 1;
      chatter.flow_id = 0;  // no app bound; any response is dropped
      ++system_packets_;
      send(std::move(chatter), ExecMode::dalvik);
    }
    schedule_system_traffic();
  });
}

void Smartphone::register_flow(std::uint32_t flow_id, AppRxFn handler,
                               ExecMode mode) {
  expects(static_cast<bool>(handler),
          "Smartphone::register_flow requires a handler");
  flows_[flow_id] = FlowEntry{std::move(handler), mode};
}

void Smartphone::unregister_flow(std::uint32_t flow_id) {
  flows_.erase(flow_id);
}

void Smartphone::send(Packet packet, ExecMode mode) {
  packet.src = id_;
  packet.stamps.app_send = sim_->now();  // t_u^o
  const Duration overhead = env_.send_overhead(mode);
  sim_->schedule_in(overhead, [this, pkt = std::move(packet)]() mutable {
    kernel_.transmit(std::move(pkt));
  });
}

void Smartphone::on_kernel_receive(Packet packet) {
  const auto it = flows_.find(packet.flow_id);
  if (it == flows_.end()) return;  // no app bound to this flow
  const Duration overhead = env_.recv_overhead(it->second.mode);
  const std::uint32_t flow_id = packet.flow_id;
  sim_->schedule_in(overhead, [this, flow_id,
                               pkt = std::move(packet)]() mutable {
    pkt.stamps.app_recv = sim_->now();  // t_u^i
    // Re-look-up: the app may have unregistered while the packet climbed.
    const auto handler_it = flows_.find(flow_id);
    if (handler_it == flows_.end()) return;
    handler_it->second.handler(pkt);
  });
}

}  // namespace acute::phone
