#include "phone/smartphone.hpp"

#include <utility>

namespace acute::phone {

using net::Packet;
using sim::Duration;

namespace {
wifi::Station::Config station_config(const PhoneProfile& profile,
                                     net::NodeId id, net::NodeId ap_id) {
  wifi::Station::Config config;
  config.id = id;
  config.ap = ap_id;
  config.psm_timeout = profile.psm_timeout;
  config.psm_tick = profile.psm_tick;
  config.associated_listen_interval = profile.associated_listen_interval;
  config.actual_listen_interval = 0;  // Table 4: every handset uses 0
  config.beacon_miss_probability = profile.beacon_miss_probability;
  return config;
}
}  // namespace

Smartphone::Smartphone(sim::Simulator& sim, wifi::Channel& channel,
                       sim::Rng rng, PhoneProfile profile, net::NodeId id,
                       net::NodeId ap_id)
    : sim_(&sim),
      profile_(std::move(profile)),
      id_(id),
      rng_(rng.fork("smartphone")),
      station_(sim, channel, rng.fork("station"),
               station_config(profile_, id, ap_id)),
      bus_(sim, rng.fork("bus"), profile_),
      driver_(sim, rng.fork("driver"), profile_, bus_),
      kernel_(sim, rng.fork("kernel"), profile_),
      exec_(sim, rng.fork("env"), profile_),
      pipeline_(sim),
      ap_id_(ap_id) {
  pipeline_.append(exec_);
  pipeline_.append(kernel_);
  pipeline_.append(driver_);
  pipeline_.append(bus_);
  pipeline_.append(station_);
  if (profile_.system_traffic_mean_interval > Duration{}) {
    schedule_system_traffic();
  }
}

void Smartphone::schedule_system_traffic() {
  // Sync services and keep-alives chatter at Poisson intervals. The
  // packets die at the gateway (TTL = 1) but wake the bus and the radio on
  // the way out — the source of Table 3's occasional already-awake probes.
  const Duration next = Duration::seconds(rng_.exponential(
      profile_.system_traffic_mean_interval.to_seconds()));
  sim_->schedule_in(next, [this] {
    if (system_traffic_enabled_) {
      Packet chatter =
          Packet::make(net::PacketType::udp_data, net::Protocol::udp, id_,
                       ap_id_, profile_.system_traffic_bytes);
      chatter.ttl = 1;
      chatter.flow_id = 0;  // no app bound; any response is dropped
      ++system_packets_;
      send(std::move(chatter), ExecMode::dalvik);
    }
    schedule_system_traffic();
  });
}

void Smartphone::send(Packet packet, ExecMode mode) {
  packet.src = id_;
  exec_.send(std::move(packet), mode);
}

}  // namespace acute::phone
