// Execution-environment cost model: native C binaries vs the Dalvik VM.
//
// [23] showed that the user-kernel overhead of measurement apps running in
// the DVM can be mitigated by executing a pre-compiled native C program;
// AcuteMon's measurement thread is such a binary (§4.1), while Java-based
// tools (MobiPerf's InetAddress method) pay DVM costs plus occasional GC
// pauses.
#pragma once

#include "phone/profile.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace acute::phone {

enum class ExecMode { native_c, dalvik };

[[nodiscard]] const char* to_string(ExecMode mode);

class ExecEnv {
 public:
  ExecEnv(sim::Rng rng, const PhoneProfile& profile);

  /// Latency between the app taking its send timestamp and the packet
  /// entering the kernel (syscall + runtime overhead).
  [[nodiscard]] sim::Duration send_overhead(ExecMode mode);

  /// Latency between socket readiness and the app taking its receive
  /// timestamp (wakeup + runtime overhead; DVM adds rare GC pauses).
  [[nodiscard]] sim::Duration recv_overhead(ExecMode mode);

 private:
  sim::Rng rng_;
  const PhoneProfile* profile_;
};

}  // namespace acute::phone
