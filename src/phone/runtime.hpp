// Execution-environment cost model: native C binaries vs the Dalvik VM.
//
// [23] showed that the user-kernel overhead of measurement apps running in
// the DVM can be mitigated by executing a pre-compiled native C program;
// AcuteMon's measurement thread is such a binary (§4.1), while Java-based
// tools (MobiPerf's InetAddress method) pay DVM costs plus occasional GC
// pauses.
//
// ExecEnv is the pure cost model; ExecEnvLayer is the top StackLayer of a
// phone pipeline — it pays the runtime's send/receive overheads, writes the
// t_u stamps, and demultiplexes ascending packets to the apps registered on
// its flows.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/id_alloc.hpp"
#include "net/packet.hpp"
#include "passive/observer.hpp"
#include "phone/profile.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "stack/stack_layer.hpp"

namespace acute::phone {

enum class ExecMode { native_c, dalvik };

[[nodiscard]] const char* to_string(ExecMode mode);

class ExecEnv {
 public:
  ExecEnv(sim::Rng rng, const PhoneProfile& profile);

  /// Returns the cost model to the state the constructor would leave it in
  /// with these arguments (shard-context reuse contract).
  void reset(sim::Rng rng, const PhoneProfile& profile);

  /// Latency between the app taking its send timestamp and the packet
  /// entering the kernel (syscall + runtime overhead).
  [[nodiscard]] sim::Duration send_overhead(ExecMode mode);

  /// Latency between socket readiness and the app taking its receive
  /// timestamp (wakeup + runtime overhead; DVM adds rare GC pauses).
  [[nodiscard]] sim::Duration recv_overhead(ExecMode mode);

 private:
  sim::Rng rng_;
  const PhoneProfile* profile_;
};

class ExecEnvLayer : public stack::StackLayer {
 public:
  ExecEnvLayer(sim::Simulator& sim, sim::Rng rng, const PhoneProfile& profile);

  /// Returns the layer to the state the constructor would leave it in with
  /// these arguments: no registered flows, flow ids restarting from 1. The
  /// flow-table storage stays warm (shard-context reuse contract).
  void reset(sim::Rng rng, const PhoneProfile& profile);

  // StackLayer.
  [[nodiscard]] const char* layer_name() const override { return "exec-env"; }
  /// Downward entry with the default (native C) runtime. Apps normally call
  /// send() to choose their runtime explicitly.
  void transmit(net::Packet&& packet) override {
    send(std::move(packet), ExecMode::native_c);
  }
  /// Upward: socket readiness -> runtime receive overhead -> t_u^i stamp ->
  /// the app registered on the packet's flow (dropped if none).
  void deliver(net::Packet&& packet) override;

  /// Sends a packet from an app. Stamps app_send (t_u^o) now; the packet
  /// enters the kernel after the runtime's send overhead.
  void send(net::Packet&& packet, ExecMode mode);

  /// App-level receive callback, demultiplexed by the packet's flow id.
  /// `mode` determines the runtime whose receive overhead the app pays.
  /// The packet is handed over as an rvalue: apps that keep it take it by
  /// value (a move), apps that only read it bind a const reference.
  using AppRxFn = std::function<void(net::Packet&&)>;
  void register_flow(std::uint32_t flow_id, AppRxFn handler,
                     ExecMode mode = ExecMode::native_c);
  void unregister_flow(std::uint32_t flow_id);

  /// Allocates a flow id no other app on this layer uses. Wrap-safe: skips
  /// 0 (the "no app" sentinel) and ids still registered.
  [[nodiscard]] std::uint32_t allocate_flow_id();

  /// Forwards every app-boundary observation to `tap`: each send at its
  /// t_u^o stamp instant, each delivery to a *registered* flow at its t_u^i
  /// stamp instant (packets no app is bound to are invisible here, exactly
  /// as they are to the apps) — the attachment point of MopEye-style
  /// per-app monitors (passive::PerAppMonitor). One tap per layer; nullptr
  /// detaches. reset() detaches, so shard-context reuse re-attaches per
  /// shard.
  void attach_flow_tap(passive::FlowTap* tap) { tap_ = tap; }

  [[nodiscard]] ExecEnv& env() { return env_; }

 private:
  sim::Simulator* sim_;
  ExecEnv env_;
  struct FlowEntry {
    std::uint32_t flow_id = 0;
    AppRxFn handler;
    ExecMode mode = ExecMode::native_c;
  };
  [[nodiscard]] FlowEntry* find_flow(std::uint32_t flow_id);
  // A phone runs a handful of concurrent flows, so a flat vector beats a
  // node-based map and (un)registering allocates nothing in steady state
  // (handlers that fit std::function's inline buffer included).
  std::vector<FlowEntry> flows_;
  net::IdAllocator<std::uint32_t> flow_ids_;
  passive::FlowTap* tap_ = nullptr;
};

}  // namespace acute::phone
