#include "phone/driver.hpp"

#include <utility>

namespace acute::phone {

using net::Packet;
using sim::Duration;
using sim::TimePoint;

WnicDriver::WnicDriver(sim::Simulator& sim, sim::Rng rng,
                       const PhoneProfile& profile, SdioBus& bus,
                       wifi::Station& station)
    : sim_(&sim),
      rng_(std::move(rng)),
      profile_(&profile),
      bus_(&bus),
      station_(&station) {
  station_->set_receiver([this](Packet pkt, const wifi::Frame& frame) {
    on_station_receive(std::move(pkt), frame);
  });
}

void WnicDriver::start_xmit(Packet packet) {
  const TimePoint xmit_entry = sim_->now();
  packet.stamps.driver_xmit_entry = xmit_entry;

  // dhd_sched_dpc + dpc wake-up, then the bus-sleep / clock checks.
  const Duration dispatch = profile_->driver_tx_base.sample(rng_);
  const Duration bus_ready = bus_->acquire(SdioBus::Direction::transmit);

  sim_->schedule_in(
      dispatch + bus_ready, [this, pkt = std::move(packet)]() mutable {
        // dhdsdio_txpkt: write the frame over the bus.
        pkt.stamps.driver_txpkt = sim_->now();
        dvsend_ms_.push_back(
            (sim_->now() - *pkt.stamps.driver_xmit_entry).to_ms());
        const Duration transfer = bus_->transfer_time(pkt.size_bytes);
        sim_->schedule_in(transfer, [this, pkt = std::move(pkt)]() mutable {
          bus_->activity();
          ++tx_packets_;
          station_->send(std::move(pkt));
        });
      });
}

void WnicDriver::on_station_receive(Packet packet, const wifi::Frame& frame) {
  // The chip raises the interrupt shortly after the frame ends on air.
  (void)frame;
  sim_->schedule_in(profile_->irq_latency, [this,
                                            pkt = std::move(packet)]() mutable {
    // dhdsdio_isr entry.
    pkt.stamps.driver_isr = sim_->now();
    const Duration bus_ready = bus_->acquire(SdioBus::Direction::receive);
    const Duration read_cost = profile_->driver_rx_base.sample(rng_) +
                               bus_->transfer_time(pkt.size_bytes);
    sim_->schedule_in(bus_ready + read_cost,
                      [this, pkt = std::move(pkt)]() mutable {
                        // dhd_rxf_enqueue.
                        pkt.stamps.driver_rxf_enqueue = sim_->now();
                        dvrecv_ms_.push_back(
                            (sim_->now() - *pkt.stamps.driver_isr).to_ms());
                        bus_->activity();
                        ++rx_packets_;
                        // rxf thread -> netif_rx_ni.
                        const Duration netif = profile_->driver_netif
                                                   .sample_scaled(
                                                       rng_,
                                                       profile_->cpu_scale);
                        sim_->schedule_in(netif, [this, pkt = std::move(
                                                            pkt)]() mutable {
                          if (on_receive_) on_receive_(std::move(pkt));
                        });
                      });
  });
}

void WnicDriver::clear_logs() {
  dvsend_ms_.clear();
  dvrecv_ms_.clear();
}

}  // namespace acute::phone
