#include "phone/driver.hpp"

#include <utility>

namespace acute::phone {

using net::Packet;
using sim::Duration;
using sim::TimePoint;
using stack::StampPoint;

WnicDriver::WnicDriver(sim::Simulator& sim, sim::Rng rng,
                       const PhoneProfile& profile, SdioBus& bus)
    : sim_(&sim), rng_(std::move(rng)), profile_(&profile), bus_(&bus) {}

void WnicDriver::transmit(Packet&& packet) {
  const TimePoint xmit_entry = sim_->now();
  stamp(packet, StampPoint::driver_xmit_entry, xmit_entry);

  // dhd_sched_dpc + dpc wake-up, then the bus-sleep / clock checks.
  const Duration dispatch = profile_->driver_tx_base.sample(rng_);
  const Duration bus_ready = bus_->acquire(SdioBus::Direction::transmit);

  sim_->schedule_in(
      dispatch + bus_ready,
      sim::assert_fits_inline([this, pkt = std::move(packet)]() mutable {
        // dhdsdio_txpkt: hand the frame to the bus layer for the write.
        stamp(pkt, StampPoint::driver_txpkt, sim_->now());
        dvsend_ms_.push_back(
            (sim_->now() - *pkt.stamps.driver_xmit_entry).to_ms());
        ++tx_packets_;
        pass_down(std::move(pkt));
      }));
}

void WnicDriver::deliver(Packet&& packet) {
  // The chip raises the interrupt shortly after the frame ends on air.
  sim_->schedule_in(profile_->irq_latency, sim::assert_fits_inline([this,
                                            pkt = std::move(packet)]() mutable {
    // dhdsdio_isr entry.
    stamp(pkt, StampPoint::driver_isr, sim_->now());
    const Duration bus_ready = bus_->acquire(SdioBus::Direction::receive);
    const Duration read_cost = profile_->driver_rx_base.sample(rng_) +
                               bus_->transfer_time(pkt.size_bytes);
    sim_->schedule_in(
        bus_ready + read_cost,
        sim::assert_fits_inline([this, pkt = std::move(pkt)]() mutable {
          // dhd_rxf_enqueue.
          stamp(pkt, StampPoint::driver_rxf_enqueue, sim_->now());
          dvrecv_ms_.push_back(
              (sim_->now() - *pkt.stamps.driver_isr).to_ms());
          bus_->activity();
          ++rx_packets_;
          // rxf thread -> netif_rx_ni.
          const Duration netif = profile_->driver_netif.sample_scaled(
              rng_, profile_->cpu_scale);
          sim_->schedule_in(
              netif,
              sim::assert_fits_inline([this, pkt = std::move(pkt)]() mutable {
                pass_up(std::move(pkt));
              }));
        }));
  }));
}

void WnicDriver::clear_logs() {
  dvsend_ms_.clear();
  dvrecv_ms_.clear();
}

}  // namespace acute::phone
