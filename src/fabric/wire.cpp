#include "fabric/wire.hpp"

#include <cstring>

#include "sim/contracts.hpp"

namespace acute::fabric {

using sim::expects;

namespace {

void put_u32(std::string& out, std::uint32_t value) {
  for (int byte = 0; byte < 4; ++byte) {
    out.push_back(static_cast<char>((value >> (8 * byte)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    out.push_back(static_cast<char>((value >> (8 * byte)) & 0xff));
  }
}

/// Bounds-checked little-endian reader over a frame payload; any overrun is
/// a torn frame, reported loudly like every other wire malformation.
struct Cursor {
  std::string_view bytes;

  std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
  std::uint64_t u64() { return take(8); }

  std::uint64_t take(int width) {
    expects(bytes.size() >= static_cast<std::size_t>(width),
            "fabric wire: truncated frame payload");
    std::uint64_t value = 0;
    for (int byte = 0; byte < width; ++byte) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes[byte]))
               << (8 * byte);
    }
    bytes.remove_prefix(static_cast<std::size_t>(width));
    return value;
  }

  std::string rest() { return std::string(bytes); }

  void done() const {
    expects(bytes.empty(), "fabric wire: trailing bytes in frame payload");
  }
};

/// Reads exactly `size` bytes. False only on EOF before the first byte;
/// EOF after a partial read is a torn frame.
bool recv_exact(Transport& transport, void* data, std::size_t size) {
  char* bytes = static_cast<char*>(data);
  std::size_t read = 0;
  while (read < size) {
    const std::size_t got = transport.recv_some(bytes + read, size - read);
    if (got == 0) {
      expects(read == 0, "fabric wire: torn frame (peer died mid-frame)");
      return false;
    }
    read += got;
  }
  return true;
}

}  // namespace

void write_frame(Transport& transport, FrameType type,
                 std::string_view payload) {
  expects(payload.size() < kMaxFrameBytes,
          "fabric wire: frame payload exceeds the protocol cap");
  std::string frame;
  frame.reserve(4 + 1 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(1 + payload.size()));
  frame.push_back(static_cast<char>(type));
  frame.append(payload);
  transport.send_all(frame.data(), frame.size());
}

bool read_frame(Transport& transport, Frame& out) {
  unsigned char header[4];
  if (!recv_exact(transport, header, sizeof header)) return false;
  std::uint32_t length = 0;
  for (int byte = 0; byte < 4; ++byte) {
    length |= static_cast<std::uint32_t>(header[byte]) << (8 * byte);
  }
  expects(length >= 1 && length <= kMaxFrameBytes,
          "fabric wire: torn frame (implausible length)");
  unsigned char type = 0;
  expects(recv_exact(transport, &type, 1),
          "fabric wire: torn frame (peer died mid-frame)");
  expects(type >= static_cast<unsigned char>(FrameType::hello) &&
              type <= static_cast<unsigned char>(FrameType::shutdown),
          "fabric wire: torn frame (unknown frame type)");
  out.type = static_cast<FrameType>(type);
  out.payload.resize(length - 1);
  if (!out.payload.empty()) {
    expects(recv_exact(transport, out.payload.data(), out.payload.size()),
            "fabric wire: torn frame (peer died mid-frame)");
  }
  return true;
}

std::string encode_hello(const HelloBody& body) {
  std::string payload;
  put_u32(payload, body.protocol);
  put_u64(payload, body.spec_hash);
  put_u64(payload, body.seed);
  put_u64(payload, body.shard_count);
  return payload;
}

HelloBody decode_hello(std::string_view payload) {
  Cursor cursor{payload};
  HelloBody body;
  body.protocol = cursor.u32();
  body.spec_hash = cursor.u64();
  body.seed = cursor.u64();
  body.shard_count = cursor.u64();
  cursor.done();
  return body;
}

std::string encode_lease_grant(const LeaseGrantBody& body) {
  std::string payload;
  put_u64(payload, body.lease_id);
  put_u64(payload, body.begin);
  put_u64(payload, body.end);
  return payload;
}

LeaseGrantBody decode_lease_grant(std::string_view payload) {
  Cursor cursor{payload};
  LeaseGrantBody body;
  body.lease_id = cursor.u64();
  body.begin = cursor.u64();
  body.end = cursor.u64();
  cursor.done();
  expects(body.begin < body.end, "fabric wire: empty lease grant range");
  return body;
}

std::string encode_shard_done(const ShardDoneBody& body) {
  std::string payload;
  put_u64(payload, body.lease_id);
  payload.append(body.record_line);
  return payload;
}

ShardDoneBody decode_shard_done(std::string_view payload) {
  Cursor cursor{payload};
  ShardDoneBody body;
  body.lease_id = cursor.u64();
  body.record_line = cursor.rest();
  return body;
}

std::string encode_lease_id(std::uint64_t lease_id) {
  std::string payload;
  put_u64(payload, lease_id);
  return payload;
}

std::uint64_t decode_lease_id(std::string_view payload) {
  Cursor cursor{payload};
  const std::uint64_t lease_id = cursor.u64();
  cursor.done();
  return lease_id;
}

}  // namespace acute::fabric
