#include "fabric/lease.hpp"

#include <algorithm>
#include <cmath>

#include "sim/contracts.hpp"

namespace acute::fabric {

using sim::expects;

LeaseTable::LeaseTable(std::vector<bool> leasable, LeaseConfig config)
    : config_(config),
      done_(leasable.size(), false),
      retries_(leasable.size(), 0) {
  expects(config_.batch > 0, "LeaseTable: batch must be positive");
  expects(config_.lease_timeout_ms > 0,
          "LeaseTable: lease timeout must be positive");
  expects(config_.expiry_backoff >= 1.0,
          "LeaseTable: expiry backoff must be >= 1");
  for (std::size_t i = 0; i < leasable.size(); ++i) {
    if (leasable[i]) {
      pending_.insert(pending_.end(), i);
      ++leasable_;
    }
  }
}

std::uint64_t LeaseTable::timeout_for(const Lease& lease) const {
  std::uint32_t worst = 0;
  for (std::size_t i = lease.begin; i < lease.end; ++i) {
    worst = std::max(worst, retries_[i]);
  }
  const double grown = static_cast<double>(config_.lease_timeout_ms) *
                       std::pow(config_.expiry_backoff, worst);
  const double capped =
      std::min(grown, static_cast<double>(config_.max_timeout_ms));
  return static_cast<std::uint64_t>(capped);
}

std::optional<Lease> LeaseTable::grant(std::uint64_t now_ms) {
  if (pending_.empty()) return std::nullopt;
  Lease lease;
  lease.id = next_lease_id_++;
  const auto first = pending_.begin();
  lease.begin = *first;
  lease.end = lease.begin;
  // Lowest contiguous pending run, at most `batch` long.
  auto it = first;
  while (it != pending_.end() && *it == lease.end &&
         lease.end - lease.begin < config_.batch) {
    ++lease.end;
    ++it;
  }
  pending_.erase(first, it);
  lease.deadline_ms = now_ms + timeout_for(lease);
  leases_.emplace(lease.id, lease);
  return lease;
}

bool LeaseTable::heartbeat(std::uint64_t lease_id, std::uint64_t now_ms) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return false;
  it->second.deadline_ms = now_ms + timeout_for(it->second);
  return true;
}

bool LeaseTable::complete(std::size_t index) {
  expects(index < done_.size(), "LeaseTable::complete index out of range");
  if (done_[index]) return false;  // duplicate (the re-lease race)
  done_[index] = true;
  ++done_count_;
  // The index may sit in pending_ when its lease expired before this
  // (late) completion arrived — claim it so it is never leased again.
  pending_.erase(index);
  return true;
}

void LeaseTable::finish(std::uint64_t lease_id) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return;  // already expired/revoked
  for (std::size_t i = it->second.begin; i < it->second.end; ++i) {
    if (!done_[i]) pending_.insert(i);  // defensive: worker skipped it
  }
  leases_.erase(it);
}

std::vector<Lease> LeaseTable::expire(std::uint64_t now_ms) {
  std::vector<Lease> expired;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.deadline_ms > now_ms) {
      ++it;
      continue;
    }
    for (std::size_t i = it->second.begin; i < it->second.end; ++i) {
      if (!done_[i]) {
        ++retries_[i];
        pending_.insert(i);
      }
    }
    expired.push_back(it->second);
    it = leases_.erase(it);
  }
  return expired;
}

void LeaseTable::revoke(std::uint64_t lease_id) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return;
  for (std::size_t i = it->second.begin; i < it->second.end; ++i) {
    if (!done_[i]) {
      ++retries_[i];
      pending_.insert(i);
    }
  }
  leases_.erase(it);
}

std::optional<std::uint64_t> LeaseTable::next_deadline_ms() const {
  std::optional<std::uint64_t> soonest;
  for (const auto& [id, lease] : leases_) {
    if (!soonest.has_value() || lease.deadline_ms < *soonest) {
      soonest = lease.deadline_ms;
    }
  }
  return soonest;
}

}  // namespace acute::fabric
