// The fabric coordinator: owner of the shard space, the leases, the merge
// and the checkpoint — everything except shard execution itself.
//
// One coordinator serves any number of fabric::Worker peers. Each worker
// proves it holds the same campaign (hello: protocol, spec_hash, seed,
// shard count — any mismatch is rejected loudly), then pulls leases of
// contiguous scenario-index ranges. Completed shards stream back as ckpt2
// record lines; the coordinator validates each against the spec (index
// range, Rng(S).fork(i) seed, CampaignSpec::shard_hash), appends it to its
// own checkpoint file, and folds the first completion per index through
// testbed::MergeFrontier in ascending scenario order — so the merged
// digests are bit-identical to a single-process Campaign::run for any
// worker count, lease batch size and kill/re-lease schedule.
//
// Failure matrix (docs/fabric.md):
//   worker death (EOF / torn frame)  → revoke its leases, log, re-lease
//   heartbeat expiry (stalled)       → expire the lease, re-lease with
//                                      backoff; the stalled worker's late
//                                      completions become duplicates
//   duplicate completion             → first merge wins (bytes identical by
//                                      determinism); the checkpoint keeps
//                                      every append and compaction applies
//                                      the shared last-wins rule
//   hash mismatch at hello           → reject frame + close, never leased
//   coordinator death                → its checkpoint file holds every
//                                      completed shard; the next run
//                                      restores, compacts and leases only
//                                      the remainder
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "fabric/lease.hpp"
#include "fabric/transport.hpp"
#include "testbed/campaign.hpp"

namespace acute::fabric {

struct CoordinatorConfig {
  /// Lease sizing and expiry policy (see LeaseConfig).
  LeaseConfig lease;
  /// Loud-event log (worker joins/deaths, rejects, re-leases); nullptr
  /// silences it. The CI smoke job greps this output.
  std::ostream* log = nullptr;
};

/// Observability counters for benches, tests and the CLI summary.
struct CoordinatorStats {
  std::size_t workers_joined = 0;
  std::size_t workers_died = 0;    ///< EOF or torn frame with leases held
  std::size_t workers_rejected = 0;
  std::size_t leases_granted = 0;  ///< one lease_grant round-trip each
  std::size_t leases_expired = 0;  ///< heartbeat deadline passed
  std::size_t shards_merged = 0;   ///< first completions folded
  std::size_t duplicate_shards = 0;
};

class Coordinator {
 public:
  /// `spec` is the campaign being distributed. checkpoint_path, max_shards
  /// and seed behave exactly as in Campaign::run; keep_samples/retain_shards
  /// are ignored (the coordinator always merges frontier-style — it never
  /// sees raw samples, only digests).
  Coordinator(testbed::CampaignSpec spec, CoordinatorConfig config = {});

  /// Serves the campaign to completion: `workers` are already-connected
  /// transports (pipe mode / forked children); `listener`, when non-null,
  /// accepts additional worker processes as they arrive. Returns the merged
  /// report (frontier mode: digests + totals, no per-shard results).
  /// Contract violation when every worker is gone, none can arrive and
  /// shards are still pending.
  [[nodiscard]] testbed::CampaignReport run(
      std::vector<std::unique_ptr<Transport>> workers,
      UnixListener* listener = nullptr);

  [[nodiscard]] const CoordinatorStats& stats() const { return stats_; }

 private:
  struct Conn;

  testbed::Campaign campaign_;
  CoordinatorConfig config_;
  CoordinatorStats stats_;
};

}  // namespace acute::fabric
