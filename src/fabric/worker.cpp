#include "fabric/worker.hpp"

#include <cstddef>
#include <string_view>
#include <utility>

#include "fabric/wire.hpp"
#include "report/checkpoint.hpp"
#include "sim/contracts.hpp"

namespace acute::fabric {

using sim::expects;

Worker::Worker(testbed::CampaignSpec spec, WorkerConfig config)
    : campaign_([&spec] {
        // Workers never persist or buffer: the coordinator owns the
        // checkpoint, and run_shard_record only needs digests.
        spec.checkpoint_path.clear();
        spec.sinks = nullptr;
        return testbed::Campaign(std::move(spec));
      }()),
      config_(config) {}

std::size_t Worker::run(Transport& transport) {
  // Handshake: prove we hold the same campaign before any work moves.
  HelloBody hello;
  hello.spec_hash = campaign_.spec().spec_hash();
  hello.seed = campaign_.spec().seed;
  hello.shard_count = campaign_.scenario_count();
  write_frame(transport, FrameType::hello, encode_hello(hello));

  Frame frame;
  expects(read_frame(transport, frame),
          "fabric worker: coordinator closed during handshake");
  if (frame.type == FrameType::reject) {
    expects(false, ("fabric worker: coordinator rejected handshake: " +
                    frame.payload)
                       .c_str());
  }
  if (frame.type == FrameType::shutdown) return 0;  // nothing to do
  expects(frame.type == FrameType::hello_ok,
          "fabric worker: unexpected frame during handshake");

  // Campaign completion is the coordinator's call, made the instant the
  // last shard_done arrives — which may be ours, with more frames (our
  // lease_done, our next lease_request) still in flight when it sends
  // shutdown and closes. A failed send therefore checks the read side
  // first: a buffered shutdown turns the failure into a graceful exit;
  // anything else (the coordinator actually died) stays loud.
  auto send_or_finished = [&transport](FrameType type,
                                       std::string_view payload = {}) {
    try {
      write_frame(transport, type, payload);
      return false;
    } catch (const sim::ContractViolation&) {
      Frame pending;
      if (read_frame(transport, pending) &&
          pending.type == FrameType::shutdown) {
        return true;
      }
      throw;
    }
  };

  // One warm context for every lease this worker ever serves — the same
  // reuse (and the same bits) as an in-process pool worker's claim stream.
  testbed::ShardContext context;
  std::size_t shards_run = 0;
  bool request_next = true;
  while (true) {
    if (request_next && send_or_finished(FrameType::lease_request)) {
      return shards_run;
    }
    request_next = true;
    if (!read_frame(transport, frame)) {
      // Coordinator vanished without shutdown: loud, a worker must not
      // idle against a dead coordinator.
      expects(false, "fabric worker: coordinator closed unexpectedly");
    }
    switch (frame.type) {
      case FrameType::shutdown:
        return shards_run;
      case FrameType::idle:
        // Nothing pending right now, but outstanding leases elsewhere may
        // still expire back to us: park and wait for a pushed grant (or
        // shutdown) instead of spamming lease_request.
        request_next = false;
        continue;
      case FrameType::lease_grant: {
        const LeaseGrantBody lease = decode_lease_grant(frame.payload);
        expects(lease.end <= campaign_.scenario_count(),
                "fabric worker: lease range beyond the campaign");
        for (std::uint64_t index = lease.begin; index < lease.end; ++index) {
          if (config_.max_shards > 0 && shards_run >= config_.max_shards) {
            // Simulated mid-lease death: no lease_done, no goodbye — the
            // transport closes when the caller drops it, exactly what the
            // coordinator sees when SIGKILL takes a real worker.
            return shards_run;
          }
          // Heartbeat before each shard, so lease_timeout_ms only has to
          // outlive ONE shard, not a whole lease.
          if (send_or_finished(FrameType::heartbeat,
                               encode_lease_id(lease.lease_id))) {
            return shards_run;
          }
          report::ShardCheckpoint record = campaign_.run_shard_record(
              static_cast<std::size_t>(index), context);
          ShardDoneBody done;
          done.lease_id = lease.lease_id;
          done.record_line = report::render_checkpoint_record(record);
          if (send_or_finished(FrameType::shard_done,
                               encode_shard_done(done))) {
            return shards_run;
          }
          ++shards_run;
        }
        if (send_or_finished(FrameType::lease_done,
                             encode_lease_id(lease.lease_id))) {
          return shards_run;
        }
        break;
      }
      default:
        expects(false, "fabric worker: unexpected frame from coordinator");
    }
  }
}

}  // namespace acute::fabric
