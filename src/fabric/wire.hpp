// The fabric wire protocol: length-prefixed frames carrying the lease
// lifecycle and ckpt2 shard records between coordinator and worker.
//
// Frame layout (all integers little-endian):
//   u32 length   — byte count that follows (type byte + payload), 1..16 MiB
//   u8  type     — FrameType
//   ...payload   — type-specific body
//
// EOF semantics mirror the checkpoint file's torn-line rule: end-of-stream
// *between* frames is a clean close (read_frame returns false — how a
// worker's death or a graceful shutdown looks to the peer), while
// end-of-stream *inside* a frame, a zero/oversize length or an unknown type
// is a torn frame — a loud sim::ContractViolation, never a silent skip.
//
// The shard payload is deliberately the checkpoint format itself: a
// shard_done frame carries the exact ckpt2 line render_checkpoint_record()
// produces (report::parse_checkpoint_record decodes it). One serialization
// for disk and wire means the coordinator's checkpoint, a worker's streamed
// result and a single-process campaign's record are bit-identical by
// construction — the round-trip test only has to pin it once.
//
// Conversation (worker drives; coordinator replies or pushes):
//   worker → hello{protocol, spec_hash, seed, shard_count}
//   coord  → hello_ok | reject{message}            (reject: loud, close)
//   worker → lease_request
//   coord  → lease_grant{lease_id, begin, end} | idle | shutdown
//   worker → heartbeat{lease_id}                   (before every shard)
//   worker → shard_done{lease_id, ckpt2 line}      (one per shard)
//   worker → lease_done{lease_id}, then lease_request again
//   parked worker (after idle): blocks; coordinator pushes lease_grant
//   (re-leased work) or shutdown when the campaign completes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fabric/transport.hpp"

namespace acute::fabric {

/// Bumped on any frame/payload layout change; hello carries it so mixed
/// builds reject each other loudly instead of mis-parsing.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Upper bound on (type byte + payload); a ckpt2 record is a few KiB, so
/// anything near this is garbage, not data.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

enum class FrameType : std::uint8_t {
  hello = 1,
  hello_ok = 2,
  reject = 3,
  lease_request = 4,
  lease_grant = 5,
  shard_done = 6,
  lease_done = 7,
  heartbeat = 8,
  idle = 9,
  shutdown = 10,
};

struct Frame {
  FrameType type = FrameType::hello;
  std::string payload;
};

/// Sends one frame (single send_all, so a kill tears at most this frame).
void write_frame(Transport& transport, FrameType type,
                 std::string_view payload = {});

/// Reads one frame into `out`. False on clean end-of-stream at a frame
/// boundary; contract violation on a torn frame (EOF mid-frame, bad length,
/// unknown type).
[[nodiscard]] bool read_frame(Transport& transport, Frame& out);

/// hello payload: everything the coordinator checks before leasing work.
/// spec_hash is CampaignSpec::spec_hash() (shape-only); the seed rides
/// separately so a seed mismatch gets its own loud message.
struct HelloBody {
  std::uint32_t protocol = kProtocolVersion;
  std::uint64_t spec_hash = 0;
  std::uint64_t seed = 0;
  std::uint64_t shard_count = 0;
};

/// lease_grant payload: half-open scenario-index range [begin, end).
struct LeaseGrantBody {
  std::uint64_t lease_id = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// shard_done payload: the lease the shard ran under + its ckpt2 record
/// line, byte-for-byte what render_checkpoint_record() produced.
struct ShardDoneBody {
  std::uint64_t lease_id = 0;
  std::string record_line;
};

[[nodiscard]] std::string encode_hello(const HelloBody& body);
[[nodiscard]] HelloBody decode_hello(std::string_view payload);
[[nodiscard]] std::string encode_lease_grant(const LeaseGrantBody& body);
[[nodiscard]] LeaseGrantBody decode_lease_grant(std::string_view payload);
[[nodiscard]] std::string encode_shard_done(const ShardDoneBody& body);
[[nodiscard]] ShardDoneBody decode_shard_done(std::string_view payload);
/// heartbeat / lease_done payloads: just the lease id.
[[nodiscard]] std::string encode_lease_id(std::uint64_t lease_id);
[[nodiscard]] std::uint64_t decode_lease_id(std::string_view payload);

}  // namespace acute::fabric
