#include "fabric/transport.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "sim/contracts.hpp"

namespace acute::fabric {

using sim::expects;

FdTransport::FdTransport(int fd) : fd_(fd) {
  expects(fd >= 0, "FdTransport requires a valid descriptor");
}

FdTransport::~FdTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void FdTransport::send_all(const void* data, std::size_t size) {
  const char* bytes = static_cast<const char*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE here instead of a process-wide
    // SIGPIPE — the coordinator must outlive any number of worker deaths.
    const ssize_t sent = ::send(fd_, bytes, size, MSG_NOSIGNAL);
    if (sent < 0 && errno == EINTR) continue;
    expects(sent > 0, "fabric transport: peer closed during send");
    bytes += sent;
    size -= static_cast<std::size_t>(sent);
  }
}

std::size_t FdTransport::recv_some(void* data, std::size_t size) {
  while (true) {
    const ssize_t got = ::recv(fd_, data, size, 0);
    if (got < 0 && errno == EINTR) continue;
    expects(got >= 0, "fabric transport: recv failed");
    return static_cast<std::size_t>(got);
  }
}

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
transport_pair() {
  int fds[2];
  expects(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
          "fabric transport: socketpair failed");
  return {std::make_unique<FdTransport>(fds[0]),
          std::make_unique<FdTransport>(fds[1])};
}

UnixListener::UnixListener(std::string path) : path_(std::move(path)) {
  expects(!path_.empty() && path_.size() < sizeof(sockaddr_un{}.sun_path),
          "fabric listener: socket path empty or too long");
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  expects(fd_ >= 0, "fabric listener: socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path_.c_str());  // replace a stale socket from a previous run
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd_, 64) != 0) {
    ::close(fd_);
    expects(false, "fabric listener: bind/listen failed");
  }
}

UnixListener::~UnixListener() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

std::unique_ptr<Transport> UnixListener::accept() {
  while (true) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0 && errno == EINTR) continue;
    expects(conn >= 0, "fabric listener: accept failed");
    return std::make_unique<FdTransport>(conn);
  }
}

std::unique_ptr<Transport> unix_connect(const std::string& path) {
  expects(!path.empty() && path.size() < sizeof(sockaddr_un{}.sun_path),
          "fabric connect: socket path empty or too long");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  // Brief retry window: scripts frequently launch workers before the
  // coordinator has bound its socket.
  for (int attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    expects(fd >= 0, "fabric connect: socket() failed");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return std::make_unique<FdTransport>(fd);
    }
    ::close(fd);
    expects(attempt < 100, "fabric connect: coordinator socket never came up");
    ::usleep(100 * 1000);
  }
}

}  // namespace acute::fabric
