// Lease bookkeeping for the campaign fabric: who owns which shard range,
// until when, and what happens when they vanish.
//
// Pure logic, no clock and no I/O: every mutator takes an explicit now_ms,
// so expiry behavior is unit-testable with a fake clock ("heartbeat expiry
// re-leases exactly once") and the coordinator picks the time source.
//
// Lifecycle of a scenario index:
//   pending ──grant()──▶ leased ──complete()──▶ done          (happy path)
//                          │
//                          ├─ expire(now past deadline) ──▶ pending again,
//                          │    retry count bumped (timeout grows by
//                          │    expiry_backoff per retry, capped) — the
//                          │    stalled-worker path
//                          └─ revoke(lease) ──▶ pending again — the
//                               worker-died (EOF/torn-frame) path
//
// complete() is index-level and idempotent: after a re-lease, *both* the
// original holder (if merely stalled) and the new one may report the same
// index. The first claim flips it to done and returns true; later claims
// return false — the coordinator's cue to count a duplicate and skip the
// merge (the bytes are identical anyway, shards being pure functions of
// (spec, seed, index); report::LatestWinsMerge documents the shared rule).
//
// grant() hands out the lowest contiguous run of pending indices (capped at
// batch), so under ascending completion the coordinator's merge frontier
// holds O(workers × batch) out-of-order shards — the same skew bound as the
// in-process thread pool's batched claim cursor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace acute::fabric {

struct LeaseConfig {
  /// Max scenario indices per lease.
  std::size_t batch = 16;
  /// Deadline extension granted by grant() and each heartbeat. Must exceed
  /// one shard's wall time (workers heartbeat before every shard).
  std::uint64_t lease_timeout_ms = 10'000;
  /// Timeout multiplier per prior expiry of an index (a range that keeps
  /// timing out is probably slow, not cursed — give it longer).
  double expiry_backoff = 2.0;
  /// Cap on the backoff-grown timeout.
  std::uint64_t max_timeout_ms = 120'000;
};

/// One outstanding lease: the half-open range [begin, end) granted to a
/// worker, and the deadline its next heartbeat must beat.
struct Lease {
  std::uint64_t id = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint64_t deadline_ms = 0;
};

class LeaseTable {
 public:
  /// `leasable[i]` false marks indices this run will never lease (already
  /// restored from the coordinator's checkpoint, or beyond the max_shards
  /// cap); they count as neither pending nor done.
  LeaseTable(std::vector<bool> leasable, LeaseConfig config);

  /// Leases the lowest contiguous pending run (≤ config.batch indices);
  /// nullopt when nothing is pending (work may still be outstanding on
  /// other leases — check all_complete()).
  [[nodiscard]] std::optional<Lease> grant(std::uint64_t now_ms);

  /// Extends `lease_id`'s deadline; false when the lease is unknown —
  /// already expired and re-leased, or finished. A stalled-but-alive worker
  /// learns its lease is gone only through the duplicate completions it
  /// reports, which is harmless (see complete()).
  bool heartbeat(std::uint64_t lease_id, std::uint64_t now_ms);

  /// Marks one scenario index done. True on the first claim; false for
  /// duplicates (already done — the re-lease race). Idempotent, accepts
  /// indices from expired leases.
  bool complete(std::size_t index);

  /// Drops a lease whose worker finished its whole range. Any index the
  /// worker failed to report re-enters pending (defensive; a correct worker
  /// reports every index before lease_done).
  void finish(std::uint64_t lease_id);

  /// Returns every lease whose deadline is ≤ now_ms, after moving their
  /// uncompleted indices back to pending (retry count bumped). Each expiry
  /// re-queues an index exactly once — a second expire() call at the same
  /// instant returns nothing.
  [[nodiscard]] std::vector<Lease> expire(std::uint64_t now_ms);

  /// Re-queues a dead worker's uncompleted indices immediately (EOF / torn
  /// frame — no reason to wait for the deadline). Unknown ids are a no-op.
  void revoke(std::uint64_t lease_id);

  /// The soonest outstanding deadline (the coordinator's poll timeout);
  /// nullopt when no leases are outstanding.
  [[nodiscard]] std::optional<std::uint64_t> next_deadline_ms() const;

  /// True when every leasable index is done.
  [[nodiscard]] bool all_complete() const { return done_count_ == leasable_; }

  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] std::size_t done_count() const { return done_count_; }
  [[nodiscard]] std::size_t leasable_count() const { return leasable_; }
  [[nodiscard]] std::size_t outstanding_leases() const {
    return leases_.size();
  }

 private:
  /// Timeout for a range whose worst index has been re-queued `retries`
  /// times: lease_timeout_ms × backoff^retries, capped at max_timeout_ms.
  [[nodiscard]] std::uint64_t timeout_for(const Lease& lease) const;

  LeaseConfig config_;
  std::set<std::size_t> pending_;
  std::vector<bool> done_;
  std::vector<std::uint32_t> retries_;
  std::map<std::uint64_t, Lease> leases_;
  std::uint64_t next_lease_id_ = 1;
  std::size_t leasable_ = 0;
  std::size_t done_count_ = 0;
};

}  // namespace acute::fabric
