#include "fabric/coordinator.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <exception>
#include <set>
#include <utility>

#include "fabric/wire.hpp"
#include "report/checkpoint.hpp"
#include "sim/contracts.hpp"
#include "testbed/merge_frontier.hpp"

namespace acute::fabric {

using sim::expects;

namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One connected worker: its transport, handshake progress and the leases
/// it currently holds.
struct Coordinator::Conn {
  std::unique_ptr<Transport> transport;
  enum class State { handshaking, active, parked } state = State::handshaking;
  std::set<std::uint64_t> leases;
  std::size_t id = 0;  // stable worker number, for the log
  bool dead = false;
};

Coordinator::Coordinator(testbed::CampaignSpec spec, CoordinatorConfig config)
    : campaign_(std::move(spec)), config_(config) {}

testbed::CampaignReport Coordinator::run(
    std::vector<std::unique_ptr<Transport>> workers, UnixListener* listener) {
  const testbed::CampaignSpec& spec = campaign_.spec();
  const std::size_t shard_count = campaign_.scenario_count();
  // O(shards) to compute, so hash once here, not per hello.
  const std::uint64_t campaign_hash = spec.spec_hash();
  auto log = [this](const std::string& line) {
    if (config_.log != nullptr) {
      *config_.log << "fabric coordinator: " << line << std::endl;
    }
  };

  testbed::CampaignReport report;
  report.frontier.active = true;
  report.frontier.shard_count = shard_count;

  // Coordinator resume: identical to Campaign::run's frontier restore —
  // validate every record on disk, compact to one ascending line per
  // shard, then feed restored slots from the compacted file as the fold
  // reaches them. A killed coordinator loses nothing but in-flight leases.
  std::shared_ptr<report::CheckpointWriter> checkpoint;
  std::vector<bool> restored_set;
  std::unique_ptr<report::CheckpointReader> restored_feed;
  if (!spec.checkpoint_path.empty()) {
    const auto restore_start = std::chrono::steady_clock::now();
    restored_set.assign(shard_count, false);
    std::size_t restored_count = 0;
    report::for_each_checkpoint(
        spec.checkpoint_path, [&](report::ShardCheckpoint&& record) {
          const std::size_t index = record.summary.info.scenario_index;
          expects(index < shard_count,
                  "fabric coordinator: checkpoint does not match this "
                  "campaign (shard out of range)");
          expects(record.summary.info.shard_seed ==
                      testbed::Campaign::shard_seed(spec.seed, index),
                  "fabric coordinator: checkpoint does not match this "
                  "campaign (seed mismatch)");
          expects(record.spec_hash ==
                      spec.shard_hash(campaign_.scenario_at(index)),
                  "fabric coordinator: checkpoint does not match this "
                  "campaign (spec edited since the checkpoint was written)");
          if (!restored_set[index]) {
            restored_set[index] = true;
            ++restored_count;
          }
        });
    if (restored_count > 0) {
      report::compact_checkpoint(spec.checkpoint_path);
      log("restored " + std::to_string(restored_count) +
          " shards from checkpoint");
    }
    restored_feed =
        std::make_unique<report::CheckpointReader>(spec.checkpoint_path);
    checkpoint =
        std::make_shared<report::CheckpointWriter>(spec.checkpoint_path);
    report.stage.restore =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      restore_start)
            .count();
  }

  // Shard classification, exactly as Campaign::run: restored shards feed
  // the fold from disk, at most max_shards pending ones become leasable,
  // the capped tail is skipped.
  std::vector<bool> leasable(shard_count, false);
  std::vector<testbed::MergeFrontier::Slot> slots(
      shard_count, testbed::MergeFrontier::Slot::skipped);
  std::size_t leasable_count = 0;
  for (std::size_t i = 0; i < shard_count; ++i) {
    if (!restored_set.empty() && restored_set[i]) {
      slots[i] = testbed::MergeFrontier::Slot::restored;
      continue;
    }
    if (spec.max_shards > 0 && leasable_count == spec.max_shards) continue;
    slots[i] = testbed::MergeFrontier::Slot::fresh;
    leasable[i] = true;
    ++leasable_count;
  }
  auto feed = [reader = restored_feed.get()](std::size_t expected_index) {
    report::ShardCheckpoint record;
    expects(reader != nullptr && reader->next(record),
            "fabric coordinator: compacted checkpoint exhausted before all "
            "restored shards were folded");
    expects(record.summary.info.scenario_index == expected_index,
            "fabric coordinator: compacted checkpoint out of order");
    return testbed::shard_result_from_checkpoint(std::move(record));
  };
  testbed::MergeFrontier frontier(std::move(slots), std::move(feed),
                                  report.frontier);
  LeaseTable table(std::move(leasable), config_.lease);

  std::vector<std::unique_ptr<Conn>> conns;
  std::size_t next_worker_id = 0;
  for (std::unique_ptr<Transport>& transport : workers) {
    auto conn = std::make_unique<Conn>();
    conn->transport = std::move(transport);
    conn->id = next_worker_id++;
    conns.push_back(std::move(conn));
  }

  // Grants one lease (or parks the worker) — the only way work leaves the
  // table. Throws whatever the transport throws; callers route that to the
  // death path.
  auto try_grant = [&](Conn& conn) {
    const std::optional<Lease> lease = table.grant(now_ms());
    if (!lease.has_value()) {
      write_frame(*conn.transport, FrameType::idle);
      conn.state = Conn::State::parked;
      return;
    }
    LeaseGrantBody body{lease->id, lease->begin, lease->end};
    try {
      write_frame(*conn.transport, FrameType::lease_grant,
                  encode_lease_grant(body));
    } catch (...) {
      // The worker died between asking and receiving: the grant never
      // reached anyone, so reclaim it NOW instead of waiting out a
      // deadline nobody will ever heartbeat.
      table.revoke(lease->id);
      log("worker " + std::to_string(conn.id) +
          " died before receiving lease " + std::to_string(lease->id) +
          "; re-leasing [" + std::to_string(lease->begin) + ", " +
          std::to_string(lease->end) + ")");
      throw;
    }
    conn.leases.insert(lease->id);
    conn.state = Conn::State::active;
    ++stats_.leases_granted;
  };

  auto bury = [&](Conn& conn, const char* cause) {
    conn.dead = true;
    std::size_t returned = 0;
    for (const std::uint64_t id : conn.leases) {
      const std::size_t before = table.pending_count();
      table.revoke(id);
      returned += table.pending_count() - before;
    }
    const bool had_leases = !conn.leases.empty();
    conn.leases.clear();
    if (conn.state != Conn::State::handshaking || had_leases) {
      ++stats_.workers_died;
    }
    log("worker " + std::to_string(conn.id) + " " + cause +
        (returned > 0
             ? "; re-leasing " + std::to_string(returned) + " shards"
             : ""));
  };

  // Handles exactly one frame from `conn`; throws on torn frames (the
  // caller buries the worker).
  auto handle_frame = [&](Conn& conn) {
    Frame frame;
    if (!read_frame(*conn.transport, frame)) {
      bury(conn, "closed its connection");
      return;
    }
    switch (frame.type) {
      case FrameType::hello: {
        const HelloBody hello = decode_hello(frame.payload);
        std::string why;
        if (hello.protocol != kProtocolVersion) {
          why = "protocol version mismatch";
        } else if (hello.spec_hash != campaign_hash) {
          why = "campaign spec (grid) hash mismatch";
        } else if (hello.seed != spec.seed) {
          why = "campaign seed mismatch";
        } else if (hello.shard_count != shard_count) {
          why = "shard count mismatch";
        }
        if (!why.empty()) {
          ++stats_.workers_rejected;
          log("REJECTED worker " + std::to_string(conn.id) + ": " + why);
          write_frame(*conn.transport, FrameType::reject, why);
          conn.dead = true;
          return;
        }
        ++stats_.workers_joined;
        log("worker " + std::to_string(conn.id) + " joined");
        write_frame(*conn.transport, FrameType::hello_ok);
        conn.state = Conn::State::active;
        break;
      }
      case FrameType::lease_request:
        expects(conn.state == Conn::State::active,
                "fabric coordinator: lease_request before handshake");
        try_grant(conn);
        break;
      case FrameType::heartbeat:
        // False (unknown lease) means the lease already expired and was
        // re-leased; the stalled worker's completions arrive as harmless
        // duplicates, so nothing to do here.
        (void)table.heartbeat(decode_lease_id(frame.payload), now_ms());
        break;
      case FrameType::shard_done: {
        const ShardDoneBody done = decode_shard_done(frame.payload);
        report::ShardCheckpoint record;
        expects(report::parse_checkpoint_record(done.record_line, record),
                "fabric coordinator: shard_done carried a torn record");
        const std::size_t index = record.summary.info.scenario_index;
        expects(index < shard_count,
                "fabric coordinator: shard_done index out of range");
        expects(record.summary.info.shard_seed ==
                    testbed::Campaign::shard_seed(spec.seed, index),
                "fabric coordinator: shard_done seed mismatch");
        expects(record.spec_hash ==
                    spec.shard_hash(campaign_.scenario_at(index)),
                "fabric coordinator: shard_done spec hash mismatch");
        // Checkpoint first (matching the single-process sink order:
        // durable before merged), every arrival — compaction's last-wins
        // rule collapses duplicates exactly as it does for a re-run shard.
        if (checkpoint != nullptr) checkpoint->append(record);
        if (table.complete(index)) {
          frontier.submit(index,
                          testbed::shard_result_from_checkpoint(
                              std::move(record)));
          ++stats_.shards_merged;
        } else {
          // The re-lease race: another worker already delivered this index.
          // Determinism makes both copies bit-identical, so dropping the
          // late one loses nothing.
          ++stats_.duplicate_shards;
          log("duplicate completion of shard " + std::to_string(index) +
              " (re-lease race; merged copy wins)");
        }
        break;
      }
      case FrameType::lease_done:
        table.finish(decode_lease_id(frame.payload));
        conn.leases.erase(decode_lease_id(frame.payload));
        break;
      default:
        expects(false, "fabric coordinator: unexpected frame from worker");
    }
  };

  while (!table.all_complete()) {
    // Expired leases (stalled or slow workers) go back to pending with
    // backoff; their holders keep running — late results dedupe.
    for (const Lease& lease : table.expire(now_ms())) {
      ++stats_.leases_expired;
      log("lease " + std::to_string(lease.id) + " [" +
          std::to_string(lease.begin) + ", " + std::to_string(lease.end) +
          ") expired without heartbeat; re-leasing");
      for (std::unique_ptr<Conn>& conn : conns) conn->leases.erase(lease.id);
    }

    // Push re-queued work to parked workers instead of waiting for them to
    // ask again (they block after idle by design).
    for (std::unique_ptr<Conn>& conn : conns) {
      if (conn->dead || conn->state != Conn::State::parked) continue;
      if (table.pending_count() == 0) break;
      try {
        try_grant(*conn);
      } catch (const sim::ContractViolation&) {
        bury(*conn, "died while being granted a lease");
      }
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const std::unique_ptr<Conn>& conn) {
                                 return conn->dead;
                               }),
                conns.end());
    if (table.all_complete()) break;
    expects(!conns.empty() || listener != nullptr,
            "fabric coordinator: every worker is gone (and no listener "
            "remains) with shards still pending");

    std::vector<pollfd> fds;
    std::vector<Conn*> fd_conns;
    if (listener != nullptr) {
      fds.push_back(pollfd{listener->fd(), POLLIN, 0});
      fd_conns.push_back(nullptr);
    }
    for (std::unique_ptr<Conn>& conn : conns) {
      fds.push_back(pollfd{conn->transport->fd(), POLLIN, 0});
      fd_conns.push_back(conn.get());
    }
    int timeout = -1;
    if (const auto deadline = table.next_deadline_ms(); deadline.has_value()) {
      const std::uint64_t now = now_ms();
      timeout = *deadline <= now
                    ? 0
                    : static_cast<int>(std::min<std::uint64_t>(
                          *deadline - now, 60'000));
    }
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    expects(ready >= 0 || errno == EINTR, "fabric coordinator: poll failed");
    if (ready <= 0) continue;  // timeout: loop to expire leases

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (fd_conns[i] == nullptr) {
        auto conn = std::make_unique<Conn>();
        conn->transport = listener->accept();
        conn->id = next_worker_id++;
        conns.push_back(std::move(conn));
        continue;
      }
      Conn& conn = *fd_conns[i];
      if (conn.dead) continue;
      try {
        handle_frame(conn);
      } catch (const sim::ContractViolation& violation) {
        // Torn frame / malformed record: that worker is compromised, the
        // campaign is not. Loud, buried, work re-leased.
        log(std::string("worker ") + std::to_string(conn.id) +
            " sent a torn or invalid frame: " + violation.what());
        bury(conn, "is being dropped after a torn frame");
      }
      if (table.all_complete()) break;
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const std::unique_ptr<Conn>& conn) {
                                 return conn->dead;
                               }),
                conns.end());
  }

  // Campaign complete: release the fleet (best effort — a worker killed
  // between its last shard and here is indistinguishable from one that
  // left) and seal the merge + checkpoint.
  for (std::unique_ptr<Conn>& conn : conns) {
    try {
      write_frame(*conn->transport, FrameType::shutdown);
    } catch (const sim::ContractViolation&) {
      // Already gone; the work is done, nothing to re-lease.
    }
  }
  frontier.finalize();
  report.stage.merge = frontier.fold_seconds();
  if (checkpoint != nullptr) {
    checkpoint.reset();  // flush before the compaction rewrite
    report::compact_checkpoint(spec.checkpoint_path);
  }
  log("campaign complete: " + std::to_string(report.frontier.completed) +
      "/" + std::to_string(shard_count) + " shards merged, " +
      std::to_string(stats_.leases_granted) + " leases, " +
      std::to_string(stats_.duplicate_shards) + " duplicates");
  return report;
}

}  // namespace acute::fabric
