// The fabric worker: a leased-range shard executor with no merge of its own.
//
// A worker holds the same CampaignSpec as the coordinator (the hello
// handshake proves it: CampaignSpec::spec_hash() + seed + shard count must
// all match, or the coordinator rejects loudly), runs whatever scenario
// ranges it is leased through Campaign::run_shard_record on one warm
// ShardContext, and streams each shard back as its ckpt2 record line. It
// never touches a checkpoint file and never merges — persistence and the
// in-order fold belong to the coordinator, so any number of workers can
// come and go without owning campaign state.
//
// Crash model: a worker that dies mid-lease simply disappears — the
// coordinator sees EOF, re-leases the uncompleted range, and the replacing
// worker reproduces bit-identical records (shards are pure functions of
// (spec, seed, index)). WorkerConfig::max_shards is the test seam for
// exactly that: stop after N shards *without* lease_done, closing the
// transport the same way SIGKILL would.
#pragma once

#include <cstddef>

#include "fabric/transport.hpp"
#include "testbed/campaign.hpp"

namespace acute::fabric {

struct WorkerConfig {
  /// 0 = serve until the coordinator shuts us down. N > 0: return after
  /// running N shards, mid-lease and without ceremony — the simulated
  /// worker death used by the fault-injection tests.
  std::size_t max_shards = 0;
};

class Worker {
 public:
  /// `spec` must describe the same campaign as the coordinator's (the
  /// handshake enforces it). Checkpoint/sink settings are ignored — workers
  /// execute, they do not persist.
  explicit Worker(testbed::CampaignSpec spec, WorkerConfig config = {});

  /// Serves leases over `transport` until the coordinator sends shutdown
  /// (or max_shards triggers the simulated death). Returns shards run.
  /// Contract violation on a torn frame or a handshake reject — a worker
  /// talking to a confused or mismatched coordinator must die loudly, not
  /// idle forever.
  std::size_t run(Transport& transport);

 private:
  testbed::Campaign campaign_;
  WorkerConfig config_;
};

}  // namespace acute::fabric
