// Byte transports for the campaign fabric: how coordinator and worker talk.
//
// The wire codec (fabric/wire.hpp) is transport-agnostic: anything that can
// move ordered bytes and report end-of-stream carries the protocol. This
// file provides the local backends — a socketpair "pipe" transport for
// in-process tests and forked workers, and a Unix-domain listener for
// separate coordinator/worker processes — behind one Transport interface so
// a TCP backend can slot in without touching the protocol or the fabric
// logic above it.
//
// Failure surface: send/recv on a peer that died report through the normal
// return/throw paths (sends use MSG_NOSIGNAL, so a dead peer can never
// SIGPIPE-kill the process). A clean close shows up as recv_some() == 0 at
// a frame boundary; the frame layer decides whether that EOF is graceful
// (between frames) or torn (inside one).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>

namespace acute::fabric {

/// An ordered byte stream to one peer. Implementations own their endpoint
/// and release it on destruction.
class Transport {
 public:
  virtual ~Transport() = default;
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Writes all `size` bytes (looping over short writes). Contract
  /// violation when the peer is gone — the caller treats that as the peer's
  /// death, never as data loss.
  virtual void send_all(const void* data, std::size_t size) = 0;

  /// Reads up to `size` bytes, blocking until at least one arrives; returns
  /// the count read, 0 on end-of-stream (peer closed).
  virtual std::size_t recv_some(void* data, std::size_t size) = 0;

  /// The pollable descriptor (coordinator multiplexing); -1 when the
  /// backend has none.
  [[nodiscard]] virtual int fd() const = 0;
};

/// Transport over an owned socket descriptor (socketpair or Unix socket).
class FdTransport final : public Transport {
 public:
  /// Takes ownership of `fd` (closed on destruction).
  explicit FdTransport(int fd);
  ~FdTransport() override;

  void send_all(const void* data, std::size_t size) override;
  std::size_t recv_some(void* data, std::size_t size) override;
  [[nodiscard]] int fd() const override { return fd_; }

 private:
  int fd_;
};

/// A connected local pair — the "pipe transport": first element for the
/// coordinator side, second for the worker (the order is a convention, the
/// two ends are symmetric). Survives fork(): hand one end to the child and
/// close it in the parent (FdTransport's destructor does) for the classic
/// forked-worker topology.
[[nodiscard]] std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
transport_pair();

/// Unix-domain listener for separate coordinator/worker processes. Binds
/// and listens on construction (replacing a stale socket file from a
/// previous run), unlinks the path on destruction.
class UnixListener {
 public:
  explicit UnixListener(std::string path);
  ~UnixListener();
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Accepts one connection (blocking).
  [[nodiscard]] std::unique_ptr<Transport> accept();

  /// The listening descriptor (poll for acceptability).
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_;
};

/// Connects to a UnixListener's path; retries briefly while the coordinator
/// is still binding (worker processes often start first in scripts).
[[nodiscard]] std::unique_ptr<Transport> unix_connect(const std::string& path);

}  // namespace acute::fabric
