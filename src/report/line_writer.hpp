// The shared line-oriented file backend of the streaming exports.
//
// Both durable outputs of the pipeline — the JSONL export and the
// checkpoint — are files of independent '\n'-terminated records appended
// concurrently by per-shard sinks. LineWriter owns the mechanism once:
// locked atomic block appends with a flush per append (a kill tears at
// most the record being written), and, when opened for append, healing a
// previous kill's torn final line so later records never glue onto it.
#pragma once

#include <memory>
#include <mutex>
#include <string>

namespace acute::report {

class LineWriter {
 public:
  /// Opens `path` — truncating, or appending with append=true (healing a
  /// torn final line first). Contract violation when unwritable.
  LineWriter(std::string path, bool append);
  ~LineWriter();

  LineWriter(const LineWriter&) = delete;
  LineWriter& operator=(const LineWriter&) = delete;

  /// Appends `block` (complete '\n'-terminated lines) atomically and
  /// flushes.
  void append_block(const std::string& block);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::mutex mutex_;
  std::string path_;
};

}  // namespace acute::report
