// The one duplicate-shard rule of the results pipeline: LAST claim wins.
//
// Several surfaces can observe more than one record for the same scenario
// index — a checkpoint file appended across kill/resume ticks, the fabric
// coordinator receiving a shard from both the original lease holder and the
// worker the range was re-leased to after an expiry. They all resolve the
// conflict with the same rule: among records claiming the same scenario
// index, the one observed last wins, and winners are consumed in ascending
// scenario order (the campaign's canonical merge order). Because a shard's
// outcome is a pure function of (spec, campaign seed, index), every claimant
// carries bit-identical bytes, so "last wins" is an arbitrary-but-fixed
// tiebreak, not a data decision — what matters is that every consumer picks
// the SAME winner, which is why the rule lives in exactly one place.
//
// Users: report::compact_checkpoint (both overloads), Campaign::run's
// buffered checkpoint restore, and the fabric coordinator's restore path.
// The frontier's restored-slot feed reads a compact_checkpoint output file,
// so it inherits the rule through the compaction rather than re-deriving it.
#pragma once

#include <cstddef>
#include <map>
#include <utility>

namespace acute::report {

/// Ordered last-wins accumulator: claim() overwrites any previous value for
/// the index; for_each() visits the winners in ascending scenario order.
template <typename Value>
class LatestWinsMerge {
 public:
  /// Records `value` as the current winner for `scenario_index`,
  /// overwriting any earlier claim (the last-wins rule).
  void claim(std::size_t scenario_index, Value value) {
    latest_.insert_or_assign(scenario_index, std::move(value));
  }

  /// Distinct scenario indices claimed so far.
  [[nodiscard]] std::size_t size() const { return latest_.size(); }
  [[nodiscard]] bool empty() const { return latest_.empty(); }

  /// Applies `fn(scenario_index, value)` to every winner, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [index, value] : latest_) fn(index, value);
  }

 private:
  std::map<std::size_t, Value> latest_;
};

}  // namespace acute::report
