// ResultSink: the pluggable consumer side of the streaming results API.
//
// Campaign::run_shard builds one sink chain per shard — the built-in
// DigestSink/SampleBufferSink that back the CampaignReport compatibility
// surface, a CheckpointSink when the campaign checkpoints, plus whatever
// CampaignSpec::sinks (a SinkFactory) returns — and delivers the shard's
// event stream through it.
//
// Delivery contract (what a sink may rely on):
//   * Exactly one shard_started(info), first.
//   * One probe_completed() per scheduled probe, in **canonical order**:
//     phones in scenario order, probes in schedule-index order within each
//     phone — the same order the legacy buffered sample vectors used, so
//     order-sensitive folds (t-digests) reproduce the historical bits.
//     When a phone's workload enables a passive vantage point, its passive
//     events follow its active probes: first every Vantage::passive_sniffer
//     sample (estimator emission order), then every Vantage::passive_app
//     sample (monitor emission order), still within the phone's slot of the
//     phone-major sweep. Passive events never count toward probes_sent/lost.
//   * Exactly one shard_finished(summary), last, after the shard's work
//     counters are final.
//   * All three happen on the worker thread executing the shard; a sink
//     instance is owned by exactly one shard and needs no locking. Sinks of
//     different shards run concurrently — anything they *share* (an output
//     file, a writer) must synchronize internally (see JsonlWriter /
//     CheckpointWriter).
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "report/event.hpp"

namespace acute::report {

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  virtual void shard_started(const ShardInfo& /*info*/) {}
  virtual void probe_completed(const ProbeEvent& event) = 0;
  virtual void shard_finished(const ShardSummary& /*summary*/) {}
};

/// Builds the extra per-shard sinks of one shard. Invoked once per shard,
/// concurrently from worker threads — the factory itself must be
/// thread-safe (capture shared writers by shared_ptr; they lock internally).
using SinkFactory =
    std::function<std::vector<std::unique_ptr<ResultSink>>(const ShardInfo&)>;

/// Owns one shard's sinks and fans each event out to them in add() order.
/// Sinks can be owned (add) or borrowed (add_ref) — the shard-context pool
/// keeps its built-in sinks alive across shards and re-adds them by
/// reference, so only the genuinely per-shard sinks are heap-allocated.
class SinkChain {
 public:
  void add(std::unique_ptr<ResultSink> sink) {
    if (sink != nullptr) {
      sinks_.push_back(sink.get());
      owned_.push_back(std::move(sink));
    }
  }

  /// Adds a sink the caller keeps alive for the chain's lifetime (until the
  /// next clear()).
  void add_ref(ResultSink& sink) { sinks_.push_back(&sink); }

  /// Drops every sink (destroying the owned ones) but keeps the vectors'
  /// capacity — returns the chain to its freshly-constructed state.
  void clear() {
    sinks_.clear();
    owned_.clear();
  }

  void shard_started(const ShardInfo& info) {
    for (ResultSink* sink : sinks_) sink->shard_started(info);
  }
  void probe_completed(const ProbeEvent& event) {
    for (ResultSink* sink : sinks_) sink->probe_completed(event);
  }
  void shard_finished(const ShardSummary& summary) {
    for (ResultSink* sink : sinks_) sink->shard_finished(summary);
  }

  [[nodiscard]] std::size_t size() const { return sinks_.size(); }

 private:
  std::vector<ResultSink*> sinks_;
  std::vector<std::unique_ptr<ResultSink>> owned_;
};

}  // namespace acute::report
