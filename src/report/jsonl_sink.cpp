#include "report/jsonl_sink.hpp"

#include <cstdio>
#include <utility>

#include "sim/contracts.hpp"

namespace acute::report {

using sim::expects;

JsonlWriter::JsonlWriter(std::string path, bool append, std::size_t window)
    : writer_(std::move(path), append), window_(window) {
  expects(window_ > 0, "JsonlWriter reorder window must hold at least one "
                       "block");
}

JsonlWriter::~JsonlWriter() {
  // Safety net: a campaign that never finished (exception after partial
  // submits) may leave blocks stranded behind a gap. Flush them in
  // ascending sequence order rather than drop bytes on the floor — the
  // file stays set-complete even when the ordering contract is void.
  for (auto& [sequence, block] : held_) {
    if (!block.empty()) writer_.append_block(block);
  }
}

void JsonlWriter::drain_held() {
  auto it = held_.begin();
  while (it != held_.end() && it->first == next_release_) {
    if (!it->second.empty()) writer_.append_block(it->second);
    it = held_.erase(it);
    ++next_release_;
  }
}

void JsonlWriter::submit_block(std::size_t sequence, std::string block) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (sequence < next_release_) {
    // New invocation on a reused writer (resume ticks): sequences restart
    // at zero. The previous invocation released everything — each of its
    // sequences was submitted or abandoned — so the window must be empty.
    expects(held_.empty(),
            "JsonlWriter: sequence restarted with blocks still in flight");
    next_release_ = 0;
  }
  for (;;) {
    if (sequence == next_release_) {
      if (!block.empty()) writer_.append_block(block);
      ++next_release_;
      drain_held();
      window_open_.notify_all();
      return;
    }
    if (held_.size() < window_) {
      expects(held_.find(sequence) == held_.end(),
              "JsonlWriter: duplicate sequence submitted");
      held_.emplace(sequence, std::move(block));
      return;
    }
    window_open_.wait(lock);
  }
}

void JsonlWriter::reset_sequence() {
  const std::lock_guard<std::mutex> lock(mutex_);
  expects(held_.empty(),
          "JsonlWriter::reset_sequence with blocks still in flight");
  next_release_ = 0;
}

void JsonlWriter::abandon(std::size_t sequence) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sequence < next_release_) return;  // stale epoch — nothing waits on it
  if (sequence == next_release_) {
    ++next_release_;
    drain_held();
    window_open_.notify_all();
    return;
  }
  // Held as an empty block so release skips it without bytes. Deliberately
  // no window check: abandon runs during stack unwinding and must never
  // block.
  held_.emplace(sequence, std::string{});
}

JsonlExportSink::JsonlExportSink(std::shared_ptr<JsonlWriter> writer)
    : writer_(std::move(writer)) {
  expects(writer_ != nullptr, "JsonlExportSink requires a writer");
}

JsonlExportSink::~JsonlExportSink() {
  if (started_ && !finished_) writer_->abandon(info_.run_sequence);
}

void JsonlExportSink::shard_started(const ShardInfo& info) {
  info_ = info;
  started_ = true;
  block_.clear();
}

void JsonlExportSink::probe_completed(const ProbeEvent& event) {
  char line[512];
  int written = std::snprintf(
      line, sizeof line,
      "{\"scenario\":%zu,\"seed\":%llu,\"phone\":%zu,\"probe\":%d,"
      "\"tool\":\"%s\",\"vantage\":\"%s\",\"timed_out\":%s,\"rtt_ms\":%.12g",
      event.scenario_index, static_cast<unsigned long long>(info_.shard_seed),
      event.phone_index, event.probe_index, tools::grid_name(event.tool),
      to_string(event.vantage), event.timed_out ? "true" : "false",
      event.reported_rtt_ms);
  block_.append(line, static_cast<std::size_t>(written));
  if (event.layers.has_value()) {
    written = std::snprintf(
        line, sizeof line,
        ",\"du_ms\":%.12g,\"dk_ms\":%.12g,\"dv_ms\":%.12g,\"dn_ms\":%.12g",
        event.layers->du_ms, event.layers->dk_ms, event.layers->dv_ms,
        event.layers->dn_ms);
    block_.append(line, static_cast<std::size_t>(written));
  }
  block_.append("}\n");
}

void JsonlExportSink::shard_finished(const ShardSummary& /*summary*/) {
  finished_ = true;
  writer_->submit_block(info_.run_sequence, std::move(block_));
  block_ = std::string();
}

SinkFactory jsonl_sink_factory(std::shared_ptr<JsonlWriter> writer) {
  expects(writer != nullptr, "jsonl_sink_factory requires a writer");
  return [writer = std::move(writer)](const ShardInfo&) {
    std::vector<std::unique_ptr<ResultSink>> sinks;
    sinks.push_back(std::make_unique<JsonlExportSink>(writer));
    return sinks;
  };
}

}  // namespace acute::report
