#include "report/jsonl_sink.hpp"

#include <cstdio>
#include <utility>

#include "sim/contracts.hpp"

namespace acute::report {

using sim::expects;

JsonlExportSink::JsonlExportSink(std::shared_ptr<JsonlWriter> writer)
    : writer_(std::move(writer)) {
  expects(writer_ != nullptr, "JsonlExportSink requires a writer");
}

void JsonlExportSink::shard_started(const ShardInfo& info) {
  info_ = info;
  block_.clear();
}

void JsonlExportSink::probe_completed(const ProbeEvent& event) {
  char line[512];
  int written = std::snprintf(
      line, sizeof line,
      "{\"scenario\":%zu,\"seed\":%llu,\"phone\":%zu,\"probe\":%d,"
      "\"tool\":\"%s\",\"timed_out\":%s,\"rtt_ms\":%.12g",
      event.scenario_index, static_cast<unsigned long long>(info_.shard_seed),
      event.phone_index, event.probe_index, tools::grid_name(event.tool),
      event.timed_out ? "true" : "false", event.reported_rtt_ms);
  block_.append(line, static_cast<std::size_t>(written));
  if (event.layers.has_value()) {
    written = std::snprintf(
        line, sizeof line,
        ",\"du_ms\":%.12g,\"dk_ms\":%.12g,\"dv_ms\":%.12g,\"dn_ms\":%.12g",
        event.layers->du_ms, event.layers->dk_ms, event.layers->dv_ms,
        event.layers->dn_ms);
    block_.append(line, static_cast<std::size_t>(written));
  }
  block_.append("}\n");
}

void JsonlExportSink::shard_finished(const ShardSummary& /*summary*/) {
  writer_->append_block(block_);
  block_.clear();
  block_.shrink_to_fit();
}

SinkFactory jsonl_sink_factory(std::shared_ptr<JsonlWriter> writer) {
  expects(writer != nullptr, "jsonl_sink_factory requires a writer");
  return [writer = std::move(writer)](const ShardInfo&) {
    std::vector<std::unique_ptr<ResultSink>> sinks;
    sinks.push_back(std::make_unique<JsonlExportSink>(writer));
    return sinks;
  };
}

}  // namespace acute::report
