// DigestSink: the bounded-memory default of the results pipeline.
//
// Folds a shard's probe events into fixed-size per-workload
// stats::MergingDigest accumulators — what used to be the hard-coded
// keep_samples=false path of ShardResult. Memory is O(tool kinds), not
// O(probes), and the fold is a pure function of the (canonically ordered)
// event stream, so shard digests are bit-identical for any worker count.
#pragma once

#include <cstddef>
#include <array>
#include <optional>
#include <vector>

#include "report/sink.hpp"
#include "stats/digest.hpp"
#include "tools/factory.hpp"

namespace acute::report {

/// Streaming accumulator for one workload kind: fixed-size digests of the
/// reported RTTs and the Fig. 1 layer decomposition, plus exact counters.
/// All sample units are **milliseconds**.
struct WorkloadDigest {
  /// The tool these samples came from.
  tools::ToolKind tool = tools::ToolKind::icmp_ping;
  /// Probes sent / lost by this workload (exact).
  std::size_t probes = 0;
  std::size_t lost = 0;
  /// Tool-reported RTTs of the successful probes (ms).
  stats::MergingDigest reported_rtt_ms;
  /// Fig. 1 decomposition of the fully-stamped probes (ms; WiFi phones
  /// only — cellular probes lack driver/air stamps).
  stats::MergingDigest du_ms, dk_ms, dv_ms, dn_ms;
  /// Passive vantage points observing the same flows (zero-injected RTT
  /// samples; see report::Vantage). Sample counts are exact and separate
  /// from `probes`/`lost` — passive samples are not probes.
  std::size_t passive_sniffer_samples = 0;
  std::size_t passive_app_samples = 0;
  stats::MergingDigest passive_sniffer_rtt_ms, passive_app_rtt_ms;

  /// Folds `other` (same tool kind) into this accumulator.
  void merge(const WorkloadDigest& other);
  /// Consuming fold: bit-identical to merge(const&); adopts other's digest
  /// storage where possible and leaves `other` empty-but-valid with its
  /// heap buffers released (the frontier's per-shard free).
  void merge(WorkloadDigest&& other);
};

/// Group-by-ToolKind accumulator shared by the per-shard sink and the
/// campaign-report merge: slots are kind-indexed, so take() emits in
/// ascending ToolKind order — the documented ordering of
/// ShardResult::digests and CampaignReport::workload_digests().
class WorkloadFold {
 public:
  /// The accumulator for `kind`, created on first access.
  WorkloadDigest& slot(tools::ToolKind kind);

  /// The populated accumulators, ascending ToolKind. Leaves the fold empty.
  [[nodiscard]] std::vector<WorkloadDigest> take();

  /// Copies of the populated accumulators, ascending ToolKind; the fold
  /// keeps its state (the repeatable-read surface of campaign reports).
  /// Bit-identical to what take() would return.
  [[nodiscard]] std::vector<WorkloadDigest> snapshot() const;

  /// Folds one shard's take()-ordered digests into the campaign-level
  /// slots, consuming them: the canonical frontier step. Bit-identical to
  /// `for (d : digests) slot(d.tool).merge(d)` with copies.
  void fold_shard(std::vector<WorkloadDigest>&& digests);

 private:
  std::array<std::optional<WorkloadDigest>, tools::kToolKindCount> slots_;
};

/// The one probe-fold rule of the pipeline: counters always, reported RTT
/// for successful probes, layer digests for fully-stamped ones. DigestSink
/// and CheckpointSink share it, which is what makes a checkpointed shard's
/// digests the same bits as the in-memory report's.
void fold_probe(WorkloadFold& fold, const ProbeEvent& event);

class DigestSink : public ResultSink {
 public:
  void probe_completed(const ProbeEvent& event) override;

  /// The shard's per-workload accumulators, ascending ToolKind; call after
  /// the stream completes.
  [[nodiscard]] std::vector<WorkloadDigest> take_digests() {
    return fold_.take();
  }

  /// Discards any accumulated state (a take_digests() already leaves the
  /// sink empty; reset() covers the shard-that-threw case so a reused
  /// context never folds a dead shard's leftovers into the next one).
  void reset() { fold_ = WorkloadFold{}; }

 private:
  WorkloadFold fold_;
};

}  // namespace acute::report
