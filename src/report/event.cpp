#include "report/event.hpp"

namespace acute::report {

const char* to_string(Vantage vantage) {
  switch (vantage) {
    case Vantage::active:
      return "active";
    case Vantage::passive_sniffer:
      return "passive-sniffer";
    case Vantage::passive_app:
      return "passive-app";
  }
  return "?";
}

}  // namespace acute::report
