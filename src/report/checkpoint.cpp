#include "report/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "report/latest_wins.hpp"
#include "sim/contracts.hpp"
#include "stats/digest_io.hpp"

namespace acute::report {

using sim::expects;

void CheckpointWriter::append(const ShardCheckpoint& checkpoint) {
  // Render the whole record first so the locked append is one write: a
  // kill can tear at most the record's own line, never interleave shards.
  writer_.append_block(render_checkpoint_record(checkpoint));
}

std::string render_checkpoint_record(const ShardCheckpoint& checkpoint) {
  std::ostringstream line;
  const ShardSummary& s = checkpoint.summary;
  char hash_hex[17];
  std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                static_cast<unsigned long long>(checkpoint.spec_hash));
  line << "ckpt2 " << s.info.scenario_index << ' ' << s.info.shard_seed << ' '
       << hash_hex << ' ' << s.info.phone_count << ' ' << s.probes_sent << ' '
       << s.probes_lost << ' ' << s.frames_on_air << ' ' << s.events_fired
       << ' ';
  {
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(
                      stats::double_bits(s.sim_seconds)));
    line << hex;
  }
  line << ' ' << checkpoint.digests.size();
  for (const WorkloadDigest& digest : checkpoint.digests) {
    line << ' ' << tools::grid_name(digest.tool) << ' ' << digest.probes
         << ' ' << digest.lost << ' ';
    stats::write_digest(line, digest.reported_rtt_ms);
    line << ' ';
    stats::write_digest(line, digest.du_ms);
    line << ' ';
    stats::write_digest(line, digest.dk_ms);
    line << ' ';
    stats::write_digest(line, digest.dv_ms);
    line << ' ';
    stats::write_digest(line, digest.dn_ms);
    line << ' ' << digest.passive_sniffer_samples << ' '
         << digest.passive_app_samples << ' ';
    stats::write_digest(line, digest.passive_sniffer_rtt_ms);
    line << ' ';
    stats::write_digest(line, digest.passive_app_rtt_ms);
  }
  line << " end\n";
  return line.str();
}

namespace {

/// True when the line's last whitespace-separated token is the "end"
/// sentinel — the writer finished this record, so it is complete, whatever
/// else is wrong with it.
bool has_end_sentinel(const std::string& line) {
  const auto last = line.find_last_not_of(" \t\r\n");
  if (last == std::string::npos || line[last] != 'd') return false;
  if (last < 2 || line[last - 1] != 'n' || line[last - 2] != 'e') return false;
  return last == 2 || line[last - 3] == ' ' || line[last - 3] == '\t';
}

/// Parses one complete-record body; returns false on any malformation.
bool parse_record_body(const std::string& line, ShardCheckpoint& out) {
  std::istringstream in(line);
  std::string magic;
  in >> magic;
  if (magic != "ckpt2") return false;
  try {
    ShardSummary& s = out.summary;
    std::string hash_hex;
    std::string sim_bits;
    std::size_t digest_count = 0;
    in >> s.info.scenario_index >> s.info.shard_seed >> hash_hex >>
        s.info.phone_count >> s.probes_sent >> s.probes_lost >>
        s.frames_on_air >> s.events_fired >> sim_bits >> digest_count;
    if (!in || hash_hex.size() != 16 || sim_bits.size() != 16) return false;
    out.spec_hash = std::strtoull(hash_hex.c_str(), nullptr, 16);
    s.sim_seconds = stats::double_from_bits(
        std::strtoull(sim_bits.c_str(), nullptr, 16));
    out.digests.clear();
    out.digests.reserve(digest_count);
    for (std::size_t i = 0; i < digest_count; ++i) {
      WorkloadDigest digest;
      std::string tool;
      in >> tool >> digest.probes >> digest.lost;
      if (!in) return false;
      const auto kind = tools::parse_tool_kind(tool);
      if (!kind.has_value()) return false;
      digest.tool = *kind;
      digest.reported_rtt_ms = stats::read_digest(in);
      digest.du_ms = stats::read_digest(in);
      digest.dk_ms = stats::read_digest(in);
      digest.dv_ms = stats::read_digest(in);
      digest.dn_ms = stats::read_digest(in);
      in >> digest.passive_sniffer_samples >> digest.passive_app_samples;
      if (!in) return false;
      digest.passive_sniffer_rtt_ms = stats::read_digest(in);
      digest.passive_app_rtt_ms = stats::read_digest(in);
      out.digests.push_back(std::move(digest));
    }
    std::string sentinel;
    in >> sentinel;
    return sentinel == "end";
  } catch (const sim::ContractViolation&) {
    return false;  // torn digest blob: treat the record as truncated
  }
}

/// fsyncs `path` through a throwaway read-only fd (fsync flushes the file's
/// dirty pages regardless of which descriptor requests it).
void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  expects(fd >= 0, "compact_checkpoint: cannot reopen temp file for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  expects(rc == 0, "compact_checkpoint: fsync of temp file failed");
}

/// Renames `temp` over `path` durably: the temp file's bytes are fsync'd
/// first — so a power cut cannot promote a file whose data never reached
/// the platter — and the containing directory is fsync'd after (best
/// effort: some filesystems refuse directory fds) so the rename itself
/// survives the cut.
void durable_replace(const std::string& temp, const std::string& path) {
  fsync_path(temp);
  // rename() replaces atomically on POSIX: readers see the old complete
  // file or the new complete file, never a prefix.
  expects(std::rename(temp.c_str(), path.c_str()) == 0,
          "compact_checkpoint: rename over checkpoint failed");
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

}  // namespace

bool parse_checkpoint_record(const std::string& line, ShardCheckpoint& out) {
  if (parse_record_body(line, out)) return true;
  expects(!has_end_sentinel(line),
          "checkpoint: complete record of an unknown kind or version "
          "(expected ckpt2) — refusing to silently skip it; delete or "
          "migrate the checkpoint file");
  return false;
}

void compact_checkpoint(const std::string& path,
                        const std::vector<ShardCheckpoint>& records) {
  // LatestWinsMerge is resume's restore rule, so the compacted file reads
  // like an uninterrupted ascending front-to-back sweep.
  LatestWinsMerge<const ShardCheckpoint*> latest;
  for (const ShardCheckpoint& record : records) {
    latest.claim(record.summary.info.scenario_index, &record);
  }
  const std::string temp = path + ".compact";
  {
    std::ofstream out(temp, std::ios::trunc);
    expects(out.is_open(), "compact_checkpoint: cannot open temp file");
    latest.for_each([&](std::size_t, const ShardCheckpoint* record) {
      out << render_checkpoint_record(*record);
    });
    out.flush();
    expects(out.good(), "compact_checkpoint: short write to temp file");
  }
  durable_replace(temp, path);
}

void compact_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return;  // nothing to compact
  // Pass 1: byte offset of each scenario's winning (last complete) record —
  // O(shards) offsets, not digests.
  LatestWinsMerge<std::streamoff> latest;
  {
    ShardCheckpoint record;
    std::string line;
    for (std::streamoff pos = in.tellg(); std::getline(in, line);
         pos = in.tellg()) {
      if (parse_checkpoint_record(line, record)) {
        latest.claim(record.summary.info.scenario_index, pos);
      }
    }
    in.clear();  // getline hit EOF; clear so the pass-2 seeks work
  }
  const std::string temp = path + ".compact";
  {
    std::ofstream out(temp, std::ios::trunc);
    expects(out.is_open(), "compact_checkpoint: cannot open temp file");
    ShardCheckpoint record;
    std::string line;
    latest.for_each([&](std::size_t index, std::streamoff pos) {
      in.seekg(pos);
      expects(std::getline(in, line).good() || in.eof(),
              "compact_checkpoint: checkpoint shrank during compaction");
      expects(parse_checkpoint_record(line, record),
              "compact_checkpoint: record vanished during compaction");
      expects(record.summary.info.scenario_index == index,
              "compact_checkpoint: record moved during compaction");
      out << render_checkpoint_record(record);
      in.clear();
    });
    out.flush();
    expects(out.good(), "compact_checkpoint: short write to temp file");
  }
  durable_replace(temp, path);
}

CheckpointReader::CheckpointReader(const std::string& path) : in_(path) {}

bool CheckpointReader::next(ShardCheckpoint& out) {
  while (std::getline(in_, line_)) {
    if (parse_checkpoint_record(line_, out)) return true;
  }
  return false;
}

void for_each_checkpoint(const std::string& path,
                         const std::function<void(ShardCheckpoint&&)>& fn) {
  CheckpointReader reader(path);
  ShardCheckpoint record;
  while (reader.next(record)) fn(std::move(record));
}

std::vector<ShardCheckpoint> load_checkpoint(const std::string& path) {
  std::vector<ShardCheckpoint> records;
  for_each_checkpoint(path, [&](ShardCheckpoint&& record) {
    records.push_back(std::move(record));
  });
  return records;
}

CheckpointSink::CheckpointSink(std::shared_ptr<CheckpointWriter> writer,
                               std::uint64_t spec_hash)
    : writer_(std::move(writer)), spec_hash_(spec_hash) {
  expects(writer_ != nullptr, "CheckpointSink requires a writer");
}

void CheckpointSink::probe_completed(const ProbeEvent& event) {
  // Deliberately its own fold (not a view of DigestSink's): the sink stays
  // self-contained for any chain composition, and fold_probe() guarantees
  // the persisted bits equal the report's. The duplicate work is ~100
  // digest adds per shard, noise next to the shard's simulation.
  fold_probe(fold_, event);
}

void CheckpointSink::shard_finished(const ShardSummary& summary) {
  ShardCheckpoint checkpoint;
  checkpoint.summary = summary;
  checkpoint.spec_hash = spec_hash_;
  checkpoint.digests = fold_.take();
  writer_->append(checkpoint);
}

}  // namespace acute::report
