// JsonlExportSink: bounded-memory streaming export of per-probe records.
//
// One JSON object per line, the format crowdsourcing backends (MopEye-style
// collectors) ingest. A shard's records are buffered as text while the
// shard runs (O(probes-per-shard) bytes, not O(campaign)), then appended to
// the shared file as one atomic block when the shard finishes — so lines of
// different shards never interleave, and a campaign's export never holds
// more than one in-flight shard per worker in memory.
//
// Record schema (keys always in this order; layer keys only when the probe
// was fully stamped):
//   {"scenario":N,"seed":N,"phone":N,"probe":N,"tool":"icmp-ping",
//    "timed_out":false,"rtt_ms":X,"du_ms":X,"dk_ms":X,"dv_ms":X,"dn_ms":X}
//
// Block append order is shard *completion* order: the record SET is
// deterministic for any worker count, byte order of the file is not —
// consumers key on the "scenario" field (scripts/check_jsonl_schema.py
// validates exactly this).
#pragma once

#include <memory>
#include <string>

#include "report/line_writer.hpp"
#include "report/sink.hpp"

namespace acute::report {

/// The shared, thread-safe file backend JsonlExportSinks of concurrent
/// shards append to. Construct once per campaign, hand to the SinkFactory
/// by shared_ptr.
class JsonlWriter {
 public:
  /// Opens `path` — truncating by default, appending with append=true (the
  /// resume case: a checkpointed sweep restarted with the same export path
  /// must extend the killed run's records, not destroy them; see
  /// examples/checkpoint_resume.cpp). Contract violation when unwritable.
  explicit JsonlWriter(std::string path, bool append = false)
      : writer_(std::move(path), append) {}

  /// Appends `block` (complete lines) atomically and flushes.
  void append_block(const std::string& block) { writer_.append_block(block); }

  [[nodiscard]] const std::string& path() const { return writer_.path(); }

 private:
  LineWriter writer_;
};

/// Per-shard sink: formats probe events into the schema above.
class JsonlExportSink : public ResultSink {
 public:
  explicit JsonlExportSink(std::shared_ptr<JsonlWriter> writer);

  void shard_started(const ShardInfo& info) override;
  void probe_completed(const ProbeEvent& event) override;
  void shard_finished(const ShardSummary& summary) override;

 private:
  std::shared_ptr<JsonlWriter> writer_;
  ShardInfo info_;
  std::string block_;
};

/// Convenience SinkFactory: one JsonlExportSink per shard, all appending to
/// `writer`. Drop-in value for CampaignSpec::sinks.
[[nodiscard]] SinkFactory jsonl_sink_factory(
    std::shared_ptr<JsonlWriter> writer);

}  // namespace acute::report
