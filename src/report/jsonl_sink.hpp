// JsonlExportSink: bounded-memory streaming export of per-probe records.
//
// One JSON object per line, the format crowdsourcing backends (MopEye-style
// collectors) ingest. A shard's records are buffered as text while the
// shard runs (O(probes-per-shard) bytes, not O(campaign)), then appended to
// the shared file as one atomic block when the shard finishes — so lines of
// different shards never interleave.
//
// Record schema (keys always in this order; layer keys only when the probe
// was fully stamped):
//   {"scenario":N,"seed":N,"phone":N,"probe":N,"tool":"icmp-ping",
//    "timed_out":false,"rtt_ms":X,"du_ms":X,"dk_ms":X,"dv_ms":X,"dn_ms":X}
//
// Block append order is *scenario order*, for any worker count: shards
// carry a dense run sequence (ShardInfo::run_sequence) and the writer holds
// out-of-order blocks in a bounded reorder window, releasing them
// gap-free. The export file is therefore byte-deterministic across worker
// counts — not merely set-deterministic — at a memory cost of at most
// `window` held shard blocks. The flip side of ordered release: a hard
// kill can lose up to `window` finished-but-unreleased blocks whose shards
// the checkpoint already recorded, so on resume those shards' records are
// absent from the export (the checkpoint, not the JSONL file, is the
// source of truth; a graceful max_shards tick flushes everything).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "report/line_writer.hpp"
#include "report/sink.hpp"

namespace acute::report {

/// The shared, thread-safe file backend JsonlExportSinks of concurrent
/// shards append to. Construct once per campaign, hand to the SinkFactory
/// by shared_ptr.
class JsonlWriter {
 public:
  /// Opens `path` — truncating by default, appending with append=true (the
  /// resume case: a checkpointed sweep restarted with the same export path
  /// must extend the killed run's records, not destroy them; see
  /// examples/checkpoint_resume.cpp). `window` bounds the reorder buffer:
  /// at most that many out-of-order shard blocks are held in memory before
  /// submitters block. Contract violation when unwritable.
  explicit JsonlWriter(std::string path, bool append = false,
                       std::size_t window = 64);
  ~JsonlWriter();

  /// Appends `block` (complete lines) atomically and flushes, bypassing the
  /// reorder window. For unsequenced callers only — do not mix with
  /// submit_block within one campaign invocation.
  void append_block(const std::string& block) { writer_.append_block(block); }

  /// Hands over one shard's complete block for in-order release. Sequences
  /// are the invocation-dense ShardInfo::run_sequence values: each appears
  /// exactly once, and blocks are written to the file in ascending sequence
  /// order regardless of arrival order. Blocks from the `window` sequences
  /// past the release point are buffered; a submitter further ahead blocks
  /// until the window drains (the release point's owner never blocks, so
  /// the pipeline cannot deadlock). A sequence restarting at a value below
  /// the release point begins a new invocation: the window must be empty
  /// (it always is once every prior sequence was submitted or abandoned)
  /// and release restarts from zero.
  void submit_block(std::size_t sequence, std::string block);

  /// Releases `sequence` with no bytes: the shard died before finishing, so
  /// later shards' blocks must not wait on it forever. Never blocks.
  void abandon(std::size_t sequence);

  /// Starts a new invocation epoch: release restarts at sequence zero.
  /// Call between Campaign::run invocations that share this writer (the
  /// in-process incremental-tick pattern) — the auto-detected restart in
  /// submit_block only triggers once a below-release-point sequence
  /// arrives, which under multi-worker skew can be later than the first
  /// submit of the new invocation. Requires the window to be empty (it is
  /// once the previous run() returned).
  void reset_sequence();

  [[nodiscard]] const std::string& path() const { return writer_.path(); }

 private:
  /// Writes every held block consecutive with next_release_; caller holds
  /// mutex_.
  void drain_held();

  LineWriter writer_;
  std::mutex mutex_;
  std::condition_variable window_open_;
  /// Out-of-order blocks keyed by sequence (ascending iteration = release
  /// order). Abandoned sequences are held as empty blocks.
  std::map<std::size_t, std::string> held_;
  std::size_t next_release_ = 0;
  std::size_t window_;
};

/// Per-shard sink: formats probe events into the schema above. If the shard
/// dies before shard_finished (a worker exception), the sink's destructor
/// abandons its sequence so the writer's reorder window keeps draining.
class JsonlExportSink : public ResultSink {
 public:
  explicit JsonlExportSink(std::shared_ptr<JsonlWriter> writer);
  ~JsonlExportSink() override;

  void shard_started(const ShardInfo& info) override;
  void probe_completed(const ProbeEvent& event) override;
  void shard_finished(const ShardSummary& summary) override;

 private:
  std::shared_ptr<JsonlWriter> writer_;
  ShardInfo info_;
  std::string block_;
  bool started_ = false;
  bool finished_ = false;
};

/// Convenience SinkFactory: one JsonlExportSink per shard, all appending to
/// `writer`. Drop-in value for CampaignSpec::sinks.
[[nodiscard]] SinkFactory jsonl_sink_factory(
    std::shared_ptr<JsonlWriter> writer);

}  // namespace acute::report
