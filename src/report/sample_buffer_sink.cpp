#include "report/sample_buffer_sink.hpp"

namespace acute::report {

void SampleBufferSink::probe_completed(const ProbeEvent& event) {
  if (event.vantage == Vantage::passive_sniffer) {
    buffers_.passive_sniffer_rtt_ms.push_back(event.reported_rtt_ms);
    return;
  }
  if (event.vantage == Vantage::passive_app) {
    buffers_.passive_app_rtt_ms.push_back(event.reported_rtt_ms);
    return;
  }
  if (event.timed_out) return;
  buffers_.reported_rtt_ms.push_back(event.reported_rtt_ms);
  if (event.layers.has_value()) {
    buffers_.du_ms.push_back(event.layers->du_ms);
    buffers_.dk_ms.push_back(event.layers->dk_ms);
    buffers_.dv_ms.push_back(event.layers->dv_ms);
    buffers_.dn_ms.push_back(event.layers->dn_ms);
  }
}

}  // namespace acute::report
