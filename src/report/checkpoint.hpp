// Campaign checkpoint/resume: persist completed shards, skip them on rerun.
//
// A killed 10^5-scenario sweep must restart from the last completed shard,
// and the resumed campaign's merged digests must be **bit-identical** to an
// uninterrupted run for any worker count. Three pieces make that hold:
//
//   * CheckpointSink folds a shard's event stream into per-workload digests
//     (the same fold, same insertion order as DigestSink — so the same
//     bits) and appends one self-contained record per completed shard.
//   * Records serialize doubles as IEEE-754 bit patterns (stats/digest_io),
//     so a restored digest merges exactly like the one that was dropped.
//   * load_checkpoint() ignores records without the trailing "end" sentinel
//     — a writer killed mid-append loses at most that one shard, which
//     simply reruns. A *complete* record (sentinel present) that fails to
//     parse — an unknown magic/version, an unknown tool or vantage kind —
//     is a loud contract violation instead: silently re-running it would
//     silently double-merge whatever the unknown record already folded.
//
// File format, one record per line (space-separated tokens; integers
// decimal, spec hash and doubles 16-hex-digit):
//   ckpt2 <scenario_index> <shard_seed> <spec_hash> <phones> <sent> <lost>
//   <frames> <events> <sim_seconds> <ndigests> [<tool> <probes> <lost>
//   <rtt-digest> <du-digest> <dk-digest> <dv-digest> <dn-digest>
//   <passive-sniffer-samples> <passive-app-samples>
//   <passive-sniffer-digest> <passive-app-digest>]... end
// (ckpt1, the pre-passive format, is an unknown kind: resuming a campaign
// against a ckpt1 file fails loudly rather than guessing at its digests.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "report/digest_sink.hpp"
#include "report/line_writer.hpp"
#include "report/sink.hpp"

namespace acute::report {

/// One completed shard, as persisted: exact counters + per-workload digests
/// (ascending ToolKind). Raw sample vectors are NOT checkpointed — resume
/// restores the streaming surface, not keep_samples buffers.
struct ShardCheckpoint {
  ShardSummary summary;
  /// Fingerprint of the spec that produced this shard (Campaign hashes its
  /// probe schedule + the scenario's shape); resume rejects records whose
  /// hash does not match the current spec, so an edited campaign cannot
  /// silently absorb stale shards.
  std::uint64_t spec_hash = 0;
  std::vector<WorkloadDigest> digests;
};

/// Shared, thread-safe appender. Construct after load_checkpoint() — opening
/// is append-mode (healing a previous kill's torn final line), so existing
/// records survive.
class CheckpointWriter {
 public:
  /// Contract violation when `path` is unwritable.
  explicit CheckpointWriter(std::string path)
      : writer_(std::move(path), /*append=*/true) {}

  /// Appends one record atomically and flushes.
  void append(const ShardCheckpoint& checkpoint);

  [[nodiscard]] const std::string& path() const { return writer_.path(); }

 private:
  LineWriter writer_;
};

/// Streaming cursor over the records at `path`, in file order. Holds one
/// record's worth of state: the campaign restore folds a compacted file
/// (ascending-unique scenario order) through this instead of materializing
/// an O(shards) vector. A missing file is an immediately-exhausted cursor.
/// Records appended by a concurrent writer after construction land beyond
/// the cursor's initial extent and are simply read if reached — callers
/// that must not see them (resume) stop after a known record count.
class CheckpointReader {
 public:
  explicit CheckpointReader(const std::string& path);

  /// Parses the next complete record into `out`; false once the file is
  /// exhausted. Malformed lines — the torn last line of a killed writer —
  /// are skipped, the same rule load_checkpoint applies.
  bool next(ShardCheckpoint& out);

 private:
  std::ifstream in_;
  std::string line_;
};

/// Applies `fn` to every complete record at `path` in file order, one
/// record in memory at a time. A missing file applies `fn` zero times (a
/// fresh campaign); malformed lines are skipped.
void for_each_checkpoint(const std::string& path,
                         const std::function<void(ShardCheckpoint&&)>& fn);

/// Parses every complete record at `path`; a missing file yields an empty
/// vector (a fresh campaign). Records that fail to parse — the torn last
/// line of a killed writer — are skipped, so their shards rerun.
/// Materializes the whole file: prefer CheckpointReader/for_each_checkpoint
/// for large campaigns.
[[nodiscard]] std::vector<ShardCheckpoint> load_checkpoint(
    const std::string& path);

/// Renders one record as exactly the line CheckpointWriter::append would
/// write, trailing newline included (load_checkpoint parses it back
/// bit-identically).
[[nodiscard]] std::string render_checkpoint_record(
    const ShardCheckpoint& checkpoint);

/// Parses one record line (render_checkpoint_record's inverse, trailing
/// newline optional); returns false on a torn write (no "end" sentinel —
/// the writer died mid-append, the shard simply reruns). A line the writer
/// *finished* that still fails to parse — an unknown record kind or
/// version, a foreign tool/vantage name — is a loud contract violation:
/// silently skipping it would re-run and double-merge a shard the file
/// already accounts for. The fabric wire protocol ships ckpt2 lines
/// verbatim, so this is also the frame-payload decoder.
[[nodiscard]] bool parse_checkpoint_record(const std::string& line,
                                           ShardCheckpoint& out);

/// Rewrites `path` to one record per shard: `records` (typically the result
/// of load_checkpoint) are deduplicated by scenario index — the last record
/// wins, matching resume's restore order — and written in ascending
/// scenario order. The rewrite is crash-safe: the temp file is flushed and
/// fsync'd before being renamed over `path` (with a best-effort directory
/// fsync after), so a power cut mid-compaction leaves either the old
/// complete file or the new complete file, never a truncated hybrid. Call
/// before opening an append-mode CheckpointWriter on the same path.
void compact_checkpoint(const std::string& path,
                        const std::vector<ShardCheckpoint>& records);

/// Streaming compaction: same result and crash-safety as the overload
/// above, without ever materializing the file. Pass 1 records the byte
/// offset of the last complete record per scenario index (O(shards) offsets,
/// not digests); pass 2 seeks to each winner in ascending scenario order and
/// re-renders it into the temp file. A missing file is a no-op.
void compact_checkpoint(const std::string& path);

/// Per-shard sink: folds the shard's events and appends the record when the
/// shard finishes. The writer must outlive every shard of the campaign.
class CheckpointSink : public ResultSink {
 public:
  /// `spec_hash` is stamped into the record (see ShardCheckpoint).
  CheckpointSink(std::shared_ptr<CheckpointWriter> writer,
                 std::uint64_t spec_hash);

  void probe_completed(const ProbeEvent& event) override;
  void shard_finished(const ShardSummary& summary) override;

 private:
  std::shared_ptr<CheckpointWriter> writer_;
  std::uint64_t spec_hash_;
  WorkloadFold fold_;
};

}  // namespace acute::report
