#include "report/line_writer.hpp"

#include <fstream>
#include <utility>

#include "sim/contracts.hpp"

namespace acute::report {

using sim::expects;

struct LineWriter::Impl {
  std::ofstream out;
};

namespace {

/// True when `path` exists, is non-empty and does not end in '\n' — the
/// torn last line of a killed writer. An appender must close that line
/// first, or its first record glues onto the torn one and both are lost.
bool has_torn_final_line(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  in.seekg(0, std::ios::end);
  if (in.tellg() <= 0) return false;
  in.seekg(-1, std::ios::end);
  char last = '\n';
  in.get(last);
  return last != '\n';
}

}  // namespace

LineWriter::LineWriter(std::string path, bool append)
    : impl_(std::make_unique<Impl>()), path_(std::move(path)) {
  const bool torn = append && has_torn_final_line(path_);
  impl_->out.open(path_, append ? std::ios::app : std::ios::trunc);
  expects(impl_->out.is_open(), "LineWriter: cannot open output file");
  if (torn) impl_->out << '\n';  // the torn record stays unparseable; the
                                 // records appended after it stay intact
}

LineWriter::~LineWriter() = default;

void LineWriter::append_block(const std::string& block) {
  const std::lock_guard<std::mutex> lock(mutex_);
  impl_->out << block;
  impl_->out.flush();
}

}  // namespace acute::report
