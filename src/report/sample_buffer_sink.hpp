// SampleBufferSink: the legacy raw-vector surface as a pluggable sink.
//
// Buffers every successful probe's reported RTT and every stamped probe's
// layer decomposition, in the canonical event order (phone-major, probe
// order within each phone) — byte-for-byte the vectors ShardResult carried
// before the results pipeline existed. Memory is O(probes); campaigns only
// attach it when CampaignSpec::keep_samples is true.
#pragma once

#include <vector>

#include "report/sink.hpp"

namespace acute::report {

class SampleBufferSink : public ResultSink {
 public:
  /// The buffered vectors, all **milliseconds**. The RTT vector holds every
  /// successful probe; the layer vectors hold only fully-stamped probes (so
  /// they can be shorter — cellular probes have no driver/air stamps).
  struct Buffers {
    std::vector<double> reported_rtt_ms;
    std::vector<double> du_ms, dk_ms, dv_ms, dn_ms;
    /// Passive vantage samples (report::Vantage), kept out of the active
    /// vectors above so the legacy surface is unchanged by passive axes.
    std::vector<double> passive_sniffer_rtt_ms, passive_app_rtt_ms;
  };

  void probe_completed(const ProbeEvent& event) override;

  /// Moves the buffers out; call after the stream completes.
  [[nodiscard]] Buffers take() { return std::move(buffers_); }

  /// Empties the buffers, keeping their capacity (shard-context reuse).
  void reset() {
    buffers_.reported_rtt_ms.clear();
    buffers_.du_ms.clear();
    buffers_.dk_ms.clear();
    buffers_.dv_ms.clear();
    buffers_.dn_ms.clear();
    buffers_.passive_sniffer_rtt_ms.clear();
    buffers_.passive_app_rtt_ms.clear();
  }

 private:
  Buffers buffers_;
};

}  // namespace acute::report
