// Typed sample events of the streaming results pipeline.
//
// A campaign shard no longer hands the engine a closed result struct; it
// *narrates* its execution as events — shard started, one event per
// completed probe, shard finished with exact counters — and pluggable
// report::ResultSinks consume the stream (sink.hpp). Event delivery order
// is part of the contract (see ResultSink), so sinks that fold events into
// order-sensitive accumulators (t-digests) stay bit-deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "tools/factory.hpp"

namespace acute::report {

/// Identity of one campaign shard (= one scenario execution).
struct ShardInfo {
  /// Index into the campaign's scenario list (also the merge position).
  std::size_t scenario_index = 0;
  /// The derived seed the shard runs with (Campaign::shard_seed).
  std::uint64_t shard_seed = 0;
  /// Phones in the shard's scenario.
  std::size_t phone_count = 0;
  /// Dense position of this shard in the invocation's pending order:
  /// shards a Campaign::run call executes are numbered 0,1,2,... in
  /// ascending scenario-index order, with checkpoint-restored shards
  /// skipped. Workers claim sequences in order, so an order-sensitive
  /// shared consumer (the JSONL reorder buffer) can release per-shard
  /// output gap-free without knowing the campaign's shape. Invocation-
  /// local — never persisted.
  std::size_t run_sequence = 0;
};

/// Fig. 1 layer decomposition of one fully-stamped probe, **milliseconds**.
struct LayerBreakdown {
  double du_ms = 0;
  double dk_ms = 0;
  double dv_ms = 0;
  double dn_ms = 0;
};

/// Which vantage point produced a ProbeEvent's RTT. Active events are the
/// tool's own probe outcomes — they alone carry timeouts and count toward
/// ShardSummary::probes_sent/probes_lost. Passive events are zero-injected
/// RTT samples observed on the same flow: `passive_sniffer` from the
/// capture-point TSval matcher (passive::PpingEstimator), `passive_app`
/// from the exec-env monitor (passive::PerAppMonitor). They stream through
/// the same sinks but fold into separate digest accumulators.
enum class Vantage : std::uint8_t { active, passive_sniffer, passive_app };

/// Machine-stable ids ("active", "passive-sniffer", "passive-app") — the
/// spelling the JSONL export writes.
[[nodiscard]] const char* to_string(Vantage vantage);

/// One completed probe (response or timeout) — or, for passive vantages,
/// one passively observed RTT sample on a probe flow.
struct ProbeEvent {
  std::size_t scenario_index = 0;
  /// Phone that sent the probe (scenario phone order).
  std::size_t phone_index = 0;
  /// 0-based position in the phone's probe schedule (active events), or the
  /// sample's emission ordinal within its flow (passive events).
  int probe_index = 0;
  /// The tool the phone's workload ran; passive events attribute samples to
  /// the tool owning the observed flow.
  tools::ToolKind tool = tools::ToolKind::icmp_ping;
  /// The vantage point this event's RTT was measured from.
  Vantage vantage = Vantage::active;
  /// True when no response arrived within the tool's timeout. Always false
  /// on passive events (an unanswered send simply never matches).
  bool timed_out = false;
  /// Tool-reported RTT in **milliseconds** (quantization quirks included);
  /// 0 when timed_out.
  double reported_rtt_ms = 0;
  /// Layer decomposition; absent for timeouts and unstamped probes (e.g. a
  /// cellular phone's responses lack driver/air stamps).
  std::optional<LayerBreakdown> layers;
};

/// Exact per-shard counters, delivered once after the shard's last probe.
struct ShardSummary {
  ShardInfo info;
  /// All probes the shard's tools scheduled (timeouts included).
  std::size_t probes_sent = 0;
  std::size_t probes_lost = 0;
  /// Work accounting (throughput benches).
  std::uint64_t frames_on_air = 0;
  std::uint64_t events_fired = 0;
  double sim_seconds = 0;
};

}  // namespace acute::report
