#include "report/digest_sink.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::report {

using sim::expects;

void WorkloadDigest::merge(const WorkloadDigest& other) {
  expects(tool == other.tool,
          "WorkloadDigest::merge requires matching tool kinds");
  probes += other.probes;
  lost += other.lost;
  reported_rtt_ms.merge(other.reported_rtt_ms);
  du_ms.merge(other.du_ms);
  dk_ms.merge(other.dk_ms);
  dv_ms.merge(other.dv_ms);
  dn_ms.merge(other.dn_ms);
  passive_sniffer_samples += other.passive_sniffer_samples;
  passive_app_samples += other.passive_app_samples;
  passive_sniffer_rtt_ms.merge(other.passive_sniffer_rtt_ms);
  passive_app_rtt_ms.merge(other.passive_app_rtt_ms);
}

void WorkloadDigest::merge(WorkloadDigest&& other) {
  expects(tool == other.tool,
          "WorkloadDigest::merge requires matching tool kinds");
  probes += other.probes;
  lost += other.lost;
  reported_rtt_ms.merge(std::move(other.reported_rtt_ms));
  du_ms.merge(std::move(other.du_ms));
  dk_ms.merge(std::move(other.dk_ms));
  dv_ms.merge(std::move(other.dv_ms));
  dn_ms.merge(std::move(other.dn_ms));
  passive_sniffer_samples += other.passive_sniffer_samples;
  passive_app_samples += other.passive_app_samples;
  passive_sniffer_rtt_ms.merge(std::move(other.passive_sniffer_rtt_ms));
  passive_app_rtt_ms.merge(std::move(other.passive_app_rtt_ms));
  other.probes = 0;
  other.lost = 0;
  other.passive_sniffer_samples = 0;
  other.passive_app_samples = 0;
}

WorkloadDigest& WorkloadFold::slot(tools::ToolKind kind) {
  auto& entry = slots_[tools::tool_kind_index(kind)];
  if (!entry.has_value()) {
    entry.emplace();
    entry->tool = kind;
  }
  return *entry;
}

std::vector<WorkloadDigest> WorkloadFold::take() {
  std::vector<WorkloadDigest> out;
  for (auto& entry : slots_) {
    if (entry.has_value()) {
      out.push_back(std::move(*entry));
      entry.reset();
    }
  }
  return out;
}

std::vector<WorkloadDigest> WorkloadFold::snapshot() const {
  std::vector<WorkloadDigest> out;
  for (const auto& entry : slots_) {
    if (entry.has_value()) out.push_back(*entry);
  }
  return out;
}

void WorkloadFold::fold_shard(std::vector<WorkloadDigest>&& digests) {
  for (WorkloadDigest& digest : digests) {
    slot(digest.tool).merge(std::move(digest));
  }
  digests.clear();
  digests.shrink_to_fit();
}

void fold_probe(WorkloadFold& fold, const ProbeEvent& event) {
  WorkloadDigest& slot = fold.slot(event.tool);
  // Passive samples fold into their own accumulators: they are observations
  // of the active flow, not probes, so the probe/loss counters (and the
  // active RTT digests) must not see them.
  if (event.vantage == Vantage::passive_sniffer) {
    ++slot.passive_sniffer_samples;
    slot.passive_sniffer_rtt_ms.add(event.reported_rtt_ms);
    return;
  }
  if (event.vantage == Vantage::passive_app) {
    ++slot.passive_app_samples;
    slot.passive_app_rtt_ms.add(event.reported_rtt_ms);
    return;
  }
  ++slot.probes;
  if (event.timed_out) {
    ++slot.lost;
    return;
  }
  slot.reported_rtt_ms.add(event.reported_rtt_ms);
  if (event.layers.has_value()) {
    slot.du_ms.add(event.layers->du_ms);
    slot.dk_ms.add(event.layers->dk_ms);
    slot.dv_ms.add(event.layers->dv_ms);
    slot.dn_ms.add(event.layers->dn_ms);
  }
}

void DigestSink::probe_completed(const ProbeEvent& event) {
  fold_probe(fold_, event);
}

}  // namespace acute::report
