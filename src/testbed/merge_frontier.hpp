// The merge frontier: the in-order fold that gives campaigns O(workers)
// report memory — and the fabric coordinator bit-identical merges.
//
// An in-order fold over scenario indices, same shape as the JSONL sink's
// reorder window. A cursor sweeps 0..N-1; each index is folded into the
// campaign-level FoldedTotals the moment every lower index has folded, then
// its digests are freed. Shards that complete ahead of the cursor wait in a
// held map — bounded in practice by the producer's ascending claim/lease
// order to O(producers × batch), the same skew bound as the JSONL window —
// so peak digest retention is O(producers), not O(shards).
//
// Order proof: the cursor visits indices strictly ascending and folds
// exactly the shards the buffered model would retain (fresh submissions,
// checkpoint-restored records, nothing for skipped/abandoned ones), so the
// fold sequence is identical to CampaignReport::workload_digests()'s
// post-join loop over `shards` — bit-identical digests and double sums for
// any producer count and across kill/resume. That holds whether the
// producers are Campaign::run's worker threads or fabric worker *processes*
// streaming ckpt2 records to a coordinator: the frontier never sees the
// difference.
//
// submit()/abandon() never block: the caller either advances the cursor
// itself (folding under the mutex) or parks its result and returns, so the
// frontier cannot deadlock against the JSONL reorder window (both are
// drained in the same ascending order by whoever holds the release point).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "testbed/campaign.hpp"

namespace acute::testbed {

/// Rebuilds the ShardResult view a completed shard would have produced with
/// keep_samples=false from its checkpoint record (digests deserialize
/// bit-identically; raw sample vectors are not checkpointed). Consumes the
/// record's digests.
[[nodiscard]] ShardResult shard_result_from_checkpoint(
    report::ShardCheckpoint&& record);

/// See the file comment. Thread-safe; a reference to the FoldedTotals the
/// fold writes into must outlive the frontier.
class MergeFrontier {
 public:
  /// How the cursor treats each scenario index.
  enum class Slot : unsigned char {
    skipped,   ///< will not complete this run (max_shards cap / abandoned)
    restored,  ///< fed from the compacted checkpoint, in file order
    fresh,     ///< a pending shard; a producer will submit() or abandon() it
  };

  /// `feed` returns the next restored shard from the (ascending, unique)
  /// compacted checkpoint; called exactly once per `restored` slot, in
  /// ascending index order, under the frontier lock.
  MergeFrontier(std::vector<Slot> slots,
                std::function<ShardResult(std::size_t)> feed,
                CampaignReport::FoldedTotals& totals);

  /// Folds a freshly-completed shard, or parks it until the cursor arrives.
  void submit(std::size_t index, ShardResult&& result);

  /// Releases a failed shard's slot so the fold cannot stall on it (the
  /// failure itself is the caller's to rethrow/re-lease).
  void abandon(std::size_t index);

  /// Drains any skipped/restored tail after the producers stop; every fresh
  /// slot must have been submitted or abandoned by then.
  void finalize();

  /// Peak number of out-of-order shards parked at once (memory telemetry).
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

  /// Wall seconds the fold steps consumed (StageSeconds::merge). Read after
  /// finalize() — the fold runs under the frontier lock on whichever
  /// producer advances the cursor, so the sum is cross-producer like
  /// build/sink.
  [[nodiscard]] double fold_seconds() const { return fold_seconds_; }

 private:
  void advance_locked();
  void fold(ShardResult&& result);

  std::mutex mu_;
  std::vector<Slot> slots_;
  std::function<ShardResult(std::size_t)> feed_;
  CampaignReport::FoldedTotals& totals_;
  std::map<std::size_t, ShardResult> held_;
  std::size_t cursor_ = 0;
  std::size_t high_water_ = 0;
  double fold_seconds_ = 0;
};

}  // namespace acute::testbed
