#include "testbed/trace_export.hpp"

#include <ostream>
#include <sstream>

#include "net/packet.hpp"

namespace acute::testbed {

void TraceExport::write_captures_csv(
    std::ostream& out, const std::vector<wifi::Sniffer::Capture>& captures) {
  out << "time_us,packet_id,probe_id,type,transmitter,receiver,size_bytes,"
         "collided\n";
  for (const auto& capture : captures) {
    out << capture.time.count_nanos() / 1000 << ',' << capture.packet_id
        << ',' << capture.probe_id << ',' << net::to_string(capture.type)
        << ',' << capture.transmitter << ',' << capture.receiver << ','
        << capture.size_bytes << ',' << (capture.collided ? 1 : 0) << '\n';
  }
}

void TraceExport::write_samples_csv(
    std::ostream& out, const std::vector<core::LayerSample>& samples) {
  out << "probe_id,du_ms,dk_ms,dv_ms,dn_ms,dvsend_ms,dvrecv_ms,du_k_ms,"
         "dk_n_ms,total_overhead_ms\n";
  out.setf(std::ios::fixed);
  out.precision(4);
  for (const auto& sample : samples) {
    out << sample.probe_id << ',' << sample.du_ms << ',' << sample.dk_ms
        << ',' << sample.dv_ms << ',' << sample.dn_ms << ','
        << sample.dvsend_ms << ',' << sample.dvrecv_ms << ','
        << sample.du_k() << ',' << sample.dk_n() << ','
        << sample.total_overhead() << '\n';
  }
}

std::string TraceExport::captures_csv(
    const std::vector<wifi::Sniffer::Capture>& captures) {
  std::ostringstream os;
  write_captures_csv(os, captures);
  return os.str();
}

std::string TraceExport::samples_csv(
    const std::vector<core::LayerSample>& samples) {
  std::ostringstream os;
  write_samples_csv(os, samples);
  return os.str();
}

}  // namespace acute::testbed
