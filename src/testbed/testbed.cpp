#include "testbed/testbed.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::testbed {

using net::Packet;
using sim::Duration;
using sim::expects;

namespace {
wifi::Station::Config load_gen_station_config(net::NodeId id,
                                              net::NodeId ap_id) {
  wifi::Station::Config config;
  config.id = id;
  config.ap = ap_id;
  config.psm_enabled = false;  // desktop WNIC: no power save
  config.associated_listen_interval = 1;
  return config;
}
}  // namespace

WirelessHost::WirelessHost(sim::Simulator& sim, wifi::Channel& channel,
                           sim::Rng rng, net::NodeId id, net::NodeId ap_id)
    : sim_(&sim),
      rng_(std::move(rng)),
      id_(id),
      station_(sim, channel, rng_.fork("station"),
               load_gen_station_config(id, ap_id)) {}

void WirelessHost::transmit(Packet packet) {
  packet.src = id_;
  // Desktop host stack: tens of microseconds, no phone-style quirks.
  const Duration stack = Duration::from_us(rng_.uniform(20.0, 60.0));
  sim_->schedule_in(stack, [this, pkt = std::move(packet)]() mutable {
    station_.send(std::move(pkt));
  });
}

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  const wifi::PhyParams phy = config_.congested_phy
                                  ? wifi::phy_802_11g_mixed()
                                  : wifi::phy_802_11g();
  channel_ =
      std::make_unique<wifi::Channel>(sim_, rng_.fork("channel"), phy);

  wifi::AccessPoint::Config ap_config;
  ap_config.id = kApId;
  ap_config.send_ttl_exceeded = config_.send_ttl_exceeded;
  ap_ = std::make_unique<wifi::AccessPoint>(sim_, *channel_, rng_.fork("ap"),
                                            ap_config);

  switch_ = std::make_unique<net::Switch>(kSwitchId);
  server_ =
      std::make_unique<net::EchoServer>(sim_, rng_.fork("server"), kServerId);
  load_sink_ = std::make_unique<net::UdpSink>(sim_, kLoadSinkId);

  // Gigabit wired fabric with ~5 us propagation per hop.
  const Duration wire_prop = Duration::from_us(5.0);
  const double gigabit = 1e9;
  ap_switch_link_ =
      std::make_unique<net::Link>(sim_, *ap_, *switch_, wire_prop, gigabit);
  switch_server_link_ = std::make_unique<net::Link>(sim_, *switch_, *server_,
                                                    wire_prop, gigabit);
  switch_sink_link_ = std::make_unique<net::Link>(sim_, *switch_, *load_sink_,
                                                  wire_prop, gigabit);
  ap_->attach_wired(*ap_switch_link_);
  switch_->attach_port(*ap_switch_link_);
  switch_->attach_port(*switch_server_link_);
  switch_->attach_port(*switch_sink_link_);
  server_->attach_link(*switch_server_link_);

  server_->netem().set_delay(config_.emulated_rtt);
  server_->netem().set_jitter(config_.netem_jitter);

  // Wireless side: phone under test + load generator.
  phone_ = std::make_unique<phone::Smartphone>(sim_, *channel_,
                                               rng_.fork("phone"),
                                               config_.profile, kPhoneId,
                                               kApId);
  load_gen_ = std::make_unique<WirelessHost>(sim_, *channel_,
                                             rng_.fork("loadgen"), kLoadGenId,
                                             kApId);
  ap_->associate(kPhoneId, config_.profile.associated_listen_interval);
  ap_->associate(kLoadGenId, 1);

  iperf_ = std::make_unique<net::IperfLoadGenerator>(
      sim_, rng_.fork("iperf"), kLoadGenId, kLoadSinkId,
      config_.cross_connections, config_.cross_flow_mbps,
      [this](Packet pkt) { load_gen_->transmit(std::move(pkt)); });

  // Three sniffers within 0.5 m of the phone (§2.2): they all see every
  // frame; each has an independent timestamp-noise stream.
  for (const char* name : {"sniffer-A", "sniffer-B", "sniffer-C"}) {
    auto sniffer = std::make_unique<wifi::Sniffer>(
        name, rng_.fork(name), config_.sniffer_noise);
    channel_->attach_observer(*sniffer);
    sniffers_.push_back(std::move(sniffer));
  }

  // Beacons start at a random phase relative to the experiment schedule.
  ap_->start_beacons(
      rng_.fork("tbtt").uniform_duration(Duration{}, wifi::beacon_interval()));
}

void Testbed::set_emulated_rtt(Duration rtt) {
  expects(!rtt.is_negative(), "Testbed emulated RTT must be non-negative");
  server_->netem().set_delay(rtt);
}

void Testbed::start_cross_traffic() {
  if (cross_running_) return;
  cross_running_ = true;
  load_sink_->reset_window();
  iperf_->start();
}

void Testbed::stop_cross_traffic() {
  if (!cross_running_) return;
  cross_running_ = false;
  iperf_->stop();
}

bool Testbed::cross_traffic_running() const { return cross_running_; }

double Testbed::cross_traffic_throughput_mbps() const {
  return load_sink_->throughput_mbps(load_sink_->window_start());
}

void Testbed::settle(Duration span) { sim_.run_for(span); }

void Testbed::run_until_finished(tools::MeasurementTool& tool,
                                 Duration max_sim_time) {
  const sim::TimePoint deadline = sim_.now() + max_sim_time;
  while (!tool.finished() && sim_.now() < deadline) {
    sim_.run_for(Duration::millis(50));
  }
  expects(tool.finished(),
          "Testbed::run_until_finished hit the simulated-time guard");
}

std::vector<core::LayerSample> Testbed::layer_samples(
    const tools::ToolRun& run) const {
  std::vector<core::LayerSample> samples;
  samples.reserve(run.probes.size());
  for (const tools::ProbeRecord& record : run.probes) {
    if (record.timed_out || !record.response.has_value()) continue;
    const auto sample = core::LayerSample::from_response(
        *record.response, record.reported_rtt_ms);
    if (sample.has_value()) samples.push_back(*sample);
  }
  return samples;
}

}  // namespace acute::testbed
