#include "testbed/testbed.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "sim/contracts.hpp"

namespace acute::testbed {

using net::Packet;
using sim::Duration;
using sim::expects;

namespace {
wifi::Station::Config load_gen_station_config(net::NodeId id,
                                              net::NodeId ap_id) {
  wifi::Station::Config config;
  config.id = id;
  config.ap = ap_id;
  config.psm_enabled = false;  // desktop WNIC: no power save
  config.associated_listen_interval = 1;
  return config;
}

std::string phone_label(const PhoneSpec& spec, std::size_t index) {
  if (!spec.label.empty()) return spec.label;
  if (index == 0) return "phone";
  return "phone-" + std::to_string(index);
}

std::string sniffer_label(std::size_t index) {
  // The paper's three sniffers keep their historical names (and therefore
  // their rng streams); bigger arrays extend numerically.
  static constexpr const char* kNamed[] = {"sniffer-A", "sniffer-B",
                                           "sniffer-C"};
  if (index < 3) return kNamed[index];
  return "sniffer-" + std::to_string(index);
}
}  // namespace

WirelessHost::WirelessHost(sim::Simulator& sim, wifi::Channel& channel,
                           sim::Rng rng, net::NodeId id, net::NodeId ap_id)
    : sim_(&sim),
      rng_(std::move(rng)),
      id_(id),
      station_(sim, channel, rng_.fork("station"),
               load_gen_station_config(id, ap_id)) {}

void WirelessHost::reset(sim::Rng rng, net::NodeId id, net::NodeId ap_id) {
  rng_ = std::move(rng);
  id_ = id;
  station_.reset(rng_.fork("station"), load_gen_station_config(id, ap_id));
}

void WirelessHost::transmit(Packet&& packet) {
  packet.src = id_;
  // Desktop host stack: tens of microseconds, no phone-style quirks.
  const Duration stack = Duration::micros(rng_.uniform(20.0, 60.0));
  sim_->schedule_in(stack, sim::assert_fits_inline(
                               [this, pkt = std::move(packet)]() mutable {
                                 station_.send(std::move(pkt));
                               }));
}

void CellularGateway::attach_link(net::Link& link) {
  expects(link_ == nullptr, "CellularGateway::attach_link called twice");
  link_ = &link;
}

void CellularGateway::attach_phone(phone::Smartphone& phone) {
  expects(phone.radio_kind() == phone::RadioKind::cellular,
          "CellularGateway::attach_phone requires a cellular phone");
  for (const auto& [id, ptr] : phones_) {
    expects(id != phone.id(),
            "CellularGateway::attach_phone: duplicate phone id");
  }
  phones_.emplace_back(phone.id(), &phone);
  phone.cellular_radio().set_egress(
      [this](Packet&& pkt) { uplink(std::move(pkt)); });
}

void CellularGateway::uplink(Packet&& packet) {
  // First-hop router: TTL=1 system chatter dies here, like at the WiFi AP.
  if (packet.ttl <= 1) {
    ++ttl_drops_;
    return;
  }
  packet.ttl -= 1;
  expects(link_ != nullptr, "CellularGateway has no core link attached");
  ++uplink_;
  link_->send(id_, std::move(packet));
}

void CellularGateway::receive(Packet&& packet, net::Link* /*ingress*/) {
  phone::Smartphone* target = nullptr;
  for (const auto& [id, ptr] : phones_) {
    if (id == packet.dst) {
      target = ptr;
      break;
    }
  }
  if (target == nullptr) return;  // not one of ours (switch flooding)
  if (packet.ttl <= 1) {
    ++ttl_drops_;
    return;
  }
  packet.ttl -= 1;
  ++downlink_;
  // Enter the phone's stack at the bottom: the RRC radio pays the downlink
  // state latency before the packet ascends.
  target->pipeline().inject(std::move(packet));
}

ScenarioSpec& ScenarioSpec::assign_workloads(
    const std::vector<WorkloadSpec>& mix) {
  expects(!mix.empty(), "assign_workloads requires a non-empty workload mix");
  expects(!phones.empty(), "assign_workloads requires at least one phone");
  for (std::size_t i = 0; i < phones.size(); ++i) {
    phones[i].workload = mix[i % mix.size()];
  }
  return *this;
}

std::size_t ScenarioSpec::count_radio(phone::RadioKind kind) const {
  std::size_t count = 0;
  for (const PhoneSpec& phone : phones) {
    if (phone.radio == kind) ++count;
  }
  return count;
}

ScenarioSpec ScenarioSpec::fig2(const TestbedConfig& config) {
  ScenarioSpec spec;
  spec.phones = {PhoneSpec{}};
  spec.phones.front().profile = config.profile;
  spec.seed = config.seed;
  spec.emulated_rtt = config.emulated_rtt;
  spec.netem_jitter = config.netem_jitter;
  spec.congested_phy = config.congested_phy;
  spec.cross_connections = config.cross_connections;
  spec.cross_flow_mbps = config.cross_flow_mbps;
  spec.send_ttl_exceeded = config.send_ttl_exceeded;
  spec.sniffer_noise = config.sniffer_noise;
  spec.sniffer_count = 3;
  return spec;
}

Testbed::Testbed(TestbedConfig config) : Testbed(ScenarioSpec::fig2(config)) {}

Testbed::Testbed(ScenarioSpec spec)
    : owned_sim_(std::make_unique<sim::Simulator>()),
      sim_(owned_sim_.get()),
      spec_(std::move(spec)),
      rng_(spec_.seed) {
  build_graph();
}

Testbed::Testbed(ScenarioSpec spec, sim::Simulator& sim)
    : sim_(&sim), spec_(std::move(spec)), rng_(spec_.seed) {
  build_graph();
}

void Testbed::rebuild(const ScenarioSpec& spec) {
  sim_->reset();
  // Copy-assign, never move-assign: the phones vector (and the labels and
  // profile strings inside) copy into the buffers the previous scenario
  // left behind, so a shape-stable rebuild touches the heap zero times.
  spec_ = spec;
  rng_ = sim::Rng(spec_.seed);
  iperf_ready_ = false;
  cross_running_ = false;
  build_graph();
}

void Testbed::build_graph() {
  expects(!spec_.phones.empty(), "ScenarioSpec requires at least one phone");

  // Every component below is reset in place when it already exists and
  // constructed otherwise, in the exact order the original constructor
  // used. Order matters twice over: rng fork tags must pair with the same
  // components, and construction-time events (doze timers, bus watchdogs,
  // system chatter, beacons) must claim the same event-queue sequence
  // numbers as in a fresh build — that is what makes a reused testbed
  // bit-identical to a fresh one.
  const wifi::PhyParams phy = spec_.congested_phy ? wifi::phy_802_11g_mixed()
                                                  : wifi::phy_802_11g();
  if (channel_) {
    channel_->reset(rng_.fork("channel"), phy);
  } else {
    channel_ =
        std::make_unique<wifi::Channel>(*sim_, rng_.fork("channel"), phy);
  }

  wifi::AccessPoint::Config ap_config;
  ap_config.id = kApId;
  ap_config.send_ttl_exceeded = spec_.send_ttl_exceeded;
  if (ap_) {
    ap_->reset(rng_.fork("ap"), ap_config);
  } else {
    ap_ = std::make_unique<wifi::AccessPoint>(*sim_, *channel_,
                                              rng_.fork("ap"), ap_config);
  }

  if (switch_) {
    switch_->reset(kSwitchId);
  } else {
    switch_ = std::make_unique<net::Switch>(kSwitchId);
  }
  if (server_) {
    server_->reset(rng_.fork("server"), kServerId);
  } else {
    server_ = std::make_unique<net::EchoServer>(*sim_, rng_.fork("server"),
                                                kServerId);
  }
  if (load_sink_) {
    load_sink_->reset(kLoadSinkId);
  } else {
    load_sink_ = std::make_unique<net::UdpSink>(*sim_, kLoadSinkId);
  }

  // Gigabit wired fabric with ~5 us propagation per hop.
  const Duration wire_prop = Duration::micros(5.0);
  const double gigabit = 1e9;
  if (ap_switch_link_) {
    ap_switch_link_->reset(*ap_, *switch_, wire_prop, gigabit);
  } else {
    ap_switch_link_ =
        std::make_unique<net::Link>(*sim_, *ap_, *switch_, wire_prop, gigabit);
  }
  if (switch_server_link_) {
    switch_server_link_->reset(*switch_, *server_, wire_prop, gigabit);
  } else {
    switch_server_link_ = std::make_unique<net::Link>(*sim_, *switch_,
                                                      *server_, wire_prop,
                                                      gigabit);
  }
  if (switch_sink_link_) {
    switch_sink_link_->reset(*switch_, *load_sink_, wire_prop, gigabit);
  } else {
    switch_sink_link_ = std::make_unique<net::Link>(*sim_, *switch_,
                                                    *load_sink_, wire_prop,
                                                    gigabit);
  }
  ap_->attach_wired(*ap_switch_link_);
  switch_->attach_port(*ap_switch_link_);
  switch_->attach_port(*switch_server_link_);
  switch_->attach_port(*switch_sink_link_);
  server_->attach_link(*switch_server_link_);

  server_->netem().set_delay(spec_.emulated_rtt);
  server_->netem().set_jitter(spec_.netem_jitter);
  server_->netem().set_loss(spec_.netem_loss);
  server_->netem().set_prevent_reorder(!spec_.netem_reorder);

  // Cellular side (only when the scenario mixes in rrc-radio phones): the
  // gateway reaches the same switch over a link whose one-way propagation
  // models half the core-network RTT.
  if (spec_.count_radio(phone::RadioKind::cellular) > 0) {
    expects(!spec_.cellular_core_rtt.is_negative(),
            "ScenarioSpec cellular core RTT must be non-negative");
    if (gateway_) {
      gateway_->reset(kCellGatewayId);
    } else {
      gateway_ = std::make_unique<CellularGateway>(*sim_, kCellGatewayId);
    }
    if (gateway_link_) {
      gateway_link_->reset(*gateway_, *switch_, spec_.cellular_core_rtt / 2,
                           gigabit);
    } else {
      gateway_link_ = std::make_unique<net::Link>(
          *sim_, *gateway_, *switch_, spec_.cellular_core_rtt / 2, gigabit);
    }
    switch_->attach_port(*gateway_link_);
    gateway_->attach_link(*gateway_link_);
  } else {
    gateway_link_.reset();
    gateway_.reset();
  }

  // Wireless side: the phones under test + the load generator, all
  // contending on the one channel. Rng streams are forked by label, so a
  // duplicate label would silently give two "independent" handsets
  // byte-identical latency draws — reject it up front.
  static constexpr const char* kReservedTags[] = {
      "channel", "ap",        "server",    "loadgen",  "iperf",
      "tbtt",    "sniffer-A", "sniffer-B", "sniffer-C"};
  used_labels_.clear();
  if (phones_.size() > spec_.phones.size()) {
    phones_.resize(spec_.phones.size());
  }
  phones_.reserve(spec_.phones.size());
  for (std::size_t i = 0; i < spec_.phones.size(); ++i) {
    const PhoneSpec& phone_spec = spec_.phones[i];
    const std::string label = phone_label(phone_spec, i);
    for (const char* reserved : kReservedTags) {
      expects(std::strcmp(label.c_str(), reserved) != 0,
              "ScenarioSpec phone labels must not reuse an infrastructure "
              "rng tag");
    }
    expects(std::find(used_labels_.begin(), used_labels_.end(), label) ==
                used_labels_.end(),
            "ScenarioSpec phone labels must be unique");
    used_labels_.push_back(label);
    const net::NodeId id = phone_id(i);
    const bool have_slot = i < phones_.size();
    if (phone_spec.radio == phone::RadioKind::cellular) {
      if (have_slot &&
          phones_[i]->radio_kind() == phone::RadioKind::cellular) {
        phones_[i]->reset(rng_.fork(label), phone_spec.profile, id,
                          kCellGatewayId, phone_spec.rrc);
      } else {
        auto fresh = std::make_unique<phone::Smartphone>(
            *sim_, rng_.fork(label), phone_spec.profile, id, kCellGatewayId,
            phone_spec.rrc);
        if (have_slot) {
          phones_[i] = std::move(fresh);
        } else {
          phones_.push_back(std::move(fresh));
        }
      }
      gateway_->attach_phone(*phones_[i]);
    } else {
      if (have_slot && phones_[i]->radio_kind() == phone::RadioKind::wifi) {
        phones_[i]->reset(rng_.fork(label), phone_spec.profile, id, kApId);
      } else {
        auto fresh = std::make_unique<phone::Smartphone>(
            *sim_, *channel_, rng_.fork(label), phone_spec.profile, id,
            kApId);
        if (have_slot) {
          phones_[i] = std::move(fresh);
        } else {
          phones_.push_back(std::move(fresh));
        }
      }
      ap_->associate(id, phone_spec.profile.associated_listen_interval);
    }
  }
  if (load_gen_) {
    load_gen_->reset(rng_.fork("loadgen"), kLoadGenId, kApId);
  } else {
    load_gen_ = std::make_unique<WirelessHost>(
        *sim_, *channel_, rng_.fork("loadgen"), kLoadGenId, kApId);
  }
  ap_->associate(kLoadGenId, 1);

  // The iPerf generator is built lazily in ensure_iperf(): its flows draw
  // from their rng streams only on start(), so deferring construction to
  // the first start_cross_traffic() is output-identical and lets the many
  // campaign shards that never congest the WLAN skip it entirely.

  // Sniffers within 0.5 m of the phones (§2.2): they all see every frame;
  // each has an independent timestamp-noise stream.
  if (sniffers_.size() > spec_.sniffer_count) {
    sniffers_.resize(spec_.sniffer_count);
  }
  sniffers_.reserve(spec_.sniffer_count);
  for (std::size_t i = 0; i < spec_.sniffer_count; ++i) {
    const std::string name = sniffer_label(i);
    if (i < sniffers_.size()) {
      sniffers_[i]->reset(name, rng_.fork(name), spec_.sniffer_noise);
    } else {
      sniffers_.push_back(std::make_unique<wifi::Sniffer>(
          name, rng_.fork(name), spec_.sniffer_noise));
    }
    channel_->attach_observer(*sniffers_[i]);
  }

  // Beacons start at a random phase relative to the experiment schedule.
  ap_->start_beacons(
      rng_.fork("tbtt").uniform_duration(Duration{}, wifi::beacon_interval()));
}

void Testbed::ensure_iperf() {
  if (iperf_ready_) return;
  if (iperf_) {
    iperf_->reset(*sim_, rng_.fork("iperf"), kLoadGenId, kLoadSinkId,
                  spec_.cross_connections, spec_.cross_flow_mbps,
                  [this](Packet pkt) { load_gen_->transmit(std::move(pkt)); });
  } else {
    iperf_ = std::make_unique<net::IperfLoadGenerator>(
        *sim_, rng_.fork("iperf"), kLoadGenId, kLoadSinkId,
        spec_.cross_connections, spec_.cross_flow_mbps,
        [this](Packet pkt) { load_gen_->transmit(std::move(pkt)); });
  }
  iperf_ready_ = true;
}

CellularGateway& Testbed::cellular_gateway() {
  expects(gateway_ != nullptr,
          "Testbed::cellular_gateway: scenario has no cellular phone");
  return *gateway_;
}

void Testbed::set_emulated_rtt(Duration rtt) {
  expects(!rtt.is_negative(), "Testbed emulated RTT must be non-negative");
  server_->netem().set_delay(rtt);
}

void Testbed::start_cross_traffic() {
  if (cross_running_) return;
  cross_running_ = true;
  ensure_iperf();
  load_sink_->reset_window();
  iperf_->start();
}

void Testbed::stop_cross_traffic() {
  if (!cross_running_) return;
  cross_running_ = false;
  iperf_->stop();
}

bool Testbed::cross_traffic_running() const { return cross_running_; }

double Testbed::cross_traffic_throughput_mbps() const {
  return load_sink_->throughput_mbps(load_sink_->window_start());
}

void Testbed::settle(Duration span) { sim_->run_for(span); }

void Testbed::run_until_finished(tools::MeasurementTool& tool,
                                 Duration max_sim_time) {
  run_until_all_finished({&tool}, max_sim_time);
}

void Testbed::run_until_all_finished(
    const std::vector<tools::MeasurementTool*>& tools, Duration max_sim_time) {
  const auto all_finished = [&tools] {
    for (const tools::MeasurementTool* tool : tools) {
      if (!tool->finished()) return false;
    }
    return true;
  };
  const sim::TimePoint deadline = sim_->now() + max_sim_time;
  while (!all_finished() && sim_->now() < deadline) {
    sim_->run_for(Duration::millis(50));
  }
  expects(all_finished(),
          "Testbed::run_until_all_finished hit the simulated-time guard");
}

std::vector<core::LayerSample> Testbed::layer_samples(
    const tools::ToolRun& run) const {
  std::vector<core::LayerSample> samples;
  samples.reserve(run.probes.size());
  for (const tools::ProbeRecord& record : run.probes) {
    if (record.timed_out || !record.response.has_value()) continue;
    const auto sample = core::LayerSample::from_response(
        *record.response, record.reported_rtt_ms);
    if (sample.has_value()) samples.push_back(*sample);
  }
  return samples;
}

}  // namespace acute::testbed
