// Trace export: dump sniffer captures and per-probe layer samples as CSV,
// so results can be analysed outside the library (gnuplot, pandas) the way
// the paper's authors post-processed their pcap files.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/layer_sample.hpp"
#include "wifi/sniffer.hpp"

namespace acute::testbed {

class TraceExport {
 public:
  /// Writes sniffer captures as CSV:
  /// time_us,packet_id,probe_id,type,transmitter,receiver,size,collided
  static void write_captures_csv(std::ostream& out,
                                 const std::vector<wifi::Sniffer::Capture>&
                                     captures);

  /// Writes layer samples as CSV:
  /// probe_id,du_ms,dk_ms,dv_ms,dn_ms,dvsend_ms,dvrecv_ms,du_k,dk_n,total
  static void write_samples_csv(std::ostream& out,
                                const std::vector<core::LayerSample>&
                                    samples);

  /// Convenience: render to a string (used by tests and small scripts).
  [[nodiscard]] static std::string captures_csv(
      const std::vector<wifi::Sniffer::Capture>& captures);
  [[nodiscard]] static std::string samples_csv(
      const std::vector<core::LayerSample>& samples);
};

}  // namespace acute::testbed
