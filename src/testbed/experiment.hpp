// Canned experiments: each public entry point reproduces one experimental
// condition from the paper's evaluation and returns per-probe multi-layer
// samples. The bench binaries compose these into the paper's tables and
// figures; the integration tests assert the shape claims on them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/acutemon.hpp"
#include "core/layer_sample.hpp"
#include "phone/profile.hpp"
#include "testbed/testbed.hpp"
#include "tools/factory.hpp"
#include "tools/tool.hpp"

namespace acute::testbed {

/// The tool zoo lives in tools::ToolKind now (it is the campaign workload
/// axis); these aliases keep the historical testbed:: spellings working.
using tools::ToolKind;
using tools::to_string;

/// A tool run plus its layer decomposition.
struct MultiLayerResult {
  tools::ToolRun run;
  std::vector<core::LayerSample> samples;
  /// Goodput the cross traffic achieved during the run (0 when none ran).
  double cross_throughput_mbps = 0;

  [[nodiscard]] std::vector<double> values(
      double (core::LayerSample::*field)() const) const {
    return core::extract(samples, field);
  }
  [[nodiscard]] std::vector<double> values(
      double core::LayerSample::*field) const {
    return core::extract(samples, field);
  }
};

class Experiment {
 public:
  /// §3.1: ICMP ping through the testbed at a given emulated RTT and
  /// sending interval (Table 2, Fig. 3).
  struct PingSpec {
    phone::PhoneProfile profile = phone::PhoneProfile::nexus5();
    sim::Duration emulated_rtt = sim::Duration::millis(30);
    sim::Duration interval = sim::Duration::seconds(1);
    int probes = 100;
    std::uint64_t seed = 42;
  };
  [[nodiscard]] static MultiLayerResult ping(const PingSpec& spec);

  /// §3.2.1: the modified-driver measurement of dvsend / dvrecv with bus
  /// sleep enabled or disabled (Table 3).
  struct DriverDelaySpec {
    phone::PhoneProfile profile = phone::PhoneProfile::nexus5();
    sim::Duration interval = sim::Duration::seconds(1);
    bool bus_sleep_enabled = true;
    sim::Duration emulated_rtt = sim::Duration::millis(60);
    int probes = 100;
    std::uint64_t seed = 42;
  };
  struct DriverDelayResult {
    std::vector<double> dvsend_ms;
    std::vector<double> dvrecv_ms;
  };
  [[nodiscard]] static DriverDelayResult driver_delays(
      const DriverDelaySpec& spec);

  /// §4.2-§4.4: an AcuteMon run (Table 5, Fig. 7, Fig. 8, Fig. 9).
  struct AcuteMonSpec {
    phone::PhoneProfile profile = phone::PhoneProfile::nexus5();
    sim::Duration emulated_rtt = sim::Duration::millis(30);
    int probes = 100;
    bool cross_traffic = false;
    bool background_enabled = true;  // Fig. 9 ablation
    bool bus_sleep_enabled = true;   // Fig. 9 ablation (rooted driver)
    core::AcuteMon::ProbeMethod method =
        core::AcuteMon::ProbeMethod::tcp_connect;
    std::uint64_t seed = 42;
  };
  [[nodiscard]] static MultiLayerResult acutemon(const AcuteMonSpec& spec);

  /// §4.3: one of the four tools, with or without cross traffic (Fig. 8).
  struct ToolSpec {
    ToolKind kind = ToolKind::acutemon;
    phone::PhoneProfile profile = phone::PhoneProfile::nexus5();
    sim::Duration emulated_rtt = sim::Duration::millis(30);
    int probes = 100;
    bool cross_traffic = false;
    sim::Duration interval = sim::Duration::seconds(1);
    std::uint64_t seed = 42;
  };
  [[nodiscard]] static MultiLayerResult tool(const ToolSpec& spec);

  /// Table 4: black-box inference of Tip, Tis and the listen intervals.
  struct TimeoutInference {
    sim::Duration psm_timeout;        // inferred Tip
    sim::Duration bus_sleep_timeout;  // inferred Tis
    int listen_associated = 0;
    int listen_actual = 0;
  };
  [[nodiscard]] static TimeoutInference infer_timeouts(
      const phone::PhoneProfile& profile, std::uint64_t seed = 42);
};

}  // namespace acute::testbed
