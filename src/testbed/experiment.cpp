#include "testbed/experiment.hpp"

#include <memory>
#include <utility>

#include "core/timeout_prober.hpp"
#include "sim/contracts.hpp"
#include "stats/summary.hpp"
#include "tools/factory.hpp"
#include "tools/ping.hpp"

namespace acute::testbed {

using net::Packet;
using sim::Duration;
using sim::expects;

namespace {

/// Idle time that guarantees both demotion timers have fired before an
/// experiment starts (phones idle in a pocket before a measurement).
constexpr Duration kSettle = Duration::millis(800);

MultiLayerResult collect(Testbed& testbed, tools::MeasurementTool& tool) {
  MultiLayerResult result;
  result.run = tool.result();
  result.samples = testbed.layer_samples(result.run);
  if (testbed.cross_traffic_running()) {
    result.cross_throughput_mbps = testbed.cross_traffic_throughput_mbps();
  }
  return result;
}

}  // namespace

MultiLayerResult Experiment::ping(const PingSpec& spec) {
  TestbedConfig config;
  config.profile = spec.profile;
  config.seed = spec.seed;
  config.emulated_rtt = spec.emulated_rtt;
  Testbed testbed(config);
  testbed.settle(kSettle);

  tools::MeasurementTool::Config tool_config;
  tool_config.probe_count = spec.probes;
  tool_config.interval = spec.interval;
  tool_config.timeout = sim::Duration::seconds(1);
  tool_config.target = Testbed::kServerId;
  tools::IcmpPing ping_tool(testbed.phone(), tool_config);
  ping_tool.start();
  testbed.run_until_finished(ping_tool);
  return collect(testbed, ping_tool);
}

Experiment::DriverDelayResult Experiment::driver_delays(
    const DriverDelaySpec& spec) {
  TestbedConfig config;
  config.profile = spec.profile;
  config.seed = spec.seed;
  config.emulated_rtt = spec.emulated_rtt;
  Testbed testbed(config);
  testbed.phone().bus().set_sleep_enabled(spec.bus_sleep_enabled);
  testbed.settle(kSettle);
  testbed.phone().driver().clear_logs();

  tools::MeasurementTool::Config tool_config;
  tool_config.probe_count = spec.probes;
  tool_config.interval = spec.interval;
  tool_config.timeout = sim::Duration::seconds(1);
  tool_config.target = Testbed::kServerId;
  tools::IcmpPing ping_tool(testbed.phone(), tool_config);
  ping_tool.start();
  testbed.run_until_finished(ping_tool);

  DriverDelayResult result;
  result.dvsend_ms = testbed.phone().driver().dvsend_log_ms();
  result.dvrecv_ms = testbed.phone().driver().dvrecv_log_ms();
  return result;
}

MultiLayerResult Experiment::acutemon(const AcuteMonSpec& spec) {
  TestbedConfig config;
  config.profile = spec.profile;
  config.seed = spec.seed;
  config.emulated_rtt = spec.emulated_rtt;
  config.congested_phy = spec.cross_traffic;
  Testbed testbed(config);
  testbed.phone().bus().set_sleep_enabled(spec.bus_sleep_enabled);
  testbed.settle(kSettle);
  if (spec.cross_traffic) {
    testbed.start_cross_traffic();
    testbed.settle(sim::Duration::seconds(2));  // reach saturation
  }

  tools::MeasurementTool::Config tool_config;
  tool_config.probe_count = spec.probes;
  tool_config.timeout = sim::Duration::seconds(1);
  tool_config.target = Testbed::kServerId;
  core::AcuteMon::Options options;
  options.background_enabled = spec.background_enabled;
  options.method = spec.method;
  core::AcuteMon monitor(testbed.phone(), tool_config, options);
  monitor.start_measurement();
  testbed.run_until_finished(monitor);
  MultiLayerResult result = collect(testbed, monitor);
  testbed.stop_cross_traffic();
  return result;
}

MultiLayerResult Experiment::tool(const ToolSpec& spec) {
  if (spec.kind == ToolKind::acutemon) {
    AcuteMonSpec am;
    am.profile = spec.profile;
    am.emulated_rtt = spec.emulated_rtt;
    am.probes = spec.probes;
    am.cross_traffic = spec.cross_traffic;
    am.seed = spec.seed;
    return acutemon(am);
  }

  TestbedConfig config;
  config.profile = spec.profile;
  config.seed = spec.seed;
  config.emulated_rtt = spec.emulated_rtt;
  config.congested_phy = spec.cross_traffic;
  Testbed testbed(config);
  testbed.settle(kSettle);
  if (spec.cross_traffic) {
    testbed.start_cross_traffic();
    testbed.settle(sim::Duration::seconds(2));
  }

  tools::MeasurementTool::Config tool_config;
  tool_config.probe_count = spec.probes;
  tool_config.interval = spec.interval;
  tool_config.timeout = sim::Duration::seconds(1);
  tool_config.target = Testbed::kServerId;

  std::unique_ptr<tools::MeasurementTool> tool =
      tools::make_tool(spec.kind, testbed.phone(), tool_config);
  tool->start();
  testbed.run_until_finished(*tool);
  MultiLayerResult result = collect(testbed, *tool);
  testbed.stop_cross_traffic();
  return result;
}

namespace {

/// Warm-up / idle-gap / probe sequencer for the Tis inference: sends a pair
/// of warm-up packets (the second leaves with the bus already awake), waits
/// `gap`, sends an ICMP probe and records the user-level RTT.
class GapProbeSession {
 public:
  GapProbeSession(Testbed& testbed, Duration gap, int probes)
      : testbed_(&testbed), gap_(gap), target_(probes) {
    flow_id_ = testbed.phone().allocate_flow_id();
    testbed.phone().register_flow(flow_id_, [this](const Packet&) {
      if (!awaiting_) return;
      awaiting_ = false;
      rtts_.push_back((testbed_->simulator().now() - probe_sent_).to_ms());
      schedule_next();
    });
  }

  ~GapProbeSession() { testbed_->phone().unregister_flow(flow_id_); }

  std::vector<double> run() {
    schedule_next();
    auto& sim = testbed_->simulator();
    const sim::TimePoint deadline = sim.now() + Duration::seconds(600);
    while (rtts_.size() < static_cast<std::size_t>(target_) &&
           sim.now() < deadline) {
      sim.run_for(Duration::millis(50));
    }
    return rtts_;
  }

 private:
  void schedule_next() {
    if (rtts_.size() >= static_cast<std::size_t>(target_)) return;
    auto& phone = testbed_->phone();
    auto& sim = testbed_->simulator();
    // Let the phone go fully idle, then warm, wait the gap, probe.
    sim.schedule_in(Duration::millis(700), [this, &phone, &sim] {
      phone.send(make_warmup(), phone::ExecMode::native_c);
      sim.schedule_in(Duration::millis(15), [this, &phone, &sim] {
        phone.send(make_warmup(), phone::ExecMode::native_c);
        sim.schedule_in(gap_, [this, &phone, &sim] {
          Packet probe = Packet::make(
              net::PacketType::icmp_echo_request, net::Protocol::icmp,
              0, Testbed::kServerId, net::packet_size::icmp_echo);
          probe.probe_id = Packet::allocate_id();
          probe.flow_id = flow_id_;
          probe_sent_ = sim.now();
          awaiting_ = true;
          phone.send(std::move(probe), phone::ExecMode::native_c);
        });
      });
    });
  }

  Packet make_warmup() const {
    Packet pkt = Packet::make(net::PacketType::udp_warmup, net::Protocol::udp,
                              0, Testbed::kServerId,
                              net::packet_size::udp_small);
    pkt.ttl = 1;  // dies at the AP
    pkt.flow_id = flow_id_;
    return pkt;
  }

  Testbed* testbed_;
  Duration gap_;
  int target_;
  std::uint32_t flow_id_ = 0;
  std::vector<double> rtts_;
  sim::TimePoint probe_sent_;
  bool awaiting_ = false;
};

}  // namespace

Experiment::TimeoutInference Experiment::infer_timeouts(
    const phone::PhoneProfile& profile, std::uint64_t seed) {
  TimeoutInference inference;
  core::TimeoutProber::Config prober_config;

  // --- Tip: binary-search the emulated RTT for the PSM-inflation onset.
  std::uint64_t run_counter = 0;
  const core::TimeoutProber::RttProbeFn rtt_probe =
      [&](Duration emulated_rtt, int probe_count) {
        PingSpec spec;
        spec.profile = profile;
        spec.emulated_rtt = emulated_rtt;
        spec.interval = sim::Duration::seconds(2);  // idle between probes
        spec.probes = probe_count;
        spec.seed = seed + 1000 + run_counter++;
        return ping(spec).run.reported_rtts_ms();
      };
  inference.psm_timeout =
      core::TimeoutProber::infer_psm_timeout(rtt_probe, prober_config);

  // --- Tis: binary-search the idle gap for the bus-wake onset.
  const core::TimeoutProber::GapProbeFn gap_probe =
      [&](Duration idle_gap, int probe_count) {
        TestbedConfig config;
        config.profile = profile;
        config.seed = seed + 5000 + run_counter++;
        config.emulated_rtt = sim::Duration::millis(5);
        Testbed testbed(config);
        testbed.settle(kSettle);
        GapProbeSession session(testbed, idle_gap, probe_count);
        return session.run();
      };
  inference.bus_sleep_timeout =
      core::TimeoutProber::infer_bus_sleep_timeout(gap_probe, prober_config);

  // --- Listen intervals: associated is announced; actual is inferred from
  // the PSM delays of a path longer than Tip.
  inference.listen_associated = profile.associated_listen_interval;
  {
    PingSpec spec;
    spec.profile = profile;
    spec.emulated_rtt = inference.psm_timeout + Duration::millis(80);
    spec.interval = sim::Duration::seconds(2);
    spec.probes = 30;
    spec.seed = seed + 9000;
    const MultiLayerResult result = ping(spec);
    std::vector<double> psm_delays;
    for (const auto& sample : result.samples) {
      const double delay = sample.dn_ms - spec.emulated_rtt.to_ms();
      if (delay > 5.0) psm_delays.push_back(delay);
    }
    inference.listen_actual =
        psm_delays.empty()
            ? 0
            : core::TimeoutProber::infer_actual_listen_interval(psm_delays);
  }
  return inference;
}

}  // namespace acute::testbed
