// Fleet-scale measurement campaigns: many scenarios, many cores, one report.
//
// The paper's methodology pays off at scale — the du/dk/dv/dn decomposition
// must be swept across handsets, loads and stack configurations the way
// crowdsourced systems (MopEye-style per-app measurement) sweep device
// fleets. Campaign is that sweep engine:
//
//   * One *shard* = one ScenarioSpec executed on its own sim::Simulator
//     (fully independent state) with one IcmpPing per phone.
//   * A pool of worker threads pulls shard indices from an atomic counter.
//   * Shard i runs its scenario with seed Rng(campaign_seed).fork(i), so a
//     shard's result is a pure function of (spec, campaign seed, i) — the
//     merged report is bit-identical for ANY worker count.
//   * After the pool joins, per-shard results are merged in scenario-index
//     order into campaign-wide sample vectors and summaries.
//
// ScenarioGrid expands axis lists (phone count x profile x radio x RTT x
// cross traffic) into the scenario vector, in a fixed nesting order.
#pragma once

#include <cstdint>
#include <vector>

#include "phone/profile.hpp"
#include "phone/smartphone.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "testbed/testbed.hpp"

namespace acute::testbed {

/// Axis lists expanded into a scenario vector (cross product). Empty axes
/// are contract violations — an empty grid is almost certainly a bug.
struct ScenarioGrid {
  std::vector<std::size_t> phone_counts{1};
  std::vector<phone::PhoneProfile> profiles{phone::PhoneProfile::nexus5()};
  std::vector<phone::RadioKind> radios{phone::RadioKind::wifi};
  std::vector<sim::Duration> emulated_rtts{sim::Duration::millis(30)};
  /// true = congested PHY + iPerf cross traffic running during probing.
  std::vector<bool> cross_traffic{false};
  /// Netem loss probability on the server egress, each in [0, 1).
  std::vector<double> loss_rates{0.0};
  /// true = the netem egress may reorder packets under jitter.
  std::vector<bool> reorder{false};

  /// The cross product, nesting (outer to inner): phone count, profile,
  /// radio, emulated RTT, cross traffic, loss rate, reorder. All phones of
  /// a scenario share the profile and radio; seeds are assigned by
  /// Campaign, not here. The loss/reorder axes default to single lossless
  /// entries, so pre-existing grids expand to byte-identical scenario
  /// vectors.
  [[nodiscard]] std::vector<ScenarioSpec> expand() const;

  /// Number of scenarios expand() will produce.
  [[nodiscard]] std::size_t size() const;
};

struct CampaignSpec {
  std::uint64_t seed = 42;
  std::vector<ScenarioSpec> scenarios;
  /// Per-phone IcmpPing schedule.
  int probes_per_phone = 20;
  sim::Duration probe_interval = sim::Duration::millis(200);
  sim::Duration probe_timeout = sim::Duration::seconds(8);
  /// Idle time before probing starts (power-save machinery steady state).
  sim::Duration settle = sim::Duration::millis(800);
};

/// One scenario's outcome. Sample vectors hold the scenario's phones in
/// phone-index order (per-phone probe order within each phone).
struct ShardResult {
  std::size_t scenario_index = 0;
  std::uint64_t shard_seed = 0;
  std::size_t phone_count = 0;
  std::size_t probes_sent = 0;
  std::size_t probes_lost = 0;
  /// Tool-reported RTTs of every successful probe.
  std::vector<double> reported_rtt_ms;
  /// Fig. 1 decomposition of every fully-stamped probe (WiFi phones; a
  /// cellular phone's probes lack driver/air stamps and appear only in
  /// reported_rtt_ms).
  std::vector<double> du_ms, dk_ms, dv_ms, dn_ms;
  /// Work accounting (throughput benches).
  std::uint64_t frames_on_air = 0;
  std::uint64_t events_fired = 0;
  double sim_seconds = 0;
};

/// Merged campaign outcome; shards are ordered by scenario index.
struct CampaignReport {
  std::vector<ShardResult> shards;

  /// Concatenation of a per-shard sample vector across shards, in scenario
  /// index order (the canonical merge used by the summaries below).
  [[nodiscard]] std::vector<double> merged(
      std::vector<double> ShardResult::*field) const;

  [[nodiscard]] stats::Summary rtt_summary() const;
  [[nodiscard]] stats::Cdf rtt_cdf() const;

  [[nodiscard]] std::size_t total_probes() const;
  [[nodiscard]] std::size_t total_lost() const;
  [[nodiscard]] std::uint64_t total_frames() const;
  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] double total_sim_seconds() const;
};

class Campaign {
 public:
  /// Requires at least one scenario and a positive probe count.
  explicit Campaign(CampaignSpec spec);

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }

  /// The deterministic seed shard `shard_index` runs its scenario with:
  /// Rng(campaign_seed).fork(shard_index). Depends only on the arguments,
  /// never on thread scheduling.
  [[nodiscard]] static std::uint64_t shard_seed(std::uint64_t campaign_seed,
                                                std::size_t shard_index);

  /// Runs every scenario across `workers` threads (0 = hardware
  /// concurrency) and merges the results. Deterministic for any worker
  /// count; a shard's failure (contract violation, deadlock guard) is
  /// rethrown after the pool joins, lowest shard index first.
  [[nodiscard]] CampaignReport run(std::size_t workers = 0);

  /// Runs a single shard synchronously (what each worker executes).
  [[nodiscard]] ShardResult run_shard(std::size_t scenario_index) const;

 private:
  CampaignSpec spec_;
};

}  // namespace acute::testbed
