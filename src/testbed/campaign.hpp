// Fleet-scale measurement campaigns: many scenarios, many cores, one report.
//
// The paper's methodology pays off at scale — the du/dk/dv/dn decomposition
// must be swept across handsets, loads and stack configurations the way
// crowdsourced systems (MopEye-style per-app measurement) sweep device
// fleets. Campaign is that sweep engine:
//
//   * One *shard* = one ScenarioSpec executed on its own sim::Simulator
//     (fully independent state) with one measurement tool per phone, picked
//     per phone by WorkloadSpec through tools::make_tool().
//   * A pool of worker threads pulls shard indices from an atomic counter.
//   * Shard i runs its scenario with seed Rng(campaign_seed).fork(i), so a
//     shard's result is a pure function of (spec, campaign seed, i) — the
//     merged report is bit-identical for ANY worker count.
//   * Each shard narrates its execution as typed report:: events (shard
//     started, one per completed probe, shard finished) through a per-shard
//     report::ResultSink chain: the built-in DigestSink (fixed-size
//     per-workload stats::MergingDigest accumulators) and, with
//     keep_samples, SampleBufferSink (the legacy raw vectors) back the
//     ShardResult/CampaignReport compatibility surface; CampaignSpec::sinks
//     plugs arbitrary consumers (JSONL export, checkpointing) into the same
//     stream. After the pool joins, shards merge in scenario-index order.
//     With keep_samples=false campaign memory is O(shards), not O(samples).
//   * CampaignSpec::checkpoint_path persists every completed shard, so a
//     killed sweep resumes from the last completed shard bit-identically.
//
// ScenarioGrid expands axis lists (phone count x profile x radio x RTT x
// cross traffic x loss x reorder x workload) into the scenario vector, in a
// fixed nesting order. The full contract (sharding, seed derivation,
// results pipeline, checkpoint format) is documented in docs/campaigns.md.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "phone/profile.hpp"
#include "phone/smartphone.hpp"
#include "report/checkpoint.hpp"
#include "report/digest_sink.hpp"
#include "report/sink.hpp"
#include "stats/cdf.hpp"
#include "stats/digest.hpp"
#include "stats/summary.hpp"
#include "testbed/shard_context.hpp"
#include "testbed/testbed.hpp"
#include "tools/factory.hpp"

namespace acute::testbed {

/// Axis lists expanded into a scenario vector (cross product). Empty axes
/// are contract violations — an empty grid is almost certainly a bug.
struct ScenarioGrid {
  std::vector<std::size_t> phone_counts{1};
  std::vector<phone::PhoneProfile> profiles{phone::PhoneProfile::nexus5()};
  std::vector<phone::RadioKind> radios{phone::RadioKind::wifi};
  std::vector<sim::Duration> emulated_rtts{sim::Duration::millis(30)};
  /// true = congested PHY + iPerf cross traffic running during probing.
  std::vector<bool> cross_traffic{false};
  /// Netem loss probability on the server egress, each in [0, 1).
  std::vector<double> loss_rates{0.0};
  /// true = the netem egress may reorder packets under jitter.
  std::vector<bool> reorder{false};
  /// Measurement workloads (tool kind + schedule overrides); every phone of
  /// a scenario runs the same workload. Defaults to one stock-ping entry.
  std::vector<WorkloadSpec> workloads{WorkloadSpec{}};

  /// The cross product, nesting (outer to inner): phone count, profile,
  /// radio, emulated RTT, cross traffic, loss rate, reorder, workload. All
  /// phones of a scenario share the profile, radio and workload; seeds are
  /// assigned by Campaign, not here. The loss/reorder/workload axes default
  /// to single lossless stock-ping entries, so pre-existing grids expand to
  /// byte-identical scenario vectors.
  [[nodiscard]] std::vector<ScenarioSpec> expand() const;

  /// The scenario expand()[index] would hold, built on demand — the O(1)
  /// memory iteration path of big campaigns (CampaignSpec::grid). at(i) and
  /// expand() share one construction routine, so they are identical
  /// element for element by construction (pinned by test_campaign_lazy).
  [[nodiscard]] ScenarioSpec at(std::size_t index) const;

  /// at(), but filled into `out` in place: every field is overwritten (the
  /// non-axis fields with their ScenarioSpec defaults), and the phones
  /// vector / label strings reuse out's existing capacity — the
  /// allocation-free iteration path of the shard-context pool. at(),
  /// expand() and at_into() share one construction routine, so all three
  /// are identical element for element by construction.
  void at_into(std::size_t index, ScenarioSpec& out) const;

  /// Number of scenarios expand() will produce / at() accepts.
  [[nodiscard]] std::size_t size() const;
};

struct CampaignSpec {
  /// Campaign seed S; shard i derives its scenario seed as Rng(S).fork(i).
  std::uint64_t seed = 42;
  /// The scenarios to execute, one shard each (usually ScenarioGrid output).
  /// Leave empty and set `grid` instead for big sweeps.
  std::vector<ScenarioSpec> scenarios;
  /// Lazy alternative to `scenarios`: shard i builds its ScenarioSpec on
  /// demand from grid->at(i), so campaign spec memory is O(1) instead of
  /// O(shards) — the 10^5–10^6-shard mode. Exactly one of `scenarios` /
  /// `grid` may be set; shard indices, seeds, hashes and merge order are
  /// identical to running grid->expand() materialized.
  std::optional<ScenarioGrid> grid;
  /// Default per-phone probe schedule; a phone's WorkloadSpec may override
  /// any of the three fields (its zero/<=0 fields fall back to these).
  int probes_per_phone = 20;
  sim::Duration probe_interval = sim::Duration::millis(200);
  sim::Duration probe_timeout = sim::Duration::seconds(8);
  /// Idle time before probing starts (power-save machinery steady state).
  sim::Duration settle = sim::Duration::millis(800);
  /// When false, shards skip the raw per-probe sample vectors and keep only
  /// the fixed-size streaming digests + counters: campaign memory becomes
  /// O(shards) instead of O(samples) — the mode for 10^5-scenario sweeps.
  /// (CampaignReport::merged()/rtt_summary()/rtt_cdf() need raw samples and
  /// are unavailable then; use the digest accessors.)
  bool keep_samples = true;
  /// Extra per-shard result sinks (streaming results pipeline): invoked once
  /// per shard, concurrently from worker threads, so the factory must be
  /// thread-safe; see report::ResultSink for the event-delivery contract and
  /// report::jsonl_sink_factory for a ready-made JSONL exporter.
  report::SinkFactory sinks;
  /// Non-empty: checkpoint/resume. Every completed shard appends its digests
  /// + counters here (report::CheckpointSink); Campaign::run skips shards
  /// already present and restores their ShardResult from the record (raw
  /// sample vectors are not checkpointed), so a killed sweep resumes from
  /// the last completed shard with bit-identical merged digests.
  std::string checkpoint_path;
  /// 0 = run every pending shard. Otherwise at most this many pending shards
  /// execute in this invocation and the rest stay incomplete — the knob
  /// behind kill/resume tests and incremental ("N shards per cron tick")
  /// checkpointed sweeps.
  std::size_t max_shards = 0;
  /// When false, run() switches to the *merge frontier*: each completed (or
  /// checkpoint-restored) shard is folded into campaign-level accumulators
  /// as soon as every lower-indexed shard has folded, then its digests are
  /// freed — peak report memory is O(workers + reorder window), not
  /// O(shards), the 10^5–10^6-shard mode. CampaignReport::shards stays
  /// empty then (use the digest/total accessors and shard_count()); the
  /// fold order is the same ascending-scenario order as the buffered merge,
  /// so the folded digests are bit-identical for any worker count and
  /// across kill/resume. Requires keep_samples=false (raw sample vectors
  /// cannot be folded away). Default true preserves the legacy per-shard
  /// ShardResult surface for small sweeps.
  bool retain_shards = true;

  /// FNV-1a fingerprint of everything that determines one shard's outcome
  /// besides the seed: the campaign probe schedule plus `scenario`'s shape.
  /// Stamped into every checkpoint record (see report::ShardCheckpoint) so
  /// a resume against an edited spec rejects the stale shards loudly — the
  /// one hash both checkpoint validation and the fabric wire protocol use.
  [[nodiscard]] std::uint64_t shard_hash(const ScenarioSpec& scenario) const;

  /// Shape-only fingerprint of the whole campaign: the scenario count plus
  /// every scenario's shard_hash() in index order (never the seed — the
  /// fabric handshake carries the seed as its own field so a seed mismatch
  /// gets its own loud message). A lazy grid and its materialized expand()
  /// hash identically, because both feed the same scenarios through the
  /// same per-shard hash. O(scenarios) to compute; computed once per
  /// handshake, not per shard.
  [[nodiscard]] std::uint64_t spec_hash() const;
};

/// The per-workload streaming accumulator now lives in the report::
/// subsystem (it is what DigestSink / CheckpointSink emit); this alias keeps
/// the historical testbed:: spelling working.
using WorkloadDigest = report::WorkloadDigest;

/// Wall-clock seconds spent per campaign pipeline stage. Per-shard stages
/// (build / simulate / sink) are summed across workers — with W workers the
/// sum can exceed the campaign's wall time W-fold; the ratios are what
/// matter (docs/campaigns.md, "Reading the BENCH numbers"). `restore` is
/// the serial checkpoint load/compact phase of Campaign::run; `merge` is
/// the frontier fold. In buffered mode (retain_shards=true) the digest
/// merge happens lazily in the report accessors instead, so `merge` stays 0
/// and benches time the accessor themselves.
struct StageSeconds {
  /// Scenario materialization + sink-chain setup + Testbed
  /// construction/rebuild.
  double build = 0;
  /// settle() + cross-traffic warmup + tool setup +
  /// run_until_all_finished().
  double simulate = 0;
  /// Canonical event flush through the sink chain (digest folds, JSONL
  /// blocks, checkpoint append) + shard_finished delivery.
  double sink = 0;
  /// In-order frontier fold of completed shards into the campaign
  /// accumulators (retain_shards=false only; runs on whichever worker
  /// advances the fold cursor).
  double merge = 0;
  /// Checkpoint load, validation and compaction (serial, resume only).
  double restore = 0;
};

/// One scenario's outcome — a view composed from the shard's built-in sink
/// outputs (DigestSink, SampleBufferSink). Sample vectors hold the
/// scenario's phones in phone-index order (per-phone probe order within
/// each phone).
struct ShardResult {
  /// False until the shard has executed (or been restored from a
  /// checkpoint): a killed/partial run leaves unfinished shards with this
  /// flag down and every counter and vector empty.
  bool completed = false;
  std::size_t scenario_index = 0;
  /// The derived seed this shard ran with (Campaign::shard_seed).
  std::uint64_t shard_seed = 0;
  std::size_t phone_count = 0;
  /// Exact fleet counters (all workloads of the shard combined).
  std::size_t probes_sent = 0;
  std::size_t probes_lost = 0;
  /// Tool-reported RTTs of every successful probe, in **milliseconds**.
  /// Empty when CampaignSpec::keep_samples is false.
  std::vector<double> reported_rtt_ms;
  /// Fig. 1 decomposition (ms) of every fully-stamped probe (WiFi phones; a
  /// cellular phone's probes lack driver/air stamps and appear only in
  /// reported_rtt_ms). Empty when keep_samples is false.
  std::vector<double> du_ms, dk_ms, dv_ms, dn_ms;
  /// Passive vantage-point RTT samples (ms), canonical event order: sniffer
  /// TCP-timestamp estimates and per-app exec-env estimates, for phones
  /// whose WorkloadSpec enables them. Empty when keep_samples is false.
  std::vector<double> passive_sniffer_rtt_ms, passive_app_rtt_ms;
  /// Streaming per-workload accumulators, ordered by ToolKind enumerator
  /// value; only kinds the shard actually ran appear. Always populated,
  /// independent of keep_samples.
  std::vector<WorkloadDigest> digests;
  /// Work accounting (throughput benches).
  std::uint64_t frames_on_air = 0;
  std::uint64_t events_fired = 0;
  double sim_seconds = 0;
};

/// Merged campaign outcome; shards are ordered by scenario index.
struct CampaignReport {
  /// Per-shard results (buffered mode). Empty when the campaign ran with
  /// CampaignSpec::retain_shards=false — the frontier fold consumed each
  /// shard into `frontier` instead of retaining it.
  std::vector<ShardResult> shards;
  /// Per-stage time breakdown of the run (see StageSeconds).
  StageSeconds stage;

  /// Campaign-level accumulators the merge frontier folds completed shards
  /// into, in ascending scenario-index order — the same order (and thus the
  /// same bits) as the buffered accessors' post-join merge. Only populated
  /// when `active` (retain_shards=false); the accessors below read from it
  /// automatically then.
  struct FoldedTotals {
    /// True when the campaign ran in frontier mode.
    bool active = false;
    /// Total shards in the campaign (shards.size() is 0 in frontier mode).
    std::size_t shard_count = 0;
    /// Shards folded (executed or restored) by this run.
    std::size_t completed = 0;
    /// Exact fleet counters, summed in ascending scenario order.
    std::size_t probes = 0;
    std::size_t lost = 0;
    std::uint64_t frames = 0;
    std::uint64_t events = 0;
    double sim_seconds = 0;
    /// Per-workload digest accumulators (ascending ToolKind slots).
    report::WorkloadFold workloads;
  } frontier;

  /// Concatenation of a per-shard sample vector across shards, in scenario
  /// index order (the canonical merge used by the summaries below).
  /// Requires the campaign to have run with keep_samples=true.
  [[nodiscard]] std::vector<double> merged(
      std::vector<double> ShardResult::*field) const;

  /// Summary / ECDF of every reported RTT (ms); need keep_samples=true.
  [[nodiscard]] stats::Summary rtt_summary() const;
  [[nodiscard]] stats::Cdf rtt_cdf() const;

  /// Per-workload streaming accumulators merged across all shards in
  /// scenario-index order, returned by ascending ToolKind; only kinds that
  /// ran appear. Works in both keep_samples modes and both retention modes
  /// (frontier mode reads the already-folded accumulators; bit-identical).
  [[nodiscard]] std::vector<WorkloadDigest> workload_digests() const;
  /// All workloads' reported-RTT digests merged into one distribution (ms).
  [[nodiscard]] stats::MergingDigest rtt_digest() const;

  /// Total shards in the campaign: shards.size() in buffered mode, the
  /// frontier's shard count otherwise. Use this instead of shards.size()
  /// in retention-mode-agnostic code.
  [[nodiscard]] std::size_t shard_count() const;

  /// Shards that actually executed (or were restored from a checkpoint);
  /// equals shard_count() for an uninterrupted, un-capped run.
  [[nodiscard]] std::size_t completed_shards() const;

  /// Exact fleet totals (sums over shards).
  [[nodiscard]] std::size_t total_probes() const;
  [[nodiscard]] std::size_t total_lost() const;
  [[nodiscard]] std::uint64_t total_frames() const;
  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] double total_sim_seconds() const;
};

class Campaign {
 public:
  /// Requires at least one scenario (exactly one of CampaignSpec::scenarios
  /// / CampaignSpec::grid set) and a positive probe count.
  explicit Campaign(CampaignSpec spec);

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }

  /// Number of shards (scenarios.size() or grid->size()).
  [[nodiscard]] std::size_t scenario_count() const;

  /// The scenario shard `index` runs (materialized copy; the lazy-grid path
  /// builds it on demand). Seed not yet assigned — run_shard does that.
  [[nodiscard]] ScenarioSpec scenario_at(std::size_t index) const;

  /// The deterministic seed shard `shard_index` runs its scenario with:
  /// Rng(campaign_seed).fork(shard_index). Depends only on the arguments,
  /// never on thread scheduling.
  [[nodiscard]] static std::uint64_t shard_seed(std::uint64_t campaign_seed,
                                                std::size_t shard_index);

  /// Runs every scenario across `workers` threads (0 = hardware
  /// concurrency) and merges the results. Deterministic for any worker
  /// count; a shard's failure (contract violation, deadlock guard) is
  /// rethrown after the pool joins, lowest shard index first.
  ///
  /// With CampaignSpec::checkpoint_path set, shards already recorded there
  /// are restored instead of re-executed (their seed is validated against
  /// shard_seed(), so a checkpoint from a different campaign is a contract
  /// violation) and newly completed shards are appended — the merged
  /// workload digests of a killed-and-resumed sweep are bit-identical to an
  /// uninterrupted run's. With CampaignSpec::max_shards set, at most that
  /// many pending shards execute (the rest stay !completed).
  [[nodiscard]] CampaignReport run(std::size_t workers = 0);

  /// Runs a single shard synchronously on a fresh, throwaway context
  /// (what run_shard(index, context) does on a first-use context).
  [[nodiscard]] ShardResult run_shard(std::size_t scenario_index) const;

  /// Runs a single shard on a reusable per-worker context: the context's
  /// simulator, testbed node graph, tools and sink scratch are reset into
  /// this scenario instead of reconstructed — near-zero heap allocations
  /// when the scenario shape repeats, and byte-identical results either
  /// way (what each pool worker executes; see docs/campaigns.md).
  [[nodiscard]] ShardResult run_shard(std::size_t scenario_index,
                                      ShardContext& context) const;

  /// The fabric worker entry: runs one leased shard on `context` and
  /// returns it as the checkpoint record a single-process campaign would
  /// have appended — summary counters, this spec's shard_hash() and the
  /// per-workload digests (DigestSink and CheckpointSink share one fold, so
  /// the bits are identical). The caller owns merge and persistence:
  /// render_checkpoint_record() turns the record into the ckpt2 wire line a
  /// coordinator folds through MergeFrontier.
  [[nodiscard]] report::ShardCheckpoint run_shard_record(
      std::size_t scenario_index, ShardContext& context) const;

 private:
  /// `run_sequence` is the shard's dense position in this invocation's
  /// pending order (report::ShardInfo::run_sequence); `stage` (optional)
  /// accumulates the shard's build/simulate/sink wall seconds.
  [[nodiscard]] ShardResult run_shard(
      std::size_t scenario_index, std::size_t run_sequence,
      const std::shared_ptr<report::CheckpointWriter>& checkpoint,
      StageSeconds* stage, ShardContext& context) const;

  /// Materializes shard `index`'s scenario into `out` (capacity-reusing;
  /// the grid path delegates to ScenarioGrid::at_into, the materialized
  /// path copy-assigns).
  void scenario_into(std::size_t index, ScenarioSpec& out) const;

  CampaignSpec spec_;
};

}  // namespace acute::testbed
