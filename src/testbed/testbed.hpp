// The multiple-sniffer WiFi testbed of Fig. 2, generalised to a
// scenario-driven builder.
//
//   [phone 0..N-1]~~~\                   /---[measurement server + netem]
//   [load gen]~~~~~~~~ (802.11 channel) [AP]---[switch]
//   [sniffers observe the channel]           \---[load server (UDP sink)]
//
// A ScenarioSpec describes everything the builder needs: the set of phones
// (each with its own PhoneProfile, i.e. heterogeneous handsets contending on
// one channel), the emulated path RTT, the PHY mode, the cross-traffic load
// and the sniffer array. The paper's Fig. 2 single-phone topology is the
// default spec, so `Testbed{}` (and the TestbedConfig compatibility struct)
// reproduce the original testbed bit for bit: the measurement server's
// netem qdisc emulates the path RTT; the wireless load generator pushes ten
// 2.5 Mbit/s UDP flows at the load server to congest the WLAN; three
// sniffers capture every frame for the t_n vantage point.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cellular/rrc.hpp"
#include "core/layer_sample.hpp"
#include "net/link.hpp"
#include "net/server.hpp"
#include "net/switch.hpp"
#include "net/traffic_gen.hpp"
#include "passive/observer.hpp"
#include "phone/profile.hpp"
#include "phone/smartphone.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tools/factory.hpp"
#include "tools/tool.hpp"
#include "wifi/access_point.hpp"
#include "wifi/channel.hpp"
#include "wifi/sniffer.hpp"
#include "wifi/station.hpp"

namespace acute::testbed {

/// A plain wireless host (the load generator: a desktop WNIC with power
/// save disabled, unlike the phones under test).
class WirelessHost {
 public:
  /// Joins `channel` as station `id`, associated with the AP `ap_id`.
  WirelessHost(sim::Simulator& sim, wifi::Channel& channel, sim::Rng rng,
               net::NodeId id, net::NodeId ap_id);

  /// Returns the host to the state the constructor would leave it in with
  /// these arguments; the host stays on the channel it was built on
  /// (shard-context reuse contract).
  void reset(sim::Rng rng, net::NodeId id, net::NodeId ap_id);

  /// Sends a packet toward the AP after a small host-stack delay.
  void transmit(net::Packet&& packet);

  /// The host's 802.11 station (power save disabled).
  [[nodiscard]] wifi::Station& station() { return station_; }
  /// The host's node id on the fabric.
  [[nodiscard]] net::NodeId id() const { return id_; }

 private:
  sim::Simulator* sim_;
  sim::Rng rng_;
  net::NodeId id_;
  wifi::Station station_;
};

/// Single-phone testbed knobs — the original Fig. 2 configuration surface,
/// kept as the convenience front-end for the common case. Converted into a
/// one-phone ScenarioSpec by the Testbed constructor.
struct TestbedConfig {
  /// The handset under test (its PSM/SDIO/runtime parameters).
  phone::PhoneProfile profile = phone::PhoneProfile::nexus5();
  /// Root rng seed every component stream is forked from.
  std::uint64_t seed = 42;
  /// tc-netem delay on the measurement server (one-way, on its egress).
  sim::Duration emulated_rtt = sim::Duration{};
  /// Netem delay jitter on the same egress (paper setup: 1.5 ms).
  sim::Duration netem_jitter = sim::Duration::millis(1.5);
  /// Use the mixed-mode PHY (protection, degraded rate) — the §4.3
  /// congested-WLAN configuration. Enable whenever cross traffic runs.
  bool congested_phy = false;
  /// iPerf cross-traffic shape: N parallel UDP flows of this rate each.
  std::size_t cross_connections = 10;
  double cross_flow_mbps = 2.5;
  /// When true the AP answers TTL=1 packets with ICMP time-exceeded.
  bool send_ttl_exceeded = false;
  /// Sniffer radiotap timestamp noise (microsecond scale).
  sim::Duration sniffer_noise = sim::Duration::micros(2);
};

/// Per-phone measurement workload: which tool the campaign engine runs on
/// this phone and, optionally, schedule overrides. The defaults — stock
/// ICMP ping, no overrides — make a spec without an explicit workload
/// behave exactly like the pre-workload campaign engine.
struct WorkloadSpec {
  /// Which of the paper's four tools probes from this phone.
  tools::ToolKind tool = tools::ToolKind::icmp_ping;
  /// Probes to send; <= 0 means "use CampaignSpec::probes_per_phone".
  int probe_count = 0;
  /// Inter-probe interval/gap; zero means "use CampaignSpec::probe_interval"
  /// (AcuteMon ignores it: its measurement thread is always back-to-back).
  sim::Duration interval{};
  /// Per-probe timeout; zero means "use CampaignSpec::probe_timeout".
  sim::Duration timeout{};
  /// Passive RTT vantage points the campaign attaches alongside the tool:
  /// a pping-style TCP-timestamp estimator on sniffer 0 and/or a MopEye-style
  /// per-app monitor on this phone's exec-env layer. Passive samples stream
  /// as Vantage::passive_* ProbeEvents after the phone's active probes; none
  /// of them injects traffic or perturbs the active schedule.
  passive::PassiveVantage passive = passive::PassiveVantage::none;

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

/// One phone under test in a scenario.
struct PhoneSpec {
  phone::PhoneProfile profile = phone::PhoneProfile::nexus5();
  /// Rng-stream / diagnostics label. Empty picks "phone" for phone 0 (the
  /// paper's device under test) and "phone-<i>" beyond — phone 0's streams
  /// are therefore identical to the pre-scenario testbed's.
  std::string label;
  /// Which radio this phone's stack bottoms out in. WiFi phones contend on
  /// the scenario's 802.11 channel; cellular phones reach the same wired
  /// fabric through the RRC-gated radio and the cellular gateway.
  phone::RadioKind radio = phone::RadioKind::wifi;
  /// RRC parameters (cellular phones only).
  cellular::RrcConfig rrc = cellular::RrcConfig::umts_3g();
  /// The measurement workload Campaign::run_shard drives on this phone
  /// (ignored by the plain Testbed builder, which starts no tools itself).
  WorkloadSpec workload;
};

/// The cellular core-network gateway: the wired peer of a scenario's
/// cellular phones. Uplink packets leave a phone's RrcRadioLayer egress and
/// enter the wired fabric here (TTL handling included, so TTL=1 system
/// chatter dies at this first hop exactly as it does at the WiFi AP);
/// downlink packets matching a registered phone are injected at the bottom
/// of that phone's pipeline.
class CellularGateway : public net::Node {
 public:
  CellularGateway(sim::Simulator& sim, net::NodeId id)
      : sim_(&sim), id_(id) {}

  /// Returns the gateway to the state the constructor would leave it in;
  /// the phone registry storage stays warm (shard-context reuse contract).
  void reset(net::NodeId id) {
    id_ = id;
    link_ = nullptr;
    phones_.clear();
    uplink_ = 0;
    downlink_ = 0;
    ttl_drops_ = 0;
  }

  /// Connects the core-network link. Must be called before traffic.
  void attach_link(net::Link& link);
  /// Registers a cellular phone and wires its radio egress to this gateway.
  void attach_phone(phone::Smartphone& phone);

  void receive(net::Packet&& packet, net::Link* ingress) override;
  [[nodiscard]] net::NodeId id() const override { return id_; }

  /// Packets forwarded phone -> wired fabric / fabric -> phone so far.
  [[nodiscard]] std::uint64_t uplink_packets() const { return uplink_; }
  [[nodiscard]] std::uint64_t downlink_packets() const { return downlink_; }
  /// TTL=1 system chatter absorbed at this first hop.
  [[nodiscard]] std::uint64_t ttl_drops() const { return ttl_drops_; }

 private:
  void uplink(net::Packet&& packet);

  sim::Simulator* sim_;
  net::NodeId id_;
  net::Link* link_ = nullptr;
  // A scenario registers a handful of cellular phones; a flat vector keeps
  // lookups cheap and (re)attachment allocation-free in steady state.
  std::vector<std::pair<net::NodeId, phone::Smartphone*>> phones_;
  std::uint64_t uplink_ = 0;
  std::uint64_t downlink_ = 0;
  std::uint64_t ttl_drops_ = 0;
};

/// Full scenario description: N heterogeneous phones contending on one
/// channel plus the wired fabric and load infrastructure of Fig. 2.
struct ScenarioSpec {
  /// The handsets under test, all contending on one channel (>= 1).
  std::vector<PhoneSpec> phones{PhoneSpec{}};
  /// Root rng seed (campaigns overwrite it with the derived shard seed).
  std::uint64_t seed = 42;
  /// tc-netem delay on the measurement server (one-way, on its egress).
  sim::Duration emulated_rtt = sim::Duration{};
  /// Netem delay jitter on the same egress.
  sim::Duration netem_jitter = sim::Duration::millis(1.5);
  /// Mixed-mode PHY (§4.3); enable whenever cross traffic runs.
  bool congested_phy = false;
  /// iPerf cross-traffic shape: N parallel UDP flows of this rate each.
  std::size_t cross_connections = 10;
  double cross_flow_mbps = 2.5;
  /// When true the AP answers TTL=1 packets with ICMP time-exceeded.
  bool send_ttl_exceeded = false;
  /// Sniffer radiotap timestamp noise (microsecond scale).
  sim::Duration sniffer_noise = sim::Duration::micros(2);
  /// Sniffers observing the channel for the t_n vantage point.
  std::size_t sniffer_count = 3;
  /// Core-network RTT for cellular phones (gateway <-> switch propagation
  /// covers both directions; RRC state latencies come on top).
  sim::Duration cellular_core_rtt = sim::Duration::millis(50);
  /// Independent loss probability on the measurement server's netem egress
  /// (tc netem "loss <p>%"), in [0, 1).
  double netem_loss = 0.0;
  /// When true the netem egress may release packets out of order under
  /// jitter (plain netem forbids reordering; this is the "reorder" option).
  bool netem_reorder = false;

  /// The paper's Fig. 2 defaults as a scenario (what TestbedConfig maps to).
  [[nodiscard]] static ScenarioSpec fig2(const TestbedConfig& config = {});

  /// Heterogeneous per-phone workloads within ONE scenario: assigns
  /// mix[i % mix.size()] to phone i (round-robin), so e.g. a 4-phone
  /// scenario with the 4-tool mix runs the whole Fig. 8 zoo on one channel,
  /// contending against itself. Requires a non-empty mix and at least one
  /// phone; returns *this for chaining.
  ScenarioSpec& assign_workloads(const std::vector<WorkloadSpec>& mix);

  /// Number of phones with the given radio kind.
  [[nodiscard]] std::size_t count_radio(phone::RadioKind kind) const;
};

class Testbed {
 public:
  // Flat addresses of the Fig. 2 devices. Additional phones beyond the
  // first are numbered from kExtraPhoneBaseId upward.
  static constexpr net::NodeId kPhoneId = 1;
  static constexpr net::NodeId kApId = 2;
  static constexpr net::NodeId kSwitchId = 3;
  static constexpr net::NodeId kServerId = 4;
  static constexpr net::NodeId kLoadGenId = 5;
  static constexpr net::NodeId kLoadSinkId = 6;
  static constexpr net::NodeId kExtraPhoneBaseId = 7;
  /// Cellular gateway address (top of the id space, clear of phone ids).
  static constexpr net::NodeId kCellGatewayId = 0xffff'0000;

  /// Node id of the `index`-th phone of a scenario.
  [[nodiscard]] static constexpr net::NodeId phone_id(std::size_t index) {
    return index == 0 ? kPhoneId
                      : kExtraPhoneBaseId +
                            static_cast<net::NodeId>(index - 1);
  }

  /// Builds the scenario described by `spec` (requires >= 1 phone).
  explicit Testbed(ScenarioSpec spec);
  /// Builds the scenario on an externally-owned simulator (the shard-context
  /// pool shares one warm simulator across many testbed rebuilds). The
  /// simulator must be freshly constructed or reset().
  Testbed(ScenarioSpec spec, sim::Simulator& sim);
  /// Fig. 2 compatibility front-end: a single-phone scenario.
  explicit Testbed(TestbedConfig config = {});

  /// Tears the previous scenario down logically (simulator reset, all
  /// pending events cancelled) and builds `spec` in place, reusing every
  /// node, link and stack object whose shape still fits. The result is
  /// indistinguishable from a freshly-constructed Testbed{spec}: the same
  /// rng streams, the same event schedule, the same node graph — but with
  /// near-zero heap allocations when the scenario shape repeats
  /// (shard-context reuse contract). Takes the spec by const reference so
  /// the internal copy reuses the previous scenario's buffer capacity.
  void rebuild(const ScenarioSpec& spec);

  /// The scenario's simulator (all devices schedule on it).
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  /// The (first) phone under test.
  [[nodiscard]] phone::Smartphone& phone() { return *phones_.front(); }
  /// The `index`-th phone of the scenario.
  [[nodiscard]] phone::Smartphone& phone(std::size_t index) {
    return *phones_.at(index);
  }
  /// Number of phones in the scenario.
  [[nodiscard]] std::size_t phone_count() const { return phones_.size(); }
  /// The measurement server (echoes probes through its netem qdisc).
  [[nodiscard]] net::EchoServer& server() { return *server_; }
  /// The Fig. 2 access point.
  [[nodiscard]] wifi::AccessPoint& ap() { return *ap_; }
  /// The shared 802.11 channel every wireless device contends on.
  [[nodiscard]] wifi::Channel& channel() { return *channel_; }
  /// The UDP sink the iPerf cross traffic targets.
  [[nodiscard]] net::UdpSink& load_sink() { return *load_sink_; }
  /// The `index`-th channel sniffer.
  [[nodiscard]] wifi::Sniffer& sniffer(std::size_t index) {
    return *sniffers_.at(index);
  }
  /// Number of sniffers observing the channel.
  [[nodiscard]] std::size_t sniffer_count() const { return sniffers_.size(); }
  /// The scenario this testbed was built from.
  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }
  /// The cellular gateway (contract violation when the scenario has no
  /// cellular phone).
  [[nodiscard]] CellularGateway& cellular_gateway();

  /// Reconfigures the emulated path RTT (tc on the server).
  void set_emulated_rtt(sim::Duration rtt);

  /// Starts / stops the iPerf cross traffic (§4.3).
  void start_cross_traffic();
  void stop_cross_traffic();
  /// True between start_cross_traffic() and stop_cross_traffic().
  [[nodiscard]] bool cross_traffic_running() const;
  /// Goodput at the load server since cross traffic started, Mbit/s.
  [[nodiscard]] double cross_traffic_throughput_mbps() const;

  /// Runs the simulation forward so beacons, watchdogs and power-save
  /// machinery reach steady state before an experiment.
  void settle(sim::Duration span = sim::Duration::millis(600));

  /// Drives the simulation until `tool` finishes (or `max_sim_time` of
  /// simulated time elapses — a deadlock guard, not a normal exit).
  void run_until_finished(tools::MeasurementTool& tool,
                          sim::Duration max_sim_time =
                              sim::Duration::seconds(3600));
  /// As above for several concurrently-running tools (multi-phone runs).
  void run_until_all_finished(
      const std::vector<tools::MeasurementTool*>& tools,
      sim::Duration max_sim_time = sim::Duration::seconds(3600));

  /// Folds a tool run into per-probe multi-layer samples. Probes that timed
  /// out or lack stamps are skipped. The reported (tool-level) RTT is used
  /// as du, as in the paper's user-level vantage point.
  [[nodiscard]] std::vector<core::LayerSample> layer_samples(
      const tools::ToolRun& run) const;

 private:
  /// First build and every rebuild: constructs/resets the whole node graph
  /// from spec_ in the exact order the original constructor used, so the
  /// event schedule (and therefore every simulation output) is bit-identical
  /// between a fresh Testbed and a reused one.
  void build_graph();
  /// Builds or reconfigures the iPerf generator for the current spec. The
  /// generator is lazy: scenarios that never start cross traffic (most
  /// campaign shards) never pay for its ten flows.
  void ensure_iperf();

  // owned_sim_ before sim_ before spec_/rng_: constructor member-init order.
  std::unique_ptr<sim::Simulator> owned_sim_;
  sim::Simulator* sim_;
  ScenarioSpec spec_;
  sim::Rng rng_;
  std::unique_ptr<wifi::Channel> channel_;
  std::unique_ptr<wifi::AccessPoint> ap_;
  std::unique_ptr<net::Switch> switch_;
  std::unique_ptr<net::EchoServer> server_;
  std::unique_ptr<net::UdpSink> load_sink_;
  std::unique_ptr<net::Link> ap_switch_link_;
  std::unique_ptr<net::Link> switch_server_link_;
  std::unique_ptr<net::Link> switch_sink_link_;
  std::unique_ptr<WirelessHost> load_gen_;
  std::unique_ptr<CellularGateway> gateway_;
  std::unique_ptr<net::Link> gateway_link_;
  std::unique_ptr<net::IperfLoadGenerator> iperf_;
  std::vector<std::unique_ptr<phone::Smartphone>> phones_;
  std::vector<std::unique_ptr<wifi::Sniffer>> sniffers_;
  // Label-uniqueness scratch, reused across rebuilds (SSO labels => no
  // steady-state allocations where the old std::set allocated a node per
  // phone per shard).
  std::vector<std::string> used_labels_;
  bool iperf_ready_ = false;
  bool cross_running_ = false;
};

}  // namespace acute::testbed
