// ShardContext: the per-worker reusable execution context of a campaign.
//
// Building a shard from nothing — a Simulator, a Testbed node graph, one
// stack pipeline per phone, a measurement tool per phone, the sink scratch —
// costs thousands of heap allocations, and a 10^4..10^6-shard sweep pays
// that price per shard. A ShardContext keeps all of it alive between
// shards: Campaign::run gives each worker one context, and run_shard
// *resets* the warm objects into the next scenario (Testbed::rebuild, the
// per-layer reset() contract, MeasurementTool::reinitialize) instead of
// destroying and reconstructing them.
//
// The hard constraint is bit-identity: a shard executed on a reused context
// produces byte-identical digests, JSONL exports and checkpoint records to
// one executed on a fresh context, for any worker count and across
// kill/resume. Every reset() in the chain is specified as "the state the
// constructor would leave behind", and Testbed::rebuild replays the
// construction order exactly so the event schedule (and thus every rng
// draw) matches a fresh build. docs/campaigns.md § "The shard-context pool"
// documents the full contract and what is / is not reused.
#pragma once

#include <cstddef>
#include <memory>

namespace acute::testbed {

class Campaign;

class ShardContext {
 public:
  ShardContext();
  ~ShardContext();
  ShardContext(ShardContext&& other) noexcept;
  ShardContext& operator=(ShardContext&& other) noexcept;
  ShardContext(const ShardContext&) = delete;
  ShardContext& operator=(const ShardContext&) = delete;

  /// Shards executed through this context so far.
  [[nodiscard]] std::size_t shards_run() const;
  /// Shards that reused the warm testbed (all but the context's first).
  [[nodiscard]] std::size_t reuses() const;

 private:
  friend class Campaign;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace acute::testbed
