#include "testbed/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <thread>
#include <utility>

#include <array>
#include <optional>

#include "core/layer_sample.hpp"
#include "sim/contracts.hpp"
#include "sim/random.hpp"
#include "tools/factory.hpp"

namespace acute::testbed {

using sim::Duration;
using sim::expects;

namespace {

/// Group-by-ToolKind accumulator shared by the shard fold and the report
/// merge: slots are kind-indexed, so take() emits in ascending ToolKind
/// order (the documented ordering of ShardResult::digests and
/// CampaignReport::workload_digests()).
class WorkloadFold {
 public:
  /// The accumulator for `kind`, created on first access.
  WorkloadDigest& slot(tools::ToolKind kind) {
    auto& entry = slots_[tools::tool_kind_index(kind)];
    if (!entry.has_value()) {
      entry.emplace();
      entry->tool = kind;
    }
    return *entry;
  }

  /// The populated accumulators, ascending ToolKind.
  std::vector<WorkloadDigest> take() {
    std::vector<WorkloadDigest> out;
    for (auto& entry : slots_) {
      if (entry.has_value()) out.push_back(std::move(*entry));
    }
    return out;
  }

 private:
  std::array<std::optional<WorkloadDigest>, tools::kToolKindCount> slots_;
};

}  // namespace

std::vector<ScenarioSpec> ScenarioGrid::expand() const {
  expects(!phone_counts.empty() && !profiles.empty() && !radios.empty() &&
              !emulated_rtts.empty() && !cross_traffic.empty() &&
              !loss_rates.empty() && !reorder.empty() && !workloads.empty(),
          "ScenarioGrid axes must all be non-empty");
  for (const double loss : loss_rates) {
    expects(loss >= 0.0 && loss < 1.0,
            "ScenarioGrid loss rates must be in [0, 1)");
  }
  std::vector<ScenarioSpec> scenarios;
  scenarios.reserve(size());
  for (const std::size_t count : phone_counts) {
    expects(count > 0, "ScenarioGrid phone counts must be positive");
    for (const phone::PhoneProfile& profile : profiles) {
      for (const phone::RadioKind radio : radios) {
        for (const Duration rtt : emulated_rtts) {
          for (const bool cross : cross_traffic) {
            for (const double loss : loss_rates) {
              for (const bool allow_reorder : reorder) {
                for (const WorkloadSpec& workload : workloads) {
                  ScenarioSpec scenario;
                  PhoneSpec phone;
                  phone.profile = profile;
                  phone.radio = radio;
                  phone.workload = workload;
                  scenario.phones.assign(count, phone);
                  scenario.emulated_rtt = rtt;
                  scenario.congested_phy = cross;
                  scenario.netem_loss = loss;
                  scenario.netem_reorder = allow_reorder;
                  scenarios.push_back(std::move(scenario));
                }
              }
            }
          }
        }
      }
    }
  }
  return scenarios;
}

std::size_t ScenarioGrid::size() const {
  return phone_counts.size() * profiles.size() * radios.size() *
         emulated_rtts.size() * cross_traffic.size() * loss_rates.size() *
         reorder.size() * workloads.size();
}

void WorkloadDigest::merge(const WorkloadDigest& other) {
  expects(tool == other.tool,
          "WorkloadDigest::merge requires matching tool kinds");
  probes += other.probes;
  lost += other.lost;
  reported_rtt_ms.merge(other.reported_rtt_ms);
  du_ms.merge(other.du_ms);
  dk_ms.merge(other.dk_ms);
  dv_ms.merge(other.dv_ms);
  dn_ms.merge(other.dn_ms);
}

std::vector<double> CampaignReport::merged(
    std::vector<double> ShardResult::*field) const {
  std::vector<double> all;
  for (const ShardResult& shard : shards) {
    const std::vector<double>& samples = shard.*field;
    all.insert(all.end(), samples.begin(), samples.end());
  }
  return all;
}

stats::Summary CampaignReport::rtt_summary() const {
  return stats::Summary(merged(&ShardResult::reported_rtt_ms));
}

stats::Cdf CampaignReport::rtt_cdf() const {
  return stats::Cdf(merged(&ShardResult::reported_rtt_ms));
}

std::vector<WorkloadDigest> CampaignReport::workload_digests() const {
  // Shards are already in scenario-index order, and each shard's digests
  // are in ascending ToolKind order, so folding front to back gives the
  // deterministic scenario-order merge the determinism contract requires.
  WorkloadFold fold;
  for (const ShardResult& shard : shards) {
    for (const WorkloadDigest& digest : shard.digests) {
      fold.slot(digest.tool).merge(digest);
    }
  }
  return fold.take();
}

stats::MergingDigest CampaignReport::rtt_digest() const {
  stats::MergingDigest all;
  for (const WorkloadDigest& digest : workload_digests()) {
    all.merge(digest.reported_rtt_ms);
  }
  return all;
}

std::size_t CampaignReport::total_probes() const {
  std::size_t total = 0;
  for (const ShardResult& shard : shards) total += shard.probes_sent;
  return total;
}

std::size_t CampaignReport::total_lost() const {
  std::size_t total = 0;
  for (const ShardResult& shard : shards) total += shard.probes_lost;
  return total;
}

std::uint64_t CampaignReport::total_frames() const {
  std::uint64_t total = 0;
  for (const ShardResult& shard : shards) total += shard.frames_on_air;
  return total;
}

std::uint64_t CampaignReport::total_events() const {
  std::uint64_t total = 0;
  for (const ShardResult& shard : shards) total += shard.events_fired;
  return total;
}

double CampaignReport::total_sim_seconds() const {
  double total = 0;
  for (const ShardResult& shard : shards) total += shard.sim_seconds;
  return total;
}

Campaign::Campaign(CampaignSpec spec) : spec_(std::move(spec)) {
  expects(!spec_.scenarios.empty(), "Campaign requires at least one scenario");
  expects(spec_.probes_per_phone > 0,
          "Campaign requires probes_per_phone > 0");
  expects(spec_.probe_timeout > Duration{},
          "Campaign requires a positive probe timeout");
}

std::uint64_t Campaign::shard_seed(std::uint64_t campaign_seed,
                                   std::size_t shard_index) {
  return sim::Rng(campaign_seed)
      .fork(static_cast<std::uint64_t>(shard_index))
      .seed();
}

ShardResult Campaign::run_shard(std::size_t scenario_index) const {
  expects(scenario_index < spec_.scenarios.size(),
          "Campaign::run_shard index out of range");
  ScenarioSpec scenario = spec_.scenarios[scenario_index];
  scenario.seed = shard_seed(spec_.seed, scenario_index);

  ShardResult result;
  result.scenario_index = scenario_index;
  result.shard_seed = scenario.seed;
  result.phone_count = scenario.phones.size();

  Testbed testbed(std::move(scenario));
  testbed.settle(spec_.settle);
  if (testbed.spec().congested_phy) {
    testbed.start_cross_traffic();
    testbed.settle(Duration::seconds(2));  // reach saturation
  }

  // One tool per phone, selected by the phone's WorkloadSpec; workload
  // fields left at zero fall back to the campaign-wide schedule defaults.
  std::vector<std::unique_ptr<tools::MeasurementTool>> instruments;
  std::vector<tools::MeasurementTool*> running;
  instruments.reserve(testbed.phone_count());
  for (std::size_t i = 0; i < testbed.phone_count(); ++i) {
    const WorkloadSpec& workload = testbed.spec().phones[i].workload;
    tools::MeasurementTool::Config config;
    config.probe_count = workload.probe_count > 0 ? workload.probe_count
                                                  : spec_.probes_per_phone;
    config.interval = workload.interval.is_zero() ? spec_.probe_interval
                                                  : workload.interval;
    config.timeout = workload.timeout.is_zero() ? spec_.probe_timeout
                                                : workload.timeout;
    config.target = Testbed::kServerId;
    instruments.push_back(
        tools::make_tool(workload.tool, testbed.phone(i), config));
    instruments.back()->start();
    running.push_back(instruments.back().get());
  }
  testbed.run_until_all_finished(running);

  // Fold each phone's run into the shard result: exact counters, streaming
  // per-workload digests (always), raw sample vectors (only when the
  // campaign keeps them).
  WorkloadFold fold;
  for (std::size_t i = 0; i < instruments.size(); ++i) {
    const tools::ToolRun& run = instruments[i]->result();
    WorkloadDigest& slot = fold.slot(testbed.spec().phones[i].workload.tool);
    slot.probes += run.probes.size();
    slot.lost += run.loss_count();
    result.probes_sent += run.probes.size();
    result.probes_lost += run.loss_count();
    for (const double rtt : run.reported_rtts_ms()) {
      slot.reported_rtt_ms.add(rtt);
      if (spec_.keep_samples) result.reported_rtt_ms.push_back(rtt);
    }
    for (const core::LayerSample& sample : testbed.layer_samples(run)) {
      slot.du_ms.add(sample.du_ms);
      slot.dk_ms.add(sample.dk_ms);
      slot.dv_ms.add(sample.dv_ms);
      slot.dn_ms.add(sample.dn_ms);
      if (spec_.keep_samples) {
        result.du_ms.push_back(sample.du_ms);
        result.dk_ms.push_back(sample.dk_ms);
        result.dv_ms.push_back(sample.dv_ms);
        result.dn_ms.push_back(sample.dn_ms);
      }
    }
  }
  result.digests = fold.take();
  if (testbed.cross_traffic_running()) testbed.stop_cross_traffic();
  result.frames_on_air = testbed.channel().frames_transmitted();
  result.events_fired = testbed.simulator().events_fired();
  result.sim_seconds =
      (testbed.simulator().now() - sim::TimePoint::epoch()).to_seconds();
  return result;
}

CampaignReport Campaign::run(std::size_t workers) {
  const std::size_t shard_count = spec_.scenarios.size();
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers = std::min(workers, shard_count);

  CampaignReport report;
  report.shards.resize(shard_count);
  std::vector<std::exception_ptr> failures(shard_count);

  if (workers <= 1) {
    for (std::size_t i = 0; i < shard_count; ++i) {
      report.shards[i] = run_shard(i);
    }
    return report;
  }

  // Work-stealing by atomic index: each worker owns the slots it claims, so
  // no locking is needed; determinism comes from per-shard seeding, not
  // from the claim order.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([this, &next, &report, &failures, shard_count] {
      while (true) {
        const std::size_t index =
            next.fetch_add(1, std::memory_order_relaxed);
        if (index >= shard_count) return;
        try {
          report.shards[index] = run_shard(index);
        } catch (...) {
          failures[index] = std::current_exception();
        }
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  for (const std::exception_ptr& failure : failures) {
    if (failure != nullptr) std::rethrow_exception(failure);
  }
  return report;
}

}  // namespace acute::testbed
