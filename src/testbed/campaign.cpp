#include "testbed/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "core/layer_sample.hpp"
#include "passive/per_app.hpp"
#include "passive/pping.hpp"
#include "report/latest_wins.hpp"
#include "report/sample_buffer_sink.hpp"
#include "sim/contracts.hpp"
#include "sim/random.hpp"
#include "stats/digest_io.hpp"
#include "testbed/merge_frontier.hpp"
#include "tools/factory.hpp"

namespace acute::testbed {

using sim::Duration;
using sim::expects;

namespace {

/// FNV-1a over the fields that determine a shard's outcome: the campaign
/// probe schedule plus the scenario's shape. Stamped into every checkpoint
/// record so a resume with an edited spec (different probe counts, grid
/// axes, phone mix, ...) rejects the stale shards instead of silently
/// merging them — the seed check alone cannot see spec edits.
class SpecHash {
 public:
  SpecHash& mix(std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ = (hash_ ^ ((value >> (8 * byte)) & 0xff)) * 0x100000001b3ull;
    }
    return *this;
  }
  SpecHash& mix(const Duration& duration) {
    return mix(static_cast<std::uint64_t>(duration.count_nanos()));
  }
  SpecHash& mix(double value) { return mix(stats::double_bits(value)); }
  SpecHash& mix(const std::string& text) {
    for (const char c : text) {
      hash_ = (hash_ ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
    }
    return mix(text.size());
  }
  SpecHash& mix(const phone::LatencyDist& dist) {
    return mix(dist.mu_ms).mix(dist.sigma_ms).mix(dist.lo_ms).mix(dist.hi_ms);
  }
  /// Every behavior-determining profile field — a profile edited under an
  /// unchanged name must still change the hash.
  SpecHash& mix(const phone::PhoneProfile& profile) {
    mix(profile.name)
        .mix(static_cast<std::uint64_t>(profile.vendor))
        .mix(profile.cpu_scale)
        .mix(profile.bus_watchdog)
        .mix(static_cast<std::uint64_t>(profile.bus_idletime_ticks))
        .mix(profile.bus_wake_tx)
        .mix(profile.bus_wake_rx)
        .mix(profile.bus_clk_request)
        .mix(profile.bus_clk_idle_threshold)
        .mix(profile.bus_transfer_mbps)
        .mix(profile.system_traffic_mean_interval)
        .mix(std::uint64_t{profile.system_traffic_bytes});
    mix(profile.driver_tx_base)
        .mix(profile.driver_rx_base)
        .mix(profile.driver_netif)
        .mix(profile.irq_latency)
        .mix(profile.kernel_tx)
        .mix(profile.kernel_rx);
    return mix(profile.native_send)
        .mix(profile.native_recv)
        .mix(profile.dvm_send)
        .mix(profile.dvm_recv)
        .mix(profile.dvm_gc_prob)
        .mix(profile.dvm_gc_pause)
        .mix(profile.psm_timeout)
        .mix(profile.psm_tick)
        .mix(static_cast<std::uint64_t>(profile.associated_listen_interval))
        .mix(profile.beacon_miss_probability)
        .mix(std::uint64_t{profile.ping_integer_ms_above_100})
        .mix(profile.ping_resolution_ms);
  }
  SpecHash& mix(const cellular::RrcConfig& rrc) {
    return mix(rrc.idle_to_dch)
        .mix(rrc.fach_to_dch)
        .mix(rrc.promotion_jitter)
        .mix(rrc.dch_inactivity)
        .mix(rrc.fach_inactivity)
        .mix(rrc.dch_latency)
        .mix(rrc.fach_latency)
        .mix(std::uint64_t{rrc.fach_size_threshold});
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

std::uint64_t shard_spec_hash(const CampaignSpec& spec,
                              const ScenarioSpec& scenario) {
  SpecHash hash;
  hash.mix(static_cast<std::uint64_t>(spec.probes_per_phone))
      .mix(spec.probe_interval)
      .mix(spec.probe_timeout)
      .mix(spec.settle);
  hash.mix(scenario.phones.size());
  for (const PhoneSpec& phone : scenario.phones) {
    hash.mix(phone.profile)
        .mix(phone.label)  // selects the phone's rng streams
        .mix(static_cast<std::uint64_t>(phone.radio))
        .mix(phone.rrc)
        .mix(static_cast<std::uint64_t>(phone.workload.tool))
        .mix(static_cast<std::uint64_t>(phone.workload.probe_count))
        .mix(phone.workload.interval)
        .mix(phone.workload.timeout)
        .mix(static_cast<std::uint64_t>(phone.workload.passive));
  }
  hash.mix(scenario.emulated_rtt)
      .mix(scenario.netem_jitter)
      .mix(std::uint64_t{scenario.congested_phy})
      .mix(scenario.cross_connections)
      .mix(scenario.cross_flow_mbps)
      .mix(std::uint64_t{scenario.send_ttl_exceeded})
      .mix(scenario.sniffer_noise)
      .mix(scenario.sniffer_count)
      .mix(scenario.cellular_core_rtt)
      .mix(scenario.netem_loss)
      .mix(std::uint64_t{scenario.netem_reorder});
  return hash.value();
}

}  // namespace

std::uint64_t CampaignSpec::shard_hash(const ScenarioSpec& scenario) const {
  return shard_spec_hash(*this, scenario);
}

std::uint64_t CampaignSpec::spec_hash() const {
  SpecHash hash;
  const std::size_t count = grid.has_value() ? grid->size() : scenarios.size();
  hash.mix(count);
  ScenarioSpec scratch;  // capacity-reused across the grid sweep
  for (std::size_t i = 0; i < count; ++i) {
    if (grid.has_value()) {
      grid->at_into(i, scratch);
    } else {
      scratch = scenarios[i];
    }
    hash.mix(shard_spec_hash(*this, scratch));
  }
  return hash.value();
}

namespace {

/// Shared axis validation of expand() and at().
void validate_grid(const ScenarioGrid& grid) {
  expects(!grid.phone_counts.empty() && !grid.profiles.empty() &&
              !grid.radios.empty() && !grid.emulated_rtts.empty() &&
              !grid.cross_traffic.empty() && !grid.loss_rates.empty() &&
              !grid.reorder.empty() && !grid.workloads.empty(),
          "ScenarioGrid axes must all be non-empty");
  for (const double loss : grid.loss_rates) {
    expects(loss >= 0.0 && loss < 1.0,
            "ScenarioGrid loss rates must be in [0, 1)");
  }
  for (const std::size_t count : grid.phone_counts) {
    expects(count > 0, "ScenarioGrid phone counts must be positive");
  }
}

/// The one scenario-construction routine behind expand(), at() and
/// at_into(): fills `out` for one tuple of axis positions. Sharing it is
/// what makes at(i) == expand()[i] hold element for element by
/// construction. Fills in place — every field is overwritten (the non-axis
/// ones from a default-constructed ScenarioSpec), and the phones vector
/// plus the strings inside reuse out's capacity, so a shape-stable grid
/// iteration is allocation-free (the shard-context pool's build path).
///
/// NOTE: a new ScenarioSpec/PhoneSpec field must be added to the explicit
/// reset list below, or a reused `out` would leak the previous shard's
/// value into the next scenario. The context-reuse bit-identity tests catch
/// any behavior-determining omission.
void scenario_from_axes_into(const ScenarioGrid& grid, std::size_t count_i,
                             std::size_t profile_i, std::size_t radio_i,
                             std::size_t rtt_i, std::size_t cross_i,
                             std::size_t loss_i, std::size_t reorder_i,
                             std::size_t workload_i, ScenarioSpec& out) {
  static const ScenarioSpec defaults;
  static const PhoneSpec default_phone;
  out.seed = defaults.seed;
  out.emulated_rtt = grid.emulated_rtts[rtt_i];
  out.netem_jitter = defaults.netem_jitter;
  out.congested_phy = grid.cross_traffic[cross_i];
  out.cross_connections = defaults.cross_connections;
  out.cross_flow_mbps = defaults.cross_flow_mbps;
  out.send_ttl_exceeded = defaults.send_ttl_exceeded;
  out.sniffer_noise = defaults.sniffer_noise;
  out.sniffer_count = defaults.sniffer_count;
  out.cellular_core_rtt = defaults.cellular_core_rtt;
  out.netem_loss = grid.loss_rates[loss_i];
  out.netem_reorder = grid.reorder[reorder_i];
  out.phones.resize(grid.phone_counts[count_i]);
  for (PhoneSpec& phone : out.phones) {
    phone = default_phone;
    phone.profile = grid.profiles[profile_i];
    phone.radio = grid.radios[radio_i];
    phone.workload = grid.workloads[workload_i];
  }
}

ScenarioSpec scenario_from_axes(const ScenarioGrid& grid, std::size_t count_i,
                                std::size_t profile_i, std::size_t radio_i,
                                std::size_t rtt_i, std::size_t cross_i,
                                std::size_t loss_i, std::size_t reorder_i,
                                std::size_t workload_i) {
  ScenarioSpec scenario;
  scenario_from_axes_into(grid, count_i, profile_i, radio_i, rtt_i, cross_i,
                          loss_i, reorder_i, workload_i, scenario);
  return scenario;
}

}  // namespace

std::vector<ScenarioSpec> ScenarioGrid::expand() const {
  validate_grid(*this);
  std::vector<ScenarioSpec> scenarios;
  scenarios.reserve(size());
  for (std::size_t c = 0; c < phone_counts.size(); ++c) {
    for (std::size_t p = 0; p < profiles.size(); ++p) {
      for (std::size_t r = 0; r < radios.size(); ++r) {
        for (std::size_t t = 0; t < emulated_rtts.size(); ++t) {
          for (std::size_t x = 0; x < cross_traffic.size(); ++x) {
            for (std::size_t l = 0; l < loss_rates.size(); ++l) {
              for (std::size_t o = 0; o < reorder.size(); ++o) {
                for (std::size_t w = 0; w < workloads.size(); ++w) {
                  scenarios.push_back(
                      scenario_from_axes(*this, c, p, r, t, x, l, o, w));
                }
              }
            }
          }
        }
      }
    }
  }
  return scenarios;
}

ScenarioSpec ScenarioGrid::at(std::size_t index) const {
  ScenarioSpec scenario;
  at_into(index, scenario);
  return scenario;
}

void ScenarioGrid::at_into(std::size_t index, ScenarioSpec& out) const {
  validate_grid(*this);
  expects(index < size(), "ScenarioGrid::at index out of range");
  // Decode the index as mixed-radix digits, innermost (workload) first —
  // the inverse of expand()'s nesting order.
  auto digit = [&index](std::size_t radix) {
    const std::size_t d = index % radix;
    index /= radix;
    return d;
  };
  const std::size_t w = digit(workloads.size());
  const std::size_t o = digit(reorder.size());
  const std::size_t l = digit(loss_rates.size());
  const std::size_t x = digit(cross_traffic.size());
  const std::size_t t = digit(emulated_rtts.size());
  const std::size_t r = digit(radios.size());
  const std::size_t p = digit(profiles.size());
  const std::size_t c = digit(phone_counts.size());
  scenario_from_axes_into(*this, c, p, r, t, x, l, o, w, out);
}

std::size_t ScenarioGrid::size() const {
  // Guarded mixed-radix product: eight axis lists can overflow std::size_t
  // long before they could ever run, and a silently-wrapped size would make
  // at()'s range check accept garbage indices. Fail loudly instead.
  const std::size_t axes[] = {phone_counts.size(),  profiles.size(),
                              radios.size(),        emulated_rtts.size(),
                              cross_traffic.size(), loss_rates.size(),
                              reorder.size(),       workloads.size()};
  std::size_t total = 1;
  for (const std::size_t axis : axes) {
    if (axis == 0) return 0;
    expects(total <= std::numeric_limits<std::size_t>::max() / axis,
            "ScenarioGrid::size overflows std::size_t "
            "(cross product of axis lengths is too large)");
    total *= axis;
  }
  return total;
}

std::vector<double> CampaignReport::merged(
    std::vector<double> ShardResult::*field) const {
  std::vector<double> all;
  for (const ShardResult& shard : shards) {
    const std::vector<double>& samples = shard.*field;
    all.insert(all.end(), samples.begin(), samples.end());
  }
  return all;
}

stats::Summary CampaignReport::rtt_summary() const {
  return stats::Summary(merged(&ShardResult::reported_rtt_ms));
}

stats::Cdf CampaignReport::rtt_cdf() const {
  return stats::Cdf(merged(&ShardResult::reported_rtt_ms));
}

std::vector<WorkloadDigest> CampaignReport::workload_digests() const {
  // Frontier mode already folded every completed shard in ascending
  // scenario order as it retired; just copy the accumulators out.
  if (frontier.active) return frontier.workloads.snapshot();
  // Shards are already in scenario-index order, and each shard's digests
  // are in ascending ToolKind order, so folding front to back gives the
  // deterministic scenario-order merge the determinism contract requires.
  // (A checkpoint-restored shard's digests deserialize bit-identically, so
  // the fold cannot tell a resumed campaign from an uninterrupted one.)
  report::WorkloadFold fold;
  for (const ShardResult& shard : shards) {
    for (const WorkloadDigest& digest : shard.digests) {
      fold.slot(digest.tool).merge(digest);
    }
  }
  return fold.take();
}

std::size_t CampaignReport::shard_count() const {
  return frontier.active ? frontier.shard_count : shards.size();
}

std::size_t CampaignReport::completed_shards() const {
  if (frontier.active) return frontier.completed;
  std::size_t completed = 0;
  for (const ShardResult& shard : shards) {
    if (shard.completed) ++completed;
  }
  return completed;
}

stats::MergingDigest CampaignReport::rtt_digest() const {
  stats::MergingDigest all;
  for (const WorkloadDigest& digest : workload_digests()) {
    all.merge(digest.reported_rtt_ms);
  }
  return all;
}

std::size_t CampaignReport::total_probes() const {
  if (frontier.active) return frontier.probes;
  std::size_t total = 0;
  for (const ShardResult& shard : shards) total += shard.probes_sent;
  return total;
}

std::size_t CampaignReport::total_lost() const {
  if (frontier.active) return frontier.lost;
  std::size_t total = 0;
  for (const ShardResult& shard : shards) total += shard.probes_lost;
  return total;
}

std::uint64_t CampaignReport::total_frames() const {
  if (frontier.active) return frontier.frames;
  std::uint64_t total = 0;
  for (const ShardResult& shard : shards) total += shard.frames_on_air;
  return total;
}

std::uint64_t CampaignReport::total_events() const {
  if (frontier.active) return frontier.events;
  std::uint64_t total = 0;
  for (const ShardResult& shard : shards) total += shard.events_fired;
  return total;
}

double CampaignReport::total_sim_seconds() const {
  // The frontier accumulated this double sum in the same ascending shard
  // order as this loop, so the two modes agree to the last bit.
  if (frontier.active) return frontier.sim_seconds;
  double total = 0;
  for (const ShardResult& shard : shards) total += shard.sim_seconds;
  return total;
}

Campaign::Campaign(CampaignSpec spec) : spec_(std::move(spec)) {
  expects(spec_.scenarios.empty() || !spec_.grid.has_value(),
          "Campaign takes scenarios OR a lazy grid, not both");
  if (spec_.grid.has_value()) {
    expects(spec_.grid->size() > 0, "Campaign requires at least one scenario");
  } else {
    expects(!spec_.scenarios.empty(),
            "Campaign requires at least one scenario");
  }
  expects(spec_.probes_per_phone > 0,
          "Campaign requires probes_per_phone > 0");
  expects(spec_.probe_timeout > Duration{},
          "Campaign requires a positive probe timeout");
  expects(spec_.retain_shards || !spec_.keep_samples,
          "Campaign frontier mode (retain_shards=false) requires "
          "keep_samples=false: raw sample vectors cannot be folded away");
}

std::size_t Campaign::scenario_count() const {
  return spec_.grid.has_value() ? spec_.grid->size() : spec_.scenarios.size();
}

ScenarioSpec Campaign::scenario_at(std::size_t index) const {
  expects(index < scenario_count(), "Campaign scenario index out of range");
  return spec_.grid.has_value() ? spec_.grid->at(index)
                                : spec_.scenarios[index];
}

std::uint64_t Campaign::shard_seed(std::uint64_t campaign_seed,
                                   std::size_t shard_index) {
  return sim::Rng(campaign_seed)
      .fork(static_cast<std::uint64_t>(shard_index))
      .seed();
}

/// Everything a worker keeps warm between shards. Lives in this TU (pimpl)
/// because it composes campaign-internal scratch with the full Testbed.
struct ShardContext::Impl {
  /// The simulator every testbed (re)build of this context schedules on.
  sim::Simulator sim;
  /// The warm node graph; engaged on the context's first shard, then
  /// rebuild()-reset into each subsequent scenario.
  std::optional<Testbed> testbed;
  /// One measurement tool per phone index, reused while both the tool kind
  /// and the phone object still match (reinitialize() restores constructor
  /// state); replaced wholesale otherwise.
  struct ToolSlot {
    tools::ToolKind kind = tools::ToolKind::icmp_ping;
    phone::Smartphone* phone = nullptr;
    std::unique_ptr<tools::MeasurementTool> tool;
  };
  std::vector<ToolSlot> tools;
  std::vector<tools::MeasurementTool*> running;
  std::vector<std::vector<report::ProbeEvent>> phone_events;
  /// Scenario scratch scenario_into() fills per shard (capacity-reusing).
  ScenarioSpec scenario;
  /// Built-in sink scratch, re-added to the chain by reference per shard;
  /// per-shard sinks (user factory, checkpoint) are chain-owned as before.
  report::SinkChain chain;
  report::DigestSink digests;
  report::SampleBufferSink buffers;
  /// Passive vantage points (warm tables; reset per shard, attached only
  /// when a workload asks for them).
  passive::PpingEstimator pping;
  passive::PerAppMonitor per_app;
  std::size_t shards_run = 0;
  std::size_t reuses = 0;
};

ShardContext::ShardContext() : impl_(std::make_unique<Impl>()) {}
ShardContext::~ShardContext() = default;
ShardContext::ShardContext(ShardContext&& other) noexcept = default;
ShardContext& ShardContext::operator=(ShardContext&& other) noexcept = default;

std::size_t ShardContext::shards_run() const { return impl_->shards_run; }
std::size_t ShardContext::reuses() const { return impl_->reuses; }

void Campaign::scenario_into(std::size_t index, ScenarioSpec& out) const {
  expects(index < scenario_count(), "Campaign scenario index out of range");
  if (spec_.grid.has_value()) {
    spec_.grid->at_into(index, out);
  } else {
    out = spec_.scenarios[index];  // copy-assign reuses out's capacity
  }
}

ShardResult Campaign::run_shard(std::size_t scenario_index) const {
  ShardContext context;
  return run_shard(scenario_index, /*run_sequence=*/0, nullptr, nullptr,
                   context);
}

ShardResult Campaign::run_shard(std::size_t scenario_index,
                                ShardContext& context) const {
  return run_shard(scenario_index, /*run_sequence=*/0, nullptr, nullptr,
                   context);
}

report::ShardCheckpoint Campaign::run_shard_record(
    std::size_t scenario_index, ShardContext& context) const {
  ShardResult result = run_shard(scenario_index, /*run_sequence=*/0, nullptr,
                                 nullptr, context);
  report::ShardCheckpoint record;
  record.summary.info = report::ShardInfo{scenario_index, result.shard_seed,
                                          result.phone_count,
                                          /*run_sequence=*/0};
  record.summary.probes_sent = result.probes_sent;
  record.summary.probes_lost = result.probes_lost;
  record.summary.frames_on_air = result.frames_on_air;
  record.summary.events_fired = result.events_fired;
  record.summary.sim_seconds = result.sim_seconds;
  // run_shard left context's scenario scratch holding this shard's spec;
  // hashing it avoids re-materializing the scenario (the hash ignores the
  // seed field run_shard overwrote).
  record.spec_hash = spec_.shard_hash(context.impl_->scenario);
  record.digests = std::move(result.digests);
  return record;
}

ShardResult Campaign::run_shard(
    std::size_t scenario_index, std::size_t run_sequence,
    const std::shared_ptr<report::CheckpointWriter>& checkpoint,
    StageSeconds* stage, ShardContext& context) const {
  expects(scenario_index < scenario_count(),
          "Campaign::run_shard index out of range");
  expects(context.impl_ != nullptr,
          "Campaign::run_shard on a moved-from ShardContext");
  ShardContext::Impl& ctx = *context.impl_;
  const auto stage_start = std::chrono::steady_clock::now();
  auto stage_lap = [last = stage_start]() mutable {
    const auto now = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(now - last).count();
    last = now;
    return seconds;
  };

  // Sink scratch first: normal completion leaves all three empty, but a
  // shard that threw mid-stream must not leak partial folds (or its owned
  // per-shard sinks) into this one.
  ctx.chain.clear();
  ctx.digests.reset();
  ctx.buffers.reset();
  ctx.pping.reset();
  ctx.per_app.reset();

  ScenarioSpec& scenario = ctx.scenario;
  scenario_into(scenario_index, scenario);
  scenario.seed = shard_seed(spec_.seed, scenario_index);

  ShardResult result;
  result.scenario_index = scenario_index;
  result.shard_seed = scenario.seed;
  result.phone_count = scenario.phones.size();

  // The shard's sink chain: built-in sinks backing the ShardResult
  // compatibility surface (context-resident, added by reference), the
  // checkpoint sink when the campaign checkpoints, then whatever
  // CampaignSpec::sinks plugs in.
  const report::ShardInfo info{scenario_index, scenario.seed,
                               scenario.phones.size(), run_sequence};
  report::SinkChain& chain = ctx.chain;
  chain.add_ref(ctx.digests);
  report::SampleBufferSink* buffers = nullptr;
  if (spec_.keep_samples) {
    buffers = &ctx.buffers;
    chain.add_ref(ctx.buffers);
  }
  if (spec_.sinks) {
    for (auto& sink : spec_.sinks(info)) chain.add(std::move(sink));
  }
  // The checkpoint sink goes LAST: user sinks (e.g. the JSONL export) see
  // shard_finished before the shard is durably marked complete, so a kill
  // in between re-runs the shard (detectable duplicate export records)
  // rather than silently never exporting it.
  if (checkpoint != nullptr) {
    // The scenario's seed was overwritten above, but the hash covers only
    // the outcome-determining shape fields, so hashing the local copy
    // equals hashing the stored/grid-built spec.
    chain.add(std::make_unique<report::CheckpointSink>(
        checkpoint, spec_.shard_hash(scenario)));
  }
  chain.shard_started(info);

  // Prune stale tools BEFORE the rebuild: ~MeasurementTool unregisters its
  // flow on the phone it was bound to, so it must run while that phone is
  // still alive — rebuild() destroys phones whose slot changes radio kind
  // (and any beyond the next scenario's count). A tool survives only when
  // the next scenario keeps the same tool kind on a phone build_graph will
  // reset in place (same slot, same radio kind — stable address).
  if (ctx.testbed.has_value()) {
    const std::size_t next_count = scenario.phones.size();
    if (ctx.tools.size() > next_count) ctx.tools.resize(next_count);
    for (std::size_t i = 0; i < ctx.tools.size(); ++i) {
      ShardContext::Impl::ToolSlot& slot = ctx.tools[i];
      if (slot.tool == nullptr) continue;
      const bool phone_survives =
          i < ctx.testbed->phone_count() &&
          slot.phone == &ctx.testbed->phone(i) &&
          ctx.testbed->phone(i).radio_kind() == scenario.phones[i].radio;
      if (!phone_survives || slot.kind != scenario.phones[i].workload.tool) {
        slot.tool.reset();
        slot.phone = nullptr;
      }
    }
  }

  // Reuse the warm testbed — rebuild() replays the construction order on
  // the reset simulator, bit-identical to a fresh build — or construct it
  // into the context slot on first use.
  if (ctx.testbed.has_value()) {
    ctx.testbed->rebuild(scenario);
    ++ctx.reuses;
  } else {
    ctx.testbed.emplace(scenario, ctx.sim);
  }
  Testbed& testbed = *ctx.testbed;
  if (stage != nullptr) stage->build += stage_lap();
  testbed.settle(spec_.settle);
  if (testbed.spec().congested_phy) {
    testbed.start_cross_traffic();
    testbed.settle(Duration::seconds(2));  // reach saturation
  }

  // One tool per phone, selected by the phone's WorkloadSpec; workload
  // fields left at zero fall back to the campaign-wide schedule defaults.
  // Each tool feeds its completed probes into a per-phone event list via
  // the probe listener (no post-hoc result() scraping); the lists flush
  // through the sink chain in canonical order below.
  const std::size_t phone_count = testbed.phone_count();
  if (ctx.phone_events.size() < phone_count) {
    ctx.phone_events.resize(phone_count);
  }
  for (std::vector<report::ProbeEvent>& events : ctx.phone_events) {
    events.clear();
  }
  if (ctx.tools.size() > phone_count) ctx.tools.resize(phone_count);
  ctx.running.clear();
  // Passive vantage points: rebuild()/reset() detached every observer and
  // tap, so attachment is strictly per shard. The sniffer-side estimator
  // attaches once (sniffer 0 — all sniffers see the same frames); both it
  // and the per-app monitor must be wired BEFORE any tool starts, because
  // sequential tools launch probe 0 synchronously inside start().
  bool sniffer_vantage = false;
  for (const PhoneSpec& phone : testbed.spec().phones) {
    sniffer_vantage |= passive::wants_sniffer(phone.workload.passive);
  }
  if (sniffer_vantage && testbed.sniffer_count() > 0) {
    testbed.sniffer(0).attach_capture_observer(&ctx.pping);
  }
  for (std::size_t i = 0; i < phone_count; ++i) {
    const WorkloadSpec& workload = testbed.spec().phones[i].workload;
    tools::MeasurementTool::Config config;
    config.probe_count = workload.probe_count > 0 ? workload.probe_count
                                                  : spec_.probes_per_phone;
    config.interval = workload.interval.is_zero() ? spec_.probe_interval
                                                  : workload.interval;
    config.timeout = workload.timeout.is_zero() ? spec_.probe_timeout
                                                : workload.timeout;
    config.target = Testbed::kServerId;
    if (i == ctx.tools.size()) ctx.tools.emplace_back();
    ShardContext::Impl::ToolSlot& slot = ctx.tools[i];
    if (slot.tool != nullptr && slot.kind == workload.tool &&
        slot.phone == &testbed.phone(i)) {
      // Same tool kind bound to the same (reset) phone object:
      // reinitialize() restores the state the constructor would build.
      slot.tool->reinitialize(config);
    } else {
      slot.tool = tools::make_tool(workload.tool, testbed.phone(i), config);
      slot.kind = workload.tool;
      slot.phone = &testbed.phone(i);
    }
    slot.tool->set_probe_listener(
        [events = &ctx.phone_events[i], i, scenario_index,
         tool = workload.tool](const tools::ProbeRecord& record) {
          report::ProbeEvent event;
          event.scenario_index = scenario_index;
          event.phone_index = i;
          event.probe_index = record.index;
          event.tool = tool;
          event.timed_out = record.timed_out;
          event.reported_rtt_ms = record.reported_rtt_ms;
          if (!record.timed_out && record.response.has_value()) {
            // The reported (tool-level) RTT overrides the stamp-derived du,
            // as in the paper's user-level vantage point.
            const auto sample = core::LayerSample::from_response(
                *record.response, record.reported_rtt_ms);
            if (sample.has_value()) {
              event.layers = report::LayerBreakdown{
                  sample->du_ms, sample->dk_ms, sample->dv_ms, sample->dn_ms};
            }
          }
          events->push_back(event);
        });
    if (passive::wants_sniffer(workload.passive) &&
        testbed.sniffer_count() > 0) {
      ctx.pping.watch_flow(Testbed::phone_id(i), slot.tool->flow_id(), i,
                           workload.tool);
    }
    if (passive::wants_exec_env(workload.passive)) {
      testbed.phone(i).exec_env().attach_flow_tap(&ctx.per_app);
      ctx.per_app.watch_flow(Testbed::phone_id(i), slot.tool->flow_id(), i,
                             workload.tool);
    }
    slot.tool->start();
    ctx.running.push_back(slot.tool.get());
  }
  testbed.run_until_all_finished(ctx.running);
  if (stage != nullptr) stage->simulate += stage_lap();

  // Canonical event delivery: phones in scenario order, probes in schedule
  // order within each phone (probes can *complete* out of schedule order
  // when a timeout outlives later responses) — the ordering contract
  // report::ResultSink documents, and byte-for-byte the order the legacy
  // buffered fold used.
  // Passive samples ride the same canonical sweep: after a phone's active
  // probes come its sniffer-vantage samples, then its per-app samples, each
  // in emission order. Passive events never count as probes (sent or lost).
  auto flush_passive = [&chain, scenario_index](
                           const std::vector<passive::RttSample>& samples,
                           std::size_t phone, report::Vantage vantage) {
    for (const passive::RttSample& sample : samples) {
      if (sample.phone_index != phone) continue;
      report::ProbeEvent event;
      event.scenario_index = scenario_index;
      event.phone_index = phone;
      event.probe_index = sample.ordinal;
      event.tool = sample.tool;
      event.vantage = vantage;
      event.reported_rtt_ms = sample.rtt_ms;
      chain.probe_completed(event);
    }
  };
  for (std::size_t i = 0; i < phone_count; ++i) {
    std::vector<report::ProbeEvent>& events = ctx.phone_events[i];
    std::sort(events.begin(), events.end(),
              [](const report::ProbeEvent& a, const report::ProbeEvent& b) {
                return a.probe_index < b.probe_index;
              });
    for (const report::ProbeEvent& event : events) {
      result.probes_sent += 1;
      if (event.timed_out) result.probes_lost += 1;
      chain.probe_completed(event);
    }
    flush_passive(ctx.pping.samples(), i, report::Vantage::passive_sniffer);
    flush_passive(ctx.per_app.samples(), i, report::Vantage::passive_app);
  }

  // Compose the ShardResult view from the built-in sink outputs.
  result.digests = ctx.digests.take_digests();
  if (buffers != nullptr) {
    report::SampleBufferSink::Buffers taken = buffers->take();
    result.reported_rtt_ms = std::move(taken.reported_rtt_ms);
    result.du_ms = std::move(taken.du_ms);
    result.dk_ms = std::move(taken.dk_ms);
    result.dv_ms = std::move(taken.dv_ms);
    result.dn_ms = std::move(taken.dn_ms);
    result.passive_sniffer_rtt_ms = std::move(taken.passive_sniffer_rtt_ms);
    result.passive_app_rtt_ms = std::move(taken.passive_app_rtt_ms);
  }
  if (testbed.cross_traffic_running()) testbed.stop_cross_traffic();
  result.frames_on_air = testbed.channel().frames_transmitted();
  result.events_fired = testbed.simulator().events_fired();
  result.sim_seconds =
      (testbed.simulator().now() - sim::TimePoint::epoch()).to_seconds();
  result.completed = true;

  report::ShardSummary summary;
  summary.info = info;
  summary.probes_sent = result.probes_sent;
  summary.probes_lost = result.probes_lost;
  summary.frames_on_air = result.frames_on_air;
  summary.events_fired = result.events_fired;
  summary.sim_seconds = result.sim_seconds;
  chain.shard_finished(summary);
  // Destroy the per-shard owned sinks now (matching the fresh path, where
  // the whole chain died here); the context-resident built-ins stay warm.
  chain.clear();
  if (stage != nullptr) stage->sink += stage_lap();
  ++ctx.shards_run;
  return result;
}

namespace {

/// The work-claim cursor on its own cache line: workers of a big campaign
/// hammer this one atomic, and without the padding it false-shares with
/// whatever the compiler packs next to it on run()'s stack.
struct alignas(64) ClaimCursor {
  std::atomic<std::size_t> next{0};
};

/// Per-worker accumulators, one cache line each so workers never
/// false-share their hot counters while shards retire.
struct alignas(64) WorkerLane {
  StageSeconds stage;
  std::size_t shards_run = 0;
};

}  // namespace

CampaignReport Campaign::run(std::size_t workers) {
  const std::size_t shard_count = scenario_count();
  const bool frontier_mode = !spec_.retain_shards;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }

  CampaignReport report;
  report.frontier.active = frontier_mode;
  report.frontier.shard_count = shard_count;
  if (!frontier_mode) report.shards.resize(shard_count);

  // Checkpoint resume: restore every shard already on disk (digests +
  // counters deserialize bit-identically), compact the file back to one
  // line per shard, then append newly completed shards to it. Buffered
  // mode materializes the records straight into report.shards; frontier
  // mode only *validates* them here (streaming, one record in memory) and
  // re-reads the compacted file — ascending, one record per shard — as the
  // fold reaches each restored index.
  std::shared_ptr<report::CheckpointWriter> checkpoint;
  std::vector<bool> restored_set;
  std::unique_ptr<report::CheckpointReader> restored_feed;
  if (!spec_.checkpoint_path.empty()) {
    const auto restore_start = std::chrono::steady_clock::now();
    if (frontier_mode) {
      restored_set.assign(shard_count, false);
      std::size_t restored_count = 0;
      report::for_each_checkpoint(
          spec_.checkpoint_path, [&](report::ShardCheckpoint&& record) {
            const std::size_t index = record.summary.info.scenario_index;
            expects(index < shard_count,
                    "checkpoint does not match this campaign (shard out of "
                    "range)");
            expects(
                record.summary.info.shard_seed == shard_seed(spec_.seed, index),
                "checkpoint does not match this campaign (seed mismatch)");
            expects(
                record.spec_hash == spec_.shard_hash(scenario_at(index)),
                "checkpoint does not match this campaign (spec edited since "
                "the checkpoint was written)");
            if (!restored_set[index]) {
              restored_set[index] = true;
              ++restored_count;
            }
          });
      if (restored_count > 0) {
        report::compact_checkpoint(spec_.checkpoint_path);
      }
      restored_feed =
          std::make_unique<report::CheckpointReader>(spec_.checkpoint_path);
    } else {
      std::vector<report::ShardCheckpoint> records =
          report::load_checkpoint(spec_.checkpoint_path);
      for (report::ShardCheckpoint& record : records) {
        const std::size_t index = record.summary.info.scenario_index;
        expects(index < shard_count,
                "checkpoint does not match this campaign (shard out of range)");
        expects(record.summary.info.shard_seed == shard_seed(spec_.seed, index),
                "checkpoint does not match this campaign (seed mismatch)");
        expects(record.spec_hash == spec_.shard_hash(scenario_at(index)),
                "checkpoint does not match this campaign (spec edited since "
                "the checkpoint was written)");
      }
      // Validation passed: rewrite the file to exactly one record per
      // completed shard (drops torn fragments and duplicate re-runs), so a
      // many-times-resumed sweep's checkpoint stays O(completed shards)
      // instead of growing with every kill.
      if (!records.empty()) {
        report::compact_checkpoint(spec_.checkpoint_path, records);
      }
      // Duplicate records (a shard re-run after a kill) resolve through the
      // shared last-wins rule — the same LatestWinsMerge compaction just
      // applied to the file, so memory and disk agree on the winner.
      report::LatestWinsMerge<report::ShardCheckpoint*> latest;
      for (report::ShardCheckpoint& record : records) {
        latest.claim(record.summary.info.scenario_index, &record);
      }
      latest.for_each([&](std::size_t index, report::ShardCheckpoint* record) {
        report.shards[index] = shard_result_from_checkpoint(std::move(*record));
      });
    }
    checkpoint = std::make_shared<report::CheckpointWriter>(
        spec_.checkpoint_path);
    report.stage.restore = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() -
                               restore_start)
                               .count();
  }

  std::vector<std::size_t> pending;
  pending.reserve(std::min<std::size_t>(
      shard_count, spec_.max_shards > 0 ? spec_.max_shards : shard_count));
  for (std::size_t i = 0; i < shard_count; ++i) {
    const bool already_done = frontier_mode
                                  ? (!restored_set.empty() && restored_set[i])
                                  : report.shards[i].completed;
    if (already_done) continue;
    pending.push_back(i);
    // The kill / incremental-sweep knob: cap how many pending shards this
    // invocation executes (the cut is the scenario-order prefix, so
    // resumes walk the campaign front to back).
    if (spec_.max_shards > 0 && pending.size() == spec_.max_shards) break;
  }

  // Frontier setup: classify every index so the in-order fold knows what
  // to wait for (fresh), what to pull from the compacted checkpoint
  // (restored) and what to step over (the capped tail).
  std::unique_ptr<MergeFrontier> frontier;
  if (frontier_mode) {
    std::vector<MergeFrontier::Slot> slots(shard_count,
                                           MergeFrontier::Slot::skipped);
    if (!restored_set.empty()) {
      for (std::size_t i = 0; i < shard_count; ++i) {
        if (restored_set[i]) slots[i] = MergeFrontier::Slot::restored;
      }
    }
    for (const std::size_t index : pending) {
      slots[index] = MergeFrontier::Slot::fresh;
    }
    auto feed = [reader = restored_feed.get()](std::size_t expected_index) {
      report::ShardCheckpoint record;
      expects(reader != nullptr && reader->next(record),
              "campaign frontier: compacted checkpoint exhausted before all "
              "restored shards were folded");
      expects(record.summary.info.scenario_index == expected_index,
              "campaign frontier: compacted checkpoint out of order");
      return shard_result_from_checkpoint(std::move(record));
    };
    frontier = std::make_unique<MergeFrontier>(std::move(slots),
                                               std::move(feed),
                                               report.frontier);
  }

  // Never spawn more threads than pending shards: a tiny incremental tick
  // (or a fully-restored rerun) must not pay pool spin-up for workers that
  // would find the claim cursor already exhausted.
  workers = std::min(workers, std::max<std::size_t>(pending.size(), 1));
  std::vector<std::exception_ptr> failures(pending.size());

  if (workers <= 1) {
    // One warm shard context for the whole serial sweep (the pool below
    // gives each worker its own).
    ShardContext context;
    for (std::size_t p = 0; p < pending.size(); ++p) {
      const std::size_t index = pending[p];
      if (frontier != nullptr) {
        try {
          frontier->submit(index,
                           run_shard(index, /*run_sequence=*/p, checkpoint,
                                     &report.stage, context));
        } catch (...) {
          frontier->abandon(index);
          throw;
        }
      } else {
        report.shards[index] = run_shard(index, /*run_sequence=*/p,
                                         checkpoint, &report.stage, context);
      }
    }
    if (frontier != nullptr) {
      frontier->finalize();
      report.stage.merge = frontier->fold_seconds();
    }
    return report;
  }

  // Work-stealing by atomic cursor: each worker owns the slots it claims,
  // so no locking is needed; determinism comes from per-shard seeding, not
  // from the claim order. Claims are *batched* — one fetch_add leases
  // `batch` consecutive sequences — so a million-shard sweep performs
  // O(shards / batch) RMWs on the shared line instead of one per shard.
  // Batches stay small enough that tail imbalance is at most one batch per
  // worker.
  const std::size_t batch = std::clamp<std::size_t>(
      pending.size() / (workers * 8), std::size_t{1}, std::size_t{16});
  ClaimCursor cursor;
  std::vector<WorkerLane> lanes(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([this, &cursor, &report, &failures, &pending,
                       &checkpoint, &frontier, &lane = lanes[w], batch] {
      // Each worker owns one warm context for its whole claim stream:
      // every shard after the first reuses the simulator, node graph,
      // tools and sink scratch (per-shard seeding keeps results
      // independent of which worker ran what).
      ShardContext context;
      while (true) {
        const std::size_t begin =
            cursor.next.fetch_add(batch, std::memory_order_relaxed);
        if (begin >= pending.size()) return;
        const std::size_t end = std::min(begin + batch, pending.size());
        for (std::size_t p = begin; p < end; ++p) {
          const std::size_t index = pending[p];
          try {
            ShardResult result = run_shard(index, /*run_sequence=*/p,
                                           checkpoint, &lane.stage, context);
            ++lane.shards_run;
            if (frontier != nullptr) {
              // Retire into the in-order fold (never blocks: either this
              // worker advances the cursor or the result parks until the
              // cursor arrives); the shard's digests are freed as soon as
              // the fold consumes them.
              frontier->submit(index, std::move(result));
            } else {
              report.shards[index] = std::move(result);
            }
          } catch (...) {
            failures[p] = std::current_exception();
            // Release the slot so the fold cannot stall behind a failed
            // shard; the exception is rethrown below after the join.
            if (frontier != nullptr) frontier->abandon(index);
          }
        }
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  if (frontier != nullptr) {
    frontier->finalize();
    report.stage.merge = frontier->fold_seconds();
  }
  for (const WorkerLane& lane : lanes) {
    report.stage.build += lane.stage.build;
    report.stage.simulate += lane.stage.simulate;
    report.stage.sink += lane.stage.sink;
  }
  for (const std::exception_ptr& failure : failures) {
    if (failure != nullptr) std::rethrow_exception(failure);
  }
  return report;
}

}  // namespace acute::testbed
