#include "testbed/merge_frontier.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "sim/contracts.hpp"

namespace acute::testbed {

using sim::expects;

ShardResult shard_result_from_checkpoint(report::ShardCheckpoint&& record) {
  ShardResult restored;
  restored.completed = true;
  restored.scenario_index = record.summary.info.scenario_index;
  restored.shard_seed = record.summary.info.shard_seed;
  restored.phone_count = record.summary.info.phone_count;
  restored.probes_sent = record.summary.probes_sent;
  restored.probes_lost = record.summary.probes_lost;
  restored.frames_on_air = record.summary.frames_on_air;
  restored.events_fired = record.summary.events_fired;
  restored.sim_seconds = record.summary.sim_seconds;
  restored.digests = std::move(record.digests);
  return restored;
}

MergeFrontier::MergeFrontier(std::vector<Slot> slots,
                             std::function<ShardResult(std::size_t)> feed,
                             CampaignReport::FoldedTotals& totals)
    : slots_(std::move(slots)), feed_(std::move(feed)), totals_(totals) {
  // Fold any leading restored/skipped run right away: the cursor must
  // always rest on a fresh slot (or the end), or a resumed tick's fresh
  // results would all park behind a restored prefix no submit can match.
  const std::lock_guard<std::mutex> lock(mu_);
  advance_locked();
}

void MergeFrontier::submit(std::size_t index, ShardResult&& result) {
  const std::lock_guard<std::mutex> lock(mu_);
  expects(index < slots_.size() && slots_[index] == Slot::fresh,
          "MergeFrontier::submit on a non-pending slot");
  held_.emplace(index, std::move(result));
  high_water_ = std::max(high_water_, held_.size());
  advance_locked();
}

void MergeFrontier::abandon(std::size_t index) {
  const std::lock_guard<std::mutex> lock(mu_);
  expects(index < slots_.size() && slots_[index] == Slot::fresh,
          "MergeFrontier::abandon on a non-pending slot");
  slots_[index] = Slot::skipped;
  advance_locked();
}

void MergeFrontier::finalize() {
  const std::lock_guard<std::mutex> lock(mu_);
  advance_locked();
  expects(cursor_ == slots_.size() && held_.empty(),
          "MergeFrontier::finalize with unfolded shards");
}

void MergeFrontier::advance_locked() {
  while (cursor_ < slots_.size()) {
    switch (slots_[cursor_]) {
      case Slot::skipped:
        ++cursor_;
        break;
      case Slot::restored:
        fold(feed_(cursor_));
        ++cursor_;
        break;
      case Slot::fresh: {
        const auto it = held_.find(cursor_);
        if (it == held_.end()) return;  // a producer still owns this index
        fold(std::move(it->second));
        held_.erase(it);
        ++cursor_;
        break;
      }
    }
  }
}

// The one fold step: counters in ascending scenario order (so double sums
// match the buffered accessors bit for bit), then the consuming digest
// merge that frees the shard's buffers.
void MergeFrontier::fold(ShardResult&& result) {
  const auto start = std::chrono::steady_clock::now();
  ++totals_.completed;
  totals_.probes += result.probes_sent;
  totals_.lost += result.probes_lost;
  totals_.frames += result.frames_on_air;
  totals_.events += result.events_fired;
  totals_.sim_seconds += result.sim_seconds;
  totals_.workloads.fold_shard(std::move(result.digests));
  fold_seconds_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
}

}  // namespace acute::testbed
