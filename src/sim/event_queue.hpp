// Priority queue of timestamped events with stable FIFO ordering for ties
// and O(1) lazy cancellation.
//
// Cancellation leaves the entry in the heap to be skipped when popped; long
// campaigns (every probe arms a timeout that is almost always cancelled)
// would otherwise accumulate unbounded dead entries, so the queue compacts
// itself whenever cancelled entries outnumber live ones (amortized O(1)).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace acute::sim {

/// Callback type executed when an event fires.
using EventFn = std::function<void()>;

namespace detail {
struct CancelState {
  bool cancelled = false;
  // Owned by the queue; weak here so a handle outliving the queue is safe.
  std::weak_ptr<std::size_t> live_counter;
};
}  // namespace detail

/// Handle returned by EventQueue::push; allows cancelling a pending event.
///
/// Cancellation is lazy: the queue entry stays in the heap but is skipped
/// when popped. Handles are cheap to copy; a handle outliving the queue is
/// harmless.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel() {
    auto s = state_.lock();
    if (s == nullptr || s->cancelled) return;
    s->cancelled = true;
    if (auto counter = s->live_counter.lock()) {
      --*counter;
    }
  }

  /// True when the handle refers to an event that is still pending.
  [[nodiscard]] bool pending() const {
    auto s = state_.lock();
    return s != nullptr && !s->cancelled;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<detail::CancelState> state)
      : state_(std::move(state)) {}
  std::weak_ptr<detail::CancelState> state_;
};

/// Min-heap of events keyed by (time, insertion sequence).
///
/// Two events scheduled for the same instant fire in the order they were
/// pushed, which keeps the simulation deterministic.
class EventQueue {
 public:
  EventQueue() : live_count_(std::make_shared<std::size_t>(0)) {}

  /// Inserts an event that fires at `when`. Returns a cancellation handle.
  EventHandle push(TimePoint when, EventFn fn);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return *live_count_ == 0; }

  /// Number of live events currently queued.
  [[nodiscard]] std::size_t size() const { return *live_count_; }

  /// Fire time of the earliest live event. Requires !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Removes and returns the earliest live event. Requires !empty().
  struct Fired {
    TimePoint when;
    EventFn fn;
  };
  [[nodiscard]] Fired pop();

  /// Drops every queued event.
  void clear();

  /// Raw heap entries, cancelled ones included (compaction introspection).
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }

  /// Times the heap was compacted (cancelled entries physically removed).
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

  /// Below this many raw entries compaction is never attempted (the scan
  /// would cost more than the dead entries do).
  static constexpr std::size_t kCompactMinEntries = 64;

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<detail::CancelState> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_prefix() const;
  void maybe_compact();

  // A binary heap over (when, seq) maintained with the std heap algorithms
  // (an explicit vector so compaction can erase dead entries in place).
  mutable std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  std::shared_ptr<std::size_t> live_count_;
  std::uint64_t compactions_ = 0;
};

}  // namespace acute::sim
