// Priority queue of timestamped events with stable FIFO ordering for ties,
// O(1) generation-checked cancellation, and zero heap allocations per event
// in steady state.
//
// Storage model
//   * Closures live in a pool of fixed slots (stable chunked storage, LIFO
//     free list) and are built in place via EventClosure's inline buffer;
//     oversized captures overflow into the queue's ClosureArena. Once the
//     pool, the heap vector and the arena are warm, push/cancel/pop perform
//     no allocation at all — the event-core allocation test pins this.
//   * The binary heap orders small {when, seq, slot} items, so sift
//     operations move 24 bytes per hop regardless of capture size.
//   * An EventHandle is {slot index, generation}: cancel/pending are O(1)
//     slot lookups with no atomics. Each completed event (fired or
//     cancelled) bumps its slot's generation, so a stale handle can never
//     touch the slot's next tenant. Handles reach the queue through a single
//     per-queue life block, so a handle outliving the queue is inert.
//
// Determinism invariants (these survived the allocation-free rewrite and
// every future change must preserve them):
//   * Events fire in strict (time, insertion sequence) order; two events
//     scheduled for the same instant fire in the order they were pushed.
//   * Cancellation is lazy in the heap (the {when, seq, slot} item stays
//     until popped or compacted) but eager in effect: the closure and its
//     captures are destroyed at cancel() time, and the live count drops
//     immediately.
//   * Compaction only erases dead items and re-heapifies over the same
//     (when, seq) comparator, so it never changes the pop order.
//   * Slot indices and generations are bookkeeping only — nothing orders on
//     them — so pool reuse patterns cannot perturb replay determinism.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "sim/closure.hpp"
#include "sim/contracts.hpp"
#include "sim/time.hpp"

namespace acute::sim {

/// Callback type executed when an event fires (move-only; see closure.hpp).
using EventFn = EventClosure;

class EventQueue;

namespace detail {
/// One per EventQueue: lets handles reach the queue safely. `queue` is
/// nulled when the queue dies, so handles that outlive it become inert. The
/// refcount is deliberately non-atomic — the event core is single-threaded
/// per simulator shard, and handles must not cross threads.
struct QueueLife {
  EventQueue* queue = nullptr;
  std::uint64_t refs = 0;
};
}  // namespace detail

/// Handle returned by EventQueue::push; allows cancelling a pending event.
///
/// A handle is {slot, generation}: cancelling after the event fired (or was
/// already cancelled) is a no-op, and a handle kept across slot reuse cannot
/// cancel the slot's newer event (generation mismatch). Handles are cheap to
/// copy; a handle outliving the queue is harmless.
class EventHandle {
 public:
  EventHandle() = default;

  EventHandle(const EventHandle& other)
      : life_(other.life_), slot_(other.slot_), generation_(other.generation_) {
    if (life_ != nullptr) ++life_->refs;
  }
  EventHandle(EventHandle&& other) noexcept
      : life_(other.life_), slot_(other.slot_), generation_(other.generation_) {
    other.life_ = nullptr;
  }
  EventHandle& operator=(const EventHandle& other) {
    if (this != &other) {
      release();
      life_ = other.life_;
      slot_ = other.slot_;
      generation_ = other.generation_;
      if (life_ != nullptr) ++life_->refs;
    }
    return *this;
  }
  EventHandle& operator=(EventHandle&& other) noexcept {
    if (this != &other) {
      release();
      life_ = other.life_;
      slot_ = other.slot_;
      generation_ = other.generation_;
      other.life_ = nullptr;
    }
    return *this;
  }
  ~EventHandle() { release(); }

  /// Cancels the event if it has not fired yet. Idempotent; O(1).
  void cancel();

  /// True when the handle refers to an event that is still pending.
  [[nodiscard]] bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(detail::QueueLife* life, std::uint32_t slot,
              std::uint32_t generation)
      : life_(life), slot_(slot), generation_(generation) {
    ++life_->refs;
  }
  void release() noexcept {
    if (life_ != nullptr && --life_->refs == 0) delete life_;
    life_ = nullptr;
  }

  detail::QueueLife* life_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

/// Min-heap of events keyed by (time, insertion sequence).
///
/// Two events scheduled for the same instant fire in the order they were
/// pushed, which keeps the simulation deterministic.
class EventQueue {
 public:
  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Inserts an event that fires at `when`. Returns a cancellation handle.
  /// The callable is built directly into the slot pool (inline buffer or
  /// this queue's arena) — one move of the callable, zero heap allocations
  /// in steady state.
  template <typename F, typename Fn = std::remove_cvref_t<F>>
    requires(!std::is_same_v<Fn, EventClosure> && std::is_invocable_v<Fn&>)
  EventHandle push(TimePoint when, F&& fn) {
    // Catch empty callables (null function pointers, empty std::function)
    // at schedule time, not as a crash at fire time. Lambdas skip this.
    if constexpr (std::is_constructible_v<bool, const Fn&>) {
      expects(static_cast<bool>(fn), "EventQueue::push requires a callable");
    }
    const std::uint32_t index = acquire_slot();
    Slot& s = slot(index);
    s.fn.emplace(std::forward<F>(fn), &arena_);
    s.live = true;
    heap_.push_back(HeapItem{when, next_seq_++, index});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_count_;
    maybe_compact();
    return EventHandle{life_, index, s.generation};
  }

  /// Inserts a pre-built closure (must be non-empty).
  EventHandle push(TimePoint when, EventClosure fn);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  /// Number of live events currently queued.
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Fire time of the earliest live event. Requires !empty().
  [[nodiscard]] TimePoint next_time();

  /// Removes and returns the earliest live event. Requires !empty().
  struct Fired {
    TimePoint when;
    EventFn fn;
  };
  [[nodiscard]] Fired pop();

  /// Pops and invokes the earliest live event *in place* — no closure move.
  /// `pre` runs with the fire time after the event is committed (detached
  /// from cancellation) but before the closure executes; the Simulator
  /// advances its clock there. Returns false when the queue is empty.
  template <typename PreFire>
  bool fire_one(PreFire&& pre) {
    drop_dead_prefix();
    if (heap_.empty()) return false;
    fire_top(pre);
    return true;
  }

  /// As fire_one, but only when the earliest live event fires at or before
  /// `deadline`. One heap-top inspection decides "any event?" and "beats
  /// the deadline?" together, so batched run_until loops never pay a
  /// separate empty()/next_time() pass per event.
  template <typename PreFire>
  bool fire_one_before(TimePoint deadline, PreFire&& pre) {
    drop_dead_prefix();
    if (heap_.empty() || deadline < heap_.front().when) return false;
    fire_top(pre);
    return true;
  }

  /// Drops every queued event.
  void clear();

  /// Restores the freshly-constructed observable state while keeping the
  /// warm storage (slot chunks, free list, heap capacity, arena blocks).
  /// Stale handles stay inert (clear() bumps every live generation), and
  /// the insertion-sequence counter restarts at zero so a reused queue
  /// breaks time ties exactly like a brand-new one — the property the
  /// campaign shard-context pool's bit-identity contract rests on.
  void reset() {
    clear();
    next_seq_ = 0;
    compactions_ = 0;
  }

  /// Raw heap entries, cancelled ones included (compaction introspection).
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }

  /// Times the heap was compacted (cancelled entries physically removed).
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

  /// Closure-overflow arena (allocation-accounting introspection).
  [[nodiscard]] const ClosureArena& arena() const { return arena_; }

  /// Slot-pool chunks allocated so far (introspection; flat once warm).
  [[nodiscard]] std::size_t slot_chunks() const { return chunks_.size(); }

  /// Below this many raw entries compaction is never attempted (the scan
  /// would cost more than the dead entries do).
  static constexpr std::size_t kCompactMinEntries = 64;

 private:
  friend class EventHandle;

  struct Slot {
    EventClosure fn;
    std::uint32_t generation = 0;
    bool live = false;
  };
  struct HeapItem {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t kSlotsPerChunk = 128;

  [[nodiscard]] Slot& slot(std::uint32_t index) {
    return chunks_[index / kSlotsPerChunk][index % kSlotsPerChunk];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t index) const {
    return chunks_[index / kSlotsPerChunk][index % kSlotsPerChunk];
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index) noexcept {
    free_slots_.push_back(index);  // capacity pre-reserved; never reallocates
  }

  void cancel_event(std::uint32_t index, std::uint32_t generation) noexcept;
  [[nodiscard]] bool event_pending(std::uint32_t index,
                                   std::uint32_t generation) const {
    const Slot& s = slot(index);
    return s.live && s.generation == generation;
  }

  void drop_dead_prefix();
  void pop_into(Fired& out);
  void maybe_compact();

  // Pops the heap top and runs its closure without moving it out of the
  // slot. Safe against reentrant push (slot chunks never move), against
  // self-cancel (the generation is bumped before user code runs) and
  // against clear() from inside the callback (the firing item is already
  // off the heap, so only this frame releases its slot).
  template <typename PreFire>
  void fire_top(PreFire&& pre) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const HeapItem item = heap_.back();
    heap_.pop_back();
    Slot& s = slot(item.slot);
    s.live = false;
    ++s.generation;  // the firing event can no longer be cancelled
    --live_count_;
    pre(item.when);
    try {
      s.fn();
    } catch (...) {
      // A throwing callback must not leak the slot (or keep its captures
      // alive): release on the unwind path too, then propagate.
      s.fn.reset();
      release_slot(item.slot);
      throw;
    }
    s.fn.reset();
    release_slot(item.slot);
  }

  // Stable chunked slot storage: chunks are never moved or freed while the
  // queue lives, so in-flight closures keep their addresses and the pool
  // recycles instead of reallocating.
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapItem> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  std::uint64_t compactions_ = 0;
  ClosureArena arena_;
  detail::QueueLife* life_ = nullptr;
};

inline void EventHandle::cancel() {
  if (life_ == nullptr || life_->queue == nullptr) return;
  life_->queue->cancel_event(slot_, generation_);
}

inline bool EventHandle::pending() const {
  return life_ != nullptr && life_->queue != nullptr &&
         life_->queue->event_pending(slot_, generation_);
}

}  // namespace acute::sim
