#include "sim/simulator.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::sim {

EventHandle Simulator::schedule_at(TimePoint when, EventFn fn) {
  expects(when >= now_, "Simulator::schedule_at time must not be in the past");
  return queue_.push(when, std::move(fn));
}

EventHandle Simulator::schedule_in(Duration delay, EventFn fn) {
  expects(!delay.is_negative(),
          "Simulator::schedule_in delay must be non-negative");
  return queue_.push(now_ + delay, std::move(fn));
}

void Simulator::fire_next() {
  auto fired = queue_.pop();
  ensures(fired.when >= now_, "event queue returned an event from the past");
  now_ = fired.when;
  ++events_fired_;
  fired.fn();
}

std::size_t Simulator::run() {
  std::size_t count = 0;
  while (!queue_.empty()) {
    fire_next();
    if (++count > event_limit_) {
      throw ContractViolation("Simulator::run exceeded the event limit");
    }
  }
  return count;
}

std::size_t Simulator::run_until(TimePoint deadline) {
  expects(deadline >= now_, "Simulator::run_until deadline is in the past");
  std::size_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    fire_next();
    if (++count > event_limit_) {
      throw ContractViolation("Simulator::run_until exceeded the event limit");
    }
  }
  now_ = deadline;
  return count;
}

std::size_t Simulator::run_for(Duration span) {
  return run_until(now_ + span);
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  fire_next();
  return true;
}

}  // namespace acute::sim
