#include "sim/simulator.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::sim {

std::size_t Simulator::run() {
  std::size_t count = 0;
  const auto advance = [this](TimePoint when) { advance_clock(when); };
  while (queue_.fire_one(advance)) {
    if (++count > event_limit_) {
      throw ContractViolation("Simulator::run exceeded the event limit");
    }
  }
  return count;
}

std::size_t Simulator::run_until(TimePoint deadline) {
  expects(deadline >= now_, "Simulator::run_until deadline is in the past");
  // Batched pop: fire_one_before decides "is there an event" and "does it
  // beat the deadline" from the single heap-top inspection the pop needs
  // anyway, and the closure runs in place in the slot pool (no move).
  std::size_t count = 0;
  const auto advance = [this](TimePoint when) { advance_clock(when); };
  while (queue_.fire_one_before(deadline, advance)) {
    if (++count > event_limit_) {
      throw ContractViolation("Simulator::run_until exceeded the event limit");
    }
  }
  now_ = deadline;
  return count;
}

std::size_t Simulator::run_for(Duration span) {
  return run_until(now_ + span);
}

bool Simulator::step() {
  return queue_.fire_one([this](TimePoint when) { advance_clock(when); });
}

}  // namespace acute::sim
