#include "sim/logging.hpp"

#include <iostream>

namespace acute::sim {

namespace {
LogLevel g_level = LogLevel::warn;
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::trace:
      return "TRACE";
    case LogLevel::debug:
      return "DEBUG";
    case LogLevel::info:
      return "INFO";
    case LogLevel::warn:
      return "WARN";
    case LogLevel::off:
      return "OFF";
  }
  return "?";
}

LogLevel Log::level() { return g_level; }

void Log::set_level(LogLevel level) { g_level = level; }

void Log::write(LogLevel level, TimePoint when, std::string_view component,
                const std::string& message) {
  if (!enabled(level)) return;
  std::clog << "[" << when.to_string() << "] " << to_string(level) << " "
            << component << ": " << message << '\n';
}

}  // namespace acute::sim
