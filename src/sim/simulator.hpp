// The discrete-event simulation engine.
//
// Single-threaded and fully deterministic: events fire in (time, insertion)
// order, and all model code runs inside event callbacks. The "concurrent
// threads" of the paper's AcuteMon (background-traffic thread, measurement
// thread) are cooperating processes scheduled on this engine.
//
// Scheduling is allocation-free in steady state: schedule_at/schedule_in
// build the closure directly into the event queue's slot pool (EventClosure
// inline buffer, ClosureArena overflow), so each campaign shard recycles its
// own memory instead of hammering the global allocator from many workers.
#pragma once

#include <cstdint>
#include <type_traits>

#include "sim/contracts.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace acute::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (must not be in the past).
  template <typename F>
  EventHandle schedule_at(TimePoint when, F&& fn) {
    expects(when >= now_,
            "Simulator::schedule_at time must not be in the past");
    return queue_.push(when, std::forward<F>(fn));
  }

  /// Schedules `fn` to run `delay` from now (delay must be non-negative).
  template <typename F>
  EventHandle schedule_in(Duration delay, F&& fn) {
    expects(!delay.is_negative(),
            "Simulator::schedule_in delay must be non-negative");
    return queue_.push(now_ + delay, std::forward<F>(fn));
  }

  /// Runs events until the queue drains. Returns the number of events fired.
  std::size_t run();

  /// Runs events with fire time <= `deadline`, then advances the clock to
  /// `deadline` (even if the queue drained earlier). Returns events fired.
  std::size_t run_until(TimePoint deadline);

  /// Convenience: run_until(now() + span).
  std::size_t run_for(Duration span);

  /// Fires exactly one event if any is pending. Returns true if one fired.
  bool step();

  /// Number of live pending events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Total events fired over this simulator's lifetime (work accounting for
  /// campaign throughput benches).
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }

  /// The underlying event queue (compaction / arena introspection).
  [[nodiscard]] const EventQueue& queue() const { return queue_; }

  /// Drops all pending events without firing them.
  void clear() { queue_.clear(); }

  /// Returns the simulator to its freshly-constructed observable state
  /// (time zero, zero events fired, default event limit) while keeping the
  /// event queue's warm storage. A reused simulator is indistinguishable
  /// from a new one to model code: pending events are destroyed, stale
  /// handles are inert, and tie-breaking restarts from sequence zero.
  void reset() {
    queue_.reset();
    now_ = TimePoint{};
    events_fired_ = 0;
    event_limit_ = kDefaultEventLimit;
  }

  /// Safety valve: run()/run_until() throw after this many events in a
  /// single call, catching accidental infinite self-rescheduling loops.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  /// The event limit a freshly-constructed (or reset) simulator starts with.
  static constexpr std::uint64_t kDefaultEventLimit = 500'000'000;

 private:
  // The single clock-advance step every fire path goes through (passed to
  // EventQueue::fire_one* as the PreFire hook).
  void advance_clock(TimePoint when) {
    ensures(when >= now_, "event queue returned an event from the past");
    now_ = when;
    ++events_fired_;
  }

  EventQueue queue_;
  TimePoint now_;
  std::uint64_t events_fired_ = 0;
  std::uint64_t event_limit_ = kDefaultEventLimit;
};

}  // namespace acute::sim
