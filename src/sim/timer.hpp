// Timer utilities built on the Simulator: restartable one-shot timers (used
// for PSM / SDIO demotion timeouts) and drift-free periodic timers (used for
// driver watchdogs, beacons and background traffic).
#pragma once

#include <functional>
#include <utility>

#include "sim/contracts.hpp"
#include "sim/simulator.hpp"

namespace acute::sim {

/// A one-shot timer that can be (re)armed and cancelled.
///
/// Typical use is an inactivity timeout: call `restart()` on every activity;
/// the callback only fires if no restart happens for the full delay.
class OneShotTimer {
 public:
  OneShotTimer(Simulator& sim, EventFn on_fire)
      : sim_(&sim), on_fire_(std::move(on_fire)) {}

  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;
  ~OneShotTimer() { cancel(); }

  /// Arms (or re-arms) the timer to fire `delay` from now.
  void restart(Duration delay) {
    cancel();
    handle_ =
        sim_->schedule_in(delay, assert_fits_inline([this] { on_fire_(); }));
  }

  /// Stops the timer if armed. Idempotent.
  void cancel() { handle_.cancel(); }

  /// Returns the timer to its freshly-constructed state. Used by the
  /// shard-context pool after Simulator::reset(), where the old handle is
  /// already inert; dropping it also releases its queue-life reference.
  void reset() {
    cancel();
    handle_ = EventHandle{};
  }

  [[nodiscard]] bool armed() const { return handle_.pending(); }

 private:
  Simulator* sim_;
  EventFn on_fire_;
  EventHandle handle_;
};

/// A periodic timer with drift-free ticks: each tick is scheduled at
/// `start + k * period`, independent of callback execution order.
class PeriodicTimer {
 public:
  /// The callback receives the tick index (0-based).
  using TickFn = std::function<void(std::uint64_t)>;

  PeriodicTimer(Simulator& sim, Duration period, TickFn on_tick)
      : sim_(&sim), period_(period), on_tick_(std::move(on_tick)) {
    expects(period > Duration{}, "PeriodicTimer period must be positive");
  }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;
  ~PeriodicTimer() { stop(); }

  /// Starts ticking; the first tick fires `initial_delay` from now.
  void start(Duration initial_delay = Duration{}) {
    expects(!initial_delay.is_negative(),
            "PeriodicTimer initial delay must be non-negative");
    stop();
    running_ = true;
    tick_index_ = 0;
    schedule_next(sim_->now() + initial_delay);
  }

  /// Stops ticking. Idempotent.
  void stop() {
    running_ = false;
    handle_.cancel();
  }

  /// Returns the timer to its freshly-constructed state with a (possibly
  /// new) period. Used by the shard-context pool, where the owning
  /// component's period can change with the scenario (e.g. the SDIO bus
  /// watchdog follows the phone profile).
  void reset(Duration period) {
    expects(period > Duration{}, "PeriodicTimer period must be positive");
    stop();
    handle_ = EventHandle{};
    period_ = period;
    tick_index_ = 0;
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] Duration period() const { return period_; }

 private:
  void schedule_next(TimePoint when) {
    handle_ = sim_->schedule_at(when, assert_fits_inline([this, when] {
      const std::uint64_t index = tick_index_++;
      // Schedule the next tick before running user code so the callback can
      // call stop() and win.
      if (running_) schedule_next(when + period_);
      on_tick_(index);
    }));
  }

  Simulator* sim_;
  Duration period_;
  TickFn on_tick_;
  EventHandle handle_;
  bool running_ = false;
  std::uint64_t tick_index_ = 0;
};

}  // namespace acute::sim
