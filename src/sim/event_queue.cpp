#include "sim/event_queue.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::sim {

EventHandle EventQueue::push(TimePoint when, EventFn fn) {
  expects(static_cast<bool>(fn), "EventQueue::push requires a callable");
  auto state = std::make_shared<detail::CancelState>();
  state->live_counter = live_count_;
  EventHandle handle{state};
  heap_.push(Entry{when, next_seq_++, std::move(fn), std::move(state)});
  ++*live_count_;
  return handle;
}

void EventQueue::drop_cancelled_prefix() const {
  while (!heap_.empty() && heap_.top().state->cancelled) {
    heap_.pop();
  }
}

TimePoint EventQueue::next_time() const {
  expects(!empty(), "EventQueue::next_time on empty queue");
  drop_cancelled_prefix();
  return heap_.top().when;
}

EventQueue::Fired EventQueue::pop() {
  expects(!empty(), "EventQueue::pop on empty queue");
  drop_cancelled_prefix();
  const Entry& top = heap_.top();
  // Fired events can no longer be cancelled; mark so handles report done.
  top.state->cancelled = true;
  Fired fired{top.when, std::move(top.fn)};
  heap_.pop();
  --*live_count_;
  return fired;
}

void EventQueue::clear() {
  while (!heap_.empty()) {
    heap_.pop();
  }
  *live_count_ = 0;
}

}  // namespace acute::sim
