#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "sim/contracts.hpp"

namespace acute::sim {

EventHandle EventQueue::push(TimePoint when, EventFn fn) {
  expects(static_cast<bool>(fn), "EventQueue::push requires a callable");
  auto state = std::make_shared<detail::CancelState>();
  state->live_counter = live_count_;
  EventHandle handle{state};
  heap_.push_back(Entry{when, next_seq_++, std::move(fn), std::move(state)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++*live_count_;
  maybe_compact();
  return handle;
}

void EventQueue::drop_cancelled_prefix() const {
  while (!heap_.empty() && heap_.front().state->cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

void EventQueue::maybe_compact() {
  // Compact when cancelled entries dominate: the O(n) sweep is then paid at
  // most every n/2 cancellations, i.e. amortized O(1) per event.
  if (heap_.size() < kCompactMinEntries) return;
  if (heap_.size() < 2 * *live_count_) return;
  heap_.erase(std::remove_if(
                  heap_.begin(), heap_.end(),
                  [](const Entry& entry) { return entry.state->cancelled; }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  ++compactions_;
}

TimePoint EventQueue::next_time() const {
  expects(!empty(), "EventQueue::next_time on empty queue");
  drop_cancelled_prefix();
  return heap_.front().when;
}

EventQueue::Fired EventQueue::pop() {
  expects(!empty(), "EventQueue::pop on empty queue");
  drop_cancelled_prefix();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry& top = heap_.back();
  // Fired events can no longer be cancelled; mark so handles report done.
  top.state->cancelled = true;
  Fired fired{top.when, std::move(top.fn)};
  heap_.pop_back();
  --*live_count_;
  return fired;
}

void EventQueue::clear() {
  heap_.clear();
  *live_count_ = 0;
}

}  // namespace acute::sim
