#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "sim/contracts.hpp"

namespace acute::sim {

EventQueue::EventQueue() : life_(new detail::QueueLife{this, 1}) {}

EventQueue::~EventQueue() {
  life_->queue = nullptr;  // outstanding handles become inert
  if (--life_->refs == 0) delete life_;
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_slots_.empty()) {
    const auto base =
        static_cast<std::uint32_t>(chunks_.size() * kSlotsPerChunk);
    chunks_.push_back(std::make_unique<Slot[]>(kSlotsPerChunk));
    // Reserve for the worst case (every slot free at once) so release_slot
    // never reallocates, then hand out low indices first.
    free_slots_.reserve(chunks_.size() * kSlotsPerChunk);
    for (std::uint32_t i = kSlotsPerChunk; i > 0; --i) {
      free_slots_.push_back(base + i - 1);
    }
  }
  const std::uint32_t index = free_slots_.back();
  free_slots_.pop_back();
  return index;
}

EventHandle EventQueue::push(TimePoint when, EventClosure fn) {
  expects(static_cast<bool>(fn), "EventQueue::push requires a callable");
  const std::uint32_t index = acquire_slot();
  Slot& s = slot(index);
  s.fn = std::move(fn);
  s.live = true;
  heap_.push_back(HeapItem{when, next_seq_++, index});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  maybe_compact();
  return EventHandle{life_, index, s.generation};
}

EventQueue::Fired EventQueue::pop() {
  expects(!empty(), "EventQueue::pop on empty queue");
  drop_dead_prefix();
  Fired fired;
  pop_into(fired);
  return fired;
}

void EventQueue::cancel_event(std::uint32_t index,
                              std::uint32_t generation) noexcept {
  Slot& s = slot(index);
  if (!s.live || s.generation != generation) return;  // fired/cancelled/reused
  s.live = false;
  ++s.generation;  // stale handles can never match this slot again
  s.fn.reset();    // release captures (and any arena overflow) eagerly
  --live_count_;
  // The heap item stays until popped or compacted (lazy deletion).
}

void EventQueue::drop_dead_prefix() {
  while (!heap_.empty() && !slot(heap_.front().slot).live) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    release_slot(heap_.back().slot);
    heap_.pop_back();
  }
}

void EventQueue::pop_into(Fired& out) {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const HeapItem item = heap_.back();
  heap_.pop_back();
  Slot& s = slot(item.slot);
  out.when = item.when;
  out.fn = std::move(s.fn);
  s.live = false;
  ++s.generation;  // fired events can no longer be cancelled
  release_slot(item.slot);
  --live_count_;
}

void EventQueue::maybe_compact() {
  // Compact when cancelled entries dominate: the O(n) sweep is then paid at
  // most every n/2 cancellations, i.e. amortized O(1) per event.
  if (heap_.size() < kCompactMinEntries) return;
  if (heap_.size() < 2 * live_count_) return;
  std::size_t write = 0;
  for (std::size_t read = 0; read < heap_.size(); ++read) {
    const HeapItem& item = heap_[read];
    if (slot(item.slot).live) {
      heap_[write++] = item;
    } else {
      release_slot(item.slot);
    }
  }
  heap_.resize(write);
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  ++compactions_;
}

TimePoint EventQueue::next_time() {
  expects(!empty(), "EventQueue::next_time on empty queue");
  drop_dead_prefix();
  return heap_.front().when;
}

void EventQueue::clear() {
  for (const HeapItem& item : heap_) {
    Slot& s = slot(item.slot);
    if (s.live) {
      s.live = false;
      ++s.generation;
      s.fn.reset();
    }
    release_slot(item.slot);
  }
  heap_.clear();
  live_count_ = 0;
}

}  // namespace acute::sim
