// Minimal leveled logger for simulation tracing.
//
// Logging defaults to `warn`, so experiments run silently; tests and the
// examples turn on `debug` to watch the driver / PSM state machines, which
// mirrors the paper's technique of enabling bcmdhd debug messages (§3.2.1).
#pragma once

#include <sstream>
#include <string>

#include "sim/time.hpp"

namespace acute::sim {

enum class LogLevel { trace = 0, debug = 1, info = 2, warn = 3, off = 4 };

[[nodiscard]] const char* to_string(LogLevel level);

/// Process-wide log configuration and sink.
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  /// Emits one line: "[<sim time>] <LEVEL> <component>: <message>".
  static void write(LogLevel level, TimePoint when, std::string_view component,
                    const std::string& message);

  /// True when messages at `level` would be emitted.
  static bool enabled(LogLevel level) { return level >= Log::level(); }
};

/// Lightweight component logger carried by model objects.
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  template <typename... Args>
  void debug(TimePoint when, const Args&... args) const {
    emit(LogLevel::debug, when, args...);
  }
  template <typename... Args>
  void info(TimePoint when, const Args&... args) const {
    emit(LogLevel::info, when, args...);
  }
  template <typename... Args>
  void warn(TimePoint when, const Args&... args) const {
    emit(LogLevel::warn, when, args...);
  }

  [[nodiscard]] const std::string& component() const { return component_; }

 private:
  template <typename... Args>
  void emit(LogLevel level, TimePoint when, const Args&... args) const {
    if (!Log::enabled(level)) return;
    std::ostringstream os;
    (os << ... << args);
    Log::write(level, when, component_, os.str());
  }

  std::string component_;
};

}  // namespace acute::sim
