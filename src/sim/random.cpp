#include "sim/random.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace acute::sim {

namespace {
// FNV-1a, used to mix fork tags into the parent seed.
std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

// SplitMix64 finaliser: decorrelates seed/tag mixtures.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

Rng Rng::fork(std::string_view tag) const {
  return Rng(mix(seed_ ^ fnv1a(tag)));
}

Rng Rng::fork(std::uint64_t tag) const {
  return Rng(mix(seed_ ^ mix(tag)));
}

double Rng::uniform(double lo, double hi) {
  expects(lo <= hi, "Rng::uniform requires lo <= hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine());
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  expects(lo <= hi, "Rng::uniform_int requires lo <= hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine());
}

double Rng::normal(double mu, double sigma) {
  expects(sigma >= 0, "Rng::normal requires sigma >= 0");
  if (sigma == 0) return mu;
  return std::normal_distribution<double>(mu, sigma)(engine());
}

double Rng::truncated_normal(double mu, double sigma, double lo, double hi) {
  expects(lo <= hi, "Rng::truncated_normal requires lo <= hi");
  for (int i = 0; i < 64; ++i) {
    const double x = normal(mu, sigma);
    if (x >= lo && x <= hi) return x;
  }
  return std::clamp(mu, lo, hi);
}

double Rng::lognormal(double mu, double sigma) {
  expects(sigma >= 0, "Rng::lognormal requires sigma >= 0");
  return std::lognormal_distribution<double>(mu, sigma)(engine());
}

double Rng::exponential(double mean) {
  expects(mean > 0, "Rng::exponential requires mean > 0");
  return std::exponential_distribution<double>(1.0 / mean)(engine());
}

bool Rng::bernoulli(double p) {
  expects(p >= 0.0 && p <= 1.0, "Rng::bernoulli requires p in [0, 1]");
  return std::bernoulli_distribution(p)(engine());
}

Duration Rng::uniform_duration(Duration lo, Duration hi) {
  expects(lo <= hi, "Rng::uniform_duration requires lo <= hi");
  return Duration::nanos(uniform_int(lo.count_nanos(), hi.count_nanos()));
}

Duration Rng::truncated_normal_ms(double mu_ms, double sigma_ms, double lo_ms,
                                  double hi_ms) {
  return Duration::millis(truncated_normal(mu_ms, sigma_ms, lo_ms, hi_ms));
}

}  // namespace acute::sim
