// Deterministic random number generation.
//
// A single master seed fans out into independent named streams via fork(),
// so adding a new consumer never perturbs the draws seen by existing ones —
// essential for reproducible experiments.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <string_view>

#include "sim/time.hpp"

namespace acute::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed) {}

  /// Derives an independent child stream keyed by `tag`.
  [[nodiscard]] Rng fork(std::string_view tag) const;

  /// Derives an independent child stream keyed by an integer tag.
  [[nodiscard]] Rng fork(std::uint64_t tag) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal draw (mean mu, stddev sigma).
  double normal(double mu, double sigma);

  /// Normal draw truncated to [lo, hi] by resampling (max 64 tries, then
  /// clamped). Used for latencies with known physical bounds.
  double truncated_normal(double mu, double sigma, double lo, double hi);

  /// Log-normal draw parameterised by the *underlying* normal (mu, sigma).
  double lognormal(double mu, double sigma);

  /// Exponential draw with the given mean.
  double exponential(double mean);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Uniform Duration in [lo, hi].
  Duration uniform_duration(Duration lo, Duration hi);

  /// Truncated-normal Duration, parameters in milliseconds.
  Duration truncated_normal_ms(double mu_ms, double sigma_ms, double lo_ms,
                               double hi_ms);

  /// Access to the raw engine for std:: distributions.
  ///
  /// The engine is seeded lazily on the first draw: seeding a mt19937_64
  /// materialises its full 312-word state, which dominates the cost of
  /// Rng construction, and most forked streams are only forked onward
  /// (never drawn from). Deferring the seeding skips that cost entirely
  /// for such streams while leaving every draw sequence bit-identical —
  /// the engine still sees exactly seed_ at first use.
  std::mt19937_64& engine() {
    if (!engine_.has_value()) engine_.emplace(seed_);
    return *engine_;
  }

 private:
  std::optional<std::mt19937_64> engine_;
  std::uint64_t seed_;
};

}  // namespace acute::sim
