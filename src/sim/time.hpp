// Simulation time primitives.
//
// The whole library measures time as signed 64-bit nanosecond counts, which
// gives ~292 years of range — far beyond any simulated experiment — with no
// floating-point drift. Duration is a span; TimePoint is an offset from the
// simulation epoch (t = 0 when the Simulator is constructed).
#pragma once

#include <compare>
#include <concepts>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace acute::sim {

/// A span of simulated time, in integer nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanos(std::int64_t n) {
    return Duration{n};
  }
  // The unit factories take any integral count, or a floating-point count
  // that is rounded to the nearest nanosecond — millis(10) and millis(1.5)
  // are both canonical; there is no separate from_ms() family. (The
  // integral overloads are constrained templates so that e.g. `int`
  // arguments bind to them exactly instead of tying with `double`.)
  [[nodiscard]] static constexpr Duration micros(std::integral auto us) {
    return Duration{static_cast<std::int64_t>(us) * 1'000};
  }
  [[nodiscard]] static constexpr Duration millis(std::integral auto ms) {
    return Duration{static_cast<std::int64_t>(ms) * 1'000'000};
  }
  [[nodiscard]] static constexpr Duration seconds(std::integral auto s) {
    return Duration{static_cast<std::int64_t>(s) * 1'000'000'000};
  }
  [[nodiscard]] static Duration micros(double us);
  [[nodiscard]] static Duration millis(double ms);
  [[nodiscard]] static Duration seconds(double s);

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_ms() const { return double(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_us() const { return double(ns_) / 1e3; }
  [[nodiscard]] constexpr double to_seconds() const {
    return double(ns_) / 1e9;
  }

  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration operator+(Duration other) const {
    return Duration{ns_ + other.ns_};
  }
  constexpr Duration operator-(Duration other) const {
    return Duration{ns_ - other.ns_};
  }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t k) const {
    return Duration{ns_ * k};
  }
  constexpr Duration operator/(std::int64_t k) const {
    return Duration{ns_ / k};
  }
  /// Ratio between two durations (e.g. to count watchdog ticks in a span).
  [[nodiscard]] constexpr std::int64_t divided_by(Duration other) const {
    return ns_ / other.ns_;
  }
  constexpr Duration& operator+=(Duration other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    ns_ -= other.ns_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  /// Human-readable rendering with an adaptive unit, e.g. "12.345ms".
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An instant in simulated time (nanoseconds since the simulation epoch).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint epoch() { return TimePoint{}; }
  [[nodiscard]] static constexpr TimePoint from_nanos(std::int64_t ns) {
    return TimePoint{ns};
  }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_ms() const { return double(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_seconds() const {
    return double(ns_) / 1e9;
  }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint{ns_ + d.count_nanos()};
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint{ns_ - d.count_nanos()};
  }
  constexpr Duration operator-(TimePoint other) const {
    return Duration::nanos(ns_ - other.ns_);
  }
  constexpr TimePoint& operator+=(Duration d) {
    ns_ += d.count_nanos();
    return *this;
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  /// Human-readable rendering as seconds, e.g. "1.234500s".
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, TimePoint t);

namespace literals {
constexpr Duration operator""_ns(unsigned long long n) {
  return Duration::nanos(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_us(unsigned long long n) {
  return Duration::micros(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_ms(unsigned long long n) {
  return Duration::millis(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_s(unsigned long long n) {
  return Duration::seconds(static_cast<std::int64_t>(n));
}
}  // namespace literals

}  // namespace acute::sim
