// Allocation-free callable storage for the discrete-event core.
//
// EventClosure replaces std::function<void()> on the scheduling hot path.
// It is a move-only type-erased callable with a large small-buffer
// optimization: every closure the simulation layers schedule (including the
// ones that capture a whole net::Packet or wifi::Frame by value) fits in the
// inline buffer, so steady-state scheduling never touches the heap. Callables
// that do overflow the buffer are carved out of a ClosureArena — a per-queue
// size-class free list — so even oversized closures recycle memory instead of
// hitting operator new once the arena is warm.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace acute::sim {

/// Size-class free list for closure overflow blocks (and any other
/// fixed-lifetime scratch the event core needs). Blocks are rounded up to a
/// power-of-two class and cached on free, so a steady-state workload that
/// repeatedly schedules the same oversized closure allocates exactly once.
///
/// Owned by one EventQueue (one simulator shard); not thread-safe, by design:
/// each campaign shard recycles its own memory with no cross-shard contention.
class ClosureArena {
 public:
  ClosureArena() = default;
  ClosureArena(const ClosureArena&) = delete;
  ClosureArena& operator=(const ClosureArena&) = delete;

  ~ClosureArena() {
    for (FreeBlock*& head : free_) {
      while (head != nullptr) {
        FreeBlock* next = head->next;
        ::operator delete(static_cast<void*>(head));
        head = next;
      }
    }
  }

  /// Returns a block of at least `bytes` (max_align_t aligned), preferring a
  /// recycled one.
  [[nodiscard]] void* allocate(std::size_t bytes) {
    const std::size_t cls = class_index(bytes);
    if (cls >= kClasses) {
      ++oversize_;
      return ::operator new(bytes);
    }
    if (free_[cls] != nullptr) {
      FreeBlock* block = free_[cls];
      free_[cls] = block->next;
      ++recycled_;
      return block;
    }
    ++fresh_;
    return ::operator new(class_bytes(cls));
  }

  /// Returns a block to its size-class free list. `bytes` must be the value
  /// passed to allocate().
  void deallocate(void* block, std::size_t bytes) noexcept {
    const std::size_t cls = class_index(bytes);
    if (cls >= kClasses) {
      ::operator delete(block);
      return;
    }
    auto* free_block = static_cast<FreeBlock*>(block);
    free_block->next = free_[cls];
    free_[cls] = free_block;
  }

  /// Blocks served by operator new (arena misses; flat once warm).
  [[nodiscard]] std::uint64_t fresh_blocks() const { return fresh_; }
  /// Blocks served from a free list (arena hits).
  [[nodiscard]] std::uint64_t recycled_blocks() const { return recycled_; }
  /// Requests too large for any size class (always heap round trips).
  [[nodiscard]] std::uint64_t oversize_blocks() const { return oversize_; }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };

  static constexpr std::size_t kMinBlockBytes = 64;
  static constexpr std::size_t kClasses = 16;  // 64 B .. 2 MiB

  static std::size_t class_index(std::size_t bytes) {
    std::size_t cls = 0;
    std::size_t cap = kMinBlockBytes;
    while (cap < bytes) {
      cap <<= 1;
      ++cls;
    }
    return cls;
  }
  static std::size_t class_bytes(std::size_t cls) {
    return kMinBlockBytes << cls;
  }

  std::array<FreeBlock*, kClasses> free_{};
  std::uint64_t fresh_ = 0;
  std::uint64_t recycled_ = 0;
  std::uint64_t oversize_ = 0;
};

/// Move-only type-erased `void()` callable with a large inline buffer.
///
/// The buffer is sized so that the fattest closure any stack layer schedules
/// — a lambda capturing `this` plus a full wifi::Frame (which embeds a
/// net::Packet) — is stored inline; `assert_fits_inline` pins that at the
/// call sites. Invoking is non-destructive, so timers can re-fire a stored
/// closure. An empty closure must not be invoked (EventQueue::push rejects
/// them up front).
class EventClosure {
 public:
  /// Inline capacity. Must cover sizeof(wifi::Frame) + two pointers; the
  /// event-core tests and the per-site assert_fits_inline checks keep this
  /// honest as the capture lists evolve.
  static constexpr std::size_t kInlineBytes = 352;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  /// True when callables of type F are stored in the inline buffer (no
  /// allocation on construction or destruction).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= kInlineBytes && alignof(F) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<F>;

  EventClosure() noexcept {}

  /// Wraps `fn`. Oversized callables overflow into `arena` when one is given
  /// (the owning EventQueue passes its own), else onto the global heap.
  template <typename F, typename Fn = std::remove_cvref_t<F>>
    requires(!std::is_same_v<Fn, EventClosure> && std::is_invocable_v<Fn&>)
  EventClosure(F&& fn, ClosureArena* arena = nullptr) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn), arena);
  }

  /// Replaces the wrapped callable, constructing the new one directly into
  /// this closure's storage — the single move the scheduling hot path pays
  /// per event (EventQueue emplaces straight into the slot pool).
  template <typename F, typename Fn = std::remove_cvref_t<F>>
    requires(!std::is_same_v<Fn, EventClosure> && std::is_invocable_v<Fn&>)
  void emplace(F&& fn, ClosureArena* arena = nullptr) {
    reset();
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(store_.buf)) Fn(std::forward<F>(fn));
      ops_ = &OpsFor<Fn, false>::table;
    } else {
      constexpr bool over_aligned = alignof(Fn) > kInlineAlign;
      ClosureArena* used = over_aligned ? nullptr : arena;
      void* block =
          used != nullptr
              ? used->allocate(sizeof(Fn))
              : (over_aligned
                     ? ::operator new(sizeof(Fn),
                                      std::align_val_t{alignof(Fn)})
                     : ::operator new(sizeof(Fn)));
      ::new (block) Fn(std::forward<F>(fn));
      store_.heap = HeapRef{block, used};
      ops_ = &OpsFor<Fn, true>::table;
    }
  }

  EventClosure(EventClosure&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(store_, other.store_);
      other.ops_ = nullptr;
    }
  }

  EventClosure& operator=(EventClosure&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(store_, other.store_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventClosure(const EventClosure&) = delete;
  EventClosure& operator=(const EventClosure&) = delete;

  ~EventClosure() { reset(); }

  /// Invokes the wrapped callable. Precondition: !empty().
  void operator()() { ops_->invoke(store_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Destroys the wrapped callable (returning any overflow block to its
  /// arena) and leaves the closure empty. Idempotent.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(store_);
      ops_ = nullptr;
    }
  }

  /// True when the callable lives in the inline buffer (introspection for
  /// the zero-allocation tests).
  [[nodiscard]] bool stored_inline() const {
    return ops_ != nullptr && !ops_->heap;
  }

 private:
  struct HeapRef {
    void* block;
    ClosureArena* arena;
  };

  union Store {
    Store() {}
    alignas(kInlineAlign) unsigned char buf[kInlineBytes];
    HeapRef heap;
  };

  struct Ops {
    void (*invoke)(Store&);
    void (*relocate)(Store& dst, Store& src) noexcept;
    void (*destroy)(Store&) noexcept;
    bool heap;
  };

  template <typename Fn, bool Heap>
  struct OpsFor {
    static Fn* object(Store& store) {
      if constexpr (Heap) {
        return static_cast<Fn*>(store.heap.block);
      } else {
        return std::launder(reinterpret_cast<Fn*>(store.buf));
      }
    }
    static void invoke(Store& store) { (*object(store))(); }
    static void relocate(Store& dst, Store& src) noexcept {
      if constexpr (Heap) {
        dst.heap = src.heap;  // steal the block
      } else {
        ::new (static_cast<void*>(dst.buf)) Fn(std::move(*object(src)));
        object(src)->~Fn();
      }
    }
    static void destroy(Store& store) noexcept {
      if constexpr (Heap) {
        const HeapRef ref = store.heap;
        object(store)->~Fn();
        if constexpr (alignof(Fn) > kInlineAlign) {
          ::operator delete(ref.block, std::align_val_t{alignof(Fn)});
        } else if (ref.arena != nullptr) {
          ref.arena->deallocate(ref.block, sizeof(Fn));
        } else {
          ::operator delete(ref.block);
        }
      } else {
        object(store)->~Fn();
      }
    }
    static constexpr Ops table{&invoke, &relocate, &destroy, Heap};
  };

  Store store_;
  const Ops* ops_ = nullptr;
};

/// Pass-through compile-time guard: `schedule_in(d, assert_fits_inline(fn))`
/// pins a scheduling site's closure inside EventClosure's inline buffer, so
/// a capture-list change that would silently reintroduce per-event heap
/// traffic fails to build instead.
template <typename F>
[[nodiscard]] constexpr F&& assert_fits_inline(F&& fn) noexcept {
  static_assert(
      EventClosure::fits_inline<std::remove_cvref_t<F>>,
      "scheduled closure no longer fits EventClosure's inline buffer: "
      "shrink the capture list or grow EventClosure::kInlineBytes");
  return std::forward<F>(fn);
}

}  // namespace acute::sim
