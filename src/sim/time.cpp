#include "sim/time.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace acute::sim {

Duration Duration::micros(double us) {
  return Duration{static_cast<std::int64_t>(std::llround(us * 1e3))};
}

Duration Duration::millis(double ms) {
  return Duration{static_cast<std::int64_t>(std::llround(ms * 1e6))};
}

Duration Duration::seconds(double s) {
  return Duration{static_cast<std::int64_t>(std::llround(s * 1e9))};
}

std::string Duration::to_string() const {
  std::ostringstream os;
  const std::int64_t abs_ns = ns_ < 0 ? -ns_ : ns_;
  if (abs_ns < 1'000) {
    os << ns_ << "ns";
  } else if (abs_ns < 1'000'000) {
    os << to_us() << "us";
  } else if (abs_ns < 1'000'000'000) {
    os << to_ms() << "ms";
  } else {
    os << to_seconds() << "s";
  }
  return os.str();
}

std::string TimePoint::to_string() const {
  std::ostringstream os;
  os << to_seconds() << "s";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.to_string();
}

std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << t.to_string();
}

}  // namespace acute::sim
