// Contract checking helpers (Core Guidelines I.6 / I.8).
//
// Public API boundaries validate their preconditions with expects(); internal
// invariants use ensures(). Violations throw ContractViolation so tests can
// assert on misuse instead of aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace acute::sim {

/// Thrown when a precondition or invariant of the library is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

/// Precondition check: throws ContractViolation when `condition` is false.
inline void expects(bool condition, const char* message) {
  if (!condition) {
    throw ContractViolation(std::string("precondition violated: ") + message);
  }
}

/// Postcondition / invariant check.
inline void ensures(bool condition, const char* message) {
  if (!condition) {
    throw ContractViolation(std::string("invariant violated: ") + message);
  }
}

}  // namespace acute::sim
