#include "passive/pping.hpp"

#include "sim/contracts.hpp"

namespace acute::passive {

using sim::expects;
using sim::TimePoint;

const char* to_string(PassiveVantage vantage) {
  switch (vantage) {
    case PassiveVantage::none:
      return "none";
    case PassiveVantage::sniffer:
      return "sniffer";
    case PassiveVantage::exec_env:
      return "exec-env";
    case PassiveVantage::both:
      return "both";
  }
  return "?";
}

std::optional<PassiveVantage> parse_passive_vantage(std::string_view name) {
  if (name == "none") return PassiveVantage::none;
  if (name == "sniffer") return PassiveVantage::sniffer;
  if (name == "exec-env") return PassiveVantage::exec_env;
  if (name == "both") return PassiveVantage::both;
  return std::nullopt;
}

PpingEstimator::PpingEstimator() : PpingEstimator(Config{}) {}

PpingEstimator::PpingEstimator(Config config) : config_(config) {
  expects(config_.max_outstanding > 0,
          "PpingEstimator requires max_outstanding > 0");
}

void PpingEstimator::watch_flow(net::NodeId phone, std::uint32_t flow_id,
                                std::size_t phone_index,
                                tools::ToolKind tool) {
  expects(find_flow(phone, flow_id) == nullptr,
          "PpingEstimator::watch_flow: flow already watched");
  // Reuse a retired slot when one exists: its Pending buffer kept its heap
  // allocation across reset(), so re-watching after a shard-context reuse
  // allocates nothing once the pool is warm.
  if (flow_count_ == flows_.size()) flows_.emplace_back();
  Flow& flow = flows_[flow_count_++];
  flow.phone = phone;
  flow.flow_id = flow_id;
  flow.phone_index = phone_index;
  flow.tool = tool;
  flow.next_ordinal = 0;
  flow.min_rtt_ms = -1;
  flow.pending.clear();
  flow.pending.reserve(config_.max_outstanding);
}

void PpingEstimator::on_capture(const net::Packet& packet,
                                net::NodeId /*transmitter*/,
                                net::NodeId /*receiver*/, TimePoint time,
                                bool collided) {
  // A collided frame reaches no receiver; its (clean) retransmission will
  // be captured again, and first-seen-wins handles the duplicate TSval.
  if (collided || packet.protocol != net::Protocol::tcp) return;
  if (packet.tcp_ts.tsval == 0 && packet.tcp_ts.tsecr == 0) return;
  // Phone egress = a send on the watched flow; phone ingress = a potential
  // echo. src/dst identify the direction regardless of which wireless hop
  // (phone->AP or AP->phone) the capture came from.
  if (Flow* flow = find_flow(packet.src, packet.flow_id)) {
    if (packet.tcp_ts.tsval != 0) {
      record_send(*flow, packet.tcp_ts.tsval, time);
    }
    return;
  }
  if (Flow* flow = find_flow(packet.dst, packet.flow_id)) {
    if (packet.tcp_ts.tsecr != 0) {
      match_echo(*flow, packet.tcp_ts.tsecr, time);
    }
  }
}

void PpingEstimator::record_send(Flow& flow, std::uint32_t tsval,
                                 TimePoint time) {
  evict_stale(flow, time);
  // First-seen-wins: a retransmission carries the TSval already on file
  // and must not restart that sample's clock.
  for (const Pending& entry : flow.pending) {
    if (entry.tsval == tsval) return;
  }
  if (flow.pending.size() >= config_.max_outstanding) {
    flow.pending.erase(flow.pending.begin());  // oldest first
    ++evicted_;
  }
  flow.pending.push_back(Pending{tsval, time});
}

void PpingEstimator::match_echo(Flow& flow, std::uint32_t tsecr,
                                TimePoint time) {
  for (auto it = flow.pending.begin(); it != flow.pending.end(); ++it) {
    if (it->tsval != tsecr) continue;
    RttSample sample;
    sample.phone_index = flow.phone_index;
    sample.tool = flow.tool;
    sample.ordinal = flow.next_ordinal++;
    sample.rtt_ms = (time - it->sent_at).to_ms();
    sample.matched_at = time;
    if (flow.min_rtt_ms < 0 || sample.rtt_ms < flow.min_rtt_ms) {
      flow.min_rtt_ms = sample.rtt_ms;
    }
    samples_.push_back(sample);
    // Match-once: the entry is consumed, so a duplicated or reordered
    // echo of the same TSval cannot emit a second sample.
    flow.pending.erase(it);
    return;
  }
}

void PpingEstimator::evict_stale(Flow& flow, TimePoint now) {
  std::size_t stale = 0;
  while (stale < flow.pending.size() &&
         now - flow.pending[stale].sent_at > config_.stale_after) {
    ++stale;
  }
  if (stale > 0) {
    flow.pending.erase(flow.pending.begin(),
                       flow.pending.begin() + static_cast<std::ptrdiff_t>(stale));
    evicted_ += stale;
  }
}

PpingEstimator::Flow* PpingEstimator::find_flow(net::NodeId phone,
                                                std::uint32_t flow_id) {
  if (flow_id == 0) return nullptr;
  for (std::size_t i = 0; i < flow_count_; ++i) {
    Flow& flow = flows_[i];
    if (flow.phone == phone && flow.flow_id == flow_id) return &flow;
  }
  return nullptr;
}

double PpingEstimator::min_rtt_ms(std::size_t phone_index) const {
  double best = -1;
  for (std::size_t i = 0; i < flow_count_; ++i) {
    const Flow& flow = flows_[i];
    if (flow.phone_index != phone_index || flow.min_rtt_ms < 0) continue;
    if (best < 0 || flow.min_rtt_ms < best) best = flow.min_rtt_ms;
  }
  return best;
}

std::size_t PpingEstimator::outstanding() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < flow_count_; ++i) {
    total += flows_[i].pending.size();
  }
  return total;
}

void PpingEstimator::reset() {
  // Rewind the live-slot count instead of clearing the vector: retired
  // slots keep their Pending buffers' heap storage for the next shard.
  flow_count_ = 0;
  samples_.clear();
  evicted_ = 0;
}

}  // namespace acute::passive
