// Passive measurement vantage points — the observer interfaces.
//
// The paper's four tools are all *active* probers: they inject traffic and
// time their own exchanges. Passive estimators answer the same RTT question
// from traffic that is already there. Two vantage points exist in the
// literature the paper builds on:
//
//   * capture point (pping / DlyLoc): a sniffer near the link matches TCP
//     timestamp values (TSval) against their echoes (TSecr) and reads the
//     RTT off the capture clock — zero injected traffic;
//   * per-app (MopEye): the measurement sits inside the phone, at the
//     socket boundary, and attributes each passively observed RTT to the
//     owning app flow.
//
// This header defines only the interfaces (plus the campaign's vantage
// axis enum), so wifi:: and phone:: can forward observations without
// depending on the estimators: wifi::Sniffer forwards each capture to an
// attached CaptureObserver, phone::ExecEnvLayer forwards each app-boundary
// send/delivery to an attached FlowTap. Concrete estimators live in
// pping.hpp (PpingEstimator) and per_app.hpp (PerAppMonitor).
//
// Both callbacks take the packet by const reference — observation must not
// copy (Packet::op_counters() pins this) — and must not allocate in steady
// state (the observe path runs once per frame of a campaign shard).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace acute::passive {

/// The campaign grid's passive-measurement axis: which passive vantage
/// points observe a workload's flow alongside the active tool.
enum class PassiveVantage : std::uint8_t {
  none,      ///< active tool only (the pre-passive default)
  sniffer,   ///< pping-style capture-point estimator at the sniffer array
  exec_env,  ///< MopEye-style per-app monitor at the exec-env boundary
  both,      ///< both of the above on the same flow
};

/// Machine-stable kebab-case id ("none", "sniffer", "exec-env", "both") —
/// the spelling exports write, round-tripped by parse_passive_vantage().
[[nodiscard]] const char* to_string(PassiveVantage vantage);
[[nodiscard]] std::optional<PassiveVantage> parse_passive_vantage(
    std::string_view name);

[[nodiscard]] constexpr bool wants_sniffer(PassiveVantage vantage) {
  return vantage == PassiveVantage::sniffer ||
         vantage == PassiveVantage::both;
}
[[nodiscard]] constexpr bool wants_exec_env(PassiveVantage vantage) {
  return vantage == PassiveVantage::exec_env ||
         vantage == PassiveVantage::both;
}

/// Capture-point observer: wifi::Sniffer forwards every frame it logs —
/// `time` is the sniffer's capture timestamp (frame TX start plus the
/// sniffer's radiotap clock noise), so an estimator inherits exactly the
/// vantage-point error a real capture box would.
class CaptureObserver {
 public:
  virtual ~CaptureObserver() = default;
  virtual void on_capture(const net::Packet& packet,
                          net::NodeId transmitter, net::NodeId receiver,
                          sim::TimePoint time, bool collided) = 0;
};

/// App-boundary observer: phone::ExecEnvLayer forwards each packet an app
/// sends (at the t_u^o stamp instant) and each packet it delivers to a
/// registered flow (at the t_u^i stamp instant).
class FlowTap {
 public:
  virtual ~FlowTap() = default;
  virtual void on_app_send(const net::Packet& packet,
                           sim::TimePoint time) = 0;
  virtual void on_app_deliver(const net::Packet& packet,
                              sim::TimePoint time) = 0;
};

}  // namespace acute::passive
