#include "passive/per_app.hpp"

#include "sim/contracts.hpp"

namespace acute::passive {

using sim::expects;
using sim::TimePoint;

PerAppMonitor::PerAppMonitor() : PerAppMonitor(Config{}) {}

PerAppMonitor::PerAppMonitor(Config config) : config_(config) {
  expects(config_.max_outstanding > 0,
          "PerAppMonitor requires max_outstanding > 0");
}

void PerAppMonitor::watch_flow(net::NodeId phone, std::uint32_t flow_id,
                               std::size_t phone_index,
                               tools::ToolKind tool) {
  expects(find_flow(phone, flow_id) == nullptr,
          "PerAppMonitor::watch_flow: flow already watched");
  if (flow_count_ == flows_.size()) flows_.emplace_back();
  Flow& flow = flows_[flow_count_++];
  flow.phone = phone;
  flow.flow_id = flow_id;
  flow.phone_index = phone_index;
  flow.tool = tool;
  flow.next_ordinal = 0;
  flow.pending.clear();
  flow.pending.reserve(config_.max_outstanding);
}

void PerAppMonitor::on_app_send(const net::Packet& packet, TimePoint time) {
  if (packet.probe_id == 0) return;  // unmatched background traffic
  Flow* flow = find_flow(packet.src, packet.flow_id);
  if (flow == nullptr) return;
  // Evict stale unanswered sends (lost probes outlive their timeout here).
  std::size_t stale = 0;
  while (stale < flow->pending.size() &&
         time - flow->pending[stale].sent_at > config_.stale_after) {
    ++stale;
  }
  if (stale > 0) {
    flow->pending.erase(
        flow->pending.begin(),
        flow->pending.begin() + static_cast<std::ptrdiff_t>(stale));
  }
  // First-seen-wins, as at the capture point: an app-level retransmission
  // of the same probe must not restart its clock.
  for (const Pending& entry : flow->pending) {
    if (entry.probe_id == packet.probe_id) return;
  }
  if (flow->pending.size() >= config_.max_outstanding) {
    flow->pending.erase(flow->pending.begin());
  }
  flow->pending.push_back(Pending{packet.probe_id, time});
}

void PerAppMonitor::on_app_deliver(const net::Packet& packet,
                                   TimePoint time) {
  if (packet.probe_id == 0) return;
  Flow* flow = find_flow(packet.dst, packet.flow_id);
  if (flow == nullptr) return;
  for (auto it = flow->pending.begin(); it != flow->pending.end(); ++it) {
    if (it->probe_id != packet.probe_id) continue;
    RttSample sample;
    sample.phone_index = flow->phone_index;
    sample.tool = flow->tool;
    sample.ordinal = flow->next_ordinal++;
    sample.rtt_ms = (time - it->sent_at).to_ms();
    sample.matched_at = time;
    samples_.push_back(sample);
    flow->pending.erase(it);  // match-once
    return;
  }
}

PerAppMonitor::Flow* PerAppMonitor::find_flow(net::NodeId phone,
                                              std::uint32_t flow_id) {
  if (flow_id == 0) return nullptr;
  for (std::size_t i = 0; i < flow_count_; ++i) {
    Flow& flow = flows_[i];
    if (flow.phone == phone && flow.flow_id == flow_id) return &flow;
  }
  return nullptr;
}

std::size_t PerAppMonitor::outstanding() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < flow_count_; ++i) {
    total += flows_[i].pending.size();
  }
  return total;
}

void PerAppMonitor::reset() {
  flow_count_ = 0;
  samples_.clear();
}

}  // namespace acute::passive
