// PpingEstimator: passive TCP-timestamp RTT estimation at a capture point.
//
// The pping/DlyLoc algorithm, run against the testbed's sniffer array: the
// first time a TSval is seen leaving a watched flow its capture time is
// saved; the first time that value comes back as the reverse direction's
// TSecr, the difference of the two capture times is one RTT sample — no
// injected traffic, and (with a noiseless sniffer) exactly the dn the
// simulator's air stamps define, because both frames are timed at the same
// vantage point the t_n stamps use.
//
// First-seen-wins on both sides makes the estimator robust to
// retransmissions (a retransmitted TSval must not restart the clock) and
// to duplicated echoes (a TSecr matches once, then its entry is gone).
// Per-flow state is a flat table with bounded occupancy: entries older
// than `stale_after` — or beyond `max_outstanding` per flow — are evicted,
// so a flow that dies mid-handshake cannot grow the table. All storage is
// reserve()d up front and reset() keeps it warm, so the observe path
// allocates nothing in steady state (shard-context reuse contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "passive/observer.hpp"
#include "sim/time.hpp"
#include "tools/factory.hpp"

namespace acute::passive {

/// One passively estimated RTT sample, in emission (match) order.
struct RttSample {
  /// Scenario phone index the watched flow belongs to.
  std::size_t phone_index = 0;
  /// The active tool that owns the flow (attribution, not participation).
  tools::ToolKind tool = tools::ToolKind::icmp_ping;
  /// 0-based ordinal of this sample within its flow (emission order).
  int ordinal = 0;
  /// The estimated RTT in **milliseconds**.
  double rtt_ms = 0;
  /// Capture time of the matching echo (the sample's timestamp).
  sim::TimePoint matched_at;
};

class PpingEstimator : public CaptureObserver {
 public:
  /// Tuning knobs; the defaults suit campaign shards (seconds-long flows,
  /// a handful of probes in flight).
  struct Config {
    /// Pending TSval entries older than this are evicted unmatched.
    sim::Duration stale_after = sim::Duration::seconds(10);
    /// Hard cap on pending entries per flow; the oldest entry is evicted
    /// when a new send would exceed it.
    std::size_t max_outstanding = 64;
  };

  PpingEstimator();
  explicit PpingEstimator(Config config);

  /// Restricts estimation to `flow_id` on the phone with node id `phone`:
  /// only watched flows consume table space, and every sample is
  /// attributed to (phone_index, tool). Flow ids are per-phone, so the
  /// phone's node id is part of the key.
  void watch_flow(net::NodeId phone, std::uint32_t flow_id,
                  std::size_t phone_index, tools::ToolKind tool);

  /// CaptureObserver: collided frames and non-TCP traffic are ignored;
  /// phone-egress frames of a watched flow record their TSval, AP-egress
  /// frames toward the phone match their TSecr.
  void on_capture(const net::Packet& packet, net::NodeId transmitter,
                  net::NodeId receiver, sim::TimePoint time,
                  bool collided) override;

  /// Every matched sample so far, in emission order.
  [[nodiscard]] const std::vector<RttSample>& samples() const {
    return samples_;
  }

  /// Smallest RTT matched so far on the watched flow of `phone_index`, in
  /// milliseconds (pping's min-RTT tracking); negative when no sample has
  /// matched for that phone yet.
  [[nodiscard]] double min_rtt_ms(std::size_t phone_index) const;

  /// Pending (unmatched) TSval entries across all watched flows.
  [[nodiscard]] std::size_t outstanding() const;
  /// Entries evicted unmatched (staleness or per-flow cap) so far.
  [[nodiscard]] std::size_t evicted() const { return evicted_; }

  /// Returns the estimator to its freshly-constructed state; all table and
  /// sample storage keeps its capacity (shard-context reuse contract).
  void reset();

 private:
  /// A saved outbound TSval: first capture time of that value on its flow.
  struct Pending {
    std::uint32_t tsval = 0;
    sim::TimePoint sent_at;
  };
  struct Flow {
    net::NodeId phone = 0;
    std::uint32_t flow_id = 0;
    std::size_t phone_index = 0;
    tools::ToolKind tool = tools::ToolKind::icmp_ping;
    int next_ordinal = 0;
    double min_rtt_ms = -1;
    std::vector<Pending> pending;  // insertion (capture-time) order
  };

  [[nodiscard]] Flow* find_flow(net::NodeId phone, std::uint32_t flow_id);
  void record_send(Flow& flow, std::uint32_t tsval, sim::TimePoint time);
  void match_echo(Flow& flow, std::uint32_t tsecr, sim::TimePoint time);
  void evict_stale(Flow& flow, sim::TimePoint now);

  Config config_;
  // Slot pool: the first flow_count_ entries are live; reset() rewinds the
  // count instead of clearing the vector, so each slot's Pending buffer
  // keeps its heap allocation across shards.
  std::vector<Flow> flows_;
  std::size_t flow_count_ = 0;
  std::vector<RttSample> samples_;
  std::size_t evicted_ = 0;
};

}  // namespace acute::passive
