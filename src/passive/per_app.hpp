// PerAppMonitor: MopEye-style per-app passive RTT at the exec-env boundary.
//
// MopEye measures without injecting traffic by sitting on the phone itself
// (a VpnService in the real system) and pairing each app's outgoing packet
// with the response the stack later delivers to it. Here the monitor is a
// passive::FlowTap hooked into phone::ExecEnvLayer's flow demux: it sees
// every packet an app sends at the t_u^o instant and every packet the
// layer delivers at the t_u^i instant, pairs them by probe id within the
// owning flow, and attributes the resulting RTT — exactly
// t_u^i - t_u^o, the app-boundary round trip, runtime overheads included —
// to the (phone, flow, tool) that owns the traffic.
//
// Like the capture-point estimator it keeps flat per-flow tables with
// bounded occupancy and warm storage across reset() (shard-context reuse
// contract): the observe path allocates nothing in steady state and never
// copies a Packet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "passive/observer.hpp"
#include "passive/pping.hpp"
#include "sim/time.hpp"
#include "tools/factory.hpp"

namespace acute::passive {

class PerAppMonitor : public FlowTap {
 public:
  struct Config {
    /// Unanswered sends older than this are evicted unmatched.
    sim::Duration stale_after = sim::Duration::seconds(10);
    /// Hard cap on unanswered sends per flow (oldest evicted beyond it).
    std::size_t max_outstanding = 64;
  };

  PerAppMonitor();
  explicit PerAppMonitor(Config config);

  /// Attributes traffic of `flow_id` on the phone with node id `phone` to
  /// (phone_index, tool). Only watched flows are tracked. One monitor may
  /// watch flows of many phones: a send is keyed by the packet's source
  /// node, a delivery by its destination node.
  void watch_flow(net::NodeId phone, std::uint32_t flow_id,
                  std::size_t phone_index, tools::ToolKind tool);

  // FlowTap.
  void on_app_send(const net::Packet& packet, sim::TimePoint time) override;
  void on_app_deliver(const net::Packet& packet,
                      sim::TimePoint time) override;

  /// Every matched sample so far, in emission (delivery) order.
  [[nodiscard]] const std::vector<RttSample>& samples() const {
    return samples_;
  }

  /// Unanswered sends across all watched flows.
  [[nodiscard]] std::size_t outstanding() const;

  /// Returns the monitor to its freshly-constructed state; table and
  /// sample storage keeps its capacity (shard-context reuse contract).
  void reset();

 private:
  struct Pending {
    std::uint64_t probe_id = 0;
    sim::TimePoint sent_at;
  };
  struct Flow {
    net::NodeId phone = 0;
    std::uint32_t flow_id = 0;
    std::size_t phone_index = 0;
    tools::ToolKind tool = tools::ToolKind::icmp_ping;
    int next_ordinal = 0;
    std::vector<Pending> pending;  // send order
  };

  [[nodiscard]] Flow* find_flow(net::NodeId phone, std::uint32_t flow_id);

  Config config_;
  // Slot pool, same shape as PpingEstimator's: the first flow_count_
  // entries are live, reset() rewinds the count so Pending buffers stay
  // allocated across shards.
  std::vector<Flow> flows_;
  std::size_t flow_count_ = 0;
  std::vector<RttSample> samples_;
};

}  // namespace acute::passive
