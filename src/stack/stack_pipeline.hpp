// StackPipeline: owns the descent/ascent wiring of a phone's stack.
//
// A pipeline is an ordered list of StackLayers, top (app side) to bottom
// (radio side). append() wires each layer's above/below links; transmit()
// enters the top layer; packets a bottom layer receives from the medium
// ascend via pass_up() until the top layer hands them to the app handler.
//
// The pipeline also owns the cross-cutting instrumentation surface: a stamp
// observer that sees every StampPoint any layer writes, which replaces the
// ad-hoc per-layer logging the pre-pipeline stack used.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "stack/stack_layer.hpp"

namespace acute::stack {

class StackPipeline {
 public:
  /// App-side sink: invoked when the top layer passes a packet up. The
  /// packet arrives as an rvalue; handlers that keep it take it by value
  /// (one move), handlers that only read it can bind a const reference.
  using DeliverFn = std::function<void(net::Packet&&)>;
  /// Cross-layer stamp hook (fires on every StackLayer::stamp call).
  using StampObserver =
      std::function<void(const StackLayer&, StampPoint, const net::Packet&)>;

  explicit StackPipeline(sim::Simulator& sim);

  StackPipeline(const StackPipeline&) = delete;
  StackPipeline& operator=(const StackPipeline&) = delete;
  ~StackPipeline();

  /// Appends `layer` below the current bottom. Layers are appended top to
  /// bottom; a layer can belong to at most one pipeline at a time.
  void append(StackLayer& layer);

  /// Detaches every layer and clears the handlers, returning the pipeline
  /// to its freshly-constructed state (layer-list capacity is kept). The
  /// detached layers can then be re-appended — the shard-context pool
  /// rebuilds a phone's stack this way on every reset.
  void reset();

  /// Sends a packet down from the app side (enters the top layer).
  void transmit(net::Packet&& packet);

  /// Injects a packet at the bottom layer's deliver() — the medium side.
  void inject(net::Packet&& packet);

  void set_app_handler(DeliverFn handler) { app_handler_ = std::move(handler); }
  void set_stamp_observer(StampObserver observer) {
    stamp_observer_ = std::move(observer);
  }

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] bool empty() const { return layers_.empty(); }
  [[nodiscard]] StackLayer& layer(std::size_t index) {
    return *layers_.at(index);
  }
  [[nodiscard]] StackLayer& top() { return *layers_.front(); }
  [[nodiscard]] StackLayer& bottom() { return *layers_.back(); }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

  /// Layer names top to bottom, e.g. "exec-env/kernel/driver/sdio-bus/station".
  [[nodiscard]] std::string describe() const;

 private:
  friend class StackLayer;
  void deliver_to_app(net::Packet&& packet);

  sim::Simulator* sim_;
  std::vector<StackLayer*> layers_;
  DeliverFn app_handler_;
  StampObserver stamp_observer_;
};

}  // namespace acute::stack
