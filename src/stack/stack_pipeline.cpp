#include "stack/stack_pipeline.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::stack {

using sim::expects;

StackPipeline::StackPipeline(sim::Simulator& sim) : sim_(&sim) {}

StackPipeline::~StackPipeline() {
  for (StackLayer* layer : layers_) {
    layer->above_ = nullptr;
    layer->below_ = nullptr;
    layer->pipeline_ = nullptr;
  }
}

void StackPipeline::reset() {
  for (StackLayer* layer : layers_) {
    layer->above_ = nullptr;
    layer->below_ = nullptr;
    layer->pipeline_ = nullptr;
  }
  layers_.clear();
  app_handler_ = nullptr;
  stamp_observer_ = nullptr;
}

void StackPipeline::append(StackLayer& layer) {
  expects(layer.pipeline_ == nullptr,
          "StackLayer is already composed into a pipeline");
  if (!layers_.empty()) {
    layers_.back()->below_ = &layer;
    layer.above_ = layers_.back();
  }
  layer.pipeline_ = this;
  layers_.push_back(&layer);
}

void StackPipeline::transmit(net::Packet&& packet) {
  expects(!layers_.empty(), "StackPipeline::transmit on an empty pipeline");
  layers_.front()->transmit(std::move(packet));
}

void StackPipeline::inject(net::Packet&& packet) {
  expects(!layers_.empty(), "StackPipeline::inject on an empty pipeline");
  layers_.back()->deliver(std::move(packet));
}

void StackPipeline::deliver_to_app(net::Packet&& packet) {
  if (app_handler_) app_handler_(std::move(packet));
}

std::string StackPipeline::describe() const {
  std::string names;
  for (const StackLayer* layer : layers_) {
    if (!names.empty()) names += '/';
    names += layer->layer_name();
  }
  return names;
}

}  // namespace acute::stack
