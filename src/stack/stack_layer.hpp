// The uniform stack-layer interface.
//
// The paper's method is to decompose a probe's RTT across the phone's stack
// (user runtime -> kernel -> WNIC driver -> host bus -> 802.11 station,
// Fig. 1) and attribute the inflated delay to individual hops. This module
// turns that stack into a first-class, reorderable pipeline: every layer
// implements the same two-verb interface — `transmit` carries a packet
// downward toward the radio, `deliver` carries one upward toward the app —
// and records its vantage-point timestamps through a shared stamp hook that
// writes into net::LayerStamps.
//
// Layers never know their neighbours' concrete types; composition is owned
// by StackPipeline, which wires the above/below links and the app-side sink.
// This is what lets a Testbed scenario swap stacks per phone (e.g. the
// cellular RRC radio instead of SDIO + station) without touching any layer.
#pragma once

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace acute::stack {

class StackPipeline;

/// The per-layer timestamp vantage points of Fig. 1. Layers stamp through
/// this enum (via StackLayer::stamp) rather than poking LayerStamps fields
/// directly, so instrumentation can observe every stamp uniformly.
enum class StampPoint {
  app_send,            // t_u^o
  kernel_send,         // t_k^o (bpf/tcpdump tap)
  driver_xmit_entry,   // dhd_start_xmit entry
  driver_txpkt,        // dhdsdio_txpkt entry
  air,                 // t_n: frame TX start on the medium
  driver_isr,          // dhdsdio_isr entry
  driver_rxf_enqueue,  // dhd_rxf_enqueue
  kernel_recv,         // t_k^i (bpf tap)
  app_recv,            // t_u^i
};

[[nodiscard]] const char* to_string(StampPoint point);

/// Writes `when` into the stamp slot `point` of `stamps`.
void write_stamp(net::LayerStamps& stamps, StampPoint point,
                 sim::TimePoint when);

/// One layer of a phone's stack. Concrete layers (ExecEnvLayer, KernelStack,
/// WnicDriver, SdioBus, wifi::Station, cellular::RrcRadioLayer) model their
/// own processing latency with the simulator and then hand the packet to the
/// next layer via pass_down() / pass_up(). Hand-offs are synchronous; all
/// time passes inside the layers themselves.
///
/// The packet flow is move-based: both verbs take the packet by rvalue
/// reference and layers std::move it through their scheduled events, so a
/// packet descends and ascends the whole stack without a single copy (the
/// thread-local Packet::op_counters() accounting enforces this in tests).
class StackLayer {
 public:
  StackLayer() = default;
  StackLayer(const StackLayer&) = delete;
  StackLayer& operator=(const StackLayer&) = delete;
  virtual ~StackLayer() = default;

  /// Short diagnostic name, e.g. "kernel", "sdio-bus".
  [[nodiscard]] virtual const char* layer_name() const = 0;

  /// Downward path: a packet descending toward the radio enters this layer.
  virtual void transmit(net::Packet&& packet) = 0;

  /// Upward path: a packet ascending toward the app enters this layer.
  virtual void deliver(net::Packet&& packet) = 0;

  [[nodiscard]] StackLayer* above() const { return above_; }
  [[nodiscard]] StackLayer* below() const { return below_; }
  /// The pipeline this layer is composed into (null when free-standing).
  [[nodiscard]] StackPipeline* pipeline() const { return pipeline_; }

 protected:
  /// Hands the packet to the layer below (its transmit runs synchronously).
  /// Must not be called on the bottom layer of a pipeline.
  void pass_down(net::Packet&& packet);

  /// Hands the packet to the layer above, or — on the top layer — to the
  /// pipeline's app handler.
  void pass_up(net::Packet&& packet);

  /// Stamp hook: writes `point` at time `when` into the packet's stamps and
  /// notifies the pipeline's stamp observer (if any).
  void stamp(net::Packet& packet, StampPoint point, sim::TimePoint when);

 private:
  friend class StackPipeline;
  StackLayer* above_ = nullptr;
  StackLayer* below_ = nullptr;
  StackPipeline* pipeline_ = nullptr;
};

}  // namespace acute::stack
