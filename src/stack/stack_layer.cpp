#include "stack/stack_layer.hpp"

#include <utility>

#include "sim/contracts.hpp"
#include "stack/stack_pipeline.hpp"

namespace acute::stack {

using sim::expects;

const char* to_string(StampPoint point) {
  switch (point) {
    case StampPoint::app_send:
      return "app_send";
    case StampPoint::kernel_send:
      return "kernel_send";
    case StampPoint::driver_xmit_entry:
      return "driver_xmit_entry";
    case StampPoint::driver_txpkt:
      return "driver_txpkt";
    case StampPoint::air:
      return "air";
    case StampPoint::driver_isr:
      return "driver_isr";
    case StampPoint::driver_rxf_enqueue:
      return "driver_rxf_enqueue";
    case StampPoint::kernel_recv:
      return "kernel_recv";
    case StampPoint::app_recv:
      return "app_recv";
  }
  return "?";
}

void write_stamp(net::LayerStamps& stamps, StampPoint point,
                 sim::TimePoint when) {
  switch (point) {
    case StampPoint::app_send:
      stamps.app_send = when;
      break;
    case StampPoint::kernel_send:
      stamps.kernel_send = when;
      break;
    case StampPoint::driver_xmit_entry:
      stamps.driver_xmit_entry = when;
      break;
    case StampPoint::driver_txpkt:
      stamps.driver_txpkt = when;
      break;
    case StampPoint::air:
      stamps.air = when;
      break;
    case StampPoint::driver_isr:
      stamps.driver_isr = when;
      break;
    case StampPoint::driver_rxf_enqueue:
      stamps.driver_rxf_enqueue = when;
      break;
    case StampPoint::kernel_recv:
      stamps.kernel_recv = when;
      break;
    case StampPoint::app_recv:
      stamps.app_recv = when;
      break;
  }
}

void StackLayer::pass_down(net::Packet&& packet) {
  expects(below_ != nullptr,
          "StackLayer::pass_down called on the bottom layer");
  below_->transmit(std::move(packet));
}

void StackLayer::pass_up(net::Packet&& packet) {
  if (above_ != nullptr) {
    above_->deliver(std::move(packet));
    return;
  }
  expects(pipeline_ != nullptr,
          "StackLayer::pass_up on a free-standing layer");
  pipeline_->deliver_to_app(std::move(packet));
}

void StackLayer::stamp(net::Packet& packet, StampPoint point,
                       sim::TimePoint when) {
  write_stamp(packet.stamps, point, when);
  if (pipeline_ != nullptr && pipeline_->stamp_observer_) {
    pipeline_->stamp_observer_(*this, point, packet);
  }
}

}  // namespace acute::stack
