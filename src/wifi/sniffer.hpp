// Passive wireless sniffer (§2.2 uses three, placed 0.5 m from the phone).
//
// Captures every frame on the medium, including frames a dozing station
// cannot hear. The testbed derives t_n — and hence dn = t_n^i - t_n^o — from
// these captures, exactly as the paper estimates PHY timestamps externally.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "passive/observer.hpp"
#include "sim/random.hpp"
#include "wifi/channel.hpp"

namespace acute::wifi {

class Sniffer : public MediumObserver {
 public:
  struct Capture {
    std::uint64_t packet_id = 0;
    std::uint64_t probe_id = 0;
    net::PacketType type = net::PacketType::udp_data;
    net::NodeId transmitter = 0;
    net::NodeId receiver = 0;
    std::uint32_t size_bytes = 0;
    sim::TimePoint time;  // capture timestamp (frame TX start + noise)
    bool collided = false;
  };

  /// `timestamp_noise` models radiotap clock error: each capture time is
  /// perturbed by U(-noise, +noise). Zero by default.
  Sniffer(std::string name, sim::Rng rng,
          sim::Duration timestamp_noise = sim::Duration{});

  /// Returns the sniffer to the state the constructor would leave it in
  /// with these arguments; the capture log keeps its warm storage
  /// (shard-context reuse contract).
  void reset(const std::string& name, sim::Rng rng,
             sim::Duration timestamp_noise);

  void on_frame(const Frame& frame) override;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Capture>& captures() const {
    return captures_;
  }

  /// Capture time of the first clean (non-collided) transmission of the
  /// packet with this id, if seen.
  [[nodiscard]] std::optional<sim::TimePoint> air_time_of(
      std::uint64_t packet_id) const;

  /// Number of clean captures of the given type.
  [[nodiscard]] std::size_t count_of(net::PacketType type) const;

  /// Forwards every capture — the packet by reference, plus the sniffer's
  /// (possibly noise-perturbed) capture timestamp — to `observer` as it is
  /// logged: the attachment point of passive capture estimators
  /// (passive::PpingEstimator). One observer per sniffer; nullptr detaches.
  /// reset() detaches, so shard-context reuse must re-attach per shard.
  void attach_capture_observer(passive::CaptureObserver* observer) {
    observer_ = observer;
  }

  void clear();

 private:
  std::string name_;
  sim::Rng rng_;
  sim::Duration noise_;
  passive::CaptureObserver* observer_ = nullptr;
  // Append-only capture log. Lookups (air_time_of) are test/prober-side and
  // scan linearly; recording a capture must not allocate in steady state,
  // so there is deliberately no per-packet index map.
  std::vector<Capture> captures_;
};

}  // namespace acute::wifi
