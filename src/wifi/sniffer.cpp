#include "wifi/sniffer.hpp"

#include <utility>

namespace acute::wifi {

using sim::Duration;

Sniffer::Sniffer(std::string name, sim::Rng rng, Duration timestamp_noise)
    : name_(std::move(name)), rng_(std::move(rng)), noise_(timestamp_noise) {}

void Sniffer::reset(const std::string& name, sim::Rng rng,
                    Duration timestamp_noise) {
  name_ = name;
  rng_ = std::move(rng);
  noise_ = timestamp_noise;
  observer_ = nullptr;
  captures_.clear();
}

void Sniffer::on_frame(const Frame& frame) {
  Capture capture;
  capture.packet_id = frame.packet.id;
  capture.probe_id = frame.packet.probe_id;
  capture.type = frame.packet.type;
  capture.transmitter = frame.transmitter;
  capture.receiver = frame.receiver;
  capture.size_bytes = frame.packet.size_bytes;
  capture.time = frame.tx_start;
  if (!noise_.is_zero()) {
    capture.time += rng_.uniform_duration(-noise_, noise_);
  }
  capture.collided = frame.collided;
  if (observer_ != nullptr) {
    // The observer gets the sniffer's clock (capture.time), not the true
    // tx_start: a capture-point estimator inherits this vantage's noise.
    observer_->on_capture(frame.packet, frame.transmitter, frame.receiver,
                          capture.time, capture.collided);
  }
  captures_.push_back(std::move(capture));
}

std::optional<sim::TimePoint> Sniffer::air_time_of(
    std::uint64_t packet_id) const {
  for (const Capture& capture : captures_) {
    if (!capture.collided && capture.packet_id == packet_id) {
      return capture.time;
    }
  }
  return std::nullopt;
}

std::size_t Sniffer::count_of(net::PacketType type) const {
  std::size_t count = 0;
  for (const Capture& capture : captures_) {
    if (!capture.collided && capture.type == type) ++count;
  }
  return count;
}

void Sniffer::clear() { captures_.clear(); }

}  // namespace acute::wifi
