#include "wifi/radio.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::wifi {

Radio::Radio(Channel& channel, net::NodeId owner)
    : channel_(&channel), owner_(owner) {
  channel.attach_radio(*this);
}

void Radio::enqueue(net::Packet&& packet, net::NodeId receiver) {
  if (queue_.size() >= queue_limit_) {
    ++dropped_count_;
    return;  // tail drop under saturation
  }
  queue_.push_back(QueuedFrame{std::move(packet), receiver, false, 0});
  channel_->notify_backlog(*this);
}

void Radio::enqueue_priority(net::Packet&& packet, net::NodeId receiver) {
  if (queue_.size() >= queue_limit_) {
    ++dropped_count_;
    return;
  }
  // Priority frames (beacons) jump the queue and skip backoff once.
  queue_.push_front(QueuedFrame{std::move(packet), receiver, true, 0});
  channel_->notify_backlog(*this);
}

}  // namespace acute::wifi
