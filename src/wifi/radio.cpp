#include "wifi/radio.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::wifi {

Radio::Radio(Channel& channel, net::NodeId owner)
    : channel_(&channel), owner_(owner) {
  channel.attach_radio(*this);
}

Radio::~Radio() { channel_->detach_radio(*this); }

void Radio::reset() {
  queue_.clear();
  queue_limit_ = 1000;
  receiving_ = true;
  cw_ = 0;
  tx_count_ = 0;
  rx_count_ = 0;
  dropped_count_ = 0;
  channel_->attach_radio(*this);  // re-registers and re-seeds cw_ from phy
}

void Radio::enqueue(net::Packet&& packet, net::NodeId receiver) {
  if (queue_.size() >= queue_limit_) {
    ++dropped_count_;
    return;  // tail drop under saturation
  }
  queue_.push_back(QueuedFrame{std::move(packet), receiver, false, 0});
  channel_->notify_backlog(*this);
}

void Radio::enqueue_priority(net::Packet&& packet, net::NodeId receiver) {
  if (queue_.size() >= queue_limit_) {
    ++dropped_count_;
    return;
  }
  // Priority frames (beacons) jump the queue and skip backoff once.
  queue_.push_front(QueuedFrame{std::move(packet), receiver, true, 0});
  channel_->notify_backlog(*this);
}

}  // namespace acute::wifi
