// A device's attachment to the wireless medium: a FIFO transmit queue plus a
// receiver that can be switched off while the owner dozes (PSM).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "wifi/channel.hpp"

namespace acute::wifi {

class Radio {
 public:
  /// Receive callback: the payload plus medium metadata. Unicast frames are
  /// moved in (the channel gives up its copy); broadcast receivers each get
  /// a copy moved in. On unicast delivery the packet argument aliases
  /// `frame.packet`, so read anything you need from `frame.packet` BEFORE
  /// moving the packet; the rest of `frame` stays valid for the call.
  using RxFn = std::function<void(net::Packet&&, const Frame&)>;
  /// Transmit-completion callback (fires at the end of the frame's airtime).
  using TxDoneFn = std::function<void(const Frame&)>;
  /// Unicast delivery failure: the receiver's radio was off and retries were
  /// exhausted. The AP uses this to fall back to power-save buffering.
  using DeliveryFailFn = std::function<void(net::Packet&&, net::NodeId)>;

  /// `owner` is the address frames are delivered to.
  Radio(Channel& channel, net::NodeId owner);

  /// Detaches from the channel: a Radio destroyed before its channel (a
  /// node constructor that throws after building its radio member) must
  /// not leave the channel holding a dangling pointer.
  ~Radio();

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  [[nodiscard]] net::NodeId owner() const { return owner_; }

  void set_receiver(RxFn on_receive) { on_receive_ = std::move(on_receive); }
  void set_tx_done(TxDoneFn on_tx_done) { on_tx_done_ = std::move(on_tx_done); }
  void set_delivery_fail_handler(DeliveryFailFn on_fail) {
    on_delivery_fail_ = std::move(on_fail);
  }

  /// Queues a frame for transmission to `receiver` (a neighbour address:
  /// the AP for stations, a station for the AP, or broadcast).
  void enqueue(net::Packet&& packet, net::NodeId receiver);

  /// Queues a frame that skips backoff in its first contention round
  /// (beacons: the AP gets PIFS-like priority at TBTT).
  void enqueue_priority(net::Packet&& packet, net::NodeId receiver);

  /// Receiver power: a dozing station cannot receive frames. Transmission
  /// is always possible (the radio wakes to send).
  void set_receiving(bool on) { receiving_ = on; }
  [[nodiscard]] bool receiving() const { return receiving_; }

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t tx_count() const { return tx_count_; }
  [[nodiscard]] std::uint64_t rx_count() const { return rx_count_; }
  [[nodiscard]] std::uint64_t dropped_count() const { return dropped_count_; }

  /// Maximum transmit queue depth; excess frames are tail-dropped
  /// (saturated sources must not grow memory without bound).
  void set_queue_limit(std::size_t limit) { queue_limit_ = limit; }

  /// Returns the radio to its freshly-constructed state and re-registers
  /// it with its channel (which must have been reset first, emptying its
  /// radio list). The queue keeps its warm storage; callbacks are kept —
  /// the owner re-assigns them in its own reset, mirroring its ctor.
  void reset();

 private:
  friend class Channel;

  struct QueuedFrame {
    net::Packet packet;
    net::NodeId receiver;
    bool priority = false;
    int retries = 0;
  };

  [[nodiscard]] bool backlogged() const { return !queue_.empty(); }
  [[nodiscard]] QueuedFrame& head() { return queue_.front(); }
  void pop_head() { queue_.pop_front(); }

  Channel* channel_;
  net::NodeId owner_;
  RxFn on_receive_;
  TxDoneFn on_tx_done_;
  DeliveryFailFn on_delivery_fail_;
  std::deque<QueuedFrame> queue_;
  std::size_t queue_limit_ = 1000;
  bool receiving_ = true;
  int cw_ = 0;  // current contention window (slots); set from phy on attach
  std::uint64_t tx_count_ = 0;
  std::uint64_t rx_count_ = 0;
  std::uint64_t dropped_count_ = 0;
};

}  // namespace acute::wifi
