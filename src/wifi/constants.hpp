// 802.11 timing constants, PHY parameter sets and airtime arithmetic.
//
// The testbed AP is an 802.11g NETGEAR WNDR3800 (paper §2.2) with the stock
// 100 TU beacon interval (1 TU = 1.024 ms), which is why PSM can inflate an
// nRTT by ~102.4 ms per skipped listen interval (§3.2.2).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace acute::wifi {

/// One 802.11 Time Unit: 1.024 ms.
inline constexpr sim::Duration kTimeUnit = sim::Duration::micros(1024);

/// Beacon period in TUs (standard default, used by the paper's AP).
inline constexpr int kBeaconIntervalTu = 100;

/// Beacon period: 102.4 ms.
[[nodiscard]] constexpr sim::Duration beacon_interval() {
  return kTimeUnit * kBeaconIntervalTu;
}

/// 802.11 ACK / CTS control frame size in bytes.
inline constexpr std::uint32_t kAckBytes = 14;

/// PHY / MAC parameters that shape medium-access timing.
struct PhyParams {
  double data_rate_mbps = 54.0;   // unicast data frames
  double basic_rate_mbps = 6.0;   // control frames, beacons
  sim::Duration slot = sim::Duration::micros(9);
  sim::Duration sifs = sim::Duration::micros(10);
  sim::Duration difs = sim::Duration::micros(28);
  sim::Duration preamble = sim::Duration::micros(20);
  int cw_min = 15;    // initial contention window (slots)
  int cw_max = 1023;  // cap after collisions
  int retry_limit = 7;
  /// CTS-to-self protection before every data frame (802.11b/g mixed mode).
  bool cts_to_self = false;
};

/// Pure-802.11g parameters (clean testbed, no legacy stations).
[[nodiscard]] constexpr PhyParams phy_802_11g() { return PhyParams{}; }

/// Mixed b/g parameters used for the congested-network experiments (§4.3):
/// protection on, longer slots, and a contention-degraded data rate. With
/// these parameters ten 2.5 Mbit/s UDP flows saturate the medium near the
/// ~10 Mbit/s the paper measured.
[[nodiscard]] constexpr PhyParams phy_802_11g_mixed() {
  PhyParams p;
  p.data_rate_mbps = 18.0;
  p.basic_rate_mbps = 6.0;
  p.slot = sim::Duration::micros(20);
  p.difs = sim::Duration::micros(50);
  p.cts_to_self = true;
  return p;
}

/// Transmission time of `size_bytes` at `rate_mbps`, excluding the preamble.
[[nodiscard]] inline sim::Duration payload_airtime(std::uint32_t size_bytes,
                                                   double rate_mbps) {
  return sim::Duration::micros(double(size_bytes) * 8.0 / rate_mbps);
}

/// Full frame airtime: preamble + payload at the given rate.
[[nodiscard]] inline sim::Duration frame_airtime(const PhyParams& phy,
                                                 std::uint32_t size_bytes,
                                                 double rate_mbps) {
  return phy.preamble + payload_airtime(size_bytes, rate_mbps);
}

/// ACK frame airtime (control frames go at the basic rate).
[[nodiscard]] inline sim::Duration ack_airtime(const PhyParams& phy) {
  return frame_airtime(phy, kAckBytes, phy.basic_rate_mbps);
}

/// CTS-to-self time including the SIFS gap to the protected frame.
[[nodiscard]] inline sim::Duration cts_to_self_airtime(const PhyParams& phy) {
  return frame_airtime(phy, kAckBytes, phy.basic_rate_mbps) + phy.sifs;
}

}  // namespace acute::wifi
