// The wireless access point of Fig. 2 (NETGEAR WNDR3800 in the paper).
//
// Three roles:
//  * 802.11 AP: beacons every 102.4 ms carrying the TIM; buffers downlink
//    frames for dozing stations (power-save delivery per §3.2.2); answers
//    PS-Polls; tracks each station's power state from the PM bit.
//  * L2 bridge between the wireless side and its Ethernet port.
//  * First-hop IP router: decrements TTL when routing, so AcuteMon's TTL=1
//    warm-up/background packets die here (§4.1).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "wifi/channel.hpp"
#include "wifi/radio.hpp"

namespace acute::wifi {

class AccessPoint : public net::Node {
 public:
  struct Config {
    net::NodeId id = 0;
    /// Bridging/processing latency per forwarded packet (each direction).
    sim::Duration forward_delay = sim::Duration::micros(450);
    sim::Duration forward_jitter = sim::Duration::micros(150);
    /// Reply with ICMP time-exceeded when TTL hits zero. Off by default:
    /// AcuteMon relies on warm-up packets dying silently at the gateway.
    bool send_ttl_exceeded = false;
  };

  AccessPoint(sim::Simulator& sim, Channel& channel, sim::Rng rng,
              Config config);

  /// Returns the AP to the state the constructor would leave it in with
  /// these arguments. The association table and per-station power-save
  /// buffers keep their warm storage (shard-context reuse contract).
  void reset(sim::Rng rng, Config config);

  /// Connects the Ethernet port. Must be called before wired traffic.
  void attach_wired(net::Link& link);

  /// Starts the beacon schedule; the first TBTT is `phase` from now.
  void start_beacons(sim::Duration phase = sim::Duration{});

  /// Registers a station. `listen_interval` is what the STA announced in its
  /// association request (Table 4's "L (associated)" column).
  void associate(net::NodeId sta, int listen_interval);

  // Node (wired ingress).
  void receive(net::Packet&& packet, net::Link* ingress) override;
  [[nodiscard]] net::NodeId id() const override { return config_.id; }

  [[nodiscard]] Radio& radio() { return radio_; }

  // Introspection for tests and the prober.
  [[nodiscard]] bool station_dozing(net::NodeId sta) const;
  [[nodiscard]] std::size_t buffered_count(net::NodeId sta) const;
  [[nodiscard]] int associated_listen_interval(net::NodeId sta) const;
  [[nodiscard]] std::uint64_t ttl_drops() const { return ttl_drops_; }
  [[nodiscard]] std::uint64_t beacons_sent() const { return beacons_sent_; }
  [[nodiscard]] std::uint64_t ps_buffered_total() const {
    return ps_buffered_total_;
  }
  [[nodiscard]] std::uint64_t ps_polls_served() const {
    return ps_polls_served_;
  }

 private:
  struct StationState {
    net::NodeId sta = 0;
    bool dozing = false;
    int listen_interval = 0;
    std::deque<net::Packet> ps_buffer;
  };

  void on_radio_receive(net::Packet&& packet, const Frame& frame);
  void on_delivery_failed(net::Packet&& packet, net::NodeId receiver);
  void route_from_wireless(net::Packet&& packet);
  void deliver_to_station(net::NodeId sta, net::Packet&& packet);
  void flush_ps_buffer(StationState& state, net::NodeId sta);
  void send_beacon();
  StationState* station_state(net::NodeId sta);
  [[nodiscard]] const StationState* station_state(net::NodeId sta) const;

  sim::Simulator* sim_;
  sim::Rng rng_;
  Config config_;
  Radio radio_;
  net::Link* wired_ = nullptr;
  sim::PeriodicTimer beacon_timer_;
  // Association table in association order. Slots are recycled across
  // shard-context resets (stations_in_use_ marks the live prefix) so the
  // per-station power-save deques keep their warm storage; with a handful
  // of stations per BSS, linear scans beat a node-based map and allocate
  // nothing in steady state.
  std::vector<StationState> stations_;
  std::size_t stations_in_use_ = 0;
  std::uint64_t ttl_drops_ = 0;
  std::uint64_t beacons_sent_ = 0;
  std::uint64_t ps_buffered_total_ = 0;
  std::uint64_t ps_polls_served_ = 0;
};

}  // namespace acute::wifi
