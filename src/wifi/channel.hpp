// The shared wireless medium: a CSMA/CA (DCF) arbiter.
//
// Model: whenever the medium goes idle and stations have queued frames, a
// contention round runs. Every backlogged radio draws a backoff from its
// current contention window; the smallest draw wins the round. Ties are
// collisions: the tied frames burn airtime, their owners double their
// windows and retry (up to the retry limit). This compact abstraction keeps
// DCF's three load-visible behaviours — per-frame overhead, collision-driven
// window growth, and saturation throughput — which is what the congested
// experiments of §4.3/§4.4 depend on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "wifi/constants.hpp"

namespace acute::wifi {

class Radio;

/// A frame as observed on the medium (what a sniffer captures).
struct Frame {
  net::Packet packet;
  net::NodeId transmitter = 0;
  net::NodeId receiver = 0;
  sim::TimePoint tx_start;
  sim::TimePoint tx_end;
  bool collided = false;
};

/// Passive observer of every transmission (wireless sniffers).
class MediumObserver {
 public:
  virtual ~MediumObserver() = default;
  virtual void on_frame(const Frame& frame) = 0;
};

class Channel {
 public:
  Channel(sim::Simulator& sim, sim::Rng rng, PhyParams phy);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] const PhyParams& phy() const { return phy_; }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

  /// Radios self-register on construction.
  void attach_radio(Radio& radio);
  /// Removes a dying radio's registration; no-op if not attached (the
  /// channel may have been reset since). Called from ~Radio.
  void detach_radio(Radio& radio);
  void attach_observer(MediumObserver& observer);

  /// Returns the channel to its freshly-constructed state (new rng stream,
  /// new PHY, no radios or observers) while keeping the warm scratch and
  /// list capacities. Radios must re-attach afterwards — Radio::reset does
  /// — in the same order they were first constructed, so contention-round
  /// iteration order matches a fresh build exactly.
  void reset(sim::Rng rng, PhyParams phy);

  /// A radio signals that its queue became non-empty.
  void notify_backlog(Radio& radio);

  // Statistics.
  [[nodiscard]] std::uint64_t frames_transmitted() const {
    return frames_transmitted_;
  }
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }
  [[nodiscard]] std::uint64_t frames_dropped() const {
    return frames_dropped_;
  }
  [[nodiscard]] sim::TimePoint busy_until() const { return busy_until_; }

 private:
  void schedule_round();
  void run_contention_round();
  void transmit(Radio& winner, sim::TimePoint tx_start);
  void collide(const std::vector<Radio*>& losers, sim::TimePoint tx_start);
  void deliver(Frame&& frame, Radio* transmitter);
  void notify_observers(const Frame& frame);

  sim::Simulator* sim_;
  sim::Rng rng_;
  PhyParams phy_;
  std::vector<Radio*> radios_;
  std::vector<MediumObserver*> observers_;
  // Per-round scratch (contenders / winners). Members so the hottest loop
  // in the simulation reuses capacity instead of allocating per round.
  std::vector<Radio*> contenders_scratch_;
  std::vector<Radio*> winners_scratch_;
  sim::TimePoint busy_until_;
  bool round_scheduled_ = false;
  std::uint64_t frames_transmitted_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

}  // namespace acute::wifi
