// 802.11 station with adaptive Power Save Mode (§3.2.2).
//
// State machine:
//  * CAM (Constantly Awake Mode): receiver on. A watchdog tick (default
//    10 ms) counts idle periods; once the accumulated idle time reaches the
//    PSM timeout Tip, the station transmits a null frame with PM=1 and
//    dozes. The tick quantization makes the effective doze entry land in
//    [Tip - tick, Tip] after the last activity — which is exactly why the
//    paper's Nexus 4 (Tip ≈ 40 ms) only *sometimes* inflates a 30 ms path.
//  * Dozing: receiver off except at beacon wake-ups. The station listens
//    every (actual_listen_interval + 1) beacons (the paper measured 0 for
//    every handset, i.e. every beacon); when the TIM lists it, it PS-Polls
//    the AP and drains buffered frames. Receiving data promotes it back to
//    CAM (adaptive PSM). Transmitting at any time wakes it immediately.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "stack/stack_layer.hpp"
#include "wifi/channel.hpp"
#include "wifi/radio.hpp"

namespace acute::wifi {

/// The station is the bottom StackLayer of a WiFi phone stack: transmit()
/// puts frames on the medium (waking a dozing STA), and frames received from
/// the channel ascend via the pipeline. Free-standing stations (the load
/// generator, unit fixtures) can instead use set_receiver().
class Station : public stack::StackLayer {
 public:
  enum class PowerState { cam, dozing };

  struct Config {
    net::NodeId id = 0;
    net::NodeId ap = 0;
    /// Adaptive-PSM inactivity timeout (Tip, Table 4). Ignored when
    /// psm_enabled is false.
    sim::Duration psm_timeout = sim::Duration::millis(200);
    /// Watchdog tick used to count idle time (quantizes doze entry).
    sim::Duration psm_tick = sim::Duration::millis(10);
    bool psm_enabled = true;
    /// Listen interval announced at association (metadata; Table 4).
    int associated_listen_interval = 1;
    /// Listen interval the firmware actually uses (paper: 0 = every beacon).
    int actual_listen_interval = 0;
    /// Probability of failing to act on a TIM at a beacon (clock drift /
    /// missed TIM). Calibrated against Table 2; see DESIGN.md §2.
    double beacon_miss_probability = 0.15;
    /// Radio turn-on guard before an expected TBTT.
    sim::Duration wake_guard = sim::Duration::micros(200);
  };

  Station(sim::Simulator& sim, Channel& channel, sim::Rng rng, Config config);

  /// Returns the station to the state the constructor would leave it in
  /// with these arguments (same rng stream, same doze-timer arming draw and
  /// schedule). Requires the owning simulator and channel to have been
  /// reset first. Part of the shard-context reuse contract: a reset station
  /// is bit-identical to a freshly constructed one.
  void reset(sim::Rng rng, Config config);

  /// Upward delivery (to the WNIC driver): payload + air metadata. Used when
  /// the station is not composed into a StackPipeline.
  using RxFn = std::function<void(net::Packet&&, const Frame&)>;
  void set_receiver(RxFn on_receive) { on_receive_ = std::move(on_receive); }

  /// Transmits a data packet toward the AP. Wakes the station (a dozing STA
  /// can always transmit; the PM=0 bit tells the AP it is awake again).
  void send(net::Packet&& packet);

  // StackLayer.
  [[nodiscard]] const char* layer_name() const override { return "station"; }
  /// Downward entry from the bus layer: same as send().
  void transmit(net::Packet&& packet) override { send(std::move(packet)); }
  /// Upward injection point (the medium normally feeds the station through
  /// its radio; this lets tests and alternate PHYs push a frame up directly).
  void deliver(net::Packet&& packet) override;

  [[nodiscard]] PowerState power_state() const { return state_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] Radio& radio() { return radio_; }

  // Statistics for tests and the timeout prober.
  [[nodiscard]] std::uint64_t doze_count() const { return doze_count_; }
  [[nodiscard]] std::uint64_t wake_count() const { return wake_count_; }
  [[nodiscard]] std::uint64_t ps_polls_sent() const { return ps_polls_sent_; }
  [[nodiscard]] std::uint64_t beacons_heard() const { return beacons_heard_; }

 private:
  void on_radio_receive(net::Packet&& packet, const Frame& frame);
  void deliver_up(net::Packet&& packet, const Frame& frame);
  void mark_activity();
  void arm_doze_timer();
  void enter_doze();
  void wake_to_cam();
  void schedule_beacon_wake();
  void handle_beacon(const net::Packet& beacon);
  void send_ps_poll();

  sim::Simulator* sim_;
  sim::Rng rng_;
  Config config_;
  Radio radio_;
  RxFn on_receive_;
  PowerState state_ = PowerState::cam;
  sim::OneShotTimer doze_timer_;
  sim::TimePoint last_activity_;
  bool doze_pending_ = false;  // null frame sent, waiting for tx completion
  std::uint64_t pending_null_id_ = 0;
  bool draining_ = false;  // PS-Poll exchange in progress
  // Beacon schedule learned from received beacons.
  bool tbtt_known_ = false;
  sim::TimePoint tbtt_anchor_;
  std::int64_t doze_beacon_index_ = 0;
  sim::EventHandle beacon_wake_;
  std::uint64_t doze_count_ = 0;
  std::uint64_t wake_count_ = 0;
  std::uint64_t ps_polls_sent_ = 0;
  std::uint64_t beacons_heard_ = 0;
};

}  // namespace acute::wifi
