#include "wifi/station.hpp"

#include <algorithm>
#include <utility>

#include "sim/contracts.hpp"

namespace acute::wifi {

using net::Packet;
using net::PacketType;
using net::Protocol;
using sim::Duration;
using sim::expects;
using sim::TimePoint;

namespace {
// PS-Poll and null frames are tiny control/management frames.
constexpr std::uint32_t kPsPollBytes = 20;
constexpr std::uint32_t kNullFrameBytes = 28;
}  // namespace

Station::Station(sim::Simulator& sim, Channel& channel, sim::Rng rng,
                 Config config)
    : sim_(&sim),
      rng_(std::move(rng)),
      config_(config),
      radio_(channel, config.id),
      doze_timer_(sim, [this] { enter_doze(); }) {
  expects(config.psm_timeout > Duration{},
          "Station PSM timeout must be positive");
  expects(config.psm_tick > Duration{}, "Station PSM tick must be positive");
  expects(config.actual_listen_interval >= 0,
          "Station listen interval must be >= 0");
  expects(config.beacon_miss_probability >= 0.0 &&
              config.beacon_miss_probability <= 1.0,
          "Station beacon miss probability must be in [0, 1]");

  radio_.set_receiver([this](Packet&& pkt, const Frame& frame) {
    on_radio_receive(std::move(pkt), frame);
  });
  radio_.set_tx_done([this](const Frame& frame) {
    if (doze_pending_ && frame.packet.id == pending_null_id_) {
      doze_pending_ = false;
      state_ = PowerState::dozing;
      radio_.set_receiving(false);
      ++doze_count_;
      schedule_beacon_wake();
    }
  });

  last_activity_ = sim_->now();
  if (config_.psm_enabled) arm_doze_timer();
}

void Station::reset(sim::Rng rng, Config config) {
  expects(config.psm_timeout > Duration{},
          "Station PSM timeout must be positive");
  expects(config.psm_tick > Duration{}, "Station PSM tick must be positive");
  expects(config.actual_listen_interval >= 0,
          "Station listen interval must be >= 0");
  expects(config.beacon_miss_probability >= 0.0 &&
              config.beacon_miss_probability <= 1.0,
          "Station beacon miss probability must be in [0, 1]");

  rng_ = std::move(rng);
  config_ = config;
  radio_.reset();
  radio_.set_receiver([this](Packet&& pkt, const Frame& frame) {
    on_radio_receive(std::move(pkt), frame);
  });
  radio_.set_tx_done([this](const Frame& frame) {
    if (doze_pending_ && frame.packet.id == pending_null_id_) {
      doze_pending_ = false;
      state_ = PowerState::dozing;
      radio_.set_receiving(false);
      ++doze_count_;
      schedule_beacon_wake();
    }
  });
  on_receive_ = nullptr;
  state_ = PowerState::cam;
  doze_timer_.reset();
  doze_pending_ = false;
  pending_null_id_ = 0;
  draining_ = false;
  tbtt_known_ = false;
  tbtt_anchor_ = sim::TimePoint{};
  doze_beacon_index_ = 0;
  beacon_wake_ = sim::EventHandle{};
  doze_count_ = 0;
  wake_count_ = 0;
  ps_polls_sent_ = 0;
  beacons_heard_ = 0;

  // Same tail as the constructor: the doze-timer arming draw (and its
  // scheduled event) happens at exactly the same point in the rng stream
  // and event sequence as on a fresh build.
  last_activity_ = sim_->now();
  if (config_.psm_enabled) arm_doze_timer();
}

void Station::mark_activity() {
  last_activity_ = sim_->now();
  if (config_.psm_enabled && state_ == PowerState::cam && !draining_ &&
      !doze_pending_) {
    arm_doze_timer();
  }
}

void Station::arm_doze_timer() {
  // The firmware counts idle time in watchdog ticks, so the doze entry
  // quantizes to [Tip - tick, Tip] after the last activity (§3.2.2).
  const Duration tick =
      std::min(config_.psm_tick, config_.psm_timeout);
  const Duration base = config_.psm_timeout - tick;
  const Duration jitter = rng_.uniform_duration(Duration::nanos(1), tick);
  doze_timer_.restart(base + jitter);
}

void Station::enter_doze() {
  if (state_ != PowerState::cam || draining_ || doze_pending_) return;
  // Announce PM=1 with a null frame; the doze completes when it is on air.
  Packet null_frame = Packet::make(PacketType::wifi_null, Protocol::wifi_mgmt,
                                   config_.id, config_.ap, kNullFrameBytes);
  null_frame.wifi.power_mgmt = true;
  pending_null_id_ = null_frame.id;
  doze_pending_ = true;
  radio_.enqueue(std::move(null_frame), config_.ap);
}

void Station::wake_to_cam() {
  beacon_wake_.cancel();
  doze_timer_.cancel();
  doze_pending_ = false;
  draining_ = false;
  if (state_ == PowerState::dozing) {
    ++wake_count_;
    state_ = PowerState::cam;
  }
  radio_.set_receiving(true);
  mark_activity();
}

void Station::send(Packet&& packet) {
  packet.wifi.power_mgmt = false;  // this frame announces we are awake
  if (state_ == PowerState::dozing || doze_pending_) {
    wake_to_cam();
  } else {
    mark_activity();
  }
  radio_.enqueue(std::move(packet), config_.ap);
}

void Station::schedule_beacon_wake() {
  if (!tbtt_known_) {
    // Never synchronized: keep listening until the first beacon arrives.
    radio_.set_receiving(true);
    return;
  }
  const Duration interval = beacon_interval();
  const int wake_every = config_.actual_listen_interval + 1;
  // Find the next TBTT we intend to listen to.
  const std::int64_t elapsed =
      (sim_->now() - tbtt_anchor_).count_nanos();
  std::int64_t k = elapsed / interval.count_nanos() + 1;
  while ((k - doze_beacon_index_) % wake_every != 0) ++k;
  const TimePoint wake_at =
      tbtt_anchor_ + interval * k - config_.wake_guard;
  beacon_wake_ = sim_->schedule_at(
      std::max(wake_at, sim_->now()), sim::assert_fits_inline([this] {
        if (state_ == PowerState::dozing) radio_.set_receiving(true);
      }));
}

void Station::handle_beacon(const Packet& beacon) {
  ++beacons_heard_;
  if (beacon.wifi.tbtt.has_value()) {
    tbtt_anchor_ = *beacon.wifi.tbtt;
    tbtt_known_ = true;
  }

  const bool in_tim =
      std::find(beacon.wifi.tim.begin(), beacon.wifi.tim.end(), config_.id) !=
      beacon.wifi.tim.end();

  if (state_ == PowerState::cam) {
    if (in_tim && !doze_pending_) {
      // The AP believes we doze (stale PM state); a PM=0 null re-syncs it
      // and triggers the buffer flush.
      Packet null_frame =
          Packet::make(PacketType::wifi_null, Protocol::wifi_mgmt, config_.id,
                       config_.ap, kNullFrameBytes);
      null_frame.wifi.power_mgmt = false;
      radio_.enqueue(std::move(null_frame), config_.ap);
    }
    return;
  }

  // Dozing: this is a listen-interval wake-up.
  doze_beacon_index_ = ((sim_->now() - tbtt_anchor_).count_nanos() +
                        beacon_interval().count_nanos() / 2) /
                       beacon_interval().count_nanos();
  if (in_tim && !rng_.bernoulli(config_.beacon_miss_probability)) {
    draining_ = true;
    send_ps_poll();
    return;  // radio stays on for the buffered frames
  }
  // Nothing for us (or the TIM was missed): back to sleep.
  radio_.set_receiving(false);
  schedule_beacon_wake();
}

void Station::send_ps_poll() {
  Packet poll = Packet::make(PacketType::wifi_ps_poll, Protocol::wifi_mgmt,
                             config_.id, config_.ap, kPsPollBytes);
  poll.wifi.power_mgmt = true;  // still formally in PS mode while polling
  ++ps_polls_sent_;
  radio_.enqueue(std::move(poll), config_.ap);
}

void Station::deliver_up(Packet&& packet, const Frame& frame) {
  if (above() != nullptr) {
    pass_up(std::move(packet));
    return;
  }
  if (on_receive_) on_receive_(std::move(packet), frame);
}

void Station::deliver(Packet&& packet) {
  if (above() != nullptr) {
    pass_up(std::move(packet));
    return;
  }
  if (!on_receive_) return;
  const net::NodeId src = packet.src;
  Frame frame{std::move(packet), src, config_.id, sim_->now(), sim_->now(),
              false};
  on_receive_(std::move(frame.packet), frame);
}

void Station::on_radio_receive(Packet&& packet, const Frame& frame) {
  if (packet.type == PacketType::wifi_beacon) {
    handle_beacon(packet);
    return;
  }
  if (packet.protocol == Protocol::wifi_mgmt) return;

  // Unicast data for us.
  const bool more = packet.wifi.more_data;
  deliver_up(std::move(packet), frame);

  if (state_ == PowerState::dozing) {
    if (more && draining_) {
      send_ps_poll();
      return;
    }
    // Buffer drained; receiving traffic promotes to CAM (adaptive PSM).
    wake_to_cam();
    return;
  }
  mark_activity();
}

}  // namespace acute::wifi
