#include "wifi/access_point.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::wifi {

using net::kBroadcastId;
using net::Packet;
using net::PacketType;
using net::Protocol;
using sim::Duration;
using sim::expects;

AccessPoint::AccessPoint(sim::Simulator& sim, Channel& channel, sim::Rng rng,
                         Config config)
    : sim_(&sim),
      rng_(std::move(rng)),
      config_(config),
      radio_(channel, config.id),
      beacon_timer_(sim, beacon_interval(),
                    [this](std::uint64_t) { send_beacon(); }) {
  radio_.set_receiver([this](Packet&& pkt, const Frame& frame) {
    on_radio_receive(std::move(pkt), frame);
  });
  radio_.set_delivery_fail_handler(
      [this](Packet&& pkt, net::NodeId receiver) {
        on_delivery_failed(std::move(pkt), receiver);
      });
}

void AccessPoint::reset(sim::Rng rng, Config config) {
  rng_ = std::move(rng);
  config_ = config;
  radio_.reset();
  radio_.set_receiver([this](Packet&& pkt, const Frame& frame) {
    on_radio_receive(std::move(pkt), frame);
  });
  radio_.set_delivery_fail_handler(
      [this](Packet&& pkt, net::NodeId receiver) {
        on_delivery_failed(std::move(pkt), receiver);
      });
  wired_ = nullptr;
  beacon_timer_.reset(beacon_interval());
  stations_in_use_ = 0;  // associate() recycles the parked slots
  ttl_drops_ = 0;
  beacons_sent_ = 0;
  ps_buffered_total_ = 0;
  ps_polls_served_ = 0;
}

void AccessPoint::attach_wired(net::Link& link) {
  expects(wired_ == nullptr, "AccessPoint::attach_wired called twice");
  wired_ = &link;
}

void AccessPoint::start_beacons(Duration phase) {
  beacon_timer_.start(phase);
}

void AccessPoint::associate(net::NodeId sta, int listen_interval) {
  expects(listen_interval >= 0,
          "AccessPoint::associate listen interval must be >= 0");
  StationState* state = station_state(sta);
  if (state == nullptr) {
    // Recycle a parked slot (its deque keeps warm storage) before growing.
    if (stations_in_use_ == stations_.size()) stations_.emplace_back();
    state = &stations_[stations_in_use_++];
  }
  state->sta = sta;
  state->dozing = false;
  state->listen_interval = listen_interval;
  state->ps_buffer.clear();
}

AccessPoint::StationState* AccessPoint::station_state(net::NodeId sta) {
  for (std::size_t i = 0; i < stations_in_use_; ++i) {
    if (stations_[i].sta == sta) return &stations_[i];
  }
  return nullptr;
}

const AccessPoint::StationState* AccessPoint::station_state(
    net::NodeId sta) const {
  for (std::size_t i = 0; i < stations_in_use_; ++i) {
    if (stations_[i].sta == sta) return &stations_[i];
  }
  return nullptr;
}

bool AccessPoint::station_dozing(net::NodeId sta) const {
  const StationState* state = station_state(sta);
  return state != nullptr && state->dozing;
}

std::size_t AccessPoint::buffered_count(net::NodeId sta) const {
  const StationState* state = station_state(sta);
  return state == nullptr ? 0 : state->ps_buffer.size();
}

int AccessPoint::associated_listen_interval(net::NodeId sta) const {
  const StationState* state = station_state(sta);
  return state == nullptr ? -1 : state->listen_interval;
}

void AccessPoint::send_beacon() {
  Packet beacon = Packet::make(PacketType::wifi_beacon, Protocol::wifi_mgmt,
                               config_.id, kBroadcastId, 96);
  beacon.wifi.tbtt = sim_->now();
  for (std::size_t i = 0; i < stations_in_use_; ++i) {
    const StationState& state = stations_[i];
    if (!state.ps_buffer.empty()) beacon.wifi.tim.push_back(state.sta);
  }
  ++beacons_sent_;
  radio_.enqueue_priority(std::move(beacon), kBroadcastId);
}

void AccessPoint::on_radio_receive(Packet&& packet, const Frame& frame) {
  StationState* state = station_state(frame.transmitter);
  if (state != nullptr) {
    // Track the station's power state from the PM bit of every frame.
    const bool was_dozing = state->dozing;
    if (packet.protocol != Protocol::wifi_mgmt ||
        packet.type == PacketType::wifi_null) {
      state->dozing = packet.wifi.power_mgmt;
    }
    if (was_dozing && !state->dozing) {
      flush_ps_buffer(*state, frame.transmitter);
    }
  }

  switch (packet.type) {
    case PacketType::wifi_null:
      return;  // PM update only
    case PacketType::wifi_ps_poll: {
      if (state == nullptr || state->ps_buffer.empty()) return;
      ++ps_polls_served_;
      Packet buffered = std::move(state->ps_buffer.front());
      state->ps_buffer.pop_front();
      buffered.wifi.more_data = !state->ps_buffer.empty();
      radio_.enqueue(std::move(buffered), frame.transmitter);
      return;
    }
    case PacketType::wifi_beacon:
      return;  // another BSS; ignore
    default:
      route_from_wireless(std::move(packet));
  }
}

void AccessPoint::route_from_wireless(Packet&& packet) {
  // First-hop router: TTL handling (AcuteMon's warm-up packets die here).
  if (packet.ttl <= 1) {
    ++ttl_drops_;
    if (config_.send_ttl_exceeded) {
      Packet exceeded =
          Packet::make(PacketType::icmp_time_exceeded, Protocol::icmp,
                       config_.id, packet.src, 56);
      exceeded.flow_id = packet.flow_id;
      const Duration delay =
          config_.forward_delay +
          rng_.uniform_duration(Duration{}, config_.forward_jitter);
      sim_->schedule_in(delay, sim::assert_fits_inline(
                                   [this, ex = std::move(exceeded)]() mutable {
                                     deliver_to_station(ex.dst, std::move(ex));
                                   }));
    }
    return;
  }
  packet.ttl -= 1;

  expects(wired_ != nullptr, "AccessPoint has no wired link attached");
  const Duration delay =
      config_.forward_delay +
      rng_.uniform_duration(Duration{}, config_.forward_jitter);
  sim_->schedule_in(delay, sim::assert_fits_inline(
                               [this, pkt = std::move(packet)]() mutable {
                                 wired_->send(config_.id, std::move(pkt));
                               }));
}

void AccessPoint::receive(Packet&& packet, net::Link* /*ingress*/) {
  // Wired ingress: route toward the wireless side if the destination is an
  // associated station; otherwise it is not for this BSS.
  if (station_state(packet.dst) == nullptr) return;
  if (packet.ttl <= 1) {
    ++ttl_drops_;
    return;
  }
  packet.ttl -= 1;
  const Duration delay =
      config_.forward_delay +
      rng_.uniform_duration(Duration{}, config_.forward_jitter);
  sim_->schedule_in(delay, sim::assert_fits_inline(
                               [this, pkt = std::move(packet)]() mutable {
                                 deliver_to_station(pkt.dst, std::move(pkt));
                               }));
}

void AccessPoint::deliver_to_station(net::NodeId sta, Packet&& packet) {
  StationState* state = station_state(sta);
  if (state == nullptr) return;
  if (state->dozing) {
    // Power-save buffering (§3.2.2): hold until the STA polls after a TIM.
    ++ps_buffered_total_;
    state->ps_buffer.push_back(std::move(packet));
    return;
  }
  radio_.enqueue(std::move(packet), sta);
}

void AccessPoint::flush_ps_buffer(StationState& state, net::NodeId sta) {
  while (!state.ps_buffer.empty()) {
    Packet pkt = std::move(state.ps_buffer.front());
    state.ps_buffer.pop_front();
    pkt.wifi.more_data = false;
    radio_.enqueue(std::move(pkt), sta);
  }
}

void AccessPoint::on_delivery_failed(Packet&& packet, net::NodeId receiver) {
  // The radio exhausted retries against a receiver that went to sleep
  // mid-flight; re-route through power-save buffering like a real AP.
  StationState* state = station_state(receiver);
  if (state == nullptr) return;
  state->dozing = true;
  ++ps_buffered_total_;
  state->ps_buffer.push_back(std::move(packet));
}

}  // namespace acute::wifi
