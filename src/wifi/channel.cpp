#include "wifi/channel.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/contracts.hpp"
#include "wifi/radio.hpp"

namespace acute::wifi {

using net::Packet;
using sim::Duration;
using sim::expects;
using sim::TimePoint;

Channel::Channel(sim::Simulator& sim, sim::Rng rng, PhyParams phy)
    : sim_(&sim), rng_(std::move(rng)), phy_(phy) {}

void Channel::reset(sim::Rng rng, PhyParams phy) {
  rng_ = std::move(rng);
  phy_ = phy;
  radios_.clear();
  observers_.clear();
  busy_until_ = sim::TimePoint{};
  round_scheduled_ = false;  // the simulator reset dropped any pending round
  frames_transmitted_ = 0;
  collisions_ = 0;
  frames_dropped_ = 0;
}

void Channel::attach_radio(Radio& radio) {
  expects(std::find(radios_.begin(), radios_.end(), &radio) == radios_.end(),
          "Channel::attach_radio: radio already attached");
  for (const Radio* existing : radios_) {
    expects(existing->owner() != radio.owner(),
            "Channel::attach_radio: duplicate owner address");
  }
  radio.cw_ = phy_.cw_min;
  radios_.push_back(&radio);
}

void Channel::detach_radio(Radio& radio) {
  // No-op when the channel was reset since the attach (radios_ cleared):
  // shard-context reuse destroys nodes after their channel rewound.
  const auto it = std::find(radios_.begin(), radios_.end(), &radio);
  if (it != radios_.end()) radios_.erase(it);
}

void Channel::attach_observer(MediumObserver& observer) {
  observers_.push_back(&observer);
}

void Channel::notify_backlog(Radio& /*radio*/) { schedule_round(); }

void Channel::schedule_round() {
  if (round_scheduled_) return;
  round_scheduled_ = true;
  const TimePoint when = std::max(sim_->now(), busy_until_);
  sim_->schedule_at(when, [this] {
    round_scheduled_ = false;
    run_contention_round();
  });
}

void Channel::run_contention_round() {
  // Gather contenders (member scratch: no per-round allocation).
  std::vector<Radio*>& contenders = contenders_scratch_;
  contenders.clear();
  for (Radio* radio : radios_) {
    if (radio->backlogged()) contenders.push_back(radio);
  }
  if (contenders.empty()) return;

  // Each contender draws a backoff; priority frames (beacons) draw zero.
  int min_slots = std::numeric_limits<int>::max();
  std::vector<Radio*>& winners = winners_scratch_;
  winners.clear();
  for (Radio* radio : contenders) {
    const int slots =
        radio->head().priority
            ? 0
            : static_cast<int>(rng_.uniform_int(0, radio->cw_));
    if (slots < min_slots) {
      min_slots = slots;
      winners.clear();
    }
    if (slots == min_slots) winners.push_back(radio);
  }

  const TimePoint tx_start = sim_->now() + phy_.difs + phy_.slot * min_slots;
  if (winners.size() == 1) {
    transmit(*winners.front(), tx_start);
  } else {
    collide(winners, tx_start);
  }
}

void Channel::transmit(Radio& winner, TimePoint tx_start) {
  Radio::QueuedFrame queued = std::move(winner.head());
  winner.pop_head();
  winner.cw_ = phy_.cw_min;
  ++winner.tx_count_;
  ++frames_transmitted_;

  const bool broadcast = queued.receiver == net::kBroadcastId;
  const bool needs_ack = !broadcast;
  const bool is_control = queued.packet.is_wifi_control();
  const double rate =
      is_control ? phy_.basic_rate_mbps : phy_.data_rate_mbps;

  Duration protection{};
  if (phy_.cts_to_self && !is_control && !broadcast) {
    protection = cts_to_self_airtime(phy_);
  }
  const Duration data_time =
      frame_airtime(phy_, queued.packet.size_bytes, rate);
  Duration occupancy = protection + data_time;
  if (needs_ack) occupancy += phy_.sifs + ack_airtime(phy_);

  busy_until_ = tx_start + occupancy;

  Frame frame;
  frame.packet = std::move(queued.packet);
  frame.transmitter = winner.owner();
  frame.receiver = queued.receiver;
  frame.tx_start = tx_start;
  frame.tx_end = tx_start + protection + data_time;
  frame.collided = false;
  // t_n of Fig. 1: the instant the frame hits the air.
  frame.packet.stamps.air = tx_start;

  // Payload reaches receivers when the data portion ends. Observers and the
  // tx-done hook only read the frame; delivery runs last so it can hand the
  // frame's packet to the (unicast) receiver by move instead of copy.
  Radio* transmitter = &winner;
  sim_->schedule_at(
      frame.tx_end,
      sim::assert_fits_inline(
          [this, transmitter, f = std::move(frame)]() mutable {
            notify_observers(f);
            if (transmitter->on_tx_done_) {
              transmitter->on_tx_done_(f);
            }
            deliver(std::move(f), transmitter);
          }));

  // Medium goes idle at busy_until_: run the next round if backlog remains.
  sim_->schedule_at(busy_until_, [this] { schedule_round(); });
}

void Channel::collide(const std::vector<Radio*>& losers, TimePoint tx_start) {
  ++collisions_;
  Duration longest{};
  for (Radio* radio : losers) {
    const Radio::QueuedFrame& queued = radio->head();
    const bool is_control = queued.packet.is_wifi_control();
    const double rate =
        is_control ? phy_.basic_rate_mbps : phy_.data_rate_mbps;
    longest = std::max(
        longest, frame_airtime(phy_, queued.packet.size_bytes, rate));
  }
  for (Radio* radio : losers) {
    Radio::QueuedFrame& queued = radio->head();
    Frame frame;
    frame.packet = queued.packet;
    frame.transmitter = radio->owner();
    frame.receiver = queued.receiver;
    frame.tx_start = tx_start;
    frame.tx_end = tx_start + longest;
    frame.collided = true;
    notify_observers(frame);

    ++queued.retries;
    radio->cw_ = std::min(2 * (radio->cw_ + 1) - 1, phy_.cw_max);
    if (queued.retries > phy_.retry_limit) {
      radio->pop_head();
      radio->cw_ = phy_.cw_min;
      ++radio->dropped_count_;
      ++frames_dropped_;
    }
  }
  // Collided frames burn the medium for the longest frame plus recovery.
  busy_until_ = tx_start + longest + phy_.difs;
  sim_->schedule_at(busy_until_, [this] { schedule_round(); });
}

void Channel::deliver(Frame&& frame, Radio* transmitter) {
  if (frame.receiver == net::kBroadcastId) {
    // Broadcast fan-out: each receiver owns its copy of the payload (the
    // shared PayloadBuffer keeps the bytes themselves single-instance).
    for (Radio* radio : radios_) {
      if (radio->owner() == frame.transmitter) continue;
      if (!radio->receiving()) continue;
      ++radio->rx_count_;
      if (radio->on_receive_) {
        net::Packet copy = frame.packet;
        radio->on_receive_(std::move(copy), frame);
      }
    }
    return;
  }
  // Unicast: deliver (moving the frame's packet — the receiver is the sole
  // consumer), or report failure (no ACK after retries) so the transmitter's
  // owner can recover (the AP re-buffers for dozing STAs).
  for (Radio* radio : radios_) {
    if (radio->owner() != frame.receiver) continue;
    if (!radio->receiving()) break;
    ++radio->rx_count_;
    if (radio->on_receive_) radio->on_receive_(std::move(frame.packet), frame);
    return;
  }
  if (transmitter->on_delivery_fail_) {
    transmitter->on_delivery_fail_(std::move(frame.packet), frame.receiver);
  } else {
    ++transmitter->dropped_count_;
  }
}

void Channel::notify_observers(const Frame& frame) {
  for (MediumObserver* observer : observers_) {
    observer->on_frame(frame);
  }
}

}  // namespace acute::wifi
