#include "cellular/cellular_probe.hpp"

#include <memory>
#include <utility>

#include "sim/contracts.hpp"
#include "sim/timer.hpp"

namespace acute::cellular {

using sim::Duration;
using sim::expects;
using sim::TimePoint;

CellularPath::CellularPath(sim::Simulator& sim, sim::Rng rng, RrcMachine& rrc,
                           Config config)
    : sim_(&sim),
      rng_(std::move(rng)),
      config_(config),
      radio_(sim, rrc),
      pipeline_(sim) {
  pipeline_.append(radio_);
  // Core network: echo every uplink packet back into the radio after the
  // (per-probe) core RTT. The downlink state latency is paid by the radio
  // layer at deliver() time, when the RRC state may have changed.
  radio_.set_egress([this](net::Packet pkt) {
    const auto it = pending_.find(pkt.probe_id);
    if (it == pending_.end()) return;  // keep-alive, no echo expected
    const Duration core = it->second.core;
    sim_->schedule_in(core, sim::assert_fits_inline(
                                [this, pkt = std::move(pkt)]() mutable {
                                  radio_.deliver(std::move(pkt));
                                }));
  });
  pipeline_.set_app_handler([this](net::Packet pkt) {
    const auto it = pending_.find(pkt.probe_id);
    if (it == pending_.end()) return;
    Pending entry = std::move(it->second);
    pending_.erase(it);
    entry.done(sim_->now() - entry.sent);
  });
}

void CellularPath::probe(std::uint32_t bytes,
                         std::function<void(Duration)> done) {
  expects(static_cast<bool>(done), "CellularPath::probe requires a callback");
  net::Packet pkt = net::Packet::make(net::PacketType::udp_data,
                                      net::Protocol::udp, 0, 0, bytes);
  pkt.probe_id = net::Packet::allocate_id();
  // Draw the core jitter now so the per-probe draw order is stable no
  // matter when the packet clears the radio.
  const Duration core =
      config_.core_rtt +
      rng_.uniform_duration(-config_.core_jitter, config_.core_jitter);
  pending_[pkt.probe_id] = Pending{sim_->now(), core, std::move(done)};
  pipeline_.transmit(std::move(pkt));
}

std::vector<double> CellularProbeSession::run(const Spec& spec) {
  expects(spec.probes > 0, "CellularProbeSession requires probes > 0");
  sim::Simulator sim;
  sim::Rng rng(spec.seed);
  RrcMachine rrc(sim, rng.fork("rrc"), spec.rrc);
  CellularPath path(sim, rng.fork("path"), rrc, spec.path);

  std::vector<double> rtts;

  // Keep-alive thread (the AcuteMon cellular analogue): tiny packets below
  // the FACH threshold would not hold DCH, so keep-alives are sized above
  // it; they ride an established DCH for free once promoted.
  sim::PeriodicTimer keepalive(sim, spec.keepalive_interval,
                               [&](std::uint64_t) {
                                 (void)rrc.request_transmit(
                                     spec.probe_bytes);
                               });
  if (spec.keep_awake) {
    // Warm-up: promote now; probing starts once DCH is stable.
    (void)rrc.request_transmit(spec.probe_bytes);
    keepalive.start(spec.keepalive_interval);
  }
  const Duration warmup_lead =
      spec.keep_awake ? spec.rrc.idle_to_dch + sim::Duration::millis(500)
                      : Duration{};

  // Sequential probes separated by probe_interval.
  std::function<void(int)> launch = [&](int index) {
    if (index >= spec.probes) return;
    path.probe(spec.probe_bytes, [&, index](Duration rtt) {
      rtts.push_back(rtt.to_ms());
      sim.schedule_in(spec.probe_interval,
                      [&launch, index] { launch(index + 1); });
    });
  };
  sim.schedule_in(warmup_lead, [&launch] { launch(0); });

  const TimePoint deadline =
      sim.now() + spec.probe_interval * (spec.probes + 4) +
      sim::Duration::seconds(30);
  while (rtts.size() < static_cast<std::size_t>(spec.probes) &&
         sim.now() < deadline) {
    sim.run_for(sim::Duration::millis(100));
  }
  keepalive.stop();
  return rtts;
}

}  // namespace acute::cellular
