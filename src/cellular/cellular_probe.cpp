#include "cellular/cellular_probe.hpp"

#include <memory>
#include <utility>

#include "sim/contracts.hpp"
#include "sim/timer.hpp"

namespace acute::cellular {

using sim::Duration;
using sim::expects;
using sim::TimePoint;

CellularPath::CellularPath(sim::Simulator& sim, sim::Rng rng, RrcMachine& rrc,
                           Config config)
    : sim_(&sim), rng_(std::move(rng)), rrc_(&rrc), config_(config) {}

void CellularPath::probe(std::uint32_t bytes,
                         std::function<void(Duration)> done) {
  expects(static_cast<bool>(done), "CellularPath::probe requires a callback");
  const TimePoint sent = sim_->now();
  const Duration promotion = rrc_->request_transmit(bytes);
  // Uplink pays the state latency at send time; we sample the downlink
  // latency after the core RTT elapses, when the state may have changed.
  const Duration uplink = rrc_->state_latency();
  const Duration core =
      config_.core_rtt +
      rng_.uniform_duration(-config_.core_jitter, config_.core_jitter);
  sim_->schedule_in(promotion + uplink + core,
                    [this, sent, done = std::move(done)] {
                      rrc_->on_receive();
                      const Duration downlink = rrc_->state_latency();
                      sim_->schedule_in(downlink, [this, sent,
                                                   done = std::move(done)] {
                        done(sim_->now() - sent);
                      });
                    });
}

std::vector<double> CellularProbeSession::run(const Spec& spec) {
  expects(spec.probes > 0, "CellularProbeSession requires probes > 0");
  sim::Simulator sim;
  sim::Rng rng(spec.seed);
  RrcMachine rrc(sim, rng.fork("rrc"), spec.rrc);
  CellularPath path(sim, rng.fork("path"), rrc, spec.path);

  std::vector<double> rtts;

  // Keep-alive thread (the AcuteMon cellular analogue): tiny packets below
  // the FACH threshold would not hold DCH, so keep-alives are sized above
  // it; they ride an established DCH for free once promoted.
  sim::PeriodicTimer keepalive(sim, spec.keepalive_interval,
                               [&](std::uint64_t) {
                                 (void)rrc.request_transmit(
                                     spec.probe_bytes);
                               });
  if (spec.keep_awake) {
    // Warm-up: promote now; probing starts once DCH is stable.
    (void)rrc.request_transmit(spec.probe_bytes);
    keepalive.start(spec.keepalive_interval);
  }
  const Duration warmup_lead =
      spec.keep_awake ? spec.rrc.idle_to_dch + sim::Duration::millis(500)
                      : Duration{};

  // Sequential probes separated by probe_interval.
  std::function<void(int)> launch = [&](int index) {
    if (index >= spec.probes) return;
    path.probe(spec.probe_bytes, [&, index](Duration rtt) {
      rtts.push_back(rtt.to_ms());
      sim.schedule_in(spec.probe_interval,
                      [&launch, index] { launch(index + 1); });
    });
  };
  sim.schedule_in(warmup_lead, [&launch] { launch(0); });

  const TimePoint deadline =
      sim.now() + spec.probe_interval * (spec.probes + 4) +
      sim::Duration::seconds(30);
  while (rtts.size() < static_cast<std::size_t>(spec.probes) &&
         sim.now() < deadline) {
    sim.run_for(sim::Duration::millis(100));
  }
  keepalive.stop();
  return rtts;
}

}  // namespace acute::cellular
