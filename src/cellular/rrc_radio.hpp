// The cellular radio as a StackLayer — the alternate bottom of a phone
// pipeline (§4.1: AcuteMon "can be easily extended to cellular environment,
// mitigating the effect of RRC state transition").
//
// Where the WiFi stack bottoms out in SdioBus + Station, a cellular stack
// bottoms out in this layer: the downward path pays the RRC promotion delay
// plus the current state's uplink latency before the packet leaves through
// the egress hand-off (the "air" of the cellular world); the upward path
// marks downlink activity on the RRC machine and pays the state latency
// before the packet ascends.
#pragma once

#include <cstdint>
#include <functional>

#include "cellular/rrc.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "stack/stack_layer.hpp"

namespace acute::cellular {

class RrcRadioLayer : public stack::StackLayer {
 public:
  /// Uplink hand-off: invoked when a packet actually leaves the radio
  /// (after promotion + state latency). Plays the role the wireless channel
  /// plays for wifi::Station.
  using EgressFn = std::function<void(net::Packet&&)>;

  RrcRadioLayer(sim::Simulator& sim, RrcMachine& rrc);

  void set_egress(EgressFn egress) { egress_ = std::move(egress); }

  /// Returns the layer to the state the constructor would leave it in with
  /// this RRC machine; the egress hand-off is cleared — the gateway re-sets
  /// it on attach (shard-context reuse contract).
  void reset(RrcMachine& rrc) {
    rrc_ = &rrc;
    egress_ = nullptr;
    uplink_ = 0;
    downlink_ = 0;
  }

  // StackLayer.
  [[nodiscard]] const char* layer_name() const override { return "rrc-radio"; }
  /// Downward: RRC promotion (state transition + demotion-timer reset) and
  /// the uplink state latency, then the egress hand-off.
  void transmit(net::Packet&& packet) override;
  /// Upward: a downlink packet from the core network. Resets the inactivity
  /// timers and pays the current state's latency before ascending.
  void deliver(net::Packet&& packet) override;

  [[nodiscard]] RrcMachine& rrc() { return *rrc_; }
  [[nodiscard]] std::uint64_t uplink_packets() const { return uplink_; }
  [[nodiscard]] std::uint64_t downlink_packets() const { return downlink_; }

 private:
  sim::Simulator* sim_;
  RrcMachine* rrc_;
  EgressFn egress_;
  std::uint64_t uplink_ = 0;
  std::uint64_t downlink_ = 0;
};

}  // namespace acute::cellular
