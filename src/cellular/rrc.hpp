// Radio Resource Control (RRC) state machine — the cellular analogue of the
// WiFi energy-saving mechanisms the paper dissects. §4.1 notes that
// AcuteMon "can be easily extended to cellular environment, mitigating the
// effect of RRC state transition"; this module provides that substrate.
//
// Model (3G UMTS flavour, LTE preset included):
//
//   IDLE  --(any tx, promotion ~2 s)-->  CELL_DCH
//   FACH  --(large tx, promotion ~0.7 s)-->  CELL_DCH
//   DCH   --(inactivity T_dch ~5 s)-->  CELL_FACH
//   FACH  --(inactivity T_fach ~12 s)-->  IDLE
//
// CELL_FACH carries small packets on the shared channel without promotion,
// but with a large per-packet latency penalty. Exactly like SDIO/PSM, the
// demotion timers reset on every transmission — which is what a
// warm-up + keep-alive scheme exploits.
#pragma once

#include <cstdint>
#include <utility>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace acute::cellular {

enum class RrcState { idle, cell_fach, cell_dch };

[[nodiscard]] const char* to_string(RrcState state);

struct RrcConfig {
  /// Promotion delay distributions (mean, jitter half-width).
  sim::Duration idle_to_dch = sim::Duration::millis(2000);
  sim::Duration fach_to_dch = sim::Duration::millis(700);
  sim::Duration promotion_jitter = sim::Duration::millis(150);
  /// Inactivity demotion timers.
  sim::Duration dch_inactivity = sim::Duration::seconds(5);
  sim::Duration fach_inactivity = sim::Duration::seconds(12);
  /// Extra one-way latency contributed by the current state.
  sim::Duration dch_latency = sim::Duration::millis(1);
  sim::Duration fach_latency = sim::Duration::millis(120);
  /// Packets up to this size ride CELL_FACH without forcing a promotion.
  std::uint32_t fach_size_threshold = 128;

  /// Typical 3G (UMTS) parameters [e.g. Qian et al., characterised RRC].
  [[nodiscard]] static RrcConfig umts_3g() { return RrcConfig{}; }

  /// LTE parameters: much faster promotion, shorter tail timer.
  [[nodiscard]] static RrcConfig lte() {
    RrcConfig config;
    config.idle_to_dch = sim::Duration::millis(260);
    config.fach_to_dch = sim::Duration::millis(100);
    config.promotion_jitter = sim::Duration::millis(40);
    config.dch_inactivity = sim::Duration::seconds(10);
    config.fach_inactivity = sim::Duration::seconds(2);
    config.fach_latency = sim::Duration::millis(40);
    return config;
  }
};

class RrcMachine {
 public:
  RrcMachine(sim::Simulator& sim, sim::Rng rng, RrcConfig config);

  RrcMachine(const RrcMachine&) = delete;
  RrcMachine& operator=(const RrcMachine&) = delete;

  /// Returns the machine to the state the constructor would leave it in
  /// with these arguments (shard-context reuse contract).
  void reset(sim::Rng rng, RrcConfig config) {
    rng_ = std::move(rng);
    config_ = config;
    state_ = RrcState::idle;
    promotion_done_ = sim::TimePoint{};
    demotion_timer_.reset();
    promotions_ = 0;
    demotions_ = 0;
  }

  /// Requests to transmit `bytes` now. Returns the delay before the radio
  /// can actually send (promotion cost, zero when already in a suitable
  /// state) and performs the state transition + demotion-timer reset.
  [[nodiscard]] sim::Duration request_transmit(std::uint32_t bytes);

  /// Marks downlink activity (resets the inactivity timers).
  void on_receive();

  /// Extra one-way latency of the *current* state (applies to each
  /// direction of a packet exchange).
  [[nodiscard]] sim::Duration state_latency() const;

  [[nodiscard]] RrcState state() const { return state_; }
  [[nodiscard]] const RrcConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t promotions() const { return promotions_; }
  [[nodiscard]] std::uint64_t demotions() const { return demotions_; }

 private:
  void arm_demotion();
  void demote();
  [[nodiscard]] sim::Duration sample_promotion(sim::Duration mean);

  sim::Simulator* sim_;
  sim::Rng rng_;
  RrcConfig config_;
  RrcState state_ = RrcState::idle;
  // A promotion in flight: the radio is usable at promotion_done_.
  sim::TimePoint promotion_done_;
  sim::OneShotTimer demotion_timer_;
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
};

}  // namespace acute::cellular
