#include "cellular/rrc_radio.hpp"

#include <utility>

#include "sim/contracts.hpp"

namespace acute::cellular {

using sim::Duration;
using sim::expects;

RrcRadioLayer::RrcRadioLayer(sim::Simulator& sim, RrcMachine& rrc)
    : sim_(&sim), rrc_(&rrc) {}

void RrcRadioLayer::transmit(net::Packet&& packet) {
  expects(static_cast<bool>(egress_),
          "RrcRadioLayer::transmit requires an egress hand-off");
  const Duration promotion = rrc_->request_transmit(packet.size_bytes);
  const Duration uplink = rrc_->state_latency();
  sim_->schedule_in(promotion + uplink,
                    sim::assert_fits_inline(
                        [this, pkt = std::move(packet)]() mutable {
                          ++uplink_;
                          egress_(std::move(pkt));
                        }));
}

void RrcRadioLayer::deliver(net::Packet&& packet) {
  rrc_->on_receive();
  const Duration downlink = rrc_->state_latency();
  sim_->schedule_in(downlink, sim::assert_fits_inline(
                                  [this, pkt = std::move(packet)]() mutable {
                                    ++downlink_;
                                    pass_up(std::move(pkt));
                                  }));
}

}  // namespace acute::cellular
