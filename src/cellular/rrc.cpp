#include "cellular/rrc.hpp"

#include <algorithm>
#include <utility>

namespace acute::cellular {

using sim::Duration;
using sim::TimePoint;

const char* to_string(RrcState state) {
  switch (state) {
    case RrcState::idle:
      return "IDLE";
    case RrcState::cell_fach:
      return "CELL_FACH";
    case RrcState::cell_dch:
      return "CELL_DCH";
  }
  return "?";
}

RrcMachine::RrcMachine(sim::Simulator& sim, sim::Rng rng, RrcConfig config)
    : sim_(&sim),
      rng_(std::move(rng)),
      config_(config),
      demotion_timer_(sim, [this] { demote(); }) {}

Duration RrcMachine::sample_promotion(Duration mean) {
  const Duration jitter = rng_.uniform_duration(-config_.promotion_jitter,
                                                config_.promotion_jitter);
  Duration cost = mean + jitter;
  if (cost.is_negative()) cost = Duration{};
  return cost;
}

Duration RrcMachine::request_transmit(std::uint32_t bytes) {
  const TimePoint now = sim_->now();
  Duration wait{};

  switch (state_) {
    case RrcState::cell_dch:
      // Possibly still completing a previous promotion.
      wait = std::max(Duration{}, promotion_done_ - now);
      break;
    case RrcState::cell_fach:
      if (bytes <= config_.fach_size_threshold) {
        wait = Duration{};  // rides the shared channel
      } else {
        wait = sample_promotion(config_.fach_to_dch);
        state_ = RrcState::cell_dch;
        promotion_done_ = now + wait;
        ++promotions_;
      }
      break;
    case RrcState::idle:
      wait = sample_promotion(config_.idle_to_dch);
      state_ = RrcState::cell_dch;
      promotion_done_ = now + wait;
      ++promotions_;
      break;
  }
  // Activity (the transmission) restarts the inactivity countdown from the
  // moment the radio is actually usable.
  sim_->schedule_in(wait, [this] { arm_demotion(); });
  return wait;
}

void RrcMachine::on_receive() { arm_demotion(); }

void RrcMachine::arm_demotion() {
  switch (state_) {
    case RrcState::cell_dch:
      demotion_timer_.restart(config_.dch_inactivity);
      break;
    case RrcState::cell_fach:
      demotion_timer_.restart(config_.fach_inactivity);
      break;
    case RrcState::idle:
      demotion_timer_.cancel();
      break;
  }
}

void RrcMachine::demote() {
  ++demotions_;
  switch (state_) {
    case RrcState::cell_dch:
      state_ = RrcState::cell_fach;
      demotion_timer_.restart(config_.fach_inactivity);
      break;
    case RrcState::cell_fach:
      state_ = RrcState::idle;
      break;
    case RrcState::idle:
      break;
  }
}

Duration RrcMachine::state_latency() const {
  switch (state_) {
    case RrcState::cell_dch:
      return config_.dch_latency;
    case RrcState::cell_fach:
      return config_.fach_latency;
    case RrcState::idle:
      return config_.fach_latency;  // first packets effectively pay FACH
  }
  return Duration{};
}

}  // namespace acute::cellular
