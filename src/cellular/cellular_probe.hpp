// Cellular RTT probing over the RRC machine: the naive approach pays the
// promotion delay (seconds!) and FACH latency on the first probes of a
// burst; the AcuteMon-style approach (warm-up + keep-alives, §4.1's
// cellular extension) measures from a stable CELL_DCH state.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cellular/rrc.hpp"
#include "cellular/rrc_radio.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stack/stack_pipeline.hpp"

namespace acute::cellular {

/// A point-to-point cellular path: RRC-gated radio + fixed core-network RTT.
/// The radio is an RrcRadioLayer composed into a StackPipeline, so the same
/// packet-flow interface the WiFi stack uses carries the cellular probes;
/// the core network is the echo beyond the radio's egress.
class CellularPath {
 public:
  struct Config {
    sim::Duration core_rtt = sim::Duration::millis(50);
    sim::Duration core_jitter = sim::Duration::millis(3);
  };

  CellularPath(sim::Simulator& sim, sim::Rng rng, RrcMachine& rrc,
               Config config);

  CellularPath(const CellularPath&) = delete;
  CellularPath& operator=(const CellularPath&) = delete;

  /// Sends one `bytes`-sized probe now; `on_response(rtt)` fires when the
  /// echo returns. The RTT includes any RRC promotion, the per-direction
  /// state latency, and the core-network RTT.
  void probe(std::uint32_t bytes, std::function<void(sim::Duration)> done);

  [[nodiscard]] RrcRadioLayer& radio() { return radio_; }

 private:
  struct Pending {
    sim::TimePoint sent;
    sim::Duration core;  // this probe's core-network RTT (jitter included)
    std::function<void(sim::Duration)> done;
  };

  sim::Simulator* sim_;
  sim::Rng rng_;
  Config config_;
  RrcRadioLayer radio_;
  stack::StackPipeline pipeline_;
  std::unordered_map<std::uint64_t, Pending> pending_;  // by probe_id
};

/// Experiment harness mirroring the paper's WiFi methodology on cellular.
class CellularProbeSession {
 public:
  struct Spec {
    RrcConfig rrc = RrcConfig::umts_3g();
    CellularPath::Config path;
    int probes = 30;
    /// Gap between consecutive probes.
    sim::Duration probe_interval = sim::Duration::seconds(8);
    /// AcuteMon-style mitigation: warm up before each probe and keep the
    /// radio in CELL_DCH with periodic keep-alives.
    bool keep_awake = false;
    /// Keep-alive cadence; must be below the DCH inactivity timer.
    sim::Duration keepalive_interval = sim::Duration::seconds(2);
    std::uint32_t probe_bytes = 400;  // above the FACH threshold
    std::uint64_t seed = 42;
  };

  /// Runs the session to completion; returns per-probe RTTs (ms).
  [[nodiscard]] static std::vector<double> run(const Spec& spec);
};

}  // namespace acute::cellular
