#include "stats/cdf.hpp"

#include <algorithm>
#include <cmath>

#include "sim/contracts.hpp"

namespace acute::stats {

using sim::expects;

Cdf::Cdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  expects(!sorted_.empty(), "Cdf requires a non-empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return double(it - sorted_.begin()) / double(sorted_.size());
}

double Cdf::quantile(double q) const {
  expects(q > 0.0 && q <= 1.0, "Cdf::quantile requires q in (0, 1]");
  const auto n = sorted_.size();
  const auto index =
      static_cast<std::size_t>(std::ceil(q * double(n))) - std::size_t{1};
  return sorted_[std::min(index, n - 1)];
}

std::vector<Cdf::Point> Cdf::curve(std::size_t points) const {
  expects(points >= 2, "Cdf::curve requires at least 2 points");
  std::vector<Point> out;
  out.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * double(i) / double(points - 1);
    out.push_back(Point{x, at(x)});
  }
  return out;
}

double Cdf::ks_distance(const Cdf& a, const Cdf& b) {
  double d = 0;
  for (const double x : a.sorted_) {
    d = std::max(d, std::abs(a.at(x) - b.at(x)));
  }
  for (const double x : b.sorted_) {
    d = std::max(d, std::abs(a.at(x) - b.at(x)));
  }
  return d;
}

}  // namespace acute::stats
