#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/contracts.hpp"

namespace acute::stats {

using sim::expects;

Summary::Summary(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  expects(!sorted_.empty(), "Summary requires a non-empty sample");
  std::sort(sorted_.begin(), sorted_.end());

  double sum = 0;
  for (const double x : sorted_) sum += x;
  mean_ = sum / double(sorted_.size());

  if (sorted_.size() > 1) {
    double ss = 0;
    for (const double x : sorted_) {
      const double d = x - mean_;
      ss += d * d;
    }
    stddev_ = std::sqrt(ss / double(sorted_.size() - 1));
    sem_ = stddev_ / std::sqrt(double(sorted_.size()));
    ci95_ = sem_ * student_t_975(sorted_.size() - 1);
  }
}

double Summary::percentile(double p) const {
  expects(p >= 0.0 && p <= 100.0, "percentile requires p in [0, 100]");
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = p / 100.0 * double(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - double(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

std::string Summary::mean_ci_string(int precision) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << mean_ << " ±" << ci95_;
  return os.str();
}

double student_t_975(std::size_t df) {
  // Two-sided 95% critical values; beyond df=120 the normal limit applies.
  struct Row {
    std::size_t df;
    double t;
  };
  static constexpr Row table[] = {
      {1, 12.706}, {2, 4.303}, {3, 3.182},  {4, 2.776},  {5, 2.571},
      {6, 2.447},  {7, 2.365}, {8, 2.306},  {9, 2.262},  {10, 2.228},
      {12, 2.179}, {15, 2.131}, {20, 2.086}, {25, 2.060}, {30, 2.042},
      {40, 2.021}, {60, 2.000}, {80, 1.990}, {100, 1.984}, {120, 1.980},
  };
  expects(df >= 1, "student_t_975 requires df >= 1");
  if (df >= 120) return 1.960;
  const Row* prev = &table[0];
  for (const Row& row : table) {
    if (row.df == df) return row.t;
    if (row.df > df) {
      // Interpolate in 1/df, which is nearly linear for t quantiles.
      const double x = 1.0 / double(df);
      const double x0 = 1.0 / double(prev->df);
      const double x1 = 1.0 / double(row.df);
      const double w = (x - x0) / (x1 - x0);
      return prev->t + w * (row.t - prev->t);
    }
    prev = &row;
  }
  return 1.960;
}

}  // namespace acute::stats
