// Descriptive statistics used throughout the evaluation: mean with 95%
// confidence interval (Student-t, as the paper's "mean with 95% confidence
// interval" tables), median, arbitrary percentiles, and dispersion.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace acute::stats {

/// Immutable summary of a sample of doubles.
class Summary {
 public:
  /// Computes the summary of `sample` (which may be unsorted, and is copied).
  /// Requires a non-empty sample.
  explicit Summary(std::span<const double> sample);

  [[nodiscard]] std::size_t count() const { return sorted_.size(); }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double stddev() const { return stddev_; }
  /// Standard error of the mean.
  [[nodiscard]] double sem() const { return sem_; }
  /// Half-width of the 95% confidence interval of the mean (Student-t).
  [[nodiscard]] double ci95_half_width() const { return ci95_; }
  [[nodiscard]] double min() const { return sorted_.front(); }
  [[nodiscard]] double max() const { return sorted_.back(); }
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Linear-interpolation percentile (R type-7), p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  /// The sample, sorted ascending.
  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }

  /// Renders "mean ±ci95" with the given precision, e.g. "33.16 ±0.96".
  [[nodiscard]] std::string mean_ci_string(int precision = 2) const;

 private:
  std::vector<double> sorted_;
  double mean_ = 0;
  double stddev_ = 0;
  double sem_ = 0;
  double ci95_ = 0;
};

/// 97.5% quantile of the Student-t distribution with `df` degrees of freedom
/// (the multiplier for a two-sided 95% CI). Interpolated from a fixed table;
/// exact enough for reporting (error < 0.5%).
[[nodiscard]] double student_t_975(std::size_t df);

}  // namespace acute::stats
