// Bounded-memory streaming quantile digest (t-digest family).
//
// The campaign engine's streaming merge folds every shard's samples into
// one of these instead of buffering raw vectors: memory per digest is
// O(compression) regardless of how many samples are added, accuracy is
// highest at the tails (the quantiles the paper reports), and two digests
// merge associatively, so per-shard digests folded in scenario-index order
// give a deterministic campaign-wide distribution for any worker count.
//
// Deterministic by construction: no randomness anywhere — compression uses
// a stable sort and a fixed scale function, so the resulting centroids are
// a pure function of the insertion sequence, and the insertion sequence in
// a campaign is a pure function of (spec, seed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace acute::stats {

/// Exact structural state of a MergingDigest, for checkpoint serialization:
/// restoring a snapshot yields a digest whose observable state AND whose
/// behavior under further merge()s is bit-identical to the source (the
/// campaign resume contract). Centroids are {mean, weight} in ascending-mean
/// order, already under the k1 compaction bound.
struct DigestSnapshot {
  std::size_t compression = 0;
  std::uint64_t count = 0;
  double sum = 0;
  double sum_sq = 0;
  double min = 0;
  double max = 0;
  std::vector<std::pair<double, double>> centroids;
};

/// Mergeable t-digest using the k1 (arcsine) scale function: each centroid
/// spans at most one unit of k(q) = (compression/2π)·asin(2q−1), so the
/// compacted centroid count is bounded by compression+1 for ANY number of
/// samples, while the distribution tails keep sample-sized centroids.
/// count/sum/min/max are tracked exactly.
class MergingDigest {
 public:
  /// Default compression: ~128 centroids ≈ <1% quantile error mid-range,
  /// exact extremes; 3 KiB per digest.
  static constexpr std::size_t kDefaultCompression = 128;

  explicit MergingDigest(std::size_t compression = kDefaultCompression);

  /// Adds one sample. Amortized O(1); triggers a compaction every
  /// 4*compression samples.
  void add(double x);

  /// Folds `other` into this digest. Equivalent (within the digest's
  /// accuracy) to having added other's samples; deterministic given the
  /// merge order.
  void merge(const MergingDigest& other);

  /// Consuming merge: bit-identical observable result to merge(const&), but
  /// when this digest is still empty (the first shard folded into a
  /// campaign-level slot) it adopts other's compacted centroid storage and
  /// insert buffer wholesale instead of copying them. Buffer capacities are
  /// preserved exactly, so compaction triggers at the same sample counts —
  /// the t-digest bit-identity contract is untouched. `other` is left
  /// empty-but-valid.
  void merge(MergingDigest&& other);

  /// Number of samples added (exact).
  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// True when no sample has been added.
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Mean of all samples (exact: tracked as a running sum).
  [[nodiscard]] double mean() const;
  /// Sample (n-1) standard deviation, from an exactly-tracked sum of
  /// squares (fine at millisecond scale; not Welford-grade for values with
  /// huge mean/variance ratios). 0 for fewer than two samples.
  [[nodiscard]] double stddev() const;
  /// Smallest / largest sample (exact). Require a non-empty digest.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Approximate quantile, q in [0, 1]; q=0/1 return the exact extremes.
  /// Requires a non-empty digest.
  [[nodiscard]] double quantile(double q) const;

  /// Approximate CDF: fraction of samples <= x.
  [[nodiscard]] double cdf(double x) const;

  /// Centroids currently held (<= max_centroids() after any compaction;
  /// the memory-bound tests assert on this).
  [[nodiscard]] std::size_t centroid_count() const;
  /// Hard ceiling on centroid_count() after compaction, for any sample
  /// count: the k1 bound yields at most compression+1 centroids; 2x is a
  /// comfortable structural margin.
  [[nodiscard]] std::size_t max_centroids() const { return 2 * compression_; }

  /// The compression parameter this digest was built with.
  [[nodiscard]] std::size_t compression() const { return compression_; }

  /// Exact serializable state (compacts first, so the snapshot is canonical:
  /// snapshotting twice, or snapshotting a restored digest, is idempotent).
  [[nodiscard]] DigestSnapshot snapshot() const;
  /// Rebuilds a digest from snapshot(); bit-identical observable state.
  /// Contract violation on structurally invalid snapshots (compression < 8,
  /// unsorted or non-positive-weight centroids, weight/count mismatch).
  [[nodiscard]] static MergingDigest from_snapshot(const DigestSnapshot& snap);

 private:
  struct Centroid {
    double mean = 0;
    double weight = 0;
  };

  /// Merges buffered samples into the centroid list (stable sort + single
  /// merge pass under the k2 weight bound).
  void compress() const;

  std::size_t compression_;
  // Logically const accessors (quantile/cdf/centroid_count) must flush the
  // insert buffer first; both stores are cache, not observable state.
  mutable std::vector<Centroid> centroids_;  // sorted by mean once compressed
  mutable std::vector<double> buffer_;
  mutable bool compacted_ = true;  // centroids_ already under the k2 bound
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace acute::stats
