// Box-and-whisker statistics matching the paper's plots (§3.1): the box spans
// the 25th-75th percentiles with the median marked; whiskers extend to the
// most extreme samples within 1.5 IQR of the box; everything beyond is an
// outlier.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace acute::stats {

struct BoxPlot {
  double median = 0;
  double q1 = 0;
  double q3 = 0;
  double whisker_low = 0;
  double whisker_high = 0;
  std::vector<double> outliers;

  /// Inter-quartile range.
  [[nodiscard]] double iqr() const { return q3 - q1; }

  /// Computes box statistics for a non-empty sample.
  [[nodiscard]] static BoxPlot from_sample(std::span<const double> sample);

  /// One-line rendering: "med=1.23 box=[0.9,1.6] whisk=[0.2,2.4] out=3".
  [[nodiscard]] std::string to_string(int precision = 2) const;
};

}  // namespace acute::stats
