// Exact text serialization of MergingDigest, for campaign checkpoints.
//
// Doubles round-trip as IEEE-754 bit patterns (16 hex digits), never as
// decimal: a checkpointed digest must restore to the bit-identical state, or
// a resumed campaign's merged quantiles would drift from the uninterrupted
// run's. The encoding is a flat space-separated token stream, so digests
// embed directly into larger line-oriented records (checkpoint files).
#pragma once

#include <cstdint>
#include <iosfwd>

#include "stats/digest.hpp"

namespace acute::stats {

/// The IEEE-754 bit pattern of `x` (and back). memcpy-based, so NaNs and
/// signed zeros survive unchanged.
[[nodiscard]] std::uint64_t double_bits(double x);
[[nodiscard]] double double_from_bits(std::uint64_t bits);

/// Writes `digest` as tokens:
///   dgst <compression> <count> <sum> <sum_sq> <min> <max> <n> <mean>
///   <weight> ...
/// Integers are decimal; doubles are 16-hex-digit bit patterns. No trailing
/// separator — callers embedding a digest mid-line add their own.
void write_digest(std::ostream& out, const MergingDigest& digest);

/// Parses write_digest()'s token stream from `in`. Throws
/// sim::ContractViolation on malformed input (bad magic, short read,
/// structurally invalid snapshot).
[[nodiscard]] MergingDigest read_digest(std::istream& in);

}  // namespace acute::stats
