#include "stats/digest.hpp"

#include <algorithm>
#include <cmath>

#include "sim/contracts.hpp"

namespace acute::stats {

using sim::expects;

MergingDigest::MergingDigest(std::size_t compression)
    : compression_(compression) {
  expects(compression_ >= 8, "MergingDigest compression must be >= 8");
  buffer_.reserve(4 * compression_);
}

void MergingDigest::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
  buffer_.push_back(x);
  if (buffer_.size() >= 4 * compression_) compress();
}

void MergingDigest::merge(const MergingDigest& other) {
  if (other.count_ == 0) return;
  if (&other == this) {
    // Self-merge doubles every sample; copy first so the centroid insert
    // below never reads a range it is reallocating.
    const MergingDigest copy = other;
    merge(copy);
    return;
  }
  other.compress();
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  // Fold the other digest's centroids in as weighted points; the single
  // compress() below sorts them together with our centroids and any
  // buffered samples, re-applying the size bound over the whole union.
  centroids_.insert(centroids_.end(), other.centroids_.begin(),
                    other.centroids_.end());
  compacted_ = false;
  compress();
}

void MergingDigest::merge(MergingDigest&& other) {
  if (&other == this) {
    merge(static_cast<const MergingDigest&>(other));
    return;
  }
  if (count_ != 0 || compression_ != other.compression_) {
    // Non-empty target (or mismatched scale): the copy-free fast path below
    // would change which centroid list seeds the union, so fall back to the
    // copying merge and only salvage other's storage afterwards.
    merge(static_cast<const MergingDigest&>(other));
  } else if (other.count_ != 0) {
    // Adopt-after-compress: merge(const&) into an empty digest compresses
    // `other`, copies its (already k1-bound) centroids, and re-runs
    // compress() — which is a no-op on an already-compacted list. Adopting
    // the compacted storage wholesale is therefore bit-identical, and the
    // moved vectors keep their capacities (buffer_ stays at 4*compression),
    // so later compaction triggers at exactly the same sample counts.
    other.compress();
    centroids_ = std::move(other.centroids_);
    buffer_ = std::move(other.buffer_);
    compacted_ = true;
    count_ = other.count_;
    sum_ = other.sum_;
    sum_sq_ = other.sum_sq_;
    min_ = other.min_;
    max_ = other.max_;
  }
  // Leave `other` empty-but-valid with released heap storage either way —
  // the frontier fold relies on the donor shrinking to its footprint floor.
  other.centroids_ = {};
  other.buffer_ = {};
  other.compacted_ = true;
  other.count_ = 0;
  other.sum_ = 0;
  other.sum_sq_ = 0;
  other.min_ = 0;
  other.max_ = 0;
}

void MergingDigest::compress() const {
  if (buffer_.empty() && compacted_) return;
  compacted_ = true;
  std::vector<Centroid> points;
  points.reserve(centroids_.size() + buffer_.size());
  points.insert(points.end(), centroids_.begin(), centroids_.end());
  for (const double x : buffer_) points.push_back(Centroid{x, 1});
  buffer_.clear();
  if (points.empty()) {
    centroids_.clear();
    return;
  }
  // Stable sort keeps equal-mean points in insertion order: the compaction
  // result is a pure function of the insertion sequence.
  std::stable_sort(points.begin(), points.end(),
                   [](const Centroid& a, const Centroid& b) {
                     return a.mean < b.mean;
                   });
  double total = 0;
  for (const Centroid& p : points) total += p.weight;

  // k1 scale function (Dunning's merging t-digest): a centroid may span at
  // most one unit of k(q) = (δ/2π)·asin(2q−1). The full k range is δ/2 and
  // closing a centroid means extending it would overflow its unit, so the
  // compacted list holds at most δ+1 centroids — the structural bound
  // max_centroids() advertises (with margin). asin's steep ends give the
  // distribution tails sample-sized centroids.
  const double k_scale =
      static_cast<double>(compression_) / (2.0 * 3.141592653589793);
  const auto k_of = [&](double q) {
    return k_scale * std::asin(std::clamp(2.0 * q - 1.0, -1.0, 1.0));
  };

  std::vector<Centroid> merged;
  merged.reserve(compression_ + 8);
  Centroid current = points.front();
  double weight_before = 0;  // total weight strictly left of `current`
  for (std::size_t i = 1; i < points.size(); ++i) {
    const Centroid& next = points[i];
    const double proposed = current.weight + next.weight;
    const double k_left = k_of(weight_before / total);
    const double k_right = k_of((weight_before + proposed) / total);
    if (k_right - k_left <= 1.0) {
      // Weighted average; weights are sample counts, so this is the exact
      // mean of the union.
      current.mean =
          (current.mean * current.weight + next.mean * next.weight) /
          proposed;
      current.weight = proposed;
    } else {
      weight_before += current.weight;
      merged.push_back(current);
      current = next;
    }
  }
  merged.push_back(current);
  centroids_ = std::move(merged);
}

DigestSnapshot MergingDigest::snapshot() const {
  compress();
  DigestSnapshot snap;
  snap.compression = compression_;
  snap.count = count_;
  snap.sum = sum_;
  snap.sum_sq = sum_sq_;
  snap.min = min_;
  snap.max = max_;
  snap.centroids.reserve(centroids_.size());
  for (const Centroid& c : centroids_) {
    snap.centroids.emplace_back(c.mean, c.weight);
  }
  return snap;
}

MergingDigest MergingDigest::from_snapshot(const DigestSnapshot& snap) {
  MergingDigest digest(snap.compression);
  double total_weight = 0;
  double prev_mean = 0;
  for (std::size_t i = 0; i < snap.centroids.size(); ++i) {
    const auto& [mean, weight] = snap.centroids[i];
    expects(weight > 0, "DigestSnapshot centroid weights must be positive");
    expects(i == 0 || mean >= prev_mean,
            "DigestSnapshot centroids must be in ascending-mean order");
    prev_mean = mean;
    total_weight += weight;
    digest.centroids_.push_back(Centroid{mean, weight});
  }
  // Weights are sample counts (integers held in doubles): the sum is exact
  // below 2^53 samples, so equality is the right check.
  expects(total_weight == static_cast<double>(snap.count),
          "DigestSnapshot centroid weights must sum to count");
  digest.count_ = snap.count;
  digest.sum_ = snap.sum;
  digest.sum_sq_ = snap.sum_sq;
  digest.min_ = snap.min;
  digest.max_ = snap.max;
  // snapshot() compacts before exporting, so the restored centroid list is
  // already under the k1 bound: mark it clean so a later merge() sees the
  // same centroid state the source digest would have presented.
  digest.compacted_ = true;
  return digest;
}

double MergingDigest::mean() const {
  expects(count_ > 0, "MergingDigest::mean on an empty digest");
  return sum_ / static_cast<double>(count_);
}

double MergingDigest::stddev() const {
  if (count_ < 2) return 0;
  const double n = static_cast<double>(count_);
  const double variance =
      std::max(0.0, (sum_sq_ - sum_ * sum_ / n) / (n - 1));
  return std::sqrt(variance);
}

double MergingDigest::min() const {
  expects(count_ > 0, "MergingDigest::min on an empty digest");
  return min_;
}

double MergingDigest::max() const {
  expects(count_ > 0, "MergingDigest::max on an empty digest");
  return max_;
}

std::size_t MergingDigest::centroid_count() const {
  compress();
  return centroids_.size();
}

double MergingDigest::quantile(double q) const {
  expects(count_ > 0, "MergingDigest::quantile on an empty digest");
  expects(q >= 0.0 && q <= 1.0, "MergingDigest::quantile requires q in [0,1]");
  compress();
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  // Walk centroids treating each as centred at its midpoint; interpolate
  // linearly between adjacent centroid means, clamped by the exact extremes.
  double cumulative = 0;
  for (std::size_t i = 0; i < centroids_.size(); ++i) {
    const Centroid& c = centroids_[i];
    const double center = cumulative + c.weight / 2;
    if (target <= center) {
      if (i == 0) {
        const double span = center;  // from min_ (rank 0) to first center
        const double t = span > 0 ? target / span : 1.0;
        return min_ + t * (c.mean - min_);
      }
      const Centroid& prev = centroids_[i - 1];
      const double prev_center = cumulative - prev.weight / 2;
      const double t = (target - prev_center) / (center - prev_center);
      return prev.mean + t * (c.mean - prev.mean);
    }
    cumulative += c.weight;
  }
  const Centroid& last = centroids_.back();
  const double last_center =
      static_cast<double>(count_) - last.weight / 2;
  const double span = static_cast<double>(count_) - last_center;
  const double t = span > 0 ? (target - last_center) / span : 1.0;
  return last.mean + t * (max_ - last.mean);
}

double MergingDigest::cdf(double x) const {
  if (count_ == 0) return 0;
  compress();
  if (x < min_) return 0;
  if (x >= max_) return 1;
  double cumulative = 0;
  double prev_mean = min_;
  double prev_center = 0;
  for (const Centroid& c : centroids_) {
    const double center = cumulative + c.weight / 2;
    if (x < c.mean) {
      const double span = c.mean - prev_mean;
      const double t = span > 0 ? (x - prev_mean) / span : 1.0;
      return (prev_center + t * (center - prev_center)) /
             static_cast<double>(count_);
    }
    cumulative += c.weight;
    prev_mean = c.mean;
    prev_center = center;
  }
  const double span = max_ - prev_mean;
  const double t = span > 0 ? (x - prev_mean) / span : 1.0;
  return (prev_center + t * (static_cast<double>(count_) - prev_center)) /
         static_cast<double>(count_);
}

}  // namespace acute::stats
