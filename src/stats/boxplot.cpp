#include "stats/boxplot.hpp"

#include <sstream>

#include "stats/summary.hpp"

namespace acute::stats {

BoxPlot BoxPlot::from_sample(std::span<const double> sample) {
  const Summary summary(sample);
  BoxPlot box;
  box.q1 = summary.percentile(25.0);
  box.median = summary.percentile(50.0);
  box.q3 = summary.percentile(75.0);

  const double fence_low = box.q1 - 1.5 * box.iqr();
  const double fence_high = box.q3 + 1.5 * box.iqr();

  // Whiskers reach the most extreme samples inside the fences.
  box.whisker_low = box.q3;
  box.whisker_high = box.q1;
  bool any_inside = false;
  for (const double x : summary.sorted()) {
    if (x < fence_low || x > fence_high) {
      box.outliers.push_back(x);
      continue;
    }
    if (!any_inside) {
      box.whisker_low = x;
      any_inside = true;
    }
    box.whisker_high = x;
  }
  if (!any_inside) {
    // Degenerate: every sample is an outlier (IQR == 0 with far points).
    box.whisker_low = box.q1;
    box.whisker_high = box.q3;
  }
  return box;
}

std::string BoxPlot::to_string(int precision) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << "med=" << median << " box=[" << q1 << "," << q3 << "] whisk=["
     << whisker_low << "," << whisker_high << "] out=" << outliers.size();
  return os.str();
}

}  // namespace acute::stats
