// Empirical CDF (for the paper's Figures 8 and 9) plus the two-sample
// Kolmogorov-Smirnov distance used by tests to assert that two distributions
// are close (Fig. 9: background traffic does not perturb the measurement).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace acute::stats {

class Cdf {
 public:
  /// Builds the ECDF of a non-empty sample.
  explicit Cdf(std::span<const double> sample);

  /// F(x): fraction of samples <= x.
  [[nodiscard]] double at(double x) const;

  /// Inverse CDF: the smallest sample value v with F(v) >= q, q in (0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t count() const { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }

  /// Evenly spaced (x, F(x)) points for plotting/printing.
  struct Point {
    double x;
    double f;
  };
  [[nodiscard]] std::vector<Point> curve(std::size_t points = 20) const;

  /// Two-sample Kolmogorov-Smirnov statistic: sup_x |F_a(x) - F_b(x)|.
  [[nodiscard]] static double ks_distance(const Cdf& a, const Cdf& b);

 private:
  std::vector<double> sorted_;
};

}  // namespace acute::stats
