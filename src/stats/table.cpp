#include "stats/table.hpp"

#include <algorithm>
#include <sstream>

#include "sim/contracts.hpp"

namespace acute::stats {

using sim::expects;

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  expects(!headers_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  expects(cells.size() == headers_.size(),
          "Table row width must match the header count");
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << " | ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace acute::stats
