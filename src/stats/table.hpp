// Fixed-width ASCII table rendering for the bench binaries, which print the
// paper's tables side by side with our measured values.
#pragma once

#include <string>
#include <vector>

namespace acute::stats {

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience for building a row from doubles with fixed precision.
  [[nodiscard]] static std::string cell(double value, int precision = 2);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with a header rule, e.g.
  ///   col_a | col_b
  ///   ------+------
  ///   1.00  | 2.00
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace acute::stats
