#include "stats/digest_io.hpp"

#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include "sim/contracts.hpp"

namespace acute::stats {

using sim::expects;

std::uint64_t double_bits(double x) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof x);
  std::memcpy(&bits, &x, sizeof bits);
  return bits;
}

double double_from_bits(std::uint64_t bits) {
  double x = 0;
  std::memcpy(&x, &bits, sizeof x);
  return x;
}

namespace {

void write_double(std::ostream& out, double x) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(double_bits(x)));
  out << hex;
}

std::uint64_t read_u64(std::istream& in, const char* what) {
  std::uint64_t value = 0;
  in >> value;
  expects(static_cast<bool>(in), what);
  return value;
}

double read_double(std::istream& in) {
  std::string token;
  in >> token;
  expects(token.size() == 16, "digest_io: malformed double bit pattern");
  char* end = nullptr;
  const std::uint64_t bits = std::strtoull(token.c_str(), &end, 16);
  expects(end == token.c_str() + token.size(),
          "digest_io: malformed double bit pattern");
  return double_from_bits(bits);
}

}  // namespace

void write_digest(std::ostream& out, const MergingDigest& digest) {
  const DigestSnapshot snap = digest.snapshot();
  out << "dgst " << snap.compression << ' ' << snap.count << ' ';
  write_double(out, snap.sum);
  out << ' ';
  write_double(out, snap.sum_sq);
  out << ' ';
  write_double(out, snap.min);
  out << ' ';
  write_double(out, snap.max);
  out << ' ' << snap.centroids.size();
  for (const auto& [mean, weight] : snap.centroids) {
    out << ' ';
    write_double(out, mean);
    out << ' ';
    write_double(out, weight);
  }
}

MergingDigest read_digest(std::istream& in) {
  std::string magic;
  in >> magic;
  expects(magic == "dgst", "digest_io: missing digest magic");
  DigestSnapshot snap;
  snap.compression =
      static_cast<std::size_t>(read_u64(in, "digest_io: short compression"));
  snap.count = read_u64(in, "digest_io: short count");
  snap.sum = read_double(in);
  snap.sum_sq = read_double(in);
  snap.min = read_double(in);
  snap.max = read_double(in);
  const std::uint64_t centroid_count =
      read_u64(in, "digest_io: short centroid count");
  snap.centroids.reserve(centroid_count);
  for (std::uint64_t i = 0; i < centroid_count; ++i) {
    const double mean = read_double(in);
    const double weight = read_double(in);
    snap.centroids.emplace_back(mean, weight);
  }
  return MergingDigest::from_snapshot(snap);
}

}  // namespace acute::stats
