// Black-box timeout inference, exercised against synthetic oracles (fast,
// exact) — the full-testbed inference is covered by the Table 4 bench and
// the integration tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/timeout_prober.hpp"
#include "sim/contracts.hpp"
#include "sim/random.hpp"
#include "wifi/constants.hpp"

namespace acute::core {
namespace {

using sim::Duration;

TimeoutProber::Config fast_config() {
  TimeoutProber::Config config;
  config.min = Duration::millis(10);
  config.max = Duration::millis(600);
  config.resolution = Duration::millis(5);
  config.probes_per_point = 9;
  return config;
}

/// Oracle for a phone with the given Tip: paths longer than Tip return
/// beacon-inflated RTTs, shorter ones return the RTT plus small noise.
TimeoutProber::RttProbeFn psm_oracle(double tip_ms, double wake_ms = 10.0) {
  return [tip_ms, wake_ms](Duration rtt, int n) {
    // fork() decorrelates streams built from nearby integer seeds.
    sim::Rng rng = sim::Rng(std::llround(rtt.to_ms())).fork("psm-oracle");
    std::vector<double> rtts;
    for (int i = 0; i < n; ++i) {
      double value = rtt.to_ms() + wake_ms + rng.uniform(0.0, 2.0);
      if (rtt.to_ms() > tip_ms) {
        // PSM buffering: wait for a beacon, median ~half an interval.
        value += rng.uniform(0.2, 0.8) * wifi::beacon_interval().to_ms();
      }
      rtts.push_back(value);
    }
    return rtts;
  };
}

TEST(TimeoutProber, InfersPsmTimeoutWithinResolution) {
  for (const double tip : {40.0, 205.0, 400.0}) {
    const Duration inferred =
        TimeoutProber::infer_psm_timeout(psm_oracle(tip), fast_config());
    EXPECT_NEAR(inferred.to_ms(), tip, 7.5) << "tip=" << tip;
  }
}

TEST(TimeoutProber, PsmBoundaryCases) {
  // Always inflated -> returns the lower bound.
  const Duration low =
      TimeoutProber::infer_psm_timeout(psm_oracle(1.0), fast_config());
  EXPECT_EQ(low, fast_config().min);
  // Never inflated -> returns the upper bound.
  const Duration high =
      TimeoutProber::infer_psm_timeout(psm_oracle(10'000.0), fast_config());
  EXPECT_EQ(high, fast_config().max);
}

TEST(TimeoutProber, PsmRobustToBusWakeInflation) {
  // A Broadcom-sized bus wake (~22 ms) must not read as PSM inflation.
  const Duration inferred = TimeoutProber::infer_psm_timeout(
      psm_oracle(205.0, 22.0), fast_config());
  EXPECT_NEAR(inferred.to_ms(), 205.0, 7.5);
}

/// Oracle for the bus-sleep sweep: gaps longer than Tis pay the wake.
TimeoutProber::GapProbeFn bus_oracle(double tis_ms, double wake_ms = 10.0) {
  return [tis_ms, wake_ms](Duration gap, int n) {
    sim::Rng rng = sim::Rng(std::llround(gap.to_ms())).fork("bus-oracle");
    std::vector<double> rtts;
    for (int i = 0; i < n; ++i) {
      double value = 5.0 + rng.uniform(0.0, 0.5);
      if (gap.to_ms() > tis_ms) value += wake_ms + rng.uniform(-1.0, 1.0);
      rtts.push_back(value);
    }
    return rtts;
  };
}

TEST(TimeoutProber, InfersBusSleepTimeout) {
  for (const double tis : {50.0, 120.0}) {
    const Duration inferred =
        TimeoutProber::infer_bus_sleep_timeout(bus_oracle(tis), fast_config());
    EXPECT_NEAR(inferred.to_ms(), tis, 7.5) << "tis=" << tis;
  }
}

TEST(TimeoutProber, BusSleepSmallWakeStillDetected) {
  // Qualcomm-sized wake (~4.5 ms) is above the 2.5 ms detection threshold.
  const Duration inferred = TimeoutProber::infer_bus_sleep_timeout(
      bus_oracle(50.0, 4.5), fast_config());
  EXPECT_NEAR(inferred.to_ms(), 50.0, 7.5);
}

TEST(TimeoutProber, BusSleepNeverInflatedReturnsMax) {
  const Duration inferred = TimeoutProber::infer_bus_sleep_timeout(
      bus_oracle(10'000.0), fast_config());
  EXPECT_EQ(inferred, fast_config().max);
}

TEST(TimeoutProber, ListenIntervalFromPsmDelays) {
  // All delays below one beacon interval -> L = 0.
  EXPECT_EQ(TimeoutProber::infer_actual_listen_interval(
                {10.0, 50.0, 95.0, 101.0}),
            0);
  // Delays spanning up to two intervals -> L = 1.
  std::vector<double> two_cycles;
  for (int i = 0; i < 20; ++i) two_cycles.push_back(10.0 + i * 10.0);
  EXPECT_EQ(TimeoutProber::infer_actual_listen_interval(two_cycles), 1);
}

TEST(TimeoutProber, ListenIntervalRobustToOccasionalMiss) {
  // 85% of waits within one cycle, 15% in the second (missed TIMs): the
  // P80-based estimate still reports L = 0.
  std::vector<double> delays;
  for (int i = 0; i < 85; ++i) delays.push_back(5.0 + i);  // <= 90 ms
  for (int i = 0; i < 15; ++i) delays.push_back(110.0 + i);
  EXPECT_EQ(TimeoutProber::infer_actual_listen_interval(delays), 0);
}

TEST(TimeoutProber, ContractChecks) {
  EXPECT_THROW((void)TimeoutProber::infer_psm_timeout(nullptr, fast_config()),
               sim::ContractViolation);
  TimeoutProber::Config bad = fast_config();
  bad.min = bad.max;
  EXPECT_THROW(
      (void)TimeoutProber::infer_psm_timeout(psm_oracle(100.0), bad),
      sim::ContractViolation);
  EXPECT_THROW((void)TimeoutProber::infer_actual_listen_interval({}),
               sim::ContractViolation);
}

}  // namespace
}  // namespace acute::core
