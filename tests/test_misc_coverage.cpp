// Cross-cutting coverage: logging, ICMP time-exceeded generation, failure
// injection (loss during AcuteMon), and per-handset property sweeps of the
// fast-interval baseline (Fig. 3's 10 ms rows).
#include <gtest/gtest.h>

#include <sstream>

#include "core/acutemon.hpp"
#include "sim/logging.hpp"
#include "stats/summary.hpp"
#include "testbed/experiment.hpp"
#include "testbed/testbed.hpp"

namespace acute {
namespace {

using namespace acute::sim::literals;
using sim::Duration;

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(sim::Log::level()) {}
  ~LogLevelGuard() { sim::Log::set_level(saved_); }

 private:
  sim::LogLevel saved_;
};

TEST(Logging, LevelGatesEmission) {
  LogLevelGuard guard;
  sim::Log::set_level(sim::LogLevel::warn);
  EXPECT_FALSE(sim::Log::enabled(sim::LogLevel::debug));
  EXPECT_TRUE(sim::Log::enabled(sim::LogLevel::warn));
  sim::Log::set_level(sim::LogLevel::debug);
  EXPECT_TRUE(sim::Log::enabled(sim::LogLevel::debug));
  sim::Log::set_level(sim::LogLevel::off);
  EXPECT_FALSE(sim::Log::enabled(sim::LogLevel::warn));
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(sim::to_string(sim::LogLevel::debug), "DEBUG");
  EXPECT_STREQ(sim::to_string(sim::LogLevel::info), "INFO");
  EXPECT_STREQ(sim::to_string(sim::LogLevel::warn), "WARN");
}

TEST(Logging, LoggerFormatsComponent) {
  LogLevelGuard guard;
  sim::Log::set_level(sim::LogLevel::off);  // exercise the early-out path
  const sim::Logger logger("sdio-bus");
  logger.debug(sim::TimePoint::epoch(), "state=", 1, " wake=", 2.5, "ms");
  EXPECT_EQ(logger.component(), "sdio-bus");
}

TEST(AccessPointTtl, TimeExceededRepliesWhenEnabled) {
  testbed::TestbedConfig config;
  config.send_ttl_exceeded = true;
  testbed::Testbed testbed(config);
  testbed.phone().set_system_traffic_enabled(false);
  testbed.settle(500_ms);

  // An app listening on the warm-up flow sees the gateway's ICMP error.
  std::vector<net::Packet> received;
  const std::uint32_t flow = testbed.phone().allocate_flow_id();
  testbed.phone().register_flow(
      flow, [&](const net::Packet& pkt) { received.push_back(pkt); });
  net::Packet warmup =
      net::Packet::make(net::PacketType::udp_warmup, net::Protocol::udp, 0,
                        testbed::Testbed::kServerId,
                        net::packet_size::udp_small);
  warmup.ttl = 1;
  warmup.flow_id = flow;
  testbed.phone().send(std::move(warmup), phone::ExecMode::native_c);
  testbed.settle(50_ms);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].type, net::PacketType::icmp_time_exceeded);
  EXPECT_EQ(received[0].src, testbed::Testbed::kApId);
}

TEST(AccessPointTtl, SilentDropByDefault) {
  testbed::Testbed testbed;
  testbed.phone().set_system_traffic_enabled(false);
  testbed.settle(500_ms);
  std::vector<net::Packet> received;
  const std::uint32_t flow = testbed.phone().allocate_flow_id();
  testbed.phone().register_flow(
      flow, [&](const net::Packet& pkt) { received.push_back(pkt); });
  net::Packet warmup =
      net::Packet::make(net::PacketType::udp_warmup, net::Protocol::udp, 0,
                        testbed::Testbed::kServerId,
                        net::packet_size::udp_small);
  warmup.ttl = 1;
  warmup.flow_id = flow;
  testbed.phone().send(std::move(warmup), phone::ExecMode::native_c);
  testbed.settle(50_ms);
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(testbed.ap().ttl_drops(), 1u);
}

TEST(FailureInjection, AcuteMonSurvivesPacketLoss) {
  testbed::TestbedConfig config;
  config.emulated_rtt = 30_ms;
  testbed::Testbed testbed(config);
  testbed.server().netem().set_loss(0.2);
  testbed.settle(800_ms);

  tools::MeasurementTool::Config mt;
  mt.probe_count = 50;
  mt.timeout = 300_ms;
  mt.target = testbed::Testbed::kServerId;
  core::AcuteMon monitor(testbed.phone(), mt);
  monitor.start_measurement();
  testbed.run_until_finished(monitor);

  // Losses are recorded as timeouts, the rest measure normally.
  EXPECT_EQ(monitor.result().probes.size(), 50u);
  EXPECT_GT(monitor.result().loss_count(), 2u);
  EXPECT_GT(monitor.result().success_count(), 25u);
  const auto rtts = monitor.result().reported_rtts_ms();
  EXPECT_LT(stats::Summary(rtts).median(), 36.0);  // survivors unaffected
}

TEST(FailureInjection, AcuteMonAllProbesLost) {
  testbed::TestbedConfig config;
  testbed::Testbed testbed(config);
  testbed.server().netem().set_loss(0.99);
  testbed.settle(800_ms);
  tools::MeasurementTool::Config mt;
  mt.probe_count = 8;
  mt.timeout = 100_ms;
  mt.target = testbed::Testbed::kServerId;
  core::AcuteMon monitor(testbed.phone(), mt);
  bool done = false;
  monitor.start_measurement([&](const tools::ToolRun&) { done = true; });
  testbed.run_until_finished(monitor);
  EXPECT_TRUE(done);  // completes via timeouts, never hangs
  EXPECT_GE(monitor.result().loss_count(), 6u);
}

TEST(FailureInjection, LateResponsesAfterTimeoutAreIgnored) {
  // RTT (200 ms) far above the probe timeout (50 ms): every response
  // arrives late and must be discarded without crashing or double-counting.
  testbed::TestbedConfig config;
  config.emulated_rtt = 200_ms;
  testbed::Testbed testbed(config);
  testbed.settle(800_ms);
  tools::MeasurementTool::Config mt;
  mt.probe_count = 10;
  mt.timeout = 50_ms;
  mt.target = testbed::Testbed::kServerId;
  core::AcuteMon monitor(testbed.phone(), mt);
  monitor.start_measurement();
  testbed.run_until_finished(monitor);
  testbed.settle(1_s);  // let the stragglers arrive
  EXPECT_EQ(monitor.result().probes.size(), 10u);
  EXPECT_EQ(monitor.result().loss_count(), 10u);
}

// Property: Fig. 3's 10 ms-interval claim holds on *every* handset — the
// kernel-phy overhead stays below ~4-5 ms when the phone never sleeps.
class FastPingBaseline : public ::testing::TestWithParam<int> {};

TEST_P(FastPingBaseline, KernelPhyOverheadSmallAtFastInterval) {
  const auto profile = phone::PhoneProfile::all()[GetParam()];
  testbed::Experiment::PingSpec spec;
  spec.profile = profile;
  spec.emulated_rtt = 30_ms;
  spec.interval = 10_ms;
  spec.probes = 60;
  spec.seed = 100 + GetParam();
  const auto result = testbed::Experiment::ping(spec);
  const stats::Summary dk_n(result.values(&core::LayerSample::dk_n));
  EXPECT_LT(dk_n.median(), 5.0) << profile.name;
  EXPECT_GE(dk_n.median(), 0.3) << profile.name;
  // And the user-kernel overhead stays within +/-1.5 ms even on slow CPUs.
  const stats::Summary du_k(result.values(&core::LayerSample::du_k));
  EXPECT_LT(du_k.median(), 1.5) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(AllPhones, FastPingBaseline, ::testing::Range(0, 5));

// Property: the slow-interval internal inflation scales with the chipset's
// wake cost — Broadcom handsets inflate more than Qualcomm ones.
TEST(VendorContrast, BroadcomInflatesMoreThanQualcomm) {
  const auto measure = [](const phone::PhoneProfile& profile) {
    testbed::Experiment::PingSpec spec;
    spec.profile = profile;
    spec.emulated_rtt = 30_ms;
    spec.interval = 1_s;
    spec.probes = 60;
    const auto result = testbed::Experiment::ping(spec);
    const stats::Summary du(result.values(&core::LayerSample::du_ms));
    const stats::Summary dn(result.values(&core::LayerSample::dn_ms));
    return du.median() - dn.median();
  };
  const double broadcom = measure(phone::PhoneProfile::nexus5());
  const double qualcomm = measure(phone::PhoneProfile::htc_one());
  EXPECT_GT(broadcom, qualcomm + 4.0);
}

}  // namespace
}  // namespace acute
