// AP + Station power-save machinery: adaptive-PSM doze timing, PM-bit
// tracking, TIM / PS-Poll delivery, buffer flush on wake, gateway TTL.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "wifi/access_point.hpp"
#include "wifi/channel.hpp"
#include "wifi/station.hpp"

namespace acute::wifi {
namespace {

using namespace acute::sim::literals;
using net::Packet;
using net::PacketType;
using net::Protocol;
using sim::Duration;
using sim::Simulator;

constexpr net::NodeId kSta = 1;
constexpr net::NodeId kAp = 2;

class WiredStub : public net::Node {
 public:
  explicit WiredStub(net::NodeId id) : id_(id) {}
  void receive(Packet&& packet, net::Link*) override {
    packets.push_back(std::move(packet));
  }
  [[nodiscard]] net::NodeId id() const override { return id_; }
  std::vector<Packet> packets;

 private:
  net::NodeId id_;
};

struct PsmFixture {
  Simulator sim;
  Channel channel{sim, sim::Rng(7), phy_802_11g()};
  AccessPoint ap;
  Station sta;
  WiredStub wired{3};
  net::Link wired_link{sim, ap, wired, Duration::micros(5), 1e9};
  std::vector<Packet> sta_received;

  explicit PsmFixture(Duration tip = 100_ms, double miss_prob = 0.0)
      : ap(sim, channel, sim::Rng(8), [] {
          AccessPoint::Config config;
          config.id = kAp;
          return config;
        }()),
        sta(sim, channel, sim::Rng(9), [&] {
          Station::Config config;
          config.id = kSta;
          config.ap = kAp;
          config.psm_timeout = tip;
          config.beacon_miss_probability = miss_prob;
          config.associated_listen_interval = 10;
          return config;
        }()) {
    ap.attach_wired(wired_link);
    ap.associate(kSta, 10);
    ap.start_beacons(50_ms);
    sta.set_receiver([this](Packet pkt, const Frame&) {
      sta_received.push_back(std::move(pkt));
    });
  }

  /// Injects a downlink packet as if it came from the wired network.
  void downlink(std::uint32_t size = 200) {
    Packet pkt =
        Packet::make(PacketType::udp_data, Protocol::udp, 99, kSta, size);
    ap.receive(std::move(pkt), nullptr);
  }
};

TEST(Station, StartsInCamAndDozesInQuantizedWindow) {
  PsmFixture f(100_ms);
  EXPECT_EQ(f.sta.power_state(), Station::PowerState::cam);
  // Doze entry lands in [Tip - tick, Tip] (+ null-frame airtime).
  f.sim.run_for(89_ms);
  EXPECT_EQ(f.sta.power_state(), Station::PowerState::cam);
  f.sim.run_for(13_ms);
  EXPECT_EQ(f.sta.power_state(), Station::PowerState::dozing);
  EXPECT_EQ(f.sta.doze_count(), 1u);
}

TEST(Station, SendingResetsTheDozeTimer) {
  PsmFixture f(100_ms);
  // Keep sending every 50 ms: the station must never doze.
  for (int i = 0; i < 10; ++i) {
    f.sim.schedule_in(Duration::millis(50 * i), [&f] {
      f.sta.send(Packet::make(PacketType::udp_data, Protocol::udp, kSta, 99,
                              100));
    });
  }
  f.sim.run_for(540_ms);
  EXPECT_EQ(f.sta.doze_count(), 0u);
  EXPECT_EQ(f.sta.power_state(), Station::PowerState::cam);
}

TEST(Station, SendWakesADozingStation) {
  PsmFixture f(100_ms);
  f.sim.run_for(150_ms);
  ASSERT_EQ(f.sta.power_state(), Station::PowerState::dozing);
  f.sta.send(Packet::make(PacketType::udp_data, Protocol::udp, kSta, 99, 64));
  EXPECT_EQ(f.sta.power_state(), Station::PowerState::cam);
  EXPECT_EQ(f.sta.wake_count(), 1u);
}

TEST(Station, ApTracksPmStateFromFrames) {
  PsmFixture f(100_ms);
  EXPECT_FALSE(f.ap.station_dozing(kSta));
  f.sim.run_for(150_ms);  // null frame with PM=1 reaches the AP
  EXPECT_TRUE(f.ap.station_dozing(kSta));
  f.sta.send(Packet::make(PacketType::udp_data, Protocol::udp, kSta, 99, 64));
  f.sim.run_for(5_ms);  // the PM=0 data frame re-syncs the AP
  EXPECT_FALSE(f.ap.station_dozing(kSta));
}

TEST(AccessPoint, DeliversImmediatelyToAwakeStation) {
  PsmFixture f(500_ms);
  f.downlink();
  f.sim.run_for(10_ms);
  ASSERT_EQ(f.sta_received.size(), 1u);
  EXPECT_EQ(f.ap.buffered_count(kSta), 0u);
}

TEST(AccessPoint, BuffersForDozingStationUntilBeacon) {
  PsmFixture f(100_ms);
  f.sim.run_for(150_ms);
  ASSERT_TRUE(f.ap.station_dozing(kSta));

  f.downlink();
  f.sim.run_for(1_ms);
  EXPECT_EQ(f.ap.buffered_count(kSta), 1u);
  EXPECT_TRUE(f.sta_received.empty());

  // The next beacon carries the TIM; the station PS-Polls and drains.
  f.sim.run_for(beacon_interval() + 10_ms);
  ASSERT_EQ(f.sta_received.size(), 1u);
  EXPECT_EQ(f.ap.buffered_count(kSta), 0u);
  EXPECT_GE(f.sta.ps_polls_sent(), 1u);
  EXPECT_GE(f.ap.ps_polls_served(), 1u);
}

TEST(AccessPoint, PsPollDrainsMultipleBufferedFrames) {
  PsmFixture f(100_ms);
  f.sim.run_for(150_ms);
  ASSERT_TRUE(f.ap.station_dozing(kSta));
  for (int i = 0; i < 3; ++i) f.downlink();
  f.sim.run_for(1_ms);
  EXPECT_EQ(f.ap.buffered_count(kSta), 3u);
  f.sim.run_for(beacon_interval() + 20_ms);
  EXPECT_EQ(f.sta_received.size(), 3u);
  EXPECT_GE(f.sta.ps_polls_sent(), 3u);  // one poll per buffered frame
}

TEST(AccessPoint, ReceivingBufferedDataPromotesToCam) {
  PsmFixture f(200_ms);
  f.sim.run_for(250_ms);  // doze entry lands in [190, 200]
  ASSERT_EQ(f.sta.power_state(), Station::PowerState::dozing);
  f.downlink();
  // Next beacon at ~255 ms delivers; t = 310 ms is well inside the fresh
  // CAM window ([~447, ~457] is the earliest re-doze).
  f.sim.run_for(60_ms);
  ASSERT_EQ(f.sta_received.size(), 1u);
  // Adaptive PSM: traffic re-arms the CAM timer.
  EXPECT_EQ(f.sta.power_state(), Station::PowerState::cam);
  EXPECT_EQ(f.sta.wake_count(), 1u);
}

TEST(AccessPoint, WakeFlushesPsBuffer) {
  PsmFixture f(100_ms);
  f.sim.run_for(150_ms);
  f.downlink();
  f.downlink();
  f.sim.run_for(1_ms);
  EXPECT_EQ(f.ap.buffered_count(kSta), 2u);
  // The station wakes to send; its PM=0 frame makes the AP flush.
  f.sta.send(Packet::make(PacketType::udp_data, Protocol::udp, kSta, 99, 64));
  f.sim.run_for(10_ms);
  EXPECT_EQ(f.sta_received.size(), 2u);
  EXPECT_EQ(f.ap.buffered_count(kSta), 0u);
}

TEST(AccessPoint, PsmDelayIsBoundedByOneListenCycle) {
  PsmFixture f(100_ms);
  f.sim.run_for(150_ms);
  const sim::TimePoint buffered_at = f.sim.now();
  f.downlink();
  f.sim.run_for(beacon_interval() + 20_ms);
  ASSERT_EQ(f.sta_received.size(), 1u);
  const Duration wait = *f.sta_received[0].stamps.air - buffered_at;
  // Actual listen interval 0 and no missed TIMs: at most one beacon cycle.
  EXPECT_LE(wait, beacon_interval() + 5_ms);
  EXPECT_GE(wait, Duration{});
}

TEST(AccessPoint, BeaconsCarryTimOnlyWhenBuffered) {
  PsmFixture f(100_ms);
  std::vector<bool> tim_set;
  // A second, always-awake station observes the beacons.
  Station observer(f.sim, f.channel, sim::Rng(21), [] {
    Station::Config config;
    config.id = 77;
    config.ap = kAp;
    config.psm_enabled = false;
    return config;
  }());
  f.ap.associate(77, 1);
  observer.radio().set_receiver([&](Packet pkt, const Frame&) {
    if (pkt.type == PacketType::wifi_beacon) {
      tim_set.push_back(std::find(pkt.wifi.tim.begin(), pkt.wifi.tim.end(),
                                  kSta) != pkt.wifi.tim.end());
    }
  });
  f.sim.run_for(150_ms);  // STA dozes; first beacon at 50ms has no TIM
  f.downlink();
  f.sim.run_for(beacon_interval() * 2);
  ASSERT_GE(tim_set.size(), 2u);
  EXPECT_FALSE(tim_set.front());  // before anything was buffered
  EXPECT_TRUE(std::find(tim_set.begin(), tim_set.end(), true) !=
              tim_set.end());
}

TEST(AccessPoint, GatewayDropsTtlExpired) {
  PsmFixture f(500_ms);
  Packet warmup =
      Packet::make(PacketType::udp_warmup, Protocol::udp, kSta, 99, 46);
  warmup.ttl = 1;
  f.sta.send(std::move(warmup));
  f.sim.run_for(10_ms);
  EXPECT_EQ(f.ap.ttl_drops(), 1u);
  EXPECT_TRUE(f.wired.packets.empty());
}

TEST(AccessPoint, ForwardsAndDecrementsTtl) {
  PsmFixture f(500_ms);
  Packet pkt = Packet::make(PacketType::udp_data, Protocol::udp, kSta, 99, 64);
  pkt.ttl = 64;
  f.sta.send(std::move(pkt));
  f.sim.run_for(10_ms);
  ASSERT_EQ(f.wired.packets.size(), 1u);
  EXPECT_EQ(f.wired.packets[0].ttl, 63);
  EXPECT_EQ(f.ap.ttl_drops(), 0u);
}

TEST(AccessPoint, BeaconCadenceIsStandard) {
  PsmFixture f(10_s);  // station never dozes
  f.sim.run_for(1_s);
  // First beacon at 50 ms, then every 102.4 ms: floor((1000-50)/102.4)+1.
  EXPECT_EQ(f.ap.beacons_sent(), 10u);
}

TEST(AccessPoint, AssociationMetadata) {
  PsmFixture f;
  EXPECT_EQ(f.ap.associated_listen_interval(kSta), 10);
  EXPECT_EQ(f.ap.associated_listen_interval(12345), -1);
}

TEST(Station, MissedTimWaitsForNextBeacon) {
  // beacon_miss_probability = 1.0: the station never acts on a TIM, so a
  // buffered frame is never fetched by polling (upper-bound behaviour).
  PsmFixture f(100_ms, 1.0);
  f.sim.run_for(150_ms);
  f.downlink();
  f.sim.run_for(beacon_interval() * 3);
  EXPECT_TRUE(f.sta_received.empty());
  EXPECT_EQ(f.ap.buffered_count(kSta), 1u);
}

TEST(Station, ConfigContractsChecked) {
  Simulator sim;
  Channel channel(sim, sim::Rng(1), phy_802_11g());
  Station::Config bad;
  bad.id = 1;
  bad.ap = 2;
  bad.psm_timeout = Duration{};
  EXPECT_THROW(Station(sim, channel, sim::Rng(2), bad),
               sim::ContractViolation);
  bad.psm_timeout = 100_ms;
  bad.beacon_miss_probability = 1.5;
  EXPECT_THROW(Station(sim, channel, sim::Rng(2), bad),
               sim::ContractViolation);
}

// Property sweep: for any Tip, the doze entry always lands within
// [Tip - tick, Tip + transmission slack] after the last activity.
class DozeWindow : public ::testing::TestWithParam<int> {};

TEST_P(DozeWindow, EntryWithinQuantizationWindow) {
  const Duration tip = Duration::millis(GetParam());
  PsmFixture f(tip);
  f.sim.run_for(tip - 11_ms);
  EXPECT_EQ(f.sta.power_state(), Station::PowerState::cam);
  f.sim.run_for(12_ms + 2_ms);
  EXPECT_EQ(f.sta.power_state(), Station::PowerState::dozing);
}

INSTANTIATE_TEST_SUITE_P(TipSweep, DozeWindow,
                         ::testing::Values(40, 45, 100, 205, 210, 400));

}  // namespace
}  // namespace acute::wifi
