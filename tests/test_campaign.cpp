// Campaign engine: grid expansion, deterministic per-shard seeding, and —
// the load-bearing property — bit-identical merged results regardless of
// how many workers execute the shards.
#include <gtest/gtest.h>

#include <set>

#include "sim/contracts.hpp"
#include "testbed/campaign.hpp"

namespace acute::testbed {
namespace {

using namespace acute::sim::literals;
using phone::PhoneProfile;
using phone::RadioKind;

TEST(ScenarioGrid, ExpandsTheCrossProductInFixedOrder) {
  ScenarioGrid grid;
  grid.phone_counts = {1, 3};
  grid.profiles = {PhoneProfile::nexus5(), PhoneProfile::nexus4()};
  grid.emulated_rtts = {10_ms, 30_ms};
  grid.cross_traffic = {false, true};
  ASSERT_EQ(grid.size(), 16u);
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 16u);

  // Outer axis: phone count; innermost: cross traffic.
  EXPECT_EQ(scenarios.front().phones.size(), 1u);
  EXPECT_EQ(scenarios.back().phones.size(), 3u);
  EXPECT_EQ(scenarios[0].emulated_rtt, 10_ms);
  EXPECT_FALSE(scenarios[0].congested_phy);
  EXPECT_TRUE(scenarios[1].congested_phy);
  EXPECT_EQ(scenarios[1].emulated_rtt, 10_ms);
  EXPECT_EQ(scenarios[2].emulated_rtt, 30_ms);
  EXPECT_EQ(scenarios[0].phones[0].profile.name, PhoneProfile::nexus5().name);
  EXPECT_EQ(scenarios[4].phones[0].profile.name, PhoneProfile::nexus4().name);
  // Every phone of a scenario shares profile and radio.
  for (const PhoneSpec& phone : scenarios.back().phones) {
    EXPECT_EQ(phone.profile.name, PhoneProfile::nexus4().name);
    EXPECT_EQ(phone.radio, RadioKind::wifi);
  }
}

TEST(ScenarioGrid, RadioAxisProducesCellularScenarios) {
  ScenarioGrid grid;
  grid.radios = {RadioKind::wifi, RadioKind::cellular};
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].count_radio(RadioKind::cellular), 0u);
  EXPECT_EQ(scenarios[1].count_radio(RadioKind::cellular), 1u);
}

TEST(ScenarioGrid, RejectsEmptyAxes) {
  ScenarioGrid grid;
  grid.emulated_rtts.clear();
  EXPECT_THROW((void)grid.expand(), sim::ContractViolation);
}

TEST(ScenarioGrid, LossAndReorderAxesExpandInnermost) {
  ScenarioGrid grid;
  grid.emulated_rtts = {10_ms, 30_ms};
  grid.loss_rates = {0.0, 0.1};
  grid.reorder = {false, true};
  ASSERT_EQ(grid.size(), 8u);
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 8u);
  // Innermost: reorder, then loss, then RTT.
  EXPECT_EQ(scenarios[0].netem_loss, 0.0);
  EXPECT_FALSE(scenarios[0].netem_reorder);
  EXPECT_TRUE(scenarios[1].netem_reorder);
  EXPECT_EQ(scenarios[1].netem_loss, 0.0);
  EXPECT_EQ(scenarios[2].netem_loss, 0.1);
  EXPECT_FALSE(scenarios[2].netem_reorder);
  EXPECT_EQ(scenarios[0].emulated_rtt, 10_ms);
  EXPECT_EQ(scenarios[4].emulated_rtt, 30_ms);
}

TEST(ScenarioGrid, DefaultLossAxesKeepLegacyGridsIdentical) {
  // Adding the loss/reorder axes must not perturb pre-existing grids: the
  // defaults are single lossless entries, so the expansion is unchanged.
  ScenarioGrid grid;
  grid.phone_counts = {1, 2};
  grid.emulated_rtts = {10_ms, 30_ms};
  grid.cross_traffic = {false, true};
  ASSERT_EQ(grid.size(), 8u);
  for (const ScenarioSpec& scenario : grid.expand()) {
    EXPECT_EQ(scenario.netem_loss, 0.0);
    EXPECT_FALSE(scenario.netem_reorder);
  }
}

TEST(ScenarioGrid, RejectsLossRatesOutsideUnitInterval) {
  ScenarioGrid grid;
  grid.loss_rates = {1.0};
  EXPECT_THROW((void)grid.expand(), sim::ContractViolation);
  grid.loss_rates = {-0.1};
  EXPECT_THROW((void)grid.expand(), sim::ContractViolation);
}

TEST(Campaign, LossyScenariosDropProbesDeterministically) {
  // A heavy netem loss axis must surface as lost probes, and the lossy
  // shard's outcome must stay a pure function of (spec, seed, index).
  ScenarioGrid grid;
  grid.emulated_rtts = {10_ms};
  grid.loss_rates = {0.0, 0.4};
  CampaignSpec spec;
  spec.seed = 11;
  spec.scenarios = grid.expand();
  spec.probes_per_phone = 12;
  spec.probe_interval = 150_ms;
  spec.probe_timeout = 2_s;

  const CampaignReport first = Campaign(spec).run(2);
  const CampaignReport second = Campaign(spec).run(1);
  ASSERT_EQ(first.shards.size(), 2u);
  EXPECT_EQ(first.shards[0].probes_lost, 0u);
  EXPECT_GT(first.shards[1].probes_lost, 0u);
  EXPECT_EQ(first.shards[1].probes_lost, second.shards[1].probes_lost);
  EXPECT_EQ(first.merged(&ShardResult::reported_rtt_ms),
            second.merged(&ShardResult::reported_rtt_ms));
}

TEST(Campaign, ShardSeedsDependOnlyOnCampaignSeedAndIndex) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint64_t seed = Campaign::shard_seed(42, i);
    EXPECT_EQ(seed, Campaign::shard_seed(42, i));  // stable
    seeds.insert(seed);
  }
  EXPECT_EQ(seeds.size(), 64u);                      // distinct per shard
  EXPECT_NE(Campaign::shard_seed(42, 0), Campaign::shard_seed(43, 0));
}

CampaignSpec small_campaign() {
  ScenarioGrid grid;
  grid.phone_counts = {1, 2};
  grid.emulated_rtts = {10_ms, 25_ms};
  CampaignSpec spec;
  spec.seed = 7;
  spec.scenarios = grid.expand();
  spec.probes_per_phone = 6;
  spec.probe_interval = 150_ms;
  return spec;
}

TEST(Campaign, MergedResultsAreBitIdenticalAcrossWorkerCounts) {
  // The acceptance criterion of the sharding design: same campaign seed =>
  // byte-identical merged stats with 1 worker and N workers. Exact double
  // equality is intentional — any thread-count dependence must fail loudly.
  const CampaignReport serial = Campaign(small_campaign()).run(1);
  const CampaignReport threaded = Campaign(small_campaign()).run(3);

  ASSERT_EQ(serial.shards.size(), threaded.shards.size());
  for (std::size_t i = 0; i < serial.shards.size(); ++i) {
    EXPECT_EQ(serial.shards[i].shard_seed, threaded.shards[i].shard_seed);
    EXPECT_EQ(serial.shards[i].probes_sent, threaded.shards[i].probes_sent);
    EXPECT_EQ(serial.shards[i].events_fired, threaded.shards[i].events_fired);
  }
  EXPECT_EQ(serial.merged(&ShardResult::reported_rtt_ms),
            threaded.merged(&ShardResult::reported_rtt_ms));
  EXPECT_EQ(serial.merged(&ShardResult::du_ms),
            threaded.merged(&ShardResult::du_ms));
  EXPECT_EQ(serial.merged(&ShardResult::dn_ms),
            threaded.merged(&ShardResult::dn_ms));
}

TEST(Campaign, ReportAggregatesAcrossShards) {
  CampaignSpec spec = small_campaign();
  spec.scenarios.resize(2);
  CampaignReport report = Campaign(spec).run(2);
  ASSERT_EQ(report.shards.size(), 2u);
  // 2 scenarios x (1 and 2 phones... resize kept indices 0,1: 1-phone each
  // at 10 and 25 ms) x 6 probes.
  EXPECT_EQ(report.total_probes(), 12u);
  EXPECT_EQ(report.total_lost(), 0u);
  EXPECT_EQ(report.rtt_summary().count(), 12u);
  EXPECT_GT(report.total_frames(), 0u);
  EXPECT_GT(report.total_events(), 0u);
  EXPECT_GT(report.total_sim_seconds(), 0.0);
  // The 25 ms shard's median user RTT must exceed the 10 ms shard's.
  EXPECT_GT(stats::Summary(report.shards[1].reported_rtt_ms).median(),
            stats::Summary(report.shards[0].reported_rtt_ms).median());
}

TEST(Campaign, RunsMixedRadioScenarios) {
  ScenarioSpec mixed;
  mixed.phones = {PhoneSpec{PhoneProfile::nexus5(), "", RadioKind::wifi},
                  PhoneSpec{PhoneProfile::nexus4(), "", RadioKind::cellular}};
  mixed.emulated_rtt = 15_ms;
  CampaignSpec spec;
  spec.scenarios = {mixed};
  spec.probes_per_phone = 5;
  spec.probe_interval = 400_ms;
  const CampaignReport report = Campaign(spec).run(1);
  ASSERT_EQ(report.shards.size(), 1u);
  const ShardResult& shard = report.shards.front();
  EXPECT_EQ(shard.probes_sent, 10u);
  EXPECT_EQ(shard.probes_lost, 0u);
  // Only the WiFi phone produces fully-stamped layer samples...
  EXPECT_LE(shard.du_ms.size(), 5u);
  EXPECT_GT(shard.du_ms.size(), 0u);
  // ...but both phones' probes report RTTs, and the cellular ones pay the
  // core-network RTT (>= 50 ms) on top of the emulated path.
  EXPECT_EQ(shard.reported_rtt_ms.size(), 10u);
  const auto& rtts = shard.reported_rtt_ms;
  const std::vector<double> wifi_rtts(rtts.begin(), rtts.begin() + 5);
  const std::vector<double> cell_rtts(rtts.begin() + 5, rtts.end());
  const double wifi_median = stats::Summary(wifi_rtts).median();
  const double cell_median = stats::Summary(cell_rtts).median();
  EXPECT_LT(wifi_median, 40.0);
  EXPECT_GT(cell_median, 60.0);
}

TEST(Campaign, RejectsEmptyOrInvalidSpecs) {
  CampaignSpec empty;
  EXPECT_THROW(Campaign{empty}, sim::ContractViolation);
  CampaignSpec bad = small_campaign();
  bad.probes_per_phone = 0;
  EXPECT_THROW(Campaign{bad}, sim::ContractViolation);
}

}  // namespace
}  // namespace acute::testbed
