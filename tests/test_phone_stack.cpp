// Driver, kernel, runtime and the composed Smartphone: per-layer stamps,
// the modified-driver dvsend/dvrecv logs, exec-environment costs, and flow
// demultiplexing.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "phone/driver.hpp"
#include "phone/kernel.hpp"
#include "phone/profile.hpp"
#include "phone/runtime.hpp"
#include "phone/sdio_bus.hpp"
#include "phone/smartphone.hpp"
#include "sim/simulator.hpp"
#include "wifi/access_point.hpp"
#include "wifi/channel.hpp"
#include "wifi/station.hpp"

namespace acute::phone {
namespace {

using namespace acute::sim::literals;
using net::Packet;
using net::PacketType;
using net::Protocol;
using sim::Duration;
using sim::Simulator;

constexpr net::NodeId kSta = 1;
constexpr net::NodeId kPeer = 2;

wifi::Station::Config always_awake(net::NodeId id, net::NodeId ap) {
  wifi::Station::Config config;
  config.id = id;
  config.ap = ap;
  config.psm_enabled = false;
  return config;
}

// Driver-topped pipeline: driver -> sdio-bus -> station. Upward deliveries
// leaving the driver land in `up_received` via the pipeline's app handler.
struct StackFixture {
  Simulator sim;
  wifi::Channel channel{sim, sim::Rng(5), wifi::phy_802_11g()};
  PhoneProfile profile = PhoneProfile::nexus5();
  wifi::Station station{sim, channel, sim::Rng(6), always_awake(kSta, kPeer)};
  SdioBus bus{sim, sim::Rng(7), profile};
  WnicDriver driver{sim, sim::Rng(8), profile, bus};
  stack::StackPipeline pipeline{sim};
  wifi::Radio peer{channel, kPeer};
  std::vector<Packet> peer_received;
  std::vector<Packet> up_received;

  StackFixture() {
    pipeline.append(driver);
    pipeline.append(bus);
    pipeline.append(station);
    pipeline.set_app_handler(
        [this](Packet pkt) { up_received.push_back(std::move(pkt)); });
    peer.set_receiver([this](Packet pkt, const wifi::Frame&) {
      peer_received.push_back(std::move(pkt));
    });
  }

  Packet data(std::uint32_t size = 200) {
    return Packet::make(PacketType::udp_data, Protocol::udp, kSta, kPeer,
                        size);
  }
};

TEST(WnicDriver, TxPathStampsInOrder) {
  StackFixture f;
  f.driver.transmit(f.data());
  f.sim.run_for(50_ms);
  ASSERT_EQ(f.peer_received.size(), 1u);
  const net::LayerStamps& s = f.peer_received[0].stamps;
  ASSERT_TRUE(s.driver_xmit_entry.has_value());
  ASSERT_TRUE(s.driver_txpkt.has_value());
  ASSERT_TRUE(s.air.has_value());
  EXPECT_LT(*s.driver_xmit_entry, *s.driver_txpkt);
  EXPECT_LT(*s.driver_txpkt, *s.air);
}

TEST(WnicDriver, DvsendLogMatchesStamps) {
  StackFixture f;
  f.bus.set_sleep_enabled(false);
  f.driver.transmit(f.data());
  f.sim.run_for(50_ms);
  ASSERT_EQ(f.driver.dvsend_log_ms().size(), 1u);
  const net::LayerStamps& s = f.peer_received[0].stamps;
  EXPECT_DOUBLE_EQ(f.driver.dvsend_log_ms()[0],
                   (*s.driver_txpkt - *s.driver_xmit_entry).to_ms());
  EXPECT_EQ(f.driver.tx_packets(), 1u);
}

TEST(WnicDriver, SleepingBusInflatesDvsend) {
  StackFixture f;
  f.sim.run_for(200_ms);  // bus sleeps
  f.driver.transmit(f.data());
  f.sim.run_for(50_ms);
  ASSERT_EQ(f.driver.dvsend_log_ms().size(), 1u);
  // Wake ~8.4-13.4 ms (Nexus 5) + dispatch.
  EXPECT_GT(f.driver.dvsend_log_ms()[0], 8.0);
  EXPECT_LT(f.driver.dvsend_log_ms()[0], 15.0);
}

TEST(WnicDriver, AwakeBusKeepsDvsendSmall) {
  StackFixture f;
  f.bus.set_sleep_enabled(false);
  f.bus.activity();
  f.driver.transmit(f.data());
  f.sim.run_for(50_ms);
  ASSERT_EQ(f.driver.dvsend_log_ms().size(), 1u);
  EXPECT_LT(f.driver.dvsend_log_ms()[0], 1.0);  // Table 3 disabled rows
}

TEST(WnicDriver, RxPathStampsAndDvrecv) {
  StackFixture f;
  f.bus.set_sleep_enabled(false);
  f.peer.enqueue(Packet::make(PacketType::udp_data, Protocol::udp, kPeer,
                              kSta, 300),
                 kSta);
  f.sim.run_for(50_ms);
  ASSERT_EQ(f.up_received.size(), 1u);
  const net::LayerStamps& s = f.up_received[0].stamps;
  ASSERT_TRUE(s.air.has_value());
  ASSERT_TRUE(s.driver_isr.has_value());
  ASSERT_TRUE(s.driver_rxf_enqueue.has_value());
  EXPECT_LT(*s.air, *s.driver_isr);
  EXPECT_LT(*s.driver_isr, *s.driver_rxf_enqueue);
  ASSERT_EQ(f.driver.dvrecv_log_ms().size(), 1u);
  EXPECT_DOUBLE_EQ(f.driver.dvrecv_log_ms()[0],
                   (*s.driver_rxf_enqueue - *s.driver_isr).to_ms());
  EXPECT_EQ(f.driver.rx_packets(), 1u);
}

TEST(WnicDriver, SleepingBusInflatesDvrecv) {
  StackFixture f;
  f.sim.run_for(200_ms);  // bus sleeps
  f.peer.enqueue(Packet::make(PacketType::udp_data, Protocol::udp, kPeer,
                              kSta, 300),
                 kSta);
  f.sim.run_for(50_ms);
  ASSERT_EQ(f.driver.dvrecv_log_ms().size(), 1u);
  // Wake (~8.6-12.6 ms) + read cost.
  EXPECT_GT(f.driver.dvrecv_log_ms()[0], 8.5);
  EXPECT_LT(f.driver.dvrecv_log_ms()[0], 16.0);
}

TEST(WnicDriver, ClearLogsEmptiesBoth) {
  StackFixture f;
  f.driver.transmit(f.data());
  f.sim.run_for(50_ms);
  EXPECT_FALSE(f.driver.dvsend_log_ms().empty());
  f.driver.clear_logs();
  EXPECT_TRUE(f.driver.dvsend_log_ms().empty());
  EXPECT_TRUE(f.driver.dvrecv_log_ms().empty());
}

// Kernel-topped pipeline: kernel -> driver -> sdio-bus -> station.
struct KernelFixture {
  Simulator sim;
  wifi::Channel channel{sim, sim::Rng(5), wifi::phy_802_11g()};
  PhoneProfile profile = PhoneProfile::nexus5();
  wifi::Station station{sim, channel, sim::Rng(6), always_awake(kSta, kPeer)};
  SdioBus bus{sim, sim::Rng(7), profile};
  WnicDriver driver{sim, sim::Rng(8), profile, bus};
  KernelStack kernel{sim, sim::Rng(9), profile};
  stack::StackPipeline pipeline{sim};
  wifi::Radio peer{channel, kPeer};
  std::vector<Packet> peer_received;
  std::vector<Packet> up_received;

  KernelFixture() {
    pipeline.append(kernel);
    pipeline.append(driver);
    pipeline.append(bus);
    pipeline.append(station);
    pipeline.set_app_handler(
        [this](Packet pkt) { up_received.push_back(std::move(pkt)); });
    peer.set_receiver([this](Packet pkt, const wifi::Frame&) {
      peer_received.push_back(std::move(pkt));
    });
  }
};

TEST(KernelStack, StampsBpfTapsOnBothPaths) {
  KernelFixture f;
  f.bus.set_sleep_enabled(false);

  f.kernel.transmit(Packet::make(PacketType::udp_data, Protocol::udp, kSta,
                                 kPeer, 200));
  f.sim.run_for(50_ms);
  ASSERT_EQ(f.peer_received.size(), 1u);
  const net::LayerStamps& tx = f.peer_received[0].stamps;
  ASSERT_TRUE(tx.kernel_send.has_value());
  // The bpf tap fires right at the driver hand-off (same event).
  EXPECT_LE(*tx.kernel_send, *tx.driver_xmit_entry);

  f.peer.enqueue(Packet::make(PacketType::udp_data, Protocol::udp, kPeer,
                              kSta, 300),
                 kSta);
  f.sim.run_for(50_ms);
  ASSERT_EQ(f.up_received.size(), 1u);
  const Packet& up = f.up_received[0];
  ASSERT_TRUE(up.stamps.kernel_recv.has_value());
  EXPECT_GT(*up.stamps.kernel_recv, *up.stamps.driver_rxf_enqueue);
  EXPECT_EQ(f.kernel.tx_packets(), 1u);
  EXPECT_EQ(f.kernel.rx_packets(), 1u);
}

TEST(ExecEnv, NativeIsCheaperThanDalvik) {
  sim::Rng rng(10);
  const PhoneProfile profile = PhoneProfile::nexus5();
  ExecEnv env(rng, profile);
  double native_sum = 0, dvm_sum = 0;
  for (int i = 0; i < 300; ++i) {
    native_sum += env.send_overhead(ExecMode::native_c).to_ms();
    dvm_sum += env.send_overhead(ExecMode::dalvik).to_ms();
  }
  EXPECT_LT(native_sum / 300, 0.15);  // [23]: native ~tens of us
  EXPECT_GT(dvm_sum / 300, 2 * native_sum / 300);
}

TEST(ExecEnv, DalvikRecvShowsGcTail) {
  sim::Rng rng(10);
  PhoneProfile profile = PhoneProfile::nexus5();
  profile.dvm_gc_prob = 0.5;  // make the tail easy to observe
  ExecEnv env(rng, profile);
  double max_cost = 0;
  for (int i = 0; i < 200; ++i) {
    max_cost = std::max(max_cost, env.recv_overhead(ExecMode::dalvik).to_ms());
  }
  EXPECT_GT(max_cost, 1.0);  // at least one GC pause (>= 1 ms)
}

TEST(ExecEnv, ModeNamesForDiagnostics) {
  EXPECT_STREQ(to_string(ExecMode::native_c), "native C");
  EXPECT_STREQ(to_string(ExecMode::dalvik), "Dalvik");
}

struct PhoneFixture {
  Simulator sim;
  wifi::Channel channel{sim, sim::Rng(20), wifi::phy_802_11g()};
  wifi::AccessPoint ap;
  Smartphone phone;

  PhoneFixture()
      : ap(sim, channel, sim::Rng(21), [] {
          wifi::AccessPoint::Config config;
          config.id = kPeer;
          return config;
        }()),
        phone(sim, channel, sim::Rng(22), PhoneProfile::nexus5(), kSta,
              kPeer) {
    ap.associate(kSta, 10);
  }
};

TEST(Smartphone, SendStampsAppAndKernelLayers) {
  PhoneFixture f;
  // Watch the frame on the medium via a sniffer-like observer.
  std::vector<Packet> on_air;
  wifi::Radio observer(f.channel, 99);
  Packet pkt = Packet::make(PacketType::udp_data, Protocol::udp, kSta, 50,
                            100);
  pkt.ttl = 1;  // die at the AP; we only care about the uplink stamps
  f.phone.send(std::move(pkt), ExecMode::native_c);
  // Capture at AP: hook its ttl_drops instead. Simplest: run and check the
  // drop plus the phone-side log through the driver.
  f.sim.run_for(100_ms);
  EXPECT_EQ(f.ap.ttl_drops(), 1u);
  ASSERT_EQ(f.phone.driver().dvsend_log_ms().size(), 1u);
  (void)observer;
}

TEST(Smartphone, FlowDemultiplexesToRegisteredApp) {
  PhoneFixture f;
  // Loop a packet back by delivering it from the AP side.
  std::vector<Packet> got_a, got_b;
  f.phone.register_flow(10, [&](const Packet& pkt) { got_a.push_back(pkt); });
  f.phone.register_flow(11, [&](const Packet& pkt) { got_b.push_back(pkt); });

  Packet down = Packet::make(PacketType::udp_data, Protocol::udp, 50, kSta,
                             100);
  down.flow_id = 10;
  f.ap.receive(std::move(down), nullptr);
  f.sim.run_for(50_ms);
  ASSERT_EQ(got_a.size(), 1u);
  EXPECT_TRUE(got_b.empty());
  ASSERT_TRUE(got_a[0].stamps.app_recv.has_value());
  EXPECT_GT(*got_a[0].stamps.app_recv, *got_a[0].stamps.kernel_recv);
}

TEST(Smartphone, UnregisteredFlowIsDropped) {
  PhoneFixture f;
  Packet down = Packet::make(PacketType::udp_data, Protocol::udp, 50, kSta,
                             100);
  down.flow_id = 999;
  f.ap.receive(std::move(down), nullptr);
  f.sim.run_for(50_ms);  // must not crash; packet silently dropped
  SUCCEED();
}

TEST(Smartphone, AllocateFlowIdIsUnique) {
  PhoneFixture f;
  const auto a = f.phone.allocate_flow_id();
  const auto b = f.phone.allocate_flow_id();
  EXPECT_NE(a, b);
}

TEST(Smartphone, SystemTrafficChattersWhenEnabled) {
  PhoneFixture f;
  f.sim.run_for(30_s);
  // Poisson with mean 2.5 s: ~12 packets in 30 s.
  EXPECT_GT(f.phone.system_packets_sent(), 3u);
  EXPECT_LT(f.phone.system_packets_sent(), 40u);
  EXPECT_GT(f.ap.ttl_drops(), 0u);  // they die at the gateway
}

TEST(Smartphone, SystemTrafficCanBeSilenced) {
  PhoneFixture f;
  f.phone.set_system_traffic_enabled(false);
  f.sim.run_for(30_s);
  EXPECT_EQ(f.phone.system_packets_sent(), 0u);
}

TEST(Smartphone, RegisterFlowRequiresHandler) {
  PhoneFixture f;
  EXPECT_THROW(f.phone.register_flow(1, nullptr), sim::ContractViolation);
}

TEST(StackZeroCopy, FullPipelineTransitCopiesNothing) {
  // The zero-copy invariant of the move-based packet path: a unicast packet
  // descending all four layers onto the medium and one ascending to the app
  // must never copy-construct a Packet. (Broadcast beacons are the only
  // sanctioned fan-out copies, and this fixture sends none.)
  KernelFixture f;
  f.bus.set_sleep_enabled(false);

  net::Packet::reset_op_counters();
  f.kernel.transmit(Packet::make(PacketType::udp_data, Protocol::udp, kSta,
                                 kPeer, 200));
  f.sim.run_for(50_ms);
  ASSERT_EQ(f.peer_received.size(), 1u);
  EXPECT_EQ(net::Packet::op_counters().copies, 0u);

  f.peer.enqueue(Packet::make(PacketType::udp_data, Protocol::udp, kPeer,
                              kSta, 300),
                 kSta);
  f.sim.run_for(50_ms);
  ASSERT_EQ(f.up_received.size(), 1u);
  EXPECT_EQ(net::Packet::op_counters().copies, 0u);
}

}  // namespace
}  // namespace acute::phone
