// Campaign workload matrix: per-scenario tool selection through
// tools::make_tool(), the innermost ScenarioGrid workload axis, and the
// streaming per-shard digest merge that caps campaign memory at O(shards).
#include <gtest/gtest.h>

#include "sim/contracts.hpp"
#include "testbed/campaign.hpp"

namespace acute::testbed {
namespace {

using namespace acute::sim::literals;
using phone::PhoneProfile;
using phone::RadioKind;
using tools::ToolKind;

std::vector<WorkloadSpec> all_four_workloads() {
  return {WorkloadSpec{ToolKind::icmp_ping}, WorkloadSpec{ToolKind::java_ping},
          WorkloadSpec{ToolKind::httping}, WorkloadSpec{ToolKind::acutemon}};
}

TEST(ScenarioGridWorkloads, WorkloadAxisExpandsInnermost) {
  ScenarioGrid grid;
  grid.emulated_rtts = {10_ms, 30_ms};
  grid.workloads = {WorkloadSpec{ToolKind::icmp_ping},
                    WorkloadSpec{ToolKind::httping}};
  ASSERT_EQ(grid.size(), 4u);
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 4u);
  // Innermost: workload; outer: RTT.
  EXPECT_EQ(scenarios[0].phones[0].workload.tool, ToolKind::icmp_ping);
  EXPECT_EQ(scenarios[1].phones[0].workload.tool, ToolKind::httping);
  EXPECT_EQ(scenarios[0].emulated_rtt, 10_ms);
  EXPECT_EQ(scenarios[1].emulated_rtt, 10_ms);
  EXPECT_EQ(scenarios[2].emulated_rtt, 30_ms);
  EXPECT_EQ(scenarios[3].phones[0].workload.tool, ToolKind::httping);
}

TEST(ScenarioGridWorkloads, EveryPhoneOfAScenarioSharesTheWorkload) {
  ScenarioGrid grid;
  grid.phone_counts = {3};
  grid.workloads = {WorkloadSpec{ToolKind::java_ping}};
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  for (const PhoneSpec& phone : scenarios[0].phones) {
    EXPECT_EQ(phone.workload.tool, ToolKind::java_ping);
  }
}

TEST(ScenarioGridWorkloads, RejectsEmptyWorkloadAxis) {
  ScenarioGrid grid;
  grid.workloads.clear();
  EXPECT_THROW((void)grid.expand(), sim::ContractViolation);
}

TEST(ScenarioGridWorkloads, LegacyGridsExpandExactlyAsBefore) {
  // (b) A grid that never touches the workload axis must produce the exact
  // same scenario vector as the pre-workload expansion: same size, same
  // nesting, every phone on the default stock-ping workload with no
  // schedule overrides.
  ScenarioGrid grid;
  grid.phone_counts = {1, 2};
  grid.profiles = {PhoneProfile::nexus5(), PhoneProfile::nexus4()};
  grid.emulated_rtts = {10_ms, 30_ms};
  grid.cross_traffic = {false, true};
  grid.loss_rates = {0.0, 0.1};
  ASSERT_EQ(grid.size(), 32u);  // unchanged: workload axis is a single entry
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 32u);

  // Field-by-field equality with the historical nesting (outer to inner:
  // count, profile, radio, rtt, cross, loss, reorder).
  std::size_t index = 0;
  for (const std::size_t count : grid.phone_counts) {
    for (const auto& profile : grid.profiles) {
      for (const sim::Duration rtt : grid.emulated_rtts) {
        for (const bool cross : grid.cross_traffic) {
          for (const double loss : grid.loss_rates) {
            const ScenarioSpec& s = scenarios[index++];
            EXPECT_EQ(s.phones.size(), count);
            EXPECT_EQ(s.phones[0].profile.name, profile.name);
            EXPECT_EQ(s.emulated_rtt, rtt);
            EXPECT_EQ(s.congested_phy, cross);
            EXPECT_EQ(s.netem_loss, loss);
            EXPECT_FALSE(s.netem_reorder);
            for (const PhoneSpec& phone : s.phones) {
              EXPECT_EQ(phone.workload, WorkloadSpec{});
              EXPECT_EQ(phone.workload.tool, ToolKind::icmp_ping);
              EXPECT_EQ(phone.workload.probe_count, 0);
            }
          }
        }
      }
    }
  }
  EXPECT_EQ(index, scenarios.size());
}

CampaignSpec mixed_workload_campaign() {
  // The acceptance grid: 4 workloads x 2 handset profiles.
  ScenarioGrid grid;
  grid.profiles = {PhoneProfile::nexus5(), PhoneProfile::nexus4()};
  grid.emulated_rtts = {15_ms};
  grid.workloads = all_four_workloads();
  CampaignSpec spec;
  spec.seed = 2016;
  spec.scenarios = grid.expand();
  spec.probes_per_phone = 6;
  spec.probe_interval = 150_ms;
  spec.probe_timeout = 2_s;
  return spec;
}

TEST(CampaignWorkloads, MixedWorkloadGridIsBitIdenticalAcrossWorkerCounts) {
  // (a) The 4-workload x 2-profile campaign must merge byte-identically for
  // 1 worker and 8 workers — exact double equality, on the raw samples AND
  // on the streaming digests.
  const CampaignSpec spec = mixed_workload_campaign();
  ASSERT_EQ(spec.scenarios.size(), 8u);
  const CampaignReport serial = Campaign(spec).run(1);
  const CampaignReport threaded = Campaign(spec).run(8);

  ASSERT_EQ(serial.shards.size(), threaded.shards.size());
  for (std::size_t i = 0; i < serial.shards.size(); ++i) {
    EXPECT_EQ(serial.shards[i].shard_seed, threaded.shards[i].shard_seed);
    EXPECT_EQ(serial.shards[i].probes_sent, threaded.shards[i].probes_sent);
    EXPECT_EQ(serial.shards[i].events_fired,
              threaded.shards[i].events_fired);
  }
  EXPECT_EQ(serial.merged(&ShardResult::reported_rtt_ms),
            threaded.merged(&ShardResult::reported_rtt_ms));
  EXPECT_EQ(serial.merged(&ShardResult::du_ms),
            threaded.merged(&ShardResult::du_ms));
  EXPECT_EQ(serial.merged(&ShardResult::dn_ms),
            threaded.merged(&ShardResult::dn_ms));

  const auto serial_digests = serial.workload_digests();
  const auto threaded_digests = threaded.workload_digests();
  ASSERT_EQ(serial_digests.size(), 4u);
  ASSERT_EQ(threaded_digests.size(), 4u);
  for (std::size_t i = 0; i < serial_digests.size(); ++i) {
    EXPECT_EQ(serial_digests[i].tool, threaded_digests[i].tool);
    EXPECT_EQ(serial_digests[i].probes, threaded_digests[i].probes);
    EXPECT_EQ(serial_digests[i].lost, threaded_digests[i].lost);
    ASSERT_GT(serial_digests[i].reported_rtt_ms.count(), 0u);
    for (const double q : {0.1, 0.5, 0.9}) {
      EXPECT_EQ(serial_digests[i].reported_rtt_ms.quantile(q),
                threaded_digests[i].reported_rtt_ms.quantile(q));
    }
    EXPECT_EQ(serial_digests[i].reported_rtt_ms.mean(),
              threaded_digests[i].reported_rtt_ms.mean());
  }
}

TEST(CampaignWorkloads, EachWorkloadRunsItsOwnTool) {
  const CampaignSpec spec = mixed_workload_campaign();
  const CampaignReport report = Campaign(spec).run(2);
  // One digest per kind, ascending ToolKind order, every kind present.
  const auto digests = report.workload_digests();
  ASSERT_EQ(digests.size(), 4u);
  EXPECT_EQ(digests[0].tool, ToolKind::acutemon);
  EXPECT_EQ(digests[1].tool, ToolKind::icmp_ping);
  EXPECT_EQ(digests[2].tool, ToolKind::httping);
  EXPECT_EQ(digests[3].tool, ToolKind::java_ping);
  // 2 profiles x 6 probes per kind.
  for (const WorkloadDigest& digest : digests) {
    EXPECT_EQ(digest.probes, 12u);
  }
  // The paper's Fig. 8 ordering at the median: AcuteMon's warm path beats
  // the stock ping's PSM/SDIO-inflated one.
  EXPECT_LT(digests[0].reported_rtt_ms.quantile(0.5),
            digests[1].reported_rtt_ms.quantile(0.5));
}

TEST(CampaignWorkloads, DigestMergeMatchesBufferedMergeWithinTolerance) {
  // (c) On a small grid the streaming digests must agree with the buffered
  // sample vectors: exact counters and means, quantiles within the digest's
  // accuracy (bracketed by nearby order statistics of the buffered merge).
  CampaignSpec spec = mixed_workload_campaign();
  spec.keep_samples = true;
  const CampaignReport report = Campaign(spec).run(2);

  const std::vector<double> buffered =
      report.merged(&ShardResult::reported_rtt_ms);
  const stats::MergingDigest streamed = report.rtt_digest();
  ASSERT_EQ(streamed.count(), buffered.size());

  const stats::Summary summary(buffered);
  EXPECT_NEAR(streamed.mean(), summary.mean(), 1e-9);  // tracked exactly
  EXPECT_DOUBLE_EQ(streamed.min(), summary.min());
  EXPECT_DOUBLE_EQ(streamed.max(), summary.max());
  for (const double q : {0.25, 0.5, 0.75, 0.9}) {
    const double estimate = streamed.quantile(q);
    // The digest interpolates between centroids; bracket with a +-10
    // percentile-point window of the exact order statistics.
    EXPECT_GE(estimate, summary.percentile(100 * q - 10));
    EXPECT_LE(estimate, summary.percentile(100 * q + 10));
  }
}

TEST(CampaignWorkloads, StreamingModeHoldsSampleMemoryAtOShards) {
  // keep_samples=false: no shard may retain a raw sample vector, and every
  // digest stays under its structural centroid bound — so campaign-resident
  // sample state is O(shards) fixed-size accumulators, independent of the
  // probe count.
  CampaignSpec spec = mixed_workload_campaign();
  spec.keep_samples = false;
  spec.probes_per_phone = 40;  // more samples than digest centroids allow
  const CampaignReport report = Campaign(spec).run(2);

  std::size_t total_probes = 0;
  for (const ShardResult& shard : report.shards) {
    EXPECT_TRUE(shard.reported_rtt_ms.empty());
    EXPECT_TRUE(shard.du_ms.empty());
    EXPECT_TRUE(shard.dk_ms.empty());
    EXPECT_TRUE(shard.dv_ms.empty());
    EXPECT_TRUE(shard.dn_ms.empty());
    ASSERT_FALSE(shard.digests.empty());
    for (const WorkloadDigest& digest : shard.digests) {
      EXPECT_LE(digest.reported_rtt_ms.centroid_count(),
                digest.reported_rtt_ms.max_centroids());
      EXPECT_LE(digest.du_ms.centroid_count(),
                digest.du_ms.max_centroids());
      total_probes += digest.probes;
    }
  }
  // Counters and distributions survive without the raw samples.
  EXPECT_EQ(total_probes, report.total_probes());
  EXPECT_EQ(report.total_probes(), 8u * 40u);
  EXPECT_GT(report.rtt_digest().quantile(0.5), 0.0);
}

TEST(CampaignWorkloads, AssignWorkloadsMixesToolsWithinOneScenario) {
  // Heterogeneous per-phone workloads within ONE scenario: four phones on
  // one channel, each running a different tool of the Fig. 8 zoo.
  ScenarioSpec scenario;
  scenario.phones.assign(4, PhoneSpec{});
  scenario.emulated_rtt = 15_ms;
  scenario.assign_workloads(all_four_workloads());
  for (std::size_t i = 0; i < scenario.phones.size(); ++i) {
    EXPECT_EQ(scenario.phones[i].workload, all_four_workloads()[i]);
  }

  CampaignSpec spec;
  spec.seed = 9;
  spec.scenarios = {scenario};
  spec.probes_per_phone = 5;
  spec.probe_interval = 200_ms;
  spec.probe_timeout = 2_s;
  const CampaignReport report = Campaign(spec).run(1);
  ASSERT_EQ(report.shards.size(), 1u);
  // One shard, four digests — every tool ran, in ascending ToolKind order.
  const auto digests = report.shards.front().digests;
  ASSERT_EQ(digests.size(), 4u);
  EXPECT_EQ(digests[0].tool, ToolKind::acutemon);
  EXPECT_EQ(digests[1].tool, ToolKind::icmp_ping);
  EXPECT_EQ(digests[2].tool, ToolKind::httping);
  EXPECT_EQ(digests[3].tool, ToolKind::java_ping);
  for (const WorkloadDigest& digest : digests) {
    EXPECT_EQ(digest.probes, 5u);
  }
}

TEST(CampaignWorkloads, AssignWorkloadsRoundRobinsShorterMixes) {
  ScenarioSpec scenario;
  scenario.phones.assign(5, PhoneSpec{});
  const std::vector<WorkloadSpec> mix = {WorkloadSpec{ToolKind::icmp_ping},
                                         WorkloadSpec{ToolKind::httping}};
  scenario.assign_workloads(mix);
  for (std::size_t i = 0; i < scenario.phones.size(); ++i) {
    EXPECT_EQ(scenario.phones[i].workload.tool, mix[i % 2].tool);
  }
  EXPECT_THROW(scenario.assign_workloads({}), sim::ContractViolation);
}

TEST(CampaignWorkloads, WorkloadOverridesBeatCampaignDefaults) {
  ScenarioGrid grid;
  grid.emulated_rtts = {10_ms};
  WorkloadSpec overridden;
  overridden.tool = ToolKind::icmp_ping;
  overridden.probe_count = 3;
  overridden.interval = 80_ms;
  grid.workloads = {WorkloadSpec{}, overridden};
  CampaignSpec spec;
  spec.scenarios = grid.expand();
  spec.probes_per_phone = 7;
  spec.probe_interval = 200_ms;
  const CampaignReport report = Campaign(spec).run(1);
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_EQ(report.shards[0].probes_sent, 7u);  // campaign default
  EXPECT_EQ(report.shards[1].probes_sent, 3u);  // workload override
}

}  // namespace
}  // namespace acute::testbed
