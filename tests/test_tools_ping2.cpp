// ping2 (Sui et al. [34]) and the phone-side kernel ICMP responder it
// depends on; validates the paper's §1 critique of the approach.
#include <gtest/gtest.h>

#include "stats/summary.hpp"
#include "testbed/testbed.hpp"
#include "tools/ping2.hpp"

namespace acute::tools {
namespace {

using namespace acute::sim::literals;
using sim::Duration;
using testbed::Testbed;

Ping2Prober::Result run_ping2(Testbed& testbed, int pairs) {
  Ping2Prober::Config config;
  config.target = Testbed::kPhoneId;
  config.pairs = pairs;
  config.timeout = 1_s;
  Ping2Prober prober(testbed.simulator(), testbed.server(), config);
  prober.start();
  auto& sim = testbed.simulator();
  const auto deadline = sim.now() + Duration::seconds(600);
  while (!prober.finished() && sim.now() < deadline) {
    sim.run_for(Duration::millis(50));
  }
  return prober.result();
}

TEST(KernelIcmpResponder, PhoneAnswersServerPings) {
  Testbed testbed;
  testbed.settle(500_ms);
  net::Packet ping = net::Packet::make(net::PacketType::icmp_echo_request,
                                       net::Protocol::icmp,
                                       Testbed::kServerId, Testbed::kPhoneId,
                                       net::packet_size::icmp_echo);
  ping.probe_id = net::Packet::allocate_id();
  int replies = 0;
  testbed.server().set_packet_observer([&](const net::Packet& pkt) {
    if (pkt.type == net::PacketType::icmp_echo_reply) ++replies;
  });
  testbed.server().originate(std::move(ping));
  testbed.settle(100_ms);
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(testbed.phone().kernel().icmp_echoes_served(), 1u);
}

TEST(Ping2, CompletesAllPairs) {
  testbed::TestbedConfig config;
  config.emulated_rtt = 20_ms;
  Testbed testbed(config);
  testbed.settle(800_ms);
  const auto result = run_ping2(testbed, 20);
  EXPECT_EQ(result.second_rtts_ms.size(), 20u);
  EXPECT_EQ(result.first_rtts_ms.size(), 20u);
  EXPECT_EQ(result.lost_pairs, 0u);
}

TEST(Ping2, FirstPingPaysWakeSecondDoesNotOnShortPaths) {
  testbed::TestbedConfig config;
  config.emulated_rtt = 20_ms;  // well below Tis = 50 ms
  Testbed testbed(config);
  testbed.settle(800_ms);
  const auto result = run_ping2(testbed, 40);
  const double first = stats::Summary(result.first_rtts_ms).median();
  const double second = stats::Summary(result.second_rtts_ms).median();
  // First pings hit the sleeping bus (the phone idles 1 s between pairs).
  EXPECT_GT(first, second + 5.0);
  // Second pings land within ~4 ms of the true RTT: ping2 works here.
  EXPECT_NEAR(second, 21.3, 4.0);
}

TEST(Ping2, LongPathsReSleepBeforeTheSecondPing) {
  // The paper's critique: at 85 ms (> Tis = 50 ms) the bus re-sleeps
  // between the first reply and the second ping's arrival.
  testbed::TestbedConfig config;
  config.emulated_rtt = 85_ms;
  Testbed testbed(config);
  testbed.settle(800_ms);
  const auto result = run_ping2(testbed, 40);
  const double second = stats::Summary(result.second_rtts_ms).median();
  EXPECT_GT(second - 86.3, 6.0);  // residual inflation ping2 cannot remove
}

TEST(Ping2, PsmBitesOnAggressiveHandsetsEvenAtModerateRtt) {
  // Nexus 4 (Tip ~40 ms): at 60 ms the phone dozes between the pings and
  // the second ping gets PSM-buffered at the AP — tens of ms of inflation.
  testbed::TestbedConfig config;
  config.profile = phone::PhoneProfile::nexus4();
  config.emulated_rtt = 60_ms;
  Testbed testbed(config);
  testbed.settle(800_ms);
  const auto result = run_ping2(testbed, 40);
  const double second = stats::Summary(result.second_rtts_ms).median();
  EXPECT_GT(second - 61.3, 20.0);
}

TEST(Ping2, ContractChecks) {
  Testbed testbed;
  Ping2Prober::Config config;
  config.pairs = 0;
  EXPECT_THROW(
      Ping2Prober(testbed.simulator(), testbed.server(), config),
      sim::ContractViolation);
}

}  // namespace
}  // namespace acute::tools
