#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace acute::net {
namespace {

TEST(Packet, MakeAssignsFreshIds) {
  const Packet a = Packet::make(PacketType::udp_data, Protocol::udp, 1, 2, 64);
  const Packet b = Packet::make(PacketType::udp_data, Protocol::udp, 1, 2, 64);
  EXPECT_NE(a.id, 0u);
  EXPECT_NE(a.id, b.id);
  EXPECT_EQ(a.src, 1u);
  EXPECT_EQ(a.dst, 2u);
  EXPECT_EQ(a.size_bytes, 64u);
  EXPECT_EQ(a.ttl, 64);  // default IP TTL
  EXPECT_EQ(a.probe_id, 0u);
}

TEST(Packet, MakeResponseSwapsEndpoints) {
  Packet request =
      Packet::make(PacketType::tcp_syn, Protocol::tcp, 10, 20, 60);
  request.probe_id = 777;
  request.flow_id = 5;
  request.stamps.app_send = sim::TimePoint::from_nanos(123);

  const Packet response =
      Packet::make_response(request, PacketType::tcp_syn_ack, 60);
  EXPECT_EQ(response.src, 20u);
  EXPECT_EQ(response.dst, 10u);
  EXPECT_EQ(response.probe_id, 777u);
  EXPECT_EQ(response.flow_id, 5u);
  EXPECT_EQ(response.protocol, Protocol::tcp);
  EXPECT_NE(response.id, request.id);
}

TEST(Packet, MakeResponseCarriesRequestStamps) {
  Packet request =
      Packet::make(PacketType::icmp_echo_request, Protocol::icmp, 1, 2, 84);
  request.stamps.app_send = sim::TimePoint::from_nanos(1000);
  request.stamps.air = sim::TimePoint::from_nanos(2000);
  const Packet response =
      Packet::make_response(request, PacketType::icmp_echo_reply, 84);
  ASSERT_NE(response.request_stamps, nullptr);
  EXPECT_EQ(response.request_stamps->app_send->count_nanos(), 1000);
  EXPECT_EQ(response.request_stamps->air->count_nanos(), 2000);
  // The response's own stamps start clean.
  EXPECT_FALSE(response.stamps.app_send.has_value());
}

TEST(Packet, BroadcastDetection) {
  Packet beacon = Packet::make(PacketType::wifi_beacon, Protocol::wifi_mgmt,
                               2, kBroadcastId, 96);
  EXPECT_TRUE(beacon.is_broadcast());
  EXPECT_TRUE(beacon.is_wifi_control());
  const Packet data = Packet::make(PacketType::udp_data, Protocol::udp, 1, 2,
                                   100);
  EXPECT_FALSE(data.is_broadcast());
  EXPECT_FALSE(data.is_wifi_control());
}

TEST(Packet, DescribeMentionsKeyFields) {
  Packet pkt = Packet::make(PacketType::tcp_syn, Protocol::tcp, 3, 4, 60);
  pkt.probe_id = 9;
  pkt.ttl = 1;
  const std::string text = pkt.describe();
  EXPECT_NE(text.find("tcp_syn"), std::string::npos);
  EXPECT_NE(text.find("3->4"), std::string::npos);
  EXPECT_NE(text.find("ttl=1"), std::string::npos);
  EXPECT_NE(text.find("probe=9"), std::string::npos);
}

TEST(PacketType, ToStringCoversAllValues) {
  EXPECT_STREQ(to_string(PacketType::icmp_echo_request), "icmp_echo_request");
  EXPECT_STREQ(to_string(PacketType::udp_warmup), "udp_warmup");
  EXPECT_STREQ(to_string(PacketType::wifi_ps_poll), "wifi_ps_poll");
  EXPECT_STREQ(to_string(Protocol::icmp), "icmp");
  EXPECT_STREQ(to_string(Protocol::wifi_mgmt), "wifi_mgmt");
}

TEST(PacketSizes, MatchToolExpectations) {
  EXPECT_EQ(packet_size::icmp_echo, 84u);    // 56B payload + IP/ICMP headers
  EXPECT_LT(packet_size::udp_small, 64u);    // AcuteMon keep-alives are tiny
  EXPECT_GT(packet_size::udp_iperf, 1400u);  // iPerf datagrams near MTU
}

TEST(Packet, CopyAccountingCountsCopiesNotMoves) {
  Packet::reset_op_counters();
  Packet original = Packet::make(PacketType::udp_data, Protocol::udp, 1, 2, 64);
  EXPECT_EQ(Packet::op_counters().copies, 0u);  // construction is free

  Packet moved = std::move(original);
  EXPECT_EQ(Packet::op_counters().copies, 0u);  // moves are free

  Packet copied = moved;       // NOLINT: the copy is the point
  Packet assigned;
  assigned = copied;
  EXPECT_EQ(Packet::op_counters().copies, 2u);
  Packet::reset_op_counters();
  EXPECT_EQ(Packet::op_counters().copies, 0u);
}

TEST(Packet, PayloadBufferIsSharedAcrossCopies) {
  Packet pkt = Packet::make(PacketType::http_response, Protocol::tcp, 1, 2,
                            240);
  EXPECT_EQ(pkt.payload_size(), 0u);
  pkt.payload = Packet::make_payload({1, 2, 3, 4});
  EXPECT_EQ(pkt.payload_size(), 4u);

  const Packet copy = pkt;  // header copy; bytes stay single-instance
  EXPECT_EQ(copy.payload.get(), pkt.payload.get());
  EXPECT_EQ(copy.payload.use_count(), 2);

  Packet moved = std::move(pkt);
  EXPECT_EQ(moved.payload.get(), copy.payload.get());
  EXPECT_EQ(moved.payload.use_count(), 2);  // move transferred the reference
}

}  // namespace
}  // namespace acute::net
