// 802.11 channel: airtime arithmetic, CSMA/CA timing, collisions,
// saturation throughput, queue limits, priority frames, sniffer capture.
#include <gtest/gtest.h>

#include <vector>

#include "sim/contracts.hpp"
#include "sim/simulator.hpp"
#include "wifi/channel.hpp"
#include "wifi/constants.hpp"
#include "wifi/radio.hpp"
#include "wifi/sniffer.hpp"

namespace acute::wifi {
namespace {

using namespace acute::sim::literals;
using net::Packet;
using net::PacketType;
using net::Protocol;
using sim::Duration;
using sim::Simulator;

Packet data_packet(net::NodeId src, net::NodeId dst, std::uint32_t size) {
  return Packet::make(PacketType::udp_data, Protocol::udp, src, dst, size);
}

TEST(Airtime, PayloadScalesWithSizeAndRate) {
  EXPECT_EQ(payload_airtime(54 * 125, 54.0), Duration::micros(1000));
  EXPECT_EQ(payload_airtime(1500, 54.0).count_nanos(),
            Duration::micros(1500 * 8 / 54.0).count_nanos());
  // Halving the rate doubles the airtime.
  EXPECT_EQ(payload_airtime(900, 27.0), payload_airtime(1800, 54.0));
}

TEST(Airtime, FrameAddsPreamble) {
  const PhyParams phy = phy_802_11g();
  EXPECT_EQ(frame_airtime(phy, 0, 54.0), phy.preamble);
  EXPECT_EQ(frame_airtime(phy, 54 * 125, 54.0),
            phy.preamble + Duration::micros(1000));
}

TEST(Airtime, ControlFramesUseBasicRate) {
  const PhyParams phy = phy_802_11g();
  EXPECT_EQ(ack_airtime(phy), frame_airtime(phy, kAckBytes, 6.0));
  EXPECT_EQ(cts_to_self_airtime(phy),
            frame_airtime(phy, kAckBytes, 6.0) + phy.sifs);
}

TEST(Constants, BeaconIntervalIs102400Us) {
  EXPECT_EQ(beacon_interval(), Duration::micros(102'400));
  EXPECT_EQ(kTimeUnit, Duration::micros(1024));
}

struct ChannelFixture {
  Simulator sim;
  Channel channel{sim, sim::Rng(42), phy_802_11g()};
};

TEST(Channel, SingleFrameDeliveredWithinDcfWindow) {
  ChannelFixture f;
  Radio tx(f.channel, 1);
  Radio rx(f.channel, 2);
  std::vector<sim::TimePoint> arrivals;
  rx.set_receiver([&](Packet, const Frame& frame) {
    arrivals.push_back(frame.tx_end);
  });

  tx.enqueue(data_packet(1, 2, 1000), 2);
  f.sim.run_for(5_ms);
  ASSERT_EQ(arrivals.size(), 1u);

  const PhyParams phy = phy_802_11g();
  const Duration airtime = frame_airtime(phy, 1000, phy.data_rate_mbps);
  const Duration earliest = phy.difs + airtime;
  const Duration latest = phy.difs + phy.slot * phy.cw_min + airtime;
  const Duration when = arrivals[0] - sim::TimePoint::epoch();
  EXPECT_GE(when, earliest);
  EXPECT_LE(when, latest);
  EXPECT_EQ(f.channel.frames_transmitted(), 1u);
}

TEST(Channel, AirStampWrittenOnPacket) {
  ChannelFixture f;
  Radio tx(f.channel, 1);
  Radio rx(f.channel, 2);
  std::vector<Packet> received;
  rx.set_receiver([&](Packet pkt, const Frame&) {
    received.push_back(std::move(pkt));
  });
  tx.enqueue(data_packet(1, 2, 500), 2);
  f.sim.run_for(5_ms);
  ASSERT_EQ(received.size(), 1u);
  ASSERT_TRUE(received[0].stamps.air.has_value());
  EXPECT_GT(received[0].stamps.air->count_nanos(), 0);
}

TEST(Channel, UnicastNotDeliveredToBystander) {
  ChannelFixture f;
  Radio tx(f.channel, 1);
  Radio rx(f.channel, 2);
  Radio bystander(f.channel, 3);
  int rx_count = 0, bystander_count = 0;
  rx.set_receiver([&](Packet, const Frame&) { ++rx_count; });
  bystander.set_receiver([&](Packet, const Frame&) { ++bystander_count; });
  tx.enqueue(data_packet(1, 2, 500), 2);
  f.sim.run_for(5_ms);
  EXPECT_EQ(rx_count, 1);
  EXPECT_EQ(bystander_count, 0);
}

TEST(Channel, BroadcastReachesAllAwakeRadios) {
  ChannelFixture f;
  Radio tx(f.channel, 1);
  Radio rx_a(f.channel, 2);
  Radio rx_b(f.channel, 3);
  Radio dozing(f.channel, 4);
  dozing.set_receiving(false);
  int a = 0, b = 0, d = 0;
  rx_a.set_receiver([&](Packet, const Frame&) { ++a; });
  rx_b.set_receiver([&](Packet, const Frame&) { ++b; });
  dozing.set_receiver([&](Packet, const Frame&) { ++d; });
  Packet beacon = Packet::make(PacketType::wifi_beacon, Protocol::wifi_mgmt,
                               1, net::kBroadcastId, 96);
  tx.enqueue(std::move(beacon), net::kBroadcastId);
  f.sim.run_for(5_ms);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(d, 0);  // a dozing radio cannot hear broadcasts
}

TEST(Channel, PriorityFrameSkipsBackoff) {
  ChannelFixture f;
  Radio tx(f.channel, 1);
  Radio rx(f.channel, 2);
  std::vector<sim::TimePoint> starts;
  rx.set_receiver([&](Packet pkt, const Frame&) {
    starts.push_back(*pkt.stamps.air);
  });
  Packet beacon = Packet::make(PacketType::wifi_beacon, Protocol::wifi_mgmt,
                               1, 2, 96);
  tx.enqueue_priority(std::move(beacon), 2);
  f.sim.run_for(5_ms);
  ASSERT_EQ(starts.size(), 1u);
  // Zero backoff: TX starts exactly one DIFS after the request.
  EXPECT_EQ(starts[0] - sim::TimePoint::epoch(), phy_802_11g().difs);
}

TEST(Channel, FifoOrderPerRadio) {
  ChannelFixture f;
  Radio tx(f.channel, 1);
  Radio rx(f.channel, 2);
  std::vector<std::uint64_t> order;
  rx.set_receiver([&](Packet pkt, const Frame&) { order.push_back(pkt.id); });
  std::vector<std::uint64_t> sent;
  for (int i = 0; i < 10; ++i) {
    Packet pkt = data_packet(1, 2, 200);
    sent.push_back(pkt.id);
    tx.enqueue(std::move(pkt), 2);
  }
  f.sim.run_for(50_ms);
  EXPECT_EQ(order, sent);
}

TEST(Channel, DeliveryFailureReportedToTransmitter) {
  ChannelFixture f;
  Radio tx(f.channel, 1);
  Radio rx(f.channel, 2);
  rx.set_receiving(false);
  std::vector<net::NodeId> failed_to;
  tx.set_delivery_fail_handler([&](Packet, net::NodeId receiver) {
    failed_to.push_back(receiver);
  });
  tx.enqueue(data_packet(1, 2, 500), 2);
  f.sim.run_for(5_ms);
  ASSERT_EQ(failed_to.size(), 1u);
  EXPECT_EQ(failed_to[0], 2u);
}

TEST(Channel, DeliveryFailureWithoutHandlerCountsDrop) {
  ChannelFixture f;
  Radio tx(f.channel, 1);
  Radio rx(f.channel, 2);
  rx.set_receiving(false);
  tx.enqueue(data_packet(1, 2, 500), 2);
  f.sim.run_for(5_ms);
  EXPECT_EQ(tx.dropped_count(), 1u);
}

TEST(Channel, TxDoneCallbackFires) {
  ChannelFixture f;
  Radio tx(f.channel, 1);
  Radio rx(f.channel, 2);
  int done = 0;
  tx.set_tx_done([&](const Frame& frame) {
    EXPECT_EQ(frame.transmitter, 1u);
    ++done;
  });
  tx.enqueue(data_packet(1, 2, 500), 2);
  f.sim.run_for(5_ms);
  EXPECT_EQ(done, 1);
}

TEST(Channel, ContendersAllEventuallyTransmit) {
  ChannelFixture f;
  Radio a(f.channel, 1), b(f.channel, 2), c(f.channel, 3);
  Radio sink(f.channel, 9);
  int received = 0;
  sink.set_receiver([&](Packet, const Frame&) { ++received; });
  for (int i = 0; i < 30; ++i) {
    a.enqueue(data_packet(1, 9, 400), 9);
    b.enqueue(data_packet(2, 9, 400), 9);
    c.enqueue(data_packet(3, 9, 400), 9);
  }
  f.sim.run_for(2_s);
  // Everything delivered except frames that exhausted the retry limit.
  EXPECT_EQ(received + int(f.channel.frames_dropped()), 90);
  EXPECT_GT(f.channel.collisions(), 0u);
}

TEST(Channel, SaturationThroughputPureG) {
  ChannelFixture f;
  Radio tx(f.channel, 1);
  Radio rx(f.channel, 2);
  tx.set_queue_limit(3000);
  std::uint64_t bytes = 0;
  rx.set_receiver([&](Packet pkt, const Frame&) { bytes += pkt.size_bytes; });
  for (int i = 0; i < 2000; ++i) tx.enqueue(data_packet(1, 2, 1498), 2);
  f.sim.run_for(1_s);
  const double mbps = double(bytes) * 8 / 1e6;
  // 1498 B frames at 54 Mbit/s with DCF overhead: ~24-34 Mbit/s goodput.
  EXPECT_GT(mbps, 22.0);
  EXPECT_LT(mbps, 40.0);
}

TEST(Channel, MixedModeThroughputNearPaper) {
  Simulator sim;
  Channel channel(sim, sim::Rng(42), phy_802_11g_mixed());
  Radio tx(channel, 1);
  Radio rx(channel, 2);
  tx.set_queue_limit(3000);
  std::uint64_t bytes = 0;
  rx.set_receiver([&](Packet pkt, const Frame&) { bytes += pkt.size_bytes; });
  for (int i = 0; i < 2000; ++i) {
    tx.enqueue(data_packet(1, 2, 1498), 2);
  }
  sim.run_for(1_s);
  const double mbps = double(bytes) * 8 / 1e6;
  // §4.3: the congested WLAN tops out near ~10 Mbit/s.
  EXPECT_GT(mbps, 8.0);
  EXPECT_LT(mbps, 15.0);
}

TEST(Channel, QueueLimitTailDrops) {
  ChannelFixture f;
  Radio tx(f.channel, 1);
  tx.set_queue_limit(5);
  for (int i = 0; i < 10; ++i) tx.enqueue(data_packet(1, 2, 100), 2);
  EXPECT_EQ(tx.queue_depth(), 5u);
  EXPECT_EQ(tx.dropped_count(), 5u);
}

TEST(Channel, DuplicateOwnerRejected) {
  ChannelFixture f;
  Radio a(f.channel, 1);
  EXPECT_THROW(Radio(f.channel, 1), sim::ContractViolation);
}

TEST(Sniffer, CapturesEveryFrameWithAirTime) {
  ChannelFixture f;
  Sniffer sniffer("test", sim::Rng(1));
  f.channel.attach_observer(sniffer);
  Radio tx(f.channel, 1);
  Radio rx(f.channel, 2);
  Packet pkt = data_packet(1, 2, 700);
  const std::uint64_t id = pkt.id;
  tx.enqueue(std::move(pkt), 2);
  f.sim.run_for(5_ms);
  ASSERT_EQ(sniffer.captures().size(), 1u);
  EXPECT_EQ(sniffer.captures()[0].packet_id, id);
  EXPECT_EQ(sniffer.count_of(PacketType::udp_data), 1u);
  ASSERT_TRUE(sniffer.air_time_of(id).has_value());
  EXPECT_FALSE(sniffer.air_time_of(9999).has_value());
}

TEST(Sniffer, TimestampNoiseBounded) {
  Simulator sim;
  Channel channel(sim, sim::Rng(42), phy_802_11g());
  Sniffer noisy("noisy", sim::Rng(2), Duration::micros(5));
  channel.attach_observer(noisy);
  Radio tx(channel, 1);
  Radio rx(channel, 2);
  std::vector<sim::TimePoint> truth;
  rx.set_receiver([&](Packet pkt, const Frame&) {
    truth.push_back(*pkt.stamps.air);
  });
  for (int i = 0; i < 50; ++i) tx.enqueue(data_packet(1, 2, 300), 2);
  sim.run_for(100_ms);
  ASSERT_EQ(noisy.captures().size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto error = noisy.captures()[i].time - truth[i];
    EXPECT_LE(error, Duration::micros(5));
    EXPECT_GE(error, -Duration::micros(5));
  }
}

TEST(Sniffer, ClearResetsState) {
  ChannelFixture f;
  Sniffer sniffer("test", sim::Rng(1));
  f.channel.attach_observer(sniffer);
  Radio tx(f.channel, 1);
  Radio rx(f.channel, 2);
  tx.enqueue(data_packet(1, 2, 100), 2);
  f.sim.run_for(5_ms);
  ASSERT_FALSE(sniffer.captures().empty());
  sniffer.clear();
  EXPECT_TRUE(sniffer.captures().empty());
  EXPECT_EQ(sniffer.count_of(PacketType::udp_data), 0u);
}

}  // namespace
}  // namespace acute::wifi
