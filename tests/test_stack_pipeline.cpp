// The generic stack-layer pipeline: composition order, descent/ascent
// wiring, the stamp hook, and the concrete stacks built on it (the five
// WiFi phone layers and the cellular RRC radio).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cellular/rrc_radio.hpp"
#include "net/packet.hpp"
#include "phone/profile.hpp"
#include "phone/smartphone.hpp"
#include "sim/contracts.hpp"
#include "sim/simulator.hpp"
#include "stack/stack_layer.hpp"
#include "stack/stack_pipeline.hpp"
#include "wifi/access_point.hpp"
#include "wifi/channel.hpp"

namespace acute::stack {
namespace {

using namespace acute::sim::literals;
using net::Packet;
using net::PacketType;
using net::Protocol;
using sim::Duration;
using sim::Simulator;

Packet data_packet() {
  return Packet::make(PacketType::udp_data, Protocol::udp, 1, 2, 100);
}

/// A zero-latency layer that logs every traversal. The bottom of a
/// recording pipeline echoes the packet back up, exercising both verbs.
class RecordingLayer : public StackLayer {
 public:
  RecordingLayer(std::string name, std::vector<std::string>& log)
      : name_(std::move(name)), log_(&log) {}

  [[nodiscard]] const char* layer_name() const override {
    return name_.c_str();
  }

  void transmit(Packet&& packet) override {
    log_->push_back(name_ + ":tx");
    if (below() != nullptr) {
      pass_down(std::move(packet));
    } else {
      pass_up(std::move(packet));  // bottom: echo
    }
  }

  void deliver(Packet&& packet) override {
    log_->push_back(name_ + ":rx");
    pass_up(std::move(packet));
  }

 private:
  std::string name_;
  std::vector<std::string>* log_;
};

TEST(StackPipeline, TransmitDescendsThenEchoAscendsInOrder) {
  Simulator sim;
  std::vector<std::string> log;
  RecordingLayer a("a", log), b("b", log), c("c", log);
  StackPipeline pipeline(sim);
  pipeline.append(a);
  pipeline.append(b);
  pipeline.append(c);
  int delivered = 0;
  pipeline.set_app_handler([&](Packet) { ++delivered; });

  pipeline.transmit(data_packet());
  const std::vector<std::string> expected = {"a:tx", "b:tx", "c:tx",
                                             "b:rx", "a:rx"};
  EXPECT_EQ(log, expected);
  EXPECT_EQ(delivered, 1);
}

TEST(StackPipeline, InjectEntersAtTheBottom) {
  Simulator sim;
  std::vector<std::string> log;
  RecordingLayer a("a", log), b("b", log);
  StackPipeline pipeline(sim);
  pipeline.append(a);
  pipeline.append(b);
  pipeline.set_app_handler([](Packet) {});

  pipeline.inject(data_packet());
  const std::vector<std::string> expected = {"b:rx", "a:rx"};
  EXPECT_EQ(log, expected);
}

TEST(StackPipeline, DescribesLayersTopToBottom) {
  Simulator sim;
  std::vector<std::string> log;
  RecordingLayer a("top", log), b("mid", log), c("bottom", log);
  StackPipeline pipeline(sim);
  pipeline.append(a);
  pipeline.append(b);
  pipeline.append(c);
  EXPECT_EQ(pipeline.describe(), "top/mid/bottom");
  EXPECT_EQ(pipeline.size(), 3u);
  EXPECT_EQ(&pipeline.top(), &a);
  EXPECT_EQ(&pipeline.bottom(), &c);
  EXPECT_EQ(a.below(), &b);
  EXPECT_EQ(c.above(), &b);
}

TEST(StackPipeline, LayerCannotJoinTwoPipelines) {
  Simulator sim;
  std::vector<std::string> log;
  RecordingLayer a("a", log);
  StackPipeline first(sim);
  first.append(a);
  StackPipeline second(sim);
  EXPECT_THROW(second.append(a), sim::ContractViolation);
}

/// A layer whose only job is to exercise the stamp hook.
class StampingLayer : public StackLayer {
 public:
  explicit StampingLayer(Simulator& sim) : sim_(&sim) {}
  [[nodiscard]] const char* layer_name() const override { return "stamper"; }
  void transmit(Packet&& packet) override {
    stamp(packet, StampPoint::kernel_send, sim_->now());
    pass_up(std::move(packet));
  }
  void deliver(Packet&& packet) override { pass_up(std::move(packet)); }

 private:
  Simulator* sim_;
};

TEST(StackPipeline, StampHookWritesStampsAndNotifiesObserver) {
  Simulator sim;
  StampingLayer stamper(sim);
  StackPipeline pipeline(sim);
  pipeline.append(stamper);
  std::vector<std::string> observed;
  pipeline.set_stamp_observer(
      [&](const StackLayer& layer, StampPoint point, const Packet&) {
        observed.push_back(std::string(layer.layer_name()) + ":" +
                           to_string(point));
      });
  Packet out;
  pipeline.set_app_handler([&](Packet pkt) { out = std::move(pkt); });

  pipeline.transmit(data_packet());
  ASSERT_TRUE(out.stamps.kernel_send.has_value());
  EXPECT_EQ(*out.stamps.kernel_send, sim.now());
  const std::vector<std::string> expected = {"stamper:kernel_send"};
  EXPECT_EQ(observed, expected);
}

TEST(StackPipeline, WriteStampCoversEveryPoint) {
  net::LayerStamps stamps;
  const sim::TimePoint when = sim::TimePoint::from_nanos(123);
  for (const StampPoint point :
       {StampPoint::app_send, StampPoint::kernel_send,
        StampPoint::driver_xmit_entry, StampPoint::driver_txpkt,
        StampPoint::air, StampPoint::driver_isr,
        StampPoint::driver_rxf_enqueue, StampPoint::kernel_recv,
        StampPoint::app_recv}) {
    write_stamp(stamps, point, when);
    EXPECT_STRNE(to_string(point), "?");
  }
  EXPECT_EQ(stamps.app_send, when);
  EXPECT_EQ(stamps.kernel_send, when);
  EXPECT_EQ(stamps.driver_xmit_entry, when);
  EXPECT_EQ(stamps.driver_txpkt, when);
  EXPECT_EQ(stamps.air, when);
  EXPECT_EQ(stamps.driver_isr, when);
  EXPECT_EQ(stamps.driver_rxf_enqueue, when);
  EXPECT_EQ(stamps.kernel_recv, when);
  EXPECT_EQ(stamps.app_recv, when);
}

TEST(StackPipeline, SmartphoneComposesTheFiveFigOneLayers) {
  Simulator sim;
  wifi::Channel channel(sim, sim::Rng(1), wifi::phy_802_11g());
  phone::Smartphone phone(sim, channel, sim::Rng(2),
                          phone::PhoneProfile::nexus5(), 1, 2);
  EXPECT_EQ(phone.pipeline().size(), 5u);
  EXPECT_EQ(phone.pipeline().describe(),
            "exec-env/kernel/driver/sdio-bus/station");
  EXPECT_EQ(&phone.pipeline().top(), &phone.exec_env());
  EXPECT_EQ(&phone.pipeline().bottom(), &phone.station());
}

TEST(StackPipeline, SmartphoneStampObserverSeesTheDescent) {
  Simulator sim;
  wifi::Channel channel(sim, sim::Rng(1), wifi::phy_802_11g());
  wifi::AccessPoint ap(sim, channel, sim::Rng(3), [] {
    wifi::AccessPoint::Config config;
    config.id = 2;
    return config;
  }());
  phone::Smartphone phone(sim, channel, sim::Rng(2),
                          phone::PhoneProfile::nexus5(), 1, 2);
  ap.associate(1, 10);

  std::vector<StampPoint> points;
  phone.pipeline().set_stamp_observer(
      [&](const StackLayer&, StampPoint point, const Packet&) {
        points.push_back(point);
      });
  Packet pkt = data_packet();
  pkt.ttl = 1;  // die at the AP
  phone.send(std::move(pkt), phone::ExecMode::native_c);
  sim.run_for(100_ms);
  const std::vector<StampPoint> expected = {
      StampPoint::app_send, StampPoint::kernel_send,
      StampPoint::driver_xmit_entry, StampPoint::driver_txpkt};
  EXPECT_EQ(points, expected);
}

TEST(RrcRadioLayer, UplinkPaysPromotionDownlinkPaysStateLatency) {
  Simulator sim;
  cellular::RrcConfig config = cellular::RrcConfig::umts_3g();
  cellular::RrcMachine rrc(sim, sim::Rng(4), config);
  cellular::RrcRadioLayer radio(sim, rrc);
  StackPipeline pipeline(sim);
  pipeline.append(radio);

  std::vector<sim::TimePoint> egress_times;
  radio.set_egress([&](Packet) { egress_times.push_back(sim.now()); });
  std::vector<sim::TimePoint> up_times;
  pipeline.set_app_handler([&](Packet) { up_times.push_back(sim.now()); });

  // First uplink out of IDLE: promotion (~2 s) + DCH latency.
  pipeline.transmit(data_packet());
  sim.run_for(5_s);
  ASSERT_EQ(egress_times.size(), 1u);
  EXPECT_GE(egress_times[0] - sim::TimePoint::epoch(),
            config.idle_to_dch - config.promotion_jitter);
  EXPECT_EQ(radio.uplink_packets(), 1u);
  EXPECT_EQ(rrc.state(), cellular::RrcState::cell_dch);

  // Downlink in DCH: only the (1 ms) DCH latency before the ascent.
  const sim::TimePoint injected_at = sim.now();
  radio.deliver(data_packet());
  sim.run_for(1_s);
  ASSERT_EQ(up_times.size(), 1u);
  EXPECT_EQ(up_times[0] - injected_at, config.dch_latency);
  EXPECT_EQ(radio.downlink_packets(), 1u);
}

}  // namespace
}  // namespace acute::stack
