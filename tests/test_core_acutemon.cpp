// AcuteMon behaviour (§4.1) and its headline accuracy property (§4.2):
// warm-up timing, background cadence, TTL=1 containment, and the
// <3 ms median overhead across handsets and path lengths.
#include <gtest/gtest.h>

#include "core/acutemon.hpp"
#include "core/layer_sample.hpp"
#include "stats/summary.hpp"
#include "testbed/experiment.hpp"
#include "testbed/testbed.hpp"

namespace acute::core {
namespace {

using namespace acute::sim::literals;
using sim::Duration;
using testbed::Testbed;

tools::MeasurementTool::Config mt_config(int probes) {
  tools::MeasurementTool::Config config;
  config.probe_count = probes;
  config.timeout = 1_s;
  config.target = Testbed::kServerId;
  return config;
}

TEST(AcuteMon, WarmupPrecedesFirstProbeByDpre) {
  testbed::TestbedConfig tb_config;
  tb_config.emulated_rtt = 30_ms;
  Testbed testbed(tb_config);
  testbed.settle(800_ms);
  AcuteMon monitor(testbed.phone(), mt_config(5));
  const auto start = testbed.simulator().now();
  monitor.start_measurement();
  EXPECT_TRUE(monitor.warmup_sent());
  testbed.run_until_finished(monitor);
  // First probe left dpre = 20 ms after the warm-up.
  const auto samples = testbed.layer_samples(monitor.result());
  ASSERT_FALSE(samples.empty());
  const auto& first = monitor.result().probes.front();
  ASSERT_TRUE(first.response.has_value());
  const auto app_send = first.response->request_stamps->app_send;
  ASSERT_TRUE(app_send.has_value());
  EXPECT_NEAR((*app_send - start).to_ms(), 20.0, 0.5);
}

TEST(AcuteMon, BackgroundCadenceMatchesPaperEstimate) {
  // §4.1: K = 5 probes on a 100 ms path -> ~25 background packets.
  testbed::TestbedConfig tb_config;
  tb_config.emulated_rtt = 100_ms;
  Testbed testbed(tb_config);
  testbed.settle(800_ms);
  AcuteMon monitor(testbed.phone(), mt_config(5));
  monitor.start_measurement();
  testbed.run_until_finished(monitor);
  EXPECT_NEAR(double(monitor.background_packets_sent()), 25.0, 6.0);
}

TEST(AcuteMon, KeepAlivesDieAtTheGateway) {
  testbed::TestbedConfig tb_config;
  tb_config.emulated_rtt = 50_ms;
  Testbed testbed(tb_config);
  testbed.phone().set_system_traffic_enabled(false);
  testbed.settle(800_ms);
  const auto drops_before = testbed.ap().ttl_drops();
  const auto served_before = testbed.server().requests_served();
  AcuteMon monitor(testbed.phone(), mt_config(10));
  monitor.start_measurement();
  testbed.run_until_finished(monitor);
  // warm-up + every background packet died at the AP...
  EXPECT_EQ(testbed.ap().ttl_drops() - drops_before,
            1 + monitor.background_packets_sent());
  // ...and the server saw exactly the K probes.
  EXPECT_EQ(testbed.server().requests_served() - served_before, 10u);
}

TEST(AcuteMon, PhoneNeverDozesDuringMeasurement) {
  testbed::TestbedConfig tb_config;
  tb_config.profile = phone::PhoneProfile::nexus4();  // Tip ~40 ms
  tb_config.emulated_rtt = 135_ms;                    // longer than Tip
  Testbed testbed(tb_config);
  testbed.settle(800_ms);
  const auto dozes_before = testbed.phone().station().doze_count();
  const auto sleeps_before = testbed.phone().bus().sleep_count();
  AcuteMon monitor(testbed.phone(), mt_config(30));
  monitor.start_measurement();
  testbed.run_until_finished(monitor);
  EXPECT_EQ(testbed.phone().station().doze_count(), dozes_before);
  EXPECT_EQ(testbed.phone().bus().sleep_count(), sleeps_before);
}

TEST(AcuteMon, BackgroundStopsWithMeasurement) {
  Testbed testbed;
  testbed.settle(800_ms);
  AcuteMon monitor(testbed.phone(), mt_config(3));
  monitor.start_measurement();
  testbed.run_until_finished(monitor);
  const auto sent_at_finish = monitor.background_packets_sent();
  testbed.settle(1_s);
  EXPECT_LE(monitor.background_packets_sent(), sent_at_finish + 1);
}

TEST(AcuteMon, DisabledBackgroundSendsNone) {
  Testbed testbed;
  testbed.settle(800_ms);
  AcuteMon::Options options;
  options.background_enabled = false;
  AcuteMon monitor(testbed.phone(), mt_config(5), options);
  monitor.start_measurement();
  testbed.run_until_finished(monitor);
  EXPECT_EQ(monitor.background_packets_sent(), 0u);
  EXPECT_TRUE(monitor.warmup_sent());
}

TEST(AcuteMon, HttpProbeMethodWorks) {
  testbed::TestbedConfig tb_config;
  tb_config.emulated_rtt = 30_ms;
  Testbed testbed(tb_config);
  testbed.settle(800_ms);
  AcuteMon::Options options;
  options.method = AcuteMon::ProbeMethod::http;
  AcuteMon monitor(testbed.phone(), mt_config(5), options);
  monitor.start_measurement();
  testbed.run_until_finished(monitor);
  for (const auto& probe : monitor.result().probes) {
    ASSERT_TRUE(probe.response.has_value());
    EXPECT_EQ(probe.response->type, net::PacketType::http_response);
  }
}

TEST(AcuteMon, OptionContracts) {
  Testbed testbed;
  AcuteMon::Options options;
  options.warmup_lead = Duration{};
  EXPECT_THROW(AcuteMon(testbed.phone(), mt_config(5), options),
               sim::ContractViolation);
  options.warmup_lead = 20_ms;
  options.background_interval = Duration{};
  EXPECT_THROW(AcuteMon(testbed.phone(), mt_config(5), options),
               sim::ContractViolation);
}

// ---- The headline property (§4.2.2): for every handset and every path
// length, AcuteMon's median total overhead stays within 3 ms (4 ms for the
// slow single-core Xperia J whose driver costs reach that level), and the
// overhead is independent of the emulated RTT.
struct AccuracyCase {
  int phone_index;
  int rtt_ms;
};

class AcuteMonAccuracy : public ::testing::TestWithParam<AccuracyCase> {};

TEST_P(AcuteMonAccuracy, MedianOverheadWithinPaperBound) {
  const auto param = GetParam();
  const auto profile = phone::PhoneProfile::all()[param.phone_index];
  testbed::Experiment::AcuteMonSpec spec;
  spec.profile = profile;
  spec.emulated_rtt = Duration::millis(param.rtt_ms);
  spec.probes = 60;
  spec.seed = 42 + param.phone_index * 10 + param.rtt_ms;
  const auto result = testbed::Experiment::acutemon(spec);

  ASSERT_GE(result.samples.size(), 55u);
  const stats::Summary overhead(
      result.values(&LayerSample::total_overhead));
  const double bound = profile.name == "Sony Xperia J" ? 4.5 : 3.0;
  EXPECT_LT(overhead.median(), bound) << profile.name;
  EXPECT_GE(overhead.median(), 0.0) << profile.name;

  // dn itself stays glued to the emulated value (Table 5).
  const stats::Summary dn(result.values(&LayerSample::dn_ms));
  EXPECT_NEAR(dn.mean(), param.rtt_ms, 3.0) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(
    PhonesByRtt, AcuteMonAccuracy,
    ::testing::Values(AccuracyCase{0, 20}, AccuracyCase{0, 135},
                      AccuracyCase{1, 20}, AccuracyCase{1, 135},
                      AccuracyCase{2, 20}, AccuracyCase{2, 135},
                      AccuracyCase{3, 20}, AccuracyCase{3, 135},
                      AccuracyCase{4, 20}, AccuracyCase{4, 135}));

}  // namespace
}  // namespace acute::core
