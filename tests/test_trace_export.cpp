// CSV trace export for captures and layer samples.
#include <gtest/gtest.h>

#include <sstream>

#include "testbed/experiment.hpp"
#include "testbed/trace_export.hpp"

namespace acute::testbed {
namespace {

using namespace acute::sim::literals;

TEST(TraceExport, CapturesCsvHasHeaderAndRows) {
  wifi::Sniffer::Capture capture;
  capture.time = sim::TimePoint::from_nanos(1'234'000);
  capture.packet_id = 42;
  capture.probe_id = 7;
  capture.type = net::PacketType::tcp_syn;
  capture.transmitter = 1;
  capture.receiver = 2;
  capture.size_bytes = 60;
  capture.collided = false;

  const std::string csv = TraceExport::captures_csv({capture});
  EXPECT_NE(csv.find("time_us,packet_id,probe_id,type"), std::string::npos);
  EXPECT_NE(csv.find("1234,42,7,tcp_syn,1,2,60,0"), std::string::npos);
}

TEST(TraceExport, SamplesCsvHasAllColumns) {
  core::LayerSample sample;
  sample.probe_id = 5;
  sample.du_ms = 33.5;
  sample.dk_ms = 33.0;
  sample.dv_ms = 32.5;
  sample.dn_ms = 31.0;
  sample.dvsend_ms = 0.25;
  sample.dvrecv_ms = 1.5;
  const std::string csv = TraceExport::samples_csv({sample});
  EXPECT_NE(csv.find("probe_id,du_ms,dk_ms,dv_ms,dn_ms"), std::string::npos);
  EXPECT_NE(csv.find("5,33.5000,33.0000,32.5000,31.0000"), std::string::npos);
  EXPECT_NE(csv.find(",2.5000\n"), std::string::npos);  // total overhead
}

TEST(TraceExport, EmptyInputsYieldHeaderOnly) {
  const std::string captures = TraceExport::captures_csv({});
  EXPECT_EQ(std::count(captures.begin(), captures.end(), '\n'), 1);
  const std::string samples = TraceExport::samples_csv({});
  EXPECT_EQ(std::count(samples.begin(), samples.end(), '\n'), 1);
}

TEST(TraceExport, RoundTripsARealExperiment) {
  Experiment::AcuteMonSpec spec;
  spec.probes = 10;
  spec.emulated_rtt = 20_ms;
  const auto result = Experiment::acutemon(spec);
  const std::string csv = TraceExport::samples_csv(result.samples);
  // Header + one line per sample.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            std::ptrdiff_t(result.samples.size()) + 1);
  // Every data row has exactly 10 columns.
  std::istringstream stream(csv);
  std::string line;
  std::getline(stream, line);  // header
  while (std::getline(stream, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 9) << line;
  }
}

}  // namespace
}  // namespace acute::testbed
