// LayerSample decomposition and the overhead calibrator (§4.2.2).
#include <gtest/gtest.h>

#include "core/calibration.hpp"
#include "core/layer_sample.hpp"
#include "stats/summary.hpp"
#include "testbed/experiment.hpp"

namespace acute::core {
namespace {

using namespace acute::sim::literals;
using net::Packet;
using sim::Duration;
using sim::TimePoint;

Packet stamped_response(double du_ms, double dk_ms, double dn_ms) {
  // Construct a response whose stamps produce exactly the requested RTTs.
  Packet request = Packet::make(net::PacketType::tcp_syn, net::Protocol::tcp,
                                1, 4, 60);
  auto& tx = request.stamps;
  tx.app_send = TimePoint::epoch();
  tx.kernel_send = TimePoint::epoch() + Duration::millis((du_ms - dk_ms) / 2);
  tx.driver_xmit_entry = *tx.kernel_send + Duration::millis(0.05);
  tx.driver_txpkt = *tx.driver_xmit_entry + Duration::millis(0.2);
  tx.air = TimePoint::epoch() + Duration::millis((du_ms - dn_ms) / 2);

  Packet response =
      Packet::make_response(request, net::PacketType::tcp_syn_ack, 60);
  auto& rx = response.stamps;
  rx.air = *tx.air + Duration::millis(dn_ms);
  rx.driver_isr = *rx.air + Duration::millis(0.05);
  rx.driver_rxf_enqueue = *rx.driver_isr + Duration::millis(1.5);
  rx.kernel_recv = *tx.kernel_send + Duration::millis(dk_ms);
  rx.app_recv = TimePoint::epoch() + Duration::millis(du_ms);
  response.probe_id = 7;
  return response;
}

TEST(LayerSample, DecomposesStampsIntoPaperQuantities) {
  const Packet response = stamped_response(33.0, 32.5, 31.0);
  const auto sample = LayerSample::from_response(response);
  ASSERT_TRUE(sample.has_value());
  EXPECT_NEAR(sample->du_ms, 33.0, 1e-9);
  EXPECT_NEAR(sample->dk_ms, 32.5, 1e-9);
  EXPECT_NEAR(sample->dn_ms, 31.0, 1e-9);
  EXPECT_NEAR(sample->du_k(), 0.5, 1e-9);
  EXPECT_NEAR(sample->dk_n(), 1.5, 1e-9);
  EXPECT_NEAR(sample->total_overhead(), 2.0, 1e-9);
  EXPECT_NEAR(sample->dvsend_ms, 0.2, 1e-9);
  EXPECT_NEAR(sample->dvrecv_ms, 1.5, 1e-9);
  EXPECT_EQ(sample->probe_id, 7u);
}

TEST(LayerSample, ReportedDuOverridesStamps) {
  const Packet response = stamped_response(33.0, 32.5, 31.0);
  const auto sample = LayerSample::from_response(response, 33.0 /* floor */);
  ASSERT_TRUE(sample.has_value());
  EXPECT_DOUBLE_EQ(sample->du_ms, 33.0);
}

TEST(LayerSample, MissingStampsYieldNullopt) {
  Packet response = stamped_response(33.0, 32.5, 31.0);
  response.stamps.kernel_recv.reset();
  EXPECT_FALSE(LayerSample::from_response(response).has_value());

  Packet no_request = Packet::make(net::PacketType::tcp_syn_ack,
                                   net::Protocol::tcp, 4, 1, 60);
  EXPECT_FALSE(LayerSample::from_response(no_request).has_value());
}

TEST(LayerSample, ExtractPullsFieldsAndDerived) {
  std::vector<LayerSample> samples;
  for (double overhead : {1.0, 2.0, 3.0}) {
    const auto sample =
        LayerSample::from_response(stamped_response(30.0 + overhead, 30.5,
                                                    30.0));
    samples.push_back(*sample);
  }
  const auto du = extract(samples, &LayerSample::du_ms);
  EXPECT_EQ(du.size(), 3u);
  EXPECT_DOUBLE_EQ(du[0], 31.0);
  const auto overheads = extract(samples, &LayerSample::total_overhead);
  EXPECT_DOUBLE_EQ(overheads[2], 3.0);
}

TEST(Calibrator, LearnsMedianOverhead) {
  std::vector<LayerSample> samples;
  for (double overhead : {1.8, 2.0, 2.2, 2.1, 1.9}) {
    samples.push_back(*LayerSample::from_response(
        stamped_response(30.0 + overhead, 30.2, 30.0)));
  }
  const auto calibration = OverheadCalibrator::learn(samples);
  EXPECT_NEAR(calibration.median_overhead_ms, 2.0, 1e-9);
  EXPECT_EQ(calibration.sample_count, 5u);
  EXPECT_NEAR(calibration.apply(35.0), 33.0, 1e-9);
  EXPECT_GT(calibration.iqr_ms(), 0.0);
  EXPECT_LT(calibration.iqr_ms(), 0.5);
}

TEST(Calibrator, CorrectBatch) {
  CalibrationResult calibration;
  calibration.median_overhead_ms = 2.5;
  const auto corrected =
      OverheadCalibrator::correct(calibration, {10.0, 20.0});
  EXPECT_EQ(corrected, (std::vector<double>{7.5, 17.5}));
}

TEST(Calibrator, RequiresSamples) {
  EXPECT_THROW((void)OverheadCalibrator::learn({}), sim::ContractViolation);
}

TEST(Calibrator, EndToEndCalibrationRecoversEmulatedRtt) {
  // Learn the overhead on a short path, then correct a long-path run:
  // calibrated user-level RTTs land within ~1 ms of the emulated value.
  testbed::Experiment::AcuteMonSpec learn_spec;
  learn_spec.emulated_rtt = 20_ms;
  learn_spec.probes = 60;
  const auto learn_run = testbed::Experiment::acutemon(learn_spec);
  const auto calibration = OverheadCalibrator::learn(learn_run.samples);

  testbed::Experiment::AcuteMonSpec apply_spec;
  apply_spec.emulated_rtt = 135_ms;
  apply_spec.probes = 60;
  apply_spec.seed = 99;
  const auto apply_run = testbed::Experiment::acutemon(apply_spec);

  const auto corrected = OverheadCalibrator::correct(
      calibration, apply_run.run.reported_rtts_ms());
  const double median = stats::Summary(corrected).median();
  // The *true* network RTT on this path (emulated + testbed fabric).
  const double dn_median =
      stats::Summary(apply_run.values(&LayerSample::dn_ms)).median();
  EXPECT_NEAR(median, dn_median, 1.0);
}

}  // namespace
}  // namespace acute::core
