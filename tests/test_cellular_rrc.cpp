// Cellular RRC substrate (§4.1's extension target): state transitions,
// promotion costs, demotion timers, and the warm-up mitigation.
#include <gtest/gtest.h>

#include "cellular/cellular_probe.hpp"
#include "cellular/rrc.hpp"
#include "sim/simulator.hpp"
#include "stats/summary.hpp"

namespace acute::cellular {
namespace {

using namespace acute::sim::literals;
using sim::Duration;
using sim::Simulator;

struct RrcFixture {
  Simulator sim;
  RrcConfig config = RrcConfig::umts_3g();
  RrcMachine rrc{sim, sim::Rng(3), config};
};

TEST(RrcMachine, StartsIdle) {
  RrcFixture f;
  EXPECT_EQ(f.rrc.state(), RrcState::idle);
  EXPECT_EQ(f.rrc.promotions(), 0u);
}

TEST(RrcMachine, FirstTransmitPaysIdlePromotion) {
  RrcFixture f;
  const Duration wait = f.rrc.request_transmit(400);
  EXPECT_GE(wait, f.config.idle_to_dch - f.config.promotion_jitter);
  EXPECT_LE(wait, f.config.idle_to_dch + f.config.promotion_jitter);
  EXPECT_EQ(f.rrc.state(), RrcState::cell_dch);
  EXPECT_EQ(f.rrc.promotions(), 1u);
}

TEST(RrcMachine, TransmitInDchIsFreeOncePromoted) {
  RrcFixture f;
  const Duration first = f.rrc.request_transmit(400);
  f.sim.run_for(first + 10_ms);
  EXPECT_EQ(f.rrc.request_transmit(400), Duration{});
}

TEST(RrcMachine, ConcurrentTransmitJoinsPromotion) {
  RrcFixture f;
  const Duration first = f.rrc.request_transmit(400);
  f.sim.run_for(500_ms);
  const Duration second = f.rrc.request_transmit(400);
  EXPECT_EQ(second, first - 500_ms);
  EXPECT_EQ(f.rrc.promotions(), 1u);
}

TEST(RrcMachine, DemotesDchToFachToIdle) {
  RrcFixture f;
  const Duration wait = f.rrc.request_transmit(400);
  f.sim.run_for(wait + 10_ms);
  ASSERT_EQ(f.rrc.state(), RrcState::cell_dch);
  // DCH inactivity (5 s) then FACH inactivity (12 s).
  f.sim.run_for(f.config.dch_inactivity + 100_ms);
  EXPECT_EQ(f.rrc.state(), RrcState::cell_fach);
  f.sim.run_for(f.config.fach_inactivity + 100_ms);
  EXPECT_EQ(f.rrc.state(), RrcState::idle);
  EXPECT_EQ(f.rrc.demotions(), 2u);
}

TEST(RrcMachine, ActivityHoldsDch) {
  RrcFixture f;
  const Duration wait = f.rrc.request_transmit(400);
  f.sim.run_for(wait + 10_ms);
  // Keep-alives every 2 s << 5 s inactivity.
  for (int i = 0; i < 10; ++i) {
    f.sim.run_for(2_s);
    (void)f.rrc.request_transmit(400);
  }
  EXPECT_EQ(f.rrc.state(), RrcState::cell_dch);
  EXPECT_EQ(f.rrc.demotions(), 0u);
}

TEST(RrcMachine, SmallPacketsRideFachWithoutPromotion) {
  RrcFixture f;
  const Duration wait = f.rrc.request_transmit(400);
  f.sim.run_for(wait + f.config.dch_inactivity + 100_ms);
  ASSERT_EQ(f.rrc.state(), RrcState::cell_fach);
  // Below the threshold: no promotion, no extra wait.
  EXPECT_EQ(f.rrc.request_transmit(64), Duration{});
  EXPECT_EQ(f.rrc.state(), RrcState::cell_fach);
}

TEST(RrcMachine, LargePacketInFachPromotes) {
  RrcFixture f;
  const Duration wait = f.rrc.request_transmit(400);
  f.sim.run_for(wait + f.config.dch_inactivity + 100_ms);
  ASSERT_EQ(f.rrc.state(), RrcState::cell_fach);
  const Duration promo = f.rrc.request_transmit(400);
  EXPECT_GE(promo, f.config.fach_to_dch - f.config.promotion_jitter);
  EXPECT_LE(promo, f.config.fach_to_dch + f.config.promotion_jitter);
  EXPECT_EQ(f.rrc.state(), RrcState::cell_dch);
}

TEST(RrcMachine, StateLatencyReflectsState) {
  RrcFixture f;
  EXPECT_EQ(f.rrc.state_latency(), f.config.fach_latency);  // idle: FACH-ish
  const Duration wait = f.rrc.request_transmit(400);
  f.sim.run_for(wait + 10_ms);
  EXPECT_EQ(f.rrc.state_latency(), f.config.dch_latency);
}

TEST(RrcMachine, StateNames) {
  EXPECT_STREQ(to_string(RrcState::idle), "IDLE");
  EXPECT_STREQ(to_string(RrcState::cell_fach), "CELL_FACH");
  EXPECT_STREQ(to_string(RrcState::cell_dch), "CELL_DCH");
}

TEST(RrcConfig, LtePromotesFasterThan3g) {
  EXPECT_LT(RrcConfig::lte().idle_to_dch, RrcConfig::umts_3g().idle_to_dch);
}

TEST(CellularProbeSession, NaiveProbesPayPromotion) {
  CellularProbeSession::Spec spec;
  spec.probes = 10;
  spec.keep_awake = false;
  spec.probe_interval = spec.rrc.dch_inactivity + spec.rrc.fach_inactivity +
                        2_s;  // radio fully idles between probes
  const auto rtts = CellularProbeSession::run(spec);
  ASSERT_EQ(rtts.size(), 10u);
  // Every probe pays ~2 s of promotion on top of the 50 ms core RTT.
  for (const double rtt : rtts) {
    EXPECT_GT(rtt, 1500.0);
  }
}

TEST(CellularProbeSession, WarmedProbesSeeCoreRtt) {
  CellularProbeSession::Spec spec;
  spec.probes = 10;
  spec.keep_awake = true;
  spec.probe_interval = 3_s;  // < DCH inactivity with keep-alives anyway
  const auto rtts = CellularProbeSession::run(spec);
  ASSERT_EQ(rtts.size(), 10u);
  const double median = stats::Summary(rtts).median();
  EXPECT_NEAR(median, 52.0, 6.0);  // core RTT + DCH latency only
}

TEST(CellularProbeSession, MitigationFactorIsLarge) {
  CellularProbeSession::Spec naive;
  naive.probes = 8;
  naive.keep_awake = false;
  naive.probe_interval = naive.rrc.dch_inactivity +
                         naive.rrc.fach_inactivity + 2_s;
  CellularProbeSession::Spec warmed = naive;
  warmed.keep_awake = true;
  warmed.probe_interval = 3_s;
  const double naive_median =
      stats::Summary(CellularProbeSession::run(naive)).median();
  const double warmed_median =
      stats::Summary(CellularProbeSession::run(warmed)).median();
  EXPECT_GT(naive_median / warmed_median, 10.0);
}

}  // namespace
}  // namespace acute::cellular
