// End-to-end integration: the testbed reproduces the paper's shape claims.
// Each test pins one qualitative result from the evaluation (§3, §4).
#include <gtest/gtest.h>

#include "core/acutemon.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "testbed/experiment.hpp"

namespace acute::testbed {
namespace {

using namespace acute::sim::literals;
using core::LayerSample;
using phone::PhoneProfile;
using sim::Duration;

TEST(Testbed, FastPingMatchesEmulatedRttAtAllLayers) {
  // Table 2, 10 ms interval rows: du ~ dk ~ dn ~ emulated RTT (+ ~1-3 ms).
  Experiment::PingSpec spec;
  spec.interval = 10_ms;
  spec.emulated_rtt = 30_ms;
  const auto result = Experiment::ping(spec);
  ASSERT_GE(result.samples.size(), 95u);
  const stats::Summary du(result.values(&LayerSample::du_ms));
  const stats::Summary dn(result.values(&LayerSample::dn_ms));
  EXPECT_NEAR(dn.mean(), 31.3, 1.0);
  EXPECT_NEAR(du.mean(), 33.4, 1.5);
  EXPECT_LT(du.mean() - dn.mean(), 4.0);
}

TEST(Testbed, SlowPingInflatesOnNexus5InternallyOnly) {
  // Table 2: Nexus 5 at 1 s interval inflates du by ~12 ms at 30 ms
  // emulated, while dn stays at the emulated value.
  Experiment::PingSpec spec;
  spec.profile = PhoneProfile::nexus5();
  spec.interval = 1_s;
  spec.emulated_rtt = 30_ms;
  const auto result = Experiment::ping(spec);
  const stats::Summary du(result.values(&LayerSample::du_ms));
  const stats::Summary dn(result.values(&LayerSample::dn_ms));
  EXPECT_GT(du.mean(), 40.0);
  EXPECT_LT(du.mean(), 47.0);
  EXPECT_NEAR(dn.mean(), 31.3, 1.5);  // no PSM activity on the air
}

TEST(Testbed, SlowPingOnNexus5At60msPaysBothWakes) {
  // Table 2: at 60 ms the response also meets a sleeping bus: ~+21 ms.
  Experiment::PingSpec spec;
  spec.profile = PhoneProfile::nexus5();
  spec.interval = 1_s;
  spec.emulated_rtt = 60_ms;
  const auto result = Experiment::ping(spec);
  const stats::Summary du(result.values(&LayerSample::du_ms));
  const stats::Summary dn(result.values(&LayerSample::dn_ms));
  EXPECT_GT(du.mean() - dn.mean(), 15.0);
  EXPECT_LT(du.mean() - dn.mean(), 28.0);
  EXPECT_NEAR(dn.mean(), 61.3, 1.5);
}

TEST(Testbed, SlowPingOnNexus4At60msInflatesExternally) {
  // Table 2: Nexus 4 (Tip ~40 ms) at 60 ms emulated: dn itself inflates by
  // tens of milliseconds (PSM buffering at the AP).
  Experiment::PingSpec spec;
  spec.profile = PhoneProfile::nexus4();
  spec.interval = 1_s;
  spec.emulated_rtt = 60_ms;
  const auto result = Experiment::ping(spec);
  const stats::Summary dn(result.values(&LayerSample::dn_ms));
  EXPECT_GT(dn.mean(), 100.0);  // paper: 130.03 +/- 7.52
  EXPECT_LT(dn.mean(), 160.0);
  // Internal inflation stays small on the SMD bus (~5-7 ms).
  const stats::Summary du(result.values(&LayerSample::du_ms));
  EXPECT_LT(du.mean() - dn.mean(), 10.0);
}

TEST(Testbed, SlowPingOnNexus4At30msInflatesPartially) {
  // Table 2's subtlest cell: the 30 ms response races the ~40 ms doze
  // entry, so only a fraction of probes pay the beacon wait.
  Experiment::PingSpec spec;
  spec.profile = PhoneProfile::nexus4();
  spec.interval = 1_s;
  spec.emulated_rtt = 30_ms;
  const auto result = Experiment::ping(spec);
  const stats::Summary dn(result.values(&LayerSample::dn_ms));
  EXPECT_GT(dn.mean(), 33.0);   // some external inflation...
  EXPECT_LT(dn.mean(), 55.0);   // ...but far from the every-probe case
  int inflated = 0;
  for (const double v : result.values(&LayerSample::dn_ms)) {
    if (v > 45.0) ++inflated;
  }
  EXPECT_GT(inflated, 2);
  EXPECT_LT(inflated, 60);
}

TEST(Testbed, DriverLogsSeparateSleepFromBase) {
  // Table 3 shape: enabled/1 s wake ~10-14 ms; disabled stays at base.
  Experiment::DriverDelaySpec enabled;
  enabled.interval = 1_s;
  enabled.probes = 50;
  const auto with_sleep = Experiment::driver_delays(enabled);
  Experiment::DriverDelaySpec disabled = enabled;
  disabled.bus_sleep_enabled = false;
  const auto without_sleep = Experiment::driver_delays(disabled);

  const stats::Summary dvsend_on(with_sleep.dvsend_ms);
  const stats::Summary dvsend_off(without_sleep.dvsend_ms);
  EXPECT_GT(dvsend_on.mean(), 8.0);
  EXPECT_LT(dvsend_off.mean(), 1.2);
  EXPECT_LT(dvsend_off.max(), 2.0);

  const stats::Summary dvrecv_on(with_sleep.dvrecv_ms);
  const stats::Summary dvrecv_off(without_sleep.dvrecv_ms);
  EXPECT_GT(dvrecv_on.mean(), dvrecv_off.mean() + 6.0);
}

TEST(Testbed, AcuteMonOutperformsEveryBaselineTool) {
  // Fig. 8(a): AcuteMon's median sits >8 ms below every other tool.
  const ToolKind baselines[] = {ToolKind::icmp_ping, ToolKind::httping,
                                ToolKind::java_ping};
  Experiment::ToolSpec am_spec;
  am_spec.kind = ToolKind::acutemon;
  am_spec.probes = 60;
  const double am_median = stats::Summary(
      Experiment::tool(am_spec).run.reported_rtts_ms()).median();
  EXPECT_LT(am_median, 35.0);  // ~90% below 35 ms in the paper

  for (const ToolKind kind : baselines) {
    Experiment::ToolSpec spec;
    spec.kind = kind;
    spec.probes = 60;
    const double median = stats::Summary(
        Experiment::tool(spec).run.reported_rtts_ms()).median();
    EXPECT_GT(median, am_median + 8.0) << to_string(kind);
  }
}

TEST(Testbed, CrossTrafficSaturatesNearTenMbps) {
  TestbedConfig config;
  config.congested_phy = true;
  Testbed testbed(config);
  testbed.settle(500_ms);
  testbed.start_cross_traffic();
  testbed.settle(3_s);
  const double mbps = testbed.cross_traffic_throughput_mbps();
  EXPECT_GT(mbps, 8.0);  // §4.3: "maximum throughput is only around 10Mbps"
  EXPECT_LT(mbps, 15.0);
}

TEST(Testbed, CrossTrafficShiftsAllToolsRight) {
  // Fig. 8(b): congestion adds medium-access delay for every tool.
  Experiment::ToolSpec clear_spec;
  clear_spec.kind = ToolKind::acutemon;
  clear_spec.probes = 50;
  const double clear_median = stats::Summary(
      Experiment::tool(clear_spec).run.reported_rtts_ms()).median();

  Experiment::ToolSpec busy_spec = clear_spec;
  busy_spec.cross_traffic = true;
  const double busy_median = stats::Summary(
      Experiment::tool(busy_spec).run.reported_rtts_ms()).median();
  EXPECT_GT(busy_median, clear_median + 1.0);
}

TEST(Testbed, BackgroundTrafficDoesNotPerturbCongestedRuns) {
  // Fig. 9: with the bus sleep disabled, the with/without-background CDFs
  // nearly coincide (KS distance small).
  Experiment::AcuteMonSpec with_bg;
  with_bg.cross_traffic = true;
  with_bg.bus_sleep_enabled = false;
  with_bg.probes = 80;
  Experiment::AcuteMonSpec without_bg = with_bg;
  without_bg.background_enabled = false;
  without_bg.seed = 43;

  const auto run_with = Experiment::acutemon(with_bg);
  const auto run_without = Experiment::acutemon(without_bg);
  const stats::Cdf cdf_with(run_with.run.reported_rtts_ms());
  const stats::Cdf cdf_without(run_without.run.reported_rtts_ms());
  EXPECT_LT(stats::Cdf::ks_distance(cdf_with, cdf_without), 0.25);
  // Medians within ~1.5 ms of each other.
  EXPECT_NEAR(cdf_with.quantile(0.5), cdf_without.quantile(0.5), 1.5);
}

TEST(Testbed, SnifferDnAgreesWithStampDn) {
  // The sniffer-derived network RTT matches the channel ground truth.
  TestbedConfig config;
  config.emulated_rtt = 30_ms;
  Testbed testbed(config);
  testbed.settle(800_ms);
  core::AcuteMon monitor(testbed.phone(), [] {
    tools::MeasurementTool::Config c;
    c.probe_count = 20;
    c.timeout = 1_s;
    c.target = Testbed::kServerId;
    return c;
  }());
  monitor.start_measurement();
  testbed.run_until_finished(monitor);

  for (const auto& probe : monitor.result().probes) {
    ASSERT_TRUE(probe.response.has_value());
    const auto& response = *probe.response;
    const auto rx_air = testbed.sniffer(0).air_time_of(response.id);
    ASSERT_TRUE(rx_air.has_value());
    const auto truth = response.stamps.air;
    ASSERT_TRUE(truth.has_value());
    const Duration error = *rx_air - *truth;
    EXPECT_LE(error, Duration::micros(3));   // capture noise only
    EXPECT_GE(error, -Duration::micros(3));
  }
  // All three sniffers saw the same frame count (0.5 m apart, §2.2).
  EXPECT_EQ(testbed.sniffer(0).captures().size(),
            testbed.sniffer(1).captures().size());
  EXPECT_EQ(testbed.sniffer(1).captures().size(),
            testbed.sniffer(2).captures().size());
}

TEST(Testbed, InferredTimeoutsMatchProfiles) {
  // Table 4 for one Qualcomm and one Broadcom handset (the full five-phone
  // sweep runs in bench_table4).
  const auto grand = Experiment::infer_timeouts(PhoneProfile::galaxy_grand());
  EXPECT_NEAR(grand.psm_timeout.to_ms(), 45.0, 12.0);
  EXPECT_NEAR(grand.bus_sleep_timeout.to_ms(), 50.0, 15.0);
  EXPECT_EQ(grand.listen_associated, 10);
  EXPECT_EQ(grand.listen_actual, 0);

  const auto htc = Experiment::infer_timeouts(PhoneProfile::htc_one());
  EXPECT_NEAR(htc.psm_timeout.to_ms(), 400.0, 15.0);
  EXPECT_EQ(htc.listen_associated, 1);
  EXPECT_EQ(htc.listen_actual, 0);
}

TEST(Testbed, EmulatedRttSweepTracksNetem) {
  // The fabric adds ~1.3 ms to whatever netem emulates.
  for (const int rtt_ms : {0, 20, 85}) {
    Experiment::AcuteMonSpec spec;
    spec.emulated_rtt = Duration::millis(rtt_ms);
    spec.probes = 30;
    const auto result = Experiment::acutemon(spec);
    const stats::Summary dn(result.values(&LayerSample::dn_ms));
    EXPECT_NEAR(dn.mean(), rtt_ms + 1.3, 1.0) << rtt_ms;
  }
}

TEST(Testbed, ToolKindNames) {
  EXPECT_STREQ(to_string(ToolKind::acutemon), "AcuteMon");
  EXPECT_STREQ(to_string(ToolKind::icmp_ping), "ping");
  EXPECT_STREQ(to_string(ToolKind::httping), "httping");
  EXPECT_STREQ(to_string(ToolKind::java_ping), "Java ping");
}

}  // namespace
}  // namespace acute::testbed
