#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "phone/profile.hpp"
#include "sim/random.hpp"

namespace acute::phone {
namespace {

using sim::Duration;

TEST(PhoneProfile, AllReturnsTheFiveHandsetsOfTable1) {
  const auto profiles = PhoneProfile::all();
  ASSERT_EQ(profiles.size(), 5u);
  std::vector<std::string> names;
  for (const auto& p : profiles) names.push_back(p.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "Google Nexus 5"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Google Nexus 4"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "HTC One"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Sony Xperia J"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Samsung Grand"),
            names.end());
}

TEST(PhoneProfile, ByNameRoundTripsAndThrowsOnUnknown) {
  EXPECT_EQ(PhoneProfile::by_name("HTC One").chipset, "WCN3680");
  EXPECT_THROW(PhoneProfile::by_name("iPhone 6"), std::invalid_argument);
}

TEST(PhoneProfile, Table1HardwareIdentity) {
  const auto n5 = PhoneProfile::nexus5();
  EXPECT_EQ(n5.chipset, "BCM4339");
  EXPECT_EQ(n5.vendor, WnicVendor::broadcom_sdio);
  EXPECT_DOUBLE_EQ(n5.cpu_ghz, 2.26);
  EXPECT_EQ(n5.cpu_cores, 4);

  const auto n4 = PhoneProfile::nexus4();
  EXPECT_EQ(n4.chipset, "WCN3660");
  EXPECT_EQ(n4.vendor, WnicVendor::qualcomm_smd);

  const auto xperia = PhoneProfile::xperia_j();
  EXPECT_EQ(xperia.chipset, "BCM4330");
  EXPECT_EQ(xperia.cpu_cores, 1);
  EXPECT_EQ(xperia.ram_mb, 512);
}

TEST(PhoneProfile, Table4PsmTimeouts) {
  // Tip per handset (Table 4); Nexus 4 is the aggressive outlier.
  EXPECT_NEAR(PhoneProfile::nexus4().psm_timeout.to_ms(), 40.0, 3.0);
  EXPECT_NEAR(PhoneProfile::nexus5().psm_timeout.to_ms(), 205.0, 1.0);
  EXPECT_NEAR(PhoneProfile::galaxy_grand().psm_timeout.to_ms(), 45.0, 1.0);
  EXPECT_NEAR(PhoneProfile::htc_one().psm_timeout.to_ms(), 400.0, 1.0);
  EXPECT_NEAR(PhoneProfile::xperia_j().psm_timeout.to_ms(), 210.0, 1.0);
}

TEST(PhoneProfile, Table4ListenIntervals) {
  // wcnss announces 1, bcmdhd announces 10 (Table 4 "associated" column).
  EXPECT_EQ(PhoneProfile::nexus4().associated_listen_interval, 1);
  EXPECT_EQ(PhoneProfile::htc_one().associated_listen_interval, 1);
  EXPECT_EQ(PhoneProfile::nexus5().associated_listen_interval, 10);
  EXPECT_EQ(PhoneProfile::xperia_j().associated_listen_interval, 10);
  EXPECT_EQ(PhoneProfile::galaxy_grand().associated_listen_interval, 10);
}

TEST(PhoneProfile, BusSleepIdleIs50msDefault) {
  // §3.2.1: dhd_watchdog_ms = 10 ms, idletime = 5 -> 50 ms idle period.
  for (const auto& profile : PhoneProfile::all()) {
    EXPECT_EQ(profile.bus_watchdog, Duration::millis(10)) << profile.name;
    EXPECT_EQ(profile.bus_idletime_ticks, 5) << profile.name;
    EXPECT_EQ(profile.bus_sleep_idle(), Duration::millis(50)) << profile.name;
  }
}

TEST(PhoneProfile, BroadcomWakesCostMoreThanQualcomm) {
  // Table 2/3: SDIO promotion ~10 ms vs SMD ~5 ms.
  EXPECT_GT(PhoneProfile::nexus5().bus_wake_tx.mu_ms,
            PhoneProfile::nexus4().bus_wake_tx.mu_ms + 3.0);
  EXPECT_GT(PhoneProfile::nexus5().bus_wake_rx.mu_ms,
            PhoneProfile::nexus4().bus_wake_rx.mu_ms + 3.0);
}

TEST(PhoneProfile, PingQuantizationQuirkOnlyOnNexus4) {
  EXPECT_TRUE(PhoneProfile::nexus4().ping_integer_ms_above_100);
  EXPECT_FALSE(PhoneProfile::nexus5().ping_integer_ms_above_100);
}

TEST(PhoneProfile, SlowPhonesHaveLargerCpuScale) {
  EXPECT_DOUBLE_EQ(PhoneProfile::nexus5().cpu_scale, 1.0);
  EXPECT_GT(PhoneProfile::xperia_j().cpu_scale,
            PhoneProfile::galaxy_grand().cpu_scale);
  EXPECT_GT(PhoneProfile::galaxy_grand().cpu_scale,
            PhoneProfile::nexus4().cpu_scale);
}

TEST(LatencyDist, SampleRespectsBounds) {
  sim::Rng rng(3);
  const LatencyDist dist{10.0, 5.0, 8.0, 13.0};
  for (int i = 0; i < 1000; ++i) {
    const Duration d = dist.sample(rng);
    EXPECT_GE(d.to_ms(), 8.0);
    EXPECT_LE(d.to_ms(), 13.0);
  }
}

TEST(LatencyDist, ScaledSampleScalesBounds) {
  sim::Rng rng(3);
  const LatencyDist dist{1.0, 0.2, 0.5, 1.5};
  for (int i = 0; i < 500; ++i) {
    const Duration d = dist.sample_scaled(rng, 2.0);
    EXPECT_GE(d.to_ms(), 1.0);
    EXPECT_LE(d.to_ms(), 3.0);
  }
}

TEST(WnicVendor, ToStringNamesDriver) {
  EXPECT_NE(std::string(to_string(WnicVendor::broadcom_sdio)).find("bcmdhd"),
            std::string::npos);
  EXPECT_NE(std::string(to_string(WnicVendor::qualcomm_smd)).find("wcnss"),
            std::string::npos);
}

// Property: every handset's latency distributions are internally
// consistent (lo <= mu <= hi, sigma >= 0).
class ProfileConsistency : public ::testing::TestWithParam<int> {};

TEST_P(ProfileConsistency, DistributionsWellFormed) {
  const auto profile = PhoneProfile::all()[GetParam()];
  const LatencyDist* dists[] = {
      &profile.bus_wake_tx, &profile.bus_wake_rx, &profile.bus_clk_request,
      &profile.driver_tx_base, &profile.driver_rx_base, &profile.driver_netif,
      &profile.kernel_tx, &profile.kernel_rx, &profile.native_send,
      &profile.native_recv, &profile.dvm_send, &profile.dvm_recv,
      &profile.dvm_gc_pause};
  for (const LatencyDist* dist : dists) {
    EXPECT_LE(dist->lo_ms, dist->mu_ms);
    EXPECT_LE(dist->mu_ms, dist->hi_ms);
    EXPECT_GE(dist->sigma_ms, 0.0);
    EXPECT_GE(dist->lo_ms, 0.0);
  }
  EXPECT_GT(profile.cpu_scale, 0.0);
  EXPECT_GT(profile.psm_timeout, Duration{});
}

INSTANTIATE_TEST_SUITE_P(AllPhones, ProfileConsistency,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace acute::phone
