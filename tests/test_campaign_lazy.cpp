// Lazy campaign iteration: ScenarioGrid::at(i) must agree with expand()[i]
// element for element, a grid-backed Campaign must be indistinguishable
// from its materialized twin, and the determinism contract (bit-identical
// merged digests for any worker count) must hold on a 10^4-shard grid
// iterated lazily — the memory-bounded mode million-shard sweeps run in.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "report/jsonl_sink.hpp"
#include "report/sink.hpp"
#include "sim/contracts.hpp"
#include "testbed/campaign.hpp"

namespace acute::testbed {
namespace {

using namespace acute::sim::literals;
using phone::PhoneProfile;
using phone::RadioKind;
using tools::ToolKind;

struct TempFile {
  explicit TempFile(const std::string& name) : path("lazy_test_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Field-for-field scenario equality over everything the grid axes set
/// (plus the seed, which neither path assigns).
void expect_scenarios_equal(const ScenarioSpec& a, const ScenarioSpec& b,
                            std::size_t index) {
  SCOPED_TRACE("scenario index " + std::to_string(index));
  ASSERT_EQ(a.phones.size(), b.phones.size());
  for (std::size_t p = 0; p < a.phones.size(); ++p) {
    EXPECT_EQ(a.phones[p].profile.name, b.phones[p].profile.name);
    EXPECT_EQ(a.phones[p].radio, b.phones[p].radio);
    EXPECT_EQ(a.phones[p].workload.tool, b.phones[p].workload.tool);
    EXPECT_EQ(a.phones[p].workload.probe_count, b.phones[p].workload.probe_count);
    EXPECT_EQ(a.phones[p].workload.interval, b.phones[p].workload.interval);
    EXPECT_EQ(a.phones[p].workload.timeout, b.phones[p].workload.timeout);
  }
  EXPECT_EQ(a.emulated_rtt, b.emulated_rtt);
  EXPECT_EQ(a.congested_phy, b.congested_phy);
  EXPECT_EQ(a.netem_loss, b.netem_loss);
  EXPECT_EQ(a.netem_reorder, b.netem_reorder);
  EXPECT_EQ(a.seed, b.seed);
}

TEST(LazyGrid, AtMatchesExpandElementForElement) {
  // Every axis gets >= 2 entries, so every mixed-radix digit of at()'s
  // index decode is exercised (512 scenarios).
  ScenarioGrid grid;
  grid.phone_counts = {1, 2};
  grid.profiles = {PhoneProfile::nexus5(), PhoneProfile::nexus4()};
  grid.radios = {RadioKind::wifi, RadioKind::cellular};
  grid.emulated_rtts = {10_ms, 30_ms};
  grid.cross_traffic = {false, true};
  grid.loss_rates = {0.0, 0.1};
  grid.reorder = {false, true};
  grid.workloads = {WorkloadSpec{ToolKind::icmp_ping},
                    WorkloadSpec{ToolKind::httping}};
  const std::vector<ScenarioSpec> expanded = grid.expand();
  ASSERT_EQ(expanded.size(), grid.size());
  for (std::size_t i = 0; i < expanded.size(); ++i) {
    expect_scenarios_equal(grid.at(i), expanded[i], i);
  }
}

TEST(LazyGrid, AtRejectsOutOfRangeAndInvalidAxes) {
  ScenarioGrid grid;
  EXPECT_THROW((void)grid.at(grid.size()), sim::ContractViolation);
  grid.loss_rates = {1.0};
  EXPECT_THROW((void)grid.at(0), sim::ContractViolation);
}

/// A small-but-mixed grid cheap enough to execute in full.
ScenarioGrid small_grid() {
  ScenarioGrid grid;
  grid.profiles = {PhoneProfile::nexus5(), PhoneProfile::nexus4()};
  grid.emulated_rtts = {12_ms};
  grid.loss_rates = {0.0, 0.2};
  grid.workloads = {WorkloadSpec{ToolKind::icmp_ping},
                    WorkloadSpec{ToolKind::httping}};
  return grid;
}

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.seed = 77;
  spec.probes_per_phone = 6;
  spec.probe_interval = 150_ms;
  spec.probe_timeout = 1_s;
  spec.keep_samples = false;
  return spec;
}

void expect_digests_bit_identical(const CampaignReport& a,
                                  const CampaignReport& b) {
  const auto da = a.workload_digests();
  const auto db = b.workload_digests();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].tool, db[i].tool);
    EXPECT_EQ(da[i].probes, db[i].probes);
    EXPECT_EQ(da[i].lost, db[i].lost);
    for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
      EXPECT_EQ(da[i].reported_rtt_ms.quantile(q),
                db[i].reported_rtt_ms.quantile(q));
      EXPECT_EQ(da[i].du_ms.quantile(q), db[i].du_ms.quantile(q));
      EXPECT_EQ(da[i].dn_ms.quantile(q), db[i].dn_ms.quantile(q));
    }
  }
  EXPECT_EQ(a.total_probes(), b.total_probes());
  EXPECT_EQ(a.total_lost(), b.total_lost());
  EXPECT_EQ(a.total_frames(), b.total_frames());
  EXPECT_EQ(a.total_events(), b.total_events());
}

TEST(LazyCampaign, GridBackedRunEqualsMaterializedRun) {
  CampaignSpec lazy = small_spec();
  lazy.grid = small_grid();
  CampaignSpec materialized = small_spec();
  materialized.scenarios = small_grid().expand();

  const CampaignReport from_grid = Campaign(lazy).run(2);
  const CampaignReport from_vector = Campaign(materialized).run(2);
  ASSERT_EQ(from_grid.shards.size(), from_vector.shards.size());
  for (std::size_t i = 0; i < from_grid.shards.size(); ++i) {
    EXPECT_EQ(from_grid.shards[i].shard_seed,
              from_vector.shards[i].shard_seed);
    EXPECT_EQ(from_grid.shards[i].events_fired,
              from_vector.shards[i].events_fired);
  }
  expect_digests_bit_identical(from_grid, from_vector);
}

TEST(LazyCampaign, RejectsBothScenariosAndGrid) {
  CampaignSpec spec = small_spec();
  spec.grid = small_grid();
  spec.scenarios = small_grid().expand();
  EXPECT_THROW(Campaign{spec}, sim::ContractViolation);
}

TEST(LazyCampaign, LazyGridResumesThroughCheckpoints) {
  TempFile checkpoint("grid_resume");
  const CampaignReport uninterrupted = [&] {
    CampaignSpec spec = small_spec();
    spec.grid = small_grid();
    return Campaign(spec).run(1);
  }();

  CampaignSpec killed = small_spec();
  killed.grid = small_grid();
  killed.checkpoint_path = checkpoint.path;
  killed.max_shards = 3;
  EXPECT_EQ(Campaign(killed).run(2).completed_shards(), 3u);

  CampaignSpec resumed = small_spec();
  resumed.grid = small_grid();
  resumed.checkpoint_path = checkpoint.path;
  const CampaignReport report = Campaign(resumed).run(2);
  EXPECT_EQ(report.completed_shards(), report.shards.size());
  expect_digests_bit_identical(report, uninterrupted);
}

/// The at-scale determinism pin: 10^4 lazily-iterated shards, merged
/// digests bit-identical between 1 and 8 workers. Shards are minimal (one
/// phone, one probe, short settle) so the whole test stays a few seconds.
CampaignSpec ten_thousand_shard_spec() {
  ScenarioGrid grid;
  grid.emulated_rtts.clear();
  for (int i = 0; i < 50; ++i) {
    grid.emulated_rtts.push_back(sim::Duration::millis(2 + i));
  }
  grid.loss_rates.clear();
  for (int i = 0; i < 100; ++i) grid.loss_rates.push_back(i * 0.003);
  grid.reorder = {false, true};
  CampaignSpec spec;
  spec.seed = 2016;
  spec.grid = grid;
  spec.probes_per_phone = 1;
  spec.probe_interval = 50_ms;
  spec.probe_timeout = 400_ms;
  spec.settle = 50_ms;
  spec.keep_samples = false;
  return spec;
}

TEST(LazyCampaign, TenThousandShardsBitIdenticalAcrossWorkerCounts) {
  Campaign serial(ten_thousand_shard_spec());
  ASSERT_EQ(serial.scenario_count(), 10000u);
  const CampaignReport one = serial.run(1);
  const CampaignReport eight = Campaign(ten_thousand_shard_spec()).run(8);
  ASSERT_EQ(one.shards.size(), eight.shards.size());
  EXPECT_GT(one.total_lost(), 0u);  // the loss axis actually bites
  expect_digests_bit_identical(one, eight);
}

TEST(Campaign, NeverSpawnsMoreWorkersThanPendingShards) {
  // Observable through the sink factory: it runs on the executing worker's
  // thread, so the set of distinct thread ids bounds the pool size. With 2
  // pending shards and 8 requested workers, at most 2 threads may execute.
  CampaignSpec spec = small_spec();
  ScenarioGrid grid = small_grid();
  grid.workloads = {WorkloadSpec{ToolKind::icmp_ping}};
  grid.profiles = {PhoneProfile::nexus5()};
  spec.grid = grid;  // 2 shards (loss axis)
  std::mutex mutex;
  std::set<std::thread::id> threads;
  spec.sinks = [&mutex, &threads](const report::ShardInfo&) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      threads.insert(std::this_thread::get_id());
    }
    return std::vector<std::unique_ptr<report::ResultSink>>{};
  };
  const CampaignReport report = Campaign(spec).run(8);
  EXPECT_EQ(report.completed_shards(), 2u);
  EXPECT_LE(threads.size(), 2u);
}

TEST(LazyCampaign, JsonlExportIsByteIdenticalAcrossWorkerCounts) {
  // The reorder buffer's contract: same campaign, any worker count, same
  // bytes on disk — not merely the same record set.
  auto run_with = [](std::size_t workers, const std::string& path) {
    CampaignSpec spec = small_spec();
    spec.grid = small_grid();
    auto writer = std::make_shared<report::JsonlWriter>(path);
    spec.sinks = report::jsonl_sink_factory(writer);
    (void)Campaign(spec).run(workers);
  };
  TempFile serial("jsonl_1worker");
  TempFile threaded("jsonl_8worker");
  run_with(1, serial.path);
  run_with(8, threaded.path);
  const std::string serial_bytes = read_file(serial.path);
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, read_file(threaded.path));
}

}  // namespace
}  // namespace acute::testbed
