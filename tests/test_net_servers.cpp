// EchoServer (measurement server + netem) and the iPerf-like load pieces.
#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "net/server.hpp"
#include "net/traffic_gen.hpp"
#include "sim/simulator.hpp"

namespace acute::net {
namespace {

using namespace acute::sim::literals;
using sim::Duration;
using sim::Simulator;

class CaptureNode : public Node {
 public:
  CaptureNode(Simulator& sim, NodeId id) : sim_(&sim), id_(id) {}
  void receive(Packet&& packet, Link*) override {
    packets.push_back(std::move(packet));
    times.push_back(sim_->now());
  }
  [[nodiscard]] NodeId id() const override { return id_; }
  std::vector<Packet> packets;
  std::vector<sim::TimePoint> times;

 private:
  Simulator* sim_;
  NodeId id_;
};

struct ServerFixture {
  Simulator sim;
  CaptureNode client{sim, 1};
  EchoServer server{sim, sim::Rng(7), 4};
  Link link{sim, client, server, Duration::micros(1), 1e9};

  ServerFixture() { server.attach_link(link); }

  void send(PacketType type, Protocol protocol, std::uint32_t size) {
    Packet pkt = Packet::make(type, protocol, 1, 4, size);
    pkt.probe_id = 42;
    link.send(1, std::move(pkt));
  }
};

TEST(EchoServer, RepliesToIcmpEcho) {
  ServerFixture f;
  f.send(PacketType::icmp_echo_request, Protocol::icmp, 84);
  f.sim.run();
  ASSERT_EQ(f.client.packets.size(), 1u);
  EXPECT_EQ(f.client.packets[0].type, PacketType::icmp_echo_reply);
  EXPECT_EQ(f.client.packets[0].size_bytes, 84u);
  EXPECT_EQ(f.client.packets[0].probe_id, 42u);
  EXPECT_EQ(f.server.requests_served(), 1u);
}

TEST(EchoServer, RepliesSynAckOnOpenPort) {
  ServerFixture f;
  f.send(PacketType::tcp_syn, Protocol::tcp, 60);
  f.sim.run();
  ASSERT_EQ(f.client.packets.size(), 1u);
  EXPECT_EQ(f.client.packets[0].type, PacketType::tcp_syn_ack);
}

TEST(EchoServer, RepliesRstOnClosedPort) {
  ServerFixture f;
  f.server.set_tcp_port_closed(true);
  f.send(PacketType::tcp_syn, Protocol::tcp, 60);
  f.sim.run();
  ASSERT_EQ(f.client.packets.size(), 1u);
  EXPECT_EQ(f.client.packets[0].type, PacketType::tcp_rst);
}

TEST(EchoServer, ServesHttpWithConfigurableSize) {
  ServerFixture f;
  f.server.set_http_response_size(512);
  f.send(PacketType::http_request, Protocol::tcp, 160);
  f.sim.run();
  ASSERT_EQ(f.client.packets.size(), 1u);
  EXPECT_EQ(f.client.packets[0].type, PacketType::http_response);
  EXPECT_EQ(f.client.packets[0].size_bytes, 512u);
}

TEST(EchoServer, SilentlyAbsorbsUdp) {
  ServerFixture f;
  f.send(PacketType::udp_data, Protocol::udp, 100);
  f.send(PacketType::udp_warmup, Protocol::udp, 46);
  f.sim.run();
  EXPECT_TRUE(f.client.packets.empty());
  EXPECT_EQ(f.server.requests_served(), 0u);
}

TEST(EchoServer, IgnoresPacketsForOthers) {
  ServerFixture f;
  Packet pkt = Packet::make(PacketType::icmp_echo_request, Protocol::icmp, 1,
                            99 /* not the server */, 84);
  f.link.send(1, std::move(pkt));
  f.sim.run();
  EXPECT_TRUE(f.client.packets.empty());
}

TEST(EchoServer, NetemDelaysResponses) {
  ServerFixture f;
  f.server.netem().set_delay(30_ms);
  f.send(PacketType::icmp_echo_request, Protocol::icmp, 84);
  f.sim.run();
  ASSERT_EQ(f.client.times.size(), 1u);
  // Round trip = 2 link traversals + service + 30 ms netem.
  EXPECT_GT(f.client.times[0].to_ms(), 30.0);
  EXPECT_LT(f.client.times[0].to_ms(), 31.0);
}

TEST(EchoServer, ResponseCarriesRequestStamps) {
  ServerFixture f;
  Packet pkt =
      Packet::make(PacketType::icmp_echo_request, Protocol::icmp, 1, 4, 84);
  pkt.stamps.app_send = sim::TimePoint::from_nanos(111);
  f.link.send(1, std::move(pkt));
  f.sim.run();
  ASSERT_EQ(f.client.packets.size(), 1u);
  ASSERT_NE(f.client.packets[0].request_stamps, nullptr);
  EXPECT_EQ(f.client.packets[0].request_stamps->app_send->count_nanos(), 111);
}

TEST(UdpSink, CountsOnlyItsUdp) {
  Simulator sim;
  UdpSink sink(sim, 6);
  CaptureNode other(sim, 1);
  Link link(sim, other, sink, Duration::micros(1), 1e9);
  link.send(1, Packet::make(PacketType::udp_data, Protocol::udp, 1, 6, 1000));
  link.send(1, Packet::make(PacketType::udp_data, Protocol::udp, 1, 9, 1000));
  link.send(1, Packet::make(PacketType::tcp_syn, Protocol::tcp, 1, 6, 60));
  sim.run();
  EXPECT_EQ(sink.packets_received(), 1u);
  EXPECT_EQ(sink.bytes_received(), 1000u);
}

TEST(UdpSink, ThroughputOverWindow) {
  Simulator sim;
  UdpSink sink(sim, 6);
  CaptureNode other(sim, 1);
  Link link(sim, other, sink, Duration::micros(1), 1e9);
  sink.reset_window();
  // 125 packets x 1000 B over 1 s = 1 Mbit/s.
  for (int i = 0; i < 125; ++i) {
    sim.schedule_in(Duration::millis(i * 8), [&] {
      link.send(1,
                Packet::make(PacketType::udp_data, Protocol::udp, 1, 6, 1000));
    });
  }
  sim.run_for(1_s);
  EXPECT_NEAR(sink.throughput_mbps(sink.window_start()), 1.0, 0.05);
}

TEST(UdpCbrSource, EmitsAtConfiguredRate) {
  Simulator sim;
  int count = 0;
  UdpCbrSource::Config config;
  config.src = 5;
  config.dst = 6;
  config.rate_mbps = 1.0;  // 1 Mbit/s of 1250 B datagrams = 100 pkt/s
  config.datagram_bytes = 1250;
  UdpCbrSource source(sim, sim::Rng(5), config, [&](Packet pkt) {
    EXPECT_EQ(pkt.src, 5u);
    EXPECT_EQ(pkt.dst, 6u);
    EXPECT_EQ(pkt.size_bytes, 1250u);
    ++count;
  });
  source.start();
  sim.run_for(1_s);
  source.stop();
  EXPECT_NEAR(count, 100, 2);
  EXPECT_EQ(source.packets_sent(), std::uint64_t(count));
}

TEST(UdpCbrSource, StopHalts) {
  Simulator sim;
  int count = 0;
  UdpCbrSource::Config config;
  config.rate_mbps = 10.0;
  UdpCbrSource source(sim, sim::Rng(5), config, [&](Packet) { ++count; });
  source.start();
  sim.run_for(100_ms);
  const int at_stop = count;
  source.stop();
  sim.run_for(100_ms);
  EXPECT_EQ(count, at_stop);
  EXPECT_FALSE(source.running());
}

TEST(IperfLoadGenerator, AggregatesFlows) {
  Simulator sim;
  std::uint64_t bytes = 0;
  IperfLoadGenerator gen(sim, sim::Rng(6), 5, 6, 10, 2.5,
                         [&](Packet pkt) { bytes += pkt.size_bytes; });
  EXPECT_EQ(gen.connection_count(), 10u);
  EXPECT_DOUBLE_EQ(gen.offered_load_mbps(), 25.0);
  gen.start();
  sim.run_for(1_s);
  gen.stop();
  // 25 Mbit/s offered over 1 s ~ 3.125 MB.
  EXPECT_NEAR(double(bytes), 25e6 / 8, 25e6 / 8 * 0.05);
  EXPECT_GT(gen.packets_sent(), 2000u);
}

}  // namespace
}  // namespace acute::net
