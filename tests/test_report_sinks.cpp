// Streaming results pipeline: digest snapshot/serialization exactness, the
// checkpoint record round-trip (including torn-write tolerance), JSONL
// export shape, and the sink event-delivery contract driven by a real
// campaign shard.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "report/checkpoint.hpp"
#include "report/digest_sink.hpp"
#include "report/jsonl_sink.hpp"
#include "report/sample_buffer_sink.hpp"
#include "sim/contracts.hpp"
#include "stats/digest_io.hpp"
#include "testbed/campaign.hpp"

namespace acute::report {
namespace {

using namespace acute::sim::literals;
using stats::MergingDigest;
using tools::ToolKind;

/// A unique temp path per test (files live under the build tree's cwd).
std::string temp_path(const std::string& name) {
  return "report_test_" + name;
}

struct TempFile {
  explicit TempFile(const std::string& name) : path(temp_path(name)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

MergingDigest sample_digest(int samples, double offset) {
  MergingDigest digest;
  for (int i = 0; i < samples; ++i) {
    digest.add(offset + 0.1 * i + (i % 7) * 0.013);
  }
  return digest;
}

TEST(DigestSnapshot, RestoresBitIdenticalState) {
  const MergingDigest original = sample_digest(1000, 20.0);
  const MergingDigest restored =
      MergingDigest::from_snapshot(original.snapshot());
  EXPECT_EQ(restored.count(), original.count());
  EXPECT_EQ(restored.mean(), original.mean());
  EXPECT_EQ(restored.stddev(), original.stddev());
  EXPECT_EQ(restored.min(), original.min());
  EXPECT_EQ(restored.max(), original.max());
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(restored.quantile(q), original.quantile(q)) << "q=" << q;
  }

  // The resume-critical property: MERGING into a restored digest behaves
  // bit-identically to merging into the original.
  MergingDigest into_original = original;
  MergingDigest into_restored = restored;
  const MergingDigest other = sample_digest(500, 35.0);
  into_original.merge(other);
  into_restored.merge(other);
  for (const double q : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(into_original.quantile(q), into_restored.quantile(q));
  }
  EXPECT_EQ(into_original.centroid_count(), into_restored.centroid_count());
}

TEST(DigestSnapshot, RejectsStructurallyInvalidSnapshots) {
  stats::DigestSnapshot snap = sample_digest(100, 1.0).snapshot();
  snap.count += 1;  // weights no longer sum to count
  EXPECT_THROW((void)MergingDigest::from_snapshot(snap),
               sim::ContractViolation);
  stats::DigestSnapshot unsorted = sample_digest(100, 1.0).snapshot();
  ASSERT_GE(unsorted.centroids.size(), 2u);
  std::swap(unsorted.centroids.front(), unsorted.centroids.back());
  EXPECT_THROW((void)MergingDigest::from_snapshot(unsorted),
               sim::ContractViolation);
}

TEST(DigestIo, TextRoundTripIsExact) {
  const MergingDigest original = sample_digest(777, -3.25);
  std::stringstream stream;
  stats::write_digest(stream, original);
  const MergingDigest restored = stats::read_digest(stream);
  EXPECT_EQ(restored.count(), original.count());
  EXPECT_EQ(restored.mean(), original.mean());
  for (const double q : {0.1, 0.5, 0.9, 0.999}) {
    EXPECT_EQ(restored.quantile(q), original.quantile(q));
  }
}

TEST(DigestIo, DoubleBitsSurviveExtremes) {
  for (const double x : {0.0, -0.0, 1e-310, -1e308, 3.141592653589793}) {
    EXPECT_EQ(stats::double_bits(stats::double_from_bits(
                  stats::double_bits(x))),
              stats::double_bits(x));
  }
}

TEST(DigestIo, RejectsMalformedStreams) {
  std::stringstream bad_magic("notadigest 1 2 3");
  EXPECT_THROW((void)stats::read_digest(bad_magic), sim::ContractViolation);
  std::stringstream truncated("dgst 128 10");
  EXPECT_THROW((void)stats::read_digest(truncated), sim::ContractViolation);
}

ShardCheckpoint sample_checkpoint(std::size_t index) {
  ShardCheckpoint record;
  record.summary.info = ShardInfo{index, 0xdeadbeef + index, 2};
  record.summary.probes_sent = 40;
  record.summary.probes_lost = 3;
  record.summary.frames_on_air = 1234;
  record.summary.events_fired = 98765;
  record.summary.sim_seconds = 12.5;
  record.spec_hash = 0xfeedface12345678ull;
  WorkloadDigest digest;
  digest.tool = ToolKind::httping;
  digest.probes = 40;
  digest.lost = 3;
  digest.reported_rtt_ms = sample_digest(37, 30.0);
  digest.du_ms = sample_digest(37, 31.0);
  digest.dk_ms = sample_digest(37, 29.0);
  digest.dv_ms = sample_digest(37, 28.0);
  digest.dn_ms = sample_digest(37, 27.0);
  record.digests.push_back(std::move(digest));
  return record;
}

TEST(Checkpoint, AppendLoadRoundTrip) {
  TempFile file("ckpt_roundtrip");
  {
    CheckpointWriter writer(file.path);
    writer.append(sample_checkpoint(4));
    writer.append(sample_checkpoint(9));
  }
  const auto records = load_checkpoint(file.path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].summary.info.scenario_index, 4u);
  EXPECT_EQ(records[1].summary.info.scenario_index, 9u);
  const ShardCheckpoint expected = sample_checkpoint(4);
  const ShardCheckpoint& loaded = records[0];
  EXPECT_EQ(loaded.summary.info.shard_seed, expected.summary.info.shard_seed);
  EXPECT_EQ(loaded.summary.probes_sent, expected.summary.probes_sent);
  EXPECT_EQ(loaded.summary.probes_lost, expected.summary.probes_lost);
  EXPECT_EQ(loaded.summary.frames_on_air, expected.summary.frames_on_air);
  EXPECT_EQ(loaded.summary.events_fired, expected.summary.events_fired);
  EXPECT_EQ(loaded.summary.sim_seconds, expected.summary.sim_seconds);
  EXPECT_EQ(loaded.spec_hash, expected.spec_hash);
  ASSERT_EQ(loaded.digests.size(), 1u);
  EXPECT_EQ(loaded.digests[0].tool, ToolKind::httping);
  EXPECT_EQ(loaded.digests[0].probes, 40u);
  EXPECT_EQ(loaded.digests[0].reported_rtt_ms.quantile(0.5),
            expected.digests[0].reported_rtt_ms.quantile(0.5));
  EXPECT_EQ(loaded.digests[0].dn_ms.mean(), expected.digests[0].dn_ms.mean());
}

TEST(Checkpoint, MissingFileIsAFreshCampaign) {
  EXPECT_TRUE(load_checkpoint(temp_path("never_written")).empty());
}

TEST(Checkpoint, TornTrailingRecordIsSkipped) {
  TempFile file("ckpt_torn");
  {
    CheckpointWriter writer(file.path);
    writer.append(sample_checkpoint(0));
    writer.append(sample_checkpoint(1));
  }
  // Simulate a kill mid-append: chop the file inside the last record.
  std::string contents;
  {
    std::ifstream in(file.path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    contents = buffer.str();
  }
  {
    std::ofstream out(file.path, std::ios::trunc);
    out << contents.substr(0, contents.size() - 40);
  }
  const auto records = load_checkpoint(file.path);
  ASSERT_EQ(records.size(), 1u);  // the torn record 1 is gone, 0 survives
  EXPECT_EQ(records[0].summary.info.scenario_index, 0u);

  // Appending after the kill must close the torn line first: the new
  // record may not glue onto the torn one (or the resume would lose its
  // own first shard on every subsequent load).
  {
    CheckpointWriter writer(file.path);
    writer.append(sample_checkpoint(7));
  }
  const auto repaired = load_checkpoint(file.path);
  ASSERT_EQ(repaired.size(), 2u);
  EXPECT_EQ(repaired[0].summary.info.scenario_index, 0u);
  EXPECT_EQ(repaired[1].summary.info.scenario_index, 7u);
}

TEST(Checkpoint, UnknownCompleteRecordKindFailsLoudly) {
  // The torn-tolerance rule is narrow: only a line WITHOUT the trailing
  // "end" sentinel (a kill mid-append) may be skipped. A COMPLETE record
  // of an unknown kind — a ckpt1-era file, a future format, a corrupted
  // byte range that still ends in " end" — means silently skipping would
  // silently rerun (and double-append) every shard it held. Every reading
  // surface must refuse instead.
  TempFile file("ckpt_unknown_kind");
  {
    CheckpointWriter writer(file.path);
    writer.append(sample_checkpoint(0));
  }
  {
    std::ofstream out(file.path, std::ios::app);
    out << "ckpt1 3 123 8 0 1 end\n";
  }
  EXPECT_THROW((void)load_checkpoint(file.path), sim::ContractViolation);
  {
    CheckpointReader reader(file.path);
    ShardCheckpoint record;
    ASSERT_TRUE(reader.next(record));  // record 0 parses fine
    EXPECT_THROW((void)reader.next(record), sim::ContractViolation);
  }
  EXPECT_THROW(
      for_each_checkpoint(file.path, [](ShardCheckpoint&&) {}),
      sim::ContractViolation);
  EXPECT_THROW(compact_checkpoint(file.path), sim::ContractViolation);
}

TEST(Checkpoint, CorruptCompleteRecordFailsLoudly) {
  // Same rule for a line that IS ckpt2-prefixed and sentinel-complete but
  // whose body no longer parses: that is corruption, not a torn write.
  TempFile file("ckpt_corrupt_body");
  {
    std::ofstream out(file.path, std::ios::trunc);
    out << "ckpt2 0 not-a-seed 1 end\n";
  }
  EXPECT_THROW((void)load_checkpoint(file.path), sim::ContractViolation);
}

TEST(Checkpoint, TornUnknownKindFragmentIsStillSkipped) {
  // The counterpart: the same foreign prefix WITHOUT the sentinel is a
  // torn write by definition and stays silently skippable — loud failure
  // must not break kill-tolerance for fragments.
  TempFile file("ckpt_unknown_torn");
  {
    CheckpointWriter writer(file.path);
    writer.append(sample_checkpoint(0));
  }
  {
    std::ofstream out(file.path, std::ios::app);
    out << "ckpt1 3 123 torn-fragmen";
  }
  const auto records = load_checkpoint(file.path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].summary.info.scenario_index, 0u);
}

TEST(Checkpoint, CompactionDedupesAndSortsRecords) {
  TempFile file("ckpt_compact");
  {
    CheckpointWriter writer(file.path);
    writer.append(sample_checkpoint(9));
    writer.append(sample_checkpoint(2));
    writer.append(sample_checkpoint(9));  // duplicate re-run: last wins
    writer.append(sample_checkpoint(5));
  }
  // Tear the tail as a kill would; compaction input is what load accepts.
  {
    std::ofstream out(file.path, std::ios::app);
    out << "ckpt1 11 123 torn-fragmen";
  }
  compact_checkpoint(file.path, load_checkpoint(file.path));

  std::size_t lines = 0;
  {
    std::ifstream in(file.path);
    std::string line;
    while (std::getline(in, line)) ++lines;
  }
  EXPECT_EQ(lines, 3u);  // 9's duplicate and the torn fragment are gone
  const auto records = load_checkpoint(file.path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].summary.info.scenario_index, 2u);
  EXPECT_EQ(records[1].summary.info.scenario_index, 5u);
  EXPECT_EQ(records[2].summary.info.scenario_index, 9u);
  // Byte-exact round trip: a compacted record re-renders identically.
  EXPECT_EQ(render_checkpoint_record(records[2]),
            render_checkpoint_record(sample_checkpoint(9)));
}

TEST(Checkpoint, StreamingCompactionMatchesMaterializedCompaction) {
  // Same input (duplicates + torn tail), two compactors: the streaming
  // one-record-at-a-time overload must produce byte-identical output to
  // the load-then-compact legacy overload.
  auto write_messy = [](const std::string& path) {
    CheckpointWriter writer(path);
    writer.append(sample_checkpoint(9));
    writer.append(sample_checkpoint(2));
    writer.append(sample_checkpoint(9));
    writer.append(sample_checkpoint(5));
    std::ofstream out(path, std::ios::app);
    out << "ckpt1 11 123 torn-fragmen";
  };
  TempFile materialized("ckpt_compact_mat");
  TempFile streaming("ckpt_compact_stream");
  write_messy(materialized.path);
  write_messy(streaming.path);
  compact_checkpoint(materialized.path, load_checkpoint(materialized.path));
  compact_checkpoint(streaming.path);
  std::ifstream a(materialized.path), b(streaming.path);
  std::stringstream a_bytes, b_bytes;
  a_bytes << a.rdbuf();
  b_bytes << b.rdbuf();
  ASSERT_FALSE(a_bytes.str().empty());
  EXPECT_EQ(a_bytes.str(), b_bytes.str());
}

TEST(Checkpoint, StreamingCompactionOfMissingFileIsANoop) {
  const std::string path = temp_path("ckpt_compact_missing");
  compact_checkpoint(path);  // must not create the file or throw
  EXPECT_FALSE(std::ifstream(path).is_open());
}

TEST(Checkpoint, ReaderStreamsRecordsInFileOrderSkippingTornLines) {
  TempFile file("ckpt_reader");
  {
    CheckpointWriter writer(file.path);
    writer.append(sample_checkpoint(3));
    writer.append(sample_checkpoint(1));
  }
  {
    std::ofstream out(file.path, std::ios::app);
    out << "ckpt1 11 torn\n";  // a torn line in the middle, not just the tail
  }
  {
    CheckpointWriter writer(file.path);
    writer.append(sample_checkpoint(6));
  }
  CheckpointReader reader(file.path);
  ShardCheckpoint record;
  std::vector<std::size_t> order;
  while (reader.next(record)) {
    order.push_back(record.summary.info.scenario_index);
    EXPECT_EQ(record.digests.size(), 1u);  // each record parses in full
  }
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 1, 6}));

  // for_each_checkpoint is the same cursor behind a fold callback, and
  // load_checkpoint is for_each into a vector — all three must agree.
  std::vector<std::size_t> folded;
  for_each_checkpoint(file.path, [&](ShardCheckpoint&& r) {
    folded.push_back(r.summary.info.scenario_index);
  });
  EXPECT_EQ(folded, order);
  const auto loaded = load_checkpoint(file.path);
  ASSERT_EQ(loaded.size(), order.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].summary.info.scenario_index, order[i]);
  }
}

TEST(Checkpoint, ReaderOnMissingFileIsImmediatelyExhausted) {
  CheckpointReader reader(temp_path("ckpt_reader_missing"));
  ShardCheckpoint record;
  EXPECT_FALSE(reader.next(record));
}

TEST(JsonlReorder, ReleasesBlocksInSequenceOrder) {
  TempFile file("jsonl_reorder");
  {
    JsonlWriter writer(file.path, /*append=*/false, /*window=*/8);
    writer.submit_block(2, "c\n");
    writer.submit_block(1, "b\n");
    writer.submit_block(0, "a\n");
    writer.submit_block(3, "d\n");
  }
  std::ifstream in(file.path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a\nb\nc\nd\n");
}

TEST(JsonlReorder, AbandonedSequenceDoesNotStallTheWindow) {
  TempFile file("jsonl_abandon");
  {
    JsonlWriter writer(file.path, /*append=*/false, /*window=*/8);
    writer.submit_block(2, "late\n");
    writer.abandon(0);  // a dead shard must release its slot
    writer.submit_block(1, "mid\n");
  }
  std::ifstream in(file.path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "mid\nlate\n");
}

TEST(JsonlReorder, SequenceRestartBeginsANewInvocation) {
  // A writer reused across Campaign::run invocations (incremental resume
  // ticks) sees run sequences restart at zero. reset_sequence() starts the
  // new epoch explicitly; a submit below the release point (here: the
  // out-of-order 1 before 0) is also auto-detected as a restart.
  TempFile file("jsonl_epoch");
  {
    JsonlWriter writer(file.path, /*append=*/false, /*window=*/4);
    writer.submit_block(0, "tick1-a\n");
    writer.submit_block(1, "tick1-b\n");
    writer.reset_sequence();
    writer.submit_block(1, "tick2-b\n");
    writer.submit_block(0, "tick2-a\n");
    writer.submit_block(2, "tick2-c\n");
    writer.submit_block(0, "tick3-a\n");  // auto-detected restart
  }
  std::ifstream in(file.path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(),
            "tick1-a\ntick1-b\ntick2-a\ntick2-b\ntick2-c\ntick3-a\n");
}

TEST(DigestSinkTest, FoldsEventsLikeTheLegacyPath) {
  DigestSink sink;
  ProbeEvent event;
  event.tool = ToolKind::icmp_ping;
  event.reported_rtt_ms = 10.0;
  event.layers = LayerBreakdown{10.0, 8.0, 6.0, 4.0};
  sink.probe_completed(event);
  event.reported_rtt_ms = 20.0;
  event.layers.reset();  // unstamped (cellular-style) probe
  sink.probe_completed(event);
  event.timed_out = true;
  event.reported_rtt_ms = 0;
  sink.probe_completed(event);

  const auto digests = sink.take_digests();
  ASSERT_EQ(digests.size(), 1u);
  EXPECT_EQ(digests[0].tool, ToolKind::icmp_ping);
  EXPECT_EQ(digests[0].probes, 3u);
  EXPECT_EQ(digests[0].lost, 1u);
  EXPECT_EQ(digests[0].reported_rtt_ms.count(), 2u);  // timeouts excluded
  EXPECT_EQ(digests[0].du_ms.count(), 1u);            // only stamped probes
  EXPECT_EQ(sink.take_digests().size(), 0u);          // take() drains
}

TEST(SampleBufferSinkTest, BuffersMatchLegacyVectors) {
  SampleBufferSink sink;
  ProbeEvent event;
  event.reported_rtt_ms = 10.0;
  event.layers = LayerBreakdown{10.0, 8.0, 6.0, 4.0};
  sink.probe_completed(event);
  event.reported_rtt_ms = 20.0;
  event.layers.reset();
  sink.probe_completed(event);
  event.timed_out = true;
  sink.probe_completed(event);
  const auto buffers = sink.take();
  EXPECT_EQ(buffers.reported_rtt_ms, (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(buffers.du_ms, (std::vector<double>{10.0}));
  EXPECT_EQ(buffers.dn_ms, (std::vector<double>{4.0}));
}

/// Records the event stream verbatim, for the delivery-contract assertions.
struct RecordingSink : ResultSink {
  std::vector<ShardInfo>* started;
  std::vector<ProbeEvent>* events;
  std::vector<ShardSummary>* finished;
  void shard_started(const ShardInfo& info) override {
    started->push_back(info);
  }
  void probe_completed(const ProbeEvent& event) override {
    events->push_back(event);
  }
  void shard_finished(const ShardSummary& summary) override {
    finished->push_back(summary);
  }
};

TEST(CampaignSinks, DeliverEventsInCanonicalOrder) {
  // A 2-phone shard through the real engine: the custom sink must see
  // shard_started, then phone-major probe events in schedule order, then
  // shard_finished with counters matching the ShardResult view.
  testbed::ScenarioSpec scenario;
  scenario.phones.assign(2, testbed::PhoneSpec{});
  scenario.emulated_rtt = 10_ms;
  testbed::CampaignSpec spec;
  spec.scenarios = {scenario};
  spec.probes_per_phone = 5;
  spec.probe_interval = 100_ms;

  std::vector<ShardInfo> started;
  std::vector<ProbeEvent> events;
  std::vector<ShardSummary> finished;
  spec.sinks = [&](const ShardInfo&) {
    std::vector<std::unique_ptr<ResultSink>> sinks;
    auto sink = std::make_unique<RecordingSink>();
    sink->started = &started;
    sink->events = &events;
    sink->finished = &finished;
    sinks.push_back(std::move(sink));
    return sinks;
  };

  const testbed::CampaignReport report = testbed::Campaign(spec).run(1);
  ASSERT_EQ(started.size(), 1u);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(started[0].scenario_index, 0u);
  EXPECT_EQ(started[0].phone_count, 2u);
  EXPECT_EQ(started[0].shard_seed, report.shards[0].shard_seed);

  ASSERT_EQ(events.size(), 10u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].phone_index, i / 5) << "event " << i;
    EXPECT_EQ(events[i].probe_index, static_cast<int>(i % 5));
    EXPECT_EQ(events[i].tool, ToolKind::icmp_ping);
  }
  EXPECT_EQ(finished[0].probes_sent, report.shards[0].probes_sent);
  EXPECT_EQ(finished[0].probes_lost, report.shards[0].probes_lost);
  EXPECT_EQ(finished[0].frames_on_air, report.shards[0].frames_on_air);
  EXPECT_EQ(finished[0].events_fired, report.shards[0].events_fired);

  // The compatibility view agrees with the event stream.
  std::vector<double> event_rtts;
  for (const ProbeEvent& event : events) {
    if (!event.timed_out) event_rtts.push_back(event.reported_rtt_ms);
  }
  EXPECT_EQ(event_rtts, report.shards[0].reported_rtt_ms);
}

TEST(JsonlExport, WritesOneRecordPerProbe) {
  TempFile file("jsonl_export");
  testbed::ScenarioGrid grid;
  grid.emulated_rtts = {10_ms};
  grid.workloads = {testbed::WorkloadSpec{ToolKind::icmp_ping},
                    testbed::WorkloadSpec{ToolKind::httping}};
  testbed::CampaignSpec spec;
  spec.scenarios = grid.expand();
  spec.probes_per_phone = 4;
  spec.probe_interval = 100_ms;
  spec.keep_samples = false;
  auto writer = std::make_shared<JsonlWriter>(file.path);
  spec.sinks = jsonl_sink_factory(writer);
  const testbed::CampaignReport report = testbed::Campaign(spec).run(2);

  std::ifstream in(file.path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  std::size_t httping_lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"scenario\":"), std::string::npos);
    EXPECT_NE(line.find("\"tool\":\""), std::string::npos);
    EXPECT_NE(line.find("\"rtt_ms\":"), std::string::npos);
    if (line.find("\"tool\":\"httping\"") != std::string::npos) {
      ++httping_lines;
    }
  }
  EXPECT_EQ(lines, report.total_probes());
  EXPECT_EQ(httping_lines, 4u);
}

}  // namespace
}  // namespace acute::report
