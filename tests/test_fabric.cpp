// The distributed campaign fabric: a coordinator plus any number of worker
// processes over the pipe transport must reproduce a single-process,
// single-thread campaign bit-for-bit — merged digests AND compacted
// checkpoint bytes — for any worker count, lease batch size and kill
// schedule. The fault paths are exercised in-process: a worker killed
// mid-lease (WorkerConfig::max_shards closes the transport exactly like
// SIGKILL), a torn wire frame, a stalled lease expiring past its heartbeat
// deadline, duplicate completions from the re-lease race, and a mismatched
// worker rejected at the hello handshake.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fabric/coordinator.hpp"
#include "fabric/lease.hpp"
#include "fabric/transport.hpp"
#include "fabric/wire.hpp"
#include "fabric/worker.hpp"
#include "report/checkpoint.hpp"
#include "sim/contracts.hpp"
#include "testbed/campaign.hpp"
#include "testbed/shard_context.hpp"

namespace acute::fabric {
namespace {

using namespace acute::sim::literals;
using phone::PhoneProfile;
using testbed::Campaign;
using testbed::CampaignReport;
using testbed::CampaignSpec;
using testbed::ScenarioGrid;
using testbed::WorkloadSpec;
using tools::ToolKind;

struct TempFile {
  explicit TempFile(const std::string& name) : path("fabric_test_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The resume/JSONL matrix grid from the frontier tests: 8 mixed shards
/// (2 profiles x 2 loss rates x 2 workloads), cheap enough to run many
/// times per test binary.
CampaignSpec small_spec() {
  ScenarioGrid grid;
  grid.profiles = {PhoneProfile::nexus5(), PhoneProfile::nexus4()};
  grid.emulated_rtts = {12_ms};
  grid.loss_rates = {0.0, 0.2};
  grid.workloads = {WorkloadSpec{ToolKind::icmp_ping},
                    WorkloadSpec{ToolKind::httping}};
  CampaignSpec spec;
  spec.seed = 77;
  spec.grid = grid;
  spec.probes_per_phone = 6;
  spec.probe_interval = 150_ms;
  spec.probe_timeout = 1_s;
  spec.keep_samples = false;
  spec.retain_shards = false;
  return spec;
}

/// `shards` minimal one-phone one-probe scenarios on a lazy
/// rtt x loss x reorder grid — the scaling shape shared with the frontier
/// and bench suites.
CampaignSpec scaled_spec(std::size_t shards) {
  ScenarioGrid grid;
  grid.emulated_rtts.clear();
  for (int i = 0; i < 50; ++i) {
    grid.emulated_rtts.push_back(sim::Duration::millis(2 + i));
  }
  grid.reorder = {false, true};
  const std::size_t loss_steps = (shards + 99) / 100;
  grid.loss_rates.clear();
  for (std::size_t i = 0; i < loss_steps; ++i) {
    grid.loss_rates.push_back(double(i) * (0.3 / double(loss_steps)));
  }
  CampaignSpec spec;
  spec.seed = 2016;
  spec.grid = grid;
  spec.probes_per_phone = 1;
  spec.probe_interval = 50_ms;
  spec.probe_timeout = 400_ms;
  spec.settle = 50_ms;
  spec.keep_samples = false;
  spec.retain_shards = false;
  return spec;
}

/// Bitwise comparison of the merged-report surface: EXPECT_EQ on the digest
/// quantiles (never NEAR) — the fabric merge must reproduce the
/// single-process fold to the last bit.
void expect_reports_bit_identical(const CampaignReport& a,
                                  const CampaignReport& b) {
  const auto da = a.workload_digests();
  const auto db = b.workload_digests();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].tool, db[i].tool);
    EXPECT_EQ(da[i].probes, db[i].probes);
    EXPECT_EQ(da[i].lost, db[i].lost);
    EXPECT_EQ(da[i].reported_rtt_ms.count(), db[i].reported_rtt_ms.count());
    for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
      EXPECT_EQ(da[i].reported_rtt_ms.quantile(q),
                db[i].reported_rtt_ms.quantile(q));
      EXPECT_EQ(da[i].du_ms.quantile(q), db[i].du_ms.quantile(q));
      EXPECT_EQ(da[i].dk_ms.quantile(q), db[i].dk_ms.quantile(q));
      EXPECT_EQ(da[i].dv_ms.quantile(q), db[i].dv_ms.quantile(q));
      EXPECT_EQ(da[i].dn_ms.quantile(q), db[i].dn_ms.quantile(q));
    }
  }
  EXPECT_EQ(a.total_probes(), b.total_probes());
  EXPECT_EQ(a.total_lost(), b.total_lost());
  EXPECT_EQ(a.total_frames(), b.total_frames());
  EXPECT_EQ(a.total_events(), b.total_events());
  EXPECT_EQ(a.total_sim_seconds(), b.total_sim_seconds());
  EXPECT_EQ(a.completed_shards(), b.completed_shards());
  EXPECT_EQ(a.shard_count(), b.shard_count());
}

struct FabricRun {
  CampaignReport report;
  CoordinatorStats stats;
};

/// Coordinator on this thread, one fabric::Worker per config on its own
/// thread, connected by transport_pair — the in-process model of the
/// forked-worker topology (a worker whose max_shards fires returns
/// mid-lease and its transport closes, exactly what SIGKILL looks like).
FabricRun run_fabric(const CampaignSpec& spec,
                     const std::vector<WorkerConfig>& worker_configs,
                     LeaseConfig lease = {}, std::ostream* log = nullptr) {
  std::vector<std::unique_ptr<Transport>> coordinator_ends;
  std::vector<std::thread> threads;
  for (const WorkerConfig& worker_config : worker_configs) {
    auto ends = transport_pair();
    coordinator_ends.push_back(std::move(ends.first));
    threads.emplace_back(
        [end = std::move(ends.second), spec, worker_config]() mutable {
          Worker worker(spec, worker_config);
          (void)worker.run(*end);
        });
  }
  CoordinatorConfig config;
  config.lease = lease;
  config.log = log;
  Coordinator coordinator(spec, config);
  CampaignReport report = coordinator.run(std::move(coordinator_ends));
  for (std::thread& thread : threads) thread.join();
  return FabricRun{std::move(report), coordinator.stats()};
}

// ---------------------------------------------------------------- LeaseTable

LeaseConfig fast_lease() {
  LeaseConfig config;
  config.batch = 4;
  config.lease_timeout_ms = 100;
  config.expiry_backoff = 2.0;
  config.max_timeout_ms = 1000;
  return config;
}

TEST(LeaseTable, GrantsLowestContiguousRunCappedAtBatch) {
  LeaseTable table(std::vector<bool>(10, true), fast_lease());
  const auto first = table.grant(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->begin, 0u);
  EXPECT_EQ(first->end, 4u);
  EXPECT_EQ(first->deadline_ms, 100u);
  const auto second = table.grant(0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->begin, 4u);
  EXPECT_EQ(second->end, 8u);
  const auto third = table.grant(0);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->begin, 8u);
  EXPECT_EQ(third->end, 10u);  // short tail, not padded past the space
  EXPECT_FALSE(table.grant(0).has_value());
  EXPECT_EQ(table.pending_count(), 0u);
  EXPECT_EQ(table.outstanding_leases(), 3u);
  EXPECT_FALSE(table.all_complete());
}

TEST(LeaseTable, NonLeasableIndicesSplitRunsAndNeverLease) {
  // Indices 1 and 4 are restored-from-checkpoint: runs must break around
  // them, and all_complete must not wait for them.
  LeaseTable table({true, false, true, true, false, true}, fast_lease());
  EXPECT_EQ(table.leasable_count(), 4u);
  const auto first = table.grant(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->begin, 0u);
  EXPECT_EQ(first->end, 1u);
  const auto second = table.grant(0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->begin, 2u);
  EXPECT_EQ(second->end, 4u);
  const auto third = table.grant(0);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->begin, 5u);
  EXPECT_EQ(third->end, 6u);
  for (const std::size_t index : {0u, 2u, 3u, 5u}) {
    EXPECT_TRUE(table.complete(index));
  }
  EXPECT_TRUE(table.all_complete());
}

TEST(LeaseTable, HeartbeatExtendsDeadlineAndExpiryReQueuesExactlyOnce) {
  LeaseTable table(std::vector<bool>(4, true), fast_lease());
  const auto lease = table.grant(0);
  ASSERT_TRUE(lease.has_value());
  EXPECT_FALSE(table.heartbeat(lease->id + 99, 10));  // unknown lease
  EXPECT_TRUE(table.heartbeat(lease->id, 80));        // deadline -> 180

  EXPECT_TRUE(table.expire(100).empty());  // old deadline passed, extended
  const std::vector<Lease> expired = table.expire(180);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired.front().id, lease->id);
  EXPECT_EQ(table.pending_count(), 4u);
  // Exactly once: a second expiry sweep at the same instant finds nothing,
  // and the indices re-queued above are pending a single time each.
  EXPECT_TRUE(table.expire(180).empty());
  EXPECT_EQ(table.outstanding_leases(), 0u);
  const auto release = table.grant(200);
  ASSERT_TRUE(release.has_value());
  EXPECT_EQ(release->begin, 0u);
  EXPECT_EQ(release->end, 4u);
  // Backoff: one prior expiry doubles the 100ms timeout.
  EXPECT_EQ(release->deadline_ms, 200u + 200u);
  EXPECT_FALSE(table.grant(200).has_value());  // re-queued once, not twice
  EXPECT_FALSE(table.heartbeat(lease->id, 210));  // the expired id is gone
}

TEST(LeaseTable, ExpiryBackoffIsCappedAtMaxTimeout) {
  LeaseTable table(std::vector<bool>(2, true), fast_lease());
  std::uint64_t now = 0;
  for (int round = 0; round < 6; ++round) {
    const auto lease = table.grant(now);
    ASSERT_TRUE(lease.has_value());
    now = lease->deadline_ms;
    ASSERT_EQ(table.expire(now).size(), 1u);
  }
  const auto capped = table.grant(now);
  ASSERT_TRUE(capped.has_value());
  // 100ms * 2^6 would be 6400; the config caps the timeout at 1000.
  EXPECT_EQ(capped->deadline_ms - now, 1000u);
}

TEST(LeaseTable, CompleteIsIdempotentAndRevokeReQueuesTheRest) {
  LeaseTable table(std::vector<bool>(4, true), fast_lease());
  const auto lease = table.grant(0);
  ASSERT_TRUE(lease.has_value());
  EXPECT_TRUE(table.complete(0));
  EXPECT_FALSE(table.complete(0));  // the duplicate-completion rule
  table.revoke(lease->id);
  EXPECT_EQ(table.done_count(), 1u);
  EXPECT_EQ(table.pending_count(), 3u);  // 0 stays done, 1..3 re-queued
  table.revoke(lease->id + 7);           // unknown id: no-op
  const auto release = table.grant(10);
  ASSERT_TRUE(release.has_value());
  EXPECT_EQ(release->begin, 1u);
  EXPECT_EQ(release->end, 4u);
  for (const std::size_t index : {1u, 2u, 3u}) {
    EXPECT_TRUE(table.complete(index));
  }
  table.finish(release->id);
  EXPECT_TRUE(table.all_complete());
  EXPECT_EQ(table.outstanding_leases(), 0u);
}

// ---------------------------------------------------------------------- wire

TEST(Wire, BodiesAndFramesRoundTripOverThePipeTransport) {
  HelloBody hello;
  hello.spec_hash = 0x1234'5678'9abc'def0ull;
  hello.seed = 2016;
  hello.shard_count = 100'000;
  const HelloBody hello2 = decode_hello(encode_hello(hello));
  EXPECT_EQ(hello2.protocol, hello.protocol);
  EXPECT_EQ(hello2.spec_hash, hello.spec_hash);
  EXPECT_EQ(hello2.seed, hello.seed);
  EXPECT_EQ(hello2.shard_count, hello.shard_count);

  const LeaseGrantBody grant2 =
      decode_lease_grant(encode_lease_grant(LeaseGrantBody{42, 16, 32}));
  EXPECT_EQ(grant2.lease_id, 42u);
  EXPECT_EQ(grant2.begin, 16u);
  EXPECT_EQ(grant2.end, 32u);
  EXPECT_EQ(decode_lease_id(encode_lease_id(7)), 7u);

  auto ends = transport_pair();
  write_frame(*ends.first, FrameType::hello, encode_hello(hello));
  write_frame(*ends.first, FrameType::lease_request);
  Frame frame;
  ASSERT_TRUE(read_frame(*ends.second, frame));
  EXPECT_EQ(frame.type, FrameType::hello);
  EXPECT_EQ(frame.payload, encode_hello(hello));
  ASSERT_TRUE(read_frame(*ends.second, frame));
  EXPECT_EQ(frame.type, FrameType::lease_request);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(Wire, ShardDoneFrameCarriesTheCheckpointLineVerbatim) {
  // One serialization for disk and wire: the shard_done payload is exactly
  // the ckpt2 line, so frame -> parse -> re-render is the identity.
  const Campaign campaign(small_spec());
  testbed::ShardContext context;
  const report::ShardCheckpoint record = campaign.run_shard_record(3, context);
  const std::string line = report::render_checkpoint_record(record);

  ShardDoneBody done;
  done.lease_id = 9;
  done.record_line = line;
  const ShardDoneBody decoded = decode_shard_done(encode_shard_done(done));
  EXPECT_EQ(decoded.lease_id, 9u);
  EXPECT_EQ(decoded.record_line, line);

  report::ShardCheckpoint parsed;
  ASSERT_TRUE(report::parse_checkpoint_record(decoded.record_line, parsed));
  EXPECT_EQ(parsed.summary.info.scenario_index, 3u);
  EXPECT_EQ(parsed.summary.info.shard_seed, record.summary.info.shard_seed);
  EXPECT_EQ(parsed.spec_hash, record.spec_hash);
  EXPECT_EQ(report::render_checkpoint_record(parsed), line);
}

TEST(Wire, CleanEofAtFrameBoundaryIsAQuietFalse) {
  auto ends = transport_pair();
  write_frame(*ends.first, FrameType::heartbeat, encode_lease_id(1));
  ends.first.reset();  // peer gone after a complete frame
  Frame frame;
  ASSERT_TRUE(read_frame(*ends.second, frame));
  EXPECT_EQ(frame.type, FrameType::heartbeat);
  EXPECT_FALSE(read_frame(*ends.second, frame));
}

TEST(Wire, TornFramesThrowLoudly) {
  const auto send_raw = [](Transport& transport,
                           const std::vector<unsigned char>& bytes) {
    transport.send_all(bytes.data(), bytes.size());
  };
  Frame frame;
  {
    // EOF inside a frame: header promises 10 bytes, only 2 arrive.
    auto ends = transport_pair();
    send_raw(*ends.first, {10, 0, 0, 0, 6, 1});
    ends.first.reset();
    EXPECT_THROW((void)read_frame(*ends.second, frame),
                 sim::ContractViolation);
  }
  {
    // Zero length: no room for even the type byte.
    auto ends = transport_pair();
    send_raw(*ends.first, {0, 0, 0, 0});
    EXPECT_THROW((void)read_frame(*ends.second, frame),
                 sim::ContractViolation);
  }
  {
    // Oversize length: beyond kMaxFrameBytes is garbage, not data.
    auto ends = transport_pair();
    send_raw(*ends.first, {1, 0, 0, 0xff});
    EXPECT_THROW((void)read_frame(*ends.second, frame),
                 sim::ContractViolation);
  }
  {
    // Unknown frame type.
    auto ends = transport_pair();
    send_raw(*ends.first, {1, 0, 0, 0, 99});
    EXPECT_THROW((void)read_frame(*ends.second, frame),
                 sim::ContractViolation);
  }
}

// -------------------------------------------------------------- integration

/// THE acceptance pin: coordinator + 3 workers must equal a single-process
/// single-thread run bit-for-bit, merged digests and compacted checkpoint
/// bytes both.
TEST(Fabric, MatchesSingleProcessRunBitIdenticalIncludingCheckpointBytes) {
  TempFile reference_ckpt("reference");
  CampaignSpec reference_spec = small_spec();
  reference_spec.checkpoint_path = reference_ckpt.path;
  const CampaignReport reference = Campaign(reference_spec).run(1);
  report::compact_checkpoint(reference_ckpt.path);

  TempFile fabric_ckpt("fabric");
  CampaignSpec fabric_spec = small_spec();
  fabric_spec.checkpoint_path = fabric_ckpt.path;
  LeaseConfig lease;
  lease.batch = 2;  // 8 shards over 3 workers: real lease interleaving
  const FabricRun fabric =
      run_fabric(fabric_spec, {WorkerConfig{}, WorkerConfig{}, WorkerConfig{}},
                 lease);

  expect_reports_bit_identical(fabric.report, reference);
  EXPECT_EQ(fabric.stats.workers_joined, 3u);
  EXPECT_EQ(fabric.stats.workers_died, 0u);
  EXPECT_EQ(fabric.stats.shards_merged, reference.shard_count());
  const std::string reference_bytes = read_file(reference_ckpt.path);
  ASSERT_FALSE(reference_bytes.empty());
  EXPECT_EQ(read_file(fabric_ckpt.path), reference_bytes);
}

TEST(Fabric, KilledWorkerMidLeaseIsReLeasedBitIdentical) {
  const CampaignReport reference = Campaign(scaled_spec(200)).run(1);

  // Worker 0 dies after 5 shards — mid-lease (batch 4 means it is 1 shard
  // into its second lease), no lease_done, transport closed: SIGKILL as the
  // coordinator sees it. The survivors absorb the re-leased range.
  LeaseConfig lease;
  lease.batch = 4;
  std::ostringstream log;
  WorkerConfig killed;
  killed.max_shards = 5;
  const FabricRun fabric = run_fabric(
      scaled_spec(200), {killed, WorkerConfig{}, WorkerConfig{}}, lease, &log);

  expect_reports_bit_identical(fabric.report, reference);
  EXPECT_EQ(fabric.stats.workers_joined, 3u);
  EXPECT_EQ(fabric.stats.workers_died, 1u);
  EXPECT_NE(log.str().find("re-leasing"), std::string::npos);
}

TEST(Fabric, RejectsMismatchedWorkersLoudlyWhileTheRestFinish) {
  const CampaignSpec spec = small_spec();
  CampaignSpec wrong_seed = spec;
  wrong_seed.seed = spec.seed + 1;
  CampaignSpec wrong_shape = spec;
  wrong_shape.grid->loss_rates.push_back(0.3);  // different grid, hash moves

  auto good = transport_pair();
  auto bad_seed = transport_pair();
  auto bad_shape = transport_pair();
  std::string seed_error;
  std::string shape_error;
  std::thread bad_seed_thread(
      [end = std::move(bad_seed.second), wrong_seed, &seed_error]() mutable {
        try {
          Worker worker(wrong_seed);
          (void)worker.run(*end);
        } catch (const sim::ContractViolation& violation) {
          seed_error = violation.what();
        }
      });
  std::thread bad_shape_thread(
      [end = std::move(bad_shape.second), wrong_shape,
       &shape_error]() mutable {
        try {
          Worker worker(wrong_shape);
          (void)worker.run(*end);
        } catch (const sim::ContractViolation& violation) {
          shape_error = violation.what();
        }
      });
  std::thread good_thread([end = std::move(good.second), spec]() mutable {
    Worker worker(spec);
    (void)worker.run(*end);
  });

  std::vector<std::unique_ptr<Transport>> ends;
  ends.push_back(std::move(good.first));
  ends.push_back(std::move(bad_seed.first));
  ends.push_back(std::move(bad_shape.first));
  std::ostringstream log;
  CoordinatorConfig config;
  config.log = &log;
  Coordinator coordinator(spec, config);
  const CampaignReport report = coordinator.run(std::move(ends));
  bad_seed_thread.join();
  bad_shape_thread.join();
  good_thread.join();

  // Both mismatches die loudly on their own side AND in the coordinator's
  // log; the healthy worker completes the campaign alone, bit-identical.
  EXPECT_NE(seed_error.find("rejected handshake"), std::string::npos);
  EXPECT_NE(seed_error.find("seed mismatch"), std::string::npos);
  EXPECT_NE(shape_error.find("rejected handshake"), std::string::npos);
  EXPECT_NE(shape_error.find("hash mismatch"), std::string::npos);
  EXPECT_EQ(coordinator.stats().workers_rejected, 2u);
  EXPECT_EQ(coordinator.stats().workers_joined, 1u);
  expect_reports_bit_identical(report, Campaign(small_spec()).run(1));
}

TEST(Fabric, DuplicateCompletionsFromTheReLeaseRaceAreTolerated) {
  // Hand-driven worker: obeys the protocol but reports the first shard of
  // each lease twice — exactly what a stalled worker whose lease expired
  // and was re-run elsewhere looks like. The first copy merges, the second
  // is counted and dropped, and the result stays bit-identical.
  const CampaignSpec spec = small_spec();
  const Campaign campaign(spec);
  auto ends = transport_pair();

  std::optional<CampaignReport> merged;
  std::ostringstream log;
  CoordinatorConfig config;
  config.lease.batch = 4;
  config.log = &log;
  Coordinator coordinator(spec, config);
  std::thread coordinator_thread([&coordinator, &merged,
                                  end = std::move(ends.first)]() mutable {
    std::vector<std::unique_ptr<Transport>> workers;
    workers.push_back(std::move(end));
    merged = coordinator.run(std::move(workers));
  });

  Transport& wire = *ends.second;
  HelloBody hello;
  hello.spec_hash = spec.spec_hash();
  hello.seed = spec.seed;
  hello.shard_count = campaign.scenario_count();
  write_frame(wire, FrameType::hello, encode_hello(hello));
  Frame frame;
  ASSERT_TRUE(read_frame(wire, frame));
  ASSERT_EQ(frame.type, FrameType::hello_ok);

  // Our writes race the coordinator's post-campaign close exactly as a real
  // worker's do (the campaign completes at OUR final shard_done): on a
  // failed send, a buffered shutdown frame means we are simply done.
  bool serving = true;
  const auto send_checked = [&wire, &serving](FrameType type,
                                              const std::string& payload) {
    try {
      write_frame(wire, type, payload);
    } catch (const sim::ContractViolation&) {
      serving = false;
      Frame pending;
      ASSERT_TRUE(read_frame(wire, pending));
      ASSERT_EQ(pending.type, FrameType::shutdown);
    }
  };

  testbed::ShardContext context;
  while (serving) {
    send_checked(FrameType::lease_request, {});
    if (!serving) break;
    ASSERT_TRUE(read_frame(wire, frame));
    switch (frame.type) {
      case FrameType::shutdown:
        serving = false;
        break;
      case FrameType::lease_grant: {
        const LeaseGrantBody lease = decode_lease_grant(frame.payload);
        for (std::uint64_t index = lease.begin;
             serving && index < lease.end; ++index) {
          send_checked(FrameType::heartbeat, encode_lease_id(lease.lease_id));
          if (!serving) break;
          ShardDoneBody done;
          done.lease_id = lease.lease_id;
          done.record_line = report::render_checkpoint_record(
              campaign.run_shard_record(static_cast<std::size_t>(index),
                                        context));
          send_checked(FrameType::shard_done, encode_shard_done(done));
          if (serving && index == lease.begin) {  // the duplicate
            send_checked(FrameType::shard_done, encode_shard_done(done));
          }
        }
        if (serving) {
          send_checked(FrameType::lease_done, encode_lease_id(lease.lease_id));
        }
        break;
      }
      default:
        FAIL() << "unexpected frame type "
               << static_cast<int>(frame.type);
    }
  }
  coordinator_thread.join();

  ASSERT_TRUE(merged.has_value());
  // 8 shards / batch 4 = 2 leases, one duplicated head each.
  EXPECT_EQ(coordinator.stats().duplicate_shards, 2u);
  EXPECT_EQ(coordinator.stats().shards_merged, 8u);
  EXPECT_NE(log.str().find("duplicate completion"), std::string::npos);
  expect_reports_bit_identical(*merged, Campaign(small_spec()).run(1));
}

TEST(Fabric, TornFrameBuriesTheWorkerAndItsWorkIsReLeased) {
  // A worker that takes a lease and then sends garbage is compromised; the
  // coordinator must bury it, re-lease its range and finish the campaign
  // through the healthy worker — still bit-identical.
  const CampaignSpec spec = small_spec();
  auto evil = transport_pair();
  auto good = transport_pair();

  std::optional<CampaignReport> merged;
  std::ostringstream log;
  CoordinatorConfig config;
  config.lease.batch = 2;
  config.log = &log;
  Coordinator coordinator(spec, config);
  std::thread coordinator_thread(
      [&coordinator, &merged, evil_end = std::move(evil.first),
       good_end = std::move(good.first)]() mutable {
        std::vector<std::unique_ptr<Transport>> workers;
        workers.push_back(std::move(evil_end));
        workers.push_back(std::move(good_end));
        merged = coordinator.run(std::move(workers));
      });

  // Evil handshakes correctly and takes a lease first...
  Transport& wire = *evil.second;
  HelloBody hello;
  hello.spec_hash = spec.spec_hash();
  hello.seed = spec.seed;
  hello.shard_count = Campaign(spec).scenario_count();
  write_frame(wire, FrameType::hello, encode_hello(hello));
  Frame frame;
  ASSERT_TRUE(read_frame(wire, frame));
  ASSERT_EQ(frame.type, FrameType::hello_ok);
  write_frame(wire, FrameType::lease_request);
  ASSERT_TRUE(read_frame(wire, frame));
  ASSERT_EQ(frame.type, FrameType::lease_grant);
  // ...then emits a frame with an unknown type byte.
  const unsigned char garbage[] = {1, 0, 0, 0, 99};
  wire.send_all(garbage, sizeof garbage);

  // Only now start the healthy worker: the evil one provably held a lease.
  std::thread good_thread([end = std::move(good.second), spec]() mutable {
    Worker worker(spec);
    (void)worker.run(*end);
  });
  coordinator_thread.join();
  good_thread.join();

  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(coordinator.stats().workers_died, 1u);
  EXPECT_NE(log.str().find("torn"), std::string::npos);
  expect_reports_bit_identical(*merged, Campaign(small_spec()).run(1));
}

TEST(Fabric, HeartbeatExpiryReLeasesAStalledRange) {
  // A worker that takes a lease and then never heartbeats: its deadline
  // passes, the range re-enters pending with backoff, and the parked
  // healthy worker is pushed the re-leased grant. The stalled worker stays
  // connected the whole time — stall, not death.
  const CampaignSpec spec = small_spec();
  auto stalled = transport_pair();
  auto good = transport_pair();

  std::optional<CampaignReport> merged;
  std::ostringstream log;
  CoordinatorConfig config;
  config.lease.batch = 2;
  config.lease.lease_timeout_ms = 50;  // stall detection worth waiting for
  config.log = &log;
  Coordinator coordinator(spec, config);
  std::thread coordinator_thread(
      [&coordinator, &merged, stalled_end = std::move(stalled.first),
       good_end = std::move(good.first)]() mutable {
        std::vector<std::unique_ptr<Transport>> workers;
        workers.push_back(std::move(stalled_end));
        workers.push_back(std::move(good_end));
        merged = coordinator.run(std::move(workers));
      });

  // The stalling worker joins and takes a lease before the healthy worker
  // exists, so the stall provably covers real work...
  Transport& wire = *stalled.second;
  HelloBody hello;
  hello.spec_hash = spec.spec_hash();
  hello.seed = spec.seed;
  hello.shard_count = Campaign(spec).scenario_count();
  write_frame(wire, FrameType::hello, encode_hello(hello));
  Frame frame;
  ASSERT_TRUE(read_frame(wire, frame));
  ASSERT_EQ(frame.type, FrameType::hello_ok);
  write_frame(wire, FrameType::lease_request);
  ASSERT_TRUE(read_frame(wire, frame));
  ASSERT_EQ(frame.type, FrameType::lease_grant);

  // ...then goes silent until shutdown.
  std::thread good_thread([end = std::move(good.second), spec]() mutable {
    Worker worker(spec);
    (void)worker.run(*end);
  });
  ASSERT_TRUE(read_frame(wire, frame));
  EXPECT_EQ(frame.type, FrameType::shutdown);
  coordinator_thread.join();
  good_thread.join();

  ASSERT_TRUE(merged.has_value());
  EXPECT_GE(coordinator.stats().leases_expired, 1u);
  EXPECT_EQ(coordinator.stats().workers_died, 0u);
  EXPECT_NE(log.str().find("expired without heartbeat"), std::string::npos);
  expect_reports_bit_identical(*merged, Campaign(small_spec()).run(1));
}

TEST(Fabric, CoordinatorResumesFromItsCheckpoint) {
  const CampaignReport reference = Campaign(small_spec()).run(1);
  TempFile reference_ckpt("resume_reference");
  {
    CampaignSpec full = small_spec();
    full.checkpoint_path = reference_ckpt.path;
    (void)Campaign(full).run(1);
    report::compact_checkpoint(reference_ckpt.path);
  }

  // A single-process run killed after 3 shards leaves a checkpoint; a
  // fresh coordinator restores it and leases only the remaining 5 — the
  // merged report and the final checkpoint bytes match an uninterrupted
  // run exactly.
  TempFile checkpoint("resume");
  {
    CampaignSpec partial = small_spec();
    partial.checkpoint_path = checkpoint.path;
    partial.max_shards = 3;
    (void)Campaign(partial).run(1);
  }
  CampaignSpec resumed = small_spec();
  resumed.checkpoint_path = checkpoint.path;
  LeaseConfig lease;
  lease.batch = 2;
  std::ostringstream log;
  const FabricRun fabric =
      run_fabric(resumed, {WorkerConfig{}, WorkerConfig{}}, lease, &log);

  EXPECT_NE(log.str().find("restored 3 shards"), std::string::npos);
  EXPECT_EQ(fabric.stats.shards_merged, 5u);
  EXPECT_EQ(fabric.report.completed_shards(), fabric.report.shard_count());
  expect_reports_bit_identical(fabric.report, reference);
  EXPECT_EQ(read_file(checkpoint.path), read_file(reference_ckpt.path));
}

}  // namespace
}  // namespace acute::fabric
