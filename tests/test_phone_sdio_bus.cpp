// The SDIO/SMD bus sleep machine (§3.2.1): idle counting, wake costs,
// the rooted-driver ablation, and clock-ramp behaviour.
#include <gtest/gtest.h>

#include "phone/profile.hpp"
#include "phone/sdio_bus.hpp"
#include "sim/simulator.hpp"

namespace acute::phone {
namespace {

using namespace acute::sim::literals;
using sim::Duration;
using sim::Simulator;

struct BusFixture {
  Simulator sim;
  PhoneProfile profile = PhoneProfile::nexus5();
  SdioBus bus{sim, sim::Rng(11), profile};
};

TEST(SdioBus, StartsAwakeAndSleepsAfterIdlePeriod) {
  BusFixture f;
  EXPECT_EQ(f.bus.state(), SdioBus::State::awake);
  // Idle period = watchdog (10 ms) x idletime (5) = 50 ms, +1 tick phase.
  f.sim.run_for(39_ms);
  EXPECT_EQ(f.bus.state(), SdioBus::State::awake);
  f.sim.run_for(22_ms);
  EXPECT_EQ(f.bus.state(), SdioBus::State::sleeping);
  EXPECT_EQ(f.bus.sleep_count(), 1u);
}

TEST(SdioBus, ActivityResetsIdleCounting) {
  BusFixture f;
  // Touch the bus every 30 ms: it must never sleep.
  for (int i = 0; i < 20; ++i) {
    f.sim.schedule_in(Duration::millis(30 * i), [&f] { f.bus.activity(); });
  }
  f.sim.run_for(620_ms);
  EXPECT_EQ(f.bus.sleep_count(), 0u);
  EXPECT_EQ(f.bus.state(), SdioBus::State::awake);
}

TEST(SdioBus, AcquireWhileSleepingPaysWake) {
  BusFixture f;
  f.sim.run_for(100_ms);
  ASSERT_EQ(f.bus.state(), SdioBus::State::sleeping);
  const Duration cost = f.bus.acquire(SdioBus::Direction::transmit);
  // Promotion delay from the Nexus 5 profile: ~8.4-13.4 ms.
  EXPECT_GE(cost.to_ms(), f.profile.bus_wake_tx.lo_ms);
  EXPECT_LE(cost.to_ms(), f.profile.bus_wake_tx.hi_ms);
  EXPECT_EQ(f.bus.state(), SdioBus::State::awake);
  EXPECT_EQ(f.bus.wake_count(), 1u);
}

TEST(SdioBus, ReceiveWakeUsesRxDistribution) {
  BusFixture f;
  f.sim.run_for(100_ms);
  const Duration cost = f.bus.acquire(SdioBus::Direction::receive);
  EXPECT_GE(cost.to_ms(), f.profile.bus_wake_rx.lo_ms);
  EXPECT_LE(cost.to_ms(), f.profile.bus_wake_rx.hi_ms);
}

TEST(SdioBus, AcquireWhenRecentlyActiveIsFree) {
  BusFixture f;
  f.bus.activity();
  f.sim.run_for(5_ms);
  EXPECT_EQ(f.bus.acquire(SdioBus::Direction::transmit), Duration{});
}

TEST(SdioBus, ConcurrentAcquireJoinsOngoingWake) {
  BusFixture f;
  f.sim.run_for(100_ms);
  const Duration first = f.bus.acquire(SdioBus::Direction::transmit);
  f.sim.run_for(2_ms);
  const Duration second = f.bus.acquire(SdioBus::Direction::receive);
  // The second request waits only for the remainder of the ongoing wake.
  EXPECT_EQ(second, first - 2_ms);
  EXPECT_EQ(f.bus.wake_count(), 1u);
}

TEST(SdioBus, AwakeButIdlePaysClockRamp) {
  BusFixture f;
  PhoneProfile profile = PhoneProfile::nexus5();
  profile.bus_watchdog = Duration::millis(10);
  SdioBus bus(f.sim, sim::Rng(12), profile);
  bus.set_sleep_enabled(false);  // stay awake, but let the clock idle down
  f.sim.run_for(200_ms);
  const Duration cost = bus.acquire(SdioBus::Direction::transmit);
  EXPECT_GE(cost.to_ms(), profile.bus_clk_request.lo_ms);
  EXPECT_LE(cost.to_ms(), profile.bus_clk_request.hi_ms);
}

TEST(SdioBus, DisableSleepIsTheRootedAblation) {
  BusFixture f;
  f.bus.set_sleep_enabled(false);
  f.sim.run_for(500_ms);
  EXPECT_EQ(f.bus.state(), SdioBus::State::awake);
  EXPECT_EQ(f.bus.sleep_count(), 0u);
  EXPECT_FALSE(f.bus.sleep_enabled());
}

TEST(SdioBus, DisableWakesASleepingBus) {
  BusFixture f;
  f.sim.run_for(100_ms);
  ASSERT_EQ(f.bus.state(), SdioBus::State::sleeping);
  f.bus.set_sleep_enabled(false);
  EXPECT_EQ(f.bus.state(), SdioBus::State::awake);
}

TEST(SdioBus, ReenableRestoresSleeping) {
  BusFixture f;
  f.bus.set_sleep_enabled(false);
  f.sim.run_for(200_ms);
  f.bus.set_sleep_enabled(true);
  f.sim.run_for(100_ms);
  EXPECT_EQ(f.bus.state(), SdioBus::State::sleeping);
}

TEST(SdioBus, TransferTimeScalesWithSize) {
  BusFixture f;
  const Duration t1 = f.bus.transfer_time(1000);
  const Duration t2 = f.bus.transfer_time(2000);
  EXPECT_EQ(t2.count_nanos(), 2 * t1.count_nanos());
  // 1000 B at 400 Mbit/s = 20 us.
  EXPECT_EQ(t1, Duration::micros(20));
}

TEST(SdioBus, WakeCompletionCountsAsActivity) {
  BusFixture f;
  f.sim.run_for(100_ms);
  (void)f.bus.acquire(SdioBus::Direction::transmit);
  // Immediately after the wake completes the bus is busy; it must not
  // re-sleep within the idle period measured from the wake end.
  f.sim.run_for(45_ms);
  EXPECT_EQ(f.bus.state(), SdioBus::State::awake);
  f.sim.run_for(30_ms);
  EXPECT_EQ(f.bus.state(), SdioBus::State::sleeping);
}

// Property: across every handset profile, the sleep onset is within one
// watchdog tick above the configured idle period.
class BusSleepOnset : public ::testing::TestWithParam<int> {};

TEST_P(BusSleepOnset, SleepsCloseToConfiguredIdle) {
  Simulator sim;
  const auto profile = PhoneProfile::all()[GetParam()];
  SdioBus bus(sim, sim::Rng(31), profile);
  const Duration idle = profile.bus_sleep_idle();
  sim.run_for(idle - 11_ms);
  EXPECT_EQ(bus.state(), SdioBus::State::awake) << profile.name;
  sim.run_for(22_ms);
  EXPECT_EQ(bus.state(), SdioBus::State::sleeping) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(AllPhones, BusSleepOnset, ::testing::Range(0, 5));

}  // namespace
}  // namespace acute::phone
