#include <gtest/gtest.h>

#include <cmath>

#include "sim/contracts.hpp"
#include "sim/random.hpp"

namespace acute::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(42);
  Rng c1 = parent.fork("alpha");
  Rng c2 = Rng(42).fork("alpha");
  EXPECT_DOUBLE_EQ(c1.uniform(0, 1), c2.uniform(0, 1));

  Rng other = parent.fork("beta");
  EXPECT_NE(parent.fork("alpha").seed(), other.seed());
}

TEST(Rng, ForkByIntegerTag) {
  Rng parent(42);
  EXPECT_EQ(parent.fork(1).seed(), Rng(42).fork(1).seed());
  EXPECT_NE(parent.fork(1).seed(), parent.fork(2).seed());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(7), b(7);
  (void)a.fork("child");
  EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 0);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalZeroSigmaIsDegenerate) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.truncated_normal(10.0, 3.0, 8.0, 13.0);
    EXPECT_GE(x, 8.0);
    EXPECT_LE(x, 13.0);
  }
}

TEST(Rng, TruncatedNormalDegenerateRangeClamps) {
  Rng rng(11);
  // Bounds far from the mean: resampling fails, result clamps to bounds.
  const double x = rng.truncated_normal(0.0, 0.001, 100.0, 101.0);
  EXPECT_GE(x, 100.0);
  EXPECT_LE(x, 101.0);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kSamples, 4.0, 0.15);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, UniformDurationWithinRange) {
  Rng rng(19);
  const Duration lo = Duration::millis(2);
  const Duration hi = Duration::millis(9);
  for (int i = 0; i < 500; ++i) {
    const Duration d = rng.uniform_duration(lo, hi);
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
}

TEST(Rng, ContractViolations) {
  Rng rng(3);
  EXPECT_THROW((void)rng.uniform(2, 1), ContractViolation);
  EXPECT_THROW((void)rng.uniform_int(2, 1), ContractViolation);
  EXPECT_THROW((void)rng.normal(0, -1), ContractViolation);
  EXPECT_THROW((void)rng.exponential(0), ContractViolation);
  EXPECT_THROW((void)rng.bernoulli(1.5), ContractViolation);
}

// Property sweep: sample means of the latency-style distributions track
// their parameters across a range of settings.
struct MeanCase {
  double mu;
  double sigma;
};

class TruncatedNormalMean : public ::testing::TestWithParam<MeanCase> {};

TEST_P(TruncatedNormalMean, SampleMeanNearMu) {
  const auto [mu, sigma] = GetParam();
  Rng rng(static_cast<std::uint64_t>(mu * 1000 + sigma));
  double sum = 0;
  constexpr int kSamples = 5000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.truncated_normal(mu, sigma, mu - 3 * sigma, mu + 3 * sigma);
  }
  EXPECT_NEAR(sum / kSamples, mu, sigma * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TruncatedNormalMean,
                         ::testing::Values(MeanCase{1.0, 0.2},
                                           MeanCase{10.2, 1.0},
                                           MeanCase{0.5, 0.1},
                                           MeanCase{100.0, 5.0}));

}  // namespace
}  // namespace acute::sim
