// AutoTuner: safe (dpre, db) derivation from inferred timeouts — the
// paper's §4.1 future work — including a handset where the paper's
// empirical defaults would fail.
#include <gtest/gtest.h>

#include "core/auto_tuner.hpp"
#include "stats/summary.hpp"
#include "testbed/testbed.hpp"

namespace acute::core {
namespace {

using namespace acute::sim::literals;
using sim::Duration;

TEST(AutoTuner, KeepsPaperDefaultWhenSafe) {
  // Nexus 5-like: Tis = 50 ms, Tip = 205 ms; 20 ms is comfortably safe.
  const auto tuned = AutoTuner::tune(50_ms, 205_ms);
  EXPECT_TRUE(tuned.feasible);
  EXPECT_EQ(tuned.background_interval, 20_ms);
  EXPECT_EQ(tuned.warmup_lead, 20_ms);
  EXPECT_EQ(tuned.binding_timeout, 50_ms);
}

TEST(AutoTuner, TightensCadenceForAggressiveTimeouts) {
  // Hypothetical firmware with Tip = 25 ms: 20 ms leaves no slack against
  // the 10 ms quantization, so the tuner must go faster.
  const auto tuned = AutoTuner::tune(50_ms, 25_ms);
  EXPECT_TRUE(tuned.feasible);
  EXPECT_LT(tuned.background_interval, 20_ms);
  EXPECT_LT(tuned.background_interval + 10_ms, 25_ms);
  EXPECT_GE(tuned.background_interval, 4_ms);
}

TEST(AutoTuner, WarmupExceedsPromotionWhenBudgetAllows) {
  const auto tuned = AutoTuner::tune(50_ms, 205_ms);
  // dpre must exceed the worst-case bus promotion (~14 ms).
  EXPECT_GT(tuned.warmup_lead, 14_ms);
  EXPECT_LT(tuned.warmup_lead, 40_ms);  // and stay below min(Tis, Tip)
}

TEST(AutoTuner, InfeasibleWhenTimeoutBelowFloor) {
  const auto tuned = AutoTuner::tune(50_ms, 12_ms);
  // 12 ms - 10 ms slack leaves 2 ms < the 4 ms cadence floor.
  EXPECT_FALSE(tuned.feasible);
}

TEST(AutoTuner, RequiresPositiveTimeouts) {
  EXPECT_THROW((void)AutoTuner::tune(Duration{}, 100_ms),
               sim::ContractViolation);
}

TEST(AutoTuner, ApplyWritesOptions) {
  TunedParameters tuned;
  tuned.warmup_lead = 17_ms;
  tuned.background_interval = 9_ms;
  const auto options = AutoTuner::apply(tuned);
  EXPECT_EQ(options.warmup_lead, 17_ms);
  EXPECT_EQ(options.background_interval, 9_ms);
  EXPECT_TRUE(options.background_enabled);
}

TEST(AutoTuner, TunedParametersHoldAnAggressivePhoneAwake) {
  // A synthetic handset whose Tip (16 ms) breaks the paper's 20 ms default:
  // with db = 20 ms the station dozes between keep-alives; with the tuned
  // cadence it never does.
  phone::PhoneProfile aggressive = phone::PhoneProfile::nexus4();
  aggressive.name = "Hypothetical AggressivePhone";
  aggressive.psm_timeout = 16_ms;

  const auto run_with = [&](AcuteMon::Options options) {
    testbed::TestbedConfig config;
    config.profile = aggressive;
    config.emulated_rtt = 85_ms;
    testbed::Testbed testbed(config);
    testbed.settle(800_ms);
    tools::MeasurementTool::Config mt;
    mt.probe_count = 40;
    mt.timeout = 1_s;
    mt.target = testbed::Testbed::kPhoneId == 1 ? testbed::Testbed::kServerId
                                                : testbed::Testbed::kServerId;
    AcuteMon monitor(testbed.phone(), mt, options);
    const auto dozes_before = testbed.phone().station().doze_count();
    // Sample the counter the instant the measurement completes: dozes
    // after the keep-alives stop are expected and irrelevant.
    std::uint64_t dozes_at_finish = 0;
    monitor.start_measurement([&](const tools::ToolRun&) {
      dozes_at_finish = testbed.phone().station().doze_count();
    });
    testbed.run_until_finished(monitor);
    return dozes_at_finish - dozes_before;
  };

  const auto default_dozes = run_with(AcuteMon::Options{});
  EXPECT_GT(default_dozes, 0u);  // the paper's empirical value fails here

  const auto tuned = AutoTuner::tune(50_ms, aggressive.psm_timeout);
  ASSERT_TRUE(tuned.feasible);
  const auto tuned_dozes = run_with(AutoTuner::apply(tuned));
  EXPECT_EQ(tuned_dozes, 0u);
}

}  // namespace
}  // namespace acute::core
