// Measurement tools: probe schedules, reporting quirks, timeout handling.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/acutemon.hpp"
#include "stats/summary.hpp"
#include "testbed/testbed.hpp"
#include "tools/httping.hpp"
#include "tools/java_ping.hpp"
#include "tools/ping.hpp"

namespace acute::tools {
namespace {

using namespace acute::sim::literals;
using sim::Duration;
using testbed::Testbed;

MeasurementTool::Config tool_config(int probes, Duration interval) {
  MeasurementTool::Config config;
  config.probe_count = probes;
  config.interval = interval;
  config.timeout = 1_s;
  config.target = Testbed::kServerId;
  return config;
}

TEST(QuantizePingOutput, ResolutionAndTruncation) {
  EXPECT_DOUBLE_EQ(quantize_ping_output(33.17, 0.1, false), 33.1);
  EXPECT_DOUBLE_EQ(quantize_ping_output(33.17, 0.1, true), 33.1);
  EXPECT_DOUBLE_EQ(quantize_ping_output(133.96, 0.1, true), 133.0);
  EXPECT_DOUBLE_EQ(quantize_ping_output(133.96, 0.1, false), 133.9);
  EXPECT_DOUBLE_EQ(quantize_ping_output(99.99, 0.1, true), 99.9);
  EXPECT_DOUBLE_EQ(quantize_ping_output(5.0, 0.0, false), 5.0);
}

TEST(IcmpPing, CompletesAllProbes) {
  Testbed testbed;
  testbed.settle(500_ms);
  IcmpPing ping(testbed.phone(), tool_config(20, 10_ms));
  bool done = false;
  ping.start([&](const ToolRun& run) {
    done = true;
    EXPECT_EQ(run.probes.size(), 20u);
  });
  testbed.run_until_finished(ping);
  EXPECT_TRUE(done);
  EXPECT_TRUE(ping.finished());
  EXPECT_EQ(ping.result().loss_count(), 0u);
  EXPECT_EQ(ping.result().tool_name, "ping");
}

TEST(IcmpPing, ProbesAreOrderedByIndex) {
  Testbed testbed;
  testbed.settle(500_ms);
  IcmpPing ping(testbed.phone(), tool_config(10, 10_ms));
  ping.start();
  testbed.run_until_finished(ping);
  const auto& probes = ping.result().probes;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(probes[i].index, int(i));
  }
}

TEST(IcmpPing, PeriodicScheduleIgnoresResponses) {
  // Emulated RTT (200 ms) far exceeds the 50 ms interval: probes overlap.
  testbed::TestbedConfig config;
  config.emulated_rtt = 200_ms;
  Testbed testbed(config);
  testbed.settle(500_ms);
  IcmpPing ping(testbed.phone(), tool_config(10, 50_ms));
  const auto start = testbed.simulator().now();
  ping.start();
  testbed.run_until_finished(ping);
  // Send window = 9 * 50 ms; with per-probe RTT ~200 ms the whole run ends
  // within ~0.7 s, proving sends were not serialized behind responses.
  EXPECT_LT((testbed.simulator().now() - start).to_ms(), 750.0);
  EXPECT_EQ(ping.result().loss_count(), 0u);
}

TEST(IcmpPing, ReportsQuantizedValuesOnNexus4Above100ms) {
  testbed::TestbedConfig config;
  config.profile = phone::PhoneProfile::nexus4();
  config.emulated_rtt = 150_ms;
  Testbed testbed(config);
  testbed.settle(500_ms);
  IcmpPing ping(testbed.phone(), tool_config(10, 10_ms));
  ping.start();
  testbed.run_until_finished(ping);
  for (const double rtt : ping.result().reported_rtts_ms()) {
    EXPECT_DOUBLE_EQ(rtt, std::floor(rtt));  // whole milliseconds
    EXPECT_GT(rtt, 100.0);
  }
}

TEST(IcmpPing, LostProbesAreRecordedAsTimeouts) {
  testbed::TestbedConfig config;
  Testbed testbed(config);
  testbed.server().netem().set_loss(0.5);
  testbed.settle(500_ms);
  IcmpPing ping(testbed.phone(), tool_config(30, 10_ms));
  ping.start();
  testbed.run_until_finished(ping);
  EXPECT_GT(ping.result().loss_count(), 2u);
  EXPECT_LT(ping.result().loss_count(), 28u);
  EXPECT_EQ(ping.result().probes.size(), 30u);
  EXPECT_EQ(ping.result().success_count() + ping.result().loss_count(), 30u);
}

TEST(HttPing, FirstProbeConnectsThenReuses) {
  Testbed testbed;
  testbed.settle(500_ms);
  HttPing httping(testbed.phone(), tool_config(5, 10_ms));
  httping.start();
  testbed.run_until_finished(httping);
  EXPECT_EQ(httping.result().probes.size(), 5u);
  EXPECT_EQ(httping.result().loss_count(), 0u);
  // Every reported probe is an HTTP exchange (response carried stamps).
  for (const auto& probe : httping.result().probes) {
    ASSERT_TRUE(probe.response.has_value());
    EXPECT_EQ(probe.response->type, net::PacketType::http_response);
  }
  EXPECT_EQ(testbed.server().requests_served(), 6u);  // 1 SYN + 5 GETs
}

TEST(JavaPing, ReportsWholeMilliseconds) {
  testbed::TestbedConfig config;
  config.emulated_rtt = 30_ms;
  Testbed testbed(config);
  testbed.settle(500_ms);
  JavaPing java(testbed.phone(), tool_config(10, 10_ms));
  java.start();
  testbed.run_until_finished(java);
  for (const double rtt : java.result().reported_rtts_ms()) {
    EXPECT_DOUBLE_EQ(rtt, std::floor(rtt));
  }
  EXPECT_EQ(java.result().tool_name, "Java ping");
}

TEST(JavaPing, DalvikOverheadExceedsNative) {
  testbed::TestbedConfig config;
  config.emulated_rtt = 30_ms;
  config.seed = 7;
  Testbed testbed(config);
  testbed.settle(500_ms);
  // Sequential with a 10 ms gap, so SDIO never sleeps: the difference
  // between the two tools is (mostly) the runtime overhead.
  JavaPing java(testbed.phone(), tool_config(30, 10_ms));
  java.start();
  testbed.run_until_finished(java);

  testbed::TestbedConfig config2 = config;
  Testbed testbed2(config2);
  testbed2.settle(500_ms);
  HttPing native(testbed2.phone(), tool_config(30, 10_ms));
  native.start();
  testbed2.run_until_finished(native);

  const double java_mean =
      stats::Summary(java.result().reported_rtts_ms()).mean();
  const double native_mean =
      stats::Summary(native.result().reported_rtts_ms()).mean();
  EXPECT_GT(java_mean, native_mean);
}

TEST(ToolRun, HelpersCountCorrectly) {
  ToolRun run;
  run.probes.push_back({0, 10.0, false, std::nullopt});
  run.probes.push_back({1, 0.0, true, std::nullopt});
  run.probes.push_back({2, 12.0, false, std::nullopt});
  EXPECT_EQ(run.loss_count(), 1u);
  EXPECT_EQ(run.success_count(), 2u);
  EXPECT_EQ(run.reported_rtts_ms(), (std::vector<double>{10.0, 12.0}));
}

TEST(MeasurementTool, StartTwiceViolatesContract) {
  Testbed testbed;
  testbed.settle(500_ms);
  IcmpPing ping(testbed.phone(), tool_config(2, 10_ms));
  ping.start();
  EXPECT_THROW(ping.start(), sim::ContractViolation);
  testbed.run_until_finished(ping);
}

TEST(MeasurementTool, StartGuardCoversRichLaunchProtocols) {
  // The once-only guard lives in the non-virtual start() entry, so a tool
  // whose launch is *deferred* (AcuteMon arms its probe schedule only after
  // the warm-up lead) trips immediately on the second call — it cannot
  // slip a second schedule in before the first one arms.
  Testbed testbed;
  testbed.settle(500_ms);
  core::AcuteMon monitor(testbed.phone(), tool_config(2, 10_ms));
  monitor.start();
  EXPECT_THROW(monitor.start(), sim::ContractViolation);
  // The historical spelling shares the same guard.
  EXPECT_THROW(monitor.start_measurement(), sim::ContractViolation);
  testbed.run_until_finished(monitor);
  EXPECT_TRUE(monitor.finished());
  EXPECT_EQ(monitor.result().probes.size(), 2u);
}

TEST(MeasurementTool, ProbeListenerSeesEveryCompletedProbe) {
  Testbed testbed;
  testbed.settle(500_ms);
  IcmpPing ping(testbed.phone(), tool_config(5, 10_ms));
  std::vector<int> seen;
  ping.set_probe_listener([&seen](const ProbeRecord& record) {
    EXPECT_FALSE(record.timed_out);
    EXPECT_GT(record.reported_rtt_ms, 0.0);
    seen.push_back(record.index);
  });
  ping.start();
  testbed.run_until_finished(ping);
  EXPECT_EQ(seen.size(), 5u);

  // Registration after start() violates the listener's contract.
  IcmpPing late(testbed.phone(), tool_config(1, 10_ms));
  late.start();
  EXPECT_THROW(late.set_probe_listener([](const ProbeRecord&) {}),
               sim::ContractViolation);
  testbed.run_until_finished(late);
}

TEST(MeasurementTool, ConfigContracts) {
  Testbed testbed;
  auto config = tool_config(0, 10_ms);
  EXPECT_THROW(IcmpPing(testbed.phone(), config), sim::ContractViolation);
}

}  // namespace
}  // namespace acute::tools
